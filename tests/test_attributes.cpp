// Attribute tests against hand-computed values on the canonical 9-node
// peer-set graph (paper §3 attributes; values derived in the test bodies).
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/gen/structured.h"
#include "tgs/graph/attributes.h"

namespace tgs {
namespace {

// Canonical 9-node graph:
//   w: n1=2 n2=3 n3=3 n4=4 n5=5 n6=4 n7=4 n8=4 n9=1
//   edges (cost): 1->2(4) 1->3(1) 1->4(1) 1->5(1) 1->7(10) 2->6(1) 2->7(1)
//                 3->7(1) 3->8(1) 4->8(1) 5->8(1) 6->9(5) 7->9(6) 8->9(5)
class Canonical9 : public ::testing::Test {
 protected:
  TaskGraph g = psg_canonical9();
};

TEST_F(Canonical9, BLevels) {
  const auto b = b_levels(g);
  // Bottom-up: b(n9)=1, b(n6)=10, b(n7)=11, b(n8)=10, b(n2)=15, b(n3)=15,
  // b(n4)=15, b(n5)=16, b(n1)=23.
  EXPECT_EQ(b[8], 1);
  EXPECT_EQ(b[5], 10);
  EXPECT_EQ(b[6], 11);
  EXPECT_EQ(b[7], 10);
  EXPECT_EQ(b[1], 15);
  EXPECT_EQ(b[2], 15);
  EXPECT_EQ(b[3], 15);
  EXPECT_EQ(b[4], 16);
  EXPECT_EQ(b[0], 23);
}

TEST_F(Canonical9, TLevels) {
  const auto t = t_levels(g);
  // t(n1)=0, t(n2)=6, t(n3)=t(n4)=t(n5)=3, t(n6)=10, t(n7)=12, t(n8)=9,
  // t(n9)=22.
  EXPECT_EQ(t[0], 0);
  EXPECT_EQ(t[1], 6);
  EXPECT_EQ(t[2], 3);
  EXPECT_EQ(t[3], 3);
  EXPECT_EQ(t[4], 3);
  EXPECT_EQ(t[5], 10);
  EXPECT_EQ(t[6], 12);
  EXPECT_EQ(t[7], 9);
  EXPECT_EQ(t[8], 22);
}

TEST_F(Canonical9, StaticLevels) {
  const auto sl = static_levels(g);
  // sl(n9)=1, sl(n6)=sl(n7)=sl(n8)=5, sl(n2)=sl(n3)=8, sl(n4)=9, sl(n5)=10,
  // sl(n1)=12.
  EXPECT_EQ(sl[8], 1);
  EXPECT_EQ(sl[5], 5);
  EXPECT_EQ(sl[6], 5);
  EXPECT_EQ(sl[7], 5);
  EXPECT_EQ(sl[1], 8);
  EXPECT_EQ(sl[2], 8);
  EXPECT_EQ(sl[3], 9);
  EXPECT_EQ(sl[4], 10);
  EXPECT_EQ(sl[0], 12);
}

TEST_F(Canonical9, CriticalPathLengthIs23) {
  EXPECT_EQ(critical_path_length(g), 23);
}

TEST_F(Canonical9, CriticalPathIsN1N7N9) {
  const auto cp = critical_path(g);
  ASSERT_EQ(cp.size(), 3u);
  EXPECT_EQ(cp[0], 0u);  // n1
  EXPECT_EQ(cp[1], 6u);  // n7
  EXPECT_EQ(cp[2], 8u);  // n9
  EXPECT_EQ(path_computation_cost(g, cp), 2 + 4 + 1);
}

TEST_F(Canonical9, AlapTimes) {
  const auto alap = alap_times(g);
  EXPECT_EQ(alap[0], 0);   // n1 (on CP)
  EXPECT_EQ(alap[6], 12);  // n7 (on CP): 23-11
  EXPECT_EQ(alap[8], 22);  // n9 (on CP): 23-1
  EXPECT_EQ(alap[4], 7);   // n5: 23-16
  EXPECT_EQ(alap[1], 8);   // n2: 23-15
}

TEST_F(Canonical9, ComputationCriticalPath) {
  // Longest node-weight-only path is n1->n5->n8->n9 = 2+5+4+1 = 12.
  EXPECT_EQ(computation_critical_path_length(g), 12);
}

TEST_F(Canonical9, TLevelPlusBLevelBoundedByCp) {
  const auto t = t_levels(g);
  const auto b = b_levels(g);
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    EXPECT_LE(t[n] + b[n], 23) << "node " << n;
  // Nodes on the CP attain equality.
  EXPECT_EQ(t[0] + b[0], 23);
  EXPECT_EQ(t[6] + b[6], 23);
  EXPECT_EQ(t[8] + b[8], 23);
}

TEST(Attributes, ChainDegenerates) {
  const TaskGraph g = chain_graph(4, 10, 5);
  // CP = all nodes: 4*10 + 3*5 = 55; comp CP = 40.
  EXPECT_EQ(critical_path_length(g), 55);
  EXPECT_EQ(computation_critical_path_length(g), 40);
  const auto cp = critical_path(g);
  EXPECT_EQ(cp.size(), 4u);
  const auto t = t_levels(g);
  EXPECT_EQ(t[3], 45);
  const auto sl = static_levels(g);
  EXPECT_EQ(sl[0], 40);
}

TEST(Attributes, IndependentTasksHaveZeroLevels) {
  const TaskGraph g = independent_tasks(5, 7);
  const auto t = t_levels(g);
  const auto b = b_levels(g);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(t[n], 0);
    EXPECT_EQ(b[n], 7);
  }
  EXPECT_EQ(critical_path_length(g), 7);
}

TEST(Attributes, ForkJoinLevels) {
  const TaskGraph g = fork_join(3, 10, 5);
  // CP: fork -> worker -> join = 30 + 2*5 = 40.
  EXPECT_EQ(critical_path_length(g), 40);
  EXPECT_EQ(computation_critical_path_length(g), 30);
}

TEST(Attributes, LayeredWidthOfForkJoin) {
  EXPECT_EQ(layered_width(fork_join(6, 10, 5)), 6u);
  EXPECT_EQ(layered_width(chain_graph(5)), 1u);
  EXPECT_EQ(layered_width(independent_tasks(9)), 9u);
}

TEST(Attributes, BLevelStrictlyDecreasesAlongEdges) {
  const TaskGraph g = psg_irregular13();
  const auto b = b_levels(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const Adj& c : g.children(u)) EXPECT_GT(b[u], b[c.node]);
}

TEST(Attributes, CompTLevelLowerBoundsTLevel) {
  const TaskGraph g = psg_pipelines16();
  const auto t = t_levels(g);
  const auto ct = comp_t_levels(g);
  for (NodeId n = 0; n < g.num_nodes(); ++n) EXPECT_LE(ct[n], t[n]);
}

TEST(Attributes, CacheMatchesFreeFunctionsAndSurvivesRebinds) {
  GraphAttributeCache cache;
  for (const TaskGraph& g :
       {psg_canonical9(), psg_irregular13(), fork_join(4, 10, 5)}) {
    cache.bind(g);
    EXPECT_EQ(cache.static_levels(), static_levels(g));
    EXPECT_EQ(cache.b_levels(), b_levels(g));
    EXPECT_EQ(cache.t_levels(), t_levels(g));
    EXPECT_EQ(cache.comp_t_levels(), comp_t_levels(g));
    EXPECT_EQ(cache.alap_times(), alap_times(g));
    EXPECT_EQ(cache.critical_path_length(), critical_path_length(g));
    // Second access returns the same cached data (no recompute/realloc).
    EXPECT_EQ(cache.static_levels(), static_levels(g));
    const Time* ctl = cache.comp_t_levels().data();
    EXPECT_EQ(cache.comp_t_levels().data(), ctl);
  }
}

TEST(Attributes, CacheThrowsBeforeBind) {
  GraphAttributeCache cache;
  EXPECT_THROW(cache.static_levels(), std::logic_error);
  EXPECT_THROW(cache.critical_path_length(), std::logic_error);
}

TEST(Attributes, InPlaceVariantsReuseCapacity) {
  const TaskGraph big = fork_join(64, 10, 5);
  const TaskGraph small = chain_graph(5);
  std::vector<Time> buf;
  static_levels_into(big, buf);
  EXPECT_EQ(buf, static_levels(big));
  const Time* data = buf.data();
  const std::size_t cap = buf.capacity();
  static_levels_into(small, buf);  // shrinking reuses the allocation
  EXPECT_EQ(buf, static_levels(small));
  EXPECT_EQ(buf.data(), data);
  EXPECT_EQ(buf.capacity(), cap);
}

}  // namespace
}  // namespace tgs
