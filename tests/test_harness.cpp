// Tests for the registry, timed runner and pivot-table recorder.
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/harness/experiment.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"

namespace tgs {
namespace {

TEST(Registry, FifteenAlgorithmsInPaperOrder) {
  EXPECT_EQ(bnp_names(),
            (std::vector<std::string>{"HLFET", "ISH", "MCP", "ETF", "DLS",
                                      "LAST"}));
  EXPECT_EQ(unc_names(),
            (std::vector<std::string>{"EZ", "LC", "DSC", "MD", "DCP"}));
  EXPECT_EQ(apn_names(), (std::vector<std::string>{"MH", "DLS", "BU", "BSA"}));
  EXPECT_EQ(bnp_names().size() + unc_names().size() + apn_names().size(), 15u);
}

TEST(Registry, ClassesAreConsistent) {
  for (const auto& s : make_bnp_schedulers())
    EXPECT_EQ(s->algo_class(), AlgoClass::kBNP);
  for (const auto& s : make_unc_schedulers())
    EXPECT_EQ(s->algo_class(), AlgoClass::kUNC);
}

TEST(Registry, LookupByName) {
  EXPECT_EQ(make_scheduler("MCP")->name(), "MCP");
  EXPECT_EQ(make_scheduler("DCP")->name(), "DCP");
  EXPECT_EQ(make_apn_scheduler("BSA")->name(), "BSA");
  EXPECT_EQ(make_apn_scheduler("DLS-APN")->name(), "DLS");
  EXPECT_THROW(make_scheduler("NOPE"), std::invalid_argument);
  EXPECT_THROW(make_apn_scheduler("NOPE"), std::invalid_argument);
}

TEST(Registry, CombinedListOrder) {
  const auto all = make_unc_and_bnp_schedulers();
  ASSERT_EQ(all.size(), 11u);
  EXPECT_EQ(all.front()->name(), "EZ");
  EXPECT_EQ(all.back()->name(), "LAST");
}

TEST(Runner, ValidatedTimedRun) {
  const TaskGraph g = psg_canonical9();
  const auto mcp = make_scheduler("MCP");
  const RunResult r = run_scheduler(*mcp, g, {});
  EXPECT_TRUE(r.valid) << r.error;
  EXPECT_EQ(r.algo, "MCP");
  EXPECT_GT(r.length, 0);
  EXPECT_GT(r.procs_used, 0);
  EXPECT_GE(r.seconds, 0.0);
  EXPECT_GE(r.nsl, 1.0);
}

TEST(Runner, ApnRun) {
  const TaskGraph g = psg_canonical9();
  const Topology topo = Topology::hypercube(3);
  const RoutingTable routes(topo);
  const auto bsa = make_apn_scheduler("BSA");
  const RunResult r = run_apn_scheduler(*bsa, g, routes);
  EXPECT_TRUE(r.valid) << r.error;
  EXPECT_GT(r.length, 0);
}

TEST(PivotStats, RendersMeansByRowAndColumn) {
  PivotStats stats("nodes", {"A", "B"});
  stats.add(50, "A", 1.0);
  stats.add(50, "A", 3.0);
  stats.add(50, "B", 5.0);
  stats.add(100, "A", 4.0);
  const Table t = stats.render(1);
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("2.0"), std::string::npos);  // mean of 1, 3
  EXPECT_NE(ascii.find("5.0"), std::string::npos);
  EXPECT_NE(ascii.find("-"), std::string::npos);  // missing (100, B)
  const auto avg = stats.overall_means(1);
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_EQ(avg[0], "Avg.");
  EXPECT_EQ(avg[1], "3.0");  // mean of row means (2, 4)
}

TEST(PivotStats, CellAccess) {
  PivotStats stats("x", {"A"});
  stats.add(1, "A", 2.0);
  ASSERT_NE(stats.cell(1, "A"), nullptr);
  EXPECT_EQ(stats.cell(1, "A")->count(), 1u);
  EXPECT_EQ(stats.cell(2, "A"), nullptr);
  EXPECT_EQ(stats.cell(1, "B"), nullptr);
}

}  // namespace
}  // namespace tgs
