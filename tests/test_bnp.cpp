// Tests for the six BNP algorithms: validity on diverse graphs, known
// exact results on degenerate shapes, algorithm-specific behaviours.
#include <gtest/gtest.h>

#include "tgs/bnp/dls.h"
#include "tgs/bnp/etf.h"
#include "tgs/bnp/hlfet.h"
#include "tgs/bnp/ish.h"
#include "tgs/bnp/last.h"
#include "tgs/bnp/mcp.h"
#include "tgs/gen/psg.h"
#include "tgs/gen/rgnos.h"
#include "tgs/gen/structured.h"
#include "tgs/graph/attributes.h"
#include "tgs/harness/registry.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/validate.h"

namespace tgs {
namespace {

std::vector<TaskGraph> small_zoo() {
  std::vector<TaskGraph> zoo;
  zoo.push_back(psg_canonical9());
  zoo.push_back(psg_irregular13());
  zoo.push_back(psg_pipelines16());
  zoo.push_back(chain_graph(6, 10, 20));
  zoo.push_back(independent_tasks(7, 10));
  zoo.push_back(fork_join(5, 10, 30));
  zoo.push_back(diamond_lattice(3, 8, 4));
  RgnosParams p;
  p.num_nodes = 70;
  p.ccr = 2.0;
  p.parallelism = 3;
  p.seed = 99;
  zoo.push_back(rgnos_graph(p));
  return zoo;
}

TEST(Bnp, AllValidOnZooUnlimitedProcs) {
  const auto zoo = small_zoo();
  for (const auto& algo : make_bnp_schedulers()) {
    for (const auto& g : zoo) {
      const Schedule s = algo->run(g, {});
      const auto v = validate_schedule(s);
      EXPECT_TRUE(v.ok) << algo->name() << " on " << g.name() << ": " << v.error;
      EXPECT_GE(s.makespan(), schedule_length_lower_bound(g, 0));
      EXPECT_LE(s.makespan(), g.total_weight() + g.total_edge_cost());
    }
  }
}

TEST(Bnp, AllValidOnZooTwoProcs) {
  const auto zoo = small_zoo();
  for (const auto& algo : make_bnp_schedulers()) {
    for (const auto& g : zoo) {
      SchedOptions opt;
      opt.num_procs = 2;
      const Schedule s = algo->run(g, opt);
      const auto v = validate_schedule(s, 2);
      EXPECT_TRUE(v.ok) << algo->name() << " on " << g.name() << ": " << v.error;
      EXPECT_GE(s.makespan(), schedule_length_lower_bound(g, 2));
    }
  }
}

TEST(Bnp, DeterministicSchedules) {
  const TaskGraph g = psg_irregular13();
  for (const auto& algo : make_bnp_schedulers()) {
    const Schedule a = algo->run(g, {});
    const Schedule b = algo->run(g, {});
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      EXPECT_EQ(a.proc(n), b.proc(n)) << algo->name();
      EXPECT_EQ(a.start(n), b.start(n)) << algo->name();
    }
  }
}

TEST(Bnp, ChainStaysSerialAndCommFree) {
  // A chain must execute serially; any sane list scheduler keeps it on one
  // processor (co-location always dominates paying communication).
  const TaskGraph g = chain_graph(8, 10, 50);
  for (const auto& algo : make_bnp_schedulers()) {
    const Schedule s = algo->run(g, {});
    EXPECT_EQ(s.makespan(), 80) << algo->name();
    EXPECT_EQ(s.procs_used(), 1) << algo->name();
  }
}

TEST(Bnp, IndependentTasksPerfectlyParallel) {
  const TaskGraph g = independent_tasks(6, 10);
  for (const auto& algo : make_bnp_schedulers()) {
    const Schedule s = algo->run(g, {});
    EXPECT_EQ(s.makespan(), 10) << algo->name();
    EXPECT_EQ(s.procs_used(), 6) << algo->name();
  }
}

TEST(Bnp, IndependentTasksLoadBalanceOnTwoProcs) {
  const TaskGraph g = independent_tasks(6, 10);
  SchedOptions opt;
  opt.num_procs = 2;
  for (const auto& algo : make_bnp_schedulers()) {
    const Schedule s = algo->run(g, opt);
    EXPECT_EQ(s.makespan(), 30) << algo->name();
  }
}

TEST(Hlfet, PrioritizesByStaticLevel) {
  // Two entry chains: long chain head must be scheduled before short one.
  TaskGraphBuilder b;
  const NodeId a1 = b.add_node(10);  // chain a: 10+10
  const NodeId a2 = b.add_node(10);
  const NodeId c1 = b.add_node(5);  // chain c: 5
  b.add_edge(a1, a2, 0);
  const TaskGraph g = b.finalize();
  (void)c1;
  HlfetScheduler algo;
  SchedOptions opt;
  opt.num_procs = 1;
  const Schedule s = algo.run(g, opt);
  EXPECT_LT(s.start(a1), s.start(c1));  // higher static level first
}

TEST(Ish, FillsHolesThatHlfetLeaves) {
  // Fork-join with heavy comm: workers scheduled cross-proc create a hole
  // before the join on the source processor; ISH should pack ready tasks
  // into it, never doing worse than HLFET.
  const auto zoo = small_zoo();
  HlfetScheduler hlfet;
  IshScheduler ish;
  int ish_wins = 0, hlfet_wins = 0;
  for (const auto& g : zoo) {
    const Time lh = hlfet.run(g, {}).makespan();
    const Time li = ish.run(g, {}).makespan();
    ish_wins += li < lh;
    hlfet_wins += lh < li;
  }
  // Not a theorem, but on this zoo hole-filling should help at least once
  // and should not lose overall.
  EXPECT_GE(ish_wins, hlfet_wins);
}

TEST(Mcp, SchedulesCpNodesFirstOnCanonical9) {
  // MCP's ALAP-lexicographic order begins with the CP nodes n1, n7, n9
  // (ALAP 0, 12, 22). n1 therefore starts at 0 and n7/n9 land such that
  // the canonical graph schedules within its CP bound estimate.
  McpScheduler mcp;
  const TaskGraph g = psg_canonical9();
  const Schedule s = mcp.run(g, {});
  EXPECT_TRUE(validate_schedule(s).ok);
  EXPECT_EQ(s.start(0), 0);
  // MCP is the paper's best BNP performer; on this example it should beat
  // the trivial serial bound (sum of weights = 30) comfortably.
  EXPECT_LT(s.makespan(), 30);
}

TEST(Etf, PicksGloballyEarliestStart) {
  // One heavy entry and one light entry; ETF schedules the light one first
  // if it starts earlier, regardless of level.
  const TaskGraph g = independent_tasks(3, 10);
  EtfScheduler etf;
  SchedOptions opt;
  opt.num_procs = 3;
  const Schedule s = etf.run(g, opt);
  // All can start at 0 on distinct processors.
  for (NodeId n = 0; n < 3; ++n) EXPECT_EQ(s.start(n), 0);
}

TEST(Dls, NeverIdlesWhenWorkIsReady) {
  const TaskGraph g = psg_canonical9();
  DlsScheduler dls;
  const Schedule s = dls.run(g, {});
  EXPECT_TRUE(validate_schedule(s).ok);
  // The entry node must start immediately.
  EXPECT_EQ(s.start(0), 0);
}

TEST(Last, TracksCommunicationLocality) {
  // LAST's D_NODE priority grows with edges into the scheduled region; on
  // the canonical 9 graph it must produce a valid schedule (quality is
  // expected to trail the others, as in the paper).
  LastScheduler last;
  const TaskGraph g = psg_canonical9();
  const Schedule s = last.run(g, {});
  EXPECT_TRUE(validate_schedule(s).ok);
}

TEST(Bnp, GreedyAlgorithmsSimilarOnCanonical9) {
  // Paper §6.1: "The greedy BNP algorithms give very similar schedule
  // lengths (HLFET, ISH, ETF, MCP, DLS)". Check they are within a 2x band
  // of each other on the canonical example.
  const TaskGraph g = psg_canonical9();
  std::vector<Time> lengths;
  for (const char* name : {"HLFET", "ISH", "ETF", "MCP", "DLS"})
    lengths.push_back(make_scheduler(name)->run(g, {}).makespan());
  const Time lo = *std::min_element(lengths.begin(), lengths.end());
  const Time hi = *std::max_element(lengths.begin(), lengths.end());
  EXPECT_LE(hi, 2 * lo);
}

}  // namespace
}  // namespace tgs
