// Unit tests for sched/metrics.h (paper §6 performance measures).
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/gen/structured.h"
#include "tgs/graph/attributes.h"
#include "tgs/sched/metrics.h"

namespace tgs {
namespace {

TEST(Metrics, NslUsesCpComputationCosts) {
  const TaskGraph g = psg_canonical9();
  // CP = n1, n7, n9 with computation 2+4+1 = 7.
  EXPECT_DOUBLE_EQ(normalized_schedule_length(g, 7), 1.0);
  EXPECT_DOUBLE_EQ(normalized_schedule_length(g, 14), 2.0);
}

TEST(Metrics, PercentDegradation) {
  EXPECT_DOUBLE_EQ(percent_degradation(110, 100), 10.0);
  EXPECT_DOUBLE_EQ(percent_degradation(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(percent_degradation(95, 100), -5.0);
  EXPECT_DOUBLE_EQ(percent_degradation(10, 0), 0.0);  // guarded
}

TEST(Metrics, SpeedupAndEfficiency) {
  const TaskGraph g = independent_tasks(4, 10);  // serial 40
  EXPECT_DOUBLE_EQ(speedup(g, 10), 4.0);
  EXPECT_DOUBLE_EQ(efficiency(g, 10, 4), 1.0);
  EXPECT_DOUBLE_EQ(efficiency(g, 10, 8), 0.5);
}

TEST(Metrics, LowerBoundCombinesCpAndLoad) {
  const TaskGraph g = independent_tasks(4, 10);
  EXPECT_EQ(schedule_length_lower_bound(g, 2), 20);  // load bound
  EXPECT_EQ(schedule_length_lower_bound(g, 100), 10);  // cp bound
  const TaskGraph c = chain_graph(4, 10, 100);
  EXPECT_EQ(schedule_length_lower_bound(c, 2), 40);  // chain is serial
}

TEST(Metrics, LowerBoundUnboundedProcs) {
  const TaskGraph g = fork_join(8, 10, 0);
  EXPECT_EQ(schedule_length_lower_bound(g, 0), 30);
}

TEST(Metrics, NslAtLeastOneForValidLengths) {
  // Any length >= the CP computation sum gives NSL >= 1.
  const TaskGraph g = psg_irregular13();
  const auto cp = critical_path(g);
  const Cost denom = path_computation_cost(g, cp);
  EXPECT_GE(normalized_schedule_length(g, denom), 1.0);
  EXPECT_GE(normalized_schedule_length(g, denom + 17), 1.0);
}

}  // namespace
}  // namespace tgs
