// Frozen pre-refactor bodies of the named list schedulers that became
// parameter points of the ParamScheduler core (src/tgs/param/): HLFET,
// ISH, MCP (bnp/) and EZ, LC (unc/), as they stood at PR 7 when each was
// a standalone do_run. The property tests (test_param.cpp) require the
// param re-expressions to reproduce these schedules byte-for-byte -- the
// same contract reference_schedulers.h enforces for the incremental
// ETF/DLS (whose pre-refactor selection loops naive_etf/naive_dls already
// serve as the frozen references).
//
// Deliberately straight-line copies -- do not refactor or "optimize";
// byte-fidelity to the retired code is the point.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "tgs/bnp/bnp_common.h"
#include "tgs/graph/attributes.h"
#include "tgs/list/priorities.h"
#include "tgs/list/ready_list.h"
#include "tgs/sched/schedule.h"
#include "tgs/sched/scheduler.h"
#include "tgs/unc/cluster_schedule.h"
#include "tgs/unc/clustering.h"

namespace tgs::reference {

/// HLFET: static-level list order, earliest-start processor, append.
inline Schedule original_hlfet(const TaskGraph& g, const SchedOptions& opt) {
  const std::vector<Time> sl = static_levels(g);
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);

  while (!ready.empty()) {
    const NodeId n = argmax_priority(ready.ready(), sl);
    const ProcChoice choice =
        best_est_proc(sched, n, scanner, /*insertion=*/false);
    sched.place(n, choice.proc, choice.start);
    scanner.note_placement(choice.proc);
    ready.mark_scheduled(n);
  }
  return sched;
}

/// ISH: HLFET plus greedy filling of the idle hole each placement creates.
inline Schedule original_ish(const TaskGraph& g, const SchedOptions& opt) {
  const std::vector<Time> sl = static_levels(g);
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);

  while (!ready.empty()) {
    const NodeId n = argmax_priority(ready.ready(), sl);
    const ProcChoice choice =
        best_est_proc(sched, n, scanner, /*insertion=*/false);
    const Time hole_start = sched.earliest_start_on(choice.proc, 0, 0, false);
    sched.place(n, choice.proc, choice.start);
    scanner.note_placement(choice.proc);
    ready.mark_scheduled(n);

    Time gap_from = hole_start;
    const Time gap_to = choice.start;
    while (gap_from < gap_to && !ready.empty()) {
      NodeId best_fill = kNoNode;
      Time best_start = 0;
      for (NodeId m : ready.ready()) {
        const Time dr = sched.data_ready(m, choice.proc);
        const Time st = std::max(dr, gap_from);
        if (st + g.weight(m) > gap_to) continue;
        const ProcChoice alt = best_est_proc(sched, m, scanner, false);
        if (alt.start < st) continue;
        if (best_fill == kNoNode || sl[m] > sl[best_fill] ||
            (sl[m] == sl[best_fill] && m < best_fill)) {
          best_fill = m;
          best_start = st;
        }
      }
      if (best_fill == kNoNode) break;
      sched.place(best_fill, choice.proc, best_start);
      ready.mark_scheduled(best_fill);
      gap_from = best_start + g.weight(best_fill);
    }
  }
  return sched;
}

/// MCP: lexicographic [alap, sorted child alaps] static order, insertion.
inline Schedule original_mcp(const TaskGraph& g, const SchedOptions& opt) {
  const std::vector<Time> alap = alap_times(g);

  std::vector<std::vector<Time>> prio(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    prio[n].push_back(alap[n]);
    for (const Adj& c : g.children(n)) prio[n].push_back(alap[c.node]);
    std::sort(prio[n].begin() + 1, prio[n].end());
  }

  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (prio[a] != prio[b]) return prio[a] < prio[b];
    return a < b;
  });

  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  for (NodeId n : order) {
    const ProcChoice choice =
        best_est_proc(sched, n, scanner, /*insertion=*/true);
    sched.place(n, choice.proc, choice.start);
    scanner.note_placement(choice.proc);
  }
  return sched;
}

/// EZ: Sarkar edge zeroing (merge committed iff the evaluated makespan
/// does not grow), materialized by the deterministic cluster schedule.
inline Schedule original_ez(const TaskGraph& g) {
  struct EdgeRef {
    NodeId u, v;
    Cost cost;
  };
  std::vector<EdgeRef> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const Adj& c : g.children(u)) edges.push_back({u, c.node, c.cost});
  std::sort(edges.begin(), edges.end(), [](const EdgeRef& a, const EdgeRef& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });

  DisjointSets ds(g.num_nodes());
  const std::vector<NodeId> order = blevel_order(g);
  std::vector<Time> start_scratch, avail_scratch;

  std::vector<ProcId> assign = dense_assignment(ds);
  Time best =
      assignment_makespan(g, assign, order, start_scratch, avail_scratch);

  for (const EdgeRef& e : edges) {
    if (ds.same(e.u, e.v)) continue;
    auto snap = ds.snapshot();
    ds.merge(e.u, e.v);
    assign = dense_assignment(ds);
    const Time len =
        assignment_makespan(g, assign, order, start_scratch, avail_scratch);
    if (len <= best) {
      best = len;
    } else {
      ds.restore(std::move(snap));
    }
  }

  return schedule_with_assignment(g, dense_assignment(ds));
}

/// LC: peel the longest (node+edge) path over unexamined nodes into one
/// linear cluster per iteration.
inline Schedule original_lc(const TaskGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<bool> examined(n, false);
  DisjointSets ds(n);

  std::size_t remaining = n;
  while (remaining > 0) {
    std::vector<Time> down(n, 0);
    std::vector<NodeId> next(n, kNoNode);
    const auto& topo = g.topological_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId u = *it;
      if (examined[u]) continue;
      Time best_kid = 0;
      NodeId best_next = kNoNode;
      for (const Adj& c : g.children(u)) {
        if (examined[c.node]) continue;
        const Time cand = c.cost + down[c.node];
        if (cand > best_kid) {
          best_kid = cand;
          best_next = c.node;
        }
      }
      down[u] = g.weight(u) + best_kid;
      next[u] = best_next;
    }

    NodeId head = kNoNode;
    for (NodeId u = 0; u < n; ++u) {
      if (examined[u]) continue;
      if (head == kNoNode || down[u] > down[head]) head = u;
    }

    NodeId prev = kNoNode;
    for (NodeId u = head; u != kNoNode; u = next[u]) {
      examined[u] = true;
      --remaining;
      if (prev != kNoNode) ds.merge(prev, u);
      prev = u;
    }
  }

  return schedule_with_assignment(g, dense_assignment(ds));
}

}  // namespace tgs::reference
