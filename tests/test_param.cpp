// Tests for the parameterized scheduler core (src/tgs/param/).
//
// The load-bearing suite of the refactor: the named algorithms HLFET, ISH,
// MCP, ETF, DLS, EZ and LC are now parameter points of ParamScheduler, and
// these tests pin them byte-for-byte against frozen copies of the original
// standalone implementations (tests/reference_named.h,
// tests/reference_schedulers.h). The full crossproduct is additionally
// swept for validity, determinism and workspace-independence.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "reference_named.h"
#include "reference_schedulers.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/registry.h"
#include "tgs/param/param_scheduler.h"
#include "tgs/param/param_spec.h"
#include "tgs/sched/validate.h"
#include "tgs/sched/workspace.h"

namespace tgs {
namespace {

TaskGraph graph_for(std::uint64_t seed, double ccr) {
  RgnosParams p;
  p.num_nodes = 40;
  p.ccr = ccr;
  p.parallelism = 3;
  p.seed = seed;
  return rgnos_graph(p);
}

std::vector<ParamSpec> all_combos() {
  std::vector<ParamSpec> out;
  for (const ParamMetric m : all_param_metrics())
    for (const ParamReady r : all_param_readies())
      for (const ParamInsertion i : all_param_insertions())
        for (const ParamCluster c : all_param_clusters())
          out.push_back({m, r, i, c});
  return out;
}

void expect_same_schedule(const Schedule& a, const Schedule& b,
                          const std::string& what) {
  ASSERT_EQ(a.graph().num_nodes(), b.graph().num_nodes()) << what;
  for (NodeId n = 0; n < a.graph().num_nodes(); ++n) {
    ASSERT_EQ(a.proc(n), b.proc(n)) << what << ", node " << n;
    ASSERT_EQ(a.start(n), b.start(n)) << what << ", node " << n;
  }
}

// ------------------------------------------------------------ spec text ----

TEST(ParamSpec, RoundTripsEveryCombination) {
  for (const ParamSpec& s : all_combos()) {
    const std::string text = s.to_string();
    EXPECT_TRUE(ParamSpec::is_spec(text)) << text;
    EXPECT_EQ(ParamSpec::parse(text), s) << text;
  }
  EXPECT_EQ(all_combos().size(), 7u * 4u * 3u * 4u);
}

TEST(ParamSpec, ThreeSegmentFormDefaultsToNoCluster) {
  const ParamSpec s = ParamSpec::parse("param:alap/etf/insert");
  EXPECT_EQ(s.metric, ParamMetric::kALAP);
  EXPECT_EQ(s.ready, ParamReady::kPairEtf);
  EXPECT_EQ(s.insertion, ParamInsertion::kInsert);
  EXPECT_EQ(s.cluster, ParamCluster::kNone);
  EXPECT_EQ(s.to_string(), "param:alap/etf/insert/none");
}

TEST(ParamSpec, BadTokenNamesAxisAndGrammar) {
  try {
    ParamSpec::parse("param:sl/static/banana");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("banana"), std::string::npos) << msg;
    EXPECT_NE(msg.find("param:<metric>"), std::string::npos) << msg;
  }
  EXPECT_THROW(ParamSpec::parse("param:sl/static"), std::invalid_argument);
  EXPECT_THROW(ParamSpec::parse("param:sl/static/append/none/x"),
               std::invalid_argument);
}

// ------------------------------------------------------------- registry ----

TEST(ParamRegistry, MakeSchedulerAcceptsSpecs) {
  const SchedulerPtr s = make_scheduler("param:sl/static/append");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name(), "param:sl/static/append/none");
  EXPECT_EQ(s->algo_class(), AlgoClass::kBNP);
  EXPECT_EQ(make_scheduler("param:bl/static/append/ez")->algo_class(),
            AlgoClass::kUNC);
}

TEST(ParamRegistry, UnknownNameEnumeratesNamesAndGrammar) {
  try {
    make_scheduler("NOPE");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* name : {"HLFET", "ISH", "MCP", "ETF", "DLS", "LAST",
                             "EZ", "LC", "DSC", "MD", "DCP"})
      EXPECT_NE(msg.find(name), std::string::npos) << msg << " / " << name;
    EXPECT_NE(msg.find("param:<metric>"), std::string::npos) << msg;
  }
}

TEST(ParamRegistry, NamedAlgorithmsExposeTheirSpecs) {
  const std::map<std::string, std::string> expected = {
      {"HLFET", "param:sl/static/append/none"},
      {"ISH", "param:sl/static/hole/none"},
      {"MCP", "param:alaplist/static/insert/none"},
      {"ETF", "param:sl/etf/append/none"},
      {"DLS", "param:sl/dls/append/none"},
      {"EZ", "param:bl/static/append/ez"},
      {"LC", "param:bl/static/append/lc"},
  };
  int seen = 0;
  for (const SchedulerPtr& s : make_unc_and_bnp_schedulers()) {
    const auto* p = dynamic_cast<const ParamScheduler*>(s.get());
    const auto it = expected.find(s->name());
    if (it == expected.end()) {
      // LAST, DSC, MD, DCP are not expressible as parameter points and
      // must have kept their standalone implementations.
      EXPECT_EQ(p, nullptr) << s->name();
      continue;
    }
    ASSERT_NE(p, nullptr) << s->name();
    EXPECT_EQ(p->spec().to_string(), it->second) << s->name();
    ++seen;
  }
  EXPECT_EQ(seen, 7);
}

// ------------------------------------- byte-identity vs frozen originals ----

using NamedCase = std::tuple<std::uint64_t, double, int>;  // seed, ccr, procs

class NamedPointIdentity : public ::testing::TestWithParam<NamedCase> {};

TEST_P(NamedPointIdentity, MatchesPreRefactorImplementations) {
  const auto& [seed, ccr, procs] = GetParam();
  const TaskGraph g = graph_for(seed, ccr);
  SchedOptions opt;
  opt.num_procs = procs;

  expect_same_schedule(make_scheduler("HLFET")->run(g, opt),
                       reference::original_hlfet(g, opt), "HLFET");
  expect_same_schedule(make_scheduler("ISH")->run(g, opt),
                       reference::original_ish(g, opt), "ISH");
  expect_same_schedule(make_scheduler("MCP")->run(g, opt),
                       reference::original_mcp(g, opt), "MCP");
  expect_same_schedule(make_scheduler("ETF")->run(g, opt),
                       reference::naive_etf(g, opt), "ETF");
  expect_same_schedule(make_scheduler("DLS")->run(g, opt),
                       reference::naive_dls(g, opt), "DLS");
  if (procs == 0) {  // the UNC pair is unbounded by definition
    expect_same_schedule(make_scheduler("EZ")->run(g, opt),
                         reference::original_ez(g), "EZ");
    expect_same_schedule(make_scheduler("LC")->run(g, opt),
                         reference::original_lc(g), "LC");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NamedPointIdentity,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(0, 2, 4)));

// ------------------------------------------------- the full crossproduct ----

class ComboProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComboProperty, EveryComboValidDeterministicWorkspaceIndependent) {
  const std::uint64_t seed = GetParam();
  const TaskGraph g = graph_for(seed, seed % 2 == 0 ? 1.0 : 10.0);
  SchedWorkspace ws;
  ws.begin_graph(g);
  for (const ParamSpec& spec : all_combos()) {
    ParamScheduler algo(spec);
    const Schedule fresh = algo.run(g, {});
    const auto v = validate_schedule(fresh);
    ASSERT_TRUE(v.ok) << spec.to_string() << ": " << v.error;
    // Workspace reuse across all 336 combos must not change any result.
    const Schedule shared = algo.run(g, {}, ws);
    expect_same_schedule(fresh, shared, spec.to_string() + " (workspace)");
    const Schedule again = algo.run(g, {});
    expect_same_schedule(fresh, again, spec.to_string() + " (rerun)");
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, ComboProperty,
                         ::testing::Values<std::uint64_t>(11, 12));

TEST(ComboProperty, ClusteredCombosRespectProcessorBound) {
  const TaskGraph g = graph_for(21, 1.0);
  SchedOptions opt;
  opt.num_procs = 3;
  for (const ParamCluster c :
       {ParamCluster::kEz, ParamCluster::kLc, ParamCluster::kDsc}) {
    for (const ParamReady r : all_param_readies()) {
      ParamScheduler algo({ParamMetric::kBL, r, ParamInsertion::kAppend, c});
      const Schedule s = algo.run(g, opt);
      const auto v = validate_schedule(s, opt.num_procs);
      ASSERT_TRUE(v.ok) << algo.name() << ": " << v.error;
      EXPECT_LE(s.procs_used(), 3) << algo.name();
    }
  }
}

}  // namespace
}  // namespace tgs
