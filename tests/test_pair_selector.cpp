// Property and adversarial tests of the incremental pair-selection core
// (bnp/bnp_common.h): the cached (ready node, processor) bests must
// reproduce the naive exhaustive re-evaluation BYTE-FOR-BYTE -- same node,
// same processor, same start, every step -- over random RGNOS / RGPOS /
// PSG graphs, bounded and unbounded machines, append and insertion modes,
// and under arbitrary placement policies. reference_schedulers.h holds
// the naive ground-truth loops (the retired pre-selector implementations).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "reference_schedulers.h"
#include "tgs/apn/dls_apn.h"
#include "tgs/bnp/bnp_common.h"
#include "tgs/bnp/dls.h"
#include "tgs/bnp/etf.h"
#include "tgs/gen/psg.h"
#include "tgs/gen/rgnos.h"
#include "tgs/gen/rgpos.h"
#include "tgs/graph/task_graph.h"
#include "tgs/list/ready_list.h"
#include "tgs/net/routing.h"
#include "tgs/net/topology.h"
#include "tgs/sched/workspace.h"

namespace tgs {
namespace {

void expect_identical(const Schedule& a, const Schedule& b,
                      const std::string& what) {
  ASSERT_EQ(a.graph().num_nodes(), b.graph().num_nodes()) << what;
  for (NodeId n = 0; n < a.graph().num_nodes(); ++n) {
    ASSERT_EQ(a.proc(n), b.proc(n)) << what << ": proc of node " << n;
    ASSERT_EQ(a.start(n), b.start(n)) << what << ": start of node " << n;
  }
}

std::vector<TaskGraph> property_graphs() {
  std::vector<TaskGraph> graphs;
  // RGNOS: the paper's random graphs with no known optima, across CCR and
  // parallelism extremes.
  for (const auto& [ccr, par, seed] :
       std::vector<std::tuple<double, int, std::uint64_t>>{
           {0.1, 1, 11}, {1.0, 3, 22}, {10.0, 5, 33}, {2.0, 4, 44}}) {
    RgnosParams p;
    p.num_nodes = 60;
    p.ccr = ccr;
    p.parallelism = par;
    p.seed = seed;
    graphs.push_back(rgnos_graph(p));
  }
  // RGPOS: planted-optimum graphs (very different edge structure).
  for (const std::uint64_t seed : {7u, 8u}) {
    RgposParams p;
    p.num_nodes = 50;
    p.num_procs = 4;
    p.ccr = 1.0;
    p.seed = seed;
    graphs.push_back(rgpos_graph(p).graph);
  }
  // PSG: the paper's fixed peer-set graphs (tiny, edge-case heavy).
  for (auto& entry : peer_set_graphs()) graphs.push_back(std::move(entry.graph));
  return graphs;
}

TEST(PairSelector, EtfAndDlsMatchNaiveOverGraphsProcsAndInsertion) {
  SchedWorkspace ws;
  for (const TaskGraph& g : property_graphs()) {
    ws.begin_graph(g);
    for (const int procs : {0, 2, 5}) {
      SchedOptions opt;
      opt.num_procs = procs;
      for (const bool insertion : {false, true}) {
        const std::string tag = g.name() + " procs=" + std::to_string(procs) +
                                " insertion=" + std::to_string(insertion);
        expect_identical(reference::naive_etf(g, opt, insertion),
                         reference::incremental_etf(g, opt, insertion, ws),
                         "ETF " + tag);
        expect_identical(reference::naive_dls(g, opt, insertion),
                         reference::incremental_dls(g, opt, insertion, ws),
                         "DLS " + tag);
      }
      // The production schedulers are the append-mode instantiations.
      expect_identical(reference::naive_etf(g, opt, false),
                       EtfScheduler().run(g, opt, ws),
                       "EtfScheduler " + g.name());
      expect_identical(reference::naive_dls(g, opt, false),
                       DlsScheduler().run(g, opt, ws),
                       "DlsScheduler " + g.name());
    }
  }
}

// Drive the selector with an arbitrary deterministic placement policy
// (not the ETF/DLS argmin) and, after every mutation, check each cached
// best against the exhaustive best_est_proc scan. This covers invalidation
// paths the algorithm-shaped runs may never hit on a given graph.
TEST(PairSelector, CachedBestsStayExactUnderArbitraryPlacements) {
  for (const bool insertion : {false, true}) {
    for (const std::uint64_t seed : {5u, 6u}) {
      RgnosParams p;
      p.num_nodes = 40;
      p.ccr = 1.0;
      p.parallelism = 3;
      p.seed = seed;
      const TaskGraph g = rgnos_graph(p);

      SchedWorkspace ws;
      ws.begin_graph(g);
      Schedule sched(g, effective_procs(g, {}));
      ProcScanner scanner(effective_procs(g, {}));
      ReadyList ready(g);
      IncrementalPairSelector sel(sched, scanner, insertion,
                                  ws.pair_scratch());
      for (NodeId n : ready.ready()) sel.node_ready(n);

      std::uint64_t h = seed * 0x9E3779B97F4A7C15ull;
      while (!ready.empty()) {
        for (NodeId m : ready.ready()) {
          const ProcChoice want = best_est_proc(sched, m, scanner, insertion);
          EXPECT_EQ(sel.best(m).proc, want.proc) << "node " << m;
          EXPECT_EQ(sel.best(m).start, want.start) << "node " << m;
        }
        h = h * 6364136223846793005ull + 1442695040888963407ull;
        const NodeId n = ready.ready()[(h >> 33) % ready.size()];
        h = h * 6364136223846793005ull + 1442695040888963407ull;
        const ProcId q = static_cast<ProcId>(
            (h >> 33) % static_cast<std::uint64_t>(scanner.scan_count()));
        const Time t = sched.earliest_start_on(q, sched.data_ready(n, q),
                                               g.weight(n), insertion);
        sched.place(n, q, t);
        scanner.note_placement(q);
        sel.node_placed(n, q);
        ready.mark_scheduled(n);
        for (const Adj& c : g.children(n))
          if (ready.is_ready(c.node)) sel.node_ready(c.node);
      }
    }
  }
}

// Adversarial: a placement that fills the cached best processor while a
// fresh processor stands open must move the cached pair onto the fresh
// processor -- the scenario the scan-window invalidation exists for.
TEST(PairSelector, NewlyOpenedProcessorInvalidatesCachedPair) {
  // Three independent tasks; no edges, so every EST is pure timeline.
  TaskGraphBuilder b("adversarial");
  b.add_node(10);
  b.add_node(1);
  b.add_node(1);
  const TaskGraph g = b.finalize();

  SchedWorkspace ws;
  ws.begin_graph(g);
  Schedule sched(g, 3);
  ProcScanner scanner(3);
  ReadyList ready(g);
  IncrementalPairSelector sel(sched, scanner, /*insertion=*/false,
                              ws.pair_scratch());
  for (NodeId n : ready.ready()) sel.node_ready(n);

  // Initially only processor 0 is in the scan window.
  EXPECT_EQ(sel.best(1).proc, 0);
  EXPECT_EQ(sel.best(1).start, 0);

  // Place node 0 on processor 0: the window grows to {0, 1} and nodes 1, 2
  // (cached on the now-busy processor 0) must migrate to the fresh one.
  sched.place(0, 0, 0);
  scanner.note_placement(0);
  sel.node_placed(0, 0);
  ready.mark_scheduled(0);
  EXPECT_EQ(scanner.scan_count(), 2);
  EXPECT_EQ(sel.best(1).proc, 1);
  EXPECT_EQ(sel.best(1).start, 0);
  EXPECT_EQ(sel.best(2).proc, 1);
  EXPECT_EQ(sel.best(2).start, 0);

  // Occupy the fresh processor 1: node 2's cached best sits on it, so the
  // placement must push node 2 onto newly opened processor 2, not back
  // onto processor 0 (busy until t=10).
  sched.place(1, 1, 0);
  scanner.note_placement(1);
  sel.node_placed(1, 1);
  ready.mark_scheduled(1);
  EXPECT_EQ(scanner.scan_count(), 3);
  EXPECT_EQ(sel.best(2).proc, 2);
  EXPECT_EQ(sel.best(2).start, 0);
  EXPECT_EQ(best_est_proc(sched, 2, scanner, false).proc, 2);
}

TEST(PairSelector, DlsApnMatchesNaiveUnderLinkContention) {
  for (const Topology& topo :
       {Topology::hypercube(3), Topology::ring(5), Topology::mesh(2, 3)}) {
    const RoutingTable routes{topo};
    for (const std::uint64_t seed : {3u, 9u}) {
      RgnosParams p;
      p.num_nodes = 50;
      p.ccr = 2.0;  // communication-heavy: the link probes dominate
      p.parallelism = 4;
      p.seed = seed;
      const TaskGraph g = rgnos_graph(p);

      const NetSchedule naive = reference::naive_dls_apn(g, routes);
      const NetSchedule incr = DlsApnScheduler().run(g, routes);
      expect_identical(naive.tasks(), incr.tasks(),
                       "DLS(APN) on " + topo.name());
      EXPECT_EQ(naive.makespan(), incr.makespan());
    }
  }
}

// One workspace reused across different graphs and algorithms must change
// nothing: workspace state recycles capacity, never results.
TEST(PairSelector, WorkspaceReuseIsObservationallyInert) {
  SchedWorkspace shared;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    RgnosParams p;
    p.num_nodes = 45;
    p.ccr = seed == 2 ? 10.0 : 0.5;
    p.parallelism = 2 + static_cast<int>(seed);
    p.seed = seed;
    const TaskGraph g = rgnos_graph(p);
    shared.begin_graph(g);
    expect_identical(EtfScheduler().run(g, {}), EtfScheduler().run(g, {}, shared),
                     "shared-vs-fresh ETF");
    expect_identical(DlsScheduler().run(g, {}), DlsScheduler().run(g, {}, shared),
                     "shared-vs-fresh DLS");
  }
}

TEST(PairSelector, RunRejectsWorkspaceBoundToAnotherGraph) {
  RgnosParams p;
  p.num_nodes = 10;
  p.ccr = 1.0;
  p.parallelism = 2;
  p.seed = 1;
  const TaskGraph a = rgnos_graph(p);
  p.seed = 2;
  const TaskGraph b = rgnos_graph(p);
  SchedWorkspace ws;
  ws.begin_graph(a);
  EXPECT_THROW(EtfScheduler().run(b, {}, ws), std::logic_error);
  SchedWorkspace unbound;
  EXPECT_THROW(DlsScheduler().run(a, {}, unbound), std::logic_error);
}

}  // namespace
}  // namespace tgs
