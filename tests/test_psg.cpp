// Tests for the peer-set graph suite (paper §5.1).
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/graph/attributes.h"
#include "tgs/graph/graph_io.h"

namespace tgs {
namespace {

TEST(Psg, SuiteHasSevenSmallGraphs) {
  const auto suite = peer_set_graphs();
  ASSERT_EQ(suite.size(), 7u);
  for (const auto& e : suite) {
    EXPECT_GE(e.graph.num_nodes(), 8u);
    EXPECT_LE(e.graph.num_nodes(), 31u);  // "small in size"
    EXPECT_FALSE(e.description.empty());
  }
}

TEST(Psg, Canonical9Identity) {
  const TaskGraph g = psg_canonical9();
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_EQ(critical_path_length(g), 23);
  EXPECT_EQ(g.label(0), "n1");
  EXPECT_EQ(g.label(8), "n9");
}

TEST(Psg, Irregular13Acyclic) {
  const TaskGraph g = psg_irregular13();
  EXPECT_EQ(g.num_nodes(), 13u);
  EXPECT_EQ(g.topological_order().size(), 13u);
  EXPECT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.exit_nodes().size(), 1u);
}

TEST(Psg, Pipelines16HasCrossLinks) {
  const TaskGraph g = psg_pipelines16();
  EXPECT_EQ(g.num_nodes(), 16u);
  // The long bypass message src -> sink exists.
  bool found = false;
  for (const Adj& c : g.children(0))
    if (g.label(c.node) == "sink" && c.cost == 30) found = true;
  EXPECT_TRUE(found);
}

TEST(Psg, AllSerializable) {
  for (const auto& e : peer_set_graphs()) {
    const TaskGraph copy = graph_from_string(graph_to_string(e.graph));
    EXPECT_EQ(copy.num_nodes(), e.graph.num_nodes());
    EXPECT_EQ(copy.num_edges(), e.graph.num_edges());
  }
}

}  // namespace
}  // namespace tgs
