// Golden JSONL regression tests: one tiny, fully deterministic
// configuration per experiment family, compared field-by-field against
// the committed snapshots under tests/golden/. A schema change (field
// added, renamed, reordered) or a metric drift (an algorithm silently
// scheduling differently, a generator drawing different graphs) fails
// tier-1 here instead of silently corrupting downstream results.
//
// These snapshots pin THIS repository's deterministic behaviour, not
// paper numbers. To regenerate after a deliberate change:
//
//   TGS_UPDATE_GOLDEN=1 ./test_golden_jsonl
//
// and commit the rewritten files together with the change that explains
// them. Builds pass -ffp-contract=off, so the doubles in these files are
// identical across GCC and Clang.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "experiments/experiments.h"
#include "tgs/util/cli.h"

#ifndef TGS_GOLDEN_DIR
#error "TGS_GOLDEN_DIR must point at tests/golden"
#endif

namespace tgs::bench {
namespace {

namespace fs = std::filesystem;

struct GoldenCase {
  std::string family;
  std::string file;  // under tests/golden/
  std::vector<std::string> args;
};

// Fixed seed, 2 worker threads (byte-identical to 1 by the determinism
// guarantee), --no-timing wherever a wall clock could leak in.
const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> cases{
      {"psg", "table1.jsonl",
       {"--experiment=table1", "--algo=MCP,DCP"}},
      // --bb-threads=8 pins the PARALLEL branch-and-bound path against the
      // committed snapshot (which --bb-threads=1 reproduces byte-for-byte
      // by the round-synchronous determinism guarantee).
      {"rgbos", "table2.jsonl",
       {"--experiment=table2", "--max-v=12", "--bb-nodes=200",
        "--algo=DCP", "--bb-threads=8"}},
      {"rgpos", "table4.jsonl",
       {"--experiment=table4", "--max-v=50", "--algo=DCP"}},
      {"rgnos", "fig2.jsonl",
       {"--experiment=fig2", "--max-nodes=50", "--algo=DCP,MCP,BSA"}},
      {"traced", "fig4.jsonl",
       {"--experiment=fig4", "--max-dim=8", "--algo=DCP,MCP,BSA"}},
      {"ablations", "ablate_insertion.jsonl",
       {"--experiment=ablate_insertion", "--graphs=1", "--nodes=40"}},
      {"ablations", "ablate_bb.jsonl",
       {"--experiment=ablate_bb", "--max-nodes=10", "--bb-nodes=300",
        "--naive-nodes=2000", "--no-timing", "--bb-threads=8"}},
      {"runtimes", "table6.jsonl",
       {"--experiment=table6", "--max-nodes=50", "--no-timing",
        "--algo=MCP,DCP"}},
      // One RGBOS graph x 8 parameter combinations (the CI smoke job runs
      // this exact case against the same snapshot).
      {"param", "param_sweep.jsonl",
       {"--experiment=param_sweep", "--ccr=1.0", "--max-v=10",
        "--bb-nodes=200", "--metric=sl,bl", "--ready=static,etf",
        "--insertion=append", "--cluster=none,lc"}},
  };
  return cases;
}

std::string run_case(const GoldenCase& gc) {
  const fs::path path =
      fs::temp_directory_path() /
      ("tgs_golden_" + gc.file + "_" +
       std::to_string(static_cast<unsigned long>(::getpid())));
  std::vector<std::string> args = gc.args;
  args.insert(args.begin(), "tgs_bench");
  args.push_back("--seed=7");
  args.push_back("--threads=2");
  args.push_back("--out=" + path.string());
  args.push_back("--quiet");
  args.push_back("--no-csv");
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  const Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(run_cli(cli), 0) << gc.file;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  std::error_code ec;
  fs::remove(path, ec);
  return os.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);)
    if (!line.empty()) lines.push_back(line);
  return lines;
}

/// Minimal parser for the flat JSONL objects the sink emits: returns the
/// (key, raw value token) pairs in serialization order. Raw tokens keep
/// string quotes, so "1" and 1 compare as different -- a type change is
/// schema drift too.
std::vector<std::pair<std::string, std::string>> parse_flat(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::size_t i = 0;
  const auto fail = [&](const std::string& why) {
    ADD_FAILURE() << "malformed JSONL at byte " << i << " (" << why
                  << "): " << line;
    return fields;
  };
  if (line.empty() || line.front() != '{' || line.back() != '}')
    return fail("not an object");
  i = 1;
  while (i < line.size() - 1) {
    if (line[i] == ',') ++i;
    if (line[i] != '"') return fail("expected key quote");
    std::size_t end = i + 1;
    while (end < line.size() && line[end] != '"')
      end += line[end] == '\\' ? 2 : 1;
    const std::string key = line.substr(i + 1, end - i - 1);
    i = end + 1;
    if (i >= line.size() || line[i] != ':') return fail("expected ':'");
    ++i;
    std::size_t vstart = i;
    if (line[i] == '"') {
      ++i;
      while (i < line.size() && line[i] != '"')
        i += line[i] == '\\' ? 2 : 1;
      ++i;
    } else {
      while (i < line.size() - 1 && line[i] != ',') ++i;
    }
    fields.emplace_back(key, line.substr(vstart, i - vstart));
  }
  return fields;
}

void compare_field_by_field(const std::string& file,
                            const std::string& expected,
                            const std::string& actual) {
  const auto exp_lines = split_lines(expected);
  const auto act_lines = split_lines(actual);
  ASSERT_EQ(exp_lines.size(), act_lines.size())
      << file << ": record count drifted";
  for (std::size_t i = 0; i < exp_lines.size(); ++i) {
    const auto exp = parse_flat(exp_lines[i]);
    const auto act = parse_flat(act_lines[i]);
    ASSERT_EQ(exp.size(), act.size())
        << file << " line " << i + 1 << ": field count drifted\n  expected: "
        << exp_lines[i] << "\n  actual:   " << act_lines[i];
    for (std::size_t f = 0; f < exp.size(); ++f) {
      EXPECT_EQ(exp[f].first, act[f].first)
          << file << " line " << i + 1 << " field " << f + 1
          << ": schema drift (key order or name)";
      EXPECT_EQ(exp[f].second, act[f].second)
          << file << " line " << i + 1 << " field '" << exp[f].first
          << "': value drifted";
    }
  }
}

TEST(GoldenJsonl, EveryFamilyMatchesItsSnapshot) {
  const fs::path dir{TGS_GOLDEN_DIR};
  const bool update = std::getenv("TGS_UPDATE_GOLDEN") != nullptr;
  for (const GoldenCase& gc : golden_cases()) {
    SCOPED_TRACE(gc.family + " (" + gc.file + ")");
    const std::string actual = run_case(gc);
    ASSERT_FALSE(actual.empty());
    const fs::path golden = dir / gc.file;
    if (update) {
      std::ofstream out(golden, std::ios::binary);
      out << actual;
      ASSERT_TRUE(out.good()) << "cannot update " << golden;
      continue;
    }
    ASSERT_TRUE(fs::exists(golden))
        << golden << " missing; run TGS_UPDATE_GOLDEN=1 ./test_golden_jsonl";
    std::ifstream in(golden, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    compare_field_by_field(gc.file, os.str(), actual);
  }
}

TEST(GoldenJsonl, ParserRoundTripsRepresentativeLine) {
  const auto fields = parse_flat(
      R"({"experiment":"t","job":3,"column":"a\"b","value":1.5,"valid":1})");
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], (std::pair<std::string, std::string>{"experiment",
                                                            "\"t\""}));
  EXPECT_EQ(fields[1].second, "3");
  EXPECT_EQ(fields[2].second, "\"a\\\"b\"");
  EXPECT_EQ(fields[3].second, "1.5");
  EXPECT_EQ(fields[4].second, "1");
}

}  // namespace
}  // namespace tgs::bench
