// Edge-case sweep: degenerate graphs and extreme parameters pushed
// through every algorithm and substrate. Anything that silently produces
// an invalid schedule here would poison the benchmark tables.
#include <gtest/gtest.h>

#include "tgs/gen/rgnos.h"
#include "tgs/gen/structured.h"
#include "tgs/harness/registry.h"
#include "tgs/map/cluster_map.h"
#include "tgs/net/net_validate.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/validate.h"

namespace tgs {
namespace {

TaskGraph single_node() {
  TaskGraphBuilder b("single");
  b.add_node(7);
  return b.finalize();
}

TaskGraph zero_comm_diamond() {
  // All-zero edge costs: co-location never matters.
  TaskGraphBuilder b("zerocomm");
  const NodeId a = b.add_node(3);
  const NodeId c = b.add_node(4);
  const NodeId d = b.add_node(5);
  const NodeId e = b.add_node(2);
  b.add_edge(a, c, 0);
  b.add_edge(a, d, 0);
  b.add_edge(c, e, 0);
  b.add_edge(d, e, 0);
  return b.finalize();
}

TaskGraph huge_comm_star() {
  // One source fanning to 8 children with comm 100x the weights.
  TaskGraphBuilder b("hugecomm");
  const NodeId src = b.add_node(1);
  for (int i = 0; i < 8; ++i) {
    const NodeId c = b.add_node(1);
    b.add_edge(src, c, 1000);
  }
  return b.finalize();
}

TEST(EdgeCases, SingleNodeAllAlgorithms) {
  const TaskGraph g = single_node();
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    const Schedule s = algo->run(g, {});
    EXPECT_TRUE(validate_schedule(s).ok) << algo->name();
    EXPECT_EQ(s.makespan(), 7) << algo->name();
    EXPECT_EQ(s.procs_used(), 1) << algo->name();
  }
  const RoutingTable routes{Topology::ring(4)};
  for (const auto& algo : make_apn_schedulers()) {
    const NetSchedule ns = algo->run(g, routes);
    EXPECT_TRUE(validate_net_schedule(ns).ok) << algo->name();
    EXPECT_EQ(ns.makespan(), 7) << algo->name();
  }
}

TEST(EdgeCases, SingleProcessorOptionForcesSerial) {
  const TaskGraph g = zero_comm_diamond();
  SchedOptions opt;
  opt.num_procs = 1;
  for (const auto& algo : make_bnp_schedulers()) {
    const Schedule s = algo->run(g, opt);
    EXPECT_TRUE(validate_schedule(s, 1).ok) << algo->name();
    EXPECT_EQ(s.makespan(), g.total_weight()) << algo->name();
  }
}

TEST(EdgeCases, ZeroCommGraphAllAlgorithms) {
  const TaskGraph g = zero_comm_diamond();
  // Optimal: a=3, then c||d (4,5), then e: 3+5+2 = 10 with 2 procs.
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    const Schedule s = algo->run(g, {});
    EXPECT_TRUE(validate_schedule(s).ok) << algo->name();
    EXPECT_GE(s.makespan(), 10) << algo->name();
    EXPECT_LE(s.makespan(), 14) << algo->name();  // never worse than serial
  }
}

TEST(EdgeCases, HugeCommStarPrefersSerial) {
  // With comm 1000x weights, spreading is catastrophic; every algorithm
  // except LC keeps the star on one processor (makespan 9, not >1000).
  // LC cannot: it peels the critical path (src -> one child) into a linear
  // cluster and by construction never merges the sibling leaves into it --
  // exactly the weakness the paper ascribes to linear clustering.
  const TaskGraph g = huge_comm_star();
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    const Schedule s = algo->run(g, {});
    EXPECT_TRUE(validate_schedule(s).ok) << algo->name();
    if (algo->name() == "LC") {
      EXPECT_GT(s.makespan(), 1000);  // pays the messages
    } else {
      EXPECT_EQ(s.makespan(), g.total_weight()) << algo->name();
    }
  }
}

TEST(EdgeCases, WideGraphUnlimitedProcs) {
  const TaskGraph g = independent_tasks(64, 3);
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    const Schedule s = algo->run(g, {});
    EXPECT_EQ(s.makespan(), 3) << algo->name();
    EXPECT_EQ(s.procs_used(), 64) << algo->name();
  }
}

TEST(EdgeCases, ApnSingleLinkBottleneck) {
  // Two processors, one link; everything serializes over it.
  const TaskGraph g = fork_join(6, 5, 20);
  const RoutingTable routes{Topology::ring(2)};
  for (const auto& algo : make_apn_schedulers()) {
    const NetSchedule ns = algo->run(g, routes);
    const auto v = validate_net_schedule(ns);
    EXPECT_TRUE(v.ok) << algo->name() << ": " << v.error;
  }
}

TEST(EdgeCases, ApnStarHubCongestion) {
  // Star topology: all traffic through the hub's links.
  RgnosParams p;
  p.num_nodes = 40;
  p.ccr = 2.0;
  p.seed = 3;
  const TaskGraph g = rgnos_graph(p);
  const RoutingTable routes{Topology::star(6)};
  for (const auto& algo : make_apn_schedulers()) {
    const NetSchedule ns = algo->run(g, routes);
    EXPECT_TRUE(validate_net_schedule(ns).ok) << algo->name();
  }
}

TEST(EdgeCases, ClusterMapOntoOneProc) {
  const TaskGraph g = zero_comm_diamond();
  const Schedule unc = make_scheduler("DSC")->run(g, {});
  const Schedule s = map_clusters_rcp(g, clusters_of(unc), 1);
  EXPECT_TRUE(validate_schedule(s, 1).ok);
  EXPECT_EQ(s.makespan(), g.total_weight());
}

TEST(EdgeCases, BranchAndBoundSingleNode) {
  const BBResult r = branch_and_bound(single_node(), {});
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.length, 7);
}

TEST(EdgeCases, BranchAndBoundZeroComm) {
  BBOptions opt;
  opt.num_procs = 2;
  opt.num_threads = 2;
  const BBResult r = branch_and_bound(zero_comm_diamond(), opt);
  ASSERT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.length, 10);
}

TEST(EdgeCases, MetricsOnDegenerateGraphs) {
  const TaskGraph g = single_node();
  EXPECT_DOUBLE_EQ(normalized_schedule_length(g, 7), 1.0);
  EXPECT_EQ(schedule_length_lower_bound(g, 1), 7);
  EXPECT_EQ(schedule_length_lower_bound(g, 16), 7);
}

TEST(EdgeCases, LongChainManyProcsStaysPut) {
  const TaskGraph g = chain_graph(100, 5, 9);
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    const Schedule s = algo->run(g, {});
    EXPECT_EQ(s.procs_used(), 1) << algo->name();
    EXPECT_EQ(s.makespan(), 500) << algo->name();
  }
}

TEST(EdgeCases, TwoProcsTightBound) {
  // 3 equal tasks on 2 procs: optimal 2w; all BNP algorithms achieve it.
  const TaskGraph g = independent_tasks(3, 10);
  SchedOptions opt;
  opt.num_procs = 2;
  for (const auto& algo : make_bnp_schedulers())
    EXPECT_EQ(algo->run(g, opt).makespan(), 20) << algo->name();
}

}  // namespace
}  // namespace tgs
