// Unit tests for util/: rng determinism and ranges, stats, tables, cli.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <stdexcept>

#include "tgs/util/cli.h"
#include "tgs/util/rng.h"
#include "tgs/util/stats.h"
#include "tgs/util/table.h"

namespace tgs {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-5, 17);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformMeanMatchesPaperDistribution) {
  // Paper: mean 40, min 2, max 78.
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Cost w = rng.uniform_mean(40, 2);
    EXPECT_GE(w, 2);
    EXPECT_LE(w, 78);
    sum += static_cast<double>(w);
  }
  EXPECT_NEAR(sum / n, 40.0, 0.5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng child = a.split();
  Rng a2(99);
  Rng child2 = a2.split();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child(), child2());
}

TEST(Stats, AccumulatorBasics) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  acc.add(2.0);
  acc.add(4.0);
  acc.add(6.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
  EXPECT_NEAR(acc.stddev(), 2.0, 1e-12);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, GeomeanOfPowers) {
  EXPECT_NEAR(geomean_of({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean_of({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Table, AsciiAlignsColumns) {
  Table t({"algo", "NSL"});
  t.add_row({"MCP", "1.25"});
  t.add_row({"HLFET", "1.40"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("MCP"), std::string::npos);
  EXPECT_NE(out.find("HLFET"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::fmt_int(42), "42");
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--reps=5", "--verbose", "input.tgs",
                        "--ccr=2.5"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
  EXPECT_EQ(cli.get_int("reps", 1), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("ccr", 1.0), 2.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.tgs");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, RepeatedFlagsCollectIntoList) {
  const char* argv[] = {"prog", "--algo=MCP", "--algo=DCP,ETF", "--algo=DLS"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_list("algo"),
            (std::vector<std::string>{"MCP", "DCP", "ETF", "DLS"}));
  // Scalar accessors see the last occurrence.
  EXPECT_EQ(cli.get("algo", ""), "DLS");
  EXPECT_TRUE(cli.get_list("absent").empty());
}

TEST(Cli, NumericAccessorsRejectTrailingGarbage) {
  const char* argv[] = {"prog", "--reps=12x", "--ccr=1.5z", "--ok=3"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_THROW(cli.get_int("reps", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_double("ccr", 0.0), std::invalid_argument);
  EXPECT_EQ(cli.get_int("ok", 0), 3);
}

TEST(Cli, GetIntRejectsEmptyAndOverflow) {
  const char* argv[] = {"prog", "--a=", "--b=99999999999999999999999"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_THROW(cli.get_int("a", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_int("b", 0), std::invalid_argument);
}

TEST(Rng, DeriveSeedIsDeterministicAndCollisionFree) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  std::set<std::uint64_t> seen;
  for (std::uint64_t master : {0ull, 1ull, 42ull})
    for (std::uint64_t stream = 0; stream < 10000; ++stream)
      seen.insert(derive_seed(master, stream));
  EXPECT_EQ(seen.size(), 30000u);
}

TEST(Rng, DeriveSeedDecorrelatesAdjacentStreams) {
  // Consecutive streams of one master must not produce the correlated
  // generators that seed+i would.
  Rng a(derive_seed(99, 0)), b(derive_seed(99, 1));
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
  EXPECT_NE(derive_seed(5, 1), 5 + 1);
}

}  // namespace
}  // namespace tgs
