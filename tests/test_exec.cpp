// Tests for the experiment-execution engine: thread pool lifecycle, sweep
// expansion, JSONL formatting, and the headline guarantee -- identical
// results (pivot cells AND serialized records) at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>

#include "tgs/exec/result_sink.h"
#include "tgs/exec/sweep.h"
#include "tgs/exec/thread_pool.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/util/rng.h"

namespace tgs {
namespace {

TEST(ThreadPool, RunsEveryTaskPastExhaustion) {
  // Far more tasks than workers: the queue must absorb the excess.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 1000; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1000);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, SingleWorkerPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 64; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, WaitIdleAllowsFurtherSubmissions) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&done] { ++done; });
  pool.wait_idle();
  pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPool, ShutdownDrainsQueueAndRejectsNewWork) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.shutdown();
  EXPECT_EQ(done.load(), 100);
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, CountsThrowingTasks) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  pool.submit([] {});
  pool.wait_idle();
  EXPECT_EQ(pool.tasks_failed(), 1u);
}

TEST(ThreadPool, StopWithoutDrainDiscardsUnstartedTasks) {
  ThreadPool pool(1);
  std::atomic<int> done{0};
  std::atomic<bool> started{false};
  std::atomic<bool> queued_all{false};
  // First task holds the single worker until (a) the 50 tasks behind it are
  // all queued and (b) the queue has been emptied -- which, with the worker
  // parked here, only stop(drain=false)'s discard can do. That makes the
  // discard deterministic: no queued task can ever start.
  pool.submit([&pool, &started, &queued_all] {
    started.store(true);
    while (!queued_all.load() || pool.pending() != 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  // Wait until the blocker is *running* (off the queue), so exactly the 50
  // tasks below are in the queue when stop discards it.
  while (!started.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (int i = 0; i < 50; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  queued_all.store(true);
  pool.stop(/*drain=*/false);
  EXPECT_EQ(done.load(), 0);
  EXPECT_EQ(pool.tasks_discarded(), 50u);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  pool.stop(false);  // idempotent
}

TEST(ThreadPool, StopWithDrainMatchesShutdown) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.stop(/*drain=*/true);
  EXPECT_EQ(done.load(), 100);
  EXPECT_EQ(pool.tasks_discarded(), 0u);
}

TEST(ThreadPool, QueueDepthCountsQueuedAndRunning) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queue_depth(), 0u);
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  pool.submit([] {});
  // Wait for the steady state: blocker running + one task queued. pending()
  // alone under-reports backpressure (it misses the running task).
  while (pool.pending() != 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(pool.queue_depth(), 2u);
  EXPECT_EQ(pool.pending(), 1u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(Sweep, ExpansionCountsAndOrder) {
  Sweep sweep;
  sweep.axis("a", {1, 2}).axis("b", {10, 20, 30}).replications(4);
  EXPECT_EQ(sweep.size(), 24u);
  const auto points = sweep.expand();
  ASSERT_EQ(points.size(), 24u);
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].index, i);
  // Replication varies fastest, then the last axis.
  EXPECT_EQ(points[0].param("a"), 1);
  EXPECT_EQ(points[0].param("b"), 10);
  EXPECT_EQ(points[0].replication, 0);
  EXPECT_EQ(points[3].replication, 3);
  EXPECT_EQ(points[4].param("b"), 20);
  EXPECT_EQ(points[12].param("a"), 2);
  EXPECT_THROW(points[0].param("missing"), std::invalid_argument);
}

TEST(Sweep, EmptyAxisExpandsToNothing) {
  Sweep sweep;
  sweep.axis("a", {1, 2}).axis("empty", {});
  EXPECT_EQ(sweep.size(), 0u);
  EXPECT_TRUE(sweep.expand().empty());
}

TEST(Sweep, NoAxesIsOnePointPerReplication) {
  Sweep sweep;
  sweep.replications(3);
  EXPECT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep.expand().size(), 3u);
}

TEST(Sweep, DerivedSeedsAreDistinctPerJob) {
  Sweep sweep;
  sweep.axis("v", {1, 2, 3, 4}).replications(50);
  std::set<std::uint64_t> seeds;
  for (const SweepPoint& p : sweep.expand())
    seeds.insert(derive_seed(123, p.index));
  EXPECT_EQ(seeds.size(), 200u);
}

TEST(Sweep, LabelledAxisExposesLabels) {
  Sweep sweep;
  sweep.axis("machine", {8, 12}, {"ring8", "hcube3"}).axis("i", {0, 1, 2});
  const auto points = sweep.expand();
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].label("machine"), "ring8");
  EXPECT_EQ(points[0].param("machine"), 8);
  EXPECT_EQ(points[3].label("machine"), "hcube3");
  EXPECT_EQ(points[3].param("machine"), 12);
  // "i" is unlabelled; asking for its label is an error.
  EXPECT_THROW(points[0].label("i"), std::invalid_argument);
  EXPECT_THROW(points[0].label("missing"), std::invalid_argument);
}

TEST(Sweep, LabelledAxisSizeMismatchThrows) {
  Sweep sweep;
  EXPECT_THROW(sweep.axis("m", {1, 2, 3}, {"a", "b"}), std::invalid_argument);
}

TEST(Jsonl, EscapingAndShortestDoubles) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_double(10.0), "10");
  EXPECT_EQ(json_double(0.5), "0.5");
  EXPECT_EQ(json_double(1.0 / 3.0), "0.3333333333333333");
  JsonObject obj;
  obj.add("name", "MCP").add("nsl", 1.25).add_int("v", -3).add("ok", true);
  EXPECT_EQ(obj.str(), "{\"name\":\"MCP\",\"nsl\":1.25,\"v\":-3,\"ok\":true}");
}

TEST(ResultSink, StreamsInJobOrderRegardlessOfArrival) {
  std::ostringstream os;
  JsonlWriter writer(os);
  ResultSink sink("t", &writer);
  sink.start(3);
  const auto result = [](std::uint64_t index, const char* column) {
    JobResult r;
    r.index = index;
    Record rec;
    rec.pivot = "p";
    rec.column = column;
    r.records.push_back(rec);
    return r;
  };
  sink.submit(result(2, "c"));
  EXPECT_EQ(os.str(), "");  // jobs 0-1 still outstanding
  sink.submit(result(0, "a"));
  sink.submit(result(1, "b"));
  sink.finish();
  const std::string text = os.str();
  const auto pos_a = text.find("\"a\""), pos_b = text.find("\"b\""),
             pos_c = text.find("\"c\"");
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_c);
  EXPECT_THROW(sink.submit(result(0, "late")), std::logic_error);
}

// -------------------------- adversarial completion-order reorder tests ----

JobResult one_record_result(std::uint64_t index) {
  JobResult r;
  r.index = index;
  Record rec;
  rec.pivot = "p";
  rec.row = static_cast<double>(index);
  rec.column = "col" + std::to_string(index);
  rec.value = static_cast<double>(index) * 1.5;
  r.records.push_back(std::move(rec));
  return r;
}

std::string sink_bytes_for_order(const std::vector<std::uint64_t>& order) {
  std::ostringstream os;
  JsonlWriter writer(os);
  ResultSink sink("adv", &writer);
  sink.start(order.size());
  for (const std::uint64_t index : order)
    sink.submit(one_record_result(index));
  sink.finish();
  return os.str();
}

TEST(ResultSink, ReverseCompletionOrderBuffersEverythingThenStreams) {
  // Worst case for the reorder buffer: job 0 arrives last, so nothing may
  // be written until the very end -- and then everything, in job order.
  const std::size_t n = 64;
  std::ostringstream os;
  JsonlWriter writer(os);
  ResultSink sink("adv", &writer);
  sink.start(n);
  for (std::uint64_t index = n; index-- > 1;) {
    sink.submit(one_record_result(index));
    EXPECT_EQ(os.str(), "") << "leaked output while job 0 outstanding";
  }
  sink.submit(one_record_result(0));  // fills the gap: full flush
  sink.finish();

  std::vector<std::uint64_t> in_order(n);
  for (std::uint64_t i = 0; i < n; ++i) in_order[i] = i;
  EXPECT_EQ(os.str(), sink_bytes_for_order(in_order));
}

TEST(ResultSink, RandomCompletionOrderIsByteIdenticalToSerial) {
  const std::size_t n = 97;
  std::vector<std::uint64_t> in_order(n), shuffled(n);
  for (std::uint64_t i = 0; i < n; ++i) in_order[i] = shuffled[i] = i;
  // Deterministic Fisher-Yates on a fixed LCG, so the adversarial order is
  // reproducible run to run.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = n; i-- > 1;) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(shuffled[i], shuffled[(state >> 33) % (i + 1)]);
  }
  EXPECT_NE(shuffled, in_order);
  EXPECT_EQ(sink_bytes_for_order(shuffled), sink_bytes_for_order(in_order));
}

TEST(ResultSink, InterleavedGapsFlushExactlyTheCompletedPrefix) {
  std::ostringstream os;
  JsonlWriter writer(os);
  ResultSink sink("adv", &writer);
  sink.start(5);
  sink.submit(one_record_result(1));
  sink.submit(one_record_result(3));
  EXPECT_EQ(os.str(), "");  // job 0 missing: nothing flushed
  sink.submit(one_record_result(0));
  std::string text = os.str();  // prefix 0..1 flushed, 2 still blocks 3
  EXPECT_NE(text.find("\"col0\""), std::string::npos);
  EXPECT_NE(text.find("\"col1\""), std::string::npos);
  EXPECT_EQ(text.find("\"col3\""), std::string::npos);
  sink.submit(one_record_result(2));
  text = os.str();  // 2 unblocks 3
  EXPECT_NE(text.find("\"col3\""), std::string::npos);
  EXPECT_EQ(text.find("\"col4\""), std::string::npos);
  sink.submit(one_record_result(4));
  sink.finish();
  EXPECT_NE(os.str().find("\"col4\""), std::string::npos);
}

TEST(ResultSink, RejectsBadIndices) {
  ResultSink sink("t");
  sink.start(2);
  JobResult r;
  r.index = 5;
  EXPECT_THROW(sink.submit(std::move(r)), std::out_of_range);
  JobResult a;
  a.index = 0;
  sink.submit(std::move(a));
  JobResult dup;
  dup.index = 0;
  EXPECT_THROW(sink.submit(std::move(dup)), std::logic_error);
}

// A small but real sweep: RGNOS graphs through two schedulers. Used to pin
// the engine's core guarantee at different thread counts.
struct MiniSweepOutput {
  std::string jsonl;
  std::vector<std::pair<double, double>>
      cells;  // (row, mean NSL) per algorithm in fold order
  std::size_t errors = 0;
};

MiniSweepOutput run_mini_sweep(int threads, std::uint64_t seed) {
  Sweep sweep;
  sweep.axis("v", {20, 30, 40}).replications(3);
  std::ostringstream os;
  JsonlWriter writer(os);
  ResultSink sink("mini", &writer);
  run_sweep(
      sweep, seed, threads,
      [](const JobContext& jc, const SweepPoint& pt) {
        RgnosParams params;
        params.num_nodes = static_cast<NodeId>(pt.param("v"));
        params.ccr = 1.0;
        params.parallelism = 2;
        params.seed = jc.seed;
        const TaskGraph g = rgnos_graph(params);
        std::vector<Record> records;
        for (const char* name : {"MCP", "DCP"}) {
          const RunResult rr = run_scheduler(*make_scheduler(name), g, {});
          records.push_back(record_from_run(rr, "nsl", pt.param("v"), rr.nsl));
        }
        return records;
      },
      sink);
  MiniSweepOutput out;
  out.jsonl = os.str();
  out.errors = sink.num_errors();
  PivotStats stats("v", {"MCP", "DCP"});
  sink.fold("nsl", stats);
  for (const double v : {20.0, 30.0, 40.0})
    for (const char* name : {"MCP", "DCP"}) {
      const StatAccumulator* cell = stats.cell(v, name);
      out.cells.emplace_back(v, cell ? cell->mean() : -1.0);
    }
  return out;
}

TEST(Engine, IdenticalResultsAtAnyThreadCount) {
  const MiniSweepOutput serial = run_mini_sweep(1, 42);
  const MiniSweepOutput parallel = run_mini_sweep(8, 42);
  EXPECT_EQ(serial.errors, 0u);
  EXPECT_EQ(parallel.errors, 0u);
  EXPECT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.jsonl, parallel.jsonl);  // byte-identical stream
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].first, parallel.cells[i].first);
    EXPECT_EQ(serial.cells[i].second, parallel.cells[i].second);  // exact
  }
}

TEST(Engine, DifferentSeedsChangeResults) {
  const MiniSweepOutput a = run_mini_sweep(2, 1);
  const MiniSweepOutput b = run_mini_sweep(2, 2);
  EXPECT_NE(a.jsonl, b.jsonl);
}

TEST(Engine, DuplicateJobIndicesAreAProgrammingError) {
  // Sink rejections are not job errors; run_jobs must refuse to return a
  // silently incomplete result set.
  std::vector<Job> jobs(2);
  for (Job& job : jobs) {
    job.ctx.index = 0;  // both claim slot 0
    job.fn = [](const JobContext&) { return std::vector<Record>{}; };
  }
  ResultSink sink("dup");
  EXPECT_THROW(run_jobs(jobs, 2, sink), std::logic_error);
}

TEST(Engine, ThrowingJobIsReportedNotFatal) {
  Sweep sweep;
  sweep.axis("v", {1, 2});
  ResultSink sink("err");
  run_sweep(
      sweep, 7, 2,
      [](const JobContext&, const SweepPoint& pt) -> std::vector<Record> {
        if (pt.param("v") == 2) throw std::runtime_error("job exploded");
        return {};
      },
      sink);
  EXPECT_EQ(sink.num_errors(), 1u);
  EXPECT_EQ(sink.first_error(), "job exploded");
  EXPECT_EQ(sink.results().size(), 2u);
}

}  // namespace
}  // namespace tgs
