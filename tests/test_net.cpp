// Tests for the network substrate: topologies, routing (CSR paths and the
// per-source routing-tree sweep), message scheduling, one-to-all probes,
// APN validation.
#include <gtest/gtest.h>

#include <vector>

#include "tgs/gen/structured.h"
#include "tgs/net/net_schedule.h"
#include "tgs/net/net_validate.h"
#include "tgs/net/routing.h"
#include "tgs/net/topology.h"
#include "tgs/util/rng.h"

namespace tgs {
namespace {

std::vector<Topology> probe_topo_zoo() {
  std::vector<Topology> topos;
  topos.push_back(Topology::ring(7));
  topos.push_back(Topology::mesh(3, 3));
  topos.push_back(Topology::hypercube(3));
  topos.push_back(Topology::star(6));
  topos.push_back(Topology::fully_connected(5));
  topos.push_back(Topology::random_connected(9, 0.25, 11));
  topos.push_back(Topology::random_connected(12, 0.1, 23));
  return topos;
}

TEST(Topology, CliqueCounts) {
  const Topology t = Topology::fully_connected(6);
  EXPECT_EQ(t.num_procs(), 6);
  EXPECT_EQ(t.num_links(), 15);
  EXPECT_EQ(t.degree(0), 5);
}

TEST(Topology, RingCounts) {
  const Topology t = Topology::ring(8);
  EXPECT_EQ(t.num_links(), 8);
  for (int p = 0; p < 8; ++p) EXPECT_EQ(t.degree(p), 2);
  EXPECT_GE(t.link_between(0, 7), 0);
  EXPECT_EQ(t.link_between(0, 3), -1);
}

TEST(Topology, RingOfTwo) {
  const Topology t = Topology::ring(2);
  EXPECT_EQ(t.num_links(), 1);
}

TEST(Topology, MeshCounts) {
  const Topology t = Topology::mesh(2, 4);
  EXPECT_EQ(t.num_procs(), 8);
  EXPECT_EQ(t.num_links(), 2 * 3 + 4);  // rows*(cols-1) + cols*(rows-1)
  EXPECT_EQ(t.degree(0), 2);            // corner
}

TEST(Topology, HypercubeCounts) {
  const Topology t = Topology::hypercube(3);
  EXPECT_EQ(t.num_procs(), 8);
  EXPECT_EQ(t.num_links(), 12);  // d * 2^d / 2
  for (int p = 0; p < 8; ++p) EXPECT_EQ(t.degree(p), 3);
}

TEST(Topology, StarHub) {
  const Topology t = Topology::star(5);
  EXPECT_EQ(t.num_links(), 4);
  EXPECT_EQ(t.max_degree_proc(), 0);
}

TEST(Topology, RandomConnectedIsConnected) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Topology t = Topology::random_connected(9, 0.2, seed);
    // RoutingTable construction throws if disconnected.
    EXPECT_NO_THROW(RoutingTable{t});
  }
}

TEST(Topology, DeterministicRandom) {
  const Topology a = Topology::random_connected(7, 0.3, 5);
  const Topology b = Topology::random_connected(7, 0.3, 5);
  EXPECT_EQ(a.links(), b.links());
}

TEST(Routing, CliqueSingleHop) {
  const Topology t = Topology::fully_connected(4);
  const RoutingTable r(t);
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b)
      if (a != b) EXPECT_EQ(r.distance(a, b), 1);
}

TEST(Routing, RingShortestPath) {
  const Topology t = Topology::ring(6);
  const RoutingTable r(t);
  EXPECT_EQ(r.distance(0, 3), 3);
  EXPECT_EQ(r.distance(0, 5), 1);
  EXPECT_EQ(r.distance(2, 4), 2);
}

TEST(Routing, HypercubeHammingDistance) {
  const Topology t = Topology::hypercube(4);
  const RoutingTable r(t);
  EXPECT_EQ(r.distance(0b0000, 0b1111), 4);
  EXPECT_EQ(r.distance(0b0101, 0b0100), 1);
}

TEST(Routing, PathsUseAdjacentLinks) {
  const Topology t = Topology::mesh(3, 3);
  const RoutingTable r(t);
  for (int a = 0; a < 9; ++a)
    for (int b = 0; b < 9; ++b) {
      if (a == b) continue;
      // Verify the link sequence is a connected path from a to b.
      int cur = a;
      for (int link : r.path_links(a, b)) {
        const auto [x, y] = t.links()[link];
        ASSERT_TRUE(cur == x || cur == y);
        cur = cur == x ? y : x;
      }
      EXPECT_EQ(cur, b);
    }
}

TEST(Routing, SweepIsTheRoutingTreeInParentFirstOrder) {
  for (const Topology& t : probe_topo_zoo()) {
    const RoutingTable r(t);
    const int p = t.num_procs();
    for (int src = 0; src < p; ++src) {
      const auto steps = r.sweep(src);
      ASSERT_EQ(steps.size(), static_cast<std::size_t>(p - 1));
      std::vector<bool> reached(p, false);
      reached[src] = true;
      for (const RoutingTable::SweepStep& st : steps) {
        // Parents precede children, every step crosses a real link, and
        // the step's route is the parent's route plus one hop.
        EXPECT_TRUE(reached[st.parent]);
        EXPECT_FALSE(reached[st.proc]);
        reached[st.proc] = true;
        EXPECT_EQ(t.link_between(st.parent, st.proc), st.link);
        const auto parent_path = r.path_links(src, st.parent);
        const auto path = r.path_links(src, st.proc);
        ASSERT_EQ(path.size(), parent_path.size() + 1);
        for (std::size_t h = 0; h < parent_path.size(); ++h)
          EXPECT_EQ(path[h], parent_path[h]);
        EXPECT_EQ(path.back(), st.link);
      }
      for (int dst = 0; dst < p; ++dst) EXPECT_TRUE(reached[dst]);
    }
  }
}

TEST(NetSchedule, ProbeArrivalAllMatchesPerDestination) {
  // One-to-all routing-tree sweeps against per-destination probes, under
  // random link contention: commit messages from a synthetic fan-out
  // graph, then compare every (src, size, depart) sweep.
  const TaskGraph g = fork_join(40, 10, 25);
  for (const Topology& topo : probe_topo_zoo()) {
    const RoutingTable routes(topo);
    const int p = topo.num_procs();
    Rng rng(2026);
    NetSchedule ns(g, routes);
    ns.tasks().place(0, 0, 0);  // fork node feeds all messages
    int committed = 0;
    for (NodeId w = 1; w <= 40; ++w) {
      const int dst = static_cast<int>(rng.uniform_int(0, p - 1));
      if (dst != 0) ++committed;
      ns.commit_message(0, w, dst);  // co-located commits are no-ops
    }
    ASSERT_GT(committed, 0);
    std::vector<Time> all(static_cast<std::size_t>(p));
    for (int src = 0; src < p; ++src) {
      for (const Cost size : {0, 3, 25, 400}) {
        const Time depart = rng.uniform_int(0, 500);
        ns.probe_arrival_all(src, size, depart, all);
        for (int dst = 0; dst < p; ++dst)
          EXPECT_EQ(all[dst], ns.probe_arrival(src, dst, size, depart))
              << topo.name() << " src=" << src << " dst=" << dst
              << " size=" << size << " depart=" << depart;
      }
    }
  }
}

TEST(NetSchedule, FindMessageIsKeyed) {
  const TaskGraph g = fork_join(2, 10, 8);
  const RoutingTable routes{Topology::ring(4)};
  NetSchedule ns(g, routes);
  ns.tasks().place(0, 0, 0);
  ns.commit_message(0, 1, 1);
  ASSERT_NE(ns.find_message(0, 1), nullptr);
  EXPECT_EQ(ns.find_message(0, 1)->src, 0u);
  EXPECT_EQ(ns.find_message(0, 1)->dst, 1u);
  EXPECT_EQ(ns.find_message(0, 2), nullptr);
  EXPECT_EQ(ns.find_message(1, 0), nullptr);  // direction matters
  ns.release_message(0, 1);
  EXPECT_EQ(ns.find_message(0, 1), nullptr);
}

TEST(NetSchedule, MessageHopsAndContention) {
  // Two messages over the same ring link must serialize.
  const TaskGraph g = fork_join(2, 10, 8);  // fork(0) w1(1) w2(2) join(3)
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  NetSchedule ns(g, routes);
  ns.tasks().place(0, 0, 0);  // fork on P0, finishes at 10
  // Both workers on P1: two messages 0->1 over the same link.
  const Time a1 = ns.commit_message(0, 1, 1);
  const Time a2 = ns.commit_message(0, 2, 1);
  EXPECT_EQ(a1, 18);  // depart 10 + 8
  EXPECT_EQ(a2, 26);  // serialized behind the first
  ns.tasks().place(1, 1, a1);
  ns.tasks().place(2, 1, 28);
  // Join back on P0.
  const Time a3 = ns.commit_message(1, 3, 0);
  const Time a4 = ns.commit_message(2, 3, 0);
  ns.tasks().place(3, 0, std::max(a3, a4));
  const auto v = validate_net_schedule(ns);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(NetSchedule, MultiHopStoreAndForward) {
  const TaskGraph g = chain_graph(2, 10, 6);
  const Topology topo = Topology::ring(6);  // 0 -> 3 needs 3 hops
  const RoutingTable routes(topo);
  NetSchedule ns(g, routes);
  ns.tasks().place(0, 0, 0);
  const Time arrival = ns.commit_message(0, 1, 3);
  EXPECT_EQ(arrival, 10 + 3 * 6);
  ns.tasks().place(1, 3, arrival);
  EXPECT_TRUE(validate_net_schedule(ns).ok);
  ASSERT_EQ(ns.messages().size(), 1u);
  EXPECT_EQ(ns.messages()[0].hops.size(), 3u);
}

TEST(NetSchedule, ProbeMatchesCommitWhenUncontended) {
  const TaskGraph g = chain_graph(2, 10, 6);
  const Topology topo = Topology::mesh(2, 2);
  const RoutingTable routes(topo);
  NetSchedule ns(g, routes);
  ns.tasks().place(0, 0, 0);
  const Time probe = ns.probe_arrival(0, 3, 6, 10);
  const Time commit = ns.commit_message(0, 1, 3);
  EXPECT_EQ(probe, commit);
}

TEST(NetSchedule, ReleaseMessageFreesLinks) {
  const TaskGraph g = chain_graph(2, 10, 6);
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  NetSchedule ns(g, routes);
  ns.tasks().place(0, 0, 0);
  ns.commit_message(0, 1, 1);
  EXPECT_EQ(ns.messages().size(), 1u);
  ns.release_message(0, 1);
  EXPECT_TRUE(ns.messages().empty());
  const int link = topo.link_between(0, 1);
  EXPECT_TRUE(ns.link_timeline(link).empty());
}

TEST(NetValidate, CatchesMissingMessage) {
  const TaskGraph g = chain_graph(2, 10, 6);
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  NetSchedule ns(g, routes);
  ns.tasks().place(0, 0, 0);
  ns.tasks().place(1, 1, 100);  // no message committed
  const auto v = validate_net_schedule(ns);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("missing message"), std::string::npos);
}

TEST(NetValidate, CatchesEarlyStart) {
  const TaskGraph g = chain_graph(2, 10, 6);
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  NetSchedule ns(g, routes);
  ns.tasks().place(0, 0, 0);
  const Time arrival = ns.commit_message(0, 1, 1);
  ns.tasks().place(1, 1, arrival - 1);  // starts before the message lands
  EXPECT_FALSE(validate_net_schedule(ns).ok);
}

TEST(NetValidate, SameProcNeedsNoMessage) {
  const TaskGraph g = chain_graph(2, 10, 6);
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  NetSchedule ns(g, routes);
  ns.tasks().place(0, 2, 0);
  ns.tasks().place(1, 2, 10);
  EXPECT_TRUE(validate_net_schedule(ns).ok);
}

}  // namespace
}  // namespace tgs
