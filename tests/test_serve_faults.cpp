// Robustness tests for the serving stack, driven by the deterministic
// fault-injection layer (serve/faults.h): journal crash recovery, torn
// tails, deadline cancellation with worker reuse, EINTR/short-IO storms,
// load shedding, bounded request lines, and cache allocation failure.
// Every scripted failure asserts the exact structured error -- and that
// schedules remain byte-identical to direct runs through all of it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tgs/exec/jsonl.h"
#include "tgs/gen/rgnos.h"
#include "tgs/graph/graph_io.h"
#include "tgs/harness/registry.h"
#include "tgs/net/routing.h"
#include "tgs/net/topology.h"
#include "tgs/sched/schedule_io.h"
#include "tgs/sched/workspace.h"
#include "tgs/serve/cache.h"
#include "tgs/serve/faults.h"
#include "tgs/serve/json.h"
#include "tgs/serve/persist.h"
#include "tgs/serve/protocol.h"
#include "tgs/serve/server.h"
#include "tgs/serve/socket.h"

namespace tgs {
namespace {

TaskGraph random_graph(std::uint64_t seed, NodeId nodes = 60) {
  RgnosParams p;
  p.num_nodes = nodes;
  p.ccr = 1.0;
  p.parallelism = 3;
  p.seed = seed;
  return rgnos_graph(p);
}

/// The global FaultPlan outlives each test; this guard guarantees no
/// script leaks into the next one, even through an ASSERT bailout.
struct FaultGuard {
  FaultGuard() { FaultPlan::global().clear(); }
  explicit FaultGuard(const std::string& spec) {
    FaultPlan::global().clear();
    FaultPlan::global().arm_spec(spec);
  }
  ~FaultGuard() { FaultPlan::global().clear(); }
};

std::string unique_tmp(const char* tag, const char* ext) {
  static std::atomic<int> counter{0};
  return std::string("/tmp/tgs_") + tag + "_" + std::to_string(getpid()) +
         "_" + std::to_string(counter.fetch_add(1)) + ext;
}

/// Remove a file on scope exit (journals and their compaction temps).
struct FileJanitor {
  std::string path;
  ~FileJanitor() {
    ::unlink(path.c_str());
    ::unlink((path + ".tmp").c_str());
  }
};

// -------------------------------------------------------------- FaultPlan --

TEST(FaultPlan, SkipCountAndArgScript) {
  FaultGuard fg("worker_stall@2*3:250");
  std::int64_t arg = 0;
  // Hits 0,1 pass through; 2,3,4 fire with arg 250; 5+ pass again.
  for (int hit = 0; hit < 7; ++hit) {
    const bool fired = FaultPlan::hit(FaultPoint::kWorkerStall, &arg);
    EXPECT_EQ(fired, hit >= 2 && hit <= 4) << "hit " << hit;
    if (fired) EXPECT_EQ(arg, 250);
  }
  EXPECT_EQ(FaultPlan::global().fired(FaultPoint::kWorkerStall), 3u);
}

TEST(FaultPlan, UnlimitedCountAndIndependentPoints) {
  FaultGuard fg("read_eintr*");
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(FaultPlan::hit(FaultPoint::kReadEintr));
  // Unarmed points never fire even while another is armed.
  EXPECT_FALSE(FaultPlan::hit(FaultPoint::kWriteEintr));
  EXPECT_FALSE(FaultPlan::hit(FaultPoint::kCacheOom));
}

TEST(FaultPlan, PercentIsDeterministicInSeed) {
  const auto pattern_for = [](std::uint64_t seed) {
    FaultGuard fg;
    FaultPlan::global().arm_spec("write_short*:1~30,seed=" +
                                 std::to_string(seed));
    std::string pattern;
    for (int i = 0; i < 64; ++i)
      pattern += FaultPlan::hit(FaultPoint::kWriteShort) ? '1' : '0';
    return pattern;
  };
  EXPECT_EQ(pattern_for(7), pattern_for(7));
  EXPECT_NE(pattern_for(7), pattern_for(8));
  EXPECT_NE(pattern_for(7), std::string(64, '1'));
  EXPECT_NE(pattern_for(7), std::string(64, '0'));
}

TEST(FaultPlan, SpecErrorsNameTheProblem) {
  FaultGuard fg;
  EXPECT_THROW(FaultPlan::global().arm_spec("frobnicate"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::global().arm_spec("read_eintr@x"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::global().arm_spec("read_eintr~150"),
               std::invalid_argument);
  try {
    FaultPlan::global().arm_spec("no_such_point*2");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    // The message enumerates the valid points for discoverability.
    EXPECT_NE(std::string(e.what()).find("journal_torn"), std::string::npos);
  }
}

TEST(FaultPlan, ZeroCostWhenEmpty) {
  FaultGuard fg;
  for (int i = 0; i < 1000; ++i)
    ASSERT_FALSE(FaultPlan::hit(FaultPoint::kReadEintr));
}

// ---------------------------------------------------------------- journal --

CachedSchedule sample_value(int n) {
  CachedSchedule v;
  v.makespan = 100 + n;
  v.nsl = 1.25 + n;
  v.procs_used = n;
  v.num_messages = static_cast<std::size_t>(n) * 3;
  v.schedule_text = "tgssched1 sample " + std::string(n * 17, 'x');
  return v;
}

TEST(Journal, RoundTripsEntriesAcrossReopen) {
  const std::string path = unique_tmp("journal", ".tgsj");
  FileJanitor jan{path};
  {
    Journal j;
    j.open(path, /*fsync_every=*/1);
    EXPECT_EQ(j.recovery().replayed, 0u);
    for (int n = 0; n < 5; ++n) j.append("key" + std::to_string(n),
                                         sample_value(n));
    EXPECT_EQ(j.appends(), 5u);
  }
  Journal j;
  j.open(path, 1);
  const JournalRecovery& rec = j.recovery();
  EXPECT_FALSE(rec.tail_truncated);
  EXPECT_EQ(rec.truncated_bytes, 0u);
  ASSERT_EQ(rec.replayed, 5u);
  for (int n = 0; n < 5; ++n) {
    const auto& [key, value] = rec.entries[static_cast<std::size_t>(n)];
    const CachedSchedule want = sample_value(n);
    EXPECT_EQ(key, "key" + std::to_string(n));
    EXPECT_EQ(value.makespan, want.makespan);
    EXPECT_EQ(value.nsl, want.nsl);  // bit-exact: stored as IEEE bits
    EXPECT_EQ(value.procs_used, want.procs_used);
    EXPECT_EQ(value.num_messages, want.num_messages);
    EXPECT_EQ(value.schedule_text, want.schedule_text);
  }
}

TEST(Journal, TornWriteFaultLosesOnlyTheTornRecord) {
  const std::string path = unique_tmp("journal", ".tgsj");
  FileJanitor jan{path};
  {
    FaultGuard fg("journal_torn@2");  // 3rd append is torn
    Journal j;
    j.open(path, 1);
    for (int n = 0; n < 4; ++n) j.append("key" + std::to_string(n),
                                         sample_value(n));
    // The torn write sealed the journal: append 3 was also dropped, just
    // as if the process had died mid-record.
    EXPECT_EQ(FaultPlan::global().fired(FaultPoint::kJournalTorn), 1u);
  }
  Journal j;
  j.open(path, 1);
  EXPECT_TRUE(j.recovery().tail_truncated);
  EXPECT_GT(j.recovery().truncated_bytes, 0u);
  ASSERT_EQ(j.recovery().replayed, 2u);
  EXPECT_EQ(j.recovery().entries[0].first, "key0");
  EXPECT_EQ(j.recovery().entries[1].first, "key1");

  // The truncation repaired the file: appends work again and survive.
  j.append("after", sample_value(9));
  j.close();
  Journal j2;
  j2.open(path, 1);
  ASSERT_EQ(j2.recovery().replayed, 3u);
  EXPECT_EQ(j2.recovery().entries[2].first, "after");
  EXPECT_FALSE(j2.recovery().tail_truncated);
}

TEST(Journal, TrailingGarbageIsTruncatedNotFatal) {
  const std::string path = unique_tmp("journal", ".tgsj");
  FileJanitor jan{path};
  {
    Journal j;
    j.open(path, 1);
    j.append("a", sample_value(1));
    j.append("b", sample_value(2));
  }
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "\x03\x00\x00\x00garbage-that-is-not-a-record";
  }
  Journal j;
  j.open(path, 1);
  EXPECT_TRUE(j.recovery().tail_truncated);
  ASSERT_EQ(j.recovery().replayed, 2u);
  EXPECT_EQ(j.recovery().entries[1].first, "b");
}

TEST(Journal, CorruptedRecordEndsTheValidPrefix) {
  const std::string path = unique_tmp("journal", ".tgsj");
  FileJanitor jan{path};
  {
    Journal j;
    j.open(path, 1);
    j.append("a", sample_value(1));
    j.append("b", sample_value(2));
  }
  // Flip one byte inside the FIRST record's payload: its CRC no longer
  // matches, so recovery must stop before it -- record "b" is
  // unreachable (append-only files have no record index to resync on).
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8 + 8 + 6);  // magic + frame + a few payload bytes
    f.put('\xFF');
  }
  Journal j;
  j.open(path, 1);
  EXPECT_TRUE(j.recovery().tail_truncated);
  EXPECT_EQ(j.recovery().replayed, 0u);
}

TEST(Journal, GarbageHeaderResetsTheJournal) {
  const std::string path = unique_tmp("journal", ".tgsj");
  FileJanitor jan{path};
  {
    std::ofstream f(path, std::ios::binary);
    f << "definitely not a TGSJRNL1 file, but long enough to try";
  }
  Journal j;
  j.open(path, 1);
  EXPECT_TRUE(j.recovery().tail_truncated);
  EXPECT_EQ(j.recovery().replayed, 0u);
  EXPECT_GT(j.recovery().truncated_bytes, 0u);
  // And it is a working journal again.
  j.append("fresh", sample_value(4));
  j.close();
  Journal j2;
  j2.open(path, 1);
  ASSERT_EQ(j2.recovery().replayed, 1u);
  EXPECT_EQ(j2.recovery().entries[0].first, "fresh");
}

TEST(Journal, CompactionKeepsExactlyTheLiveSet) {
  const std::string path = unique_tmp("journal", ".tgsj");
  FileJanitor jan{path};
  Journal j;
  j.open(path, 1);
  // Dead weight: repeated keys and soon-to-be-dropped entries.
  for (int n = 0; n < 6; ++n) j.append("key" + std::to_string(n % 2),
                                       sample_value(n));
  std::vector<std::pair<std::string, CachedSchedule>> live = {
      {"key0", sample_value(4)}, {"key1", sample_value(5)}};
  j.compact(live);
  EXPECT_EQ(j.compactions(), 1u);
  EXPECT_EQ(j.appends_since_compact(), 0u);
  j.close();

  Journal j2;
  j2.open(path, 1);
  EXPECT_FALSE(j2.recovery().tail_truncated);
  ASSERT_EQ(j2.recovery().replayed, 2u);
  EXPECT_EQ(j2.recovery().entries[0].first, "key0");
  EXPECT_EQ(j2.recovery().entries[0].second.makespan, sample_value(4).makespan);
  EXPECT_EQ(j2.recovery().entries[1].first, "key1");
}

TEST(Journal, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32_ieee("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32_ieee("", 0), 0u);
}

// ----------------------------------------------- cooperative cancellation --

TEST(Deadline, ExpiredDeadlineCancelsParamSchedulerRun) {
  const TaskGraph g = random_graph(3, 80);
  const SchedulerPtr algo = make_scheduler("MCP");
  SchedWorkspace ws;
  ws.begin_graph(g);
  ws.deadline().arm(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_THROW(algo->run(g, SchedOptions{}, ws), DeadlineExceeded);
  ws.deadline().disarm();

  // The workspace survived the unwind: the very next run on it is
  // byte-identical to a fresh-workspace run.
  ws.begin_graph(g);
  const Schedule reused = algo->run(g, SchedOptions{}, ws);
  const Schedule fresh = algo->run(g, SchedOptions{});
  EXPECT_EQ(schedule_to_string(reused), schedule_to_string(fresh));
}

TEST(Deadline, ExpiredDeadlineCancelsEveryApnScheduler) {
  const TaskGraph g = random_graph(5, 60);
  const RoutingTable routes{Topology::from_spec("ring4")};
  for (const char* name : {"MH", "BSA", "BU", "DLS-APN"}) {
    const ApnSchedulerPtr algo = make_apn_scheduler(name);
    SchedWorkspace ws;
    ws.begin_graph(g);
    ws.deadline().arm(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
    EXPECT_THROW(algo->run(g, routes, ws), DeadlineExceeded) << name;
    ws.deadline().disarm();

    ws.begin_graph(g);
    NetSchedule reused = algo->run(g, routes, ws);
    NetSchedule fresh = algo->run(g, routes);
    EXPECT_EQ(schedule_to_string(reused.tasks()),
              schedule_to_string(fresh.tasks()))
        << name;
  }
}

TEST(Deadline, UnarmedDeadlineNeverFires) {
  const TaskGraph g = random_graph(7, 40);
  SchedWorkspace ws;
  ws.begin_graph(g);
  EXPECT_FALSE(ws.deadline().armed());
  const Schedule s = make_scheduler("DCP")->run(g, SchedOptions{}, ws);
  EXPECT_TRUE(s.complete());
}

// ------------------------------------------------------------- the server --

// An in-process daemon on a unique socket path, torn down on destruction.
class ServerFixture {
 public:
  explicit ServerFixture(ServeOptions opt = {}) {
    opt.socket_path = unique_tmp("serve_faults", ".sock");
    server = std::make_unique<Server>(opt);
    thread = std::thread([this] { server->serve_forever(); });
  }

  ~ServerFixture() { stop(); }

  void stop() {
    server->request_stop();
    if (thread.joinable()) thread.join();
  }

  UnixConn connect() const { return UnixConn::connect(server->socket_path()); }

  JsonValue ask(const std::string& request) {
    UnixConn conn = connect();
    return ask_on(conn, request);
  }

  static JsonValue ask_on(UnixConn& conn, const std::string& request) {
    conn.write_line(request);
    std::string reply;
    EXPECT_TRUE(conn.read_line(&reply));
    return json_parse(reply);
  }

  std::unique_ptr<Server> server;
  std::thread thread;
};

std::string schedule_request(const TaskGraph& g, const std::string& algo,
                             const std::string& extra_fields = "") {
  JsonObject o;
  o.add("id", "f1").add("graph", graph_to_string(g)).add("algo", algo);
  o.add("schedule", true);
  std::string s = o.str();
  if (!extra_fields.empty())
    s.insert(s.size() - 1, "," + extra_fields);
  return s;
}

TEST(ServerFaults, DeadlineExceededThenWorkerIsReused) {
  FaultGuard fg;
  const TaskGraph g = random_graph(41);
  ServeOptions opt;
  opt.workers = 1;  // the SAME worker must serve both requests
  ServerFixture f(opt);
  UnixConn conn = f.connect();

  // A stalled worker burns the whole 50 ms budget before scheduling even
  // starts: the pre-run expiry check fires deterministically.
  FaultPlan::global().arm_spec("worker_stall:200");
  const JsonValue r = ServerFixture::ask_on(
      conn, schedule_request(g, "MCP", "\"deadline_ms\":50"));
  EXPECT_EQ(r.get_string("status", ""), "error");
  EXPECT_EQ(r.get_string("code", ""), "deadline_exceeded");
  FaultPlan::global().clear();

  // Same graph, no deadline, same single worker: a clean result,
  // byte-identical to a direct run (cache was never populated by the
  // cancelled attempt).
  const JsonValue ok = ServerFixture::ask_on(conn, schedule_request(g, "MCP"));
  ASSERT_EQ(ok.get_string("status", ""), "ok");
  EXPECT_FALSE(ok.get_bool("cached", true));
  const Schedule direct = make_scheduler("MCP")->run(g, SchedOptions{});
  EXPECT_EQ(ok.get_string("schedule", ""), schedule_to_string(direct));

  const JsonValue s = ServerFixture::ask_on(conn, R"({"op":"stats"})");
  EXPECT_EQ(s.get_number("deadline_exceeded", 0), 1.0);
}

TEST(ServerFaults, ServerSideDeadlineCapBindsDeadlinelessRequests) {
  FaultGuard fg("worker_stall:200");
  ServeOptions opt;
  opt.max_deadline_ms = 50;
  ServerFixture f(opt);
  const JsonValue r = f.ask(schedule_request(random_graph(43), "ETF"));
  EXPECT_EQ(r.get_string("code", ""), "deadline_exceeded");
}

TEST(ServerFaults, EintrAndShortIoStormsAreInvisibleToClients) {
  // Every socket syscall misbehaves: accepts interrupted, reads
  // interrupted and fragmented to 3 bytes, writes interrupted and
  // fragmented to 5. The served schedule must still be byte-identical.
  FaultGuard fg(
      "accept_eintr*2,read_eintr*10,read_short*20:3,"
      "write_eintr*10,write_short*20:5");
  ServerFixture f;
  const TaskGraph g = random_graph(47);
  const JsonValue r = f.ask(schedule_request(g, "DLS"));
  ASSERT_EQ(r.get_string("status", ""), "ok");
  const Schedule direct = make_scheduler("DLS")->run(g, SchedOptions{});
  EXPECT_EQ(r.get_string("schedule", ""), schedule_to_string(direct));
  EXPECT_GT(FaultPlan::global().fired(FaultPoint::kReadEintr), 0u);
  EXPECT_GT(FaultPlan::global().fired(FaultPoint::kWriteShort), 0u);
}

TEST(ServerFaults, OversizedRequestGetsStructuredBadRequest) {
  ServeOptions opt;
  opt.max_request_bytes = 4096;
  ServerFixture f(opt);
  UnixConn conn = f.connect();
  try {
    conn.write_line(std::string(1 << 20, 'x'));  // 1 MiB of not-a-request
  } catch (const std::exception&) {
    // The server may reject and hang up before the full line is even
    // sent; the EPIPE is expected. Its error reply is still buffered.
  }
  std::string reply;
  ASSERT_TRUE(conn.read_line(&reply));
  const JsonValue r = json_parse(reply);
  EXPECT_EQ(r.get_string("status", ""), "error");
  EXPECT_EQ(r.get_string("code", ""), "bad_request");
  EXPECT_NE(r.get_string("message", "").find("exceeds"), std::string::npos);
  // The connection is then closed: no framing is recoverable.
  EXPECT_FALSE(conn.read_line(&reply));

  // A request under the bound on a fresh connection still works.
  const JsonValue ok = f.ask(R"({"op":"ping"})");
  EXPECT_EQ(ok.get_string("status", ""), "ok");
}

TEST(ServerFaults, LowPriorityRequestsAreShedUnderLoad) {
  FaultGuard fg("worker_stall*:400");
  ServeOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 8;
  opt.shed_low_priority_at = 1;
  ServerFixture f(opt);
  const TaskGraph g = random_graph(53);

  // Occupy the lone worker (stalled 400 ms), then offer a low-priority
  // request: with one job inflight the shed threshold is met.
  UnixConn busy = f.connect();
  busy.write_line(schedule_request(g, "MCP"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const JsonValue shed = f.ask(
      schedule_request(random_graph(54), "ETF", "\"priority\":\"low\""));
  EXPECT_EQ(shed.get_string("status", ""), "error");
  EXPECT_EQ(shed.get_string("code", ""), "overloaded");
  EXPECT_NE(shed.get_string("message", "").find("shed"), std::string::npos);

  // A high-priority request at the same depth is still admitted.
  const JsonValue high = f.ask(schedule_request(random_graph(55), "ETF"));
  EXPECT_EQ(high.get_string("status", ""), "ok");

  std::string reply;
  EXPECT_TRUE(busy.read_line(&reply));  // the stalled job still completes
  EXPECT_EQ(json_parse(reply).get_string("status", ""), "ok");

  const JsonValue s = f.ask(R"({"op":"stats"})");
  EXPECT_EQ(s.get_number("shed_requests", 0), 1.0);
  EXPECT_GE(s.get_number("requests_rejected", 0), 1.0);
}

TEST(ServerFaults, ShedRequestsStillGetCacheHits) {
  FaultGuard fg;
  ServeOptions opt;
  opt.workers = 1;
  opt.shed_low_priority_at = 1;
  ServerFixture f(opt);
  const TaskGraph g = random_graph(59);
  // Populate the cache while idle...
  ASSERT_EQ(f.ask(schedule_request(g, "MCP")).get_string("status", ""), "ok");

  // ...then wedge the worker and ask again at low priority: the cache
  // probe answers before shedding is even considered.
  FaultPlan::global().arm_spec("worker_stall:300");
  UnixConn busy = f.connect();
  busy.write_line(schedule_request(random_graph(60), "MCP"));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  const JsonValue hit =
      f.ask(schedule_request(g, "MCP", "\"priority\":\"low\""));
  EXPECT_EQ(hit.get_string("status", ""), "ok");
  EXPECT_TRUE(hit.get_bool("cached", false));
  std::string reply;
  EXPECT_TRUE(busy.read_line(&reply));
}

TEST(ServerFaults, CacheOomIsAbsorbedAndCounted) {
  FaultGuard fg("cache_oom*");
  ServerFixture f;
  const TaskGraph g = random_graph(61);
  // Both requests compute fine; neither lands in the cache.
  for (int i = 0; i < 2; ++i) {
    const JsonValue r = f.ask(schedule_request(g, "MCP"));
    ASSERT_EQ(r.get_string("status", ""), "ok");
    EXPECT_FALSE(r.get_bool("cached", true));
  }
  const JsonValue s = f.ask(R"({"op":"stats"})");
  EXPECT_EQ(s.get_number("cache_insert_failures", 0), 2.0);
  EXPECT_EQ(s.get_number("cache_size", 99), 0.0);
}

TEST(ServerFaults, RetryAttemptsAreObservedInStats) {
  FaultGuard fg;
  ServerFixture f;
  const TaskGraph g = random_graph(67);
  f.ask(schedule_request(g, "MCP"));
  f.ask(schedule_request(g, "MCP", "\"retry\":1"));
  f.ask(schedule_request(g, "MCP", "\"retry\":2"));
  const JsonValue s = f.ask(R"({"op":"stats"})");
  EXPECT_EQ(s.get_number("retries_observed", 0), 2.0);
}

TEST(ServerFaults, ProtocolRejectsBadRobustnessFields) {
  FaultGuard fg;
  ServerFixture f;
  const auto code_of = [&](const std::string& extra) {
    return f.ask(schedule_request(random_graph(1, 9), "MCP", extra))
        .get_string("code", "");
  };
  EXPECT_EQ(code_of("\"deadline_ms\":-5"), "bad_request");
  EXPECT_EQ(code_of("\"deadline_ms\":1.5"), "bad_request");
  EXPECT_EQ(code_of("\"priority\":\"urgent\""), "bad_request");
  EXPECT_EQ(code_of("\"retry\":-1"), "bad_request");
}

// ------------------------------------------------ persistence end-to-end --

TEST(ServerFaults, CacheSurvivesRestartByteIdentically) {
  FaultGuard fg;
  const std::string journal = unique_tmp("serve_journal", ".tgsj");
  FileJanitor jan{journal};
  const TaskGraph g = random_graph(71);
  const TaskGraph g2 = random_graph(72, 40);

  std::string first_text;
  {
    ServeOptions opt;
    opt.journal_path = journal;
    ServerFixture f(opt);
    const JsonValue r = f.ask(schedule_request(g, "MCP"));
    ASSERT_EQ(r.get_string("status", ""), "ok");
    first_text = r.get_string("schedule", "");
    ASSERT_EQ(f.ask(schedule_request(g2, "MH", "\"topology\":\"ring4\""))
                  .get_string("status", ""),
              "ok");
  }  // daemon gone; only the journal file remains

  ServeOptions opt;
  opt.journal_path = journal;
  ServerFixture f(opt);
  const JsonValue r = f.ask(schedule_request(g, "MCP"));
  ASSERT_EQ(r.get_string("status", ""), "ok");
  EXPECT_TRUE(r.get_bool("cached", false));  // never recomputed
  EXPECT_EQ(r.get_string("schedule", ""), first_text);

  const JsonValue apn = f.ask(schedule_request(g2, "MH", "\"topology\":\"ring4\""));
  EXPECT_TRUE(apn.get_bool("cached", false));
  EXPECT_GT(apn.get_number("messages", 0), 0.0);  // APN fields persisted too

  const JsonValue s = f.ask(R"({"op":"stats"})");
  const JsonValue* j = s.find("journal");
  ASSERT_NE(j, nullptr);
  EXPECT_TRUE(j->get_bool("enabled", false));
  EXPECT_EQ(j->get_number("replayed", 0), 2.0);
  EXPECT_FALSE(j->get_bool("tail_truncated", true));
}

TEST(ServerFaults, TornJournalRecoversPrefixAndRecomputesTheRest) {
  const std::string journal = unique_tmp("serve_journal", ".tgsj");
  FileJanitor jan{journal};
  const TaskGraph a = random_graph(81), b = random_graph(82),
                  c = random_graph(83);
  std::string text_a;
  {
    // The third journal append dies mid-record (a simulated power cut).
    // All three clients still got their responses.
    FaultGuard fg("journal_torn@2");
    ServeOptions opt;
    opt.journal_path = journal;
    ServerFixture f(opt);
    const JsonValue ra = f.ask(schedule_request(a, "MCP"));
    ASSERT_EQ(ra.get_string("status", ""), "ok");
    text_a = ra.get_string("schedule", "");
    ASSERT_EQ(f.ask(schedule_request(b, "MCP")).get_string("status", ""),
              "ok");
    ASSERT_EQ(f.ask(schedule_request(c, "MCP")).get_string("status", ""),
              "ok");
  }

  FaultGuard fg;  // restart cleanly
  ServeOptions opt;
  opt.journal_path = journal;
  ServerFixture f(opt);
  const JsonValue s = f.ask(R"({"op":"stats"})");
  const JsonValue* j = s.find("journal");
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->get_number("replayed", 0), 2.0);
  EXPECT_TRUE(j->get_bool("tail_truncated", false));
  EXPECT_GT(j->get_number("truncated_bytes", 0), 0.0);

  // a, b replay byte-identically; c was lost with the torn record and is
  // simply recomputed -- determinism makes the loss invisible.
  const JsonValue ra = f.ask(schedule_request(a, "MCP"));
  EXPECT_TRUE(ra.get_bool("cached", false));
  EXPECT_EQ(ra.get_string("schedule", ""), text_a);
  const JsonValue rc = f.ask(schedule_request(c, "MCP"));
  EXPECT_EQ(rc.get_string("status", ""), "ok");
  EXPECT_FALSE(rc.get_bool("cached", true));
}

TEST(ServerFaults, JournalCompactionKeepsRestartWorking) {
  FaultGuard fg;
  const std::string journal = unique_tmp("serve_journal", ".tgsj");
  FileJanitor jan{journal};
  const TaskGraph g = random_graph(91);
  {
    ServeOptions opt;
    opt.journal_path = journal;
    opt.journal_compact_every = 1;  // compact after every append
    ServerFixture f(opt);
    for (const char* algo : {"MCP", "ETF", "DLS"})
      ASSERT_EQ(f.ask(schedule_request(g, algo)).get_string("status", ""),
                "ok");
    EXPECT_GE(f.server->journal().compactions(), 3u);
  }
  ServeOptions opt;
  opt.journal_path = journal;
  ServerFixture f(opt);
  EXPECT_EQ(f.ask(R"({"op":"stats"})")
                .find("journal")
                ->get_number("replayed", 0),
            3.0);
  for (const char* algo : {"MCP", "ETF", "DLS"})
    EXPECT_TRUE(f.ask(schedule_request(g, algo)).get_bool("cached", false))
        << algo;
}

}  // namespace
}  // namespace tgs
