// Tests for the benchmark-graph generators (paper §5): parameter fidelity,
// structural invariants, determinism, and the RGPOS optimality plant.
#include <gtest/gtest.h>

#include <cmath>

#include "tgs/gen/random_core.h"
#include "tgs/gen/rgbos.h"
#include "tgs/gen/rgnos.h"
#include "tgs/gen/rgpos.h"
#include "tgs/gen/structured.h"
#include "tgs/graph/attributes.h"
#include "tgs/graph/graph_io.h"
#include "tgs/sched/schedule.h"
#include "tgs/sched/validate.h"

namespace tgs {
namespace {

TEST(RandomCore, NodeCountAndWeights) {
  RandomDagParams p;
  p.num_nodes = 80;
  p.seed = 3;
  const TaskGraph g = random_fanout_dag(p);
  EXPECT_EQ(g.num_nodes(), 80u);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_GE(g.weight(n), 2);
    EXPECT_LE(g.weight(n), 78);
  }
}

TEST(RandomCore, Deterministic) {
  RandomDagParams p;
  p.num_nodes = 60;
  p.seed = 17;
  const TaskGraph a = random_fanout_dag(p);
  const TaskGraph b = random_fanout_dag(p);
  EXPECT_EQ(graph_to_string(a), graph_to_string(b));
}

TEST(RandomCore, SeedChangesGraph) {
  RandomDagParams p;
  p.num_nodes = 60;
  p.seed = 17;
  const TaskGraph a = random_fanout_dag(p);
  p.seed = 18;
  const TaskGraph b = random_fanout_dag(p);
  EXPECT_NE(graph_to_string(a), graph_to_string(b));
}

TEST(RandomCore, CcrRoughlyHonored) {
  for (double ccr : {0.1, 1.0, 10.0}) {
    RandomDagParams p;
    p.num_nodes = 200;
    p.ccr = ccr;
    p.seed = 5;
    const TaskGraph g = random_fanout_dag(p);
    EXPECT_GT(g.ccr(), ccr * 0.5) << "target " << ccr;
    EXPECT_LT(g.ccr(), ccr * 2.0) << "target " << ccr;
  }
}

TEST(RandomCore, FanoutMeanRoughlyHonored) {
  RandomDagParams p;
  p.num_nodes = 200;
  p.seed = 9;
  const TaskGraph g = random_fanout_dag(p);
  // Mean fan-out target = v/10 = 20, truncated near the tail of the node
  // ordering, so expect somewhere in [8, 20] per node on average.
  const double mean_fanout =
      static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_GT(mean_fanout, 8.0);
  EXPECT_LT(mean_fanout, 20.0);
}

TEST(Rgbos, SuiteShape) {
  const auto suite = rgbos_suite(1.0, 42);
  ASSERT_EQ(suite.size(), 12u);  // 10..32 step 2
  NodeId v = 10;
  for (const auto& g : suite) {
    EXPECT_EQ(g.num_nodes(), v);
    v += 2;
  }
}

TEST(Rgbos, DeterministicPerCell) {
  const TaskGraph a = rgbos_graph(10.0, 24, 42);
  const TaskGraph b = rgbos_graph(10.0, 24, 42);
  EXPECT_EQ(graph_to_string(a), graph_to_string(b));
  const TaskGraph c = rgbos_graph(1.0, 24, 42);
  EXPECT_NE(graph_to_string(a), graph_to_string(c));
}

TEST(Rgnos, WidthTracksParallelism) {
  // Width target = parallelism * sqrt(v). Generated layer sizes are drawn
  // around it; check the measured width is monotone-ish in the knob.
  RgnosParams p;
  p.num_nodes = 400;
  p.seed = 7;
  p.parallelism = 1;
  const std::size_t w1 = layered_width(rgnos_graph(p));
  p.parallelism = 5;
  const std::size_t w5 = layered_width(rgnos_graph(p));
  EXPECT_LT(w1, w5);
  EXPECT_GT(w5, 3 * std::sqrt(400.0));
}

TEST(Rgnos, SizeSuiteCoversParameterGrid) {
  const auto suite = rgnos_size_suite(50, 11);
  EXPECT_EQ(suite.size(), 25u);  // 5 CCRs x 5 parallelisms
  for (const auto& g : suite) EXPECT_EQ(g.num_nodes(), 50u);
}

TEST(Rgnos, EveryNonEntryNodeHasParent) {
  RgnosParams p;
  p.num_nodes = 120;
  p.seed = 23;
  const TaskGraph g = rgnos_graph(p);
  // Spine edges guarantee: only layer-0 nodes are entries.
  std::size_t entries = g.entry_nodes().size();
  EXPECT_LT(entries, g.num_nodes() / 2);
  for (NodeId n : g.entry_nodes()) EXPECT_EQ(g.num_parents(n), 0u);
}

TEST(Rgpos, PlantedScheduleIsValidAndTight) {
  RgposParams p;
  p.num_nodes = 60;
  p.num_procs = 4;
  p.ccr = 1.0;
  p.seed = 31;
  const RgposGraph r = rgpos_graph(p);
  EXPECT_EQ(r.graph.num_nodes(), 60u);
  // Materialize the planted schedule and validate it.
  Schedule s(r.graph, r.num_procs);
  for (NodeId n = 0; n < r.graph.num_nodes(); ++n)
    s.place(n, r.planted_proc[n], r.planted_start[n]);
  const auto v = validate_schedule(s, r.num_procs);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(s.makespan(), r.optimal_length);
}

TEST(Rgpos, NoIdleTimePlanted) {
  RgposParams p;
  p.num_nodes = 40;
  p.num_procs = 3;
  p.seed = 8;
  const RgposGraph r = rgpos_graph(p);
  // Total work = p * L_opt exactly (no idle time on any processor).
  EXPECT_EQ(r.graph.total_weight(),
            static_cast<Cost>(r.num_procs) * r.optimal_length);
}

TEST(Rgpos, OptimalIsLowerBoundForPProcs) {
  RgposParams p;
  p.num_nodes = 50;
  p.num_procs = 4;
  p.seed = 12;
  const RgposGraph r = rgpos_graph(p);
  // ceil(work / p) == L_opt: no schedule on p processors can beat it.
  const Time lb = (r.graph.total_weight() + r.num_procs - 1) / r.num_procs;
  EXPECT_EQ(lb, r.optimal_length);
}

TEST(Rgpos, WidthGuardPlantStaysValid) {
  RgposParams p;
  p.num_nodes = 60;
  p.num_procs = 4;
  p.ccr = 1.0;
  p.seed = 31;
  p.width_guard = true;
  const RgposGraph r = rgpos_graph(p);
  Schedule s(r.graph, r.num_procs);
  for (NodeId n = 0; n < r.graph.num_nodes(); ++n)
    s.place(n, r.planted_proc[n], r.planted_start[n]);
  const auto v = validate_schedule(s, r.num_procs);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(s.makespan(), r.optimal_length);
}

TEST(Rgpos, WidthGuardBoundsTheWidth) {
  RgposParams p;
  p.num_nodes = 80;
  p.num_procs = 4;
  p.seed = 5;
  p.width_guard = true;
  const RgposGraph r = rgpos_graph(p);
  // Chain cover of size p => max antichain <= p (Dilworth); the layered
  // width over-counts antichains only when layers merge incomparable
  // nodes, so <= p here is a strict structural check.
  EXPECT_LE(layered_width(r.graph), static_cast<std::size_t>(p.num_procs));
  // Without the guard the same instance is much wider.
  p.width_guard = false;
  EXPECT_GT(layered_width(rgpos_graph(p).graph),
            static_cast<std::size_t>(p.num_procs));
}

TEST(Rgpos, WidthGuardMakesPlantUniversal) {
  // On guarded instances no algorithm -- bounded or not -- may beat L_opt.
  RgposParams p;
  p.num_nodes = 50;
  p.num_procs = 3;
  p.ccr = 1.0;
  p.seed = 77;
  p.width_guard = true;
  const RgposGraph r = rgpos_graph(p);
  const Time lb = r.optimal_length;
  // Work / width bound argument: total weight == p * L_opt and width <= p.
  EXPECT_EQ(r.graph.total_weight(), static_cast<Cost>(p.num_procs) * lb);
}

TEST(Rgpos, SuiteShape) {
  const auto suite = rgpos_suite(0.1, 4, 77);
  ASSERT_EQ(suite.size(), 10u);
  NodeId v = 50;
  for (const auto& r : suite) {
    EXPECT_EQ(r.graph.num_nodes(), v);
    v += 50;
  }
}

TEST(Rgpos, CrossEdgesRespectSlack) {
  RgposParams p;
  p.num_nodes = 80;
  p.num_procs = 4;
  p.ccr = 10.0;  // tempt the generator with big comm costs
  p.seed = 19;
  const RgposGraph r = rgpos_graph(p);
  for (NodeId u = 0; u < r.graph.num_nodes(); ++u) {
    const Time ft_u = r.planted_start[u] + r.graph.weight(u);
    for (const Adj& e : r.graph.children(u)) {
      if (r.planted_proc[u] != r.planted_proc[e.node])
        EXPECT_LE(ft_u + e.cost, r.planted_start[e.node]);
      else
        EXPECT_LE(ft_u, r.planted_start[e.node]);
    }
  }
}

TEST(Structured, Shapes) {
  EXPECT_EQ(chain_graph(5).num_nodes(), 5u);
  EXPECT_EQ(chain_graph(5).num_edges(), 4u);
  EXPECT_EQ(fork_join(6).num_nodes(), 8u);
  EXPECT_EQ(fork_join(6).num_edges(), 12u);
  EXPECT_EQ(out_tree(3, 2).num_nodes(), 15u);
  EXPECT_EQ(in_tree(3, 2).num_nodes(), 15u);
  EXPECT_EQ(in_tree(3, 2).exit_nodes().size(), 1u);
  EXPECT_EQ(out_tree(3, 2).entry_nodes().size(), 1u);
  EXPECT_EQ(diamond_lattice(4).num_nodes(), 16u);
  EXPECT_EQ(diamond_lattice(4).num_edges(), 24u);
  EXPECT_EQ(independent_tasks(7).num_edges(), 0u);
}

}  // namespace
}  // namespace tgs
