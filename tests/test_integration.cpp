// Cross-module integration tests: miniature versions of the paper's
// experiments, checking the qualitative claims end-to-end.
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/gen/rgbos.h"
#include "tgs/gen/rgpos.h"
#include "tgs/gen/traced.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/map/cluster_map.h"
#include "tgs/net/net_validate.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/validate.h"

namespace tgs {
namespace {

TEST(Integration, BnpNeverBeatsProvenOptimalAtSameProcCount) {
  // Mini Table 3: BNP degradation from optimal is >= 0 on RGBOS graphs.
  for (std::uint64_t seed : {1ull, 2ull}) {
    const TaskGraph g = rgbos_graph(1.0, 14, seed);
    BBOptions bb;
    bb.num_procs = 2;
    bb.num_threads = 4;
    bb.time_limit_seconds = 30.0;
    const BBResult opt = branch_and_bound(g, bb);
    ASSERT_TRUE(opt.proven_optimal);
    SchedOptions sopt;
    sopt.num_procs = 2;
    for (const auto& algo : make_bnp_schedulers()) {
      const Time len = algo->run(g, sopt).makespan();
      EXPECT_GE(len, opt.length) << algo->name() << " beat a proven optimum";
    }
  }
}

TEST(Integration, RgposDegradationNonNegativeForBoundedAlgos) {
  // Mini Table 5: on planted-optimal graphs, BNP algorithms bounded to the
  // planted processor count cannot beat L_opt.
  RgposParams p;
  p.num_nodes = 100;
  p.num_procs = 4;
  p.ccr = 1.0;
  p.seed = 9;
  const RgposGraph r = rgpos_graph(p);
  SchedOptions opt;
  opt.num_procs = r.num_procs;
  for (const auto& algo : make_bnp_schedulers()) {
    const Time len = algo->run(r.graph, opt).makespan();
    EXPECT_GE(len, r.optimal_length) << algo->name();
  }
}

TEST(Integration, PsgTable1Shape) {
  // Mini Table 1: all 11 UNC+BNP algorithms on every PSG graph; lengths
  // vary across algorithms (the paper's headline observation) and DCP is
  // never the worst UNC algorithm.
  const auto suite = peer_set_graphs();
  for (const auto& entry : suite) {
    Time dcp_len = 0, worst_unc = 0;
    Time min_len = kTimeInf, max_len = 0;
    for (const auto& algo : make_unc_and_bnp_schedulers()) {
      const RunResult res = run_scheduler(*algo, entry.graph, {});
      ASSERT_TRUE(res.valid) << algo->name() << ": " << res.error;
      min_len = std::min(min_len, res.length);
      max_len = std::max(max_len, res.length);
      if (algo->name() == "DCP") dcp_len = res.length;
      if (algo->algo_class() == AlgoClass::kUNC)
        worst_unc = std::max(worst_unc, res.length);
    }
    EXPECT_LE(dcp_len, worst_unc) << entry.graph.name();
  }
}

TEST(Integration, CholeskyAllClassesProduceValidSchedules) {
  // Mini Figure 4: Cholesky N=8 across all three classes.
  const TaskGraph g = cholesky_graph(8, 1.0);
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    const RunResult r = run_scheduler(*algo, g, {});
    EXPECT_TRUE(r.valid) << algo->name() << ": " << r.error;
  }
  const Topology topo = Topology::hypercube(3);
  const RoutingTable routes(topo);
  for (const auto& algo : make_apn_schedulers()) {
    const RunResult r = run_apn_scheduler(*algo, g, routes);
    EXPECT_TRUE(r.valid) << algo->name() << ": " << r.error;
  }
}

TEST(Integration, UncPlusClusterSchedulingEndToEnd) {
  // Paper §7 future work: UNC + CS pipeline on a traced graph.
  const TaskGraph g = cholesky_graph(10, 1.0);
  for (const char* unc_name : {"DSC", "DCP"}) {
    const Schedule unc = make_scheduler(unc_name)->run(g, {});
    const auto clusters = clusters_of(unc);
    for (int p : {2, 4}) {
      const Schedule sarkar = map_clusters_sarkar(g, clusters, p);
      EXPECT_TRUE(validate_schedule(sarkar, p).ok) << unc_name;
      const Schedule rcp = map_clusters_rcp(g, clusters, p);
      EXPECT_TRUE(validate_schedule(rcp, p).ok) << unc_name;
    }
  }
}

TEST(Integration, NslConsistentAcrossRunner) {
  const TaskGraph g = cholesky_graph(6, 0.5);
  const auto mcp = make_scheduler("MCP");
  const RunResult r = run_scheduler(*mcp, g, {});
  EXPECT_NEAR(r.nsl, normalized_schedule_length(g, r.length), 1e-12);
}

TEST(Integration, HighCcrHurtsEveryAlgorithm) {
  // NSL should grow with CCR for every algorithm class (paper §6.3: the
  // percentage degradations "in general increase with CCRs").
  const TaskGraph low = cholesky_graph(10, 0.1);
  const TaskGraph high = cholesky_graph(10, 10.0);
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    const double nsl_low =
        normalized_schedule_length(low, algo->run(low, {}).makespan());
    const double nsl_high =
        normalized_schedule_length(high, algo->run(high, {}).makespan());
    EXPECT_LE(nsl_low, nsl_high * 1.05) << algo->name();
  }
}

}  // namespace
}  // namespace tgs
