// Unit tests for sched/timeline.h: insertion-slot queries, occupancy
// invariants, release, and the gap-indexed chunked store's equivalence to
// a flat sorted interval list under adversarial churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "reference_timeline.h"
#include "tgs/sched/timeline.h"
#include "tgs/util/rng.h"

namespace tgs {
namespace {

using reference::FlatTimeline;

TEST(Timeline, EmptyFitsAnywhere) {
  Timeline tl;
  EXPECT_EQ(tl.earliest_fit(0, 5, false), 0);
  EXPECT_EQ(tl.earliest_fit(7, 5, true), 7);
  EXPECT_TRUE(tl.fits(100, 50));
  EXPECT_EQ(tl.end_time(), 0);
}

TEST(Timeline, AppendModeIgnoresGaps) {
  Timeline tl;
  tl.occupy(1, 0, 10);
  tl.occupy(2, 50, 10);
  // Non-insertion: after the last interval, even though [10,50) is idle.
  EXPECT_EQ(tl.earliest_fit(0, 5, false), 60);
  EXPECT_EQ(tl.earliest_fit(70, 5, false), 70);
}

TEST(Timeline, InsertionFindsFirstGap) {
  Timeline tl;
  tl.occupy(1, 0, 10);
  tl.occupy(2, 50, 10);
  EXPECT_EQ(tl.earliest_fit(0, 5, true), 10);
  EXPECT_EQ(tl.earliest_fit(0, 40, true), 10);
  EXPECT_EQ(tl.earliest_fit(0, 41, true), 60);  // gap too small
  EXPECT_EQ(tl.earliest_fit(20, 5, true), 20);
  EXPECT_EQ(tl.earliest_fit(48, 5, true), 60);  // would collide with [50,60)
}

TEST(Timeline, InsertionBeforeFirstInterval) {
  Timeline tl;
  tl.occupy(1, 20, 10);
  EXPECT_EQ(tl.earliest_fit(0, 10, true), 0);
  EXPECT_EQ(tl.earliest_fit(0, 21, true), 30);
  EXPECT_EQ(tl.earliest_fit(5, 15, true), 5);   // [5, 20) touches the block
  EXPECT_EQ(tl.earliest_fit(6, 15, true), 30);  // [6, 21) would collide
}

TEST(Timeline, ZeroDurationFits) {
  Timeline tl;
  tl.occupy(1, 0, 10);
  EXPECT_EQ(tl.earliest_fit(3, 0, true), 3);
}

TEST(Timeline, OccupyRejectsOverlap) {
  Timeline tl;
  tl.occupy(1, 10, 10);
  EXPECT_THROW(tl.occupy(2, 15, 1), std::logic_error);
  EXPECT_THROW(tl.occupy(2, 5, 6), std::logic_error);
  EXPECT_NO_THROW(tl.occupy(3, 20, 5));  // touching is fine
  EXPECT_NO_THROW(tl.occupy(4, 5, 5));
}

TEST(Timeline, FitsBoundaryConditions) {
  Timeline tl;
  tl.occupy(1, 10, 10);
  EXPECT_TRUE(tl.fits(0, 10));
  EXPECT_TRUE(tl.fits(20, 10));
  EXPECT_FALSE(tl.fits(19, 2));
  EXPECT_FALSE(tl.fits(9, 2));
}

TEST(Timeline, ReleaseRemovesInterval) {
  Timeline tl;
  tl.occupy(7, 0, 10);
  tl.occupy(8, 10, 10);
  EXPECT_TRUE(tl.release(7));
  EXPECT_FALSE(tl.release(7));
  EXPECT_TRUE(tl.fits(0, 10));
  EXPECT_EQ(tl.size(), 1u);
}

TEST(Timeline, IntervalsSortedAfterMixedInserts) {
  Timeline tl;
  tl.occupy(1, 50, 5);
  tl.occupy(2, 0, 5);
  tl.occupy(3, 20, 5);
  const auto& ivs = tl.intervals();
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_EQ(ivs[0].start, 0);
  EXPECT_EQ(ivs[1].start, 20);
  EXPECT_EQ(ivs[2].start, 50);
  EXPECT_EQ(tl.busy_time(), 15);
  EXPECT_EQ(tl.end_time(), 55);
}

TEST(Timeline, EarliestFitAfterManyIntervals) {
  Timeline tl;
  for (int i = 0; i < 100; ++i) tl.occupy(i, i * 10, 8);  // gaps of 2
  EXPECT_EQ(tl.earliest_fit(0, 2, true), 8);
  EXPECT_EQ(tl.earliest_fit(503, 2, true), 508);
  EXPECT_EQ(tl.earliest_fit(0, 3, true), 998);  // no gap of 3 until the end
}

TEST(Timeline, OccupySinglePassMatchesFitsVerdict) {
  // The one-binary-search occupy must accept and reject exactly what
  // fits() reports, including touching boundaries.
  Timeline tl;
  tl.occupy(1, 10, 10);
  tl.occupy(2, 30, 10);
  EXPECT_THROW(tl.occupy(3, 9, 2), std::logic_error);    // tail overlap
  EXPECT_THROW(tl.occupy(3, 19, 2), std::logic_error);   // head overlap
  EXPECT_THROW(tl.occupy(3, 12, 30), std::logic_error);  // spans both
  EXPECT_NO_THROW(tl.occupy(3, 20, 10));                 // exact gap
  EXPECT_NO_THROW(tl.occupy(4, 0, 10));                  // before first
  EXPECT_NO_THROW(tl.occupy(5, 40, 1));                  // after last
  const auto& ivs = tl.intervals();
  ASSERT_EQ(ivs.size(), 5u);
  for (std::size_t i = 1; i < ivs.size(); ++i)
    EXPECT_LE(ivs[i - 1].end, ivs[i].start);  // sorted and disjoint
}

TEST(Timeline, ReleaseWithHintRemovesTheRightInterval) {
  Timeline tl;
  tl.occupy(7, 0, 10);
  tl.occupy(8, 10, 10);
  tl.occupy(9, 30, 10);
  EXPECT_TRUE(tl.release(8, 10));
  EXPECT_FALSE(tl.release(8, 10));
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl.intervals()[0].owner, 7);
  EXPECT_EQ(tl.intervals()[1].owner, 9);
}

TEST(Timeline, ReleaseWithWrongHintFallsBackToLinearScan) {
  Timeline tl;
  tl.occupy(7, 0, 10);
  tl.occupy(8, 10, 10);
  EXPECT_TRUE(tl.release(7, 999));  // bogus hint still finds the interval
  EXPECT_EQ(tl.size(), 1u);
  EXPECT_EQ(tl.intervals()[0].owner, 8);
  EXPECT_FALSE(tl.release(42, 10));  // hint matches a start, owner does not
  EXPECT_EQ(tl.size(), 1u);
}

TEST(Timeline, ReleaseWithHintThenReoccupySameSlot) {
  // The unplace/replace cycle of migrating schedulers: hinted release
  // frees exactly the interval the caller placed, and the slot is
  // immediately reusable.
  Timeline tl;
  for (int i = 0; i < 50; ++i) tl.occupy(i, i * 10, 10);
  EXPECT_TRUE(tl.release(25, 250));
  EXPECT_TRUE(tl.fits(250, 10));
  tl.occupy(99, 250, 10);
  EXPECT_EQ(tl.size(), 50u);
  EXPECT_EQ(tl.intervals()[25].owner, 99);
}

TEST(Timeline, ManyIntervalsCrossChunkBoundaries) {
  // Enough intervals to force chunk splits; fits must land in the exact
  // gaps a flat scan would find, including gaps straddling chunk seams.
  Timeline tl;
  for (int i = 0; i < 500; ++i) tl.occupy(i, i * 10, 8);  // gaps of 2
  EXPECT_EQ(tl.earliest_fit(0, 2, true), 8);
  EXPECT_EQ(tl.earliest_fit(1234, 2, true), 1238);
  EXPECT_EQ(tl.earliest_fit(0, 3, true), 4998);  // only after the last
  // Open one interior gap and find it from far to the left.
  EXPECT_TRUE(tl.release(300, 3000));
  EXPECT_EQ(tl.earliest_fit(0, 3, true), 2998);   // [2998, 3010) is idle
  EXPECT_EQ(tl.earliest_fit(0, 12, true), 2998);  // exactly fills it
  EXPECT_EQ(tl.earliest_fit(0, 13, true), 4998);
  EXPECT_EQ(tl.earliest_fit(2999, 3, true), 2999);
  tl.occupy(300, 3000, 8);  // restore
  EXPECT_EQ(tl.earliest_fit(0, 3, true), 4998);
}

TEST(Timeline, GapIndexMatchesFlatReferenceUnderChurn) {
  // Random occupy/release/query churn (the BSA-migration and B&B
  // backtracking pattern) on both stores; every query must agree and the
  // interval sequences must stay identical. Durations include zero-width
  // blocks; starts collide on purpose (dense value range).
  for (std::uint64_t seed : {1ull, 7ull, 1998ull}) {
    Rng rng(seed);
    Timeline tl;
    FlatTimeline ref;
    std::vector<std::pair<std::int64_t, Time>> live;  // owner -> start
    std::int64_t next_owner = 0;
    for (int step = 0; step < 4000; ++step) {
      const int op = static_cast<int>(rng.uniform_int(0, 9));
      if (op < 5 || live.empty()) {  // occupy at the earliest fitting slot
        const Time ready = rng.uniform_int(0, 3000);
        const Cost dur = rng.uniform_int(1, 40);
        const Time at = tl.earliest_fit(ready, dur, true);
        ASSERT_EQ(at, ref.earliest_fit(ready, dur, true));
        tl.occupy(next_owner, at, dur);
        ref.occupy(next_owner, at, dur);
        live.emplace_back(next_owner, at);
        ++next_owner;
      } else if (op < 8) {  // release, hinted or not
        const std::size_t i =
            static_cast<std::size_t>(rng.uniform_int(0, live.size() - 1));
        const auto [owner, start] = live[i];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        const bool hinted = rng.bernoulli(0.7);
        ASSERT_TRUE(hinted ? tl.release(owner, start) : tl.release(owner));
        ASSERT_TRUE(ref.release(owner));
      } else {  // probe-only round
        const Time ready = rng.uniform_int(0, 4000);
        const Cost dur = rng.uniform_int(0, 60);
        EXPECT_EQ(tl.earliest_fit(ready, dur, true),
                  ref.earliest_fit(ready, dur, true));
        EXPECT_EQ(tl.earliest_fit(ready, dur, false),
                  ref.earliest_fit(ready, dur, false));
        EXPECT_EQ(tl.fits(ready, dur), ref.fits(ready, dur));
      }
      if (step % 256 == 0) {
        ASSERT_EQ(tl.intervals(), ref.intervals());
        ASSERT_EQ(tl.size(), ref.intervals().size());
      }
    }
    EXPECT_EQ(tl.intervals(), ref.intervals());
    EXPECT_EQ(tl.busy_time(), [&] {
      Time t = 0;
      for (const Interval& iv : ref.intervals()) t += iv.end - iv.start;
      return t;
    }());
  }
}

TEST(Timeline, ReleaseEverythingThenReuse) {
  Timeline tl;
  for (int i = 0; i < 200; ++i) tl.occupy(i, i * 5, 5);  // back-to-back
  for (int i = 0; i < 200; i += 2) EXPECT_TRUE(tl.release(i, i * 5));
  EXPECT_EQ(tl.size(), 100u);
  EXPECT_EQ(tl.earliest_fit(0, 5, true), 0);  // even slots are free again
  for (int i = 0; i < 200; i += 2) tl.occupy(1000 + i, i * 5, 5);
  EXPECT_EQ(tl.size(), 200u);
  EXPECT_EQ(tl.earliest_fit(0, 1, true), 1000);
  for (int i = 0; i < 200; ++i)
    EXPECT_TRUE(tl.release(i % 2 == 0 ? 1000 + i : i, i * 5));
  EXPECT_TRUE(tl.empty());
  EXPECT_EQ(tl.end_time(), 0);
  EXPECT_EQ(tl.earliest_fit(3, 10, true), 3);
}

TEST(Timeline, ZeroWidthIntervalsShareAStart) {
  // Zero-width intervals (defensive: TaskGraphBuilder forbids zero weights)
  // may share a start; insertion order at an equal start is newest-first
  // (what the flat store did), and they never block real blocks.
  Timeline tl;
  tl.occupy(1, 10, 5);
  tl.occupy(2, 10, 0);
  tl.occupy(3, 10, 0);
  const auto ivs = tl.intervals();
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_EQ(ivs[0].owner, 3);  // newest first at the shared start
  EXPECT_EQ(ivs[1].owner, 2);
  EXPECT_EQ(ivs[2].owner, 1);
  EXPECT_THROW(tl.occupy(4, 9, 2), std::logic_error);
  EXPECT_TRUE(tl.release(2, 10));
  EXPECT_TRUE(tl.release(1, 10));
  EXPECT_EQ(tl.earliest_fit(0, 100, true), 10);  // [10,10) doesn't block
}

TEST(Timeline, RealBlockAfterZeroWidthAtSameStart) {
  // A positive-duration block landing on a zero-width interval's start
  // must sort AFTER it (ends stay non-decreasing) and stay visible to
  // every query; this order is what keeps the chunked searches sound.
  Timeline tl;
  tl.occupy(1, 10, 0);
  tl.occupy(2, 10, 5);
  const auto ivs = tl.intervals();
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0].owner, 1);  // zero-width first
  EXPECT_EQ(ivs[1].owner, 2);
  EXPECT_EQ(tl.earliest_fit(12, 3, true), 15);
  EXPECT_EQ(tl.earliest_fit(0, 3, true), 0);
  EXPECT_FALSE(tl.fits(12, 3));
  EXPECT_THROW(tl.occupy(3, 12, 1), std::logic_error);
  EXPECT_TRUE(tl.release(2, 10));
  EXPECT_EQ(tl.end_time(), 10);
}

}  // namespace
}  // namespace tgs
