// Unit tests for sched/timeline.h: insertion-slot queries, occupancy
// invariants, release.
#include <gtest/gtest.h>

#include "tgs/sched/timeline.h"

namespace tgs {
namespace {

TEST(Timeline, EmptyFitsAnywhere) {
  Timeline tl;
  EXPECT_EQ(tl.earliest_fit(0, 5, false), 0);
  EXPECT_EQ(tl.earliest_fit(7, 5, true), 7);
  EXPECT_TRUE(tl.fits(100, 50));
  EXPECT_EQ(tl.end_time(), 0);
}

TEST(Timeline, AppendModeIgnoresGaps) {
  Timeline tl;
  tl.occupy(1, 0, 10);
  tl.occupy(2, 50, 10);
  // Non-insertion: after the last interval, even though [10,50) is idle.
  EXPECT_EQ(tl.earliest_fit(0, 5, false), 60);
  EXPECT_EQ(tl.earliest_fit(70, 5, false), 70);
}

TEST(Timeline, InsertionFindsFirstGap) {
  Timeline tl;
  tl.occupy(1, 0, 10);
  tl.occupy(2, 50, 10);
  EXPECT_EQ(tl.earliest_fit(0, 5, true), 10);
  EXPECT_EQ(tl.earliest_fit(0, 40, true), 10);
  EXPECT_EQ(tl.earliest_fit(0, 41, true), 60);  // gap too small
  EXPECT_EQ(tl.earliest_fit(20, 5, true), 20);
  EXPECT_EQ(tl.earliest_fit(48, 5, true), 60);  // would collide with [50,60)
}

TEST(Timeline, InsertionBeforeFirstInterval) {
  Timeline tl;
  tl.occupy(1, 20, 10);
  EXPECT_EQ(tl.earliest_fit(0, 10, true), 0);
  EXPECT_EQ(tl.earliest_fit(0, 21, true), 30);
  EXPECT_EQ(tl.earliest_fit(5, 15, true), 5);   // [5, 20) touches the block
  EXPECT_EQ(tl.earliest_fit(6, 15, true), 30);  // [6, 21) would collide
}

TEST(Timeline, ZeroDurationFits) {
  Timeline tl;
  tl.occupy(1, 0, 10);
  EXPECT_EQ(tl.earliest_fit(3, 0, true), 3);
}

TEST(Timeline, OccupyRejectsOverlap) {
  Timeline tl;
  tl.occupy(1, 10, 10);
  EXPECT_THROW(tl.occupy(2, 15, 1), std::logic_error);
  EXPECT_THROW(tl.occupy(2, 5, 6), std::logic_error);
  EXPECT_NO_THROW(tl.occupy(3, 20, 5));  // touching is fine
  EXPECT_NO_THROW(tl.occupy(4, 5, 5));
}

TEST(Timeline, FitsBoundaryConditions) {
  Timeline tl;
  tl.occupy(1, 10, 10);
  EXPECT_TRUE(tl.fits(0, 10));
  EXPECT_TRUE(tl.fits(20, 10));
  EXPECT_FALSE(tl.fits(19, 2));
  EXPECT_FALSE(tl.fits(9, 2));
}

TEST(Timeline, ReleaseRemovesInterval) {
  Timeline tl;
  tl.occupy(7, 0, 10);
  tl.occupy(8, 10, 10);
  EXPECT_TRUE(tl.release(7));
  EXPECT_FALSE(tl.release(7));
  EXPECT_TRUE(tl.fits(0, 10));
  EXPECT_EQ(tl.size(), 1u);
}

TEST(Timeline, IntervalsSortedAfterMixedInserts) {
  Timeline tl;
  tl.occupy(1, 50, 5);
  tl.occupy(2, 0, 5);
  tl.occupy(3, 20, 5);
  const auto& ivs = tl.intervals();
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_EQ(ivs[0].start, 0);
  EXPECT_EQ(ivs[1].start, 20);
  EXPECT_EQ(ivs[2].start, 50);
  EXPECT_EQ(tl.busy_time(), 15);
  EXPECT_EQ(tl.end_time(), 55);
}

TEST(Timeline, EarliestFitAfterManyIntervals) {
  Timeline tl;
  for (int i = 0; i < 100; ++i) tl.occupy(i, i * 10, 8);  // gaps of 2
  EXPECT_EQ(tl.earliest_fit(0, 2, true), 8);
  EXPECT_EQ(tl.earliest_fit(503, 2, true), 508);
  EXPECT_EQ(tl.earliest_fit(0, 3, true), 998);  // no gap of 3 until the end
}

TEST(Timeline, OccupySinglePassMatchesFitsVerdict) {
  // The one-binary-search occupy must accept and reject exactly what
  // fits() reports, including touching boundaries.
  Timeline tl;
  tl.occupy(1, 10, 10);
  tl.occupy(2, 30, 10);
  EXPECT_THROW(tl.occupy(3, 9, 2), std::logic_error);    // tail overlap
  EXPECT_THROW(tl.occupy(3, 19, 2), std::logic_error);   // head overlap
  EXPECT_THROW(tl.occupy(3, 12, 30), std::logic_error);  // spans both
  EXPECT_NO_THROW(tl.occupy(3, 20, 10));                 // exact gap
  EXPECT_NO_THROW(tl.occupy(4, 0, 10));                  // before first
  EXPECT_NO_THROW(tl.occupy(5, 40, 1));                  // after last
  const auto& ivs = tl.intervals();
  ASSERT_EQ(ivs.size(), 5u);
  for (std::size_t i = 1; i < ivs.size(); ++i)
    EXPECT_LE(ivs[i - 1].end, ivs[i].start);  // sorted and disjoint
}

TEST(Timeline, ReleaseWithHintRemovesTheRightInterval) {
  Timeline tl;
  tl.occupy(7, 0, 10);
  tl.occupy(8, 10, 10);
  tl.occupy(9, 30, 10);
  EXPECT_TRUE(tl.release(8, 10));
  EXPECT_FALSE(tl.release(8, 10));
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl.intervals()[0].owner, 7);
  EXPECT_EQ(tl.intervals()[1].owner, 9);
}

TEST(Timeline, ReleaseWithWrongHintFallsBackToLinearScan) {
  Timeline tl;
  tl.occupy(7, 0, 10);
  tl.occupy(8, 10, 10);
  EXPECT_TRUE(tl.release(7, 999));  // bogus hint still finds the interval
  EXPECT_EQ(tl.size(), 1u);
  EXPECT_EQ(tl.intervals()[0].owner, 8);
  EXPECT_FALSE(tl.release(42, 10));  // hint matches a start, owner does not
  EXPECT_EQ(tl.size(), 1u);
}

TEST(Timeline, ReleaseWithHintThenReoccupySameSlot) {
  // The unplace/replace cycle of migrating schedulers: hinted release
  // frees exactly the interval the caller placed, and the slot is
  // immediately reusable.
  Timeline tl;
  for (int i = 0; i < 50; ++i) tl.occupy(i, i * 10, 10);
  EXPECT_TRUE(tl.release(25, 250));
  EXPECT_TRUE(tl.fits(250, 10));
  tl.occupy(99, 250, 10);
  EXPECT_EQ(tl.size(), 50u);
  EXPECT_EQ(tl.intervals()[25].owner, 99);
}

}  // namespace
}  // namespace tgs
