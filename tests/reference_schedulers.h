// Naive reference implementations of the pair-selection schedulers: the
// textbook O(steps x ready x procs) loops that ETF, DLS and DLS(APN) used
// before the incremental pair selector (bnp/bnp_common.h). They are the
// ground truth the property tests (test_pair_selector.cpp) and the
// before/after benchmarks (bench/perf/) compare against: the incremental
// versions must reproduce these schedules byte-for-byte.
//
// Deliberately kept as straight-line copies of the retired loops -- do not
// "optimize" them; their simplicity is the point.
#pragma once

#include <queue>
#include <vector>

#include "tgs/apn/apn_common.h"
#include "tgs/net/topology.h"
#include "tgs/bnp/bnp_common.h"
#include "tgs/graph/attributes.h"
#include "tgs/list/ready_list.h"
#include "tgs/net/net_schedule.h"
#include "tgs/sched/schedule.h"
#include "tgs/sched/scheduler.h"

namespace tgs::reference {

/// ETF selection: globally earliest (ready node, processor) start; ties ->
/// higher static level, then smaller node id; per node smaller processor.
inline Schedule naive_etf(const TaskGraph& g, const SchedOptions& opt,
                          bool insertion = false) {
  const std::vector<Time> sl = static_levels(g);
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);

  while (!ready.empty()) {
    NodeId best_n = kNoNode;
    ProcId best_p = 0;
    Time best_t = kTimeInf;
    const int nprocs = scanner.scan_count();
    for (NodeId m : ready.ready()) {
      const ArrivalInfo arr = compute_arrival(sched, m);
      for (ProcId p = 0; p < nprocs; ++p) {
        const Time t =
            sched.earliest_start_on(p, arr.ready_on(p), g.weight(m), insertion);
        const bool better =
            t < best_t ||
            (t == best_t && best_n != kNoNode &&
             (sl[m] > sl[best_n] || (sl[m] == sl[best_n] && m < best_n)));
        if (best_n == kNoNode || better) {
          best_n = m;
          best_p = p;
          best_t = t;
        }
      }
    }
    sched.place(best_n, best_p, best_t);
    scanner.note_placement(best_p);
    ready.mark_scheduled(best_n);
  }
  return sched;
}

/// DLS selection: maximize DL(n, p) = SL(n) - EST(n, p); ties -> earlier
/// start, then smaller node id; per node smaller processor.
inline Schedule naive_dls(const TaskGraph& g, const SchedOptions& opt,
                          bool insertion = false) {
  const std::vector<Time> sl = static_levels(g);
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);

  while (!ready.empty()) {
    NodeId best_n = kNoNode;
    ProcId best_p = 0;
    Time best_start = 0;
    Time best_dl = 0;
    const int nprocs = scanner.scan_count();
    for (NodeId m : ready.ready()) {
      const ArrivalInfo arr = compute_arrival(sched, m);
      for (ProcId p = 0; p < nprocs; ++p) {
        const Time est =
            sched.earliest_start_on(p, arr.ready_on(p), g.weight(m), insertion);
        const Time dl = sl[m] - est;
        const bool better =
            best_n == kNoNode || dl > best_dl ||
            (dl == best_dl &&
             (est < best_start ||
              (est == best_start && (m < best_n || (m == best_n && p < best_p)))));
        if (better) {
          best_n = m;
          best_p = p;
          best_start = est;
          best_dl = dl;
        }
      }
    }
    sched.place(best_n, best_p, best_start);
    scanner.note_placement(best_p);
    ready.mark_scheduled(best_n);
  }
  return sched;
}

/// DLS(APN): every (ready node, processor) pair probed against the
/// current link state at every step.
inline NetSchedule naive_dls_apn(const TaskGraph& g,
                                 const RoutingTable& routes) {
  const std::vector<Time> sl = static_levels(g);
  NetSchedule ns(g, routes);
  const int nprocs = routes.topology().num_procs();
  ReadyList ready(g);

  while (!ready.empty()) {
    NodeId best_n = kNoNode;
    int best_p = 0;
    Time best_dl = 0;
    Time best_est = 0;
    for (NodeId m : ready.ready()) {
      for (int p = 0; p < nprocs; ++p) {
        const Time est = apn_probe_est(ns, m, p, /*insertion=*/false);
        const Time dl = sl[m] - est;
        const bool better =
            best_n == kNoNode || dl > best_dl ||
            (dl == best_dl &&
             (est < best_est || (est == best_est && m < best_n)));
        if (better) {
          best_n = m;
          best_p = p;
          best_dl = dl;
          best_est = est;
        }
      }
    }
    apn_commit_node(ns, best_n, best_p, /*insertion=*/false);
    ready.mark_scheduled(best_n);
  }
  return ns;
}

/// One BSA migration decision: task `node` tried to bubble from `from`
/// to `to`; `accepted` is the makespan verdict (<= before, ties accepted).
struct BsaDecision {
  NodeId node;
  int from;
  int to;
  bool accepted;
};

/// BSA exactly as shipped before the incremental migration engine: every
/// tentative migration rebuilds the entire NetSchedule from the updated
/// assignment via apn_build_with_assignment. Ground truth for the
/// BsaIncremental.* property tests -- the engine-based BsaScheduler must
/// reproduce these schedules (and decisions) byte-for-byte, including the
/// rolled-back state after every rejected migration.
inline NetSchedule full_rebuild_bsa(const TaskGraph& g,
                                    const RoutingTable& routes,
                                    std::vector<BsaDecision>* decisions =
                                        nullptr) {
  const Topology& topo = routes.topology();
  const int pivot0 = topo.max_degree_proc();

  std::vector<ProcId> assign(g.num_nodes(), static_cast<ProcId>(pivot0));
  NetSchedule ns = apn_build_with_assignment(g, routes, assign,
                                             /*insertion=*/true);

  std::vector<int> pivots;
  {
    std::vector<bool> seen(topo.num_procs(), false);
    std::queue<int> q;
    q.push(pivot0);
    seen[pivot0] = true;
    while (!q.empty()) {
      const int p = q.front();
      q.pop();
      pivots.push_back(p);
      for (const Topology::Neighbor& nb : topo.neighbors(p)) {
        if (!seen[nb.proc]) {
          seen[nb.proc] = true;
          q.push(nb.proc);
        }
      }
    }
  }

  ApnSweepScratch scratch;
  for (int pivot : pivots) {
    std::vector<NodeId> on_pivot;
    for (const Interval& iv : ns.tasks().timeline(pivot).intervals())
      on_pivot.push_back(static_cast<NodeId>(iv.owner));

    for (NodeId n : on_pivot) {
      if (ns.tasks().proc(n) != pivot) continue;
      const Time cur_start = ns.tasks().start(n);

      apn_probe_ready_all(ns, n, scratch);
      int best_p = -1;
      Time best_est = cur_start;
      for (const Topology::Neighbor& nb : topo.neighbors(pivot)) {
        const Time est = ns.tasks().earliest_start_on(
            nb.proc, scratch.ready[nb.proc], g.weight(n), /*insertion=*/true);
        if (est < best_est) {
          best_est = est;
          best_p = nb.proc;
        }
      }
      if (best_p < 0) continue;

      const Time before = ns.makespan();
      assign[n] = static_cast<ProcId>(best_p);
      NetSchedule rebuilt =
          apn_build_with_assignment(g, routes, assign, /*insertion=*/true);
      const bool accepted = rebuilt.makespan() <= before;
      if (decisions) decisions->push_back({n, pivot, best_p, accepted});
      if (accepted) {
        ns = std::move(rebuilt);
      } else {
        assign[n] = static_cast<ProcId>(pivot);
      }
    }
  }
  return ns;
}

/// The ETF loop rebuilt on IncrementalPairSelector with a configurable
/// insertion mode -- the production EtfScheduler is append-only, so the
/// insertion variants of the selector are exercised through this harness.
inline Schedule incremental_etf(const TaskGraph& g, const SchedOptions& opt,
                                bool insertion, SchedWorkspace& ws) {
  const std::vector<Time> sl = static_levels(g);
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);
  IncrementalPairSelector sel(sched, scanner, insertion, ws.pair_scratch());
  for (NodeId n : ready.ready()) sel.node_ready(n);

  while (!ready.empty()) {
    NodeId best_n = kNoNode;
    Time best_t = kTimeInf;
    for (NodeId m : ready.ready()) {
      const Time t = sel.best(m).start;
      const bool better =
          t < best_t ||
          (t == best_t && best_n != kNoNode &&
           (sl[m] > sl[best_n] || (sl[m] == sl[best_n] && m < best_n)));
      if (best_n == kNoNode || better) {
        best_n = m;
        best_t = t;
      }
    }
    const ProcId best_p = sel.best(best_n).proc;
    sched.place(best_n, best_p, best_t);
    scanner.note_placement(best_p);
    sel.node_placed(best_n, best_p);
    ready.mark_scheduled(best_n);
    for (const Adj& c : g.children(best_n))
      if (ready.is_ready(c.node)) sel.node_ready(c.node);
  }
  return sched;
}

/// DLS on the incremental selector with configurable insertion mode.
inline Schedule incremental_dls(const TaskGraph& g, const SchedOptions& opt,
                                bool insertion, SchedWorkspace& ws) {
  const std::vector<Time> sl = static_levels(g);
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);
  IncrementalPairSelector sel(sched, scanner, insertion, ws.pair_scratch());
  for (NodeId n : ready.ready()) sel.node_ready(n);

  while (!ready.empty()) {
    NodeId best_n = kNoNode;
    Time best_start = 0;
    Time best_dl = 0;
    for (NodeId m : ready.ready()) {
      const Time est = sel.best(m).start;
      const Time dl = sl[m] - est;
      const bool better =
          best_n == kNoNode || dl > best_dl ||
          (dl == best_dl &&
           (est < best_start || (est == best_start && m < best_n)));
      if (better) {
        best_n = m;
        best_start = est;
        best_dl = dl;
      }
    }
    const ProcId best_p = sel.best(best_n).proc;
    sched.place(best_n, best_p, best_start);
    scanner.note_placement(best_p);
    sel.node_placed(best_n, best_p);
    ready.mark_scheduled(best_n);
    for (const Adj& c : g.children(best_n))
      if (ready.is_ready(c.node)) sel.node_ready(c.node);
  }
  return sched;
}

}  // namespace tgs::reference
