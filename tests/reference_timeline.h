// The retired flat sorted-vector Timeline: one std::vector<Interval> with
// linear-scan insertion fits and O(n) memmove occupy. It is the ground
// truth the gap-indexed chunked Timeline must answer bit-identically to
// (tests/test_timeline.cpp) and the baseline the tgs_perf timeline
// benchmarks measure the gap index against.
//
// Deliberately a straight copy of the retired code -- do not "optimize"
// it; its simplicity is the point.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "tgs/sched/timeline.h"

namespace tgs::reference {

class FlatTimeline {
 public:
  Time earliest_fit(Time ready, Cost dur, bool insertion) const {
    if (ivs_.empty()) return ready;
    if (!insertion) return std::max(ready, ivs_.back().end);
    if (dur == 0) return ready;
    auto it = std::lower_bound(
        ivs_.begin(), ivs_.end(), ready,
        [](const Interval& iv, Time t) { return iv.end <= t; });
    Time candidate = ready;
    for (; it != ivs_.end(); ++it) {
      if (candidate + dur <= it->start) return candidate;
      candidate = std::max(candidate, it->end);
    }
    return candidate;
  }

  bool fits(Time start, Cost dur) const {
    auto it = std::lower_bound(
        ivs_.begin(), ivs_.end(), start,
        [](const Interval& iv, Time t) { return iv.end <= t; });
    if (it == ivs_.end()) return true;
    return it->start >= start + dur;
  }

  void occupy(std::int64_t owner, Time start, Cost dur) {
    auto it = std::lower_bound(
        ivs_.begin(), ivs_.end(), start,
        [](const Interval& iv, Time t) { return iv.end <= t; });
    if (it != ivs_.end() && it->start < start + dur)
      throw std::logic_error("overlap");
    while (it != ivs_.begin() && std::prev(it)->start >= start) --it;
    ivs_.insert(it, Interval{start, start + dur, owner});
  }

  bool release(std::int64_t owner) {
    auto it = std::find_if(
        ivs_.begin(), ivs_.end(),
        [owner](const Interval& iv) { return iv.owner == owner; });
    if (it == ivs_.end()) return false;
    ivs_.erase(it);
    return true;
  }

  std::size_t size() const { return ivs_.size(); }
  const std::vector<Interval>& intervals() const { return ivs_; }

 private:
  std::vector<Interval> ivs_;  // sorted by start, non-overlapping
};

}  // namespace tgs::reference
