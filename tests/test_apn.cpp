// Tests for the four APN algorithms: message-level validity across
// topologies, determinism, and algorithm-specific behaviours.
#include <gtest/gtest.h>

#include <random>

#include "reference_schedulers.h"
#include "tgs/apn/bsa.h"
#include "tgs/apn/bu.h"
#include "tgs/apn/dls_apn.h"
#include "tgs/apn/mh.h"
#include "tgs/gen/psg.h"
#include "tgs/gen/rgnos.h"
#include "tgs/gen/structured.h"
#include "tgs/graph/attributes.h"
#include "tgs/harness/registry.h"
#include "tgs/net/net_validate.h"
#include "tgs/unc/cluster_schedule.h"

namespace tgs {
namespace {

std::vector<TaskGraph> apn_zoo() {
  std::vector<TaskGraph> zoo;
  zoo.push_back(psg_canonical9());
  zoo.push_back(psg_irregular13());
  zoo.push_back(chain_graph(6, 10, 20));
  zoo.push_back(fork_join(5, 10, 30));
  RgnosParams p;
  p.num_nodes = 50;
  p.ccr = 1.0;
  p.parallelism = 3;
  p.seed = 14;
  zoo.push_back(rgnos_graph(p));
  return zoo;
}

std::vector<Topology> topo_zoo() {
  std::vector<Topology> topos;
  topos.push_back(Topology::ring(4));
  topos.push_back(Topology::mesh(2, 3));
  topos.push_back(Topology::hypercube(3));
  topos.push_back(Topology::fully_connected(4));
  topos.push_back(Topology::star(5));
  return topos;
}

TEST(Apn, AllValidAcrossTopologies) {
  for (const auto& topo : topo_zoo()) {
    const RoutingTable routes(topo);
    for (const auto& algo : make_apn_schedulers()) {
      for (const auto& g : apn_zoo()) {
        const NetSchedule ns = algo->run(g, routes);
        const auto v = validate_net_schedule(ns);
        EXPECT_TRUE(v.ok) << algo->name() << " on " << g.name() << " / "
                          << topo.name() << ": " << v.error;
        EXPECT_GE(ns.makespan(), computation_critical_path_length(g));
      }
    }
  }
}

TEST(Apn, Deterministic) {
  const Topology topo = Topology::hypercube(3);
  const RoutingTable routes(topo);
  RgnosParams p;
  p.num_nodes = 40;
  p.seed = 77;
  const TaskGraph g = rgnos_graph(p);
  for (const auto& algo : make_apn_schedulers()) {
    const NetSchedule a = algo->run(g, routes);
    const NetSchedule b = algo->run(g, routes);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      EXPECT_EQ(a.tasks().proc(n), b.tasks().proc(n)) << algo->name();
      EXPECT_EQ(a.tasks().start(n), b.tasks().start(n)) << algo->name();
    }
  }
}

TEST(ApnCommon, BuildWithAssignmentRoutesEverything) {
  const TaskGraph g = psg_canonical9();
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  std::vector<ProcId> assign(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) assign[n] = n % 4;
  const NetSchedule ns =
      apn_build_with_assignment(g, routes, assign, /*insertion=*/false);
  const auto v = validate_net_schedule(ns);
  EXPECT_TRUE(v.ok) << v.error;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    EXPECT_EQ(ns.tasks().proc(n), assign[n]);
}

TEST(ApnCommon, ProbeNeverBeatsCommit) {
  // The probe ignores intra-node message contention, so the committed
  // start can only be later or equal.
  const TaskGraph g = psg_irregular13();
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  NetSchedule ns(g, routes);
  for (NodeId n : blevel_order(g)) {
    const int p = static_cast<int>(n % 4);
    const Time probe = apn_probe_est(ns, n, p, false);
    const Time committed = apn_commit_node(ns, n, p, false);
    EXPECT_LE(probe, committed);
  }
  EXPECT_TRUE(validate_net_schedule(ns).ok);
}

/// Small DAG with zero-cost edges and heavy fan-in: the probe-sweep edge
/// cases (instantaneous messages, many co-located parents).
TaskGraph zero_cost_mix() {
  TaskGraphBuilder b("zero_cost_mix");
  for (int i = 0; i < 10; ++i) b.add_node(5 + i);
  b.add_edge(0, 3, 0);
  b.add_edge(0, 4, 12);
  b.add_edge(1, 4, 0);
  b.add_edge(1, 5, 30);
  b.add_edge(2, 5, 0);
  b.add_edge(3, 6, 7);
  b.add_edge(4, 6, 0);
  b.add_edge(5, 6, 25);
  b.add_edge(3, 7, 0);
  b.add_edge(4, 7, 0);
  b.add_edge(6, 8, 40);
  b.add_edge(7, 8, 0);
  b.add_edge(6, 9, 1);
  b.add_edge(7, 9, 2);
  return b.finalize();
}

TEST(ApnCommon, ProbeEstAllMatchesPerProcessor) {
  // One-to-all EST sweeps against per-processor probes, at every step of a
  // contended build-up (messages committed between probes), including
  // zero-cost edges and co-located parents.
  std::vector<TaskGraph> graphs = apn_zoo();
  graphs.push_back(zero_cost_mix());
  for (const auto& topo : topo_zoo()) {
    const RoutingTable routes(topo);
    const int nprocs = topo.num_procs();
    for (const auto& g : graphs) {
      NetSchedule ns(g, routes);
      ApnSweepScratch scratch;
      int i = 0;
      for (NodeId n : blevel_order(g)) {
        for (const bool insertion : {false, true}) {
          apn_probe_est_all(ns, n, insertion, scratch);
          for (int p = 0; p < nprocs; ++p)
            ASSERT_EQ(scratch.est[p], apn_probe_est(ns, n, p, insertion))
                << g.name() << " on " << topo.name() << " node " << n
                << " proc " << p << " insertion " << insertion;
        }
        // Clustered placement co-locates consecutive nodes (zero-hop
        // parents) while still crossing links regularly.
        apn_commit_node(ns, n, (i++ / 2) % nprocs, /*insertion=*/false);
      }
    }
  }
}

// Golden APN schedules on multi-hop topologies: exact (proc, start) of
// every task, captured from the pre-gap-index/pre-sweep implementation.
// Guards the byte-identical contract of the fast network core on routes
// longer than one hop (the JSONL goldens cover hypercube(3) only).
TEST(Apn, GoldenSchedulesOnMultiHopTopologies) {
  RgnosParams p;
  p.num_nodes = 60;
  p.ccr = 2.0;
  p.parallelism = 3;
  p.seed = 424242;
  const TaskGraph g = rgnos_graph(p);
  const RoutingTable ring6{Topology::ring(6)};
  const RoutingTable mesh23{Topology::mesh(2, 3)};

  using PS = std::pair<ProcId, Time>;
  const auto expect_schedule = [&](const NetSchedule& ns,
                                   const std::vector<PS>& want,
                                   const char* label) {
    ASSERT_EQ(want.size(), g.num_nodes()) << label;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      EXPECT_EQ(ns.tasks().proc(n), want[n].first) << label << " node " << n;
      EXPECT_EQ(ns.tasks().start(n), want[n].second) << label << " node " << n;
    }
  };

  const NetSchedule mh = MhScheduler().run(g, ring6);
  EXPECT_EQ(mh.makespan(), 6978);
  expect_schedule(
      mh,
      {{4,99},{4,110},{0,0},{2,43},{5,92},{3,59},{5,0},{2,76},{1,73},{4,77},
       {5,49},{0,67},{5,832},{3,0},{4,0},{2,0},{3,105},{5,88},{0,100},{0,70},
       {1,0},{4,68},{5,875},{4,1193},{0,321},{2,701},{2,1621},{3,478},
       {2,1498},{4,1392},{5,786},{1,1311},{4,1554},{1,1084},{1,1188},{3,599},
       {3,1203},{5,695},{1,857},{0,386},{2,914},{0,551},{3,3550},{3,1804},
       {1,635},{5,180},{3,1238},{2,581},{1,579},{1,5933},{1,4639},{0,4047},
       {1,5318},{1,1959},{0,5035},{0,2676},{1,3232},{1,6611},{4,6946},
       {1,5613}},
      "MH/ring6");

  const NetSchedule dls = DlsApnScheduler().run(g, ring6);
  EXPECT_EQ(dls.makespan(), 5885);
  expect_schedule(
      dls,
      {{2,101},{2,112},{3,0},{0,68},{1,73},{4,73},{3,67},{2,0},{2,55},
       {5,109},{0,104},{0,101},{5,171},{5,0},{0,0},{4,0},{1,113},{4,119},
       {5,59},{4,43},{1,0},{3,116},{3,176},{4,1194},{4,634},{5,131},{3,571},
       {4,297},{5,1715},{3,1411},{1,1453},{3,780},{1,1803},{5,1494},{0,293},
       {1,190},{2,349},{4,944},{1,540},{4,243},{5,337},{0,435},{0,1021},
       {1,2238},{1,145},{3,125},{4,163},{0,167},{1,2070},{0,3811},{1,4410},
       {4,4594},{5,3106},{1,2984},{5,2140},{1,2711},{1,3548},{2,5006},
       {5,5481},{3,5808}},
      "DLS-APN/ring6");

  const NetSchedule bu = BuScheduler().run(g, ring6);
  EXPECT_EQ(bu.makespan(), 6053);
  expect_schedule(
      bu,
      {{0,55},{1,713},{1,0},{1,359},{1,557},{1,431},{1,310},{0,0},{1,489},
       {1,535},{1,392},{1,477},{5,0},{1,183},{1,242},{1,140},{1,704},{2,30},
       {0,66},{2,0},{1,67},{1,480},{4,0},{2,1027},{1,784},{1,1032},{0,1375},
       {0,873},{2,1773},{1,1352},{1,1072},{1,1243},{1,2027},{2,1215},
       {1,1193},{2,793},{2,1914},{1,933},{1,1118},{1,849},{1,1148},{0,600},
       {0,3520},{1,2478},{1,987},{1,653},{2,2047},{1,879},{1,597},{3,5546},
       {2,3919},{0,3206},{2,4528},{0,2364},{0,4177},{1,2405},{1,2525},
       {2,5987},{1,6021},{0,5262}},
      "BU/ring6");

  const NetSchedule bsa = BsaScheduler().run(g, mesh23);
  EXPECT_EQ(bsa.makespan(), 2082);
  expect_schedule(
      bsa,
      {{3,39},{5,68},{1,0},{1,67},{2,43},{1,100},{4,59},{1,225},{1,179},
       {1,280},{3,0},{1,146},{3,50},{4,0},{5,0},{2,0},{1,463},{1,302},
       {1,306},{1,149},{0,0},{4,108},{2,83},{1,1082},{1,472},{1,840},
       {1,1340},{1,683},{1,1267},{1,1194},{1,903},{1,1173},{1,1496},
       {1,1104},{1,1024},{1,880},{1,1294},{1,741},{1,949},{1,537},{1,979},
       {1,567},{1,1439},{1,1648},{1,795},{1,412},{1,1363},{1,629},{1,356},
       {1,1933},{1,1758},{1,1735},{1,1469},{1,1391},{1,1804},{1,1543},
       {1,1694},{1,2008},{1,2050},{1,1856}},
      "BSA/mesh23");
}

TEST(ApnCommon, BuildWithAssignmentRejectsWrongSizedVector) {
  const TaskGraph g = psg_canonical9();
  const RoutingTable routes{Topology::ring(4)};
  std::vector<ProcId> short_assign(g.num_nodes() - 1, 0);
  EXPECT_THROW(
      apn_build_with_assignment(g, routes, short_assign, /*insertion=*/true),
      std::invalid_argument);
  std::vector<ProcId> long_assign(g.num_nodes() + 3, 0);
  EXPECT_THROW(
      apn_build_with_assignment(g, routes, long_assign, /*insertion=*/true),
      std::invalid_argument);
}

/// Full byte-level equality of two NetSchedules: every task placement and
/// every committed message, hop by hop.
void expect_net_equal(const NetSchedule& a, const NetSchedule& b,
                      const std::string& label) {
  const TaskGraph& g = a.graph();
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    ASSERT_EQ(a.tasks().is_placed(n), b.tasks().is_placed(n))
        << label << " node " << n;
    if (!a.tasks().is_placed(n)) continue;
    ASSERT_EQ(a.tasks().proc(n), b.tasks().proc(n)) << label << " node " << n;
    ASSERT_EQ(a.tasks().start(n), b.tasks().start(n))
        << label << " node " << n;
  }
  const std::vector<Message>& ma = a.messages();
  const std::vector<Message>& mb = b.messages();
  ASSERT_EQ(ma.size(), mb.size()) << label;
  for (std::size_t i = 0; i < ma.size(); ++i) {
    ASSERT_EQ(ma[i].src, mb[i].src) << label << " msg " << i;
    ASSERT_EQ(ma[i].dst, mb[i].dst) << label << " msg " << i;
    ASSERT_EQ(ma[i].size, mb[i].size) << label << " msg " << i;
    ASSERT_EQ(ma[i].depart_after, mb[i].depart_after) << label << " msg " << i;
    ASSERT_EQ(ma[i].arrival, mb[i].arrival) << label << " msg " << i;
    ASSERT_EQ(ma[i].hops.size(), mb[i].hops.size()) << label << " msg " << i;
    for (std::size_t h = 0; h < ma[i].hops.size(); ++h) {
      ASSERT_EQ(ma[i].hops[h].link, mb[i].hops[h].link)
          << label << " msg " << i << " hop " << h;
      ASSERT_EQ(ma[i].hops[h].start, mb[i].hops[h].start)
          << label << " msg " << i << " hop " << h;
      ASSERT_EQ(ma[i].hops[h].end, mb[i].hops[h].end)
          << label << " msg " << i << " hop " << h;
    }
  }
}

// The migration engine against ground truth: random (node, proc)
// reassignments on random topologies x random graphs. Every apply() must
// match a from-scratch rebuild of the updated assignment byte-for-byte,
// and every rollback() must restore the pre-apply schedule byte-for-byte.
TEST(BsaIncremental, EngineMatchesFullRebuild) {
  std::mt19937 rng(20260808);
  std::vector<TaskGraph> graphs = apn_zoo();
  for (const auto& topo : topo_zoo()) {
    const RoutingTable routes(topo);
    const int nprocs = topo.num_procs();
    for (const auto& g : graphs) {
      std::vector<ProcId> assign(g.num_nodes());
      for (NodeId n = 0; n < g.num_nodes(); ++n)
        assign[n] = static_cast<ProcId>(rng() % nprocs);
      NetSchedule ns =
          apn_build_with_assignment(g, routes, assign, /*insertion=*/true);
      SchedWorkspace ws;
      ws.begin_graph(g);
      ApnMigrationEngine engine(ns, assign, /*insertion=*/true,
                                ws.migration_scratch());
      const std::string label = g.name() + " on " + topo.name();
      for (int step = 0; step < 25; ++step) {
        const std::vector<ProcId> prev = assign;
        const NodeId n = static_cast<NodeId>(rng() % g.num_nodes());
        const ProcId p = static_cast<ProcId>(rng() % nprocs);
        const Time after = engine.apply(n, p);

        std::vector<ProcId> want = prev;
        want[n] = p;
        const NetSchedule ref =
            apn_build_with_assignment(g, routes, want, /*insertion=*/true);
        ASSERT_EQ(after, ref.makespan()) << label << " step " << step;
        expect_net_equal(ns, ref, label + " apply step " +
                                      std::to_string(step));

        if (rng() % 2 == 0) {
          engine.rollback();
          ASSERT_EQ(assign, prev) << label << " step " << step;
          const NetSchedule ref_before =
              apn_build_with_assignment(g, routes, prev, /*insertion=*/true);
          expect_net_equal(ns, ref_before, label + " rollback step " +
                                               std::to_string(step));
        } else {
          engine.commit();
          ASSERT_EQ(assign, want) << label << " step " << step;
        }
      }
    }
  }
}

// The incremental BsaScheduler against the retired full-rebuild BSA
// (tests/reference_schedulers.h): final schedules byte-identical across
// random topologies x random graphs. Replaying the reference's decision
// log through the engine additionally pins every accept/reject verdict
// (a rejected migration exercises the snapshot/rollback path, and any
// state divergence it left behind would flip a later verdict).
TEST(BsaIncremental, MatchesFullRebuild) {
  std::vector<TaskGraph> graphs = apn_zoo();
  {
    RgnosParams p;
    p.num_nodes = 45;
    p.ccr = 2.0;
    p.parallelism = 4;
    p.seed = 9001;
    graphs.push_back(rgnos_graph(p));
  }
  for (const auto& topo : topo_zoo()) {
    const RoutingTable routes(topo);
    for (const auto& g : graphs) {
      const std::string label = g.name() + " on " + topo.name();

      std::vector<reference::BsaDecision> decisions;
      const NetSchedule want = reference::full_rebuild_bsa(g, routes,
                                                           &decisions);
      const NetSchedule got = BsaScheduler().run(g, routes);
      expect_net_equal(got, want, label);

      // Replay: injection + the reference's tentative migrations, driven
      // through the engine. Each verdict must agree with the reference's.
      const int pivot0 = topo.max_degree_proc();
      std::vector<ProcId> assign(g.num_nodes(),
                                 static_cast<ProcId>(pivot0));
      NetSchedule ns =
          apn_build_with_assignment(g, routes, assign, /*insertion=*/true);
      SchedWorkspace ws;
      ws.begin_graph(g);
      ApnMigrationEngine engine(ns, assign, /*insertion=*/true,
                                ws.migration_scratch());
      for (std::size_t i = 0; i < decisions.size(); ++i) {
        const reference::BsaDecision& d = decisions[i];
        const Time before = ns.makespan();
        const Time after = engine.apply(d.node,
                                        static_cast<ProcId>(d.to));
        ASSERT_EQ(after <= before, d.accepted)
            << label << " decision " << i;
        if (d.accepted) {
          engine.commit();
        } else {
          engine.rollback();
        }
      }
      expect_net_equal(ns, want, label + " replay");
    }
  }
}

TEST(Bsa, StartsFromMaxDegreePivotAndImproves) {
  // BSA must never be worse than the serial injection it starts from.
  const TaskGraph g = psg_canonical9();
  const Topology topo = Topology::hypercube(3);
  const RoutingTable routes(topo);
  BsaScheduler bsa;
  const NetSchedule ns = bsa.run(g, routes);
  EXPECT_LE(ns.makespan(), g.total_weight());
  EXPECT_TRUE(validate_net_schedule(ns).ok);
}

// Pin the acceptance tie rule (bsa.cpp): a migration whose resulting
// makespan EQUALS the current one is accepted (<=, not <), so ties cause
// task churn by design. Construction: P (w=10) -> X (w=2, c=1) and
// P -> D (w=5, c=50); E (w=17) independent, on fully_connected(3).
// Serial injection stacks P, E, D, X on the pivot in b-level order. E
// bubbles away (ends at 17 on a neighbour), D is pinned by its 50-cost
// message, so X is processed at start 15 behind D while the makespan is
// pinned at 17 by E. X's best EST elsewhere is 11: migrating improves
// X's start but leaves the makespan at exactly 17 -- and the <= rule
// moves it anyway. Flipping <= to < would keep X on the pivot and fail
// this test (and the goldens).
TEST(Bsa, EqualMakespanMigrationIsAccepted) {
  TaskGraphBuilder b("bsa_tie");
  b.add_node(10);        // 0: P
  b.add_node(17);        // 1: E
  b.add_node(5);         // 2: D
  b.add_node(2);         // 3: X
  b.add_edge(0, 2, 50);  // P -> D: migrating D never pays
  b.add_edge(0, 3, 1);   // P -> X: cheap enough to churn
  const TaskGraph g = b.finalize();
  const RoutingTable routes{Topology::fully_connected(3)};
  const int pivot0 = routes.topology().max_degree_proc();

  const NetSchedule ns = BsaScheduler().run(g, routes);
  EXPECT_EQ(ns.makespan(), 17);
  // The tie churn happened: X left the pivot and starts at its probed 11.
  EXPECT_NE(ns.tasks().proc(3), pivot0);
  EXPECT_EQ(ns.tasks().start(3), 11);
  // ...for zero makespan gain: keeping X on the pivot scores the same.
  std::vector<ProcId> stay(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) stay[n] = ns.tasks().proc(n);
  stay[3] = static_cast<ProcId>(pivot0);
  EXPECT_EQ(apn_build_with_assignment(g, routes, stay, /*insertion=*/true)
                .makespan(),
            ns.makespan());
}

TEST(Bsa, SingleProcessorTopologyDegeneratesToSerial) {
  const TaskGraph g = psg_canonical9();
  const Topology topo = Topology::fully_connected(1);
  const RoutingTable routes(topo);
  BsaScheduler bsa;
  const NetSchedule ns = bsa.run(g, routes);
  EXPECT_EQ(ns.makespan(), g.total_weight());
}

TEST(Bu, AssignsChildrenBeforeParents) {
  // On a chain, BU's bottom-up pull keeps everything on one processor.
  const TaskGraph g = chain_graph(6, 10, 25);
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  BuScheduler bu;
  const NetSchedule ns = bu.run(g, routes);
  EXPECT_EQ(ns.tasks().procs_used(), 1);
  EXPECT_EQ(ns.makespan(), 60);
}

TEST(Mh, ChainStaysLocal) {
  const TaskGraph g = chain_graph(6, 10, 25);
  const Topology topo = Topology::mesh(2, 2);
  const RoutingTable routes(topo);
  MhScheduler mh;
  const NetSchedule ns = mh.run(g, routes);
  EXPECT_EQ(ns.tasks().procs_used(), 1);
  EXPECT_EQ(ns.makespan(), 60);
}

TEST(DlsApn, ChainStaysLocal) {
  const TaskGraph g = chain_graph(6, 10, 25);
  const Topology topo = Topology::hypercube(2);
  const RoutingTable routes(topo);
  DlsApnScheduler dls;
  const NetSchedule ns = dls.run(g, routes);
  EXPECT_EQ(ns.tasks().procs_used(), 1);
  EXPECT_EQ(ns.makespan(), 60);
}

TEST(Apn, MoreLinksNeverHurtMuch) {
  // Paper §6.4.1: "all algorithms perform better on the networks with more
  // communication links". Compare ring vs clique on the same graph; allow
  // slack (heuristics are not monotone), but the clique should win for the
  // contention-heavy fork-join.
  const TaskGraph g = fork_join(8, 10, 40);
  const RoutingTable ring_routes{Topology::ring(4)};
  const RoutingTable clique_routes{Topology::fully_connected(4)};
  for (const auto& algo : make_apn_schedulers()) {
    const Time ring_len = algo->run(g, ring_routes).makespan();
    const Time clique_len = algo->run(g, clique_routes).makespan();
    EXPECT_LE(clique_len, ring_len) << algo->name();
  }
}

}  // namespace
}  // namespace tgs
