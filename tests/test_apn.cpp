// Tests for the four APN algorithms: message-level validity across
// topologies, determinism, and algorithm-specific behaviours.
#include <gtest/gtest.h>

#include "tgs/apn/bsa.h"
#include "tgs/apn/bu.h"
#include "tgs/apn/dls_apn.h"
#include "tgs/apn/mh.h"
#include "tgs/gen/psg.h"
#include "tgs/gen/rgnos.h"
#include "tgs/gen/structured.h"
#include "tgs/graph/attributes.h"
#include "tgs/harness/registry.h"
#include "tgs/net/net_validate.h"
#include "tgs/unc/cluster_schedule.h"

namespace tgs {
namespace {

std::vector<TaskGraph> apn_zoo() {
  std::vector<TaskGraph> zoo;
  zoo.push_back(psg_canonical9());
  zoo.push_back(psg_irregular13());
  zoo.push_back(chain_graph(6, 10, 20));
  zoo.push_back(fork_join(5, 10, 30));
  RgnosParams p;
  p.num_nodes = 50;
  p.ccr = 1.0;
  p.parallelism = 3;
  p.seed = 14;
  zoo.push_back(rgnos_graph(p));
  return zoo;
}

std::vector<Topology> topo_zoo() {
  std::vector<Topology> topos;
  topos.push_back(Topology::ring(4));
  topos.push_back(Topology::mesh(2, 3));
  topos.push_back(Topology::hypercube(3));
  topos.push_back(Topology::fully_connected(4));
  topos.push_back(Topology::star(5));
  return topos;
}

TEST(Apn, AllValidAcrossTopologies) {
  for (const auto& topo : topo_zoo()) {
    const RoutingTable routes(topo);
    for (const auto& algo : make_apn_schedulers()) {
      for (const auto& g : apn_zoo()) {
        const NetSchedule ns = algo->run(g, routes);
        const auto v = validate_net_schedule(ns);
        EXPECT_TRUE(v.ok) << algo->name() << " on " << g.name() << " / "
                          << topo.name() << ": " << v.error;
        EXPECT_GE(ns.makespan(), computation_critical_path_length(g));
      }
    }
  }
}

TEST(Apn, Deterministic) {
  const Topology topo = Topology::hypercube(3);
  const RoutingTable routes(topo);
  RgnosParams p;
  p.num_nodes = 40;
  p.seed = 77;
  const TaskGraph g = rgnos_graph(p);
  for (const auto& algo : make_apn_schedulers()) {
    const NetSchedule a = algo->run(g, routes);
    const NetSchedule b = algo->run(g, routes);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      EXPECT_EQ(a.tasks().proc(n), b.tasks().proc(n)) << algo->name();
      EXPECT_EQ(a.tasks().start(n), b.tasks().start(n)) << algo->name();
    }
  }
}

TEST(ApnCommon, BuildWithAssignmentRoutesEverything) {
  const TaskGraph g = psg_canonical9();
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  std::vector<ProcId> assign(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) assign[n] = n % 4;
  const NetSchedule ns =
      apn_build_with_assignment(g, routes, assign, /*insertion=*/false);
  const auto v = validate_net_schedule(ns);
  EXPECT_TRUE(v.ok) << v.error;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    EXPECT_EQ(ns.tasks().proc(n), assign[n]);
}

TEST(ApnCommon, ProbeNeverBeatsCommit) {
  // The probe ignores intra-node message contention, so the committed
  // start can only be later or equal.
  const TaskGraph g = psg_irregular13();
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  NetSchedule ns(g, routes);
  for (NodeId n : blevel_order(g)) {
    const int p = static_cast<int>(n % 4);
    const Time probe = apn_probe_est(ns, n, p, false);
    const Time committed = apn_commit_node(ns, n, p, false);
    EXPECT_LE(probe, committed);
  }
  EXPECT_TRUE(validate_net_schedule(ns).ok);
}

TEST(Bsa, StartsFromMaxDegreePivotAndImproves) {
  // BSA must never be worse than the serial injection it starts from.
  const TaskGraph g = psg_canonical9();
  const Topology topo = Topology::hypercube(3);
  const RoutingTable routes(topo);
  BsaScheduler bsa;
  const NetSchedule ns = bsa.run(g, routes);
  EXPECT_LE(ns.makespan(), g.total_weight());
  EXPECT_TRUE(validate_net_schedule(ns).ok);
}

TEST(Bsa, SingleProcessorTopologyDegeneratesToSerial) {
  const TaskGraph g = psg_canonical9();
  const Topology topo = Topology::fully_connected(1);
  const RoutingTable routes(topo);
  BsaScheduler bsa;
  const NetSchedule ns = bsa.run(g, routes);
  EXPECT_EQ(ns.makespan(), g.total_weight());
}

TEST(Bu, AssignsChildrenBeforeParents) {
  // On a chain, BU's bottom-up pull keeps everything on one processor.
  const TaskGraph g = chain_graph(6, 10, 25);
  const Topology topo = Topology::ring(4);
  const RoutingTable routes(topo);
  BuScheduler bu;
  const NetSchedule ns = bu.run(g, routes);
  EXPECT_EQ(ns.tasks().procs_used(), 1);
  EXPECT_EQ(ns.makespan(), 60);
}

TEST(Mh, ChainStaysLocal) {
  const TaskGraph g = chain_graph(6, 10, 25);
  const Topology topo = Topology::mesh(2, 2);
  const RoutingTable routes(topo);
  MhScheduler mh;
  const NetSchedule ns = mh.run(g, routes);
  EXPECT_EQ(ns.tasks().procs_used(), 1);
  EXPECT_EQ(ns.makespan(), 60);
}

TEST(DlsApn, ChainStaysLocal) {
  const TaskGraph g = chain_graph(6, 10, 25);
  const Topology topo = Topology::hypercube(2);
  const RoutingTable routes(topo);
  DlsApnScheduler dls;
  const NetSchedule ns = dls.run(g, routes);
  EXPECT_EQ(ns.tasks().procs_used(), 1);
  EXPECT_EQ(ns.makespan(), 60);
}

TEST(Apn, MoreLinksNeverHurtMuch) {
  // Paper §6.4.1: "all algorithms perform better on the networks with more
  // communication links". Compare ring vs clique on the same graph; allow
  // slack (heuristics are not monotone), but the clique should win for the
  // contention-heavy fork-join.
  const TaskGraph g = fork_join(8, 10, 40);
  const RoutingTable ring_routes{Topology::ring(4)};
  const RoutingTable clique_routes{Topology::fully_connected(4)};
  for (const auto& algo : make_apn_schedulers()) {
    const Time ring_len = algo->run(g, ring_routes).makespan();
    const Time clique_len = algo->run(g, clique_routes).makespan();
    EXPECT_LE(clique_len, ring_len) << algo->name();
  }
}

}  // namespace
}  // namespace tgs
