// Unit tests for sched/schedule.h and sched/validate.h.
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/gen/structured.h"
#include "tgs/sched/gantt.h"
#include "tgs/sched/schedule.h"
#include "tgs/sched/validate.h"

namespace tgs {
namespace {

TEST(Schedule, PlaceAndQuery) {
  const TaskGraph g = chain_graph(3, 10, 5);
  Schedule s(g, 2);
  s.place(0, 0, 0);
  s.place(1, 0, 10);
  s.place(2, 1, 35);  // cross-proc: 20 finish + 5 comm would be 25; 35 ok
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.proc(1), 0);
  EXPECT_EQ(s.start(2), 35);
  EXPECT_EQ(s.finish(2), 45);
  EXPECT_EQ(s.makespan(), 45);
  EXPECT_EQ(s.procs_used(), 2);
}

TEST(Schedule, RejectsDoublePlacement) {
  const TaskGraph g = independent_tasks(2);
  Schedule s(g);
  s.place(0, 0, 0);
  EXPECT_THROW(s.place(0, 1, 0), std::logic_error);
}

TEST(Schedule, RejectsProcessorOverlap) {
  const TaskGraph g = independent_tasks(2, 10);
  Schedule s(g);
  s.place(0, 0, 0);
  EXPECT_THROW(s.place(1, 0, 5), std::logic_error);
}

TEST(Schedule, UnplaceRestoresState) {
  const TaskGraph g = independent_tasks(2, 10);
  Schedule s(g);
  s.place(0, 0, 0);
  s.unplace(0);
  EXPECT_FALSE(s.is_placed(0));
  EXPECT_EQ(s.placed_count(), 0u);
  s.place(1, 0, 3);  // the slot is free again
  EXPECT_EQ(s.start(1), 3);
  EXPECT_THROW(s.unplace(0), std::logic_error);
}

TEST(Schedule, DataReadyAccountsForCommunication) {
  const TaskGraph g = fork_join(2, 10, 5);  // 0=fork, 1..2=workers, 3=join
  Schedule s(g, 3);
  s.place(0, 0, 0);  // finishes at 10
  EXPECT_EQ(s.data_ready(1, 0), 10);  // same proc: no comm
  EXPECT_EQ(s.data_ready(1, 1), 15);  // cross: +5
  s.place(1, 0, 10);
  s.place(2, 1, 15);
  // join on proc 0: worker1 local (20), worker2 cross (25+5=30).
  EXPECT_EQ(s.data_ready(3, 0), 30);
  // join on proc 2: both cross: max(20+5, 25+5) = 30.
  EXPECT_EQ(s.data_ready(3, 2), 30);
}

TEST(Schedule, EstUsesInsertionWhenAsked) {
  const TaskGraph g = independent_tasks(3, 10);
  Schedule s(g, 1);
  s.place(0, 0, 0);
  s.place(1, 0, 30);  // gap [10, 30)
  EXPECT_EQ(s.est(2, 0, /*insertion=*/true), 10);
  EXPECT_EQ(s.est(2, 0, /*insertion=*/false), 40);
}

TEST(Schedule, GrowsProcessorsOnDemand) {
  const TaskGraph g = independent_tasks(2);
  Schedule s(g, 1);
  s.place(0, 0, 0);
  s.place(1, 5, 0);
  EXPECT_GE(s.num_procs(), 6);
  EXPECT_EQ(s.procs_used(), 2);
}

TEST(Validate, AcceptsCorrectSchedule) {
  const TaskGraph g = chain_graph(3, 10, 5);
  Schedule s(g, 2);
  s.place(0, 0, 0);
  s.place(1, 0, 10);
  s.place(2, 1, 25);
  EXPECT_TRUE(validate_schedule(s));
}

TEST(Validate, RejectsIncomplete) {
  const TaskGraph g = chain_graph(2);
  Schedule s(g);
  s.place(0, 0, 0);
  const auto r = validate_schedule(s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not placed"), std::string::npos);
}

TEST(Validate, RejectsSameProcPrecedenceViolation) {
  TaskGraphBuilder b;
  const NodeId x = b.add_node(10);
  const NodeId y = b.add_node(10);
  b.add_edge(x, y, 0);
  const TaskGraph g = b.finalize();
  Schedule s(g, 2);
  s.place(y, 0, 0);
  s.place(x, 0, 10);  // child before parent on the same proc
  const auto r = validate_schedule(s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("violated"), std::string::npos);
}

TEST(Validate, RejectsMissingCommDelay) {
  const TaskGraph g = chain_graph(2, 10, 5);
  Schedule s(g, 2);
  s.place(0, 0, 0);
  s.place(1, 1, 12);  // needs 10 + 5 = 15 cross-proc
  EXPECT_FALSE(validate_schedule(s).ok);
  Schedule ok(g, 2);
  ok.place(0, 0, 0);
  ok.place(1, 1, 15);
  EXPECT_TRUE(validate_schedule(ok).ok);
}

TEST(Validate, EnforcesProcessorBound) {
  const TaskGraph g = independent_tasks(2, 5);
  Schedule s(g, 4);
  s.place(0, 0, 0);
  s.place(1, 3, 0);
  EXPECT_TRUE(validate_schedule(s).ok);
  EXPECT_FALSE(validate_schedule(s, /*max_procs=*/2).ok);
}

TEST(Gantt, ListingAndChartRender) {
  const TaskGraph g = psg_canonical9();
  Schedule s(g, 2);
  // Simple serial placement on one processor in topological order.
  Time t = 0;
  for (NodeId n : g.topological_order()) {
    s.place(n, 0, t);
    t += g.weight(n);
  }
  EXPECT_TRUE(validate_schedule(s).ok);
  const std::string listing = schedule_listing(s);
  EXPECT_NE(listing.find("P0"), std::string::npos);
  EXPECT_NE(listing.find("n1"), std::string::npos);
  const std::string chart = gantt_chart(s, 60);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

}  // namespace
}  // namespace tgs
