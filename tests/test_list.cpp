// Unit tests for list/priorities.h and list/ready_list.h.
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/gen/structured.h"
#include "tgs/list/priorities.h"
#include "tgs/list/ready_list.h"

namespace tgs {
namespace {

TEST(Priorities, DescendingOrderWithTies) {
  const std::vector<Time> prio{5, 9, 5, 1};
  const auto order = order_by_descending(prio);
  EXPECT_EQ(order, (std::vector<NodeId>{1, 0, 2, 3}));  // ties by id
}

TEST(Priorities, AscendingOrderWithTies) {
  const std::vector<Time> key{4, 2, 4, 0};
  const auto order = order_by_ascending(key);
  EXPECT_EQ(order, (std::vector<NodeId>{3, 1, 0, 2}));
}

TEST(Priorities, ArgmaxPriority) {
  const std::vector<Time> prio{3, 7, 7, 2};
  EXPECT_EQ(argmax_priority({0, 1, 2, 3}, prio), 1u);  // tie 1 vs 2 -> 1
  EXPECT_EQ(argmax_priority({0, 3}, prio), 0u);
  EXPECT_EQ(argmax_priority({}, prio), kNoNode);
}

TEST(ReadyList, InitialEntriesOnly) {
  const TaskGraph g = fork_join(3, 10, 5);
  ReadyList rl(g);
  ASSERT_EQ(rl.ready().size(), 1u);
  EXPECT_EQ(rl.ready()[0], 0u);  // the fork
  EXPECT_EQ(rl.remaining(), g.num_nodes());
}

TEST(ReadyList, AdmitsChildrenWhenAllParentsScheduled) {
  const TaskGraph g = fork_join(2, 10, 5);  // 0 fork, 1-2 workers, 3 join
  ReadyList rl(g);
  rl.mark_scheduled(0);
  EXPECT_EQ(rl.ready(), (std::vector<NodeId>{1, 2}));
  rl.mark_scheduled(1);
  EXPECT_EQ(rl.ready(), (std::vector<NodeId>{2}));  // join still blocked
  rl.mark_scheduled(2);
  EXPECT_EQ(rl.ready(), (std::vector<NodeId>{3}));
  rl.mark_scheduled(3);
  EXPECT_TRUE(rl.empty());
  EXPECT_EQ(rl.remaining(), 0u);
}

TEST(ReadyList, RejectsSchedulingNonReadyNode) {
  const TaskGraph g = chain_graph(3);
  ReadyList rl(g);
  EXPECT_THROW(rl.mark_scheduled(2), std::logic_error);
}

TEST(ReadyList, KeepsSortedOrder) {
  const TaskGraph g = psg_canonical9();
  ReadyList rl(g);
  while (!rl.empty()) {
    const auto& r = rl.ready();
    for (std::size_t i = 1; i < r.size(); ++i) EXPECT_LT(r[i - 1], r[i]);
    rl.mark_scheduled(r.front());
  }
}

TEST(ReadyList, DrainsWholeGraphInTopologicalOrder) {
  const TaskGraph g = psg_pipelines16();
  ReadyList rl(g);
  std::vector<bool> done(g.num_nodes(), false);
  std::size_t count = 0;
  while (!rl.empty()) {
    const NodeId n = rl.ready().front();
    for (const Adj& p : g.parents(n)) EXPECT_TRUE(done[p.node]);
    done[n] = true;
    ++count;
    rl.mark_scheduled(n);
  }
  EXPECT_EQ(count, g.num_nodes());
}

}  // namespace
}  // namespace tgs
