// Unit tests for graph/task_graph.h: builder validation, CSR adjacency,
// topological order, serialization round-trip, DOT export.
#include <gtest/gtest.h>

#include <sstream>

#include "tgs/gen/psg.h"
#include "tgs/graph/dot.h"
#include "tgs/graph/graph_io.h"
#include "tgs/graph/task_graph.h"

namespace tgs {
namespace {

TaskGraph small_graph() {
  TaskGraphBuilder b("small");
  const NodeId a = b.add_node(2, "a");
  const NodeId c = b.add_node(3, "c");
  const NodeId d = b.add_node(4, "d");
  b.add_edge(a, c, 5);
  b.add_edge(a, d, 1);
  b.add_edge(c, d, 7);
  return b.finalize();
}

TEST(TaskGraphBuilder, BasicConstruction) {
  const TaskGraph g = small_graph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.weight(0), 2);
  EXPECT_EQ(g.total_weight(), 9);
  EXPECT_EQ(g.total_edge_cost(), 13);
  EXPECT_EQ(g.name(), "small");
}

TEST(TaskGraphBuilder, AdjacencyBothDirections) {
  const TaskGraph g = small_graph();
  ASSERT_EQ(g.children(0).size(), 2u);
  EXPECT_EQ(g.children(0)[0].node, 1u);
  EXPECT_EQ(g.children(0)[0].cost, 5);
  EXPECT_EQ(g.children(0)[1].node, 2u);
  ASSERT_EQ(g.parents(2).size(), 2u);
  EXPECT_EQ(g.parents(2)[0].node, 0u);
  EXPECT_EQ(g.parents(2)[1].node, 1u);
  EXPECT_EQ(g.parents(2)[1].cost, 7);
}

TEST(TaskGraphBuilder, EdgeCostLookup) {
  const TaskGraph g = small_graph();
  EXPECT_EQ(g.edge_cost(0, 1), 5);
  EXPECT_EQ(g.edge_cost(1, 2), 7);
  EXPECT_EQ(g.edge_cost(2, 0), TaskGraph::kNoEdge);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
}

TEST(TaskGraphBuilder, EntriesAndExits) {
  const TaskGraph g = small_graph();
  ASSERT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.entry_nodes()[0], 0u);
  ASSERT_EQ(g.exit_nodes().size(), 1u);
  EXPECT_EQ(g.exit_nodes()[0], 2u);
}

TEST(TaskGraphBuilder, TopologicalOrderRespectsEdges) {
  const TaskGraph g = small_graph();
  const auto& topo = g.topological_order();
  ASSERT_EQ(topo.size(), 3u);
  std::vector<std::size_t> pos(3);
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const Adj& c : g.children(u)) EXPECT_LT(pos[u], pos[c.node]);
}

TEST(TaskGraphBuilder, RejectsCycle) {
  TaskGraphBuilder b;
  const NodeId x = b.add_node(1);
  const NodeId y = b.add_node(1);
  b.add_edge(x, y, 0);
  b.add_edge(y, x, 0);
  EXPECT_THROW(b.finalize(), std::invalid_argument);
}

TEST(TaskGraphBuilder, RejectsSelfLoop) {
  TaskGraphBuilder b;
  const NodeId x = b.add_node(1);
  EXPECT_THROW(b.add_edge(x, x, 0), std::invalid_argument);
}

TEST(TaskGraphBuilder, RejectsDuplicateEdge) {
  TaskGraphBuilder b;
  const NodeId x = b.add_node(1);
  const NodeId y = b.add_node(1);
  b.add_edge(x, y, 1);
  b.add_edge(x, y, 2);
  EXPECT_THROW(b.finalize(), std::invalid_argument);
}

TEST(TaskGraphBuilder, RejectsNonPositiveWeight) {
  TaskGraphBuilder b;
  EXPECT_THROW(b.add_node(0), std::invalid_argument);
  EXPECT_THROW(b.add_node(-3), std::invalid_argument);
}

TEST(TaskGraphBuilder, RejectsNegativeEdgeCost) {
  TaskGraphBuilder b;
  const NodeId x = b.add_node(1);
  const NodeId y = b.add_node(1);
  EXPECT_THROW(b.add_edge(x, y, -1), std::invalid_argument);
}

TEST(TaskGraphBuilder, RejectsOutOfRangeEndpoint) {
  TaskGraphBuilder b;
  b.add_node(1);
  EXPECT_THROW(b.add_edge(0, 5, 1), std::invalid_argument);
}

TEST(TaskGraphBuilder, ZeroCostEdgeAllowed) {
  TaskGraphBuilder b;
  const NodeId x = b.add_node(1);
  const NodeId y = b.add_node(1);
  b.add_edge(x, y, 0);
  const TaskGraph g = b.finalize();
  EXPECT_EQ(g.edge_cost(0, 1), 0);
}

TEST(TaskGraph, CcrComputation) {
  const TaskGraph g = small_graph();
  // avg comm = 13/3, avg comp = 9/3 -> ccr = 13/9.
  EXPECT_NEAR(g.ccr(), 13.0 / 9.0, 1e-12);
}

TEST(TaskGraph, LabelsPreserved) {
  const TaskGraph g = small_graph();
  ASSERT_TRUE(g.has_labels());
  EXPECT_EQ(g.label(0), "a");
  EXPECT_EQ(g.label(2), "d");
}

TEST(GraphIo, RoundTrip) {
  const TaskGraph g = psg_canonical9();
  const std::string text = graph_to_string(g);
  const TaskGraph h = graph_from_string(text);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(h.weight(n), g.weight(n));
    EXPECT_EQ(h.label(n), g.label(n));
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const Adj& c : g.children(u))
      EXPECT_EQ(h.edge_cost(u, c.node), c.cost);
}

TEST(GraphIo, RejectsMalformed) {
  EXPECT_THROW(graph_from_string("not a graph"), std::invalid_argument);
  EXPECT_THROW(graph_from_string("tgs1 g 2 0\nnode 1 5\n"),
               std::invalid_argument);  // non-dense ids
  EXPECT_THROW(graph_from_string("tgs1 g 1 1\nnode 0 5\n"),
               std::invalid_argument);  // truncated (missing edge)
}

TEST(GraphIo, CommentsSkipped) {
  const TaskGraph g = graph_from_string(
      "# comment\ntgs1 mini 2 1\nnode 0 4\n# mid\nnode 1 6\nedge 0 1 3\n");
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.edge_cost(0, 1), 3);
}

TEST(Dot, ContainsNodesAndEdges) {
  const TaskGraph g = small_graph();
  const std::string dot = to_dot(g, {0, 2});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dot.find("lightcoral"), std::string::npos);
}

TEST(TaskGraph, EmptyGraph) {
  TaskGraphBuilder b("empty");
  const TaskGraph g = b.finalize();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.topological_order().empty());
}

}  // namespace
}  // namespace tgs
