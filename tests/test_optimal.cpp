// Tests for the branch-and-bound optimal scheduler.
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/gen/rgbos.h"
#include "tgs/gen/rgpos.h"
#include "tgs/gen/structured.h"
#include "tgs/harness/registry.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/optimal/lower_bounds.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/validate.h"

namespace tgs {
namespace {

BBOptions quick(int procs, int threads = 2) {
  BBOptions opt;
  opt.num_procs = procs;
  opt.num_threads = threads;
  opt.time_limit_seconds = 30.0;
  return opt;
}

TEST(LowerBounds, StaticBound) {
  const TaskGraph g = independent_tasks(4, 10);
  LowerBounds lb(g, 2);
  EXPECT_EQ(lb.static_bound(), 20);
  LowerBounds lb4(g, 4);
  EXPECT_EQ(lb4.static_bound(), 10);
}

TEST(LowerBounds, NeverExceedsAchievable) {
  // Bound of the empty schedule must be <= every heuristic's makespan.
  const TaskGraph g = psg_canonical9();
  LowerBounds lb(g, 2);
  Schedule empty(g, 2);
  const Time bound = lb.evaluate(empty);
  SchedOptions opt;
  opt.num_procs = 2;
  for (const auto& algo : make_bnp_schedulers())
    EXPECT_LE(bound, algo->run(g, opt).makespan()) << algo->name();
}

TEST(BranchAndBound, ChainIsSerial) {
  const TaskGraph g = chain_graph(5, 10, 50);
  const BBResult r = branch_and_bound(g, quick(2));
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.length, 50);
  EXPECT_TRUE(validate_schedule(*r.schedule, 2).ok);
}

TEST(BranchAndBound, IndependentTasksBalanced) {
  const TaskGraph g = independent_tasks(6, 10);
  const BBResult r = branch_and_bound(g, quick(2));
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.length, 30);
  const BBResult r3 = branch_and_bound(g, quick(3));
  EXPECT_EQ(r3.length, 20);
}

TEST(BranchAndBound, UnevenTasksPackOptimally) {
  // Weights 7, 5, 4, 3, 2 on 2 procs: optimal makespan = ceil(21/2) = 11
  // (7+4 | 5+3+2).
  TaskGraphBuilder b;
  for (Cost w : {7, 5, 4, 3, 2}) b.add_node(w);
  const TaskGraph g = b.finalize();
  const BBResult r = branch_and_bound(g, quick(2));
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.length, 11);
}

TEST(BranchAndBound, CommForcesSerializationWhenHeavy) {
  // fork-join with comm 100 and tiny tasks: staying serial is optimal.
  const TaskGraph g = fork_join(3, 5, 100);
  const BBResult r = branch_and_bound(g, quick(3));
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.length, g.total_weight());
}

TEST(BranchAndBound, CommCheapAllowsParallelism) {
  // fork-join with free comm on 3 procs: 5 + 5 + 5 = 15.
  const TaskGraph g = fork_join(3, 5, 0);
  const BBResult r = branch_and_bound(g, quick(3));
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.length, 15);
}

TEST(BranchAndBound, MatchesExhaustiveOnTinyGraphs) {
  // Bounds on vs off must agree (bounds only prune, never lose optima).
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const TaskGraph g = rgbos_graph(1.0, 10, seed);
    BBOptions with = quick(2);
    BBOptions without = quick(2);
    without.disable_bounds = true;
    without.time_limit_seconds = 60.0;
    const BBResult a = branch_and_bound(g, with);
    const BBResult c = branch_and_bound(g, without);
    ASSERT_TRUE(a.proven_optimal);
    ASSERT_TRUE(c.proven_optimal);
    EXPECT_EQ(a.length, c.length) << "seed " << seed;
  }
}

TEST(BranchAndBound, NeverWorseThanHeuristics) {
  const TaskGraph g = rgbos_graph(10.0, 14, 5);
  SchedOptions opt;
  opt.num_procs = 2;
  Time best_heur = kTimeInf;
  for (const auto& algo : make_bnp_schedulers())
    best_heur = std::min(best_heur, algo->run(g, opt).makespan());
  BBOptions bb = quick(2);
  bb.initial_upper_bound = best_heur;
  const BBResult r = branch_and_bound(g, bb);
  ASSERT_TRUE(r.proven_optimal);
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_LE(r.length, best_heur);
  EXPECT_TRUE(validate_schedule(*r.schedule, 2).ok);
}

TEST(BranchAndBound, FindsPlantedRgposOptimum) {
  // RGPOS plants a no-idle optimal schedule; B&B must recover its length.
  RgposParams p;
  p.num_nodes = 12;
  p.num_procs = 2;
  p.ccr = 1.0;
  p.seed = 4;
  const RgposGraph r = rgpos_graph(p);
  const BBResult bb = branch_and_bound(r.graph, quick(2));
  ASSERT_TRUE(bb.proven_optimal);
  EXPECT_EQ(bb.length, r.optimal_length);
}

TEST(BranchAndBound, Canonical9TwoProcs) {
  const TaskGraph g = psg_canonical9();
  const BBResult r = branch_and_bound(g, quick(2));
  ASSERT_TRUE(r.proven_optimal);
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_TRUE(validate_schedule(*r.schedule, 2).ok);
  // Optimal is at most the best heuristic and at least the comp-CP bound.
  EXPECT_GE(r.length, schedule_length_lower_bound(g, 2));
  SchedOptions opt;
  opt.num_procs = 2;
  for (const auto& algo : make_bnp_schedulers())
    EXPECT_LE(r.length, algo->run(g, opt).makespan());
}

TEST(BranchAndBound, TimeBudgetReturnsBestFound) {
  // A large instance with an absurdly small budget must still return
  // something (not proven).
  const TaskGraph g = rgbos_graph(1.0, 28, 9);
  BBOptions opt = quick(2);
  opt.time_limit_seconds = 0.05;
  SchedOptions heur_opt;
  heur_opt.num_procs = 2;
  const Time heur = make_scheduler("MCP")->run(g, heur_opt).makespan();
  opt.initial_upper_bound = heur;
  const BBResult r = branch_and_bound(g, opt);
  // Either it proved within budget (fast machine) or returned best-found.
  if (r.schedule.has_value()) {
    EXPECT_LE(r.length, heur);
    EXPECT_TRUE(validate_schedule(*r.schedule, 2).ok);
  } else {
    EXPECT_FALSE(r.proven_optimal);
  }
}

TEST(BranchAndBound, SingleProcessorIsSerialSum) {
  const TaskGraph g = psg_irregular13();
  const BBResult r = branch_and_bound(g, quick(1));
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.length, g.total_weight());
}

TEST(BranchAndBound, EmptyGraph) {
  TaskGraphBuilder b;
  const TaskGraph g = b.finalize();
  const BBResult r = branch_and_bound(g, quick(2));
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.length, 0);
}

TEST(BranchAndBound, DeterministicWhenProven) {
  const TaskGraph g = rgbos_graph(0.1, 12, 33);
  const BBResult a = branch_and_bound(g, quick(2));
  const BBResult b = branch_and_bound(g, quick(2, /*threads=*/4));
  ASSERT_TRUE(a.proven_optimal);
  ASSERT_TRUE(b.proven_optimal);
  EXPECT_EQ(a.length, b.length);
}

void expect_identical_results(const BBResult& a, const BBResult& b,
                              const TaskGraph& g) {
  EXPECT_EQ(a.length, b.length);
  EXPECT_EQ(a.proven_optimal, b.proven_optimal);
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
  ASSERT_EQ(a.schedule.has_value(), b.schedule.has_value());
  if (a.schedule) {
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      EXPECT_EQ(a.schedule->proc(n), b.schedule->proc(n)) << "task " << n;
      EXPECT_EQ(a.schedule->start(n), b.schedule->start(n)) << "task " << n;
    }
  }
}

TEST(BranchAndBound, ByteIdenticalAtOneVsEightThreads) {
  // The round-synchronous search contract: schedule, length,
  // proven_optimal AND nodes_expanded are pure functions of the input --
  // num_threads is execution width only.
  for (const double ccr : {0.1, 1.0, 10.0}) {
    const TaskGraph g = rgbos_graph(ccr, 14, 21);
    const BBResult a = branch_and_bound(g, quick(2, /*threads=*/1));
    const BBResult b = branch_and_bound(g, quick(2, /*threads=*/8));
    SCOPED_TRACE(ccr);
    ASSERT_TRUE(a.schedule.has_value());
    expect_identical_results(a, b, g);
  }
}

TEST(BranchAndBound, ByteIdenticalAcrossThreadsUnderNodeBudget) {
  // Budget truncation must also cut at the same node at any thread count:
  // the budget is rationed per subtree by the round ledger, not by a
  // shared fetch-add race.
  const TaskGraph g = rgbos_graph(1.0, 24, 9);
  BBOptions opt = quick(2, /*threads=*/1);
  opt.time_limit_seconds = 0.0;
  opt.max_nodes = 20'000;
  const BBResult a = branch_and_bound(g, opt);
  opt.num_threads = 8;
  const BBResult b = branch_and_bound(g, opt);
  EXPECT_GE(a.nodes_expanded, 1u);
  expect_identical_results(a, b, g);
}

TEST(BranchAndBound, UpperBoundPruningEverythingReportsTheBound) {
  // A bound below every achievable makespan prunes the whole tree; the
  // result must report that bound (not a bogus 0) and stay proven.
  const TaskGraph g = chain_graph(5, 10, 50);  // optimum = 50
  BBOptions opt = quick(2);
  opt.initial_upper_bound = 20;
  const BBResult r = branch_and_bound(g, opt);
  EXPECT_FALSE(r.schedule.has_value());
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.length, 20);
}

TEST(BranchAndBound, InitialScheduleSeedsTheIncumbent) {
  const TaskGraph g = rgbos_graph(10.0, 14, 5);
  SchedOptions heur_opt;
  heur_opt.num_procs = 2;
  const Schedule heur = make_scheduler("MCP")->run(g, heur_opt);

  // Starved budget: too small to complete anything, yet the seeded
  // incumbent guarantees a schedule no worse than the heuristic.
  BBOptions starved = quick(2);
  starved.time_limit_seconds = 0.0;
  starved.max_nodes = 1;
  starved.initial_schedule = heur;
  const BBResult r = branch_and_bound(g, starved);
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_LE(r.length, heur.makespan());
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_TRUE(validate_schedule(*r.schedule, 2).ok);

  // Full search seeded with the heuristic: still finds the true optimum.
  BBOptions full = quick(2);
  full.initial_schedule = heur;
  full.initial_upper_bound = heur.makespan();
  const BBResult best = branch_and_bound(g, full);
  const BBResult unseeded = branch_and_bound(g, quick(2));
  ASSERT_TRUE(best.proven_optimal);
  ASSERT_TRUE(best.schedule.has_value());
  EXPECT_EQ(best.length, unseeded.length);
}

}  // namespace
}  // namespace tgs
