// Giant-graph tier generator tests: the scale paths must emit VALID DAGs
// at node counts two orders of magnitude past the paper's 500, in
// near-linear time, without 32-bit overflow. Sizes here are big enough to
// catch quadratic blowups (a test that suddenly takes minutes is the
// regression signal) yet small enough for tier-1 (< a second each).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>

#include "tgs/gen/rgnos.h"
#include "tgs/gen/rgpos.h"
#include "tgs/gen/traced.h"
#include "tgs/graph/attributes.h"
#include "tgs/graph/graph_io.h"
#include "tgs/util/cli.h"

namespace tgs {
namespace {

/// Structural validity: builder-enforced acyclicity shows up as a full
/// topological order; spot-check edge direction and reachability basics.
void expect_valid_dag(const TaskGraph& g) {
  ASSERT_EQ(g.topological_order().size(), g.num_nodes());
  std::vector<NodeId> pos(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) pos[g.topological_order()[i]] = i;
  std::size_t edges = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Adj& c : g.children(u)) {
      EXPECT_LT(pos[u], pos[c.node]);  // parents precede children
      ++edges;
    }
  }
  EXPECT_EQ(edges, g.num_edges());
  EXPECT_FALSE(g.entry_nodes().empty());
  EXPECT_FALSE(g.exit_nodes().empty());
}

TEST(GiantTraced, Cholesky100kIsValidAndLinearSized) {
  // dim 446 -> v = 99681: the acceptance-tier graph.
  const TaskGraph g = cholesky_graph(446, 1.0);
  EXPECT_EQ(g.num_nodes(), 99681u);
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(446) * 445);
  expect_valid_dag(g);
  // Weights stay positive and path sums stay well inside 64-bit Time.
  EXPECT_GT(g.total_weight(), 0);
  EXPECT_LT(g.total_weight(), kTimeInf / 1024);
}

TEST(GiantTraced, Fft64kIsValid) {
  const TaskGraph g = fft_graph(8192, 1.0);
  EXPECT_EQ(g.num_nodes(), 13u * 4096u);  // log2(8192) ranks x n/2
  expect_valid_dag(g);
}

TEST(GiantRgnos, ScalePathIsLinearAndConnectedEnough) {
  RgnosParams params;
  params.num_nodes = 50000;
  params.ccr = 1.0;
  params.parallelism = 3;
  params.max_fanout = 8;  // scale path: O(v * max_fanout) edges
  params.seed = 7;
  const TaskGraph g = rgnos_graph(params);
  EXPECT_EQ(g.num_nodes(), 50000u);
  expect_valid_dag(g);
  // Edge count must track the fan-out cap, not the paper's v^2/10 density
  // (which would be 250M edges here).
  EXPECT_LE(g.num_edges(), static_cast<std::size_t>(50000) * (8 * 2 + 1));
  EXPECT_GE(g.num_edges(), 50000u - 1);  // at least the layer spine
  // Degree-distribution smoke: the spine guarantees every non-first-layer
  // node a parent, so isolated nodes can only be entries.
  for (NodeId n : g.entry_nodes()) EXPECT_GT(g.num_children(n) + 1, 0u);
  std::size_t isolated = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (g.num_parents(n) == 0 && g.num_children(n) == 0) ++isolated;
  EXPECT_LT(isolated, g.num_nodes() / 100);  // < 1% degenerate nodes
}

TEST(GiantRgnos, LegacyDensityIsByteIdenticalWithCapUnset) {
  RgnosParams a, b;
  a.num_nodes = b.num_nodes = 300;
  a.seed = b.seed = 42;
  b.max_fanout = 0;  // explicit legacy
  const std::string ga = graph_to_string(rgnos_graph(a));
  const std::string gb = graph_to_string(rgnos_graph(b));
  EXPECT_EQ(ga, gb);
}

TEST(GiantRgpos, ScalePathBoundsEdges) {
  RgposParams params;
  params.num_nodes = 20000;
  params.num_procs = 16;
  params.edges_per_node = 4;  // scale path
  params.seed = 3;
  const RgposGraph rg = rgpos_graph(params);
  EXPECT_EQ(rg.graph.num_nodes(), 20000u);
  expect_valid_dag(rg.graph);
  EXPECT_LE(rg.graph.num_edges(), static_cast<std::size_t>(20000) * 5);
}

TEST(GiantIo, RoundTrips50kNodeGraph) {
  const TaskGraph g = cholesky_graph(300, 1.0);  // v = 45150
  const std::string text = graph_to_string(g);
  const TaskGraph h = graph_from_string(text);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(graph_to_string(h), text);
}

TEST(GiantIo, HeaderRejectsCorruptCounts) {
  EXPECT_THROW(graph_from_string("tgs1 g -1 0\n"), std::invalid_argument);
  EXPECT_THROW(graph_from_string("tgs1 g 99999999999999999999 0\n"),
               std::invalid_argument);
  // A node id that cannot fit NodeId must throw, never wrap.
  EXPECT_THROW(graph_from_string("tgs1 g 1 0\nnode 4294967295 5\n"),
               std::invalid_argument);
}

// Runtime counterpart of the static_asserts in util/types.h: schedule
// time arithmetic at giant scale must not wrap. A 100k-node chain of
// CCR-scaled weights sums past 2^32; Time must carry it exactly.
TEST(GiantTypes, PathSumsExceed32Bits) {
  const std::int64_t v = 100000;
  const std::int64_t per_node = 40 * 1000;  // mean weight x 10x CCR scale
  const Time path = static_cast<Time>(v) * per_node;
  EXPECT_GT(path, static_cast<Time>(std::numeric_limits<std::int32_t>::max()));
  EXPECT_LT(path, kTimeInf);          // headroom: inf still dominates
  EXPECT_LT(path + path, kTimeInf);   // survives an addition
}

TEST(GiantCli, GetIntInRejectsOutOfRangeInsteadOfTruncating) {
  const char* argv[] = {"prog", "--v=5000000000"};  // > int32, legit int64
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("v", 0), 5000000000ll);
  // A caller narrowing to NodeId range gets a loud error, not a wrap.
  EXPECT_THROW(cli.get_int_in("v", 0, 1, 1000000), std::invalid_argument);
  EXPECT_EQ(cli.get_int_in("absent", 123, 1, 10), 123);  // fallback unchecked
  const char* argv2[] = {"prog", "--v=100000"};
  Cli cli2(2, const_cast<char**>(argv2));
  EXPECT_EQ(cli2.get_int_in("v", 0, 1, 1000000), 100000);
}

}  // namespace
}  // namespace tgs
