// Tests for the five UNC algorithms and the clustering substrate.
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/gen/rgnos.h"
#include "tgs/gen/structured.h"
#include "tgs/graph/attributes.h"
#include "tgs/harness/registry.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/validate.h"
#include "tgs/unc/cluster_schedule.h"
#include "tgs/unc/clustering.h"
#include "tgs/unc/dcp.h"
#include "tgs/unc/dsc.h"
#include "tgs/unc/ez.h"
#include "tgs/unc/lc.h"
#include "tgs/unc/md.h"
#include <map>

namespace tgs {
namespace {

TEST(DisjointSets, MergeAndFind) {
  DisjointSets ds(6);
  EXPECT_EQ(ds.num_sets(), 6u);
  ds.merge(1, 4);
  EXPECT_TRUE(ds.same(1, 4));
  EXPECT_EQ(ds.find(4), 1u);  // smaller representative wins
  ds.merge(4, 0);
  EXPECT_EQ(ds.find(1), 0u);
  EXPECT_EQ(ds.num_sets(), 4u);
}

TEST(DisjointSets, SnapshotRestore) {
  DisjointSets ds(4);
  auto snap = ds.snapshot();
  ds.merge(0, 3);
  EXPECT_TRUE(ds.same(0, 3));
  ds.restore(std::move(snap));
  EXPECT_FALSE(ds.same(0, 3));
}

TEST(Clustering, DenseAssignmentOrdersByFirstAppearance) {
  DisjointSets ds(5);
  ds.merge(2, 4);
  const auto a = dense_assignment(ds);
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 1);
  EXPECT_EQ(a[2], 2);
  EXPECT_EQ(a[3], 3);
  EXPECT_EQ(a[4], 2);
}

TEST(ClusterSchedule, RespectsAssignment) {
  const TaskGraph g = fork_join(3, 10, 5);
  std::vector<ProcId> assign{0, 0, 1, 2, 0};  // fork+w1+join on 0
  const Schedule s = schedule_with_assignment(g, assign);
  EXPECT_TRUE(validate_schedule(s).ok);
  for (NodeId n = 0; n < g.num_nodes(); ++n) EXPECT_EQ(s.proc(n), assign[n]);
  EXPECT_EQ(assignment_makespan(g, assign), s.makespan());
}

TEST(ClusterSchedule, BlevelOrderIsTopological) {
  const TaskGraph g = psg_irregular13();
  const auto order = blevel_order(g);
  std::vector<std::size_t> pos(g.num_nodes());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const Adj& c : g.children(u)) EXPECT_LT(pos[u], pos[c.node]);
}

std::vector<TaskGraph> unc_zoo() {
  std::vector<TaskGraph> zoo;
  zoo.push_back(psg_canonical9());
  zoo.push_back(psg_irregular13());
  zoo.push_back(chain_graph(6, 10, 20));
  zoo.push_back(fork_join(5, 10, 30));
  zoo.push_back(diamond_lattice(3, 8, 4));
  RgnosParams p;
  p.num_nodes = 60;
  p.ccr = 1.0;
  p.parallelism = 2;
  p.seed = 5;
  zoo.push_back(rgnos_graph(p));
  return zoo;
}

TEST(Unc, AllValidOnZoo) {
  for (const auto& algo : make_unc_schedulers()) {
    for (const auto& g : unc_zoo()) {
      const Schedule s = algo->run(g, {});
      const auto v = validate_schedule(s);
      EXPECT_TRUE(v.ok) << algo->name() << " on " << g.name() << ": " << v.error;
      EXPECT_GE(s.makespan(), computation_critical_path_length(g));
    }
  }
}

TEST(Unc, Deterministic) {
  RgnosParams p;
  p.num_nodes = 50;
  p.seed = 21;
  const TaskGraph g = rgnos_graph(p);
  for (const auto& algo : make_unc_schedulers()) {
    const Schedule a = algo->run(g, {});
    const Schedule b = algo->run(g, {});
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      EXPECT_EQ(a.proc(n), b.proc(n)) << algo->name();
      EXPECT_EQ(a.start(n), b.start(n)) << algo->name();
    }
  }
}

TEST(Ez, NeverWorseThanNoClustering) {
  // EZ only commits merges that do not increase the evaluated makespan,
  // so its result is <= the fully-distributed cluster schedule.
  for (const auto& g : unc_zoo()) {
    std::vector<ProcId> separate(g.num_nodes());
    for (NodeId n = 0; n < g.num_nodes(); ++n) separate[n] = static_cast<ProcId>(n);
    const Time baseline = assignment_makespan(g, separate);
    EzScheduler ez;
    EXPECT_LE(ez.run(g, {}).makespan(), baseline) << g.name();
  }
}

TEST(Ez, ZeroesHeavyChainEdges) {
  // On a chain with heavy comm, EZ must merge everything into one cluster.
  const TaskGraph g = chain_graph(5, 10, 100);
  EzScheduler ez;
  const Schedule s = ez.run(g, {});
  EXPECT_EQ(s.procs_used(), 1);
  EXPECT_EQ(s.makespan(), 50);
}

TEST(Lc, ClustersAreLinearChains) {
  // Every LC cluster is a path: within a cluster, each node has at most one
  // cluster-successor and one cluster-predecessor.
  for (const auto& g : unc_zoo()) {
    LcScheduler lc;
    const Schedule s = lc.run(g, {});
    ASSERT_TRUE(validate_schedule(s).ok);
    std::vector<int> succ_in_cluster(g.num_nodes(), 0), pred_in_cluster(g.num_nodes(), 0);
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      for (const Adj& c : g.children(u))
        if (s.proc(u) == s.proc(c.node)) {
          // Count only direct chain links: consecutive in time on the proc.
          ++succ_in_cluster[u];
          ++pred_in_cluster[c.node];
        }
    // Linear clusters: no node needs more than (indegree) cluster parents;
    // the structural check is that the cluster's tasks form a time-ordered
    // chain, which validate_schedule already guarantees via exclusivity.
    // Here we check the defining LC property on the peeled critical path:
    // the whole first CP shares one cluster.
    const auto cp = critical_path(g);
    for (std::size_t i = 1; i < cp.size(); ++i)
      EXPECT_EQ(s.proc(cp[i]), s.proc(cp[0])) << g.name();
  }
}

TEST(Dsc, StartTimesNeverExceedFreshClusterStart) {
  // DSC accepts a merge only on strict improvement, so every node starts
  // no later than its t-level (the fresh-cluster start).
  for (const auto& g : unc_zoo()) {
    DscScheduler dsc;
    const Schedule s = dsc.run(g, {});
    ASSERT_TRUE(validate_schedule(s).ok);
  }
}

TEST(Dsc, LinearChainCollapsesToOneCluster) {
  const TaskGraph g = chain_graph(6, 10, 40);
  DscScheduler dsc;
  const Schedule s = dsc.run(g, {});
  EXPECT_EQ(s.procs_used(), 1);
  EXPECT_EQ(s.makespan(), 60);
}

TEST(Md, UsesFewerProcsThanDsc) {
  // Paper §6.4.2: MD uses relatively few processors, DSC uses many. Compare
  // on the RGNOS-style graph of the zoo.
  RgnosParams p;
  p.num_nodes = 80;
  p.ccr = 1.0;
  p.parallelism = 4;
  p.seed = 3;
  const TaskGraph g = rgnos_graph(p);
  MdScheduler md;
  DscScheduler dsc;
  EXPECT_LE(md.run(g, {}).procs_used(), dsc.run(g, {}).procs_used());
}

TEST(Dcp, LeadsUncClassAcrossPeerSetSuite) {
  // Paper §6.1: "Among the UNC algorithms, the DCP algorithm consistently
  // generates the best solutions." Our ready-constrained DCP variant
  // (DESIGN.md §3) tracks that: across the peer-set suite it must beat the
  // non-lookahead algorithms (LC, MD) outright and stay within 2% of the
  // best UNC aggregate.
  DcpScheduler dcp;
  Time dcp_total = 0;
  std::map<std::string, Time> totals;
  for (const auto& entry : peer_set_graphs()) {
    dcp_total += dcp.run(entry.graph, {}).makespan();
    for (const auto& algo : make_unc_schedulers())
      totals[algo->name()] += algo->run(entry.graph, {}).makespan();
  }
  EXPECT_LE(dcp_total, totals["LC"]);
  EXPECT_LE(dcp_total, totals["MD"]);
  Time best = dcp_total;
  for (const auto& [name, total] : totals) best = std::min(best, total);
  EXPECT_LE(static_cast<double>(dcp_total), 1.02 * static_cast<double>(best));
}

TEST(Dcp, EconomizesProcessors) {
  // DCP's candidate set (parents' processors first) keeps processor counts
  // low; on a chain it must use exactly one.
  const TaskGraph g = chain_graph(7, 10, 25);
  DcpScheduler dcp;
  const Schedule s = dcp.run(g, {});
  EXPECT_EQ(s.procs_used(), 1);
  EXPECT_EQ(s.makespan(), 70);
}

TEST(Unc, CpBasedBeatNonCpBasedOnCanonical9) {
  // Paper §6.1: "CP-based algorithms perform better than non-CP-based ones
  // (DCP, DSC, MD and MCP perform better than others)". Check the UNC side:
  // best of {DCP, DSC, MD} <= best of {EZ, LC}.
  const TaskGraph g = psg_canonical9();
  auto len = [&g](const char* name) {
    return make_scheduler(name)->run(g, {}).makespan();
  };
  const Time cp_based = std::min({len("DCP"), len("DSC"), len("MD")});
  const Time non_cp = std::min(len("EZ"), len("LC"));
  EXPECT_LE(cp_based, non_cp);
}

}  // namespace
}  // namespace tgs
