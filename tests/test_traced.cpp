// Tests for the traced-application DAG generators (paper §5.5).
#include <gtest/gtest.h>

#include "tgs/gen/traced.h"
#include "tgs/graph/attributes.h"
#include "tgs/graph/graph_io.h"

namespace tgs {
namespace {

TEST(Cholesky, NodeCountIsTriangular) {
  // v = N(N+1)/2: N cdiv tasks + N(N-1)/2 cmod tasks.
  for (int n : {1, 2, 5, 10, 20}) {
    const TaskGraph g = cholesky_graph(n);
    EXPECT_EQ(g.num_nodes(), static_cast<NodeId>(n * (n + 1) / 2)) << n;
  }
}

TEST(Cholesky, SizeIsQuadraticInDimension) {
  // Paper: "for a matrix dimension of N, the graph size is O(N^2)".
  const auto v = [](int n) { return cholesky_graph(n).num_nodes(); };
  EXPECT_NEAR(static_cast<double>(v(40)) / v(20), 4.0, 0.15);
}

TEST(Cholesky, SingleEntrySingleExit) {
  const TaskGraph g = cholesky_graph(8);
  // cdiv(1) is the only entry; cdiv(8) the only exit.
  ASSERT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.label(g.entry_nodes()[0]), "cdiv(1)");
  ASSERT_EQ(g.exit_nodes().size(), 1u);
  EXPECT_EQ(g.label(g.exit_nodes()[0]), "cdiv(8)");
}

TEST(Cholesky, DependenceStructure) {
  const TaskGraph g = cholesky_graph(4);
  auto find = [&g](const std::string& label) {
    for (NodeId n = 0; n < g.num_nodes(); ++n)
      if (g.label(n) == label) return n;
    ADD_FAILURE() << "missing " << label;
    return kNoNode;
  };
  // cdiv(1) -> cmod(j,1) for j = 2..4.
  for (int j = 2; j <= 4; ++j)
    EXPECT_TRUE(g.has_edge(find("cdiv(1)"),
                           find("cmod(" + std::to_string(j) + ",1)")));
  // Serialized updates of column 4: cmod(4,1) -> cmod(4,2) -> cmod(4,3).
  EXPECT_TRUE(g.has_edge(find("cmod(4,1)"), find("cmod(4,2)")));
  EXPECT_TRUE(g.has_edge(find("cmod(4,2)"), find("cmod(4,3)")));
  // Column completion: cmod(k+1,k) -> cdiv(k+1).
  EXPECT_TRUE(g.has_edge(find("cmod(2,1)"), find("cdiv(2)")));
  EXPECT_TRUE(g.has_edge(find("cmod(4,3)"), find("cdiv(4)")));
  // No reversed or skip dependences.
  EXPECT_FALSE(g.has_edge(find("cdiv(2)"), find("cdiv(1)")));
  EXPECT_FALSE(g.has_edge(find("cdiv(1)"), find("cdiv(3)")));
}

TEST(Cholesky, CommScaleSweepsCcr) {
  const double low = cholesky_graph(12, 0.1).ccr();
  const double mid = cholesky_graph(12, 1.0).ccr();
  const double high = cholesky_graph(12, 10.0).ccr();
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
  EXPECT_GT(high / low, 10.0);
}

TEST(Cholesky, Deterministic) {
  EXPECT_EQ(graph_to_string(cholesky_graph(10, 2.0)),
            graph_to_string(cholesky_graph(10, 2.0)));
}

TEST(Gauss, StructureAndSize) {
  const TaskGraph g = gaussian_elimination_graph(6);
  // (n-1) piv + sum_{k=1}^{n-1}(n-k) upd = 5 + 15 = 20.
  EXPECT_EQ(g.num_nodes(), 20u);
  ASSERT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.label(g.entry_nodes()[0]), "piv(1)");
}

TEST(Gauss, CriticalPathGrowsWithN) {
  EXPECT_LT(critical_path_length(gaussian_elimination_graph(6)),
            critical_path_length(gaussian_elimination_graph(12)));
}

TEST(Fft, ButterflyShape) {
  const TaskGraph g = fft_graph(8);
  // log2(8)=3 ranks x 4 butterflies.
  EXPECT_EQ(g.num_nodes(), 12u);
  // Every non-final butterfly feeds exactly two next-rank tasks (or one if
  // both outputs land in the same pair -- impossible for radix-2).
  for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(g.num_children(n), 2u);
  // Last rank: exits.
  for (NodeId n = 8; n < 12; ++n) EXPECT_EQ(g.num_children(n), 0u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(fft_graph(12), std::invalid_argument);
  EXPECT_THROW(fft_graph(1), std::invalid_argument);
}

TEST(Fft, WidthIsNOver2) {
  EXPECT_EQ(layered_width(fft_graph(16)), 8u);
}

TEST(Laplace, GridShape) {
  const TaskGraph g = laplace_graph(4, 3);
  EXPECT_EQ(g.num_nodes(), 48u);
  // Interior point has 5 children (self + 4 neighbours) in the next sweep.
  // Node (t=0, i=1, j=1) has id 5.
  EXPECT_EQ(g.num_children(5), 5u);
  // Corner point has 3.
  EXPECT_EQ(g.num_children(0), 3u);
  // Last sweep: exits.
  for (NodeId n = 32; n < 48; ++n) EXPECT_EQ(g.num_children(n), 0u);
}

}  // namespace
}  // namespace tgs
