// Tests for the tgs_bench experiment layer (bench/experiments/): every
// registered experiment must produce byte-identical JSONL at --threads=1
// and --threads=8 for a fixed seed, the registry must cover the paper's
// full experiment set, and an explicit --out file shared by several
// experiments of one invocation must append, not truncate.
//
// The experiments run in-process through run_cli() -- the exact code path
// of the tgs_bench binary -- at reduced grids (and --no-timing for the
// experiments that measure wall clock, which is the documented way to
// make their streams reproducible).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/experiments.h"
#include "tgs/util/cli.h"

namespace tgs::bench {
namespace {

namespace fs = std::filesystem;

fs::path temp_jsonl(const std::string& tag) {
  return fs::temp_directory_path() /
         ("tgs_bench_test_" + tag + "_" +
          std::to_string(static_cast<unsigned long>(::getpid())) + ".jsonl");
}

int run_bench(std::vector<std::string> args) {
  args.insert(args.begin(), "tgs_bench");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  const Cli cli(static_cast<int>(argv.size()), argv.data());
  return run_cli(cli);
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// One reduced-grid configuration per experiment; grids are small enough
/// for the full determinism matrix to stay test-suite friendly.
struct ExpConfig {
  std::string name;
  std::vector<std::string> flags;
};

const std::vector<ExpConfig>& reduced_configs() {
  static const std::vector<ExpConfig> configs{
      {"table1", {}},
      {"table2", {"--max-v=12", "--bb-nodes=500"}},
      {"table3", {"--max-v=12", "--bb-nodes=500"}},
      {"table4", {"--max-v=100"}},
      {"table5", {"--max-v=100"}},
      {"table6", {"--max-nodes=50", "--no-timing"}},
      {"fig2", {"--max-nodes=50"}},
      {"fig3", {"--max-nodes=50"}},
      {"fig4", {"--max-dim=8"}},
      {"micro", {"--reps=1", "--no-timing", "--algo=MCP,DCP"}},
      {"ablate_bb",
       {"--max-nodes=10", "--bb-nodes=1000", "--naive-nodes=10000",
        "--no-timing"}},
      {"ablate_ccr", {"--graphs=2", "--nodes=60"}},
      {"ablate_insertion", {"--graphs=2", "--nodes=60"}},
      {"ablate_priority", {"--graphs=2", "--nodes=60", "--no-timing"}},
      {"ablate_topology", {"--graphs=2", "--nodes=40"}},
      {"ext_unc_cs", {"--max-v=50", "--graphs=2"}},
      {"param_sweep",
       {"--ccr=1.0", "--max-v=12", "--bb-nodes=500", "--metric=sl,alap",
        "--ready=static,etf", "--insertion=append,insert"}},
      // Every measurement field (seconds, rss, alloc deltas) routes
      // through time_value(), so --no-timing makes the stream
      // byte-reproducible at any thread count.
      {"giant_sweep",
       {"--sizes=300,900", "--no-timing", "--algos=MCP,ETF"}},
  };
  return configs;
}

std::string run_reduced(const ExpConfig& cfg, int threads,
                        std::uint64_t seed) {
  const fs::path path =
      temp_jsonl(cfg.name + "_t" + std::to_string(threads));
  std::vector<std::string> args{"--experiment=" + cfg.name,
                                "--seed=" + std::to_string(seed),
                                "--threads=" + std::to_string(threads),
                                "--out=" + path.string(),
                                "--quiet", "--no-csv"};
  for (const std::string& f : cfg.flags) args.push_back(f);
  EXPECT_EQ(run_bench(args), 0) << cfg.name;
  const std::string bytes = read_file(path);
  std::error_code ec;
  fs::remove(path, ec);
  return bytes;
}

TEST(Registry, CoversThePaperExperimentSet) {
  const auto& defs = experiments().all();
  EXPECT_GE(defs.size(), 14u);
  for (const char* name :
       {"table1", "table2", "table3", "table4", "table5", "table6", "fig2",
        "fig3", "fig4", "micro", "ablate_bb", "ablate_ccr",
        "ablate_insertion", "ablate_priority", "ablate_topology",
        "ext_unc_cs", "param_sweep"}) {
    const ExperimentDef* def = experiments().find(name);
    ASSERT_NE(def, nullptr) << name;
    EXPECT_EQ(def->name, name);
    EXPECT_NE(def->run, nullptr) << name;
    EXPECT_FALSE(def->description.empty()) << name;
    EXPECT_FALSE(def->family.empty()) << name;
  }
  // Retired standalone-binary names keep resolving as aliases.
  for (const char* alias : {"table2_rgbos_unc", "fig2_nsl_rgnos",
                            "table6_runtimes", "micro_algorithms"}) {
    EXPECT_NE(experiments().find(alias), nullptr) << alias;
  }
  EXPECT_EQ(experiments().find("no_such_experiment"), nullptr);
}

TEST(Registry, EveryExperimentHasAReducedDeterminismConfig) {
  // The determinism matrix below must not silently skip an experiment
  // someone adds later: registering one forces adding a reduced config.
  for (const ExperimentDef& def : experiments().all()) {
    bool covered = false;
    for (const ExpConfig& cfg : reduced_configs())
      covered = covered || cfg.name == def.name;
    EXPECT_TRUE(covered) << "no reduced determinism config for '" << def.name
                         << "' in test_bench_experiments.cpp";
  }
}

TEST(Determinism, EveryExperimentIsByteIdenticalAcrossThreadCounts) {
  for (const ExpConfig& cfg : reduced_configs()) {
    SCOPED_TRACE(cfg.name);
    const std::string serial = run_reduced(cfg, 1, 42);
    const std::string parallel = run_reduced(cfg, 8, 42);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
  }
}

TEST(Determinism, ParallelBranchAndBoundIsByteIdenticalAcrossBbThreads) {
  // The B&B-backed experiments accept --bb-threads (default: the engine's
  // --threads); the round-synchronous search guarantees byte-identical
  // JSONL at any value. This pins the parallel reference path explicitly,
  // independent of the engine-thread matrix above.
  const std::vector<ExpConfig> cases{
      {"table2", {"--max-v=12", "--bb-nodes=500", "--bb-threads=1"}},
      {"table2", {"--max-v=12", "--bb-nodes=500", "--bb-threads=8"}},
      {"table3", {"--max-v=12", "--bb-nodes=500", "--bb-threads=1"}},
      {"table3", {"--max-v=12", "--bb-nodes=500", "--bb-threads=8"}},
      {"ablate_bb",
       {"--max-nodes=10", "--bb-nodes=1000", "--naive-nodes=10000",
        "--no-timing", "--bb-threads=1"}},
      {"ablate_bb",
       {"--max-nodes=10", "--bb-nodes=1000", "--naive-nodes=10000",
        "--no-timing", "--bb-threads=8"}},
  };
  for (std::size_t i = 0; i < cases.size(); i += 2) {
    SCOPED_TRACE(cases[i].name);
    const std::string serial = run_reduced(cases[i], 2, 42);
    const std::string parallel = run_reduced(cases[i + 1], 2, 42);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
  }
}

TEST(Determinism, MasterSeedChangesTheStream) {
  const ExpConfig cfg{"ablate_insertion", {"--graphs=2", "--nodes=60"}};
  EXPECT_NE(run_reduced(cfg, 2, 1), run_reduced(cfg, 2, 2));
}

TEST(OutFile, SecondExperimentOfOneInvocationAppends) {
  const fs::path path = temp_jsonl("append");
  // Two experiments, one explicit --out: the second must append.
  ASSERT_EQ(run_bench({"--experiment=table1", "--experiment=fig4",
                       "--max-dim=8", "--seed=42", "--threads=2",
                       "--out=" + path.string(), "--quiet", "--no-csv"}),
            0);
  const std::string both = read_file(path);
  EXPECT_NE(both.find("\"experiment\":\"table1\""), std::string::npos);
  EXPECT_NE(both.find("\"experiment\":\"fig4\""), std::string::npos);
  // table1's records all precede fig4's.
  EXPECT_LT(both.rfind("\"experiment\":\"table1\""),
            both.find("\"experiment\":\"fig4\""));

  // A fresh invocation truncates: the fig4 records are gone.
  ASSERT_EQ(run_bench({"--experiment=table1", "--seed=42", "--threads=2",
                       "--out=" + path.string(), "--quiet", "--no-csv"}),
            0);
  const std::string solo = read_file(path);
  EXPECT_NE(solo.find("\"experiment\":\"table1\""), std::string::npos);
  EXPECT_EQ(solo.find("\"experiment\":\"fig4\""), std::string::npos);
  EXPECT_LT(solo.size(), both.size());
  std::error_code ec;
  fs::remove(path, ec);
}

TEST(Cli, UnknownExperimentFailsWithUsage) {
  EXPECT_EQ(run_bench({"--experiment=definitely_not_real", "--quiet"}), 2);
  EXPECT_EQ(run_bench({"--quiet"}), 2);  // no experiment at all
  EXPECT_EQ(run_bench({"--list"}), 0);
}

TEST(Cli, MistypedAlgoFilterThrows) {
  // A typo must not silently run the sweep with an empty algorithm set.
  EXPECT_THROW(run_bench({"--experiment=table2", "--algo=NOPE", "--quiet",
                          "--no-csv", "--out=none"}),
               std::invalid_argument);
  // A BNP-only name is equally unknown to the UNC-only table2.
  EXPECT_THROW(run_bench({"--experiment=table2", "--algo=MCP", "--quiet",
                          "--no-csv", "--out=none"}),
               std::invalid_argument);
  // ...but valid for experiments that span several classes.
  EXPECT_EQ(run_bench({"--experiment=micro", "--algo=MCP", "--reps=1",
                       "--no-timing", "--quiet", "--no-csv", "--out=none"}),
            0);
}

}  // namespace
}  // namespace tgs::bench
