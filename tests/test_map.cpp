// Tests for map/cluster_map.h (UNC + cluster-scheduling extension).
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/registry.h"
#include "tgs/map/cluster_map.h"
#include "tgs/sched/validate.h"
#include "tgs/unc/dsc.h"

namespace tgs {
namespace {

TEST(ClusterMap, ClustersOfExtractsAssignment) {
  const TaskGraph g = psg_canonical9();
  DscScheduler dsc;
  const Schedule s = dsc.run(g, {});
  const auto clusters = clusters_of(s);
  ASSERT_EQ(clusters.size(), g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) EXPECT_EQ(clusters[n], s.proc(n));
}

class ClusterMapFixture : public ::testing::Test {
 protected:
  ClusterMapFixture() {
    RgnosParams p;
    p.num_nodes = 80;
    p.ccr = 1.0;
    p.parallelism = 4;
    p.seed = 6;
    graph = rgnos_graph(p);
    DscScheduler dsc;
    unc = std::make_unique<Schedule>(dsc.run(graph, {}));
  }
  TaskGraph graph{TaskGraphBuilder("x").finalize()};
  std::unique_ptr<Schedule> unc;
};

TEST_F(ClusterMapFixture, SarkarRespectsProcessorBound) {
  for (int p : {2, 4, 8}) {
    const Schedule s = map_clusters_sarkar(graph, clusters_of(*unc), p);
    const auto v = validate_schedule(s, p);
    EXPECT_TRUE(v.ok) << v.error;
    EXPECT_LE(s.procs_used(), p);
  }
}

TEST_F(ClusterMapFixture, RcpRespectsProcessorBound) {
  for (int p : {2, 4, 8}) {
    const Schedule s = map_clusters_rcp(graph, clusters_of(*unc), p);
    const auto v = validate_schedule(s, p);
    EXPECT_TRUE(v.ok) << v.error;
    EXPECT_LE(s.procs_used(), p);
  }
}

TEST_F(ClusterMapFixture, ClustersStayTogether) {
  const auto clusters = clusters_of(*unc);
  const Schedule s = map_clusters_sarkar(graph, clusters, 4);
  for (NodeId a = 0; a < graph.num_nodes(); ++a)
    for (NodeId b = a + 1; b < graph.num_nodes(); ++b)
      if (clusters[a] == clusters[b]) EXPECT_EQ(s.proc(a), s.proc(b));
}

TEST_F(ClusterMapFixture, SarkarConsidersOrderRcpDoesNot) {
  // Paper §7: Sarkar's merging "considering the execution order" should on
  // average do no worse than RCP's order-blind load balancing.
  const auto clusters = clusters_of(*unc);
  const Time sarkar = map_clusters_sarkar(graph, clusters, 4).makespan();
  const Time rcp = map_clusters_rcp(graph, clusters, 4).makespan();
  EXPECT_LE(sarkar, rcp + rcp / 4);  // allow RCP a 25% band, not a theorem
}

TEST(ClusterMap, SingleProcessorDegeneratesToSerial) {
  const TaskGraph g = psg_canonical9();
  DscScheduler dsc;
  const Schedule unc = dsc.run(g, {});
  const Schedule s = map_clusters_rcp(g, clusters_of(unc), 1);
  EXPECT_TRUE(validate_schedule(s, 1).ok);
  EXPECT_EQ(s.makespan(), g.total_weight());
}

TEST(ClusterMap, ManyProcsKeepsUncShapeValid) {
  // With as many processors as clusters, mapping must not break validity.
  const TaskGraph g = psg_irregular13();
  DscScheduler dsc;
  const Schedule unc = dsc.run(g, {});
  const int k = unc.procs_used();
  const Schedule s = map_clusters_sarkar(g, clusters_of(unc), k);
  EXPECT_TRUE(validate_schedule(s, k).ok);
}

}  // namespace
}  // namespace tgs
