// Golden regression anchors: exact schedule lengths of every algorithm on
// the fixed peer-set graphs, locked to the current implementation.
//
// These are NOT paper numbers -- they pin THIS repository's deterministic
// behaviour so that refactors that silently change scheduling decisions
// fail loudly. Update deliberately when an algorithm is intentionally
// improved, and record the change in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <map>

#include "tgs/gen/psg.h"
#include "tgs/harness/registry.h"
#include "tgs/net/routing.h"

namespace tgs {
namespace {

TEST(Golden, Canonical9Lengths) {
  const TaskGraph g = psg_canonical9();
  const std::map<std::string, Time> expected{
      {"EZ", 19},  {"LC", 19},    {"DSC", 18}, {"MD", 21},
      {"DCP", 19}, {"HLFET", 19}, {"ISH", 19}, {"MCP", 19},
      {"ETF", 19}, {"DLS", 19},   {"LAST", 18}};
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    ASSERT_TRUE(expected.count(algo->name())) << algo->name();
    EXPECT_EQ(algo->run(g, {}).makespan(), expected.at(algo->name()))
        << algo->name();
  }
}

TEST(Golden, Irregular13Lengths) {
  const TaskGraph g = psg_irregular13();
  const std::map<std::string, Time> expected{
      {"EZ", 49},  {"LC", 65},    {"DSC", 57}, {"MD", 68},
      {"DCP", 55}, {"HLFET", 62}, {"ISH", 59}, {"MCP", 60},
      {"ETF", 57}, {"DLS", 57},   {"LAST", 51}};
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    EXPECT_EQ(algo->run(g, {}).makespan(), expected.at(algo->name()))
        << algo->name();
  }
}

TEST(Golden, ApnCanonical9OnHypercube) {
  const TaskGraph g = psg_canonical9();
  const RoutingTable routes{Topology::hypercube(3)};
  std::map<std::string, Time> lengths;
  for (const auto& algo : make_apn_schedulers())
    lengths[algo->name()] = algo->run(g, routes).makespan();
  // Lock the current values (validity is asserted elsewhere).
  EXPECT_EQ(lengths.size(), 4u);
  for (const auto& [name, len] : lengths) {
    EXPECT_GT(len, 0) << name;
    EXPECT_LE(len, g.total_weight() + g.total_edge_cost()) << name;
  }
  // BSA must not lose to the serial injection it starts from.
  EXPECT_LE(lengths["BSA"], g.total_weight());
}

}  // namespace
}  // namespace tgs
