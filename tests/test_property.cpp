// Property-based sweeps (parameterized gtest): every algorithm, over a
// grid of random graphs, must produce valid, deterministic schedules whose
// lengths respect universal bounds.
#include <gtest/gtest.h>

#include <tuple>

#include "tgs/gen/rgnos.h"
#include "tgs/graph/attributes.h"
#include "tgs/harness/registry.h"
#include "tgs/net/net_validate.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/validate.h"

namespace tgs {
namespace {

TaskGraph graph_for(std::uint64_t seed, double ccr, int parallelism) {
  RgnosParams p;
  p.num_nodes = 60;
  p.ccr = ccr;
  p.parallelism = parallelism;
  p.seed = seed;
  return rgnos_graph(p);
}

// ---------------------------------------------------------------------------
// BNP + UNC properties.
using SchedParam = std::tuple<std::string, std::uint64_t, double>;

class SchedulerProperty : public ::testing::TestWithParam<SchedParam> {};

TEST_P(SchedulerProperty, ValidBoundedDeterministic) {
  const auto& [name, seed, ccr] = GetParam();
  const TaskGraph g = graph_for(seed, ccr, 3);
  const auto algo = make_scheduler(name);

  const Schedule s = algo->run(g, {});
  const auto v = validate_schedule(s);
  ASSERT_TRUE(v.ok) << v.error;

  // Universal bounds: comp-CP <= makespan <= serial + all comm.
  EXPECT_GE(s.makespan(), computation_critical_path_length(g));
  EXPECT_LE(s.makespan(), g.total_weight() + g.total_edge_cost());

  // NSL >= 1 (the denominator is a valid lower bound).
  EXPECT_GE(normalized_schedule_length(g, s.makespan()), 1.0);

  // Determinism: bit-identical on re-run.
  const Schedule s2 = algo->run(g, {});
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    ASSERT_EQ(s.proc(n), s2.proc(n));
    ASSERT_EQ(s.start(n), s2.start(n));
  }
}

TEST_P(SchedulerProperty, RespectsProcessorBound) {
  const auto& [name, seed, ccr] = GetParam();
  const TaskGraph g = graph_for(seed ^ 0x5A5A, ccr, 4);
  const auto algo = make_scheduler(name);
  if (algo->algo_class() == AlgoClass::kUNC) {
    GTEST_SKIP() << "UNC algorithms are unbounded by definition";
  }
  SchedOptions opt;
  opt.num_procs = 3;
  const Schedule s = algo->run(g, opt);
  const auto v = validate_schedule(s, 3);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_LE(s.procs_used(), 3);
  EXPECT_GE(s.makespan(), schedule_length_lower_bound(g, 3));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SchedulerProperty,
    ::testing::Combine(
        ::testing::Values("HLFET", "ISH", "MCP", "ETF", "DLS", "LAST", "EZ",
                          "LC", "DSC", "MD", "DCP"),
        ::testing::Values(101ull, 202ull, 303ull),
        ::testing::Values(0.1, 1.0, 10.0)),
    [](const ::testing::TestParamInfo<SchedParam>& info) {
      const std::string& name = std::get<0>(info.param);
      const double ccr = std::get<2>(info.param);
      std::string ccr_tag = ccr < 1 ? "ccrLow" : (ccr > 1 ? "ccrHigh" : "ccrMid");
      return name + "_s" + std::to_string(std::get<1>(info.param)) + "_" + ccr_tag;
    });

// ---------------------------------------------------------------------------
// APN properties.
using ApnParam = std::tuple<std::string, std::string, std::uint64_t>;

Topology topo_by_name(const std::string& name) {
  if (name == "ring") return Topology::ring(8);
  if (name == "mesh") return Topology::mesh(2, 4);
  if (name == "hcube") return Topology::hypercube(3);
  return Topology::fully_connected(8);
}

class ApnProperty : public ::testing::TestWithParam<ApnParam> {};

TEST_P(ApnProperty, ValidBoundedDeterministic) {
  const auto& [algo_name, topo_name, seed] = GetParam();
  const TaskGraph g = graph_for(seed, 1.0, 3);
  const Topology topo = topo_by_name(topo_name);
  const RoutingTable routes(topo);
  const auto algo = make_apn_scheduler(algo_name);

  const NetSchedule ns = algo->run(g, routes);
  const auto v = validate_net_schedule(ns);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_GE(ns.makespan(), computation_critical_path_length(g));

  const NetSchedule ns2 = algo->run(g, routes);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    ASSERT_EQ(ns.tasks().proc(n), ns2.tasks().proc(n));
    ASSERT_EQ(ns.tasks().start(n), ns2.tasks().start(n));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApn, ApnProperty,
    ::testing::Combine(::testing::Values("MH", "DLS-APN", "BU", "BSA"),
                       ::testing::Values("ring", "mesh", "hcube", "clique"),
                       ::testing::Values(11ull, 22ull)),
    [](const ::testing::TestParamInfo<ApnParam>& info) {
      std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param) +
                         "_s" + std::to_string(std::get<2>(info.param));
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace tgs
