// Tests for schedule serialization (sched/schedule_io.h).
#include <gtest/gtest.h>

#include "tgs/gen/psg.h"
#include "tgs/harness/registry.h"
#include "tgs/sched/schedule_io.h"
#include "tgs/sched/validate.h"

namespace tgs {
namespace {

TEST(ScheduleIo, RoundTrip) {
  const TaskGraph g = psg_canonical9();
  const Schedule s = make_scheduler("MCP")->run(g, {});
  const Schedule t = schedule_from_string(schedule_to_string(s), g);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(t.proc(n), s.proc(n));
    EXPECT_EQ(t.start(n), s.start(n));
  }
  EXPECT_EQ(t.makespan(), s.makespan());
  EXPECT_TRUE(validate_schedule(t).ok);
}

TEST(ScheduleIo, RoundTripEveryAlgorithm) {
  const TaskGraph g = psg_irregular13();
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    const Schedule s = algo->run(g, {});
    const Schedule t = schedule_from_string(schedule_to_string(s), g);
    EXPECT_EQ(t.makespan(), s.makespan()) << algo->name();
  }
}

TEST(ScheduleIo, RejectsIncompleteSchedule) {
  const TaskGraph g = psg_canonical9();
  Schedule s(g);
  s.place(0, 0, 0);
  EXPECT_THROW(schedule_to_string(s), std::invalid_argument);
}

TEST(ScheduleIo, RejectsWrongGraph) {
  const TaskGraph g = psg_canonical9();
  const Schedule s = make_scheduler("MCP")->run(g, {});
  const std::string text = schedule_to_string(s);
  const TaskGraph other = psg_irregular13();
  EXPECT_THROW(schedule_from_string(text, other), std::invalid_argument);
}

TEST(ScheduleIo, RejectsMalformed) {
  const TaskGraph g = psg_canonical9();
  EXPECT_THROW(schedule_from_string("garbage", g), std::invalid_argument);
  EXPECT_THROW(schedule_from_string("tgssched1 9 100\ntask 0 0 0\n", g),
               std::invalid_argument);  // truncated
  // Overlapping placements are rejected by Schedule::place.
  const std::string overlap =
      "tgssched1 9 100\n"
      "task 0 0 0\ntask 1 0 1\ntask 2 0 2\ntask 3 0 3\ntask 4 0 4\n"
      "task 5 0 5\ntask 6 0 6\ntask 7 0 7\ntask 8 0 8\n";
  EXPECT_THROW(schedule_from_string(overlap, g), std::logic_error);
}

TEST(ScheduleIo, CommentsAndBlankLinesSkipped) {
  const TaskGraph g = psg_canonical9();
  const Schedule s = make_scheduler("HLFET")->run(g, {});
  std::string text = "# archived schedule\n\n" + schedule_to_string(s);
  const Schedule t = schedule_from_string(text, g);
  EXPECT_EQ(t.makespan(), s.makespan());
}

}  // namespace
}  // namespace tgs
