// Tests for the scheduling-as-a-service subsystem: graph fingerprints,
// the JSON parser, the schedule cache, the wire protocol, and an
// in-process daemon exercised end-to-end over real unix sockets --
// including the acceptance check that served results are byte-identical
// to direct Scheduler::run / ApnScheduler::run calls.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "tgs/exec/jsonl.h"
#include "tgs/gen/psg.h"
#include "tgs/gen/rgnos.h"
#include "tgs/graph/fingerprint.h"
#include "tgs/graph/graph_io.h"
#include "tgs/harness/registry.h"
#include "tgs/net/routing.h"
#include "tgs/net/topology.h"
#include "tgs/sched/schedule_io.h"
#include "tgs/serve/cache.h"
#include "tgs/serve/json.h"
#include "tgs/serve/protocol.h"
#include "tgs/serve/server.h"
#include "tgs/serve/socket.h"
#include "tgs/serve/stats.h"

namespace tgs {
namespace {

TaskGraph small_graph() { return psg_canonical9(); }

TaskGraph random_graph(std::uint64_t seed, NodeId nodes = 60) {
  RgnosParams p;
  p.num_nodes = nodes;
  p.ccr = 1.0;
  p.parallelism = 3;
  p.seed = seed;
  return rgnos_graph(p);
}

// ------------------------------------------------------------ fingerprint --

TEST(Fingerprint, EqualGraphsHashEqual) {
  const TaskGraph a = random_graph(7);
  const TaskGraph b = random_graph(7);
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));
  EXPECT_EQ(graph_fingerprint(a).hex(), graph_fingerprint(b).hex());
  EXPECT_EQ(graph_fingerprint(a).hex().size(), 32u);
}

TEST(Fingerprint, FileLineOrderAndLabelsDoNotMatter) {
  // The same weighted DAG written three ways: original; the legal line
  // reorderings of a tgs1 file (edge lines permuted and interleaved --
  // node ids are dense-in-order by the format, so node lines cannot
  // move); and with the graph renamed + node labels rewritten. All three
  // must fingerprint identically.
  const std::string original =
      "tgs1 g 4 3\n"
      "node 0 5 a\nnode 1 6 b\nnode 2 7 c\nnode 3 8 d\n"
      "edge 0 1 2\nedge 0 2 3\nedge 1 3 4\n";
  const std::string reordered =
      "tgs1 g 4 3\n"
      "node 0 5 a\nnode 1 6 b\nnode 2 7 c\n"
      "edge 0 2 3\nedge 0 1 2\nnode 3 8 d\nedge 1 3 4\n";
  const std::string relabeled =
      "tgs1 renamed 4 3\n"
      "node 0 5 x1\nnode 1 6 x2\nnode 2 7 x3\nnode 3 8 x4\n"
      "edge 0 1 2\nedge 0 2 3\nedge 1 3 4\n";
  const GraphFingerprint fp = graph_fingerprint(graph_from_string(original));
  EXPECT_EQ(fp, graph_fingerprint(graph_from_string(reordered)));
  EXPECT_EQ(fp, graph_fingerprint(graph_from_string(relabeled)));
}

TEST(Fingerprint, AnyContentPerturbationChangesTheHash) {
  const std::string base =
      "tgs1 g 4 3\n"
      "node 0 5\nnode 1 6\nnode 2 7\nnode 3 8\n"
      "edge 0 1 2\nedge 0 2 3\nedge 1 3 4\n";
  const GraphFingerprint fp = graph_fingerprint(graph_from_string(base));

  const auto fp_of = [](const std::string& text) {
    return graph_fingerprint(graph_from_string(text));
  };
  // Node weight changed.
  EXPECT_NE(fp, fp_of("tgs1 g 4 3\n"
                      "node 0 5\nnode 1 9\nnode 2 7\nnode 3 8\n"
                      "edge 0 1 2\nedge 0 2 3\nedge 1 3 4\n"));
  // Edge cost changed.
  EXPECT_NE(fp, fp_of("tgs1 g 4 3\n"
                      "node 0 5\nnode 1 6\nnode 2 7\nnode 3 8\n"
                      "edge 0 1 9\nedge 0 2 3\nedge 1 3 4\n"));
  // Edge moved to a different pair.
  EXPECT_NE(fp, fp_of("tgs1 g 4 3\n"
                      "node 0 5\nnode 1 6\nnode 2 7\nnode 3 8\n"
                      "edge 0 1 2\nedge 0 3 3\nedge 1 3 4\n"));
  // Edge removed.
  EXPECT_NE(fp, fp_of("tgs1 g 4 2\n"
                      "node 0 5\nnode 1 6\nnode 2 7\nnode 3 8\n"
                      "edge 0 1 2\nedge 0 2 3\n"));
  // Extra node.
  EXPECT_NE(fp, fp_of("tgs1 g 5 3\n"
                      "node 0 5\nnode 1 6\nnode 2 7\nnode 3 8\nnode 4 1\n"
                      "edge 0 1 2\nedge 0 2 3\nedge 1 3 4\n"));
}

TEST(Fingerprint, RandomGraphsAreDistinct) {
  // Not a collision proof, just a sanity sweep: 100 different generator
  // seeds must give 100 different fingerprints.
  std::vector<std::string> seen;
  for (std::uint64_t s = 1; s <= 100; ++s)
    seen.push_back(graph_fingerprint(random_graph(s, 30)).hex());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

// ------------------------------------------------------------------- json --

TEST(Json, ParsesScalarsAndNesting) {
  const JsonValue v = json_parse(
      R"({"s":"a\nb\u0041","n":-2.5e2,"i":7,"t":true,"f":false,"z":null,)"
      R"("arr":[1,[2]],"obj":{"k":"v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_string("s", ""), "a\nbA");
  EXPECT_EQ(v.get_number("n", 0), -250.0);
  EXPECT_EQ(v.get_number("i", 0), 7.0);
  EXPECT_TRUE(v.get_bool("t", false));
  EXPECT_FALSE(v.get_bool("f", true));
  EXPECT_TRUE(v.find("z")->is_null());
  ASSERT_TRUE(v.find("arr")->is_array());
  EXPECT_EQ(v.find("arr")->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(v.find("obj")->find("k")->as_string(), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.get_string("missing", "dflt"), "dflt");
}

TEST(Json, RoundTripsJsonObjectOutput) {
  JsonObject o;
  o.add("text", "line1\nline2\t\"quoted\"").add_int("n", -42).add("ok", true);
  const JsonValue v = json_parse(o.str());
  EXPECT_EQ(v.get_string("text", ""), "line1\nline2\t\"quoted\"");
  EXPECT_EQ(v.get_number("n", 0), -42.0);
  EXPECT_TRUE(v.get_bool("ok", false));
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "}", "{\"a\":}", "{\"a\":1,}", "[1,]", "{'a':1}",
        "{\"a\":1}x", "nul", "{\"a\":01e}", "\"unterminated",
        "{\"a\":\"\\q\"}", "{\"a\" 1}", "[1 2]", "--5"}) {
    EXPECT_THROW(json_parse(bad), std::invalid_argument) << bad;
  }
}

TEST(Json, WrongFieldTypeNamesTheField) {
  const JsonValue v = json_parse(R"({"algo":3})");
  try {
    v.get_string("algo", "");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("algo"), std::string::npos);
  }
}

// --------------------------------------------------------------- protocol --

TEST(Protocol, ParsesScheduleRequestWithDefaults) {
  const ServeRequest r = parse_request(
      R"({"graph":"tgs1 g 1 0\nnode 0 3\n","algo":"MCP"})");
  EXPECT_EQ(r.op, "schedule");
  EXPECT_EQ(r.algo, "MCP");
  EXPECT_EQ(r.procs, 0);
  EXPECT_TRUE(r.topology.empty());
  EXPECT_FALSE(r.want_schedule);
  EXPECT_TRUE(r.use_cache);
}

TEST(Protocol, ErrorCodesMatchFailureClass) {
  const auto code_of = [](const std::string& line) {
    try {
      parse_request(line);
    } catch (const ProtocolError& e) {
      return std::string(serve_error_code(e.code()));
    }
    return std::string("no_error");
  };
  EXPECT_EQ(code_of("garbage"), "bad_json");
  EXPECT_EQ(code_of("[1,2]"), "bad_json");
  EXPECT_EQ(code_of(R"({"op":"schedule","algo":"MCP"})"), "bad_request");
  EXPECT_EQ(code_of(R"({"op":"schedule","graph":"g"})"), "bad_request");
  EXPECT_EQ(code_of(R"({"op":"frobnicate"})"), "bad_request");
  EXPECT_EQ(code_of(R"({"graph":"g","algo":"MCP","procs":1.5})"),
            "bad_request");
  EXPECT_EQ(code_of(R"({"graph":"g","algo":"MCP","procs":2,"topology":"ring4"})"),
            "bad_request");
  EXPECT_EQ(code_of(R"({"graph":"g","algo":3})"), "bad_request");
}

TEST(Protocol, CacheKeySeparatesEveryDimension) {
  const std::string fp(32, 'a');
  const std::string base = make_cache_key(fp, "BNP", "MCP", "", 0);
  EXPECT_NE(base, make_cache_key(std::string(32, 'b'), "BNP", "MCP", "", 0));
  EXPECT_NE(base, make_cache_key(fp, "BNP", "ETF", "", 0));
  EXPECT_NE(base, make_cache_key(fp, "BNP", "MCP", "", 4));
  EXPECT_NE(base, make_cache_key(fp, "APN", "MCP", "ring4", 0));
  EXPECT_NE(make_cache_key(fp, "APN", "MH", "ring4", 0),
            make_cache_key(fp, "APN", "MH", "ring8", 0));
}

// ------------------------------------------------------------------ cache --

TEST(ScheduleCache, LruEvictionAndCounters) {
  ScheduleCache cache(2);
  CachedSchedule v;
  v.makespan = 1;
  cache.insert("a", v);
  cache.insert("b", v);

  CachedSchedule out;
  EXPECT_TRUE(cache.lookup("a", &out));  // refreshes a: LRU order is now b,a
  cache.insert("c", v);                  // evicts b
  EXPECT_FALSE(cache.lookup("b", &out));
  EXPECT_TRUE(cache.lookup("a", &out));
  EXPECT_TRUE(cache.lookup("c", &out));

  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 3u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.size, 2u);
  EXPECT_EQ(c.capacity, 2u);
}

TEST(ScheduleCache, ZeroCapacityDisables) {
  ScheduleCache cache(0);
  CachedSchedule v, out;
  cache.insert("a", v);
  EXPECT_FALSE(cache.lookup("a", &out));
  EXPECT_EQ(cache.counters().size, 0u);
}

TEST(ScheduleCache, StoresValueContent) {
  ScheduleCache cache(4);
  CachedSchedule v;
  v.makespan = 123;
  v.nsl = 1.5;
  v.procs_used = 7;
  v.num_messages = 9;
  v.schedule_text = "tgssched1 ...";
  cache.insert("k", v);
  CachedSchedule out;
  ASSERT_TRUE(cache.lookup("k", &out));
  EXPECT_EQ(out.makespan, 123);
  EXPECT_EQ(out.nsl, 1.5);
  EXPECT_EQ(out.procs_used, 7);
  EXPECT_EQ(out.num_messages, 9u);
  EXPECT_EQ(out.schedule_text, "tgssched1 ...");
}

// ------------------------------------------------------------------ stats --

TEST(LatencyHist, QuantilesAreFactorOfTwoBounds) {
  LatencyHist h;
  for (int i = 0; i < 90; ++i) h.record(100);    // bucket [64, 128)
  for (int i = 0; i < 10; ++i) h.record(10000);  // bucket [8192, 16384)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_micros(), 10000u);
  EXPECT_EQ(h.quantile_micros(0.5), 128u);
  EXPECT_EQ(h.quantile_micros(0.9), 128u);
  EXPECT_EQ(h.quantile_micros(1.0), 10000u);  // clamped to the true max
}

// --------------------------------------------------------- topology specs --

TEST(TopologySpec, ParsesAllFamilies) {
  EXPECT_EQ(Topology::from_spec("ring5").num_procs(), 5);
  EXPECT_EQ(Topology::from_spec("mesh2x3").num_procs(), 6);
  EXPECT_EQ(Topology::from_spec("hcube3").num_procs(), 8);
  EXPECT_EQ(Topology::from_spec("clique4").num_links(), 6);
  EXPECT_EQ(Topology::from_spec("star7").degree(0), 6);
  EXPECT_EQ(Topology::from_spec("rand6@0.5#3").num_procs(), 6);
  for (const char* bad : {"", "ring", "ringx", "mesh4", "mesh2x", "hcube99",
                          "torus4", "ring-3", "rand6", "rand6@2#1"}) {
    EXPECT_THROW(Topology::from_spec(bad), std::invalid_argument) << bad;
  }
}

// ----------------------------------------------------------------- server --

// An in-process daemon on a unique socket path, torn down on destruction.
class ServerFixture {
 public:
  explicit ServerFixture(ServeOptions opt = {}) {
    static std::atomic<int> counter{0};
    opt.socket_path = "/tmp/tgs_serve_test_" + std::to_string(getpid()) +
                      "_" + std::to_string(counter.fetch_add(1)) + ".sock";
    server = std::make_unique<Server>(opt);
    thread = std::thread([this] { server->serve_forever(); });
  }

  ~ServerFixture() {
    server->request_stop();
    if (thread.joinable()) thread.join();
  }

  UnixConn connect() const { return UnixConn::connect(server->socket_path()); }

  /// Strict request/reply round trip on a dedicated connection.
  JsonValue ask(const std::string& request) {
    UnixConn conn = connect();
    return ask_on(conn, request);
  }

  static JsonValue ask_on(UnixConn& conn, const std::string& request) {
    conn.write_line(request);
    std::string reply;
    EXPECT_TRUE(conn.read_line(&reply));
    return json_parse(reply);
  }

  std::unique_ptr<Server> server;
  std::thread thread;
};

std::string schedule_request(const TaskGraph& g, const std::string& algo,
                             const std::string& topology = "", int procs = -1,
                             bool want_schedule = false, bool cache = true) {
  JsonObject o;
  o.add("id", "t1").add("graph", graph_to_string(g)).add("algo", algo);
  if (!topology.empty()) o.add("topology", topology);
  if (procs >= 0) o.add_int("procs", procs);
  if (want_schedule) o.add("schedule", true);
  if (!cache) o.add("cache", false);
  return o.str();
}

TEST(Server, BnpResponseMatchesDirectRun) {
  ServerFixture f;
  const TaskGraph g = random_graph(11);
  for (const char* algo : {"MCP", "ETF", "DLS", "HLFET", "DCP"}) {
    const JsonValue r =
        f.ask(schedule_request(g, algo, "", -1, /*want_schedule=*/true));
    ASSERT_EQ(r.get_string("status", ""), "ok") << algo;
    const Schedule direct = make_scheduler(algo)->run(g, SchedOptions{});
    EXPECT_EQ(static_cast<Time>(r.get_number("makespan", -1)),
              direct.makespan())
        << algo;
    EXPECT_EQ(r.get_string("schedule", ""), schedule_to_string(direct))
        << algo;
    EXPECT_FALSE(r.get_bool("cached", true));
    EXPECT_EQ(r.get_string("id", ""), "t1");
  }
}

TEST(Server, BoundedProcsArePassedThrough) {
  ServerFixture f;
  const TaskGraph g = random_graph(23);
  SchedOptions opt;
  opt.num_procs = 2;
  const Schedule direct = make_scheduler("MCP")->run(g, opt);
  const JsonValue r = f.ask(schedule_request(g, "MCP", "", 2));
  EXPECT_EQ(static_cast<Time>(r.get_number("makespan", -1)),
            direct.makespan());
  EXPECT_LE(r.get_number("procs_used", 99), 2.0);
}

TEST(Server, ApnResponseMatchesDirectRun) {
  ServerFixture f;
  const TaskGraph g = random_graph(17, 40);
  for (const char* algo : {"MH", "BSA"}) {
    const JsonValue r = f.ask(
        schedule_request(g, algo, "ring4", -1, /*want_schedule=*/true));
    ASSERT_EQ(r.get_string("status", ""), "ok") << algo;
    const RoutingTable routes{Topology::from_spec("ring4")};
    NetSchedule direct = make_apn_scheduler(algo)->run(g, routes);
    EXPECT_EQ(static_cast<Time>(r.get_number("makespan", -1)),
              direct.makespan())
        << algo;
    EXPECT_EQ(static_cast<std::size_t>(r.get_number("messages", 0)),
              direct.messages().size())
        << algo;
    EXPECT_EQ(r.get_string("schedule", ""), schedule_to_string(direct.tasks()))
        << algo;
  }
}

TEST(Server, ScheduleTextRoundTripsThroughScheduleIo) {
  ServerFixture f;
  const TaskGraph g = small_graph();
  const JsonValue r =
      f.ask(schedule_request(g, "ETF", "", -1, /*want_schedule=*/true));
  const Schedule parsed = schedule_from_string(r.get_string("schedule", ""), g);
  EXPECT_EQ(parsed.makespan(), static_cast<Time>(r.get_number("makespan", -1)));
  EXPECT_TRUE(parsed.complete());
}

TEST(Server, SecondIdenticalSubmissionIsServedFromCache) {
  ServerFixture f;
  const TaskGraph g = random_graph(31);
  UnixConn conn = f.connect();

  const JsonValue first = ServerFixture::ask_on(conn, schedule_request(g, "MCP"));
  ASSERT_EQ(first.get_string("status", ""), "ok");
  EXPECT_FALSE(first.get_bool("cached", true));

  // A *textually different but content-identical* resubmission: relabel
  // the graph. The fingerprint sees through it.
  TaskGraph relabeled = graph_from_string(
      [&] {
        std::string t = graph_to_string(g);
        return t.replace(t.find(g.name()), g.name().size(), "other_name");
      }());
  const JsonValue second =
      ServerFixture::ask_on(conn, schedule_request(relabeled, "MCP"));
  ASSERT_EQ(second.get_string("status", ""), "ok");
  EXPECT_TRUE(second.get_bool("cached", false));
  EXPECT_EQ(second.get_number("makespan", -1), first.get_number("makespan", -2));

  // Different algorithm or different machine: both miss.
  EXPECT_FALSE(ServerFixture::ask_on(conn, schedule_request(g, "ETF"))
                   .get_bool("cached", true));
  EXPECT_FALSE(ServerFixture::ask_on(conn, schedule_request(g, "MCP", "", 2))
                   .get_bool("cached", true));

  const auto c = f.server->cache().counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 3u);
}

TEST(Server, CacheOptOutNeverTouchesTheCache) {
  ServerFixture f;
  const TaskGraph g = small_graph();
  for (int i = 0; i < 2; ++i) {
    const JsonValue r = f.ask(schedule_request(g, "MCP", "", -1, false,
                                               /*cache=*/false));
    EXPECT_FALSE(r.get_bool("cached", true));
  }
  const auto c = f.server->cache().counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, 0u);
  EXPECT_EQ(c.size, 0u);
}

TEST(Server, StatsOpReportsCountersAndHistograms) {
  ServerFixture f;
  const TaskGraph g = small_graph();
  UnixConn conn = f.connect();
  ServerFixture::ask_on(conn, schedule_request(g, "MCP"));
  ServerFixture::ask_on(conn, schedule_request(g, "MCP"));  // cache hit
  ServerFixture::ask_on(conn, "{\"op\":\"schedule\"}");     // bad_request

  const JsonValue s = ServerFixture::ask_on(conn, R"({"op":"stats"})");
  ASSERT_EQ(s.get_string("status", ""), "ok");
  EXPECT_EQ(s.get_number("requests_total", 0), 4.0);  // incl. this stats op
  EXPECT_EQ(s.get_number("requests_ok", 0), 3.0);
  EXPECT_EQ(s.get_number("requests_error", 0), 1.0);
  EXPECT_EQ(s.get_number("requests_rejected", 0), 0.0);
  EXPECT_EQ(s.get_number("cache_hits", 0), 1.0);
  EXPECT_EQ(s.get_number("cache_misses", 0), 1.0);
  EXPECT_EQ(s.get_number("queue_depth", 99), 0.0);
  const JsonValue* mcp = s.find("algos")->find("MCP");
  ASSERT_NE(mcp, nullptr);
  EXPECT_EQ(mcp->get_number("computed", 0), 1.0);
  EXPECT_EQ(mcp->get_number("cache_hits", 0), 1.0);
  EXPECT_GE(mcp->get_number("p50_us", -1), 0.0);
}

TEST(Server, MalformedRequestsGetStructuredErrors) {
  ServerFixture f;
  UnixConn conn = f.connect();
  const auto code_of = [&conn](const std::string& line) {
    const JsonValue r = ServerFixture::ask_on(conn, line);
    EXPECT_EQ(r.get_string("status", ""), "error");
    return r.get_string("code", "");
  };
  EXPECT_EQ(code_of("this is not json"), "bad_json");
  EXPECT_EQ(code_of(R"({"algo":"MCP"})"), "bad_request");
  EXPECT_EQ(code_of(R"({"graph":"tgs1 g 1 0\nnode 0 -3\n","algo":"MCP"})"),
            "bad_graph");
  EXPECT_EQ(code_of(R"({"graph":"not a graph","algo":"MCP"})"), "bad_graph");
  EXPECT_EQ(
      code_of(schedule_request(small_graph(), "NOPE")), "unknown_algo");
  // BNP names are not in the APN registry and vice versa.
  EXPECT_EQ(code_of(schedule_request(small_graph(), "MCP", "ring4")),
            "unknown_algo");
  EXPECT_EQ(code_of(schedule_request(small_graph(), "MH")), "unknown_algo");
  EXPECT_EQ(code_of(schedule_request(small_graph(), "MH", "blob9")),
            "bad_topology");
  // The connection survives every error above.
  const JsonValue pong = ServerFixture::ask_on(conn, R"({"op":"ping"})");
  EXPECT_EQ(pong.get_string("status", ""), "ok");
}

TEST(Server, UnknownAlgoMessageEnumeratesNamesAndParamGrammar) {
  ServerFixture f;
  const JsonValue r = f.ask(schedule_request(small_graph(), "NOPE"));
  ASSERT_EQ(r.get_string("code", ""), "unknown_algo");
  const std::string msg = r.get_string("message", "");
  for (const char* name : {"HLFET", "MCP", "EZ", "DCP"})
    EXPECT_NE(msg.find(name), std::string::npos) << msg;
  EXPECT_NE(msg.find("param:<metric>"), std::string::npos) << msg;
}

TEST(Server, ParamSpecSchedulesLikeItsNamedPoint) {
  ServerFixture f;
  const TaskGraph g = small_graph();
  // param:sl/static/append is the HLFET point; same bytes, and cached
  // under its canonical 4-segment name.
  const JsonValue r = f.ask(
      schedule_request(g, "param:sl/static/append", "", -1,
                       /*want_schedule=*/true));
  ASSERT_EQ(r.get_string("status", ""), "ok");
  const Schedule direct = make_scheduler("HLFET")->run(g, SchedOptions{});
  EXPECT_EQ(static_cast<Time>(r.get_number("makespan", -1)),
            direct.makespan());
  EXPECT_EQ(r.get_string("schedule", ""), schedule_to_string(direct));
  const JsonValue again = f.ask(
      schedule_request(g, "param:sl/static/append", "", -1,
                       /*want_schedule=*/true));
  EXPECT_TRUE(again.get_bool("cached", false));
}

TEST(Server, ZeroCapacityQueueRejectsWithBackpressureStatus) {
  ServeOptions opt;
  opt.queue_capacity = 0;  // every computed request must be rejected
  opt.cache_capacity = 0;  // and nothing can sneak in via the cache
  ServerFixture f(opt);
  const JsonValue r = f.ask(schedule_request(small_graph(), "MCP"));
  EXPECT_EQ(r.get_string("status", ""), "error");
  EXPECT_EQ(r.get_string("code", ""), "overloaded");
  EXPECT_GE(r.get_number("queue_capacity", -1), 0.0);
  ASSERT_NE(r.find("queue_depth"), nullptr);
}

TEST(Server, DlsApnAliasSharesTheCacheEntry) {
  ServerFixture f;
  const TaskGraph g = small_graph();
  UnixConn conn = f.connect();
  const JsonValue a =
      ServerFixture::ask_on(conn, schedule_request(g, "DLS-APN", "ring4"));
  ASSERT_EQ(a.get_string("status", ""), "ok");
  const JsonValue b =
      ServerFixture::ask_on(conn, schedule_request(g, "DLS", "ring4"));
  EXPECT_TRUE(b.get_bool("cached", false));
  EXPECT_EQ(a.get_number("makespan", -1), b.get_number("makespan", -2));
}

TEST(Server, ConcurrentMixedClientsMatchDirectRuns) {
  // The acceptance demo: concurrent connections running 3+ BNP and 2 APN
  // algorithms, every response byte-identical to a direct run.
  ServerFixture f;
  struct Case {
    const char* algo;
    const char* topology;  // nullptr = fully-connected
    std::uint64_t seed;
  };
  const std::vector<Case> cases = {
      {"MCP", nullptr, 101}, {"ETF", nullptr, 102}, {"DLS", nullptr, 103},
      {"HLFET", nullptr, 104}, {"MH", "mesh2x2", 105}, {"BSA", "ring4", 106},
      {"DLS", "ring4", 107}, {"MCP", nullptr, 101},  // duplicate of case 0
  };
  std::vector<std::string> got(cases.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    clients.emplace_back([&f, &cases, &got, i] {
      const TaskGraph g = random_graph(cases[i].seed, 50);
      UnixConn conn = f.connect();
      for (int rep = 0; rep < 3; ++rep) {
        const JsonValue r = ServerFixture::ask_on(
            conn, schedule_request(
                      g, cases[i].algo,
                      cases[i].topology ? cases[i].topology : ""));
        ASSERT_EQ(r.get_string("status", ""), "ok");
        got[i] = json_double(r.get_number("makespan", -1));
      }
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const TaskGraph g = random_graph(cases[i].seed, 50);
    Time expect;
    if (cases[i].topology == nullptr) {
      expect = make_scheduler(cases[i].algo)->run(g, SchedOptions{}).makespan();
    } else {
      const RoutingTable routes{Topology::from_spec(cases[i].topology)};
      expect = make_apn_scheduler(cases[i].algo)->run(g, routes).makespan();
    }
    EXPECT_EQ(got[i], json_double(static_cast<double>(expect)))
        << cases[i].algo << " seed " << cases[i].seed;
  }
  // 8 clients x 3 reps = 24 schedule requests over <= 8 distinct inputs:
  // at least the 16 strict repeats were cache hits.
  EXPECT_GE(f.server->cache().counters().hits, 16u);
}

TEST(Server, PipelinedRequestsAllComeBack) {
  // One connection, N requests written before any reply is read. Replies
  // may arrive in any order; ids must cover the full set.
  ServerFixture f;
  UnixConn conn = f.connect();
  constexpr int kN = 12;
  const TaskGraph g = random_graph(55);
  for (int i = 0; i < kN; ++i) {
    JsonObject o;
    o.add("id", "p" + std::to_string(i))
        .add("graph", graph_to_string(g))
        .add("algo", i % 2 == 0 ? "MCP" : "ETF")
        .add("cache", false);
    conn.write_line(o.str());
  }
  std::set<std::string> ids;
  for (int i = 0; i < kN; ++i) {
    std::string line;
    ASSERT_TRUE(conn.read_line(&line));
    const JsonValue r = json_parse(line);
    EXPECT_EQ(r.get_string("status", ""), "ok");
    ids.insert(r.get_string("id", ""));
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kN));
}

TEST(Server, ShutdownOpStopsTheDaemon) {
  auto f = std::make_unique<ServerFixture>();
  const std::string path = f->server->socket_path();
  const JsonValue ack = f->ask(R"({"op":"shutdown"})");
  EXPECT_EQ(ack.get_string("status", ""), "ok");
  EXPECT_EQ(ack.get_string("op", ""), "shutdown");
  f->thread.join();  // serve_forever returns without request_stop()
  f.reset();
  // Socket file is gone; connecting again must fail.
  EXPECT_THROW(UnixConn::connect(path), std::runtime_error);
}

}  // namespace
}  // namespace tgs
