// Priority attribute helpers shared by the list-scheduling algorithms
// (paper §3 "Assigning Priorities to Nodes").
#pragma once

#include <vector>

#include "tgs/graph/task_graph.h"
#include "tgs/util/types.h"

namespace tgs {

/// Nodes sorted by descending priority; ties broken by smaller node id.
std::vector<NodeId> order_by_descending(const std::vector<Time>& priority);

/// Nodes sorted by ascending key; ties broken by smaller node id.
std::vector<NodeId> order_by_ascending(const std::vector<Time>& key);

/// Index of the max-priority element of `candidates` (smallest id on ties).
NodeId argmax_priority(const std::vector<NodeId>& candidates,
                       const std::vector<Time>& priority);

}  // namespace tgs
