#include "tgs/list/priorities.h"

#include <algorithm>
#include <numeric>

namespace tgs {

std::vector<NodeId> order_by_descending(const std::vector<Time>& priority) {
  std::vector<NodeId> order(priority.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return priority[a] > priority[b];
  });
  return order;
}

std::vector<NodeId> order_by_ascending(const std::vector<Time>& key) {
  std::vector<NodeId> order(key.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](NodeId a, NodeId b) { return key[a] < key[b]; });
  return order;
}

NodeId argmax_priority(const std::vector<NodeId>& candidates,
                       const std::vector<Time>& priority) {
  NodeId best = kNoNode;
  for (NodeId n : candidates) {
    if (best == kNoNode || priority[n] > priority[best] ||
        (priority[n] == priority[best] && n < best)) {
      best = n;
    }
  }
  return best;
}

}  // namespace tgs
