#include "tgs/list/ready_list.h"

#include <algorithm>
#include <stdexcept>

namespace tgs {

ReadyList::ReadyList(const TaskGraph& g)
    : graph_(&g),
      unscheduled_parents_(g.num_nodes()),
      ready_flag_(g.num_nodes(), false),
      remaining_(g.num_nodes()) {
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    unscheduled_parents_[n] = g.num_parents(n);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (unscheduled_parents_[n] == 0) {
      ready_.push_back(n);
      ready_flag_[n] = true;
    }
  }
}

void ReadyList::mark_scheduled(NodeId n) {
  if (!ready_flag_[n]) throw std::logic_error("node not ready");
  ready_flag_[n] = false;
  // ready_ is sorted by id: binary search, not the O(width) linear find
  // (FFT-class graphs keep thousands of nodes ready at once).
  ready_.erase(std::lower_bound(ready_.begin(), ready_.end(), n));
  --remaining_;
  for (const Adj& c : graph_->children(n)) {
    if (--unscheduled_parents_[c.node] == 0) {
      auto it = std::lower_bound(ready_.begin(), ready_.end(), c.node);
      ready_.insert(it, c.node);
      ready_flag_[c.node] = true;
    }
  }
}

}  // namespace tgs
