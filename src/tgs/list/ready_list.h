// Ready list: the set of tasks whose parents have all been scheduled
// (paper §3 "Static List vs. Dynamic List"). The list itself is kept sorted
// by node id; selection policy (static priority, dynamic recomputation,
// (node, processor)-pair search) is the algorithm's business.
#pragma once

#include <vector>

#include "tgs/graph/task_graph.h"
#include "tgs/util/types.h"

namespace tgs {

class ReadyList {
 public:
  explicit ReadyList(const TaskGraph& g);

  bool empty() const { return ready_.empty(); }
  std::size_t size() const { return ready_.size(); }

  /// Currently ready tasks, ascending node id.
  const std::vector<NodeId>& ready() const { return ready_; }

  bool is_ready(NodeId n) const { return ready_flag_[n]; }

  /// Remove n from the ready set (it was scheduled) and admit any children
  /// that became ready. n must currently be ready.
  void mark_scheduled(NodeId n);

  /// Number of tasks not yet scheduled.
  std::size_t remaining() const { return remaining_; }

 private:
  const TaskGraph* graph_;
  std::vector<std::size_t> unscheduled_parents_;
  std::vector<NodeId> ready_;  // sorted by id
  std::vector<bool> ready_flag_;
  std::size_t remaining_;
};

}  // namespace tgs
