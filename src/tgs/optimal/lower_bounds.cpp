#include "tgs/optimal/lower_bounds.h"

#include <algorithm>

#include "tgs/graph/attributes.h"

namespace tgs {

LowerBounds::LowerBounds(const TaskGraph& g, int num_procs)
    : graph_(&g), num_procs_(num_procs), sl_nc_(static_levels(g)) {
  const Time cp = computation_critical_path_length(g);
  const Time load =
      (g.total_weight() + num_procs - 1) / static_cast<Time>(num_procs);
  static_bound_ = std::max(cp, load);
  est_.resize(g.num_nodes());
}

Time LowerBounds::evaluate(const Schedule& s,
                           std::vector<Time>& est_scratch) const {
  const TaskGraph& g = *graph_;
  std::vector<Time>& est = est_scratch;
  est.resize(g.num_nodes());

  // Critical-path bound with pinned placements.
  Time cp_bound = 0;
  for (NodeId u : g.topological_order()) {
    if (s.is_placed(u)) {
      est[u] = s.start(u);
    } else {
      Time t = 0;
      for (const Adj& par : g.parents(u)) {
        const Time avail = s.is_placed(par.node)
                               ? s.finish(par.node)
                               : est[par.node] + g.weight(par.node);
        t = std::max(t, avail);  // comm optimistically zero
      }
      est[u] = t;
    }
    cp_bound = std::max(cp_bound, est[u] + sl_nc_[u]);
  }

  // Load bound.
  Time finish_sum = 0;
  Time gap_total = 0;
  for (int p = 0; p < s.num_procs(); ++p) {
    const Time fin = s.timeline(p).end_time();
    finish_sum += fin;
    gap_total += fin - s.timeline(p).busy_time();
  }
  Cost remaining = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    if (!s.is_placed(u)) remaining += g.weight(u);
  const Time effective = finish_sum + std::max<Time>(0, remaining - gap_total);
  const Time load_bound =
      (effective + num_procs_ - 1) / static_cast<Time>(num_procs_);

  return std::max({cp_bound, load_bound, s.makespan()});
}

}  // namespace tgs
