#include "tgs/optimal/bb_scheduler.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "tgs/exec/thread_pool.h"
#include "tgs/graph/attributes.h"
#include "tgs/optimal/lower_bounds.h"
#include "tgs/util/timer.h"

namespace tgs {

namespace {

// The search splits into this many independent subtrees regardless of
// num_threads (determinism requires an identical search structure at every
// thread count); threads only drain the per-round subtree queue.
constexpr std::size_t kTargetFrontier = 64;

// Per-subtree node allowance of the first round, doubling each round up to
// the cap. Small early rounds circulate the incumbent quickly (the round
// barrier is the only point where subtrees learn of each other's
// schedules); large later rounds amortize the barrier.
constexpr std::uint64_t kInitialQuantum = 1024;
constexpr std::uint64_t kMaxQuantum = 65536;

// Global budget for the per-subtree duplicate-state tables.
constexpr std::size_t kSeenBudget = 3'000'000;

// 128-bit order-independent state hash: two independently mixed 64-bit
// accumulators XORed per placement. Two search paths that place the same
// tasks at the same (processor, start) converge to identical states, so the
// subtree needs exploring once; the 128 bits make an accidental collision
// (which would wrongly prune) vanishingly unlikely (~1e-18 at 1e10 states).
struct StateHash {
  std::uint64_t lo = 0, hi = 0;

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
  }

  void toggle(NodeId n, ProcId p, Time start) {
    // Each field goes through the full-avalanche finalizer on its own
    // (with a distinct salt) before the three are combined: a bit-packed
    // (n << 48) ^ (p << 40) ^ start key would let start times >= 2^40
    // bleed into the processor/node bits and collapse distinct
    // placements onto one key.
    const std::uint64_t key =
        mix(static_cast<std::uint64_t>(n) + 0x9E3779B97F4A7C15ULL) ^
        mix(static_cast<std::uint64_t>(p) + 0xBF58476D1CE4E5B9ULL) ^
        mix(static_cast<std::uint64_t>(start) + 0x94D049BB133111EBULL);
    lo ^= mix(key ^ 0x9E3779B97F4A7C15ULL);
    hi ^= mix(key ^ 0xD1B54A32D192ED03ULL);
  }

  friend bool operator==(const StateHash&, const StateHash&) = default;
};

struct StateHashHasher {
  std::size_t operator()(const StateHash& h) const {
    return static_cast<std::size_t>(h.lo ^ (h.hi * 0x9E3779B97F4A7C15ULL));
  }
};

/// A partial schedule as a replayable decision list.
struct Prefix {
  std::vector<std::pair<NodeId, ProcId>> moves;
};

/// Search-wide configuration; immutable during the subtree rounds except
/// for `stop`, which only the wall-clock limit (documented as
/// non-reproducible) ever sets.
struct SearchCfg {
  const TaskGraph* g = nullptr;
  const LowerBounds* bounds = nullptr;
  int num_procs = 0;
  bool disable_bounds = false;
  double time_limit = 0.0;
  Timer* timer = nullptr;
  std::atomic<bool>* stop = nullptr;
};

/// One frontier subtree: a resumable depth-first search below a fixed
/// prefix. run_round() is a pure function of (state so far, snapshot
/// bound, budget slice) -- it reads no shared mutable data -- which is
/// what makes the whole search reproducible at any thread count.
class SubtreeSearch {
 public:
  SubtreeSearch(const SearchCfg& cfg, const Prefix& prefix,
                std::size_t seen_cap)
      : cfg_(&cfg),
        sched_(*cfg.g, cfg.num_procs),
        order_key_(&cfg.bounds->static_levels_nocomm()),
        seen_cap_(seen_cap) {
    const TaskGraph& g = *cfg_->g;
    indeg_.resize(g.num_nodes());
    for (NodeId n = 0; n < g.num_nodes(); ++n) indeg_[n] = g.num_parents(n);
    for (NodeId n = 0; n < g.num_nodes(); ++n)
      if (indeg_[n] == 0) ready_.push_back(n);
    for (const auto& [n, p] : prefix.moves) apply(n, p);
  }

  /// Explore until the subtree is exhausted or `budget` nodes were
  /// expanded this round, pruning against the immutable `snapshot` bound
  /// (tightened only by this subtree's own discoveries).
  void run_round(Time snapshot, std::uint64_t budget) {
    snapshot_ = snapshot;
    std::uint64_t spent = 0;
    if (!started_) {
      if (spent >= budget) return;
      started_ = true;
      ++spent;
      if (expandable()) push_frame(kNoNode);
    }
    while (!stack_.empty()) {
      if (cfg_->stop->load(std::memory_order_relaxed)) return;
      Frame& f = stack_.back();
      if (f.next >= f.branches.size()) {
        const NodeId via = f.entered_via;
        stack_.pop_back();
        if (!stack_.empty()) undo(via);
        continue;
      }
      if (spent >= budget) return;  // paused; the next round resumes here
      const Branch br = f.branches[f.next++];
      apply(br.node, br.proc);
      ++spent;
      if (expandable())
        push_frame(br.node);
      else
        undo(br.node);
    }
    exhausted_ = true;
  }

  bool exhausted() const { return exhausted_; }
  std::uint64_t nodes() const { return nodes_; }
  Time best_len() const { return best_len_; }
  const std::optional<Schedule>& best_sched() const { return best_sched_; }

  // Probe accessors for the frontier-expansion phase.
  const std::vector<NodeId>& ready() const { return ready_; }
  const Schedule& schedule() const { return sched_; }

  /// Ready tasks by descending comm-free static level (ties: smaller id)
  /// -- the branching order of both the frontier split and the DFS.
  std::vector<NodeId> ready_by_priority() const {
    std::vector<NodeId> tasks(ready_.begin(), ready_.end());
    std::sort(tasks.begin(), tasks.end(), [this](NodeId a, NodeId b) {
      const Time ka = (*order_key_)[a], kb = (*order_key_)[b];
      return ka != kb ? ka > kb : a < b;
    });
    return tasks;
  }

 private:
  struct Branch {
    NodeId node;
    ProcId proc;
    Time start;  // sort key only; apply() recomputes it
  };
  struct Frame {
    std::vector<Branch> branches;
    std::size_t next = 0;
    NodeId entered_via = kNoNode;  // move undone when the frame pops
  };

  /// Effective pruning bound: the round snapshot or anything better this
  /// subtree has already found itself.
  Time bound() const { return std::min(snapshot_, best_len_); }

  void apply(NodeId n, ProcId p) {
    const Time ready_t = sched_.data_ready(n, p);
    const Time start = sched_.earliest_start_on(p, ready_t, cfg_->g->weight(n),
                                                /*insertion=*/true);
    sched_.place(n, p, start);
    hash_.toggle(n, p, start);
    ready_.erase(std::find(ready_.begin(), ready_.end(), n));
    for (const Adj& c : cfg_->g->children(n))
      if (--indeg_[c.node] == 0) ready_.push_back(c.node);
  }

  void undo(NodeId n) {
    for (const Adj& c : cfg_->g->children(n)) {
      if (indeg_[c.node] == 0)
        ready_.erase(std::find(ready_.begin(), ready_.end(), c.node));
      ++indeg_[c.node];
    }
    ready_.push_back(n);
    hash_.toggle(n, sched_.proc(n), sched_.start(n));
    sched_.unplace(n);
  }

  /// Count the current state as expanded; decide whether to branch below
  /// it. Complete schedules are offered to the subtree-local incumbent.
  bool expandable() {
    ++nodes_;
    if ((nodes_ & 0x3FF) == 0 && cfg_->time_limit > 0.0 &&
        cfg_->timer->seconds() > cfg_->time_limit)
      cfg_->stop->store(true, std::memory_order_relaxed);

    if (ready_.empty()) {
      const Time len = sched_.makespan();
      if (len < bound()) {
        best_len_ = len;
        best_sched_ = sched_;
      }
      return false;
    }
    if (!cfg_->disable_bounds) {
      if (cfg_->bounds->evaluate(sched_, lb_scratch_) >= bound()) return false;
      // Duplicate-state elimination: different placement orders reaching
      // the same (task, proc, start) map have identical futures. Safe to
      // skip: the first visit ran under an equal-or-worse incumbent and
      // therefore explored an equal-or-larger subtree.
      if (seen_cap_ > 0 && sched_.placed_count() > 0) {
        if (seen_.count(hash_)) return false;
        if (seen_.size() < seen_cap_) seen_.insert(hash_);
      }
    }
    return true;
  }

  /// Branch list of the current state: every (ready task, processor) pair,
  /// tasks by descending level, processors by ascending start (stable),
  /// empty-processor symmetry collapsed.
  void push_frame(NodeId via) {
    Frame f;
    f.entered_via = via;
    for (NodeId n : ready_by_priority()) {
      const std::size_t first = f.branches.size();
      bool empty_seen = false;
      for (ProcId p = 0; p < cfg_->num_procs; ++p) {
        if (sched_.timeline(p).empty()) {
          if (empty_seen) continue;  // processor symmetry
          empty_seen = true;
        }
        const Time ready_t = sched_.data_ready(n, p);
        const Time start = sched_.earliest_start_on(
            p, ready_t, cfg_->g->weight(n), /*insertion=*/true);
        f.branches.push_back({n, p, start});
      }
      std::stable_sort(
          f.branches.begin() + static_cast<std::ptrdiff_t>(first),
          f.branches.end(),
          [](const Branch& a, const Branch& b) { return a.start < b.start; });
    }
    stack_.push_back(std::move(f));
  }

  const SearchCfg* cfg_;
  Schedule sched_;
  std::vector<std::size_t> indeg_;
  std::vector<NodeId> ready_;
  const std::vector<Time>* order_key_;
  StateHash hash_;
  std::size_t seen_cap_;
  std::unordered_set<StateHash, StateHashHasher> seen_;
  std::vector<Time> lb_scratch_;  // per-subtree: evaluate() is not
                                  // thread-safe on a shared buffer

  std::vector<Frame> stack_;
  bool started_ = false;
  bool exhausted_ = false;
  std::uint64_t nodes_ = 0;
  Time snapshot_ = kTimeInf;
  Time best_len_ = kTimeInf;
  std::optional<Schedule> best_sched_;
};

}  // namespace

BBResult branch_and_bound(const TaskGraph& g, const BBOptions& opt) {
  BBResult result;
  Timer total;
  if (g.num_nodes() == 0) {
    result.proven_optimal = true;
    return result;
  }

  const int nprocs = std::max(1, opt.num_procs);
  LowerBounds bounds(g, nprocs);

  std::atomic<bool> stop{false};
  SearchCfg cfg;
  cfg.g = &g;
  cfg.bounds = &bounds;
  cfg.num_procs = nprocs;
  cfg.disable_bounds = opt.disable_bounds;
  cfg.time_limit = opt.time_limit_seconds;
  cfg.timer = &total;
  cfg.stop = &stop;

  // Global incumbent, written only between rounds (single-threaded).
  // A bare upper bound admits equal-length schedules (we have none yet);
  // a seeded schedule admits strictly better ones only.
  Time incumbent = kTimeInf;
  std::optional<Schedule> best_sched;
  if (opt.initial_upper_bound > 0) incumbent = opt.initial_upper_bound + 1;
  if (opt.initial_schedule) {
    best_sched = *opt.initial_schedule;
    incumbent = std::min(incumbent, best_sched->makespan());
  }

  // Breadth-first frontier split (FIFO), identical at every thread count.
  // Each expansion branches the single most critical ready task over the
  // processors, so sibling subtrees place the same task differently and
  // stay DISJOINT in state space (overlapping subtrees would re-explore
  // shared states: the duplicate tables are per-subtree). Complete
  // prefixes feed the incumbent.
  std::vector<Prefix> frontier{{}};
  std::size_t head = 0;
  while (head < frontier.size() &&
         frontier.size() - head < kTargetFrontier) {
    const Prefix pre = std::move(frontier[head++]);
    const SubtreeSearch probe(cfg, pre, /*seen_cap=*/0);
    if (probe.ready().empty()) {
      const Time len = probe.schedule().makespan();
      if (len < incumbent) {
        incumbent = len;
        best_sched = probe.schedule();
      }
      continue;
    }
    const NodeId n = probe.ready_by_priority().front();
    bool empty_seen = false;
    for (ProcId p = 0; p < nprocs; ++p) {
      if (probe.schedule().timeline(p).empty()) {
        if (empty_seen) continue;  // processor symmetry
        empty_seen = true;
      }
      Prefix child = pre;
      child.moves.emplace_back(n, p);
      frontier.push_back(std::move(child));
    }
  }
  frontier.erase(frontier.begin(),
                 frontier.begin() + static_cast<std::ptrdiff_t>(head));

  const std::size_t seen_cap = std::max<std::size_t>(
      16384, kSeenBudget / std::max<std::size_t>(1, frontier.size()));
  std::vector<std::unique_ptr<SubtreeSearch>> subtrees;
  subtrees.reserve(frontier.size());
  for (const Prefix& pre : frontier)
    subtrees.push_back(std::make_unique<SubtreeSearch>(cfg, pre, seen_cap));

  int threads = opt.num_threads > 0
                    ? opt.num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, threads);

  // Round loop: ration the node-budget ledger, run every active subtree
  // against the incumbent snapshot, then merge in frontier-index order.
  // The worker pool is created lazily (multi-threaded searches only) and
  // reused across rounds; wait_idle() is the round barrier.
  std::unique_ptr<ThreadPool> pool;
  std::uint64_t spent = 0;
  std::uint64_t quantum = kInitialQuantum;
  bool budget_exhausted = false;
  std::vector<std::size_t> active;
  for (;;) {
    active.clear();
    for (std::size_t i = 0; i < subtrees.size(); ++i)
      if (!subtrees[i]->exhausted()) active.push_back(i);
    if (active.empty() || stop.load(std::memory_order_relaxed)) break;

    std::uint64_t total_alloc =
        static_cast<std::uint64_t>(active.size()) * quantum;
    if (opt.max_nodes > 0) {
      const std::uint64_t remaining =
          opt.max_nodes > spent ? opt.max_nodes - spent : 0;
      if (remaining == 0) {
        budget_exhausted = true;
        break;
      }
      total_alloc = std::min(total_alloc, remaining);
    }
    // Ledger slices: as even as integer division allows, the remainder to
    // the lowest frontier indices -- a deterministic function of
    // (round, spent), never of thread interleaving.
    const std::uint64_t base = total_alloc / active.size();
    const std::uint64_t extra = total_alloc % active.size();
    std::vector<std::uint64_t> alloc(active.size());
    for (std::size_t j = 0; j < active.size(); ++j)
      alloc[j] = base + (j < extra ? 1 : 0);

    const Time snapshot = incumbent;
    std::atomic<std::size_t> cursor{0};
    const auto worker = [&]() {
      for (;;) {
        const std::size_t j =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (j >= active.size()) return;
        if (alloc[j] == 0) continue;
        subtrees[active[j]]->run_round(snapshot, alloc[j]);
      }
    };
    const int width =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(threads), active.size()));
    if (width <= 1) {
      worker();
    } else {
      if (!pool) pool = std::make_unique<ThreadPool>(threads);
      for (int t = 0; t < width; ++t) pool->submit(worker);
      pool->wait_idle();
    }

    // Barrier merge, frontier-index order: strict improvement only, so
    // ties resolve to the lowest index deterministically.
    spent = 0;
    for (const auto& s : subtrees) spent += s->nodes();
    for (const std::size_t i : active) {
      if (subtrees[i]->best_sched() && subtrees[i]->best_len() < incumbent) {
        incumbent = subtrees[i]->best_len();
        best_sched = *subtrees[i]->best_sched();
      }
    }
    quantum = std::min(quantum * 2, kMaxQuantum);
  }

  const bool all_exhausted =
      std::all_of(subtrees.begin(), subtrees.end(),
                  [](const auto& s) { return s->exhausted(); });
  result.nodes_expanded = spent;
  result.seconds = total.seconds();
  result.proven_optimal = all_exhausted && !budget_exhausted &&
                          !stop.load(std::memory_order_relaxed);
  if (best_sched) {
    result.length = best_sched->makespan();
    result.schedule = std::move(best_sched);
  } else if (opt.initial_upper_bound > 0) {
    // The bound pruned everything (or the budget ran dry first): the
    // caller's own bound is the only honest length -- never 0 for a
    // non-empty graph with a supplied incumbent.
    result.length = opt.initial_upper_bound;
  }
  return result;
}

}  // namespace tgs
