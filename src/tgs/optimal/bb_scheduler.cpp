#include "tgs/optimal/bb_scheduler.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "tgs/graph/attributes.h"
#include "tgs/optimal/lower_bounds.h"
#include "tgs/util/timer.h"

namespace tgs {

namespace {

// 128-bit order-independent state hash: two independently mixed 64-bit
// accumulators XORed per placement. Two search paths that place the same
// tasks at the same (processor, start) converge to identical states, so the
// subtree needs exploring once; the 128 bits make an accidental collision
// (which would wrongly prune) vanishingly unlikely (~1e-18 at 1e10 states).
struct StateHash {
  std::uint64_t lo = 0, hi = 0;

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
  }

  void toggle(NodeId n, ProcId p, Time start) {
    const std::uint64_t key = (static_cast<std::uint64_t>(n) << 48) ^
                              (static_cast<std::uint64_t>(p) << 40) ^
                              static_cast<std::uint64_t>(start);
    lo ^= mix(key ^ 0x9E3779B97F4A7C15ULL);
    hi ^= mix(key ^ 0xD1B54A32D192ED03ULL);
  }

  friend bool operator==(const StateHash&, const StateHash&) = default;
};

struct StateHashHasher {
  std::size_t operator()(const StateHash& h) const {
    return static_cast<std::size_t>(h.lo ^ (h.hi * 0x9E3779B97F4A7C15ULL));
  }
};

/// A partial schedule as a replayable decision list.
struct Prefix {
  std::vector<std::pair<NodeId, ProcId>> moves;
};

/// Shared search context.
struct SearchCtx {
  const TaskGraph* g;
  const LowerBounds* bounds;
  int num_procs;
  bool disable_bounds;

  std::atomic<Time> best_len;
  std::mutex best_mutex;
  std::optional<Schedule> best_sched;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> expanded{0};
  Timer timer;
  double time_limit = 0.0;
  std::uint64_t max_nodes = 0;

  void offer(const Schedule& s) {
    const Time len = s.makespan();
    Time cur = best_len.load(std::memory_order_relaxed);
    while (len < cur &&
           !best_len.compare_exchange_weak(cur, len, std::memory_order_relaxed)) {
    }
    if (len <= best_len.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(best_mutex);
      if (!best_sched || s.makespan() < best_sched->makespan())
        best_sched = s;
    }
  }

  bool timed_out() {
    if (time_limit <= 0.0) return false;
    if (timer.seconds() > time_limit) {
      stop.store(true, std::memory_order_relaxed);
      return true;
    }
    return stop.load(std::memory_order_relaxed);
  }
};

/// Per-worker DFS state with O(1) undo.
class Dfs {
 public:
  Dfs(SearchCtx& ctx, std::size_t seen_cap = 0)
      : ctx_(ctx), sched_(*ctx.g, ctx.num_procs), seen_cap_(seen_cap) {
    const TaskGraph& g = *ctx_.g;
    indeg_.resize(g.num_nodes());
    for (NodeId n = 0; n < g.num_nodes(); ++n) indeg_[n] = g.num_parents(n);
    for (NodeId n = 0; n < g.num_nodes(); ++n)
      if (indeg_[n] == 0) ready_.push_back(n);
    // Order ready candidates by descending comm-free level for branching.
    order_key_ = &ctx.bounds->static_levels_nocomm();
  }

  void replay(const Prefix& prefix) {
    for (const auto& [n, p] : prefix.moves) apply(n, p);
  }

  void apply(NodeId n, ProcId p) {
    const Time ready_t = sched_.data_ready(n, p);
    const Time start =
        sched_.earliest_start_on(p, ready_t, ctx_.g->weight(n), /*insertion=*/true);
    sched_.place(n, p, start);
    hash_.toggle(n, p, start);
    ready_.erase(std::find(ready_.begin(), ready_.end(), n));
    for (const Adj& c : ctx_.g->children(n))
      if (--indeg_[c.node] == 0) ready_.push_back(c.node);
  }

  void undo(NodeId n) {
    for (const Adj& c : ctx_.g->children(n)) {
      if (indeg_[c.node] == 0)
        ready_.erase(std::find(ready_.begin(), ready_.end(), c.node));
      ++indeg_[c.node];
    }
    ready_.push_back(n);
    hash_.toggle(n, sched_.proc(n), sched_.start(n));
    sched_.unplace(n);
  }

  void search() {
    const std::uint64_t n = ctx_.expanded.fetch_add(1, std::memory_order_relaxed);
    if (ctx_.max_nodes > 0 && n >= ctx_.max_nodes) {
      ctx_.stop.store(true, std::memory_order_relaxed);
      return;
    }
    if ((n & 0x3FF) == 0 && ctx_.timed_out()) return;

    if (ready_.empty()) {
      ctx_.offer(sched_);
      return;
    }
    if (!ctx_.disable_bounds) {
      const Time lb = ctx_.bounds->evaluate(sched_);
      if (lb >= ctx_.best_len.load(std::memory_order_relaxed)) return;
      // Duplicate-state elimination: different placement orders reaching
      // the same (task, proc, start) map have identical futures. Safe to
      // skip: the first visit ran under an equal-or-worse incumbent and
      // therefore explored an equal-or-larger subtree.
      if (seen_cap_ > 0 && sched_.placed_count() > 0) {
        if (seen_.count(hash_)) return;
        if (seen_.size() < seen_cap_) seen_.insert(hash_);
      }
    }

    // Candidate tasks: all ready, by descending comm-free static level
    // (ties: smaller id). Candidate processors per task: all non-empty plus
    // the first empty one, ordered by the start time the task would get.
    std::vector<NodeId> tasks(ready_.begin(), ready_.end());
    std::sort(tasks.begin(), tasks.end(), [this](NodeId a, NodeId b) {
      const Time ka = (*order_key_)[a], kb = (*order_key_)[b];
      return ka != kb ? ka > kb : a < b;
    });

    for (NodeId n : tasks) {
      struct Branch {
        ProcId p;
        Time start;
      };
      std::vector<Branch> branches;
      bool empty_seen = false;
      for (ProcId p = 0; p < ctx_.num_procs; ++p) {
        const bool is_empty = sched_.timeline(p).empty();
        if (is_empty) {
          if (empty_seen) continue;  // processor symmetry
          empty_seen = true;
        }
        const Time ready_t = sched_.data_ready(n, p);
        const Time start = sched_.earliest_start_on(p, ready_t, ctx_.g->weight(n),
                                                    /*insertion=*/true);
        branches.push_back({p, start});
      }
      std::stable_sort(branches.begin(), branches.end(),
                       [](const Branch& a, const Branch& b) { return a.start < b.start; });
      for (const Branch& br : branches) {
        apply(n, br.p);
        search();
        undo(n);
        if (ctx_.stop.load(std::memory_order_relaxed)) return;
      }
    }
  }

  const std::vector<NodeId>& ready() const { return ready_; }
  Schedule& schedule() { return sched_; }

 private:
  SearchCtx& ctx_;
  Schedule sched_;
  std::vector<std::size_t> indeg_;
  std::vector<NodeId> ready_;
  const std::vector<Time>* order_key_;
  StateHash hash_;
  std::size_t seen_cap_;
  std::unordered_set<StateHash, StateHashHasher> seen_;
};

}  // namespace

BBResult branch_and_bound(const TaskGraph& g, const BBOptions& opt) {
  BBResult result;
  Timer total;
  if (g.num_nodes() == 0) {
    result.proven_optimal = true;
    return result;
  }

  const int nprocs = std::max(1, opt.num_procs);
  LowerBounds bounds(g, nprocs);

  SearchCtx ctx;
  ctx.g = &g;
  ctx.bounds = &bounds;
  ctx.num_procs = nprocs;
  ctx.disable_bounds = opt.disable_bounds;
  ctx.best_len.store(opt.initial_upper_bound > 0 ? opt.initial_upper_bound + 1
                                                 : kTimeInf);
  ctx.time_limit = opt.time_limit_seconds;
  ctx.max_nodes = opt.max_nodes;

  // Frontier expansion (breadth-first) until enough independent subtrees
  // exist for the workers.
  int threads = opt.num_threads > 0
                    ? opt.num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, threads);
  const std::size_t target_frontier =
      threads == 1 ? 1 : static_cast<std::size_t>(threads) * 16;

  std::vector<Prefix> frontier{{}};
  const auto& sl_nc = bounds.static_levels_nocomm();
  while (frontier.size() < target_frontier) {
    // Expand the shallowest prefix (they all have equal depth here).
    std::vector<Prefix> next;
    bool expanded_any = false;
    for (const Prefix& pre : frontier) {
      Dfs probe(ctx);
      probe.replay(pre);
      if (probe.ready().empty()) {
        ctx.offer(probe.schedule());
        continue;
      }
      // Branch on the single most critical ready task (keeps frontier
      // growth geometric in procs only).
      std::vector<NodeId> tasks(probe.ready().begin(), probe.ready().end());
      std::sort(tasks.begin(), tasks.end(), [&](NodeId a, NodeId b) {
        return sl_nc[a] != sl_nc[b] ? sl_nc[a] > sl_nc[b] : a < b;
      });
      const NodeId n = tasks.front();
      bool empty_seen = false;
      for (ProcId p = 0; p < nprocs; ++p) {
        const bool is_empty = probe.schedule().timeline(p).empty();
        if (is_empty) {
          if (empty_seen) continue;
          empty_seen = true;
        }
        Prefix child = pre;
        child.moves.emplace_back(n, p);
        next.push_back(std::move(child));
        expanded_any = true;
      }
    }
    if (!expanded_any) break;
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  // Workers drain the frontier. Each worker keeps a bounded duplicate
  // table; the per-worker cap splits a ~3M-entry global budget.
  const std::size_t seen_cap =
      std::max<std::size_t>(65536, 3'000'000 / static_cast<std::size_t>(threads));
  std::atomic<std::size_t> cursor{0};
  auto worker = [&]() {
    while (!ctx.stop.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= frontier.size()) return;
      Dfs dfs(ctx, seen_cap);
      dfs.replay(frontier[i]);
      dfs.search();
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  result.nodes_expanded = ctx.expanded.load();
  result.seconds = total.seconds();
  result.proven_optimal = !ctx.stop.load();
  {
    std::lock_guard<std::mutex> lock(ctx.best_mutex);
    if (ctx.best_sched) {
      result.length = ctx.best_sched->makespan();
      result.schedule = std::move(ctx.best_sched);
    }
  }
  return result;
}

}  // namespace tgs
