// Lower bounds for the branch-and-bound optimal scheduler.
//
// Both bounds are valid for the fully-connected contention-free machine
// with p processors and task placement by insertion:
//
//  * Critical-path bound: communication can at best be zeroed, so for any
//    (partially scheduled) state, every task u must still be followed by
//    its comm-free static level sl_nc(u); placed tasks are pinned at their
//    start times, unscheduled ones at an optimistic comm-free earliest
//    start.
//  * Load bound: every unit of unscheduled work either fills an existing
//    idle gap or extends some processor's finish time, so
//    sum(final finishes) >= sum(current finishes)
//                           + max(0, remaining work - current idle gaps),
//    and the makespan is at least that sum divided by p.
#pragma once

#include <vector>

#include "tgs/graph/task_graph.h"
#include "tgs/sched/schedule.h"

namespace tgs {

/// Reusable scratch + precomputation for bound evaluation on one graph.
class LowerBounds {
 public:
  explicit LowerBounds(const TaskGraph& g, int num_procs);

  /// Lower bound on the completion of any extension of `s`. `est_scratch`
  /// is caller-owned working memory (resized on demand): concurrent
  /// evaluations are safe as long as each thread passes its own buffer.
  Time evaluate(const Schedule& s, std::vector<Time>& est_scratch) const;

  /// Single-threaded convenience overload using a member scratch buffer.
  Time evaluate(const Schedule& s) const { return evaluate(s, est_); }

  /// Static (empty-schedule) bound: max(comp CP, ceil(work / p)).
  Time static_bound() const { return static_bound_; }

  const std::vector<Time>& static_levels_nocomm() const { return sl_nc_; }

 private:
  const TaskGraph* graph_;
  int num_procs_;
  std::vector<Time> sl_nc_;
  Time static_bound_;
  mutable std::vector<Time> est_;  // scratch
};

}  // namespace tgs
