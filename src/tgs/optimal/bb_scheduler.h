// Deterministic parallel branch-and-bound optimal scheduler.
//
// The paper's RGBOS suite (§5.2) consists of random graphs "for which we
// have obtained optimal solutions using a branch-and-bound algorithm"
// (a parallel A*, ref [23]). This module plays that role: depth-first
// branch and bound over (ready task -> processor) decisions with
// earliest-insertion placement.
//
// Completeness: with constant communication costs on a fully-connected
// contention-free machine, reconstructing any schedule S* in start-time
// order with the same processor mapping and earliest-insertion starts
// never delays any task (arrivals are monotone in parent finish times), so
// the searched space of "insertion-greedy" schedules contains an optimum.
//
// Pruning:
//  * lower bounds from optimal/lower_bounds.h against the incumbent,
//  * processor symmetry: among empty processors only the lowest-numbered
//    one is branched,
//  * child ordering: tasks by descending comm-free static level, then
//    processors by ascending start time -- promising branches first, which
//    tightens the incumbent early.
//
// Parallelism and determinism (round-synchronous search): the tree is
// split breadth-first into a FIXED number of independent subtrees --
// independent of num_threads -- which are then explored in rounds. Within
// a round every subtree prunes against an immutable incumbent snapshot
// taken at the round start (plus its own local discoveries); there are no
// live shared-bound reads. At the round barrier the per-subtree outcomes
// (best schedule, node count, budget spend) are merged in frontier-index
// order, the incumbent tightens, and unexhausted subtrees continue with
// the next slice of a deterministic node-budget ledger. Each subtree's
// round is a pure function of (prefix, snapshot bound, budget slice), so
// schedule, length, proven_optimal and nodes_expanded are byte-identical
// at num_threads == 1 and num_threads == N. The only escape hatch is
// time_limit_seconds > 0, which by nature cuts the search at a
// wall-clock-dependent point.
#pragma once

#include <cstdint>
#include <optional>

#include "tgs/graph/task_graph.h"
#include "tgs/sched/schedule.h"

namespace tgs {

struct BBOptions {
  int num_procs = 2;
  /// Wall-clock budget; expiry returns the best schedule found so far with
  /// proven_optimal = false. <= 0 means no limit. A wall-clock cut-off is
  /// inherently not reproducible; use max_nodes for deterministic budgets.
  double time_limit_seconds = 10.0;
  /// Deterministic budget: stop after this many node expansions (0 = no
  /// limit). The budget is rationed to the search subtrees through a
  /// per-round ledger, so equal budgets reproduce the same search -- same
  /// schedule, length and nodes_expanded -- on any machine and at any
  /// num_threads.
  std::uint64_t max_nodes = 0;
  /// Worker threads draining the subtree rounds; 0 =
  /// std::thread::hardware_concurrency(). Execution width only: the result
  /// is byte-identical for every value (see the round model above).
  int num_threads = 0;
  /// Optional incumbent length (e.g. the best heuristic length) to prune
  /// against from the start. When the bound prunes the entire tree, the
  /// result reports this value as `length` (never 0 for a non-empty
  /// graph); supply `initial_schedule` as well to always get a schedule
  /// back.
  Time initial_upper_bound = 0;  // 0 = none
  /// Optional incumbent schedule (e.g. the best heuristic's). Seeds the
  /// search, guaranteeing result.schedule is present and never worse than
  /// this schedule, even under a tiny node budget.
  std::optional<Schedule> initial_schedule;
  /// Disable lower-bound pruning (exhaustive enumeration; tests only).
  bool disable_bounds = false;
};

struct BBResult {
  /// Best schedule found. Empty only for empty graphs, for budgets too
  /// small to complete any schedule, or when initial_upper_bound pruned
  /// the whole tree -- never empty when initial_schedule was supplied.
  std::optional<Schedule> schedule;
  /// schedule->makespan() when a schedule is present; otherwise
  /// initial_upper_bound (the proven "no better than" value) when one was
  /// given, else 0.
  Time length = 0;
  bool proven_optimal = false;
  std::uint64_t nodes_expanded = 0;
  double seconds = 0.0;
};

/// Find a provably optimal schedule of `g` on opt.num_procs processors (or
/// the best found within the time/node budget).
BBResult branch_and_bound(const TaskGraph& g, const BBOptions& opt);

}  // namespace tgs
