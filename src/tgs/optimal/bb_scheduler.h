// Parallel branch-and-bound optimal scheduler.
//
// The paper's RGBOS suite (§5.2) consists of random graphs "for which we
// have obtained optimal solutions using a branch-and-bound algorithm"
// (a parallel A*, ref [23]). This module plays that role: depth-first
// branch and bound over (ready task -> processor) decisions with
// earliest-insertion placement.
//
// Completeness: with constant communication costs on a fully-connected
// contention-free machine, reconstructing any schedule S* in start-time
// order with the same processor mapping and earliest-insertion starts
// never delays any task (arrivals are monotone in parent finish times), so
// the searched space of "insertion-greedy" schedules contains an optimum.
//
// Pruning:
//  * lower bounds from optimal/lower_bounds.h against a shared incumbent,
//  * processor symmetry: among empty processors only the lowest-numbered
//    one is branched,
//  * child ordering: tasks by descending comm-free static level, then
//    processors by ascending start time -- promising branches first, which
//    tightens the incumbent early.
//
// Parallelism (the paper used a parallel A* on multiprocessors): the tree
// is expanded breadth-first until a frontier of a few hundred states
// exists, which worker threads then drain, each running sequential DFS
// with a shared atomic incumbent.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "tgs/graph/task_graph.h"
#include "tgs/sched/schedule.h"

namespace tgs {

struct BBOptions {
  int num_procs = 2;
  /// Wall-clock budget; expiry returns the best schedule found so far with
  /// proven_optimal = false. <= 0 means no limit.
  double time_limit_seconds = 10.0;
  /// Deterministic budget: stop after this many node expansions (0 = no
  /// limit). Unlike the wall-clock limit, equal budgets reproduce the same
  /// search on any machine when num_threads == 1, which the experiment
  /// engine relies on for bit-identical sweeps.
  std::uint64_t max_nodes = 0;
  /// 0 = std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Optional incumbent (e.g., the best heuristic length) to prune against
  /// from the start; the result is never worse than this bound's schedule
  /// if one is also supplied via `initial_schedule`.
  Time initial_upper_bound = 0;  // 0 = none
  /// Disable lower-bound pruning (exhaustive enumeration; tests only).
  bool disable_bounds = false;
};

struct BBResult {
  std::optional<Schedule> schedule;  // empty only for empty graphs
  Time length = 0;
  bool proven_optimal = false;
  std::uint64_t nodes_expanded = 0;
  double seconds = 0.0;
};

/// Find a provably optimal schedule of `g` on opt.num_procs processors (or
/// the best found within the time budget).
BBResult branch_and_bound(const TaskGraph& g, const BBOptions& opt);

}  // namespace tgs
