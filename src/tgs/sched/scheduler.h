// Common interface of the fully-connected-machine scheduling algorithms
// (the paper's BNP and UNC classes). APN algorithms, which additionally
// schedule messages on network links, implement ApnScheduler in
// apn/apn_common.h.
#pragma once

#include <memory>
#include <string>

#include "tgs/graph/task_graph.h"
#include "tgs/sched/schedule.h"

namespace tgs {

/// Paper §4 taxonomy classes.
enum class AlgoClass { kBNP, kUNC, kAPN };

const char* algo_class_name(AlgoClass c);

struct SchedOptions {
  /// Number of processors available. <= 0 means "virtually unlimited"
  /// (paper §6.4.2: BNP algorithms were tested with a very large number of
  /// processors; UNC algorithms are defined for unbounded clusters).
  int num_procs = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short identifier used in tables ("MCP", "DCP", ...).
  virtual std::string name() const = 0;

  virtual AlgoClass algo_class() const = 0;

  /// Produce a complete schedule. Must be deterministic: equal inputs give
  /// bit-identical schedules.
  virtual Schedule run(const TaskGraph& g, const SchedOptions& opt) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Effective processor count: opt.num_procs when bounded, else one
/// processor per task (the most any schedule can use).
int effective_procs(const TaskGraph& g, const SchedOptions& opt);

}  // namespace tgs
