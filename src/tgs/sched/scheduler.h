// Common interface of the fully-connected-machine scheduling algorithms
// (the paper's BNP and UNC classes). APN algorithms, which additionally
// schedule messages on network links, implement ApnScheduler in
// apn/apn_common.h.
#pragma once

#include <memory>
#include <string>

#include "tgs/graph/task_graph.h"
#include "tgs/sched/schedule.h"
#include "tgs/sched/workspace.h"

namespace tgs {

/// Paper §4 taxonomy classes.
enum class AlgoClass { kBNP, kUNC, kAPN };

const char* algo_class_name(AlgoClass c);

struct SchedOptions {
  /// Number of processors available. <= 0 means "virtually unlimited"
  /// (paper §6.4.2: BNP algorithms were tested with a very large number of
  /// processors; UNC algorithms are defined for unbounded clusters).
  int num_procs = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short identifier used in tables ("MCP", "DCP", ...).
  virtual std::string name() const = 0;

  virtual AlgoClass algo_class() const = 0;

  /// Produce a complete schedule with a private, freshly allocated
  /// workspace. Must be deterministic: equal inputs give bit-identical
  /// schedules.
  Schedule run(const TaskGraph& g, const SchedOptions& opt) const;

  /// Same, but reusing the caller's workspace buffers (and any graph
  /// attributes already computed for `g`). `ws` must have been bound to
  /// `g` with begin_graph(); throws std::logic_error otherwise. The
  /// schedule produced is bit-identical to the fresh-workspace overload.
  Schedule run(const TaskGraph& g, const SchedOptions& opt,
               SchedWorkspace& ws) const;

 protected:
  /// Algorithm body. `ws` is bound to `g` on entry; implementations may
  /// use ws.attrs() and ws.pair_scratch() freely but must not rebind it.
  virtual Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                          SchedWorkspace& ws) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Effective processor count: opt.num_procs when bounded, else one
/// processor per task (the most any schedule can use).
int effective_procs(const TaskGraph& g, const SchedOptions& opt);

}  // namespace tgs
