// Performance measures from paper §6.
#pragma once

#include "tgs/graph/task_graph.h"
#include "tgs/sched/schedule.h"

namespace tgs {

/// Normalized Schedule Length: L / (sum of computation costs on the
/// comm-inclusive critical path). NSL >= 1 would hold if the denominator
/// were a lower bound; with the paper's definition the denominator is the
/// CP computation sum, which IS a valid lower bound (a chain runs serially
/// on any machine), so NSL >= 1 for valid schedules.
double normalized_schedule_length(const TaskGraph& g, Time schedule_length);

/// Convenience overload.
double normalized_schedule_length(const Schedule& s);

/// Percentage degradation from an optimal (or reference) length:
/// 100 * (L - L_ref) / L_ref.
double percent_degradation(Time length, Time reference);

/// Simple speedup: serial time / schedule length.
double speedup(const TaskGraph& g, Time schedule_length);

/// Processor efficiency: speedup / processors used.
double efficiency(const TaskGraph& g, Time schedule_length, int procs_used);

/// Lower bound on any schedule length of g on p processors (p <= 0 means
/// unbounded): max(comp critical path, ceil(total work / p)).
Time schedule_length_lower_bound(const TaskGraph& g, int num_procs);

}  // namespace tgs
