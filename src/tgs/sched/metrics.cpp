#include "tgs/sched/metrics.h"

#include <algorithm>

#include "tgs/graph/attributes.h"

namespace tgs {

double normalized_schedule_length(const TaskGraph& g, Time schedule_length) {
  const auto cp = critical_path(g);
  const Cost denom = path_computation_cost(g, cp);
  if (denom <= 0) return 0.0;
  return static_cast<double>(schedule_length) / static_cast<double>(denom);
}

double normalized_schedule_length(const Schedule& s) {
  return normalized_schedule_length(s.graph(), s.makespan());
}

double percent_degradation(Time length, Time reference) {
  if (reference <= 0) return 0.0;
  return 100.0 * static_cast<double>(length - reference) /
         static_cast<double>(reference);
}

double speedup(const TaskGraph& g, Time schedule_length) {
  if (schedule_length <= 0) return 0.0;
  return static_cast<double>(g.total_weight()) /
         static_cast<double>(schedule_length);
}

double efficiency(const TaskGraph& g, Time schedule_length, int procs_used) {
  if (procs_used <= 0) return 0.0;
  return speedup(g, schedule_length) / static_cast<double>(procs_used);
}

Time schedule_length_lower_bound(const TaskGraph& g, int num_procs) {
  const Time cp = computation_critical_path_length(g);
  if (num_procs <= 0) return cp;
  const Cost work = g.total_weight();
  const Time load = (work + num_procs - 1) / num_procs;  // ceil
  return std::max(cp, load);
}

}  // namespace tgs
