#include "tgs/sched/validate.h"

#include <sstream>

namespace tgs {

namespace {
std::string node_name(const TaskGraph& g, NodeId n) {
  return g.has_labels() ? g.label(n) : "n" + std::to_string(n + 1);
}
}  // namespace

ValidationResult validate_schedule(const Schedule& s, int max_procs) {
  const TaskGraph& g = s.graph();
  ValidationResult r;
  auto fail = [&r](const std::string& msg) {
    r.ok = false;
    r.error = msg;
    return r;
  };

  // 1. Placement completeness.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (!s.is_placed(n))
      return fail("task " + node_name(g, n) + " not placed");
    if (s.start(n) < 0)
      return fail("task " + node_name(g, n) + " has negative start");
    if (max_procs > 0 && s.proc(n) >= max_procs) {
      std::ostringstream os;
      os << "task " << node_name(g, n) << " on processor " << s.proc(n)
         << " but only " << max_procs << " allowed";
      return fail(os.str());
    }
  }

  // 2. Per-processor exclusivity. Timeline::occupy already enforces
  // non-overlap structurally; re-check defensively from scratch.
  for (int p = 0; p < s.num_procs(); ++p) {
    const auto& ivs = s.timeline(p).intervals();
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      if (ivs[i - 1].end > ivs[i].start) {
        std::ostringstream os;
        os << "overlap on processor " << p << " between tasks "
           << ivs[i - 1].owner << " and " << ivs[i].owner;
        return fail(os.str());
      }
    }
  }

  // 3. Precedence + communication constraints.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const Time ft_u = s.finish(u);
    for (const Adj& e : g.children(u)) {
      const NodeId v = e.node;
      const Time required =
          s.proc(u) == s.proc(v) ? ft_u : ft_u + e.cost;
      if (s.start(v) < required) {
        std::ostringstream os;
        os << "edge (" << node_name(g, u) << " -> " << node_name(g, v)
           << ") violated: start(" << node_name(g, v) << ") = " << s.start(v)
           << " < required " << required
           << (s.proc(u) == s.proc(v) ? " (same proc)" : " (cross proc)");
        return fail(os.str());
      }
    }
  }
  return r;
}

}  // namespace tgs
