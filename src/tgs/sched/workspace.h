// SchedWorkspace: reusable per-worker scratch threaded through
// Scheduler::run so a 250-graph x 15-algorithm sweep stops paying a fresh
// set of allocations (attribute vectors, arrival summaries, pair caches)
// for every single run. One workspace per worker thread; bind it to each
// new graph with begin_graph() and pass it to every run on that graph.
//
// Contents:
//  * GraphAttributeCache -- static levels / b-levels / ALAP computed at
//    most once per graph and shared by every algorithm run with this
//    workspace (HLFET, ISH, LAST, ETF, DLS and DLS-APN all want static
//    levels; MCP wants ALAP; DSC wants b-levels).
//  * PairScratch -- the flat per-node pools of the incremental
//    (ready node, processor) pair selectors (bnp/bnp_common.h). Stored
//    behind a pointer so sched/ does not include bnp/ headers.
//  * ApnSweepScratch -- the per-processor buffers of the one-to-all APN
//    probes (apn/apn_common.h), so the per-step sweeps of MH / DLS(APN) /
//    BSA allocate nothing in steady state.
//  * ApnMigrationScratch -- the affected-set flags and snapshot pools of
//    the incremental migration engine (apn/apn_common.h) that BSA's
//    tentative release/recommit steps run on. Stored behind a pointer so
//    sched/ does not include net/ or apn/ headers.
//
// Results never depend on workspace contents -- it only recycles capacity
// -- so sharing one workspace across algorithms or reusing it across
// graphs cannot change a schedule. The aliasing contract is the caller's:
// call begin_graph() for every new graph object, even if it happens to
// reuse the address of a previous one.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "tgs/graph/attributes.h"

namespace tgs {

struct PairScratch;          // bnp/bnp_common.h
struct ApnMigrationScratch;  // apn/apn_common.h
struct ParamScratch;         // param/param_scheduler.h

/// Thrown out of a scheduler run when the workspace's armed deadline
/// passes. Algorithm state is abandoned mid-construction, which is safe:
/// all per-run state lives in the (capacity-only) workspace scratch or in
/// locals, so the workspace and its thread stay fully reusable --
/// begin_graph() + run() the next request as if nothing happened.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("scheduling deadline exceeded") {}
};

/// Cooperative cancellation-by-deadline, threaded through scheduler inner
/// loops via the workspace. Disarmed (the default) a poll() is a single
/// predictable branch; armed, it reads the steady clock only every
/// kStride-th call, so even v=100k runs pay a few thousand clock reads at
/// most -- no measurable cost in the perf gates. The first poll after
/// arm() checks immediately, so an already-expired deadline cancels even
/// a 9-node run at its first placement.
///
/// Ownership contract: whoever arms it disarms it (tgs_serve wraps runs
/// in an ArmGuard). A run that throws DeadlineExceeded leaves the token
/// armed; disarm() in the guard's unwind path resets it for the next run.
class RunDeadline {
 public:
  using Clock = std::chrono::steady_clock;

  void arm(Clock::time_point deadline) {
    deadline_ = deadline;
    countdown_ = 1;  // first poll checks the clock
    armed_ = true;
  }
  void disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  bool expired() const { return armed_ && Clock::now() >= deadline_; }

  /// Amortized check; throws DeadlineExceeded once the deadline passes.
  void poll() {
    if (armed_ && --countdown_ == 0) {
      countdown_ = kStride;
      if (Clock::now() >= deadline_) throw DeadlineExceeded();
    }
  }

 private:
  static constexpr std::uint32_t kStride = 64;

  Clock::time_point deadline_{};
  std::uint32_t countdown_ = kStride;
  bool armed_ = false;
};

/// Reusable per-processor buffers of the one-to-all APN probes
/// (apn_probe_est_all): one arrival sweep, the running data-ready maxima,
/// and the per-processor EST output. Capacity-only state -- contents never
/// outlive one probe.
struct ApnSweepScratch {
  std::vector<Time> arrival;
  std::vector<Time> ready;
  std::vector<Time> est;
};

class SchedWorkspace {
 public:
  SchedWorkspace();
  ~SchedWorkspace();
  SchedWorkspace(const SchedWorkspace&) = delete;
  SchedWorkspace& operator=(const SchedWorkspace&) = delete;

  /// Bind to `g`: invalidates the attribute cache and per-node pools.
  /// Buffers keep their capacity. Must be called before the first run on
  /// every new graph.
  void begin_graph(const TaskGraph& g);

  /// Graph of the last begin_graph() (nullptr before the first).
  const TaskGraph* graph() const { return graph_; }

  /// Lazy attributes of the bound graph.
  GraphAttributeCache& attrs() { return attrs_; }

  /// Pair-selector pools, sized for the bound graph.
  PairScratch& pair_scratch() { return *pair_; }

  /// One-to-all APN probe buffers (sized by callers per topology).
  ApnSweepScratch& apn_scratch() { return apn_; }

  /// Incremental-migration scratch (affected-set flags, snapshot pools)
  /// of ApnMigrationEngine; sized by the engine per (graph, topology).
  ApnMigrationScratch& migration_scratch() { return *migration_; }

  /// Per-run buffers of the parameterized scheduler core (priority keys,
  /// static ranks, arrival times, cluster assignment); sized by
  /// ParamScheduler per run.
  ParamScratch& param_scratch() { return *param_; }

  /// Cooperative per-request deadline polled by ParamScheduler and the
  /// APN inner loops. Survives begin_graph() untouched: arming is the
  /// caller's per-request decision, not per-graph state.
  RunDeadline& deadline() { return deadline_; }

 private:
  const TaskGraph* graph_ = nullptr;
  RunDeadline deadline_;
  GraphAttributeCache attrs_;
  std::unique_ptr<PairScratch> pair_;
  ApnSweepScratch apn_;
  std::unique_ptr<ApnMigrationScratch> migration_;
  std::unique_ptr<ParamScratch> param_;
};

}  // namespace tgs
