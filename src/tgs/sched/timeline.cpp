#include "tgs/sched/timeline.h"

#include <algorithm>
#include <stdexcept>

namespace tgs {

Time Timeline::earliest_fit(Time ready, Cost dur, bool insertion) const {
  if (intervals_.empty()) return ready;
  if (!insertion) return std::max(ready, intervals_.back().end);
  if (dur == 0) return ready;  // a zero-length block fits anywhere

  // Intervals ending at or before `ready` cannot constrain the placement;
  // binary-search past them (interval ends are sorted because intervals
  // are disjoint and sorted by start). Link timelines hold thousands of
  // message reservations, so this matters.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), ready,
      [](const Interval& iv, Time t) { return iv.end <= t; });
  Time candidate = ready;
  for (; it != intervals_.end(); ++it) {
    if (candidate + dur <= it->start) return candidate;
    candidate = std::max(candidate, it->end);
  }
  return candidate;
}

bool Timeline::fits(Time start, Cost dur) const {
  const Time end = start + dur;
  // First interval with iv.end > start could overlap.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), start,
      [](const Interval& iv, Time t) { return iv.end <= t; });
  if (it == intervals_.end()) return true;
  return it->start >= end;
}

void Timeline::occupy(std::int64_t owner, Time start, Cost dur) {
  if (!fits(start, dur)) throw std::logic_error("Timeline::occupy overlap");
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), start,
      [](const Interval& iv, Time t) { return iv.start < t; });
  intervals_.insert(it, Interval{start, start + dur, owner});
}

bool Timeline::release(std::int64_t owner) {
  auto it = std::find_if(intervals_.begin(), intervals_.end(),
                         [owner](const Interval& iv) { return iv.owner == owner; });
  if (it == intervals_.end()) return false;
  intervals_.erase(it);
  return true;
}

Time Timeline::busy_time() const {
  Time total = 0;
  for (const Interval& iv : intervals_) total += iv.end - iv.start;
  return total;
}

}  // namespace tgs
