#include "tgs/sched/timeline.h"

#include <algorithm>
#include <stdexcept>

namespace tgs {

Time Timeline::earliest_fit(Time ready, Cost dur, bool insertion) const {
  if (intervals_.empty()) return ready;
  if (!insertion) return std::max(ready, intervals_.back().end);
  if (dur == 0) return ready;  // a zero-length block fits anywhere

  // Intervals ending at or before `ready` cannot constrain the placement;
  // binary-search past them (interval ends are sorted because intervals
  // are disjoint and sorted by start). Link timelines hold thousands of
  // message reservations, so this matters.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), ready,
      [](const Interval& iv, Time t) { return iv.end <= t; });
  Time candidate = ready;
  for (; it != intervals_.end(); ++it) {
    if (candidate + dur <= it->start) return candidate;
    candidate = std::max(candidate, it->end);
  }
  return candidate;
}

bool Timeline::fits(Time start, Cost dur) const {
  const Time end = start + dur;
  // First interval with iv.end > start could overlap.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), start,
      [](const Interval& iv, Time t) { return iv.end <= t; });
  if (it == intervals_.end()) return true;
  return it->start >= end;
}

void Timeline::occupy(std::int64_t owner, Time start, Cost dur) {
  // One binary search provides both the overlap verdict and the insertion
  // point. `it` is the first interval ending after `start`; everything
  // before it lies entirely at or before `start`, so [start, start+dur)
  // overlaps iff `it` begins before the new end.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), start,
      [](const Interval& iv, Time t) { return iv.end <= t; });
  if (it != intervals_.end() && it->start < start + dur)
    throw std::logic_error("Timeline::occupy overlap");
  // Keep the list sorted by start: zero-width intervals at exactly `start`
  // end at `start` and therefore sit before `it`; step over them so the
  // new interval lands where a sort by start would put it.
  while (it != intervals_.begin() && std::prev(it)->start >= start) --it;
  intervals_.insert(it, Interval{start, start + dur, owner});
}

bool Timeline::release(std::int64_t owner) {
  auto it = std::find_if(intervals_.begin(), intervals_.end(),
                         [owner](const Interval& iv) { return iv.owner == owner; });
  if (it == intervals_.end()) return false;
  intervals_.erase(it);
  return true;
}

bool Timeline::release(std::int64_t owner, Time start_hint) {
  // All intervals with this start sit in one contiguous run (zero-width
  // intervals may share a start); check the run, then fall back to the
  // full scan in case the hint was wrong.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), start_hint,
      [](const Interval& iv, Time t) { return iv.start < t; });
  for (; it != intervals_.end() && it->start == start_hint; ++it) {
    if (it->owner == owner) {
      intervals_.erase(it);
      return true;
    }
  }
  return release(owner);
}

Time Timeline::busy_time() const {
  Time total = 0;
  for (const Interval& iv : intervals_) total += iv.end - iv.start;
  return total;
}

}  // namespace tgs
