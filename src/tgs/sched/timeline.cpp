#include "tgs/sched/timeline.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace tgs {

namespace {

/// First interval of a sorted chunk ending after `t`. Interval ends are
/// non-decreasing (disjoint intervals sorted by start), so lower_bound on
/// the end applies.
std::vector<Interval>::const_iterator lower_by_end(
    const std::vector<Interval>& ivs, Time t) {
  return std::lower_bound(
      ivs.begin(), ivs.end(), t,
      [](const Interval& iv, Time x) { return iv.end <= x; });
}

Time internal_max_gap(const std::vector<Interval>& ivs) {
  Time mg = 0;
  for (std::size_t i = 1; i < ivs.size(); ++i)
    mg = std::max(mg, ivs[i].start - ivs[i - 1].end);
  return mg;
}

/// Strict ordering of an interval against a (start, end) key; intervals
/// are stored lexicographically by it.
bool key_below(const Interval& iv, Time start, Time end) {
  return iv.start < start || (iv.start == start && iv.end < end);
}

constexpr Time kTimeNegInf = std::numeric_limits<Time>::lowest();

}  // namespace

std::size_t Timeline::chunk_by_end(Time t) const {
  return static_cast<std::size_t>(
      std::partition_point(chunks_.begin(), chunks_.end(),
                           [t](const Chunk& c) { return c.last_end() <= t; }) -
      chunks_.begin());
}

std::size_t Timeline::chunk_by_start(Time start, Time end) const {
  const std::size_t c = static_cast<std::size_t>(
      std::partition_point(chunks_.begin(), chunks_.end(),
                           [start, end](const Chunk& ch) {
                             return key_below(ch.ivs.back(), start, end);
                           }) -
      chunks_.begin());
  // Keys beyond every interval belong to the last chunk (append).
  return std::min(c, chunks_.size() - 1);
}

Time Timeline::gap_before(std::size_t c) const {
  return c == 0 ? 0 : chunks_[c].first_start() - chunks_[c - 1].last_end();
}

Time Timeline::leaf_key(std::size_t c) const {
  return std::max(chunks_[c].max_gap, gap_before(c));
}

void Timeline::rebuild_tree() {
  const std::size_t n = chunks_.size();
  tree_base_ = 1;
  while (tree_base_ < n) tree_base_ <<= 1;
  tree_.assign(tree_base_ * 2, -1);
  for (std::size_t c = 0; c < n; ++c) tree_[tree_base_ + c] = leaf_key(c);
  for (std::size_t i = tree_base_ - 1; i >= 1; --i)
    tree_[i] = std::max(tree_[2 * i], tree_[2 * i + 1]);
}

void Timeline::update_leaf(std::size_t c) {
  std::size_t i = tree_base_ + c;
  tree_[i] = leaf_key(c);
  for (i >>= 1; i >= 1; i >>= 1)
    tree_[i] = std::max(tree_[2 * i], tree_[2 * i + 1]);
}

void Timeline::recompute_chunk(std::size_t c) {
  chunks_[c].max_gap = internal_max_gap(chunks_[c].ivs);
  // The chunk's boundary intervals may have moved: its own entry gap and
  // the successor's both depend on them.
  update_leaf(c);
  if (c + 1 < chunks_.size()) update_leaf(c + 1);
}

void Timeline::split_chunk(std::size_t c) {
  Chunk right;
  std::vector<Interval>& left = chunks_[c].ivs;
  const std::size_t half = left.size() / 2;
  right.ivs.assign(left.begin() + static_cast<std::ptrdiff_t>(half),
                   left.end());
  left.erase(left.begin() + static_cast<std::ptrdiff_t>(half), left.end());
  right.max_gap = internal_max_gap(right.ivs);
  chunks_[c].max_gap = internal_max_gap(left);
  chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(c) + 1,
                 std::move(right));
  rebuild_tree();
}

void Timeline::erase_interval(std::size_t c, std::size_t pos) {
  Chunk& ch = chunks_[c];
  std::vector<Interval>& ivs = ch.ivs;
  // Erasing merges the two adjacent gaps; unless one of them was the
  // chunk maximum, the new maximum is known without a rescan.
  const Time g1 = pos > 0 ? ivs[pos].start - ivs[pos - 1].end : -1;
  const Time g2 =
      pos + 1 < ivs.size() ? ivs[pos + 1].start - ivs[pos].end : -1;
  const Time merged = pos > 0 && pos + 1 < ivs.size()
                          ? ivs[pos + 1].start - ivs[pos - 1].end
                          : -1;
  ivs.erase(ivs.begin() + static_cast<std::ptrdiff_t>(pos));
  --size_;
  if (ivs.empty()) {
    chunks_.erase(chunks_.begin() + static_cast<std::ptrdiff_t>(c));
    rebuild_tree();
  } else {
    if ((g1 == ch.max_gap || g2 == ch.max_gap) && ch.max_gap > 0)
      ch.max_gap = internal_max_gap(ivs);
    else
      ch.max_gap = std::max(ch.max_gap, merged);
    update_leaf(c);
    if (c + 1 < chunks_.size()) update_leaf(c + 1);
  }
  end_time_ = chunks_.empty() ? 0 : chunks_.back().last_end();
}

int Timeline::first_chunk_with_gap(std::size_t lo, Cost dur) const {
  if (lo >= chunks_.size()) return -1;
  return tree_query(1, 0, tree_base_, lo, dur);
}

int Timeline::tree_query(std::size_t node, std::size_t l, std::size_t r,
                         std::size_t lo, Cost dur) const {
  if (r <= lo || tree_[node] < dur) return -1;
  if (r - l == 1) return static_cast<int>(l);
  const std::size_t mid = (l + r) / 2;
  const int left = tree_query(2 * node, l, mid, lo, dur);
  if (left >= 0) return left;
  return tree_query(2 * node + 1, mid, r, lo, dur);
}

Time Timeline::earliest_fit(Time ready, Cost dur, bool insertion) const {
  if (size_ == 0) return ready;
  if (!insertion) return std::max(ready, end_time_);
  if (dur == 0) return ready;  // a zero-length block fits anywhere
  if (ready >= end_time_) return ready;

  // Scan the chunk holding `ready` the way the flat store would: intervals
  // ending at or before `ready` cannot constrain the placement.
  const std::size_t r = chunk_by_end(ready);
  {
    const std::vector<Interval>& ivs = chunks_[r].ivs;
    Time candidate = ready;
    for (auto it = lower_by_end(ivs, ready); it != ivs.end(); ++it) {
      if (candidate + dur <= it->start) return candidate;
      candidate = std::max(candidate, it->end);
    }
  }
  // No fit by the end of chunk r; the cursor sits at its last end. Descend
  // the gap tree to the first later chunk whose entry gap or largest
  // internal gap can hold the block -- every skipped chunk provably
  // cannot.
  const int c = first_chunk_with_gap(r + 1, dur);
  if (c < 0) return end_time_;
  const std::size_t ci = static_cast<std::size_t>(c);
  const Time prev_end = chunks_[ci - 1].last_end();
  if (chunks_[ci].first_start() - prev_end >= dur) return prev_end;
  const std::vector<Interval>& ivs = chunks_[ci].ivs;
  for (std::size_t i = 1; i < ivs.size(); ++i)
    if (ivs[i].start - ivs[i - 1].end >= dur) return ivs[i - 1].end;
  throw std::logic_error("Timeline gap index inconsistent");
}

bool Timeline::fits(Time start, Cost dur) const {
  const std::size_t c = chunk_by_end(start);
  if (c == chunks_.size()) return true;
  // First interval with iv.end > start could overlap.
  const auto it = lower_by_end(chunks_[c].ivs, start);
  return it->start >= start + dur;
}

void Timeline::occupy(std::int64_t owner, Time start, Cost dur) {
  if (chunks_.empty()) {
    chunks_.push_back(Chunk{{Interval{start, start + dur, owner}}, 0});
    size_ = 1;
    end_time_ = start + dur;
    rebuild_tree();
    return;
  }
  // Append fast path (the dominant pattern: list schedulers extend the
  // frontier): lands strictly after every existing interval, no overlap
  // possible, and the new trailing gap updates the chunk max in O(1).
  if (Chunk& last = chunks_.back();
      start >= end_time_ && start > last.ivs.back().start) {
    last.max_gap = std::max(last.max_gap, start - last.last_end());
    last.ivs.push_back(Interval{start, start + dur, owner});
    ++size_;
    end_time_ = start + dur;
    if (last.ivs.size() > kSplit)
      split_chunk(chunks_.size() - 1);
    else
      update_leaf(chunks_.size() - 1);
    return;
  }
  // Overlap verdict: the first interval ending after `start` (everything
  // before it lies entirely at or before `start`) must not begin before
  // the new end.
  const std::size_t ce = chunk_by_end(start);
  if (ce < chunks_.size() &&
      lower_by_end(chunks_[ce].ivs, start)->start < start + dur)
    throw std::logic_error("Timeline::occupy overlap");
  // Keep the list sorted by (start, end) -- zero-width intervals ahead of
  // a real block at the same start, so interval ends stay globally
  // non-decreasing -- with new intervals ahead of identical keys.
  const Time end = start + dur;
  const std::size_t c = chunk_by_start(start, end);
  std::vector<Interval>& ivs = chunks_[c].ivs;
  const auto pos =
      std::lower_bound(ivs.begin(), ivs.end(), start,
                       [end](const Interval& iv, Time s) {
                         return key_below(iv, s, end);
                       });
  ivs.insert(pos, Interval{start, end, owner});
  ++size_;
  end_time_ = std::max(end_time_, start + dur);
  if (ivs.size() > kSplit)
    split_chunk(c);
  else
    recompute_chunk(c);
}

bool Timeline::release(std::int64_t owner) {
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const std::vector<Interval>& ivs = chunks_[c].ivs;
    for (std::size_t i = 0; i < ivs.size(); ++i) {
      if (ivs[i].owner == owner) {
        erase_interval(c, i);
        return true;
      }
    }
  }
  return false;
}

bool Timeline::release(std::int64_t owner, Time start_hint) {
  // All intervals with this start sit in one contiguous run (zero-width
  // intervals may share a start), possibly spanning chunk boundaries;
  // check the run, then fall back to the full scan in case the hint was
  // wrong.
  if (chunks_.empty()) return false;
  const std::size_t first = chunk_by_start(start_hint, kTimeNegInf);
  bool in_run = true;
  for (std::size_t c = first; in_run && c < chunks_.size(); ++c) {
    const std::vector<Interval>& ivs = chunks_[c].ivs;
    std::size_t i = 0;
    if (c == first)
      i = static_cast<std::size_t>(
          std::lower_bound(ivs.begin(), ivs.end(), start_hint,
                           [](const Interval& iv, Time s) {
                             return iv.start < s;
                           }) -
          ivs.begin());
    for (; i < ivs.size(); ++i) {
      if (ivs[i].start != start_hint) {
        in_run = false;
        break;
      }
      if (ivs[i].owner == owner) {
        erase_interval(c, i);
        return true;
      }
    }
  }
  return release(owner);
}

void Timeline::clear() {
  chunks_.clear();
  tree_.clear();
  tree_base_ = 0;
  size_ = 0;
  end_time_ = 0;
}

std::vector<Interval> Timeline::intervals() const {
  std::vector<Interval> flat;
  flat.reserve(size_);
  for (const Chunk& c : chunks_)
    flat.insert(flat.end(), c.ivs.begin(), c.ivs.end());
  return flat;
}

Time Timeline::busy_time() const {
  Time total = 0;
  for (const Chunk& c : chunks_)
    for (const Interval& iv : c.ivs) total += iv.end - iv.start;
  return total;
}

}  // namespace tgs
