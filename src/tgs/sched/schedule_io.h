// Plain-text schedule serialization, so schedules can be archived,
// diffed, or rendered by external tools.
//
// Format ("tgssched1"):
//   tgssched1 <num_tasks> <makespan>
//   task <node> <proc> <start>
//
// The graph itself is not embedded; loading requires the same TaskGraph
// (checked by node count and re-validation hooks at the call site).
#pragma once

#include <iosfwd>
#include <string>

#include "tgs/sched/schedule.h"

namespace tgs {

void write_schedule(std::ostream& os, const Schedule& s);
std::string schedule_to_string(const Schedule& s);

/// Parse a schedule for `g`; throws std::invalid_argument on malformed
/// input, node-count mismatch, or placements that overlap on a processor.
Schedule read_schedule(std::istream& is, const TaskGraph& g);
Schedule schedule_from_string(const std::string& text, const TaskGraph& g);

void save_schedule(const std::string& path, const Schedule& s);
Schedule load_schedule(const std::string& path, const TaskGraph& g);

}  // namespace tgs
