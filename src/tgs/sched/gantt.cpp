#include "tgs/sched/gantt.h"

#include <algorithm>
#include <sstream>

namespace tgs {

namespace {
std::string node_name(const TaskGraph& g, NodeId n) {
  return g.has_labels() ? g.label(n) : "n" + std::to_string(n + 1);
}
}  // namespace

std::string schedule_listing(const Schedule& s) {
  const TaskGraph& g = s.graph();
  std::ostringstream os;
  os << "schedule of '" << g.name() << "': makespan=" << s.makespan()
     << ", procs=" << s.procs_used() << "\n";
  for (int p = 0; p < s.num_procs(); ++p) {
    const auto& ivs = s.timeline(p).intervals();
    if (ivs.empty()) continue;
    os << "P" << p << " |";
    for (const Interval& iv : ivs) {
      os << " [" << iv.start << "," << iv.end << ") "
         << node_name(g, static_cast<NodeId>(iv.owner));
    }
    os << "\n";
  }
  return os.str();
}

std::string gantt_chart(const Schedule& s, int width) {
  const TaskGraph& g = s.graph();
  const Time span = std::max<Time>(s.makespan(), 1);
  width = std::max(width, 10);
  const double scale = static_cast<double>(width) / static_cast<double>(span);

  std::ostringstream os;
  os << "gantt '" << g.name() << "'  (1 col ~ "
     << static_cast<double>(span) / width << " time units)\n";
  for (int p = 0; p < s.num_procs(); ++p) {
    const auto& ivs = s.timeline(p).intervals();
    if (ivs.empty()) continue;
    std::string row(static_cast<std::size_t>(width) + 1, ' ');
    for (const Interval& iv : ivs) {
      int a = static_cast<int>(iv.start * scale);
      int b = std::max(a + 1, static_cast<int>(iv.end * scale));
      b = std::min(b, width);
      for (int c = a; c < b; ++c) row[c] = '#';
      const std::string name = node_name(g, static_cast<NodeId>(iv.owner));
      // Write the label inside the block when it fits.
      if (b - a > static_cast<int>(name.size())) {
        for (std::size_t k = 0; k < name.size(); ++k)
          row[static_cast<std::size_t>(a) + 1 + k] = name[k];
      }
    }
    os << "P" << p << " |" << row << "|\n";
  }
  os << "     0" << std::string(static_cast<std::size_t>(width) - 5, ' ')
     << span << "\n";
  return os.str();
}

}  // namespace tgs
