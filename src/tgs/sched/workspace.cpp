#include "tgs/sched/workspace.h"

#include "tgs/apn/apn_common.h"  // complete ApnMigrationScratch
#include "tgs/bnp/bnp_common.h"  // complete PairScratch for the unique_ptr
#include "tgs/param/param_scheduler.h"  // complete ParamScratch

namespace tgs {

SchedWorkspace::SchedWorkspace()
    : pair_(std::make_unique<PairScratch>()),
      migration_(std::make_unique<ApnMigrationScratch>()),
      param_(std::make_unique<ParamScratch>()) {}

SchedWorkspace::~SchedWorkspace() = default;

void SchedWorkspace::begin_graph(const TaskGraph& g) {
  graph_ = &g;
  attrs_.bind(g);
  pair_->bind(g.num_nodes());
}

}  // namespace tgs
