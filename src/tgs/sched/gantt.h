// ASCII Gantt rendering of a schedule, for examples and debugging.
#pragma once

#include <string>

#include "tgs/sched/schedule.h"

namespace tgs {

/// Per-processor listing: "P0 | [0,2) n1  [2,7) n4 ...".
std::string schedule_listing(const Schedule& s);

/// Scaled bar chart, at most `width` character columns for the time axis.
/// Task blocks are labelled with node labels when they fit.
std::string gantt_chart(const Schedule& s, int width = 100);

}  // namespace tgs
