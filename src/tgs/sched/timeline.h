// A single resource timeline: an ordered set of non-overlapping busy
// intervals. Used for processors (task execution) and network links
// (message transmission).
//
// The central query is earliest_fit(): the earliest start >= ready of a
// duration-long block, either appended after the last interval
// (non-insertion list scheduling) or placed into the first sufficiently
// large idle gap (insertion-based scheduling, paper §3 "ISH/MCP style").
//
// Storage is gap-indexed: intervals live in bounded sorted chunks, each
// summarized by its largest internal idle gap, with a max segment tree
// over the per-chunk summaries. An insertion-mode fit therefore descends
// the tree to the first chunk that can hold the block instead of scanning
// the interval list -- APN link timelines accumulate thousands of message
// reservations and every (node, processor) probe queries them. Occupying
// or releasing an interval touches one chunk (bounded memmove) plus a
// segment-tree path, not the whole list. Queries are exact: the chunked
// store answers every call bit-identically to a flat sorted vector
// (tests/test_timeline.cpp churns both against each other).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tgs/util/types.h"

namespace tgs {

/// Occupancy interval [start, end) owned by a task or message id.
struct Interval {
  Time start;
  Time end;
  std::int64_t owner;

  friend bool operator==(const Interval&, const Interval&) = default;
};

class Timeline {
 public:
  /// Earliest t >= ready such that [t, t+dur) fits.
  /// insertion=false: returns max(ready, end-of-last-interval).
  /// insertion=true : first gap (including before the first interval and
  /// after the last) that can hold dur starting no earlier than ready.
  /// dur == 0 fits anywhere >= ready.
  Time earliest_fit(Time ready, Cost dur, bool insertion) const;

  /// True if [start, start+dur) does not overlap any existing interval.
  bool fits(Time start, Cost dur) const;

  /// Insert an interval; throws std::logic_error if it overlaps. Equal
  /// start times order by end (zero-width intervals first, so interval
  /// ends stay globally non-decreasing); identical (start, end) pairs
  /// keep insertion-before-existing order.
  void occupy(std::int64_t owner, Time start, Cost dur);

  /// Remove the interval with this owner; returns false if absent.
  /// O(n) scan -- prefer the hinted overload when the start is known.
  bool release(std::int64_t owner);

  /// Remove the interval with this owner whose start time is known to the
  /// caller (schedulers track where they placed things): binary-searches
  /// the chunked interval store instead of scanning it, falling back to
  /// the linear scan if no interval with this owner sits at `start_hint`.
  bool release(std::int64_t owner, Time start_hint);

  /// Remove all intervals.
  void clear();

  /// End of the last interval (0 when empty).
  Time end_time() const { return end_time_; }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Intervals sorted by start time, flattened out of the chunked store.
  std::vector<Interval> intervals() const;

  /// Total busy time.
  Time busy_time() const;

  /// Insertion-mode earliest_fit against a counterfactual state: intervals
  /// whose owner satisfies skip(owner) are treated as idle. Returns the
  /// exact fit when it lies below `limit`, and `limit` the moment the
  /// running cursor reaches it -- bit-identical to clamping
  /// earliest_fit(ready, dur, /*insertion=*/true) on a timeline that never
  /// contained the skipped intervals to at most `limit`. The incremental
  /// migration engine asks "would this block land below its current
  /// start?" with limit = that start, so the common no-change answer costs
  /// O(intervals in [ready, limit)) instead of a scan to the tail. Pass
  /// kTimeInf for the unclamped fit. Linear from `ready` (no gap index):
  /// intended for verification walks, not hot scheduling loops.
  template <class SkipOwner>
  Time earliest_fit_skip(Time ready, Cost dur, Time limit,
                         SkipOwner&& skip) const {
    if (ready >= limit) return limit;
    if (size_ == 0 || dur == 0 || ready >= end_time_) return ready;
    Time candidate = ready;
    const std::size_t c0 = chunk_by_end(ready);
    for (std::size_t c = c0; c < chunks_.size(); ++c) {
      const std::vector<Interval>& ivs = chunks_[c].ivs;
      auto it = ivs.begin();
      if (c == c0)  // intervals ending at or before `ready` cannot constrain
        it = std::lower_bound(ivs.begin(), ivs.end(), ready,
                              [](const Interval& iv, Time x) {
                                return iv.end <= x;
                              });
      for (; it != ivs.end(); ++it) {
        if (skip(it->owner)) continue;
        if (candidate + dur <= it->start) return candidate;
        candidate = std::max(candidate, it->end);
        if (candidate >= limit) return limit;
      }
    }
    return candidate;
  }

  /// Visit owners of intervals overlapping [lo, hi) in start order; stops
  /// early (returning true) when visit(owner) returns true. Zero-width
  /// intervals at t in (lo, hi) are reported -- earliest_fit treats them
  /// as cursor pushers, so a caller auditing a fit's input window must see
  /// them too.
  template <class Visit>
  bool any_interval_in(Time lo, Time hi, Visit&& visit) const {
    if (hi <= lo) return false;
    for (std::size_t c = chunk_by_end(lo); c < chunks_.size(); ++c) {
      for (const Interval& iv : chunks_[c].ivs) {
        if (iv.start >= hi) return false;
        if (iv.end > lo && visit(iv.owner)) return true;
      }
    }
    return false;
  }

 private:
  // Chunk capacity: split at > kSplit into two halves. Bounds the in-chunk
  // scan of every query and the memmove of every occupy/release.
  static constexpr std::size_t kSplit = 48;

  struct Chunk {
    std::vector<Interval> ivs;  // sorted by start, non-overlapping
    Time max_gap = 0;           // largest idle gap BETWEEN consecutive ivs

    Time first_start() const { return ivs.front().start; }
    Time last_end() const { return ivs.back().end; }
  };

  /// Index of the first chunk whose last interval ends after `t`
  /// (chunks_.size() when none). Interval ends are globally
  /// non-decreasing, so this is a binary search over chunk tails.
  std::size_t chunk_by_end(Time t) const;

  /// Index of the chunk that owns the sorted position of the (start, end)
  /// key (first chunk whose last interval's key is not below it; the last
  /// chunk when the key exceeds every interval's). Intervals are ordered
  /// lexicographically by (start, end) -- with disjointness this keeps
  /// interval ends globally non-decreasing, which chunk_by_end and the
  /// in-chunk end searches rely on. Pass end = kTimeNegInf to locate the
  /// first interval with this start.
  std::size_t chunk_by_start(Time start, Time end) const;

  /// Gap between chunk c and its predecessor (0 for chunk 0: the gap
  /// before the first interval is handled by the query's ready cursor).
  Time gap_before(std::size_t c) const;

  /// Segment-tree leaf value of chunk c: the largest idle gap reachable by
  /// entering this chunk from the previous one.
  Time leaf_key(std::size_t c) const;

  void recompute_chunk(std::size_t c);       // max_gap, leaves c and c+1
  void update_leaf(std::size_t c);           // one O(log C) path
  void rebuild_tree();                       // chunk count changed
  void split_chunk(std::size_t c);           // kSplit overflow
  void erase_interval(std::size_t c, std::size_t pos);

  /// First chunk index >= lo whose leaf key can hold `dur`; -1 if none.
  int first_chunk_with_gap(std::size_t lo, Cost dur) const;
  int tree_query(std::size_t node, std::size_t l, std::size_t r,
                 std::size_t lo, Cost dur) const;

  std::vector<Chunk> chunks_;  // non-empty, ordered
  std::vector<Time> tree_;     // max segment tree over leaf_key(c)
  std::size_t tree_base_ = 0;  // leaf offset (power of two >= chunk count)
  std::size_t size_ = 0;       // total interval count
  Time end_time_ = 0;          // end of the last interval
};

}  // namespace tgs
