// A single resource timeline: an ordered set of non-overlapping busy
// intervals. Used for processors (task execution) and network links
// (message transmission).
//
// The central query is earliest_fit(): the earliest start >= ready of a
// duration-long block, either appended after the last interval
// (non-insertion list scheduling) or placed into the first sufficiently
// large idle gap (insertion-based scheduling, paper §3 "ISH/MCP style").
#pragma once

#include <cstdint>
#include <vector>

#include "tgs/util/types.h"

namespace tgs {

/// Occupancy interval [start, end) owned by a task or message id.
struct Interval {
  Time start;
  Time end;
  std::int64_t owner;

  friend bool operator==(const Interval&, const Interval&) = default;
};

class Timeline {
 public:
  /// Earliest t >= ready such that [t, t+dur) fits.
  /// insertion=false: returns max(ready, end-of-last-interval).
  /// insertion=true : first gap (including before the first interval and
  /// after the last) that can hold dur starting no earlier than ready.
  /// dur == 0 fits anywhere >= ready.
  Time earliest_fit(Time ready, Cost dur, bool insertion) const;

  /// True if [start, start+dur) does not overlap any existing interval.
  bool fits(Time start, Cost dur) const;

  /// Insert an interval; throws std::logic_error if it overlaps. The
  /// overlap check and the insertion point come out of one binary search.
  void occupy(std::int64_t owner, Time start, Cost dur);

  /// Remove the interval with this owner; returns false if absent.
  /// O(n) scan -- prefer the hinted overload when the start is known.
  bool release(std::int64_t owner);

  /// Remove the interval with this owner whose start time is known to the
  /// caller (schedulers track where they placed things): binary-searches
  /// the sorted interval list instead of scanning it, falling back to the
  /// linear scan if no interval with this owner sits at `start_hint`.
  bool release(std::int64_t owner, Time start_hint);

  /// Remove all intervals.
  void clear() { intervals_.clear(); }

  /// End of the last interval (0 when empty).
  Time end_time() const {
    return intervals_.empty() ? 0 : intervals_.back().end;
  }

  bool empty() const { return intervals_.empty(); }
  std::size_t size() const { return intervals_.size(); }

  /// Intervals sorted by start time.
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Total busy time.
  Time busy_time() const;

 private:
  std::vector<Interval> intervals_;  // sorted by start, non-overlapping
};

}  // namespace tgs
