#include "tgs/sched/schedule.h"

#include <algorithm>
#include <stdexcept>

namespace tgs {

Schedule::Schedule(const TaskGraph& g, int num_procs_hint)
    : graph_(&g),
      proc_(g.num_nodes(), kNoProc),
      start_(g.num_nodes(), 0) {
  if (num_procs_hint > 0) timelines_.resize(num_procs_hint);
}

void Schedule::ensure_proc(ProcId p) {
  if (p < 0) throw std::invalid_argument("negative processor id");
  if (static_cast<std::size_t>(p) >= timelines_.size())
    timelines_.resize(static_cast<std::size_t>(p) + 1);
}

void Schedule::place(NodeId n, ProcId p, Time start) {
  if (proc_[n] != kNoProc) throw std::logic_error("task already placed");
  if (start < 0) throw std::invalid_argument("negative start time");
  ensure_proc(p);
  timelines_[p].occupy(static_cast<std::int64_t>(n), start, graph_->weight(n));
  proc_[n] = p;
  start_[n] = start;
  ++placed_count_;
}

void Schedule::unplace(NodeId n) {
  if (proc_[n] == kNoProc) throw std::logic_error("task not placed");
  timelines_[proc_[n]].release(static_cast<std::int64_t>(n), start_[n]);
  proc_[n] = kNoProc;
  start_[n] = 0;
  --placed_count_;
}

int Schedule::procs_used() const {
  int used = 0;
  for (const Timeline& tl : timelines_)
    if (!tl.empty()) ++used;
  return used;
}

Time Schedule::makespan() const {
  Time m = 0;
  for (const Timeline& tl : timelines_) m = std::max(m, tl.end_time());
  return m;
}

Time Schedule::earliest_start_on(ProcId p, Time ready, Cost dur,
                                 bool insertion) const {
  if (p < 0) throw std::invalid_argument("negative processor id");
  if (static_cast<std::size_t>(p) >= timelines_.size()) return ready;
  return timelines_[p].earliest_fit(ready, dur, insertion);
}

Time Schedule::data_ready(NodeId n, ProcId p) const {
  Time ready = 0;
  for (const Adj& par : graph_->parents(n)) {
    if (proc_[par.node] == kNoProc) continue;
    const Time ft = start_[par.node] + graph_->weight(par.node);
    const Time arrival = proc_[par.node] == p ? ft : ft + par.cost;
    ready = std::max(ready, arrival);
  }
  return ready;
}

Time Schedule::est(NodeId n, ProcId p, bool insertion) const {
  return earliest_start_on(p, data_ready(n, p), graph_->weight(n), insertion);
}

}  // namespace tgs
