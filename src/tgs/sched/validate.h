// Schedule validation: the correctness oracle every algorithm and test runs
// against. Checks the fully-connected contention-free model; APN schedules
// have a stricter validator in net/net_validate.h.
#pragma once

#include <string>

#include "tgs/sched/schedule.h"

namespace tgs {

struct ValidationResult {
  bool ok = true;
  std::string error;  // first violation found, human readable

  explicit operator bool() const { return ok; }
};

/// Verifies:
///  1. every task is placed with start >= 0,
///  2. tasks on one processor do not overlap,
///  3. for every edge (u, v): ST(v) >= FT(u) when co-located, and
///     ST(v) >= FT(u) + c(u, v) otherwise,
///  4. when max_procs > 0: no task sits on a processor id >= max_procs.
ValidationResult validate_schedule(const Schedule& s, int max_procs = 0);

}  // namespace tgs
