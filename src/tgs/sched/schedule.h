// Schedule: an assignment of every task to (processor, start time).
//
// The machine model is the paper's §2: homogeneous processors, task
// execution is non-preemptive, a processor runs one task at a time. The
// fully-connected contention-free communication model (BNP/UNC classes)
// needs nothing beyond this; the APN class adds link timelines on top (see
// net/net_schedule.h).
#pragma once

#include <vector>

#include "tgs/graph/task_graph.h"
#include "tgs/sched/timeline.h"
#include "tgs/util/types.h"

namespace tgs {

class Schedule {
 public:
  /// `num_procs_hint` pre-allocates timelines; the schedule grows on demand
  /// when tasks are placed on higher-numbered processors.
  explicit Schedule(const TaskGraph& g, int num_procs_hint = 0);

  const TaskGraph& graph() const { return *graph_; }

  /// Place task n on processor p at `start`; throws on double placement or
  /// processor-time overlap.
  void place(NodeId n, ProcId p, Time start);

  /// Remove a placed task (used by migrating / backtracking algorithms).
  void unplace(NodeId n);

  bool is_placed(NodeId n) const { return proc_[n] != kNoProc; }
  ProcId proc(NodeId n) const { return proc_[n]; }
  Time start(NodeId n) const { return start_[n]; }
  Time finish(NodeId n) const { return start_[n] + graph_->weight(n); }

  /// Number of processor timelines allocated (>= highest placed proc + 1).
  int num_procs() const { return static_cast<int>(timelines_.size()); }

  /// Processors actually holding at least one task.
  int procs_used() const;

  /// Max finish time over placed tasks (0 when nothing is placed).
  Time makespan() const;

  /// Earliest feasible start of a `dur` block on p at/after `ready`.
  Time earliest_start_on(ProcId p, Time ready, Cost dur, bool insertion) const;

  /// Busy intervals of processor p, sorted by start (owner = NodeId).
  const Timeline& timeline(ProcId p) const { return timelines_[p]; }

  /// True when every task of the graph has been placed.
  bool complete() const { return placed_count_ == graph_->num_nodes(); }

  std::size_t placed_count() const { return placed_count_; }

  /// Data-ready time of task n on processor p under the fully-connected
  /// model: max over placed parents of FT(parent) + (same-proc ? 0 : c).
  /// Unplaced parents are ignored (callers schedule in precedence order).
  Time data_ready(NodeId n, ProcId p) const;

  /// Convenience: earliest start of task n on p = fit(data_ready, w(n)).
  Time est(NodeId n, ProcId p, bool insertion) const;

 private:
  void ensure_proc(ProcId p);

  const TaskGraph* graph_;
  std::vector<Timeline> timelines_;
  std::vector<ProcId> proc_;
  std::vector<Time> start_;
  std::size_t placed_count_ = 0;
};

}  // namespace tgs
