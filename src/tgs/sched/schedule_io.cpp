#include "tgs/sched/schedule_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tgs {

void write_schedule(std::ostream& os, const Schedule& s) {
  os << "tgssched1 " << s.graph().num_nodes() << ' ' << s.makespan() << '\n';
  for (NodeId n = 0; n < s.graph().num_nodes(); ++n) {
    if (!s.is_placed(n))
      throw std::invalid_argument("cannot serialize incomplete schedule");
    os << "task " << n << ' ' << s.proc(n) << ' ' << s.start(n) << '\n';
  }
}

std::string schedule_to_string(const Schedule& s) {
  std::ostringstream os;
  write_schedule(os, s);
  return os.str();
}

Schedule read_schedule(std::istream& is, const TaskGraph& g) {
  std::string line, magic;
  NodeId count = 0;
  Time makespan = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream hs(line);
    if (!(hs >> magic >> count >> makespan) || magic != "tgssched1")
      throw std::invalid_argument("bad tgssched1 header: " + line);
    break;
  }
  if (magic != "tgssched1")
    throw std::invalid_argument("missing tgssched1 header");
  if (count != g.num_nodes())
    throw std::invalid_argument("schedule/graph node count mismatch");

  Schedule s(g);
  NodeId seen = 0;
  while (seen < count && std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    NodeId n;
    ProcId p;
    Time start;
    if (!(ls >> kind >> n >> p >> start) || kind != "task")
      throw std::invalid_argument("bad task line: " + line);
    if (n >= count) throw std::invalid_argument("task id out of range");
    s.place(n, p, start);  // throws on double placement / overlap
    ++seen;
  }
  if (seen != count) throw std::invalid_argument("truncated tgssched1 stream");
  return s;
}

Schedule schedule_from_string(const std::string& text, const TaskGraph& g) {
  std::istringstream is(text);
  return read_schedule(is, g);
}

void save_schedule(const std::string& path, const Schedule& s) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  write_schedule(f, s);
}

Schedule load_schedule(const std::string& path, const TaskGraph& g) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  return read_schedule(f, g);
}

}  // namespace tgs
