#include "tgs/sched/scheduler.h"

#include <stdexcept>

namespace tgs {

Schedule Scheduler::run(const TaskGraph& g, const SchedOptions& opt) const {
  SchedWorkspace ws;
  ws.begin_graph(g);
  return do_run(g, opt, ws);
}

Schedule Scheduler::run(const TaskGraph& g, const SchedOptions& opt,
                        SchedWorkspace& ws) const {
  if (ws.graph() != &g)
    throw std::logic_error(
        "SchedWorkspace not bound to this graph; call begin_graph() first");
  return do_run(g, opt, ws);
}

const char* algo_class_name(AlgoClass c) {
  switch (c) {
    case AlgoClass::kBNP: return "BNP";
    case AlgoClass::kUNC: return "UNC";
    case AlgoClass::kAPN: return "APN";
  }
  return "?";
}

int effective_procs(const TaskGraph& g, const SchedOptions& opt) {
  if (opt.num_procs > 0) return opt.num_procs;
  return static_cast<int>(g.num_nodes() == 0 ? 1 : g.num_nodes());
}

}  // namespace tgs
