#include "tgs/sched/scheduler.h"

namespace tgs {

const char* algo_class_name(AlgoClass c) {
  switch (c) {
    case AlgoClass::kBNP: return "BNP";
    case AlgoClass::kUNC: return "UNC";
    case AlgoClass::kAPN: return "APN";
  }
  return "?";
}

int effective_procs(const TaskGraph& g, const SchedOptions& opt) {
  if (opt.num_procs > 0) return opt.num_procs;
  return static_cast<int>(g.num_nodes() == 0 ? 1 : g.num_nodes());
}

}  // namespace tgs
