// BU -- Bottom-Up scheduling (Mehdiratta & Ghose, 1994; paper ref [25]).
//
// Classification: APN, two-phase. Phase 1 walks the DAG BOTTOM-UP (reverse
// topological order, exits first) assigning each node to a processor that
// minimizes the communication pull toward its already-assigned children --
// the cost of each child edge weighted by the routed hop distance -- with
// accumulated load as the tie-breaker, so heavy subtrees coalesce near
// their consumers. Phase 2 runs the deterministic fixed-assignment network
// list scheduler (descending b-level, real message routing) to produce
// start times. The paper finds BU the fastest APN algorithm but weak on
// schedule quality for large graphs, which this two-phase structure
// (assignment never revisited) reproduces.
#pragma once

#include "tgs/apn/apn_common.h"

namespace tgs {

class BuScheduler final : public ApnScheduler {
 public:
  std::string name() const override { return "BU"; }

 protected:
  NetSchedule do_run(const TaskGraph& g, const RoutingTable& routes,
                     SchedWorkspace& ws) const override;
};

}  // namespace tgs
