#include "tgs/apn/apn_common.h"

#include <algorithm>
#include <stdexcept>

#include "tgs/unc/cluster_schedule.h"

namespace tgs {

NetSchedule ApnScheduler::run(const TaskGraph& g,
                              const RoutingTable& routes) const {
  SchedWorkspace ws;
  ws.begin_graph(g);
  return do_run(g, routes, ws);
}

NetSchedule ApnScheduler::run(const TaskGraph& g, const RoutingTable& routes,
                              SchedWorkspace& ws) const {
  if (ws.graph() != &g)
    throw std::logic_error(
        "SchedWorkspace not bound to this graph; call begin_graph() first");
  return do_run(g, routes, ws);
}

Time apn_probe_est(const NetSchedule& ns, NodeId n, int p, bool insertion) {
  const TaskGraph& g = ns.graph();
  const Schedule& s = ns.tasks();
  Time ready = 0;
  for (const Adj& par : g.parents(n)) {
    const Time ft = s.finish(par.node);
    const int q = s.proc(par.node);
    const Time arrival =
        q == p ? ft : ns.probe_arrival(q, p, par.cost, ft);
    ready = std::max(ready, arrival);
  }
  return s.earliest_start_on(p, ready, g.weight(n), insertion);
}

void apn_probe_ready_all(const NetSchedule& ns, NodeId n,
                         ApnSweepScratch& scratch) {
  const TaskGraph& g = ns.graph();
  const Schedule& s = ns.tasks();
  const std::size_t nprocs =
      static_cast<std::size_t>(ns.topology().num_procs());
  scratch.arrival.resize(nprocs);
  scratch.ready.assign(nprocs, 0);
  for (const Adj& par : g.parents(n)) {
    const Time ft = s.finish(par.node);
    ns.probe_arrival_all(s.proc(par.node), par.cost, ft, scratch.arrival);
    for (std::size_t p = 0; p < nprocs; ++p)
      scratch.ready[p] = std::max(scratch.ready[p], scratch.arrival[p]);
  }
}

void apn_probe_est_all(const NetSchedule& ns, NodeId n, bool insertion,
                       ApnSweepScratch& scratch) {
  apn_probe_ready_all(ns, n, scratch);
  const Schedule& s = ns.tasks();
  const std::size_t nprocs =
      static_cast<std::size_t>(ns.topology().num_procs());
  scratch.est.resize(nprocs);
  for (std::size_t p = 0; p < nprocs; ++p)
    scratch.est[p] = s.earliest_start_on(static_cast<ProcId>(p),
                                         scratch.ready[p],
                                         ns.graph().weight(n), insertion);
}

Time apn_commit_node(NetSchedule& ns, NodeId n, int p, bool insertion) {
  const TaskGraph& g = ns.graph();
  Schedule& s = ns.tasks();
  Time ready = 0;
  for (const Adj& par : g.parents(n)) {
    const int q = s.proc(par.node);
    const Time arrival = q == p ? s.finish(par.node)
                                : ns.commit_message(par.node, n, p);
    ready = std::max(ready, arrival);
  }
  const Time start = s.earliest_start_on(p, ready, g.weight(n), insertion);
  s.place(n, p, start);
  return start;
}

NetSchedule apn_build_with_assignment(const TaskGraph& g,
                                      const RoutingTable& routes,
                                      const std::vector<ProcId>& assign,
                                      bool insertion) {
  if (assign.size() != static_cast<std::size_t>(g.num_nodes()))
    throw std::invalid_argument(
        "apn_build_with_assignment: assignment size != graph node count");
  NetSchedule ns(g, routes);
  for (NodeId n : blevel_order(g))
    apn_commit_node(ns, n, assign[n], insertion);
  return ns;
}

ApnMigrationEngine::ApnMigrationEngine(NetSchedule& ns,
                                       std::vector<ProcId>& assign,
                                       bool insertion,
                                       ApnMigrationScratch& scratch)
    : ns_(&ns), assign_(&assign), scratch_(&scratch), insertion_(insertion) {
  const TaskGraph& g = ns.graph();
  if (assign.size() != static_cast<std::size_t>(g.num_nodes()))
    throw std::invalid_argument(
        "ApnMigrationEngine: assignment size != graph node count");
  ApnMigrationScratch& sc = *scratch_;
  sc.order = blevel_order(g);
  sc.pos.assign(g.num_nodes(), 0);
  for (std::size_t i = 0; i < sc.order.size(); ++i)
    sc.pos[sc.order[i]] = static_cast<std::int32_t>(i);
  sc.node_touched.assign(g.num_nodes(), 0);
  sc.forced.assign(g.num_nodes(), 0);
  sc.snap_idx.assign(g.num_nodes(), -1);
  sc.proc_floor.assign(
      static_cast<std::size_t>(ns.topology().num_procs()), kTimeInf);
  sc.link_floor.assign(
      static_cast<std::size_t>(ns.topology().num_links()), kTimeInf);
}

void ApnMigrationEngine::release_commit(NodeId x, std::vector<Message>* stolen) {
  const TaskGraph& g = ns_->graph();
  Schedule& tasks = ns_->tasks();
  const ProcId xp = tasks.proc(x);
  for (const Adj& par : g.parents(x)) {
    if ((*assign_)[par.node] == xp && par.node != migrated_node_) continue;
    if (stolen != nullptr)
      ns_->take_message(par.node, x, *stolen);
    else
      ns_->release_message(par.node, x);
  }
  tasks.unplace(x);
}

Time ApnMigrationEngine::apply(NodeId n, ProcId p) {
  if (pending_)
    throw std::logic_error(
        "ApnMigrationEngine::apply with an unresolved migration");
  const TaskGraph& g = ns_->graph();
  const RoutingTable& routes = ns_->routes();
  ApnMigrationScratch& sc = *scratch_;
  std::vector<ProcId>& assign = *assign_;
  Schedule& tasks = ns_->tasks();

  pending_ = true;
  migrated_node_ = n;
  old_proc_ = assign[n];
  assign[n] = p;

  std::fill(sc.node_touched.begin(), sc.node_touched.end(), 0);
  std::fill(sc.forced.begin(), sc.forced.end(), 0);
  std::fill(sc.snap_idx.begin(), sc.snap_idx.end(), -1);
  std::fill(sc.proc_floor.begin(), sc.proc_floor.end(), kTimeInf);
  std::fill(sc.link_floor.begin(), sc.link_floor.end(), kTimeInf);
  sc.affected.clear();
  sc.snaps.clear();
  sc.saved_msgs.clear();

  bool proc_div = false;  // any proc_floor set this apply
  bool link_div = false;  // any link_floor set this apply
  std::size_t forced_pending = 1;
  sc.forced[n] = 1;
  changed_ = 0;

  // Snapshot x's commit and drop it in one pass: the released messages
  // are MOVED into the snapshot arena (take_message) rather than copied
  // and discarded -- one keyed lookup per message, zero hops-buffer
  // allocations. A node is snapshotted iff it has been released, so a
  // fresh snapshot always sees x placed.
  const auto snapshot_release = [&](NodeId x) {
    if (sc.snap_idx[x] >= 0) return;
    sc.snap_idx[x] = static_cast<std::int32_t>(sc.snaps.size());
    sc.snaps.push_back({x, tasks.proc(x), tasks.start(x),
                        static_cast<std::int32_t>(sc.saved_msgs.size()), 0});
    release_commit(x, &sc.saved_msgs);
    sc.snaps.back().msg_end =
        static_cast<std::int32_t>(sc.saved_msgs.size());
  };

  // Evict a later-position node whose stale reservation sits inside a fit
  // window: snapshot + drop its commit, and force a recommit when the
  // scan reaches its position.
  const auto evict = [&](NodeId x) {
    snapshot_release(x);
    if (!sc.forced[x]) {
      sc.forced[x] = 1;
      ++forced_pending;
    }
  };

  for (std::size_t i = static_cast<std::size_t>(sc.pos[n]);
       i < sc.order.size(); ++i) {
    // Nothing diverged and no eviction outstanding: every later commit
    // reads exactly its pre-apply inputs and the scan can stop.
    if (!proc_div && !link_div && forced_pending == 0) break;
    const NodeId m = sc.order[i];
    const ProcId mp = assign[m];

    bool examine = sc.forced[m] != 0;
    bool walk = false;
    if (!examine) {
      for (const Adj& par : g.parents(m)) {
        if (!sc.node_touched[par.node]) continue;
        // A touched cross parent invalidates the message record itself
        // (depart_after embeds FT(parent); a moved parent changes the
        // route); a same-proc finish shift only moves the ready time.
        // Only the migrated node can own a stale same-proc message.
        if (assign[par.node] != mp ||
            (par.node == n && ns_->find_message(n, m) != nullptr)) {
          examine = true;
          break;
        }
        walk = true;
      }
    }
    if (!examine && link_div) {
      // Conservative on links: every hop of m's messages ends at or below
      // its finish, so a route link whose divergence floor is above FT(m)
      // cannot re-route anything. Route lookups only -- no hash probes.
      const Time fm = tasks.finish(m);
      for (const Adj& par : g.parents(m)) {
        if (par.cost <= 0 || assign[par.node] == mp) continue;
        for (std::int32_t l : routes.path_links(assign[par.node], mp)) {
          if (sc.link_floor[l] < fm) {
            examine = true;
            break;
          }
        }
        if (examine) break;
      }
    }
    if (!examine && !walk && proc_div &&
        sc.proc_floor[mp] < tasks.finish(m))
      walk = true;
    if (!examine && walk) {
      if (!insertion_) {
        examine = true;  // append-mode fits have no counterfactual walk
      } else {
        // Exact check: would m land below its current start in the rebuilt
        // prefix state (skipping its own interval and not-yet-recommitted
        // later positions)? Identical landing => identical commit, skip.
        // The walk is clamped at the current start: prefix recommits never
        // overlap m's old interval (they would have evicted it), so the
        // counterfactual fit can only be <= it -- unless the ready time
        // itself moved past it, which is a change outright.
        Time ready = 0;
        for (const Adj& par : g.parents(m)) {
          const Time arr = (assign[par.node] == mp || par.cost <= 0)
                               ? tasks.finish(par.node)
                               : ns_->find_message(par.node, m)->arrival;
          ready = std::max(ready, arr);
        }
        const Time cur = tasks.start(m);
        if (ready > cur) {
          examine = true;
        } else {
          const Time land = tasks.timeline(mp).earliest_fit_skip(
              ready, g.weight(m), cur, [&](std::int64_t owner) {
                return owner == static_cast<std::int64_t>(m) ||
                       static_cast<std::size_t>(
                           sc.pos[static_cast<std::size_t>(owner)]) > i;
              });
          if (land != cur) examine = true;
        }
      }
    }
    if (!examine) continue;

    // ---- Recommit m against the full-rebuild prefix state.
    snapshot_release(m);
    if (sc.forced[m]) {
      sc.forced[m] = 0;
      --forced_pending;
    }
    sc.affected.push_back(m);

    const Cost w = g.weight(m);
    Time start = 0;
    for (;;) {
      sc.polluters.clear();
      sc.laid.clear();
      Time ready = 0;
      bool polluted = false;
      for (const Adj& par : g.parents(m)) {
        if (assign[par.node] == mp) {
          ready = std::max(ready, tasks.finish(par.node));
          continue;
        }
        const Time depart = tasks.finish(par.node);
        Message msg{par.node, m, par.cost, depart, depart, {}};
        if (par.cost > 0) {
          Time t = depart;
          for (std::int32_t link : routes.path_links(assign[par.node], mp)) {
            const Time hop = ns_->link_timeline(link).earliest_fit(
                t, par.cost, /*insertion=*/true);
            ns_->link_timeline(link).any_interval_in(
                t, hop, [&](std::int64_t owner) {
                  const NodeId dst =
                      static_cast<NodeId>(owner & 0xffffffff);
                  if (static_cast<std::size_t>(sc.pos[dst]) > i)
                    sc.polluters.push_back(dst);
                  return false;
                });
            if (!sc.polluters.empty()) {
              polluted = true;
              break;
            }
            msg.hops.push_back({link, hop, hop + par.cost});
            t = hop + par.cost;
          }
          msg.arrival = t;
        }
        if (polluted) break;
        ready = std::max(ready, msg.arrival);
        ns_->restore_message(msg);  // commit at exactly these hops
        sc.laid.push_back(par.node);
      }
      if (!polluted) {
        start = tasks.earliest_start_on(mp, ready, w, insertion_);
        tasks.timeline(mp).any_interval_in(
            ready, start, [&](std::int64_t owner) {
              if (static_cast<std::size_t>(
                      sc.pos[static_cast<std::size_t>(owner)]) > i)
                sc.polluters.push_back(static_cast<NodeId>(owner));
              return false;
            });
        if (sc.polluters.empty()) {
          tasks.place(m, mp, start);
          break;
        }
      }
      // A stale later-position reservation influenced a fit: undo this
      // attempt's messages, evict the polluters, try again.
      for (NodeId src : sc.laid) ns_->release_message(src, m);
      for (NodeId x : sc.polluters) evict(x);
    }

    // ---- Record divergence of m's new commit vs its snapshot.
    const ApnMigrationScratch::NodeSnap snap = sc.snaps[sc.snap_idx[m]];
    if (snap.proc != mp || snap.start != start) {
      sc.node_touched[m] = 1;
      ++changed_;
      sc.proc_floor[snap.proc] =
          std::min(sc.proc_floor[snap.proc], snap.start);
      sc.proc_floor[mp] = std::min(sc.proc_floor[mp], start);
      proc_div = true;
    }
    // Old side: every snapshotted incoming message (keyed by its recorded
    // src -- the snapshot, not the current assignment, says what existed;
    // the migrated node's old messages were laid against its OLD proc).
    const auto note_hops = [&](const Message& msg) {
      for (const MsgHop& h : msg.hops) {
        sc.link_floor[h.link] = std::min(sc.link_floor[h.link], h.start);
        link_div = true;
      }
    };
    for (std::int32_t k = snap.msg_begin; k < snap.msg_end; ++k) {
      const Message& old = sc.saved_msgs[k];
      const Message* neu = ns_->find_message(old.src, m);
      bool same = neu != nullptr && old.depart_after == neu->depart_after &&
                  old.arrival == neu->arrival &&
                  old.hops.size() == neu->hops.size();
      for (std::size_t h = 0; same && h < old.hops.size(); ++h)
        same = old.hops[h].link == neu->hops[h].link &&
               old.hops[h].start == neu->hops[h].start &&
               old.hops[h].end == neu->hops[h].end;
      if (same) continue;
      note_hops(old);
      if (neu != nullptr) note_hops(*neu);
    }
    // New side without an old counterpart: cross parents by the current
    // assignment whose message is brand new (co-located before the apply).
    for (const Adj& par : g.parents(m)) {
      if (assign[par.node] == mp) continue;
      bool had_old = false;
      for (std::int32_t k = snap.msg_begin; !had_old && k < snap.msg_end; ++k)
        had_old = sc.saved_msgs[k].src == par.node;
      if (had_old) continue;
      if (const Message* neu = ns_->find_message(par.node, m))
        note_hops(*neu);
    }
  }
  return ns_->makespan();
}

void ApnMigrationEngine::commit() {
  if (!pending_)
    throw std::logic_error("ApnMigrationEngine::commit without apply");
  pending_ = false;
}

void ApnMigrationEngine::rollback() {
  if (!pending_)
    throw std::logic_error("ApnMigrationEngine::rollback without apply");
  ApnMigrationScratch& sc = *scratch_;
  // Drop every recommitted node first (new reservations may overlap old
  // ones of a different affected node), then restore the snapshot; the
  // old intervals are mutually consistent, so restore order is free.
  for (NodeId m : sc.affected) release_commit(m, nullptr);
  Schedule& tasks = ns_->tasks();
  for (const ApnMigrationScratch::NodeSnap& s : sc.snaps)
    tasks.place(s.node, s.proc, s.start);
  for (Message& msg : sc.saved_msgs) ns_->restore_message(std::move(msg));
  (*assign_)[migrated_node_] = old_proc_;
  pending_ = false;
}

}  // namespace tgs
