#include "tgs/apn/apn_common.h"

#include <algorithm>
#include <stdexcept>

#include "tgs/unc/cluster_schedule.h"

namespace tgs {

NetSchedule ApnScheduler::run(const TaskGraph& g,
                              const RoutingTable& routes) const {
  SchedWorkspace ws;
  ws.begin_graph(g);
  return do_run(g, routes, ws);
}

NetSchedule ApnScheduler::run(const TaskGraph& g, const RoutingTable& routes,
                              SchedWorkspace& ws) const {
  if (ws.graph() != &g)
    throw std::logic_error(
        "SchedWorkspace not bound to this graph; call begin_graph() first");
  return do_run(g, routes, ws);
}

Time apn_probe_est(const NetSchedule& ns, NodeId n, int p, bool insertion) {
  const TaskGraph& g = ns.graph();
  const Schedule& s = ns.tasks();
  Time ready = 0;
  for (const Adj& par : g.parents(n)) {
    const Time ft = s.finish(par.node);
    const int q = s.proc(par.node);
    const Time arrival =
        q == p ? ft : ns.probe_arrival(q, p, par.cost, ft);
    ready = std::max(ready, arrival);
  }
  return s.earliest_start_on(p, ready, g.weight(n), insertion);
}

void apn_probe_ready_all(const NetSchedule& ns, NodeId n,
                         ApnSweepScratch& scratch) {
  const TaskGraph& g = ns.graph();
  const Schedule& s = ns.tasks();
  const std::size_t nprocs =
      static_cast<std::size_t>(ns.topology().num_procs());
  scratch.arrival.resize(nprocs);
  scratch.ready.assign(nprocs, 0);
  for (const Adj& par : g.parents(n)) {
    const Time ft = s.finish(par.node);
    ns.probe_arrival_all(s.proc(par.node), par.cost, ft, scratch.arrival);
    for (std::size_t p = 0; p < nprocs; ++p)
      scratch.ready[p] = std::max(scratch.ready[p], scratch.arrival[p]);
  }
}

void apn_probe_est_all(const NetSchedule& ns, NodeId n, bool insertion,
                       ApnSweepScratch& scratch) {
  apn_probe_ready_all(ns, n, scratch);
  const Schedule& s = ns.tasks();
  const std::size_t nprocs =
      static_cast<std::size_t>(ns.topology().num_procs());
  scratch.est.resize(nprocs);
  for (std::size_t p = 0; p < nprocs; ++p)
    scratch.est[p] = s.earliest_start_on(static_cast<ProcId>(p),
                                         scratch.ready[p],
                                         ns.graph().weight(n), insertion);
}

Time apn_commit_node(NetSchedule& ns, NodeId n, int p, bool insertion) {
  const TaskGraph& g = ns.graph();
  Schedule& s = ns.tasks();
  Time ready = 0;
  for (const Adj& par : g.parents(n)) {
    const int q = s.proc(par.node);
    const Time arrival = q == p ? s.finish(par.node)
                                : ns.commit_message(par.node, n, p);
    ready = std::max(ready, arrival);
  }
  const Time start = s.earliest_start_on(p, ready, g.weight(n), insertion);
  s.place(n, p, start);
  return start;
}

NetSchedule apn_build_with_assignment(const TaskGraph& g,
                                      const RoutingTable& routes,
                                      const std::vector<ProcId>& assign,
                                      bool insertion) {
  NetSchedule ns(g, routes);
  for (NodeId n : blevel_order(g))
    apn_commit_node(ns, n, assign[n], insertion);
  return ns;
}

}  // namespace tgs
