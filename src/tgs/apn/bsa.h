// BSA -- Bubble Scheduling and Allocation (Kwok & Ahmad; paper ref [2]).
//
// Classification: APN, incremental migration. The whole graph is first
// serially injected onto a single pivot processor (the one with the most
// links) in descending b-level order. Processors are then visited in
// breadth-first order from the pivot; each task on the current pivot tries
// to "bubble" to an adjacent processor when doing so strictly reduces its
// start time, with messages re-routed on the links. A migration that would
// lengthen the overall schedule is rolled back. The paper credits BSA's
// strength on large graphs to "an efficient scheduling of communication
// messages", which the explicit link re-routing reproduces.
//
// Implementation note: after every accepted migration the task + message
// schedule is deterministically rebuilt from the assignment (the original
// paper updates the schedule incrementally; rebuilding is equivalent for
// the final schedule and keeps link bookkeeping simple).
#pragma once

#include "tgs/apn/apn_common.h"

namespace tgs {

class BsaScheduler final : public ApnScheduler {
 public:
  std::string name() const override { return "BSA"; }

 protected:
  NetSchedule do_run(const TaskGraph& g, const RoutingTable& routes,
                     SchedWorkspace& ws) const override;
};

}  // namespace tgs
