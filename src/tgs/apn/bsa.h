// BSA -- Bubble Scheduling and Allocation (Kwok & Ahmad; paper ref [2]).
//
// Classification: APN, incremental migration. The whole graph is first
// serially injected onto a single pivot processor (the one with the most
// links) in descending b-level order. Processors are then visited in
// breadth-first order from the pivot; each task on the current pivot tries
// to "bubble" to an adjacent processor when doing so strictly reduces its
// start time, with messages re-routed on the links. A migration that would
// lengthen the overall schedule is rolled back. The paper credits BSA's
// strength on large graphs to "an efficient scheduling of communication
// messages", which the explicit link re-routing reproduces.
//
// Implementation note: every tentative migration runs on the incremental
// ApnMigrationEngine (apn_common.h): only the affected downstream region
// of the fixed b-level commit order is released and recommitted, with a
// snapshot/rollback path for rejected migrations. The result is defined
// to be byte-identical to deterministically rebuilding the whole schedule
// from the assignment (the historical implementation, kept as the
// property-test reference in tests/reference_schedulers.h).
#pragma once

#include "tgs/apn/apn_common.h"

namespace tgs {

class BsaScheduler final : public ApnScheduler {
 public:
  std::string name() const override { return "BSA"; }

 protected:
  NetSchedule do_run(const TaskGraph& g, const RoutingTable& routes,
                     SchedWorkspace& ws) const override;
};

}  // namespace tgs
