// DLS(APN) -- Dynamic Level Scheduling on an arbitrary network (Sih & Lee,
// 1993; paper ref [31]).
//
// The APN form of DLS: dynamic level DL(n, p) = SL(n) - EST(n, p) where
// EST accounts for message routing and link contention (Sih & Lee's
// original targets exactly such interconnection-constrained machines).
// At every step the (ready node, processor) pair with the largest dynamic
// level wins. The exhaustive pair probing makes DLS the slowest APN
// algorithm in the paper's Table 6; its NSL is "relatively stable with
// respect to the graph size".
#pragma once

#include "tgs/apn/apn_common.h"

namespace tgs {

class DlsApnScheduler final : public ApnScheduler {
 public:
  std::string name() const override { return "DLS"; }

 protected:
  NetSchedule do_run(const TaskGraph& g, const RoutingTable& routes,
                     SchedWorkspace& ws) const override;
};

}  // namespace tgs
