#include "tgs/apn/bsa.h"

#include <algorithm>
#include <queue>

namespace tgs {

NetSchedule BsaScheduler::do_run(const TaskGraph& g, const RoutingTable& routes,
                                 SchedWorkspace& ws) const {
  const Topology& topo = routes.topology();
  const int pivot0 = topo.max_degree_proc();

  // Serial injection: everything on the first pivot.
  std::vector<ProcId> assign(g.num_nodes(), static_cast<ProcId>(pivot0));
  NetSchedule ns = apn_build_with_assignment(g, routes, assign, /*insertion=*/true);
  ApnMigrationEngine engine(ns, assign, /*insertion=*/true,
                            ws.migration_scratch());

  // Breadth-first pivot order from pivot0 (neighbours ascend by id).
  std::vector<int> pivots;
  {
    std::vector<bool> seen(topo.num_procs(), false);
    std::queue<int> q;
    q.push(pivot0);
    seen[pivot0] = true;
    while (!q.empty()) {
      const int p = q.front();
      q.pop();
      pivots.push_back(p);
      for (const Topology::Neighbor& nb : topo.neighbors(p)) {
        if (!seen[nb.proc]) {
          seen[nb.proc] = true;
          q.push(nb.proc);
        }
      }
    }
  }

  for (int pivot : pivots) {
    // Tasks currently on the pivot, in start-time order (a snapshot:
    // migrations mutate the timeline).
    std::vector<NodeId> on_pivot;
    for (const Interval& iv : ns.tasks().timeline(pivot).intervals())
      on_pivot.push_back(static_cast<NodeId>(iv.owner));

    for (NodeId n : on_pivot) {
      ws.deadline().poll();
      if (ns.tasks().proc(n) != pivot) continue;  // already bubbled away
      const Time cur_start = ns.tasks().start(n);

      // Best adjacent processor by probed start time: one one-to-all
      // arrival sweep, then ESTs for just the pivot's neighbours
      // (bit-identical to per-neighbour apn_probe_est).
      ApnSweepScratch& scratch = ws.apn_scratch();
      apn_probe_ready_all(ns, n, scratch);
      int best_p = -1;
      Time best_est = cur_start;
      for (const Topology::Neighbor& nb : topo.neighbors(pivot)) {
        const Time est = ns.tasks().earliest_start_on(
            nb.proc, scratch.ready[nb.proc], g.weight(n), /*insertion=*/true);
        if (est < best_est) {
          best_est = est;
          best_p = nb.proc;
        }
      }
      if (best_p < 0) continue;

      // Tentatively migrate (incremental release/recommit of only the
      // affected downstream region; byte-identical to a full rebuild
      // with the updated assignment) and roll back if the overall
      // schedule suffers.
      //
      // Tie rule: an EQUAL-makespan migration is accepted (<=, not <).
      // The task still moves even though the schedule as a whole gained
      // nothing -- its own start improved (the probe gate above is
      // strict), which is what lets later tasks bubble through the freed
      // pivot slot. The goldens (test_apn.cpp mesh23, the JSONL
      // snapshots) and Bsa.EqualMakespanMigrationIsAccepted pin this;
      // changing <= to < is a behaviour change, not a cleanup.
      const Time before = ns.makespan();
      const Time after = engine.apply(n, static_cast<ProcId>(best_p));
      if (after <= before) {
        engine.commit();
      } else {
        engine.rollback();
      }
    }
  }
  return ns;
}

}  // namespace tgs
