#include "tgs/apn/bu.h"

#include <algorithm>

namespace tgs {

NetSchedule BuScheduler::do_run(const TaskGraph& g, const RoutingTable& routes,
                                SchedWorkspace& ws) const {
  const Topology& topo = routes.topology();
  const int nprocs = topo.num_procs();

  // Phase 1: bottom-up assignment. Children are assigned before parents;
  // score(p) = sum over assigned children of c(n, child) * hops(p, child's
  // proc), ties by smaller accumulated load, then smaller processor id.
  std::vector<ProcId> assign(g.num_nodes(), 0);
  std::vector<Cost> load(nprocs, 0);
  const auto& topo_order = g.topological_order();
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    ws.deadline().poll();
    const NodeId n = *it;
    ProcId best_p = 0;
    Cost best_pull = -1;
    Cost best_load = 0;
    for (int p = 0; p < nprocs; ++p) {
      Cost pull = 0;
      for (const Adj& c : g.children(n))
        pull += c.cost * routes.distance(p, assign[c.node]);
      if (best_pull < 0 || pull < best_pull ||
          (pull == best_pull && load[p] < best_load)) {
        best_p = p;
        best_pull = pull;
        best_load = load[p];
      }
    }
    assign[n] = best_p;
    load[best_p] += g.weight(n);
  }

  // Phase 2: materialize with real message routing.
  return apn_build_with_assignment(g, routes, assign, /*insertion=*/false);
}

}  // namespace tgs
