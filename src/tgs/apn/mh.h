// MH -- Mapping Heuristic (El-Rewini & Lewis, 1990; paper ref [14]).
//
// Classification: APN, static list, non-CP-based, greedy. List scheduling
// in descending b-level order; each node goes to the processor that
// minimizes its start time, where the start time accounts for message
// routing delays and link contention via the routing table (probed against
// current link reservations, then committed). Tasks append (non-insertion).
// The paper observes MH "yields fairly long schedule lengths for large
// graphs" -- its static priorities cannot react to congestion discovered
// during scheduling.
#pragma once

#include "tgs/apn/apn_common.h"

namespace tgs {

class MhScheduler final : public ApnScheduler {
 public:
  std::string name() const override { return "MH"; }

 protected:
  NetSchedule do_run(const TaskGraph& g, const RoutingTable& routes,
                     SchedWorkspace& ws) const override;
};

}  // namespace tgs
