#include "tgs/apn/dls_apn.h"

#include "tgs/bnp/bnp_common.h"
#include "tgs/list/ready_list.h"

namespace tgs {

// Incremental pair selection under link contention. Unlike the BNP case,
// committing a node routes messages over shared links, so a placement can
// delay a cached EST on ANY processor -- exact invalidation is impossible
// without re-probing. What does hold is monotonicity: link and processor
// reservations only ever grow during this algorithm (nothing is released),
// and occupying a timeline never makes earliest_fit earlier. A cached EST
// is therefore a lower bound on the current EST, i.e. a cached dynamic
// level DL = SL - EST is an upper bound.
//
// That licenses lazy confirmation: pick the argmax over cached DLs, then
// re-probe just that node. If its value is unchanged it beats every other
// node's upper bound, so it is the true argmax (the comparator is a strict
// total order -- node id breaks ties -- and rivals can only have gotten
// worse); otherwise update the cache and re-pick. Each ready node is
// probed at most once per step, against the naive O(ready x procs) probes
// per step, and the selected (node, processor, start) sequence is
// byte-identical to the exhaustive scan.
NetSchedule DlsApnScheduler::do_run(const TaskGraph& g,
                                    const RoutingTable& routes,
                                    SchedWorkspace& ws) const {
  const std::vector<Time>& sl = ws.attrs().static_levels();
  NetSchedule ns(g, routes);
  const int nprocs = routes.topology().num_procs();
  ReadyList ready(g);

  PairScratch& scratch = ws.pair_scratch();
  scratch.bind(g.num_nodes());
  scratch.begin_run();

  // stamp[m] records how many nodes had been committed when m's cached
  // (proc, EST) was last probed: the cache is exact iff stamp[m] equals
  // the current commit count. Every ready node is stamped at admission,
  // so stale values from earlier runs are never consulted.
  std::uint64_t commits = 0;
  ApnSweepScratch& sweep = ws.apn_scratch();
  const auto rescore = [&](NodeId m) {
    // One one-to-all sweep scores every processor (bit-identical to the
    // per-processor apn_probe_est loop; strict < keeps smallest-id ties).
    apn_probe_est_all(ns, m, /*insertion=*/false, sweep);
    ProcChoice pc{0, kTimeInf};
    for (int p = 0; p < nprocs; ++p) {
      if (sweep.est[p] < pc.start) pc = {static_cast<ProcId>(p), sweep.est[p]};
    }
    scratch.best[m] = pc;
    scratch.stamp[m] = commits;
  };
  for (NodeId n : ready.ready()) rescore(n);

  while (!ready.empty()) {
    ws.deadline().poll();
    NodeId best_n;
    while (true) {
      best_n = kNoNode;
      Time best_dl = 0;
      Time best_est = 0;
      for (NodeId m : ready.ready()) {
        const Time est = scratch.best[m].start;
        const Time dl = sl[m] - est;
        const bool better =
            best_n == kNoNode || dl > best_dl ||
            (dl == best_dl &&
             (est < best_est || (est == best_est && m < best_n)));
        if (better) {
          best_n = m;
          best_dl = dl;
          best_est = est;
        }
      }
      if (scratch.stamp[best_n] == commits) break;  // cache already exact
      const Time cached = scratch.best[best_n].start;
      rescore(best_n);
      if (scratch.best[best_n].start == cached) break;
    }
    apn_commit_node(ns, best_n, scratch.best[best_n].proc,
                    /*insertion=*/false);
    ++commits;
    ready.mark_scheduled(best_n);
    for (const Adj& c : g.children(best_n))
      if (ready.is_ready(c.node)) rescore(c.node);
  }
  return ns;
}

}  // namespace tgs
