#include "tgs/apn/dls_apn.h"

#include "tgs/graph/attributes.h"
#include "tgs/list/ready_list.h"

namespace tgs {

NetSchedule DlsApnScheduler::run(const TaskGraph& g,
                                 const RoutingTable& routes) const {
  const std::vector<Time> sl = static_levels(g);
  NetSchedule ns(g, routes);
  const int nprocs = routes.topology().num_procs();
  ReadyList ready(g);

  while (!ready.empty()) {
    NodeId best_n = kNoNode;
    int best_p = 0;
    Time best_dl = 0;
    Time best_est = 0;
    for (NodeId m : ready.ready()) {
      for (int p = 0; p < nprocs; ++p) {
        const Time est = apn_probe_est(ns, m, p, /*insertion=*/false);
        const Time dl = sl[m] - est;
        const bool better =
            best_n == kNoNode || dl > best_dl ||
            (dl == best_dl &&
             (est < best_est || (est == best_est && m < best_n)));
        if (better) {
          best_n = m;
          best_p = p;
          best_dl = dl;
          best_est = est;
        }
      }
    }
    apn_commit_node(ns, best_n, best_p, /*insertion=*/false);
    ready.mark_scheduled(best_n);
  }
  return ns;
}

}  // namespace tgs
