#include "tgs/apn/mh.h"

#include "tgs/unc/cluster_schedule.h"

namespace tgs {

NetSchedule MhScheduler::do_run(const TaskGraph& g, const RoutingTable& routes,
                                SchedWorkspace& ws) const {
  (void)ws;
  NetSchedule ns(g, routes);
  const int nprocs = routes.topology().num_procs();
  // Descending b-level is a topological order, so parents are always placed
  // before their children.
  for (NodeId n : blevel_order(g)) {
    int best_p = 0;
    Time best_t = kTimeInf;
    for (int p = 0; p < nprocs; ++p) {
      const Time t = apn_probe_est(ns, n, p, /*insertion=*/false);
      if (t < best_t) {
        best_t = t;
        best_p = p;
      }
    }
    apn_commit_node(ns, n, best_p, /*insertion=*/false);
  }
  return ns;
}

}  // namespace tgs
