#include "tgs/apn/mh.h"

#include "tgs/unc/cluster_schedule.h"

namespace tgs {

NetSchedule MhScheduler::do_run(const TaskGraph& g, const RoutingTable& routes,
                                SchedWorkspace& ws) const {
  NetSchedule ns(g, routes);
  const int nprocs = routes.topology().num_procs();
  ApnSweepScratch& scratch = ws.apn_scratch();
  // Descending b-level is a topological order, so parents are always placed
  // before their children.
  for (NodeId n : blevel_order(g)) {
    ws.deadline().poll();
    // One one-to-all sweep replaces the per-processor probes: est[p] is
    // bit-identical to apn_probe_est(ns, n, p), so the strict < argmin
    // keeps the smallest-id tie-break.
    apn_probe_est_all(ns, n, /*insertion=*/false, scratch);
    int best_p = 0;
    Time best_t = kTimeInf;
    for (int p = 0; p < nprocs; ++p) {
      if (scratch.est[p] < best_t) {
        best_t = scratch.est[p];
        best_p = p;
      }
    }
    apn_commit_node(ns, n, best_p, /*insertion=*/false);
  }
  return ns;
}

}  // namespace tgs
