// Shared machinery of the APN (arbitrary processor network) algorithms:
// the ApnScheduler interface, (node, processor) EST probes against the
// current link state, node commitment with real message routing, and the
// fixed-assignment network list scheduler that BU and BSA build on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tgs/net/net_schedule.h"
#include "tgs/net/routing.h"
#include "tgs/sched/workspace.h"

namespace tgs {

class ApnScheduler {
 public:
  virtual ~ApnScheduler() = default;

  virtual std::string name() const = 0;

  /// Produce a complete task + message schedule on the routed topology
  /// with a private, freshly allocated workspace. Deterministic for equal
  /// inputs.
  NetSchedule run(const TaskGraph& g, const RoutingTable& routes) const;

  /// Same, but reusing the caller's workspace (`ws` must be bound to `g`
  /// via begin_graph(); throws std::logic_error otherwise). Bit-identical
  /// to the fresh-workspace overload.
  NetSchedule run(const TaskGraph& g, const RoutingTable& routes,
                  SchedWorkspace& ws) const;

 protected:
  virtual NetSchedule do_run(const TaskGraph& g, const RoutingTable& routes,
                             SchedWorkspace& ws) const = 0;
};

using ApnSchedulerPtr = std::unique_ptr<ApnScheduler>;

/// Earliest start time of ready node `n` (all parents placed) on processor
/// `p`, probing message routes against current link reservations without
/// committing them. Concurrent parent messages do not see each other in
/// the probe (exactness is restored at commit time).
Time apn_probe_est(const NetSchedule& ns, NodeId n, int p, bool insertion);

/// One-to-all data-ready times: fills scratch.ready[p] with the arrival
/// maximum over n's parents on every processor by composing each parent's
/// one-to-all routing-tree sweep (NetSchedule::probe_arrival_all) -- each
/// parent touches each tree link once instead of re-walking its route per
/// destination. Callers that only score a few processors (BSA's neighbour
/// scan) combine this with Schedule::earliest_start_on themselves.
void apn_probe_ready_all(const NetSchedule& ns, NodeId n,
                         ApnSweepScratch& scratch);

/// One-to-all variant: fills scratch.est[p] == apn_probe_est(ns, n, p,
/// insertion) for EVERY processor on top of apn_probe_ready_all.
/// Bit-identical to the per-processor probe; the full processor scans
/// (MH, DLS(APN) rescore) read one sweep.
void apn_probe_est_all(const NetSchedule& ns, NodeId n, bool insertion,
                       ApnSweepScratch& scratch);

/// Commit node `n` to processor `p`: routes one message per cross-processor
/// parent edge (in ascending parent id), then places the task at the
/// earliest feasible start. Returns the start time.
Time apn_commit_node(NetSchedule& ns, NodeId n, int p, bool insertion);

/// Deterministically materialize a complete NetSchedule from a fixed
/// node -> processor assignment: tasks in descending b-level order,
/// messages committed per node as above. Throws std::invalid_argument
/// unless assign.size() == g.num_nodes() (tgs_serve feeds user-supplied
/// graphs into this path; a short vector must not become an OOB read).
NetSchedule apn_build_with_assignment(const TaskGraph& g,
                                      const RoutingTable& routes,
                                      const std::vector<ProcId>& assign,
                                      bool insertion);

/// Scratch state of ApnMigrationEngine, kept in SchedWorkspace so a BSA
/// run's O(v x degree) tentative migrations allocate nothing in steady
/// state. Capacity-only between applies; the snapshot pools hold live
/// data only while an apply() is pending.
struct ApnMigrationScratch {
  std::vector<NodeId> order;          // commit order (descending b-level)
  std::vector<std::int32_t> pos;      // node -> position in `order`
  std::vector<char> node_touched;     // recommit changed (proc or start)
  std::vector<char> forced;           // must recommit when the scan arrives
  std::vector<std::int32_t> snap_idx; // node -> index into snaps, -1
  std::vector<Time> proc_floor;       // earliest proc divergence (kTimeInf)
  std::vector<Time> link_floor;       // earliest link divergence (kTimeInf)
  std::vector<NodeId> affected;       // recommitted nodes, in commit order
  std::vector<NodeId> laid;           // parents routed in current attempt
  std::vector<NodeId> polluters;      // later-position owners in a window
  struct NodeSnap {                   // pre-apply commit of one node
    NodeId node;
    ProcId proc;
    Time start;
    std::int32_t msg_begin;           // incoming messages in saved_msgs
    std::int32_t msg_end;
  };
  std::vector<NodeSnap> snaps;
  std::vector<Message> saved_msgs;    // pre-apply incoming messages, moved
                                      // out of the store at release time
                                      // and moved back on rollback
};

/// Incremental single-node migration on an assignment-built NetSchedule.
///
/// Invariant: `ns` is byte-identical to apn_build_with_assignment(g,
/// routes, assign, insertion). apply(n, p) updates assign[n] = p and
/// transforms `ns` into the schedule a full rebuild with the new
/// assignment would produce -- without rebuilding. It exploits that the
/// commit order (descending b-level) and every node's target processor
/// are fixed, so the inputs of each commit are statically known: its
/// parents' finish times and the state of its processor / route-link
/// timelines below what it reads. One forward pass over the order from
/// n's position keeps, per resource, the earliest time at which the live
/// state diverges from the pre-apply state ("divergence floor"): a node
/// whose parents are untouched and whose resources are clean below its
/// own commit provably recommits byte-identically and is skipped without
/// touching it. When only its processor floor is hit, an exact
/// counterfactual fit (Timeline::earliest_fit_skip over the rebuilt
/// prefix, ignoring not-yet-recommitted later positions) decides whether
/// the task would actually move -- crowded-pivot gaps that a task cannot
/// use therefore do NOT cascade into whole-suffix rebuilds, and the
/// recommit set tracks the true byte-delta of the migration. (On BSA's
/// packed serial-injection schedules that delta is measured at 70-80%
/// of all nodes, so whole-run wall clock stays within a small factor of
/// rebuild-per-migration rather than far below it; docs/perf.md
/// quantifies this.) Nodes that do
/// change are snapshotted, released and recommitted in order; a recommit
/// whose fit window still contains a later-position node's stale
/// reservation evicts that node (it recommits when the scan reaches it)
/// and retries, so every fit sees exactly the full-rebuild prefix state.
///
/// Every apply() must be resolved by commit() (keep the migration) or
/// rollback() (restore byte-identical pre-apply state from the snapshot)
/// before the next apply().
class ApnMigrationEngine {
 public:
  /// Binds to a live schedule, its assignment (updated by apply/rollback)
  /// and a workspace scratch. `assign` and `ns` must stay alive and must
  /// only be mutated through the engine while it is in use.
  ApnMigrationEngine(NetSchedule& ns, std::vector<ProcId>& assign,
                     bool insertion, ApnMigrationScratch& scratch);

  /// Tentatively reassign node n to processor p. Returns the makespan of
  /// the updated schedule (== full-rebuild makespan).
  Time apply(NodeId n, ProcId p);

  /// Keep the pending migration.
  void commit();

  /// Undo the pending migration: restores assign[n] and byte-identical
  /// task + link state.
  void rollback();

  /// Nodes released + recommitted by the last apply() (diagnostics).
  std::size_t last_affected_count() const { return scratch_->affected.size(); }

  /// Recommitted nodes whose (proc, start) actually changed -- the genuine
  /// delta of the last apply() (diagnostics; <= last_affected_count()).
  std::size_t last_changed_count() const { return changed_; }

 private:
  /// Inverse of one node's commit, using the statically-known message set:
  /// only cross-processor parents (plus the migrated node, whose processor
  /// is ambiguous mid-apply) can hold a message record, so same-processor
  /// parents skip the hash probe release_node would pay. With `stolen`,
  /// released records are moved there (NetSchedule::take_message) instead
  /// of discarded -- the snapshot path keeps them for rollback.
  void release_commit(NodeId x, std::vector<Message>* stolen = nullptr);

  NetSchedule* ns_;
  std::vector<ProcId>* assign_;
  ApnMigrationScratch* scratch_;
  bool insertion_;
  bool pending_ = false;
  NodeId migrated_node_ = 0;
  ProcId old_proc_ = 0;
  std::size_t changed_ = 0;
};

}  // namespace tgs
