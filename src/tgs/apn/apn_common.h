// Shared machinery of the APN (arbitrary processor network) algorithms:
// the ApnScheduler interface, (node, processor) EST probes against the
// current link state, node commitment with real message routing, and the
// fixed-assignment network list scheduler that BU and BSA build on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tgs/net/net_schedule.h"
#include "tgs/net/routing.h"
#include "tgs/sched/workspace.h"

namespace tgs {

class ApnScheduler {
 public:
  virtual ~ApnScheduler() = default;

  virtual std::string name() const = 0;

  /// Produce a complete task + message schedule on the routed topology
  /// with a private, freshly allocated workspace. Deterministic for equal
  /// inputs.
  NetSchedule run(const TaskGraph& g, const RoutingTable& routes) const;

  /// Same, but reusing the caller's workspace (`ws` must be bound to `g`
  /// via begin_graph(); throws std::logic_error otherwise). Bit-identical
  /// to the fresh-workspace overload.
  NetSchedule run(const TaskGraph& g, const RoutingTable& routes,
                  SchedWorkspace& ws) const;

 protected:
  virtual NetSchedule do_run(const TaskGraph& g, const RoutingTable& routes,
                             SchedWorkspace& ws) const = 0;
};

using ApnSchedulerPtr = std::unique_ptr<ApnScheduler>;

/// Earliest start time of ready node `n` (all parents placed) on processor
/// `p`, probing message routes against current link reservations without
/// committing them. Concurrent parent messages do not see each other in
/// the probe (exactness is restored at commit time).
Time apn_probe_est(const NetSchedule& ns, NodeId n, int p, bool insertion);

/// One-to-all data-ready times: fills scratch.ready[p] with the arrival
/// maximum over n's parents on every processor by composing each parent's
/// one-to-all routing-tree sweep (NetSchedule::probe_arrival_all) -- each
/// parent touches each tree link once instead of re-walking its route per
/// destination. Callers that only score a few processors (BSA's neighbour
/// scan) combine this with Schedule::earliest_start_on themselves.
void apn_probe_ready_all(const NetSchedule& ns, NodeId n,
                         ApnSweepScratch& scratch);

/// One-to-all variant: fills scratch.est[p] == apn_probe_est(ns, n, p,
/// insertion) for EVERY processor on top of apn_probe_ready_all.
/// Bit-identical to the per-processor probe; the full processor scans
/// (MH, DLS(APN) rescore) read one sweep.
void apn_probe_est_all(const NetSchedule& ns, NodeId n, bool insertion,
                       ApnSweepScratch& scratch);

/// Commit node `n` to processor `p`: routes one message per cross-processor
/// parent edge (in ascending parent id), then places the task at the
/// earliest feasible start. Returns the start time.
Time apn_commit_node(NetSchedule& ns, NodeId n, int p, bool insertion);

/// Deterministically materialize a complete NetSchedule from a fixed
/// node -> processor assignment: tasks in descending b-level order,
/// messages committed per node as above.
NetSchedule apn_build_with_assignment(const TaskGraph& g,
                                      const RoutingTable& routes,
                                      const std::vector<ProcId>& assign,
                                      bool insertion);

}  // namespace tgs
