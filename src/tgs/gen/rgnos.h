// RGNOS -- Random Graphs with No known Optimal Solutions (paper §5.4).
//
// 250 graphs spanning three parameters:
//   size        v = 50..500 step 50,
//   CCR         {0.1, 0.5, 1.0, 2.0, 10.0},
//   parallelism {1..5}: the average WIDTH of the DAG is
//               parallelism * sqrt(v).
// Weights follow the RGBOS recipe. The generator is layered: nodes are
// grouped into layers whose sizes are drawn around the target width; every
// non-entry layer node gets one parent in the previous layer (giving the
// DAG its depth) and additional forward edges bring the fan-out to the
// target mean of v/10.
#pragma once

#include <cstdint>
#include <vector>

#include "tgs/graph/task_graph.h"

namespace tgs {

struct RgnosParams {
  NodeId num_nodes = 50;
  double ccr = 1.0;
  int parallelism = 3;  // width multiplier on sqrt(v)
  Cost mean_weight = 40;
  double fanout_divisor = 10;
  std::uint64_t seed = 1;
  /// Giant-tier scale path: when > 0, caps the mean extra fan-out per node
  /// at this value, so edge count is O(v * max_fanout) instead of the
  /// paper's O(v^2 / fanout_divisor) (mean v/10 per node is quadratic and
  /// intractable at v = 100k). 0 = the paper's original density; every
  /// existing graph is byte-identical in that mode.
  Cost max_fanout = 0;
};

TaskGraph rgnos_graph(const RgnosParams& params);

inline constexpr double kRgnosCcrs[] = {0.1, 0.5, 1.0, 2.0, 10.0};
inline constexpr int kRgnosParallelisms[] = {1, 2, 3, 4, 5};

/// All 25 (ccr, parallelism) combinations for one size. The paper's full
/// suite is this for each v in 50..500 step 50.
std::vector<TaskGraph> rgnos_size_suite(NodeId num_nodes, std::uint64_t seed);

}  // namespace tgs
