// Shared machinery of the random benchmark-graph generators (paper §5).
//
// The paper's recipe (RGBOS, §5.2, reused by RGNOS): node weights uniform
// with mean 40 (range [2, 78]); walking nodes in index order, each node
// draws a child count uniform with mean v/10 and connects to that many
// later nodes; edge weights uniform with mean 40 * CCR.
#pragma once

#include <cstdint>
#include <string>

#include "tgs/graph/task_graph.h"
#include "tgs/util/rng.h"

namespace tgs {

struct RandomDagParams {
  NodeId num_nodes = 50;
  Cost mean_weight = 40;      // node weight mean; range [2, 2*mean - 2]
  double ccr = 1.0;           // edge-weight mean = mean_weight * ccr
  double fanout_divisor = 10; // child-count mean = num_nodes / fanout_divisor
  std::uint64_t seed = 1;
  std::string name = "random";
};

/// The paper's forward-fan-out random DAG.
TaskGraph random_fanout_dag(const RandomDagParams& params);

/// Edge-weight draw used across generators: uniform integer with the given
/// mean (mean = mean_weight * ccr, at least 1), symmetric range, floor 1.
Cost draw_comm_cost(Rng& rng, Cost mean_weight, double ccr);

/// Node-weight draw: uniform mean `mean_weight`, floor 2 (paper: min 2).
Cost draw_comp_cost(Rng& rng, Cost mean_weight);

}  // namespace tgs
