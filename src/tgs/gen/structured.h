// Deterministic structured DAG generators: the classic shapes the paper's
// §4 mentions earlier algorithms were specialized to (trees, fork-join),
// plus a few more used in tests and the peer-set suite.
#pragma once

#include "tgs/graph/task_graph.h"

namespace tgs {

/// Single chain n0 -> n1 -> ... (serial program).
TaskGraph chain_graph(NodeId length, Cost node_cost = 10, Cost edge_cost = 5);

/// n independent tasks (embarrassingly parallel).
TaskGraph independent_tasks(NodeId count, Cost node_cost = 10);

/// Fork-join: source -> `width` parallel tasks -> sink.
TaskGraph fork_join(NodeId width, Cost node_cost = 10, Cost edge_cost = 5);

/// Complete out-tree (root spawns `branching` children per node, `depth`
/// levels below the root).
TaskGraph out_tree(int depth, int branching, Cost node_cost = 10,
                   Cost edge_cost = 5);

/// Complete in-tree (reduction): mirror of out_tree.
TaskGraph in_tree(int depth, int branching, Cost node_cost = 10,
                  Cost edge_cost = 5);

/// Diamond lattice of the given side (wavefront/stencil dependence):
/// node (i, j) -> (i+1, j) and (i, j+1).
TaskGraph diamond_lattice(int side, Cost node_cost = 10, Cost edge_cost = 5);

}  // namespace tgs
