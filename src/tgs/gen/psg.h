// PSG -- Peer Set Graphs (paper §5.1): "example task graphs used by
// various researchers and documented in publications ... usually small in
// size but useful in that they can be used to trace the operation of an
// algorithm".
//
// Substitution note (see DESIGN.md): the IPPS'98 paper does not list its
// exact peer set; we curate a suite of the same character -- the canonical
// 9-node example reproduced in Kwok & Ahmad's own survey work (critical
// path n1 -> n7 -> n9, length 23), plus classic small structures
// (fork-join, diamond, trees) and two irregular hand-built graphs. All are
// small enough to trace by hand, and Table 1's qualitative observations
// are evaluated against them.
#pragma once

#include <string>
#include <vector>

#include "tgs/graph/task_graph.h"

namespace tgs {

struct PsgEntry {
  TaskGraph graph;
  std::string description;
};

/// The canonical 9-node example (Kwok & Ahmad survey, Fig. 1 style).
/// Weights: n1=2 n2=3 n3=3 n4=4 n5=5 n6=4 n7=4 n8=4 n9=1; CP length 23.
TaskGraph psg_canonical9();

/// Irregular 13-node graph exercising heavy fan-in with asymmetric
/// communication (hand-built, documented inline).
TaskGraph psg_irregular13();

/// Irregular 16-node two-phase graph (parallel pipelines that cross).
TaskGraph psg_pipelines16();

/// The full peer-set suite in deterministic order.
std::vector<PsgEntry> peer_set_graphs();

}  // namespace tgs
