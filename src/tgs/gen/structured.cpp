#include "tgs/gen/structured.h"

#include <string>
#include <vector>

namespace tgs {

TaskGraph chain_graph(NodeId length, Cost node_cost, Cost edge_cost) {
  TaskGraphBuilder b("chain" + std::to_string(length));
  for (NodeId i = 0; i < length; ++i) b.add_node(node_cost);
  for (NodeId i = 0; i + 1 < length; ++i) b.add_edge(i, i + 1, edge_cost);
  return b.finalize();
}

TaskGraph independent_tasks(NodeId count, Cost node_cost) {
  TaskGraphBuilder b("indep" + std::to_string(count));
  for (NodeId i = 0; i < count; ++i) b.add_node(node_cost);
  return b.finalize();
}

TaskGraph fork_join(NodeId width, Cost node_cost, Cost edge_cost) {
  TaskGraphBuilder b("forkjoin" + std::to_string(width));
  const NodeId src = b.add_node(node_cost, "fork");
  std::vector<NodeId> mid(width);
  for (NodeId i = 0; i < width; ++i)
    mid[i] = b.add_node(node_cost, "w" + std::to_string(i + 1));
  const NodeId sink = b.add_node(node_cost, "join");
  for (NodeId i = 0; i < width; ++i) {
    b.add_edge(src, mid[i], edge_cost);
    b.add_edge(mid[i], sink, edge_cost);
  }
  return b.finalize();
}

TaskGraph out_tree(int depth, int branching, Cost node_cost, Cost edge_cost) {
  TaskGraphBuilder b("outtree_d" + std::to_string(depth) + "_b" +
                     std::to_string(branching));
  std::vector<NodeId> frontier{b.add_node(node_cost)};
  for (int d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    for (NodeId parent : frontier) {
      for (int k = 0; k < branching; ++k) {
        const NodeId child = b.add_node(node_cost);
        b.add_edge(parent, child, edge_cost);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return b.finalize();
}

TaskGraph in_tree(int depth, int branching, Cost node_cost, Cost edge_cost) {
  TaskGraphBuilder b("intree_d" + std::to_string(depth) + "_b" +
                     std::to_string(branching));
  // Build level by level, leaves first.
  std::vector<NodeId> frontier;
  std::size_t leaves = 1;
  for (int d = 0; d < depth; ++d) leaves *= static_cast<std::size_t>(branching);
  for (std::size_t i = 0; i < leaves; ++i) frontier.push_back(b.add_node(node_cost));
  while (frontier.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < frontier.size(); i += branching) {
      const NodeId parent = b.add_node(node_cost);
      for (int k = 0; k < branching; ++k)
        b.add_edge(frontier[i + k], parent, edge_cost);
      next.push_back(parent);
    }
    frontier = std::move(next);
  }
  return b.finalize();
}

TaskGraph diamond_lattice(int side, Cost node_cost, Cost edge_cost) {
  TaskGraphBuilder b("diamond" + std::to_string(side));
  std::vector<NodeId> id(static_cast<std::size_t>(side) * side);
  for (int i = 0; i < side; ++i)
    for (int j = 0; j < side; ++j)
      id[static_cast<std::size_t>(i) * side + j] = b.add_node(node_cost);
  for (int i = 0; i < side; ++i)
    for (int j = 0; j < side; ++j) {
      if (i + 1 < side)
        b.add_edge(id[static_cast<std::size_t>(i) * side + j],
                   id[static_cast<std::size_t>(i + 1) * side + j], edge_cost);
      if (j + 1 < side)
        b.add_edge(id[static_cast<std::size_t>(i) * side + j],
                   id[static_cast<std::size_t>(i) * side + j + 1], edge_cost);
    }
  return b.finalize();
}

}  // namespace tgs
