#include "tgs/gen/rgbos.h"

#include <cmath>

namespace tgs {

TaskGraph rgbos_graph(double ccr, NodeId num_nodes, std::uint64_t seed) {
  RandomDagParams params;
  params.num_nodes = num_nodes;
  params.ccr = ccr;
  // Mix the shape parameters into the stream so (ccr, v) pairs differ even
  // under one suite seed.
  std::uint64_t state = seed ^ (static_cast<std::uint64_t>(num_nodes) << 20) ^
                        static_cast<std::uint64_t>(std::llround(ccr * 1000));
  params.seed = splitmix64(state);
  params.name = "rgbos_v" + std::to_string(num_nodes) + "_ccr" +
                std::to_string(ccr).substr(0, 4);
  return random_fanout_dag(params);
}

std::vector<TaskGraph> rgbos_suite(double ccr, std::uint64_t seed) {
  std::vector<TaskGraph> out;
  for (NodeId v = kRgbosMinNodes; v <= kRgbosMaxNodes; v += kRgbosStep)
    out.push_back(rgbos_graph(ccr, v, seed));
  return out;
}

}  // namespace tgs
