#include "tgs/gen/random_core.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace tgs {

Cost draw_comm_cost(Rng& rng, Cost mean_weight, double ccr) {
  const Cost mean = std::max<Cost>(
      1, static_cast<Cost>(std::llround(static_cast<double>(mean_weight) * ccr)));
  return rng.uniform_mean(mean, 1);
}

Cost draw_comp_cost(Rng& rng, Cost mean_weight) {
  return rng.uniform_mean(mean_weight, 2);
}

TaskGraph random_fanout_dag(const RandomDagParams& params) {
  Rng rng(params.seed);
  const NodeId v = params.num_nodes;
  TaskGraphBuilder b(params.name);
  for (NodeId i = 0; i < v; ++i) b.add_node(draw_comp_cost(rng, params.mean_weight));

  const Cost fan_mean = std::max<Cost>(
      1, static_cast<Cost>(std::llround(v / params.fanout_divisor)));

  std::vector<NodeId> pool;
  for (NodeId u = 0; u + 1 < v; ++u) {
    const NodeId later = v - 1 - u;
    NodeId k = static_cast<NodeId>(
        std::min<Cost>(rng.uniform_mean(fan_mean, 0), later));
    if (k == 0) continue;
    // Partial Fisher-Yates over the pool of later nodes.
    pool.resize(later);
    for (NodeId i = 0; i < later; ++i) pool[i] = u + 1 + i;
    for (NodeId i = 0; i < k; ++i) {
      const NodeId j =
          i + static_cast<NodeId>(rng.uniform_int(0, later - 1 - i));
      std::swap(pool[i], pool[j]);
      b.add_edge(u, pool[i], draw_comm_cost(rng, params.mean_weight, params.ccr));
    }
  }
  return b.finalize();
}

}  // namespace tgs
