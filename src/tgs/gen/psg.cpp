#include "tgs/gen/psg.h"

#include "tgs/gen/structured.h"

namespace tgs {

TaskGraph psg_canonical9() {
  TaskGraphBuilder b("psg_canonical9");
  const NodeId n1 = b.add_node(2, "n1");
  const NodeId n2 = b.add_node(3, "n2");
  const NodeId n3 = b.add_node(3, "n3");
  const NodeId n4 = b.add_node(4, "n4");
  const NodeId n5 = b.add_node(5, "n5");
  const NodeId n6 = b.add_node(4, "n6");
  const NodeId n7 = b.add_node(4, "n7");
  const NodeId n8 = b.add_node(4, "n8");
  const NodeId n9 = b.add_node(1, "n9");
  b.add_edge(n1, n2, 4);
  b.add_edge(n1, n3, 1);
  b.add_edge(n1, n4, 1);
  b.add_edge(n1, n5, 1);
  b.add_edge(n1, n7, 10);
  b.add_edge(n2, n6, 1);
  b.add_edge(n2, n7, 1);
  b.add_edge(n3, n7, 1);
  b.add_edge(n3, n8, 1);
  b.add_edge(n4, n8, 1);
  b.add_edge(n5, n8, 1);
  b.add_edge(n6, n9, 5);
  b.add_edge(n7, n9, 6);
  b.add_edge(n8, n9, 5);
  return b.finalize();
}

TaskGraph psg_irregular13() {
  // Three stages: a wide scatter (n1 feeds five workers with very uneven
  // message sizes), a cross-coupled middle (workers exchange through two
  // combiners), and a heavy reduction. Designed so that greedy placement
  // of the big-message child (n6) on the source processor is tempting but
  // suboptimal -- the kind of trap peer-set graphs are used to expose.
  TaskGraphBuilder b("psg_irregular13");
  const NodeId n1 = b.add_node(6, "n1");
  const NodeId n2 = b.add_node(7, "n2");
  const NodeId n3 = b.add_node(3, "n3");
  const NodeId n4 = b.add_node(9, "n4");
  const NodeId n5 = b.add_node(4, "n5");
  const NodeId n6 = b.add_node(12, "n6");
  const NodeId n7 = b.add_node(5, "n7");
  const NodeId n8 = b.add_node(8, "n8");
  const NodeId n9 = b.add_node(6, "n9");
  const NodeId n10 = b.add_node(3, "n10");
  const NodeId n11 = b.add_node(7, "n11");
  const NodeId n12 = b.add_node(5, "n12");
  const NodeId n13 = b.add_node(10, "n13");
  b.add_edge(n1, n2, 3);
  b.add_edge(n1, n3, 14);
  b.add_edge(n1, n4, 2);
  b.add_edge(n1, n5, 8);
  b.add_edge(n1, n6, 20);
  b.add_edge(n2, n7, 4);
  b.add_edge(n3, n7, 6);
  b.add_edge(n3, n8, 2);
  b.add_edge(n4, n8, 11);
  b.add_edge(n5, n9, 3);
  b.add_edge(n6, n9, 5);
  b.add_edge(n6, n10, 16);
  b.add_edge(n7, n11, 7);
  b.add_edge(n8, n11, 3);
  b.add_edge(n8, n12, 9);
  b.add_edge(n9, n12, 4);
  b.add_edge(n10, n13, 6);
  b.add_edge(n11, n13, 12);
  b.add_edge(n12, n13, 2);
  return b.finalize();
}

TaskGraph psg_pipelines16() {
  // Two four-stage pipelines (a1..a4, b1..b4) that exchange intermediate
  // results at stages 2 and 3, fed by one source and drained by one sink.
  // Tests whether an algorithm keeps each pipeline local while placing the
  // cross-links sensibly.
  TaskGraphBuilder b("psg_pipelines16");
  const NodeId src = b.add_node(4, "src");
  NodeId a[4], c[4];
  for (int i = 0; i < 4; ++i)
    a[i] = b.add_node(6 + i, "a" + std::to_string(i + 1));
  for (int i = 0; i < 4; ++i)
    c[i] = b.add_node(5 + i, "b" + std::to_string(i + 1));
  const NodeId mix1 = b.add_node(3, "x1");
  const NodeId mix2 = b.add_node(3, "x2");
  const NodeId pre = b.add_node(2, "pre");
  const NodeId post = b.add_node(7, "post");
  const NodeId chk1 = b.add_node(2, "chk1");
  const NodeId chk2 = b.add_node(2, "chk2");
  const NodeId sink = b.add_node(5, "sink");

  // Checker side-tasks observing the mixing stages.
  b.add_edge(mix1, chk1, 1);
  b.add_edge(mix2, chk2, 1);
  b.add_edge(chk1, sink, 1);
  b.add_edge(chk2, sink, 1);

  b.add_edge(src, pre, 1);
  b.add_edge(pre, a[0], 2);
  b.add_edge(pre, c[0], 2);
  for (int i = 0; i < 3; ++i) {
    b.add_edge(a[i], a[i + 1], 3);
    b.add_edge(c[i], c[i + 1], 3);
  }
  b.add_edge(a[1], mix1, 9);
  b.add_edge(c[1], mix1, 9);
  b.add_edge(mix1, a[3], 4);
  b.add_edge(a[2], mix2, 8);
  b.add_edge(c[2], mix2, 8);
  b.add_edge(mix2, c[3], 4);
  b.add_edge(a[3], post, 5);
  b.add_edge(c[3], post, 5);
  b.add_edge(post, sink, 2);
  b.add_edge(src, sink, 30);  // long bypass message
  return b.finalize();
}

std::vector<PsgEntry> peer_set_graphs() {
  std::vector<PsgEntry> out;
  out.push_back({psg_canonical9(),
                 "canonical 9-node example (survey Fig.1 style), CP=23"});
  out.push_back({fork_join(6, 8, 12), "fork-join, 6-way, comm-heavy"});
  out.push_back({diamond_lattice(4, 6, 3), "4x4 diamond wavefront"});
  out.push_back({out_tree(3, 2, 5, 4), "binary out-tree, depth 3"});
  out.push_back({in_tree(3, 2, 5, 4), "binary in-tree (reduction), depth 3"});
  out.push_back({psg_irregular13(), "irregular 13-node scatter/combine"});
  out.push_back({psg_pipelines16(), "16-node crossed pipelines"});
  return out;
}

}  // namespace tgs
