#include "tgs/gen/rgnos.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "tgs/gen/random_core.h"
#include "tgs/util/rng.h"

namespace tgs {

TaskGraph rgnos_graph(const RgnosParams& params) {
  Rng rng(params.seed);
  const NodeId v = params.num_nodes;
  const double width_target =
      std::max(1.0, params.parallelism * std::sqrt(static_cast<double>(v)));

  // Layer sizes around the width target.
  std::vector<NodeId> layer_of(v);
  std::vector<std::vector<NodeId>> layers;
  {
    NodeId assigned = 0;
    while (assigned < v) {
      const Cost mean = static_cast<Cost>(std::llround(width_target));
      NodeId size = static_cast<NodeId>(
          std::clamp<Cost>(rng.uniform_mean(std::max<Cost>(1, mean), 1), 1,
                           static_cast<Cost>(v - assigned)));
      layers.emplace_back();
      for (NodeId i = 0; i < size; ++i) {
        layer_of[assigned] = static_cast<NodeId>(layers.size() - 1);
        layers.back().push_back(assigned);
        ++assigned;
      }
    }
  }

  // Extra-edge fan-out mean: the paper's v/10 (quadratic in total), or the
  // capped scale-path mean when max_fanout is set.
  Cost fan_mean = std::max<Cost>(
      1, static_cast<Cost>(std::llround(v / params.fanout_divisor)));
  if (params.max_fanout > 0) fan_mean = std::min(fan_mean, params.max_fanout);

  TaskGraphBuilder b("rgnos_v" + std::to_string(v) + "_p" +
                     std::to_string(params.parallelism));
  b.reserve(v, static_cast<std::size_t>(v) +
                   static_cast<std::size_t>(v) *
                       static_cast<std::size_t>(fan_mean));
  for (NodeId i = 0; i < v; ++i)
    b.add_node(draw_comp_cost(rng, params.mean_weight));

  std::unordered_set<std::uint64_t> seen;
  auto try_edge = [&](NodeId u, NodeId w) {
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | w;
    if (!seen.insert(key).second) return false;
    b.add_edge(u, w, draw_comm_cost(rng, params.mean_weight, params.ccr));
    return true;
  };

  // Spine edges: every non-first-layer node gets a parent in the previous
  // layer, fixing the depth (and hence the width) of the DAG.
  for (std::size_t l = 1; l < layers.size(); ++l) {
    const auto& prev = layers[l - 1];
    for (NodeId node : layers[l]) {
      const NodeId parent =
          prev[static_cast<std::size_t>(rng.uniform_int(0, prev.size() - 1))];
      try_edge(parent, node);
    }
  }

  // Extra forward edges to reach the target fan-out mean per node.
  for (NodeId u = 0; u < v; ++u) {
    const std::size_t l = layer_of[u];
    if (l + 1 >= layers.size()) continue;
    // Candidate children: all nodes in strictly later layers.
    const NodeId first_later = layers[l + 1].front();
    const NodeId later_count = v - first_later;
    Cost k = rng.uniform_mean(fan_mean, 0);
    k = std::min<Cost>(k, later_count);
    for (Cost i = 0; i < k; ++i) {
      const NodeId w = static_cast<NodeId>(
          first_later + rng.uniform_int(0, later_count - 1));
      try_edge(u, w);  // duplicates silently skipped
    }
  }
  return b.finalize();
}

std::vector<TaskGraph> rgnos_size_suite(NodeId num_nodes, std::uint64_t seed) {
  std::vector<TaskGraph> out;
  for (double ccr : kRgnosCcrs) {
    for (int par : kRgnosParallelisms) {
      RgnosParams params;
      params.num_nodes = num_nodes;
      params.ccr = ccr;
      params.parallelism = par;
      std::uint64_t state = seed ^ (static_cast<std::uint64_t>(num_nodes) << 24) ^
                            (static_cast<std::uint64_t>(par) << 16) ^
                            static_cast<std::uint64_t>(std::llround(ccr * 1000));
      params.seed = splitmix64(state);
      out.push_back(rgnos_graph(params));
    }
  }
  return out;
}

}  // namespace tgs
