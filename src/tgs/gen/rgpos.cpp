#include "tgs/gen/rgpos.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "tgs/gen/random_core.h"
#include "tgs/util/rng.h"

namespace tgs {

RgposGraph rgpos_graph(const RgposParams& params) {
  Rng rng(params.seed);
  const NodeId v = params.num_nodes;
  const int p = params.num_procs;

  // Distribute v tasks over p processors: start from a uniform draw with
  // mean v/p per processor, then repair to sum exactly v (each processor
  // keeps at least one task).
  std::vector<NodeId> per_proc(p);
  {
    const Cost mean = std::max<Cost>(1, v / p);
    NodeId total = 0;
    for (int i = 0; i < p; ++i) {
      per_proc[i] = static_cast<NodeId>(std::max<Cost>(1, rng.uniform_mean(mean, 1)));
      total += per_proc[i];
    }
    // Repair deterministically, round-robin.
    int i = 0;
    while (total > v) {
      if (per_proc[i] > 1) {
        --per_proc[i];
        --total;
      }
      i = (i + 1) % p;
    }
    while (total < v) {
      ++per_proc[i];
      ++total;
      i = (i + 1) % p;
    }
  }

  // L_opt: every processor is fully busy, mean segment = mean_weight.
  // Using one shared L_opt requires cutting each processor's [0, L_opt]
  // into per_proc[i] positive segments, so L_opt must exceed max(per_proc).
  const Time l_opt = std::max<Time>(
      *std::max_element(per_proc.begin(), per_proc.end()) + 1,
      static_cast<Time>(v) * params.mean_weight / p);

  // Cut each processor's interval; tasks are created processor-major so
  // node ids group by processor (harmless; edges are what matter).
  TaskGraphBuilder builder("rgpos_v" + std::to_string(v) + "_p" +
                           std::to_string(p));
  builder.reserve(
      v, static_cast<std::size_t>(v) +
             (params.edges_per_node > 0
                  ? static_cast<std::size_t>(static_cast<double>(v) *
                                             params.edges_per_node)
                  : static_cast<std::size_t>(
                        static_cast<double>(v) *
                        (static_cast<double>(v) / params.fanout_divisor) /
                        2.0)));
  std::vector<ProcId> proc_of;
  std::vector<Time> start_of, finish_of;
  for (int i = 0; i < p; ++i) {
    const NodeId k = per_proc[i];
    // k-1 distinct interior cut points in [1, l_opt - 1].
    std::vector<Time> cuts;
    std::unordered_set<Time> used;
    while (cuts.size() + 1 < k) {
      const Time c = rng.uniform_int(1, l_opt - 1);
      if (used.insert(c).second) cuts.push_back(c);
    }
    cuts.push_back(0);
    cuts.push_back(l_opt);
    std::sort(cuts.begin(), cuts.end());
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
      const Time st = cuts[s], fin = cuts[s + 1];
      builder.add_node(fin - st);
      proc_of.push_back(i);
      start_of.push_back(st);
      finish_of.push_back(fin);
    }
  }

  const NodeId n = static_cast<NodeId>(proc_of.size());
  const Cost comm_mean_chain = std::max<Cost>(
      1, static_cast<Cost>(std::llround(params.mean_weight * params.ccr)));
  std::unordered_set<std::uint64_t> seen;

  // Optional width guard: see RgposParams::width_guard. Task ids are
  // processor-major and time-ordered within a processor.
  if (params.width_guard) {
    NodeId first = 0;
    for (int i = 0; i < p; ++i) {
      for (NodeId k = 1; k < per_proc[i]; ++k) {
        const NodeId a = first + k - 1, b = first + k;
        builder.add_edge(a, b, rng.uniform_mean(comm_mean_chain, 1));
        seen.insert((static_cast<std::uint64_t>(a) << 32) | b);
      }
      first += per_proc[i];
    }
  }

  // Random edges: pick pairs (a, b) with FT(a) <= ST(b). Tasks sorted by
  // start time; for a given a, any task starting at or after FT(a)
  // qualifies.
  std::vector<NodeId> by_start(n);
  for (NodeId i = 0; i < n; ++i) by_start[i] = i;
  std::sort(by_start.begin(), by_start.end(), [&](NodeId a, NodeId b) {
    return start_of[a] != start_of[b] ? start_of[a] < start_of[b] : a < b;
  });
  std::vector<Time> sorted_starts(n);
  for (NodeId i = 0; i < n; ++i) sorted_starts[i] = start_of[by_start[i]];

  const std::size_t edge_target =
      params.edges_per_node > 0
          ? static_cast<std::size_t>(static_cast<double>(v) *
                                     params.edges_per_node)
          : static_cast<std::size_t>(static_cast<double>(v) *
                                     (static_cast<double>(v) /
                                      params.fanout_divisor) /
                                     2.0);
  const Cost comm_mean = comm_mean_chain;

  std::size_t attempts = 0;
  std::size_t added = 0;
  while (added < edge_target && attempts < edge_target * 8) {
    ++attempts;
    const NodeId a = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    // Candidates: sorted-start index range with ST >= FT(a).
    const auto lo = std::lower_bound(sorted_starts.begin(), sorted_starts.end(),
                                     finish_of[a]) -
                    sorted_starts.begin();
    if (lo >= static_cast<std::ptrdiff_t>(n)) continue;
    const NodeId b =
        by_start[static_cast<std::size_t>(rng.uniform_int(lo, n - 1))];
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    if (!seen.insert(key).second) continue;

    Cost w;
    if (proc_of[a] != proc_of[b]) {
      const Time slack = start_of[b] - finish_of[a];
      // Mean per CCR but never above the slack (keeps the plant feasible).
      w = slack <= 0 ? 0
                     : std::min<Cost>(slack, rng.uniform_int(0, 2 * comm_mean));
    } else {
      w = rng.uniform_mean(comm_mean, 1);
    }
    builder.add_edge(a, b, w);
    ++added;
  }

  RgposGraph out{builder.finalize(), l_opt, p, std::move(proc_of),
                 std::move(start_of)};
  return out;
}

std::vector<RgposGraph> rgpos_suite(double ccr, int num_procs,
                                    std::uint64_t seed, bool width_guard) {
  std::vector<RgposGraph> out;
  for (NodeId v = 50; v <= 500; v += 50) {
    RgposParams params;
    params.num_nodes = v;
    params.num_procs = num_procs;
    params.ccr = ccr;
    params.width_guard = width_guard;
    std::uint64_t state = seed ^ (static_cast<std::uint64_t>(v) << 18) ^
                          static_cast<std::uint64_t>(std::llround(ccr * 1000));
    params.seed = splitmix64(state);
    out.push_back(rgpos_graph(params));
  }
  return out;
}

}  // namespace tgs
