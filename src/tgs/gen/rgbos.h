// RGBOS -- Random Graphs with Branch-and-bound Optimal Solutions
// (paper §5.2).
//
// Three CCR subsets (0.1, 1.0, 10.0); per subset the node count runs from
// 10 to 32 in steps of 2 (12 graphs). Weight distributions follow
// random_core.h. Optimal lengths are NOT stored here -- they are computed
// by optimal/bb_scheduler.h, exactly as the paper computed them with a
// parallel A*.
#pragma once

#include <cstdint>
#include <vector>

#include "tgs/gen/random_core.h"

namespace tgs {

inline constexpr double kRgbosCcrs[] = {0.1, 1.0, 10.0};
inline constexpr NodeId kRgbosMinNodes = 10;
inline constexpr NodeId kRgbosMaxNodes = 32;
inline constexpr NodeId kRgbosStep = 2;

/// One RGBOS graph (deterministic in (ccr, num_nodes, seed)).
TaskGraph rgbos_graph(double ccr, NodeId num_nodes, std::uint64_t seed);

/// The full 12-graph subset for one CCR.
std::vector<TaskGraph> rgbos_suite(double ccr, std::uint64_t seed);

}  // namespace tgs
