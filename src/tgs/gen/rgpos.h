// RGPOS -- Random Graphs with Pre-determined Optimal Schedules (paper
// §5.3).
//
// Construction (exactly the paper's): fix an optimal length L_opt and a
// processor count p; partition each processor's [0, L_opt] interval into
// randomly many task segments with NO idle time, so total work = p * L_opt
// and the planted schedule is optimal for p processors (any schedule is at
// least ceil(work / p) long). Edges are drawn between tasks with
// FT(a) <= ST(b); a cross-processor edge's weight never exceeds the slack
// ST(b) - FT(a) (so the planted schedule stays feasible), a same-processor
// edge's weight is unconstrained and drawn per CCR.
#pragma once

#include <cstdint>
#include <vector>

#include "tgs/graph/task_graph.h"
#include "tgs/util/types.h"

namespace tgs {

struct RgposGraph {
  TaskGraph graph;
  Time optimal_length = 0;
  int num_procs = 0;
  /// The planted schedule (proof of achievability).
  std::vector<ProcId> planted_proc;
  std::vector<Time> planted_start;
};

struct RgposParams {
  NodeId num_nodes = 100;
  int num_procs = 4;
  double ccr = 1.0;
  Cost mean_weight = 40;      // mean task segment length
  double fanout_divisor = 10; // edge budget ~ v^2 / (2 * divisor)
  std::uint64_t seed = 1;
  /// Giant-tier scale path: when > 0, the edge budget becomes
  /// v * edges_per_node instead of the paper's quadratic
  /// v^2 / (2 * fanout_divisor). 0 = the paper's original budget; every
  /// existing graph is byte-identical in that mode.
  double edges_per_node = 0;
  /// When true, time-consecutive tasks on each planted processor are
  /// chained with extra same-processor edges. The DAG then has a chain
  /// cover of size p, so (Dilworth) its width is <= p and L_opt = W/p is a
  /// lower bound for ANY schedule, even on more than p processors -- the
  /// property needed when unbounded (UNC) algorithms are measured against
  /// the plant. The chains also make the plant reconstructable by greedy
  /// list scheduling (zero-slack pairs force co-location), so bounded
  /// algorithms should be evaluated with width_guard = false, the paper's
  /// original construction, where W/p already bounds any p-processor
  /// schedule.
  bool width_guard = false;
};

RgposGraph rgpos_graph(const RgposParams& params);

/// The paper's sweep for one CCR: v = 50..500 step 50 (10 graphs).
std::vector<RgposGraph> rgpos_suite(double ccr, int num_procs,
                                    std::uint64_t seed,
                                    bool width_guard = false);

inline constexpr double kRgposCcrs[] = {0.1, 1.0, 10.0};

}  // namespace tgs
