// TG -- Traced Graphs (paper §5.5): task graphs of real numerical kernels.
//
// The paper uses Cholesky factorization DAGs produced by a parallelizing
// compiler (CASCH); "for a matrix dimension of N, the graph size is
// O(N^2)". We generate the same dependence structures analytically
// (substitution documented in DESIGN.md): column-oriented Cholesky, plus
// Gaussian elimination, a recursive FFT butterfly and Laplace/stencil
// graphs as extensions. Node weights are proportional to the kernel's
// floating-point work; edge weights are proportional to the data volume
// transferred, scaled by `comm_scale` to sweep CCR.
#pragma once

#include "tgs/graph/task_graph.h"

namespace tgs {

/// Column-Cholesky: tasks cdiv(k) (factor column k) and cmod(j, k)
/// (update column j with column k), k < j <= N.
///   cdiv(k) -> cmod(j, k)        for all j > k (column k broadcast)
///   cmod(j, k) -> cmod(j, k+1)   for j > k + 1 (serialized updates)
///   cmod(k+1, k) -> cdiv(k+1)    (column k+1 complete)
/// v = N(N+1)/2 nodes.
TaskGraph cholesky_graph(int n, double comm_scale = 1.0);

/// Gaussian elimination (kji form): tasks piv(k) and upd(i, k) for
/// k < i <= N, with the same chaining pattern as Cholesky.
TaskGraph gaussian_elimination_graph(int n, double comm_scale = 1.0);

/// Radix-2 FFT butterfly: log2(n) rank layers of n/2 butterfly tasks;
/// each task feeds the two tasks using its outputs in the next rank.
/// n must be a power of two.
TaskGraph fft_graph(int n, double comm_scale = 1.0);

/// Jacobi/Laplace sweep over a side x side grid for `iters` iterations:
/// each point depends on its own and its neighbours' previous values.
TaskGraph laplace_graph(int side, int iters, double comm_scale = 1.0);

}  // namespace tgs
