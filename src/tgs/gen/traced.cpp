#include "tgs/gen/traced.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace tgs {

namespace {
Cost comm(double scale, long long volume) {
  const long long c = std::llround(scale * static_cast<double>(volume));
  return std::max<Cost>(1, c);
}
}  // namespace

TaskGraph cholesky_graph(int n, double comm_scale) {
  if (n < 1) throw std::invalid_argument("cholesky: n >= 1");
  TaskGraphBuilder b("cholesky" + std::to_string(n));
  // v = n(n+1)/2, e = n(n-1): known up front, so the 100k-node tier builds
  // with a constant number of allocations.
  b.reserve(static_cast<std::size_t>(n) * (n + 1) / 2,
            static_cast<std::size_t>(n) * (n > 0 ? n - 1 : 0));

  // ids: cdiv[k] for k = 1..n ; cmod[j][k] for 1 <= k < j <= n.
  std::vector<NodeId> cdiv(n + 1);
  std::vector<std::vector<NodeId>> cmod(n + 1, std::vector<NodeId>(n + 1, 0));
  for (int k = 1; k <= n; ++k) {
    // cdiv(k): sqrt + scale of the n-k subdiagonal entries.
    cdiv[k] = b.add_node(2 * (n - k) + 2,
                         "cdiv(" + std::to_string(k) + ")");
    for (int j = k + 1; j <= n; ++j)
      // cmod(j,k): rank-1 update of column j, ~2(n-j+1) flops.
      cmod[j][k] = b.add_node(2 * (n - j) + 2,
                              "cmod(" + std::to_string(j) + "," +
                                  std::to_string(k) + ")");
  }
  for (int k = 1; k <= n; ++k) {
    for (int j = k + 1; j <= n; ++j) {
      // Column k (n-k entries) broadcast to the update of column j.
      b.add_edge(cdiv[k], cmod[j][k], comm(comm_scale, n - k));
      if (j > k + 1)
        b.add_edge(cmod[j][k], cmod[j][k + 1], comm(comm_scale, n - j + 1));
    }
    if (k + 1 <= n)
      b.add_edge(cmod[k + 1][k], cdiv[k + 1], comm(comm_scale, n - k));
  }
  return b.finalize();
}

TaskGraph gaussian_elimination_graph(int n, double comm_scale) {
  if (n < 1) throw std::invalid_argument("gauss: n >= 1");
  TaskGraphBuilder b("gauss" + std::to_string(n));
  b.reserve(static_cast<std::size_t>(n - 1) + static_cast<std::size_t>(n) * (n > 0 ? n - 1 : 0) / 2,
            static_cast<std::size_t>(n) * n);
  std::vector<NodeId> piv(n + 1);
  std::vector<std::vector<NodeId>> upd(n + 1, std::vector<NodeId>(n + 1, 0));
  for (int k = 1; k < n; ++k) {
    piv[k] = b.add_node(n - k + 1, "piv(" + std::to_string(k) + ")");
    for (int i = k + 1; i <= n; ++i)
      upd[i][k] = b.add_node(2 * (n - k) + 1,
                             "upd(" + std::to_string(i) + "," +
                                 std::to_string(k) + ")");
  }
  for (int k = 1; k < n; ++k) {
    for (int i = k + 1; i <= n; ++i) {
      b.add_edge(piv[k], upd[i][k], comm(comm_scale, n - k));
      if (i > k + 1 && k + 1 < n)
        b.add_edge(upd[i][k], upd[i][k + 1], comm(comm_scale, n - k));
    }
    if (k + 1 < n) b.add_edge(upd[k + 1][k], piv[k + 1], comm(comm_scale, n - k));
  }
  return b.finalize();
}

TaskGraph fft_graph(int n, double comm_scale) {
  if (n < 2 || (n & (n - 1)) != 0)
    throw std::invalid_argument("fft: n must be a power of two >= 2");
  const int ranks = static_cast<int>(std::lround(std::log2(n)));
  TaskGraphBuilder b("fft" + std::to_string(n));
  b.reserve(static_cast<std::size_t>(ranks) * (n / 2),
            static_cast<std::size_t>(ranks) * n);

  // One butterfly task per (rank, pair); rank r pairs indices differing in
  // bit r of the element index.
  const int per_rank = n / 2;
  std::vector<std::vector<NodeId>> task(ranks, std::vector<NodeId>(per_rank));
  for (int r = 0; r < ranks; ++r)
    for (int p = 0; p < per_rank; ++p)
      task[r][p] = b.add_node(10, "bf(" + std::to_string(r) + "," +
                                      std::to_string(p) + ")");

  auto pair_index = [](int element, int rank) {
    // Pair id of `element` at `rank`: drop bit `rank` of the index.
    const int high = (element >> (rank + 1)) << rank;
    const int low = element & ((1 << rank) - 1);
    return high | low;
  };
  for (int r = 0; r + 1 < ranks; ++r) {
    for (int p = 0; p < per_rank; ++p) {
      // Outputs of butterfly (r, p) are elements e0, e1; each feeds the
      // butterfly that consumes it at rank r+1.
      const int low = p & ((1 << r) - 1);
      const int high = (p >> r) << (r + 1);
      const int e0 = high | low;
      const int e1 = e0 | (1 << r);
      b.add_edge(task[r][p], task[r + 1][pair_index(e0, r + 1)],
                 comm(comm_scale, 2));
      if (pair_index(e1, r + 1) != pair_index(e0, r + 1))
        b.add_edge(task[r][p], task[r + 1][pair_index(e1, r + 1)],
                   comm(comm_scale, 2));
    }
  }
  return b.finalize();
}

TaskGraph laplace_graph(int side, int iters, double comm_scale) {
  if (side < 1 || iters < 1) throw std::invalid_argument("laplace: bad dims");
  TaskGraphBuilder b("laplace" + std::to_string(side) + "x" +
                     std::to_string(iters));
  b.reserve(static_cast<std::size_t>(iters) * side * side,
            static_cast<std::size_t>(iters) * side * side * 5);
  auto id = [&](int t, int i, int j) {
    return static_cast<NodeId>((static_cast<long long>(t) * side + i) * side + j);
  };
  for (int t = 0; t < iters; ++t)
    for (int i = 0; i < side; ++i)
      for (int j = 0; j < side; ++j) b.add_node(5);
  for (int t = 0; t + 1 < iters; ++t)
    for (int i = 0; i < side; ++i)
      for (int j = 0; j < side; ++j) {
        b.add_edge(id(t, i, j), id(t + 1, i, j), comm(comm_scale, 1));
        if (i > 0) b.add_edge(id(t, i, j), id(t + 1, i - 1, j), comm(comm_scale, 1));
        if (i + 1 < side)
          b.add_edge(id(t, i, j), id(t + 1, i + 1, j), comm(comm_scale, 1));
        if (j > 0) b.add_edge(id(t, i, j), id(t + 1, i, j - 1), comm(comm_scale, 1));
        if (j + 1 < side)
          b.add_edge(id(t, i, j), id(t + 1, i, j + 1), comm(comm_scale, 1));
      }
  return b.finalize();
}

}  // namespace tgs
