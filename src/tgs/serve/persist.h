// Crash-safe persistence for the schedule cache: an append-only,
// CRC-framed journal (`cache.tgsj`) of committed cache entries.
//
// Durability contract: an entry is *committed* once append() returns --
// the framed record has been written and (per the fsync policy) synced,
// and the daemon only sends the client its response after that. A
// `kill -9` at any instant therefore loses at most the record being
// written; every response a client ever saw is replayable after restart.
//
// File format (all integers little-endian, fixed width):
//
//   header   8 bytes  "TGSJRNL1"
//   record   u32 payload_len | u32 crc32(payload) | payload
//   payload  u32 key_len | key bytes
//            i64 makespan | u64 nsl (IEEE-754 bit pattern)
//            i32 procs_used | u64 num_messages
//            u32 text_len | tgssched1 text bytes
//
// Recovery replays the longest valid prefix: records are accepted only
// with an intact frame, a matching CRC and an exactly-consumed payload;
// the first violation marks the torn tail, which is truncated in place
// (ftruncate) so appends resume from a clean end. Corruption is NEVER
// fatal -- a garbage file, a bad header, a half record all degrade to
// "fewer entries replayed", with the damage reported in the recovery
// counters (surfaced by the `stats` op).
//
// The journal is append-only, so evicted/overwritten cache entries
// accumulate as dead records; compact() rewrites the live set (atomic
// tmp-file + rename) and the server triggers it every N appends.
//
// The nsl double travels as its bit pattern, not decimal text: recovered
// entries are byte-identical to what was cached, which is what lets the
// chaos test assert bit-equal schedules across a crash.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "tgs/serve/cache.h"

namespace tgs {

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `n` bytes.
std::uint32_t crc32_ieee(const void* data, std::size_t n);

/// What open() found in an existing journal file.
struct JournalRecovery {
  std::vector<std::pair<std::string, CachedSchedule>> entries;  // append order
  std::uint64_t replayed = 0;         // == entries.size()
  std::uint64_t truncated_bytes = 0;  // torn/corrupt tail dropped
  bool tail_truncated = false;        // any tail was cut (incl. bad header)
};

/// The append-only cache journal. All methods are thread-safe; append()
/// serializes concurrent workers internally.
class Journal {
 public:
  Journal() = default;
  ~Journal() { close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (creating if absent), recover the valid prefix, truncate any
  /// torn tail, and position for appends. `fsync_every` = sync the file
  /// after every Nth append (1 = every append, 0 = never -- the OS
  /// decides). Throws std::runtime_error only when the file itself
  /// cannot be opened/created; corruption inside it never throws.
  void open(const std::string& path, int fsync_every);

  bool is_open() const;
  const std::string& path() const { return path_; }

  /// Recovery outcome of the last open().
  const JournalRecovery& recovery() const { return recovery_; }

  /// Append one committed cache entry. No-op after a torn-write fault
  /// sealed the journal (simulating the process dying mid-write).
  void append(const std::string& key, const CachedSchedule& value);

  /// Atomically rewrite the journal to exactly `live` (oldest first, so
  /// replay reproduces the cache's recency order): write to `path.tmp`,
  /// fsync, rename over, reopen. Errors are swallowed -- a failed
  /// compaction leaves the previous journal intact.
  void compact(
      const std::vector<std::pair<std::string, CachedSchedule>>& live);

  std::uint64_t appends() const;
  std::uint64_t appends_since_compact() const;
  std::uint64_t compactions() const;

  void close();

 private:
  void write_all_locked(const char* data, std::size_t n);

  mutable std::mutex mu_;
  std::string path_;
  int fd_ = -1;
  int fsync_every_ = 1;
  bool sealed_ = false;  // torn-write fault fired: behave as if crashed
  std::uint64_t appends_ = 0;
  std::uint64_t appends_since_compact_ = 0;
  std::uint64_t compactions_ = 0;
  JournalRecovery recovery_;
};

}  // namespace tgs
