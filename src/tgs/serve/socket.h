// Thin RAII wrappers over AF_UNIX stream sockets -- the transport of the
// serve protocol. Line-oriented: the protocol is one JSON document per
// '\n'-terminated line in each direction.
//
// Local-socket rationale: the daemon serves co-located clients (benchmark
// drivers, sweep front-ends); a filesystem socket needs no port
// allocation, inherits directory permissions, and keeps the protocol layer
// free of address parsing. The framing code is transport-agnostic, so a
// TCP listener can slot in later without touching the protocol.
#pragma once

#include <cstddef>
#include <string>

namespace tgs {

/// A connected stream socket with buffered line reads. Movable, not
/// copyable; closes on destruction.
class UnixConn {
 public:
  UnixConn() = default;
  explicit UnixConn(int fd) : fd_(fd) {}
  ~UnixConn() { close(); }

  UnixConn(UnixConn&& other) noexcept;
  UnixConn& operator=(UnixConn&& other) noexcept;
  UnixConn(const UnixConn&) = delete;
  UnixConn& operator=(const UnixConn&) = delete;

  /// Client-side connect; throws std::runtime_error on failure.
  static UnixConn connect(const std::string& path);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Read up to the next '\n' (consumed, not returned). Returns false on
  /// clean EOF with no buffered partial line; throws std::runtime_error on
  /// I/O errors or when a line exceeds `max_line` bytes.
  bool read_line(std::string* line, std::size_t max_line = kMaxLine);

  /// Write `line` plus '\n', looping over partial writes. Throws
  /// std::runtime_error when the peer is gone.
  void write_line(const std::string& line);

  /// Shut down both directions (wakes a blocked read_line in another
  /// thread) without releasing the fd.
  void shutdown_both();

  void close();

  /// 64 MiB: far above any sane request (a v=100k graph serializes to a
  /// few MiB) but bounds memory against a runaway peer.
  static constexpr std::size_t kMaxLine = 64u << 20;

 private:
  int fd_ = -1;
  std::string buf_;  // bytes read past the last returned line
};

/// A listening socket bound to a filesystem path. Unlinks a stale socket
/// file on bind and removes its own on destruction.
class UnixListener {
 public:
  /// Binds and listens; throws std::runtime_error (with errno text) on
  /// failure.
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Blocking accept. Returns an invalid conn when the listener has been
  /// closed (the shutdown path) instead of throwing.
  UnixConn accept();

  /// Close the listening fd; wakes a blocked accept(). Idempotent.
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace tgs
