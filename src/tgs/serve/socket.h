// Thin RAII wrappers over AF_UNIX stream sockets -- the transport of the
// serve protocol. Line-oriented: the protocol is one JSON document per
// '\n'-terminated line in each direction.
//
// Local-socket rationale: the daemon serves co-located clients (benchmark
// drivers, sweep front-ends); a filesystem socket needs no port
// allocation, inherits directory permissions, and keeps the protocol layer
// free of address parsing. The framing code is transport-agnostic, so a
// TCP listener can slot in later without touching the protocol.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace tgs {

/// read_line hit its max_line bound without seeing a '\n'. Distinct from
/// generic I/O failure so the server can answer with a structured
/// `bad_request` before dropping the (unframeable) connection instead of
/// silently hanging up on an oversized or malicious request.
class LineTooLong : public std::runtime_error {
 public:
  explicit LineTooLong(std::size_t limit)
      : std::runtime_error("line exceeds " + std::to_string(limit) +
                           " bytes") {}
};

/// A read or write ran past the socket's SO_RCVTIMEO/SO_SNDTIMEO window
/// (set_timeouts). Distinct so callers can treat a stalled peer
/// differently from a vanished one.
class IoTimeout : public std::runtime_error {
 public:
  explicit IoTimeout(const char* op)
      : std::runtime_error(std::string(op) + " timed out") {}
};

/// A connected stream socket with buffered line reads. Movable, not
/// copyable; closes on destruction.
class UnixConn {
 public:
  UnixConn() = default;
  explicit UnixConn(int fd) : fd_(fd) {}
  ~UnixConn() { close(); }

  UnixConn(UnixConn&& other) noexcept;
  UnixConn& operator=(UnixConn&& other) noexcept;
  UnixConn(const UnixConn&) = delete;
  UnixConn& operator=(const UnixConn&) = delete;

  /// Client-side connect; throws std::runtime_error on failure.
  static UnixConn connect(const std::string& path);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Read up to the next '\n' (consumed, not returned). Returns false on
  /// clean EOF with no buffered partial line; throws LineTooLong when a
  /// line exceeds `max_line` bytes, IoTimeout when a receive timeout is
  /// set and expires, std::runtime_error on other I/O errors. EINTR is
  /// retried, short reads are accumulated.
  bool read_line(std::string* line, std::size_t max_line = kMaxLine);

  /// Write `line` plus '\n', looping over partial writes and EINTR.
  /// Throws IoTimeout when a send timeout is set and expires,
  /// std::runtime_error when the peer is gone.
  void write_line(const std::string& line);

  /// Kernel-level receive/send timeouts (SO_RCVTIMEO/SO_SNDTIMEO) in
  /// milliseconds; 0 leaves that direction blocking indefinitely. The
  /// daemon caps how long a worker can be held by a stalled reader, the
  /// client bounds how long it waits on a hung daemon.
  void set_timeouts(int rcv_ms, int snd_ms);

  /// Shut down both directions (wakes a blocked read_line in another
  /// thread) without releasing the fd.
  void shutdown_both();

  void close();

  /// 64 MiB: far above any sane request (a v=100k graph serializes to a
  /// few MiB) but bounds memory against a runaway peer.
  static constexpr std::size_t kMaxLine = 64u << 20;

 private:
  int fd_ = -1;
  std::string buf_;  // bytes read past the last returned line
};

/// A listening socket bound to a filesystem path. Unlinks a stale socket
/// file on bind and removes its own on destruction.
class UnixListener {
 public:
  /// Binds and listens; throws std::runtime_error (with errno text) on
  /// failure.
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Blocking accept. Returns an invalid conn when the listener has been
  /// closed (the shutdown path) instead of throwing.
  UnixConn accept();

  /// Close the listening fd; wakes a blocked accept(). Idempotent.
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  // Atomic: close() is called from the stop path while another thread is
  // blocked in (or racing toward) accept() on the same fd.
  std::atomic<int> fd_{-1};
};

}  // namespace tgs
