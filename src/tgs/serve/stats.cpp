#include "tgs/serve/stats.h"

#include <algorithm>

namespace tgs {

namespace {

int bucket_of(std::uint64_t micros) {
  int b = 0;
  while (micros > 1 && b < LatencyHist::kBuckets - 1) {
    micros >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void LatencyHist::record(std::uint64_t micros) {
  ++buckets_[static_cast<std::size_t>(bucket_of(micros))];
  ++count_;
  sum_ += micros;
  max_ = std::max(max_, micros);
}

std::uint64_t LatencyHist::quantile_micros(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the quantile sample, 1-based ceil: p50 of 4 samples is rank 2.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    // Bucket upper edge, clamped so no quantile can exceed the true max.
    if (seen >= rank) return std::min(std::uint64_t{1} << (b + 1), max_);
  }
  return max_;
}

void ServerStats::record_latency(const std::string& algo,
                                 std::uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  algos_[algo].lat.record(micros);
}

void ServerStats::record_cache_hit(const std::string& algo) {
  std::lock_guard<std::mutex> lock(mu_);
  ++algos_[algo].cache_hits;
}

ServerStats::Snapshot ServerStats::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.requests_total = requests_total_;
  s.requests_ok = requests_ok_;
  s.requests_error = requests_error_;
  s.requests_rejected = requests_rejected_;
  s.deadline_exceeded = deadline_exceeded_;
  s.shed_requests = shed_requests_;
  s.retries_observed = retries_observed_;
  s.cache_insert_failures = cache_insert_failures_;
  for (const auto& [name, as] : algos_) {
    AlgoSnapshot a;
    a.algo = name;
    a.computed = as.lat.count();
    a.cache_hits = as.cache_hits;
    a.total_micros = as.lat.total_micros();
    a.p50_micros = as.lat.quantile_micros(0.5);
    a.p90_micros = as.lat.quantile_micros(0.9);
    a.max_micros = as.lat.max_micros();
    s.algos.push_back(std::move(a));
  }
  return s;
}

}  // namespace tgs
