// Deterministic fault injection for the serving stack.
//
// Every failure mode the daemon must survive -- interrupted syscalls,
// short reads/writes, stalled workers, torn journal records, allocation
// failure on cache insert -- is a named *fault point* compiled into the
// production code path. A FaultPlan arms points with scripted rules
// (skip N hits, fire M times, optional argument, optional seeded
// percentage), so a test can write "the 4th journal append is torn" or
// "the first 10 reads take an EINTR" as data and assert the exact
// structured error that must come back. No #ifdef test builds: what the
// tests exercise is the binary that ships.
//
// Cost when no plan is armed (production): one relaxed atomic load per
// hook -- measured in the existing perf gates as noise.
//
// Spec grammar (CLI --faults= / env TGS_FAULTS, clauses comma-separated):
//
//   clause  := "seed=" N
//            | point ["@" skip] ["*" count | "*"] [":" arg] ["~" percent]
//   point   := accept_eintr | read_eintr | read_short | write_eintr
//            | write_short | worker_stall | journal_torn | cache_oom
//
//   skip    hits to pass through before firing        (default 0)
//   count   times to fire once reached; bare "*" = unlimited (default 1)
//   arg     integer parameter: stall milliseconds (worker_stall, default
//           100), bytes per short read/write (read_short/write_short,
//           default 1), framed bytes actually written (journal_torn,
//           default: half the record)
//   percent fire on only this % of eligible hits, decided by a hash of
//           (seed, point, hit index) -- deterministic for a fixed seed
//
// Examples:
//   read_eintr*10                 first ten reads are interrupted
//   worker_stall@1:250            the 2nd scheduled job stalls 250 ms
//   journal_torn@3                the 4th journal append is torn mid-record
//   write_short*:1~25,seed=7      a quarter of writes deliver 1 byte
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace tgs {

enum class FaultPoint {
  kAcceptEintr,    // UnixListener::accept sees a (simulated) EINTR
  kReadEintr,      // UnixConn::read_line's read(2) is interrupted
  kReadShort,      // read(2) delivers only `arg` bytes
  kWriteEintr,     // UnixConn::write_line's send(2) is interrupted
  kWriteShort,     // send(2) accepts only `arg` bytes
  kWorkerStall,    // a scheduler worker sleeps `arg` ms before running
  kJournalTorn,    // a journal append writes a partial record, as if the
                   // process died mid-write; the journal seals itself
  kCacheOom,       // ScheduleCache::insert throws std::bad_alloc
  kCount
};

const char* fault_point_name(FaultPoint p);

/// One armed point's script. Defaults mirror the spec grammar above.
struct FaultRule {
  std::uint64_t skip = 0;               // hits to pass through first
  std::uint64_t count = 1;              // firings once reached; ~0ull = inf
  std::int64_t arg = 0;                 // 0 = point-specific default
  std::uint32_t percent = 100;          // of eligible hits that fire
};

/// The process-wide fault script. Thread-safe; hooks are zero-cost (one
/// relaxed load) while no point is armed. Tests arm/clear it directly;
/// the daemon arms it once at startup from --faults / $TGS_FAULTS.
class FaultPlan {
 public:
  static FaultPlan& global();

  void arm(FaultPoint p, FaultRule rule);

  /// Parse and arm a full spec string (see the grammar above). Throws
  /// std::invalid_argument naming the offending clause.
  void arm_spec(const std::string& spec);

  /// Disarm everything and zero the hit/fired counters.
  void clear();

  /// Base seed of the deterministic percent decisions (default 1).
  void set_seed(std::uint64_t seed);

  /// True and the rule's argument (via `arg`, if non-null) when point `p`
  /// fires on this hit. Counts the hit either way.
  bool fire(FaultPoint p, std::int64_t* arg = nullptr);

  /// Times `p` actually fired since the last clear().
  std::uint64_t fired(FaultPoint p) const;

  /// The inlined hook the production code calls.
  static bool hit(FaultPoint p, std::int64_t* arg = nullptr) {
    FaultPlan& f = global();
    if (f.armed_points_.load(std::memory_order_relaxed) == 0) return false;
    return f.fire(p, arg);
  }

 private:
  struct PointState {
    bool armed = false;
    FaultRule rule;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  std::atomic<int> armed_points_{0};
  mutable std::mutex mu_;
  std::array<PointState, static_cast<std::size_t>(FaultPoint::kCount)> points_;
  std::uint64_t seed_ = 1;
};

}  // namespace tgs
