// The tgs_serve wire protocol: one JSON object per line, in each direction.
//
// Request fields (all optional unless noted):
//   op        "schedule" (default) | "stats" | "ping" | "shutdown"
//   id        string echoed verbatim in the response (client correlation)
//   graph     REQUIRED for op=schedule: a tgs1 graph (graph_io format)
//   algo      REQUIRED for op=schedule: registry name ("MCP", "DLS", ...)
//   topology  machine spec ("ring4", "mesh2x3", "hcube3", ...): selects the
//             APN algorithm registry. Absent = fully-connected machine
//             (BNP/UNC registry) with `procs` processors.
//   procs     processor count for the fully-connected machine; 0 (default)
//             = virtually unlimited (the paper's BNP/UNC setting)
//   schedule  bool: include the full tgssched1 schedule text in the reply
//   cache     bool (default true): permit serving/populating the cache
//   deadline_ms  int >= 0: abandon the computation (status=error,
//             code=deadline_exceeded) if it is still running this many ms
//             after admission. 0 (default) = server default / cap applies.
//   priority  "high" (default) | "low": under load the server sheds "low"
//             requests that miss the cache instead of queueing them
//   retry     int >= 0: client retry attempt number, 0 = first try.
//             Observed for stats only; retried ids are served idempotently
//             because scheduling is deterministic and cached.
//
// Response: {"id", "status":"ok"|"error", ...}. See docs/serve.md for the
// full schema and the error-code table.
#pragma once

#include <stdexcept>
#include <string>

#include "tgs/serve/cache.h"
#include "tgs/serve/json.h"

namespace tgs {

/// Machine-readable error codes (the `code` field of error responses).
enum class ServeError {
  kBadJson,      // request line is not valid JSON / not an object
  kBadRequest,   // JSON is fine but fields are missing or ill-typed
  kBadGraph,     // graph text failed tgs1 parsing/validation
  kUnknownAlgo,  // algorithm name not in the registry for this machine
  kBadTopology,  // topology spec failed to parse
  kOverloaded,   // admission control rejected: queue at capacity / shed
  kDeadlineExceeded,  // the request's deadline expired before completion
  kInternal,     // scheduling itself threw (a bug: inputs were validated)
};

const char* serve_error_code(ServeError e);

/// Thrown by parse_schedule_request; carries the protocol error code.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ServeError code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ServeError code() const { return code_; }

 private:
  ServeError code_;
};

struct ServeRequest {
  std::string op;        // normalized, one of the four ops
  std::string id;        // may be empty
  std::string graph_text;
  std::string algo;
  std::string topology;  // empty = fully-connected machine
  int procs = 0;
  bool want_schedule = false;
  bool use_cache = true;
  int deadline_ms = 0;           // 0 = no client deadline
  bool low_priority = false;     // sheddable under load
  int retry = 0;                 // client attempt number (0 = first)
};

/// Parse one request line. Throws ProtocolError(kBadJson) for non-JSON,
/// ProtocolError(kBadRequest) for structural problems. Field *content*
/// (graph text, algo name, topology spec) is validated later, where the
/// specific error codes originate.
ServeRequest parse_request(const std::string& line);

/// Canonical cache key for a schedule request whose graph hashed to
/// `fingerprint_hex`. `algo_class` and `algo` must be the *resolved*
/// registry spellings (so "DLS-APN" and "DLS" on a topology key equal).
std::string make_cache_key(const std::string& fingerprint_hex,
                           const std::string& algo_class,
                           const std::string& algo,
                           const std::string& topology, int procs);

// ----------------------------------------------------------- responses --

std::string render_error(const std::string& id, ServeError code,
                         const std::string& message);

/// `cached` distinguishes replayed from computed results; `micros` is the
/// compute time (0 when cached).
std::string render_schedule_response(const std::string& id,
                                     const std::string& algo,
                                     const std::string& algo_class,
                                     const CachedSchedule& result, bool cached,
                                     std::uint64_t micros, bool with_schedule,
                                     bool is_apn);

std::string render_pong(const std::string& id);
std::string render_shutdown_ack(const std::string& id);

}  // namespace tgs
