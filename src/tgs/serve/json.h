// Minimal recursive-descent JSON parser for the serve protocol.
//
// The repo writes JSON through exec/jsonl.h; the daemon additionally has to
// *read* it. This parser covers the full JSON grammar (objects, arrays,
// strings with escapes, numbers, booleans, null) with two deliberate
// simplifications: numbers are stored as double (protocol fields are small
// integers and ratios), and \uXXXX escapes outside the BMP are encoded as
// their surrogate code points individually.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace tgs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const std::vector<JsonValue>& as_array() const { return arr_; }
  const std::map<std::string, JsonValue>& as_object() const { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Typed member accessors with fallback; throw std::invalid_argument
  /// ("field 'x' must be a string/number/bool") when the member exists but
  /// has the wrong type -- protocol errors should name the offending field.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_number(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws std::invalid_argument with an offset-bearing
/// message on malformed input.
JsonValue json_parse(const std::string& text);

}  // namespace tgs
