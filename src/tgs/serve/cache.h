// Content-addressed schedule cache for the serving daemon.
//
// Keys are canonical strings assembled by the protocol layer:
//   <graph fingerprint hex> "|" <algo class> "|" <algorithm> "|" <machine>
// where the fingerprint covers exactly the scheduling-relevant graph
// content (graph/fingerprint.h) and <machine> is "procs=N" or the literal
// topology spec. Two requests with equal keys are guaranteed equal inputs
// to Scheduler::run (modulo a 2^-128 hash collision), so the cached result
// -- schedule length, metrics, and the full tgssched1 text -- can be
// replayed without scheduling.
//
// Bounded LRU: lookup() refreshes recency, insert() evicts the least
// recently used entry when full. Thread-safe; counters (hits, misses,
// evictions) feed the stats surface.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tgs/util/types.h"

namespace tgs {

/// The replayable part of a schedule response.
struct CachedSchedule {
  Time makespan = 0;
  double nsl = 0;
  int procs_used = 0;
  std::size_t num_messages = 0;   // APN only; 0 otherwise
  std::string schedule_text;      // tgssched1 serialization
};

class ScheduleCache {
 public:
  /// `capacity` <= 0 disables caching (every lookup misses, inserts are
  /// dropped).
  explicit ScheduleCache(std::size_t capacity) : capacity_(capacity) {}

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  /// Copies the entry into `out` and refreshes its recency. Counts a hit
  /// or a miss.
  bool lookup(const std::string& key, CachedSchedule* out);

  /// Inserts or overwrites; evicts the LRU entry when at capacity. May
  /// throw std::bad_alloc under memory pressure (or a scripted kCacheOom
  /// fault) -- callers treat that as "not cached", never as fatal.
  void insert(const std::string& key, const CachedSchedule& value);

  /// Copy of all entries, least recently used first, so that replaying
  /// them through insert() reproduces the same recency order. Feeds
  /// journal compaction.
  std::vector<std::pair<std::string, CachedSchedule>> snapshot() const;

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  Counters counters() const;

 private:
  struct Entry {
    std::string key;
    CachedSchedule value;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace tgs
