#include "tgs/serve/persist.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "tgs/serve/faults.h"

namespace tgs {

namespace {

constexpr char kMagic[8] = {'T', 'G', 'S', 'J', 'R', 'N', 'L', '1'};

// Records are length-prefixed; cap a single record well above any real
// schedule text (which is itself bounded by the 64 MiB line limit) so a
// corrupt length field can't drive a multi-gigabyte allocation during
// recovery -- it is treated as a torn tail instead.
constexpr std::uint32_t kMaxRecord = 256u << 20;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

// Bounded little-endian reads over a byte range; each returns false when
// the payload is too short, which recovery treats as corruption.
struct Reader {
  const unsigned char* p;
  const unsigned char* end;

  bool u32(std::uint32_t* v) {
    if (end - p < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= std::uint32_t(p[i]) << (8 * i);
    p += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (end - p < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= std::uint64_t(p[i]) << (8 * i);
    p += 8;
    return true;
  }
  bool bytes(std::string* s, std::uint32_t n) {
    if (end - p < static_cast<std::ptrdiff_t>(n)) return false;
    s->assign(reinterpret_cast<const char*>(p), n);
    p += n;
    return true;
  }
};

std::string encode_payload(const std::string& key,
                           const CachedSchedule& value) {
  std::string payload;
  payload.reserve(key.size() + value.schedule_text.size() + 40);
  put_u32(&payload, static_cast<std::uint32_t>(key.size()));
  payload.append(key);
  put_u64(&payload, static_cast<std::uint64_t>(value.makespan));
  std::uint64_t nsl_bits;
  static_assert(sizeof nsl_bits == sizeof value.nsl, "double must be 64-bit");
  std::memcpy(&nsl_bits, &value.nsl, sizeof nsl_bits);
  put_u64(&payload, nsl_bits);
  put_u32(&payload, static_cast<std::uint32_t>(value.procs_used));
  put_u64(&payload, static_cast<std::uint64_t>(value.num_messages));
  put_u32(&payload, static_cast<std::uint32_t>(value.schedule_text.size()));
  payload.append(value.schedule_text);
  return payload;
}

bool decode_payload(const std::string& payload, std::string* key,
                    CachedSchedule* value) {
  Reader r{reinterpret_cast<const unsigned char*>(payload.data()),
           reinterpret_cast<const unsigned char*>(payload.data()) +
               payload.size()};
  std::uint32_t key_len, procs, text_len;
  std::uint64_t makespan, nsl_bits, num_messages;
  if (!r.u32(&key_len) || !r.bytes(key, key_len)) return false;
  if (!r.u64(&makespan) || !r.u64(&nsl_bits)) return false;
  if (!r.u32(&procs) || !r.u64(&num_messages)) return false;
  if (!r.u32(&text_len) || !r.bytes(&value->schedule_text, text_len))
    return false;
  if (r.p != r.end) return false;  // trailing garbage inside the frame
  value->makespan = static_cast<Time>(makespan);
  std::memcpy(&value->nsl, &nsl_bits, sizeof value->nsl);
  value->procs_used = static_cast<int>(procs);
  value->num_messages = static_cast<std::size_t>(num_messages);
  return true;
}

std::string encode_record(const std::string& payload) {
  std::string rec;
  rec.reserve(payload.size() + 8);
  put_u32(&rec, static_cast<std::uint32_t>(payload.size()));
  put_u32(&rec, crc32_ieee(payload.data(), payload.size()));
  rec.append(payload);
  return rec;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // short file: torn tail
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void Journal::open(const std::string& path, int fsync_every) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_ = path;
  fsync_every_ = fsync_every;
  sealed_ = false;
  recovery_ = JournalRecovery();

  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0)
    throw std::runtime_error("journal open " + path + ": " +
                             std::strerror(errno));

  struct stat st{};
  if (::fstat(fd_, &st) != 0) st.st_size = 0;
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  // Empty (fresh) file: stamp the header and we're done.
  if (file_size == 0) {
    write_all_locked(kMagic, sizeof kMagic);
    if (fsync_every_ > 0) ::fsync(fd_);
    return;
  }

  // Recovery: accept the longest prefix of intact records, then truncate
  // whatever follows. Any defect -- bad magic, a frame that runs past
  // EOF, a CRC mismatch, a payload that doesn't parse exactly -- ends the
  // valid prefix; nothing here throws.
  std::uint64_t valid = 0;
  char magic[sizeof kMagic];
  if (::lseek(fd_, 0, SEEK_SET) == 0 &&
      read_exact(fd_, magic, sizeof magic) &&
      std::memcmp(magic, kMagic, sizeof magic) == 0) {
    valid = sizeof kMagic;
    for (;;) {
      unsigned char frame[8];
      if (!read_exact(fd_, frame, sizeof frame)) break;
      std::uint32_t len = 0, crc = 0;
      for (int i = 0; i < 4; ++i) {
        len |= std::uint32_t(frame[i]) << (8 * i);
        crc |= std::uint32_t(frame[4 + i]) << (8 * i);
      }
      if (len > kMaxRecord || valid + 8 + len > file_size) break;
      std::string payload(len, '\0');
      if (len > 0 && !read_exact(fd_, &payload[0], len)) break;
      if (crc32_ieee(payload.data(), payload.size()) != crc) break;
      std::string key;
      CachedSchedule value;
      if (!decode_payload(payload, &key, &value)) break;
      recovery_.entries.emplace_back(std::move(key), std::move(value));
      valid += 8 + len;
    }
  }

  recovery_.replayed = recovery_.entries.size();
  if (valid < file_size) {
    recovery_.truncated_bytes = file_size - valid;
    recovery_.tail_truncated = true;
  }

  if (valid == 0) {
    // Header itself was damaged: start the journal over. The unreadable
    // bytes are reported, not preserved -- an unparseable journal can
    // never contribute entries again anyway.
    if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) != 0) {
      // Can't reset the file: keep serving without persistence.
      ::close(fd_);
      fd_ = -1;
      return;
    }
    write_all_locked(kMagic, sizeof kMagic);
  } else if (valid < file_size) {
    if (::ftruncate(fd_, static_cast<off_t>(valid)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
  }
  ::lseek(fd_, 0, SEEK_END);
  if (recovery_.tail_truncated && fsync_every_ > 0) ::fsync(fd_);
}

bool Journal::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

void Journal::append(const std::string& key, const CachedSchedule& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0 || sealed_) return;

  const std::string rec = encode_record(encode_payload(key, value));

  // Torn-write fault: persist only a prefix of the record, then seal the
  // journal -- from here on the file looks exactly as if the process had
  // been killed mid-write, which is what the recovery tests replay.
  std::int64_t torn_arg = 0;
  if (FaultPlan::hit(FaultPoint::kJournalTorn, &torn_arg)) {
    std::size_t keep = torn_arg > 0 ? static_cast<std::size_t>(torn_arg)
                                    : rec.size() / 2;
    if (keep >= rec.size()) keep = rec.size() - 1;
    write_all_locked(rec.data(), keep);
    ::fsync(fd_);
    sealed_ = true;
    return;
  }

  write_all_locked(rec.data(), rec.size());
  ++appends_;
  ++appends_since_compact_;
  if (fsync_every_ > 0 && appends_ % static_cast<std::uint64_t>(
                                         fsync_every_) == 0)
    ::fsync(fd_);
}

void Journal::compact(
    const std::vector<std::pair<std::string, CachedSchedule>>& live) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0 || sealed_) return;

  const std::string tmp_path = path_ + ".tmp";
  const int tmp = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp < 0) return;

  std::string out(kMagic, sizeof kMagic);
  for (const auto& [key, value] : live)
    out.append(encode_record(encode_payload(key, value)));

  std::size_t off = 0;
  bool ok = true;
  while (off < out.size()) {
    const ssize_t n = ::write(tmp, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  if (ok) ok = ::fsync(tmp) == 0;
  ::close(tmp);
  if (!ok || ::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return;
  }

  // Swap the fd to the new file; the old journal is gone.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND, 0644);
  appends_since_compact_ = 0;
  ++compactions_;
}

std::uint64_t Journal::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

std::uint64_t Journal::appends_since_compact() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_since_compact_;
}

std::uint64_t Journal::compactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

void Journal::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (fsync_every_ > 0) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::write_all_locked(const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::write(fd_, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      // A failing disk mid-append: stop persisting rather than crash the
      // daemon. The in-memory cache keeps serving.
      ::close(fd_);
      fd_ = -1;
      return;
    }
    off += static_cast<std::size_t>(r);
  }
}

}  // namespace tgs
