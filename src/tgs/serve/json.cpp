#include "tgs/serve/json.h"

#include <cctype>
#include <cstdlib>

namespace tgs {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_string())
    throw std::invalid_argument("field '" + key + "' must be a string");
  return v->as_string();
}

double JsonValue::get_number(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number())
    throw std::invalid_argument("field '" + key + "' must be a number");
  return v->as_number();
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_bool())
    throw std::invalid_argument("field '" + key + "' must be a boolean");
  return v->as_bool();
}

// Not in an anonymous namespace: JsonValue friends this exact name.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': parse_object(v); break;
      case '[': parse_array(v); break;
      case '"':
        v.type_ = JsonValue::Type::kString;
        v.str_ = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        v.type_ = JsonValue::Type::kNull;
        break;
      default:
        v.type_ = JsonValue::Type::kNumber;
        v.num_ = parse_number();
        break;
    }
    --depth_;
    return v;
  }

  void parse_object(JsonValue& v) {
    v.type_ = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj_[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(JsonValue& v) {
    v.type_ = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      v.arr_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      switch (peek()) {
        case '"': out.push_back('"'); ++pos_; break;
        case '\\': out.push_back('\\'); ++pos_; break;
        case '/': out.push_back('/'); ++pos_; break;
        case 'b': out.push_back('\b'); ++pos_; break;
        case 'f': out.push_back('\f'); ++pos_; break;
        case 'n': out.push_back('\n'); ++pos_; break;
        case 'r': out.push_back('\r'); ++pos_; break;
        case 't': out.push_back('\t'); ++pos_; break;
        case 'u': {
          ++pos_;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = peek();
            unsigned d;
            if (h >= '0' && h <= '9') d = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') d = static_cast<unsigned>(h - 'a') + 10;
            else if (h >= 'A' && h <= 'F') d = static_cast<unsigned>(h - 'A') + 10;
            else fail("invalid \\u escape");
            cp = cp * 16 + d;
            ++pos_;
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    return std::strtod(text_.c_str() + start, nullptr);
  }

  static constexpr int kMaxDepth = 64;
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue json_parse(const std::string& text) {
  JsonParser p(text);
  return p.parse_document();
}

}  // namespace tgs
