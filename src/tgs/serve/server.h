// The scheduling-as-a-service daemon core.
//
// Architecture (one Server instance = one daemon):
//
//   accept thread (serve_forever)
//     -> one reader thread per connection: parses request lines, answers
//        stats/ping/shutdown inline, resolves + fingerprints schedule
//        requests and serves cache hits without ever touching the queue
//     -> bounded admission into a ThreadPool of scheduler workers; a full
//        queue rejects deterministically with an "overloaded" status
//        carrying the current depth (honest backpressure, never blocking
//        the reader)
//     -> each worker binds a thread-local SchedWorkspace (the PR-4 model:
//        zero steady-state allocation, graph attributes computed once per
//        request) and writes its response line directly to the requesting
//        connection under that connection's write mutex -- responses on a
//        pipelined connection may interleave out of request order, which
//        is what the echoed `id` field is for.
//
// Results are byte-identical to direct Scheduler::run / ApnScheduler::run
// calls on the same inputs: the server adds routing, not policy.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tgs/exec/thread_pool.h"
#include "tgs/serve/cache.h"
#include "tgs/serve/protocol.h"
#include "tgs/serve/socket.h"
#include "tgs/serve/stats.h"

namespace tgs {

struct ServeOptions {
  std::string socket_path = "/tmp/tgs_serve.sock";
  /// Scheduler worker threads; < 1 = hardware concurrency.
  int workers = 0;
  /// Max schedule jobs admitted but unfinished before rejection.
  std::size_t queue_capacity = 256;
  /// Schedule-cache entries (0 disables caching).
  std::size_t cache_capacity = 1024;
};

class Server {
 public:
  /// Binds the listening socket; throws std::runtime_error on failure.
  explicit Server(ServeOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop. Returns after request_stop() (from any thread, a signal
  /// waiter, or a client "shutdown" op) once in-flight work has drained
  /// and every connection thread has been joined.
  void serve_forever();

  /// Begin shutdown: stop admitting, wake the accept loop. Thread-safe and
  /// idempotent; returns immediately (serve_forever does the draining).
  void request_stop();

  const std::string& socket_path() const { return listener_.path(); }
  int num_workers() const { return pool_.size(); }

  /// Introspection for tests and the stats op.
  ServerStats& stats() { return stats_; }
  ScheduleCache& cache() { return cache_; }

 private:
  struct ConnCtx;
  struct ResolvedRequest;

  void handle_connection(const std::shared_ptr<ConnCtx>& ctx);
  void handle_line(const std::shared_ptr<ConnCtx>& ctx,
                   const std::string& line);
  void handle_schedule(const std::shared_ptr<ConnCtx>& ctx,
                       const ServeRequest& req);
  std::string render_stats(const std::string& id) const;
  void reap_finished_connections(bool join_all);

  static void write_response(const std::shared_ptr<ConnCtx>& ctx,
                             const std::string& line);

  ServeOptions opt_;
  UnixListener listener_;
  ThreadPool pool_;
  ScheduleCache cache_;
  ServerStats stats_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> inflight_{0};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ConnCtx>> conns_;
};

}  // namespace tgs
