// The scheduling-as-a-service daemon core.
//
// Architecture (one Server instance = one daemon):
//
//   accept thread (serve_forever)
//     -> one reader thread per connection: parses request lines, answers
//        stats/ping/shutdown inline, resolves + fingerprints schedule
//        requests and serves cache hits without ever touching the queue
//     -> bounded admission into a ThreadPool of scheduler workers; a full
//        queue rejects deterministically with an "overloaded" status
//        carrying the current depth (honest backpressure, never blocking
//        the reader)
//     -> each worker binds a thread-local SchedWorkspace (the PR-4 model:
//        zero steady-state allocation, graph attributes computed once per
//        request) and writes its response line directly to the requesting
//        connection under that connection's write mutex -- responses on a
//        pipelined connection may interleave out of request order, which
//        is what the echoed `id` field is for.
//
// Results are byte-identical to direct Scheduler::run / ApnScheduler::run
// calls on the same inputs: the server adds routing, not policy.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tgs/exec/thread_pool.h"
#include "tgs/serve/cache.h"
#include "tgs/serve/persist.h"
#include "tgs/serve/protocol.h"
#include "tgs/serve/socket.h"
#include "tgs/serve/stats.h"

namespace tgs {

struct ServeOptions {
  std::string socket_path = "/tmp/tgs_serve.sock";
  /// Scheduler worker threads; < 1 = hardware concurrency.
  int workers = 0;
  /// Max schedule jobs admitted but unfinished before rejection.
  std::size_t queue_capacity = 256;
  /// Schedule-cache entries (0 disables caching).
  std::size_t cache_capacity = 1024;

  /// Journal file for crash-safe cache persistence; empty = in-memory
  /// only. On startup the valid prefix is replayed into the cache.
  std::string journal_path;
  /// fsync the journal after every Nth append (1 = every append; 0 =
  /// leave syncing to the OS).
  int journal_fsync_every = 1;
  /// Compact the journal down to the live cache contents after this many
  /// appends since the last compaction (0 = never compact).
  int journal_compact_every = 4096;

  /// Deadline applied to schedule requests that carry none; 0 = none.
  int default_deadline_ms = 0;
  /// Hard cap on any request's effective deadline (applies even to
  /// requests with deadline_ms=0); 0 = no cap.
  int max_deadline_ms = 0;

  /// SO_RCVTIMEO/SO_SNDTIMEO on accepted connections, so a stalled or
  /// vanished peer cannot pin a reader thread forever; 0 = blocking.
  int io_timeout_ms = 0;

  /// Inflight depth at which low-priority cache misses are shed instead
  /// of queued; 0 = derive as 3/4 of queue_capacity.
  std::size_t shed_low_priority_at = 0;

  /// Per-request line bound; oversized requests get a structured
  /// bad_request instead of growing the read buffer without limit.
  std::size_t max_request_bytes = UnixConn::kMaxLine;
};

class Server {
 public:
  /// Binds the listening socket; throws std::runtime_error on failure.
  explicit Server(ServeOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop. Returns after request_stop() (from any thread, a signal
  /// waiter, or a client "shutdown" op) once in-flight work has drained
  /// and every connection thread has been joined.
  void serve_forever();

  /// Begin shutdown: stop admitting, wake the accept loop. Thread-safe and
  /// idempotent; returns immediately (serve_forever does the draining).
  void request_stop();

  const std::string& socket_path() const { return listener_.path(); }
  int num_workers() const { return pool_.size(); }

  /// Introspection for tests and the stats op.
  ServerStats& stats() { return stats_; }
  ScheduleCache& cache() { return cache_; }
  Journal& journal() { return journal_; }

 private:
  struct ConnCtx;
  struct ResolvedRequest;

  void handle_connection(const std::shared_ptr<ConnCtx>& ctx);
  void handle_line(const std::shared_ptr<ConnCtx>& ctx,
                   const std::string& line);
  void handle_schedule(const std::shared_ptr<ConnCtx>& ctx,
                       const ServeRequest& req);
  std::string render_stats(const std::string& id) const;
  void reap_finished_connections(bool join_all);

  static void write_response(const std::shared_ptr<ConnCtx>& ctx,
                             const std::string& line);

  ServeOptions opt_;
  UnixListener listener_;
  ThreadPool pool_;
  ScheduleCache cache_;
  Journal journal_;
  ServerStats stats_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> inflight_{0};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ConnCtx>> conns_;
};

}  // namespace tgs
