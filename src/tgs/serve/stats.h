// Server-side counters and per-algorithm latency histograms backing the
// "stats" protocol op.
//
// Latencies are recorded in microseconds into log2 buckets (bucket i holds
// values in [2^i, 2^(i+1))), which gives constant-size, lock-cheap
// histograms whose quantiles are exact to within a factor of two -- plenty
// to tell a 100us ETF call from a 100ms BSA call. Only *computed* schedule
// requests are recorded; cache hits are counted separately (their latency
// is the protocol floor, not the algorithm's).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tgs {

class LatencyHist {
 public:
  static constexpr int kBuckets = 40;  // 2^40 us ~ 12.7 days: plenty

  void record(std::uint64_t micros);

  std::uint64_t count() const { return count_; }
  std::uint64_t total_micros() const { return sum_; }
  std::uint64_t max_micros() const { return max_; }

  /// Upper edge of the bucket holding the q-quantile sample (q in [0, 1]);
  /// 0 when empty.
  std::uint64_t quantile_micros(double q) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Aggregated request counters. One instance per server; all methods are
/// thread-safe.
class ServerStats {
 public:
  void count_request() { bump(&requests_total_); }
  void count_ok() { bump(&requests_ok_); }
  void count_error() { bump(&requests_error_); }
  void count_rejected() { bump(&requests_rejected_); }

  // Robustness counters (the fault/degradation surface of the stats op).
  void count_deadline_exceeded() { bump(&deadline_exceeded_); }
  void count_shed() { bump(&shed_requests_); }
  void count_retry_observed() { bump(&retries_observed_); }
  void count_cache_insert_failure() { bump(&cache_insert_failures_); }

  /// Record one computed schedule for `algo` taking `micros`.
  void record_latency(const std::string& algo, std::uint64_t micros);

  /// Record one cache-served schedule for `algo`.
  void record_cache_hit(const std::string& algo);

  struct AlgoSnapshot {
    std::string algo;
    std::uint64_t computed = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t total_micros = 0;
    std::uint64_t p50_micros = 0;
    std::uint64_t p90_micros = 0;
    std::uint64_t max_micros = 0;
  };
  struct Snapshot {
    std::uint64_t requests_total = 0;
    std::uint64_t requests_ok = 0;
    std::uint64_t requests_error = 0;
    std::uint64_t requests_rejected = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t shed_requests = 0;
    std::uint64_t retries_observed = 0;
    std::uint64_t cache_insert_failures = 0;
    std::vector<AlgoSnapshot> algos;  // sorted by algorithm name
  };
  Snapshot snapshot() const;

 private:
  struct AlgoStats {
    LatencyHist lat;
    std::uint64_t cache_hits = 0;
  };

  void bump(std::uint64_t* counter) {
    std::lock_guard<std::mutex> lock(mu_);
    ++*counter;
  }

  mutable std::mutex mu_;
  std::uint64_t requests_total_ = 0;
  std::uint64_t requests_ok_ = 0;
  std::uint64_t requests_error_ = 0;
  std::uint64_t requests_rejected_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t shed_requests_ = 0;
  std::uint64_t retries_observed_ = 0;
  std::uint64_t cache_insert_failures_ = 0;
  std::map<std::string, AlgoStats> algos_;
};

}  // namespace tgs
