#include "tgs/serve/server.h"

#include <chrono>
#include <new>
#include <utility>

#include "tgs/exec/jsonl.h"
#include "tgs/serve/faults.h"
#include "tgs/graph/fingerprint.h"
#include "tgs/graph/graph_io.h"
#include "tgs/harness/registry.h"
#include "tgs/net/routing.h"
#include "tgs/net/topology.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/schedule_io.h"
#include "tgs/sched/workspace.h"

namespace tgs {

namespace {

int resolve_workers(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : static_cast<int>(hw);
}

/// One thread-local workspace per scheduler worker (and per reader thread
/// that happens to compute -- there are none today). begin_graph() is
/// called per request: every request carries a fresh graph object.
SchedWorkspace& worker_workspace(const TaskGraph& g) {
  static thread_local SchedWorkspace ws;
  ws.begin_graph(g);
  return ws;
}

std::uint64_t micros_since(
    std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Disarms the workspace deadline on every exit path -- including the
/// DeadlineExceeded throw itself -- so the thread-local workspace is
/// always handed back clean for the worker's next request.
struct DeadlineArmGuard {
  RunDeadline& deadline;
  ~DeadlineArmGuard() { deadline.disarm(); }
};

}  // namespace

/// Shared between the reader thread and the workers computing for it; the
/// write mutex serializes response lines so they cannot interleave.
struct Server::ConnCtx {
  UnixConn conn;
  std::mutex write_mu;
  std::atomic<bool> done{false};
  std::thread thread;
};

/// A schedule request after reader-side resolution: graph parsed and
/// fingerprinted, algorithm resolved against the right registry, cache key
/// built. Everything a worker needs, immutable from here on.
struct Server::ResolvedRequest {
  ServeRequest req;
  std::shared_ptr<const TaskGraph> graph;
  std::string resolved_algo;  // registry spelling ("DLS", not "DLS-APN")
  std::string algo_class;     // "BNP" / "UNC" / "APN"
  std::string cache_key;
  bool is_apn = false;
  /// Absolute deadline fixed at admission (epoch = no deadline), so queue
  /// wait counts against it just like compute time does.
  std::chrono::steady_clock::time_point deadline{};
};

Server::Server(ServeOptions opt)
    : opt_(opt),
      listener_(opt.socket_path),
      pool_(resolve_workers(opt.workers)),
      cache_(opt.cache_capacity) {
  if (!opt_.journal_path.empty()) {
    journal_.open(opt_.journal_path, opt_.journal_fsync_every);
    // Replay in append order: the journal records inserts oldest-first,
    // so replay reproduces the cache's recency order (and LRU eviction
    // keeps only the newest entries if the journal outgrew the cache).
    for (const auto& [key, value] : journal_.recovery().entries) {
      try {
        cache_.insert(key, value);
      } catch (const std::bad_alloc&) {
        stats_.count_cache_insert_failure();
        break;
      }
    }
  }
}

Server::~Server() {
  request_stop();
  // Safe double-drain when serve_forever() already ran: both are
  // idempotent, and conns_ is empty after its cleanup.
  pool_.stop(/*drain=*/true);
  reap_finished_connections(/*join_all=*/true);
}

void Server::request_stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();  // wakes the blocked accept()
}

void Server::serve_forever() {
  for (;;) {
    UnixConn conn = listener_.accept();
    if (!conn.valid()) break;  // listener closed: shutting down
    if (opt_.io_timeout_ms > 0)
      conn.set_timeouts(opt_.io_timeout_ms, opt_.io_timeout_ms);
    auto ctx = std::make_shared<ConnCtx>();
    ctx->conn = std::move(conn);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(ctx);
    }
    ctx->thread = std::thread([this, ctx] { handle_connection(ctx); });
    reap_finished_connections(/*join_all=*/false);
  }
  // Drain: admitted jobs finish and write their responses, then every
  // reader is forced off its socket and joined.
  pool_.stop(/*drain=*/true);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& ctx : conns_) ctx->conn.shutdown_both();
  }
  reap_finished_connections(/*join_all=*/true);
}

void Server::reap_finished_connections(bool join_all) {
  std::vector<std::shared_ptr<ConnCtx>> to_join;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto keep = conns_.begin();
    for (auto& ctx : conns_) {
      if (join_all || ctx->done.load()) {
        to_join.push_back(std::move(ctx));
      } else {
        *keep++ = std::move(ctx);
      }
    }
    conns_.erase(keep, conns_.end());
  }
  for (const auto& ctx : to_join)
    if (ctx->thread.joinable()) ctx->thread.join();
}

void Server::handle_connection(const std::shared_ptr<ConnCtx>& ctx) {
  std::string line;
  try {
    while (ctx->conn.read_line(&line, opt_.max_request_bytes))
      handle_line(ctx, line);
  } catch (const LineTooLong& e) {
    // A bounded request never OOMs the daemon: answer with a structured
    // error, then drop the connection -- with no line framing left we
    // cannot resynchronize on this socket.
    stats_.count_request();
    stats_.count_error();
    write_response(ctx, render_error("", ServeError::kBadRequest, e.what()));
  } catch (const std::exception&) {
    // Mid-line close, read timeout, or I/O error: drop the connection.
    // Anything already admitted still completes (the worker's write then
    // fails harmlessly against the shut-down fd).
  }
  ctx->conn.shutdown_both();
  ctx->done.store(true);
}

void Server::write_response(const std::shared_ptr<ConnCtx>& ctx,
                            const std::string& line) {
  std::lock_guard<std::mutex> lock(ctx->write_mu);
  try {
    ctx->conn.write_line(line);
  } catch (const std::exception&) {
    // Peer vanished before its answer; nothing to do.
  }
}

void Server::handle_line(const std::shared_ptr<ConnCtx>& ctx,
                         const std::string& line) {
  if (line.empty()) return;  // tolerate blank keep-alive lines
  stats_.count_request();
  ServeRequest req;
  try {
    req = parse_request(line);
  } catch (const ProtocolError& e) {
    stats_.count_error();
    write_response(ctx, render_error("", e.code(), e.what()));
    return;
  }

  if (req.op == "ping") {
    stats_.count_ok();
    write_response(ctx, render_pong(req.id));
    return;
  }
  if (req.op == "stats") {
    stats_.count_ok();
    write_response(ctx, render_stats(req.id));
    return;
  }
  if (req.op == "shutdown") {
    stats_.count_ok();
    write_response(ctx, render_shutdown_ack(req.id));
    request_stop();
    return;
  }
  handle_schedule(ctx, req);
}

void Server::handle_schedule(const std::shared_ptr<ConnCtx>& ctx,
                             const ServeRequest& req) {
  const auto reply_error = [&](ServeError code, const std::string& msg) {
    stats_.count_error();
    write_response(ctx, render_error(req.id, code, msg));
  };

  if (req.retry > 0) stats_.count_retry_observed();

  auto rr = std::make_shared<ResolvedRequest>();
  rr->req = req;
  rr->is_apn = !req.topology.empty();

  // Effective deadline: the client's ask, else the server default, both
  // clamped by the server cap (which also binds deadline-less requests).
  int deadline_ms =
      req.deadline_ms > 0 ? req.deadline_ms : opt_.default_deadline_ms;
  if (opt_.max_deadline_ms > 0 &&
      (deadline_ms == 0 || deadline_ms > opt_.max_deadline_ms))
    deadline_ms = opt_.max_deadline_ms;
  if (deadline_ms > 0)
    rr->deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(deadline_ms);

  // Resolution order fixes error precedence: graph, then topology, then
  // algorithm (documented in docs/serve.md).
  try {
    rr->graph =
        std::make_shared<const TaskGraph>(graph_from_string(req.graph_text));
  } catch (const std::exception& e) {
    return reply_error(ServeError::kBadGraph, e.what());
  }
  if (rr->is_apn) {
    try {
      Topology::from_spec(req.topology);  // validated here, built by worker
    } catch (const std::exception& e) {
      return reply_error(ServeError::kBadTopology, e.what());
    }
    try {
      const ApnSchedulerPtr algo = make_apn_scheduler(req.algo);
      rr->resolved_algo = algo->name();
      rr->algo_class = "APN";
    } catch (const std::exception& e) {
      return reply_error(ServeError::kUnknownAlgo, e.what());
    }
  } else {
    try {
      const SchedulerPtr algo = make_scheduler(req.algo);
      rr->resolved_algo = algo->name();
      rr->algo_class = algo_class_name(algo->algo_class());
    } catch (const std::exception& e) {
      return reply_error(ServeError::kUnknownAlgo, e.what());
    }
  }

  rr->cache_key =
      make_cache_key(graph_fingerprint(*rr->graph).hex(), rr->algo_class,
                     rr->resolved_algo, req.topology, req.procs);

  if (req.use_cache) {
    CachedSchedule hit;
    if (cache_.lookup(rr->cache_key, &hit)) {
      stats_.record_cache_hit(rr->resolved_algo);
      stats_.count_ok();
      write_response(ctx, render_schedule_response(
                              req.id, rr->resolved_algo, rr->algo_class, hit,
                              /*cached=*/true, /*micros=*/0,
                              req.want_schedule, rr->is_apn));
      return;
    }
  }

  // Graceful degradation: under pressure (but before the hard admission
  // bound) low-priority requests get the cache probe above and nothing
  // more -- the compute queue is kept for high-priority work. The client
  // backs off and retries; by then the entry may have been computed for
  // someone else and becomes a cache hit.
  const std::size_t shed_at =
      opt_.shed_low_priority_at > 0
          ? opt_.shed_low_priority_at
          : opt_.queue_capacity - opt_.queue_capacity / 4;

  // Admission control: a full queue answers immediately instead of
  // buffering unboundedly. fetch_add-then-check keeps the bound exact
  // without a lock on the hot path.
  const char* reject_reason = nullptr;
  bool shed = false;
  if (stopping_.load()) {
    reject_reason = "server shutting down";
  } else if (req.low_priority && inflight_.load() >= shed_at) {
    reject_reason = "low-priority request shed under load";
    shed = true;
  } else if (inflight_.fetch_add(1) >= opt_.queue_capacity) {
    inflight_.fetch_sub(1);
    reject_reason = "queue at capacity";
  }
  if (reject_reason != nullptr) {
    stats_.count_rejected();
    if (shed) stats_.count_shed();
    JsonObject o;
    if (!req.id.empty()) o.add("id", req.id);
    o.add("status", "error")
        .add("code", serve_error_code(ServeError::kOverloaded))
        .add("message", reject_reason)
        .add_uint("queue_depth", pool_.queue_depth())
        .add_uint("queue_capacity", opt_.queue_capacity);
    write_response(ctx, o.str());
    return;
  }

  try {
    pool_.submit([this, ctx, rr] {
      // Scripted stall: models a worker wedged on a slow NUMA page-in or
      // a debugger stop. Deadlined requests must still come back as
      // deadline_exceeded, and the worker must survive to take the next
      // job.
      std::int64_t stall_ms = 0;
      if (FaultPlan::hit(FaultPoint::kWorkerStall, &stall_ms))
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stall_ms > 0 ? stall_ms : 100));

      const auto started = std::chrono::steady_clock::now();
      CachedSchedule result;
      try {
        SchedWorkspace& ws = worker_workspace(*rr->graph);
        DeadlineArmGuard guard{ws.deadline()};
        if (rr->deadline != std::chrono::steady_clock::time_point{}) {
          // Queue wait may already have burned the whole budget.
          if (std::chrono::steady_clock::now() >= rr->deadline)
            throw DeadlineExceeded();
          ws.deadline().arm(rr->deadline);
        }
        if (rr->is_apn) {
          const RoutingTable routes(Topology::from_spec(rr->req.topology));
          const ApnSchedulerPtr algo = make_apn_scheduler(rr->resolved_algo);
          NetSchedule ns = algo->run(*rr->graph, routes, ws);
          result.makespan = ns.makespan();
          result.nsl = normalized_schedule_length(*rr->graph, ns.makespan());
          result.procs_used = ns.tasks().procs_used();
          result.num_messages = ns.messages().size();
          result.schedule_text = schedule_to_string(ns.tasks());
        } else {
          const SchedulerPtr algo = make_scheduler(rr->resolved_algo);
          SchedOptions opt;
          opt.num_procs = rr->req.procs;
          Schedule s = algo->run(*rr->graph, opt, ws);
          result.makespan = s.makespan();
          result.nsl = normalized_schedule_length(s);
          result.procs_used = s.procs_used();
          result.schedule_text = schedule_to_string(s);
        }
      } catch (const DeadlineExceeded& e) {
        // Cooperative cancellation: the scheduler unwound through
        // capacity-only scratch, so the workspace (and this worker) are
        // immediately reusable.
        inflight_.fetch_sub(1);
        stats_.count_deadline_exceeded();
        stats_.count_error();
        write_response(ctx, render_error(rr->req.id,
                                         ServeError::kDeadlineExceeded,
                                         e.what()));
        return;
      } catch (const std::exception& e) {
        inflight_.fetch_sub(1);
        stats_.count_error();
        write_response(ctx,
                       render_error(rr->req.id, ServeError::kInternal,
                                    e.what()));
        return;
      }
      const std::uint64_t micros = micros_since(started);
      bool inserted = false;
      if (rr->req.use_cache) {
        try {
          cache_.insert(rr->cache_key, result);
          inserted = true;
        } catch (const std::bad_alloc&) {
          // Memory pressure on insert: the result still goes to the
          // client, it just isn't cached (or journaled -- the journal
          // mirrors the cache).
          stats_.count_cache_insert_failure();
        }
      }
      if (inserted && journal_.is_open()) {
        // Durability before visibility: the entry is on disk (per the
        // fsync policy) before any client sees the response, so a crash
        // after this point replays it on restart.
        journal_.append(rr->cache_key, result);
        if (opt_.journal_compact_every > 0 &&
            journal_.appends_since_compact() >=
                static_cast<std::uint64_t>(opt_.journal_compact_every))
          journal_.compact(cache_.snapshot());
      }
      stats_.record_latency(rr->resolved_algo, micros);
      stats_.count_ok();
      inflight_.fetch_sub(1);
      write_response(ctx, render_schedule_response(
                              rr->req.id, rr->resolved_algo, rr->algo_class,
                              result, /*cached=*/false, micros,
                              rr->req.want_schedule, rr->is_apn));
    });
  } catch (const std::exception&) {
    // Pool already stopping (shutdown raced the admission check).
    inflight_.fetch_sub(1);
    stats_.count_rejected();
    write_response(ctx, render_error(req.id, ServeError::kOverloaded,
                                     "server shutting down"));
  }
}

std::string Server::render_stats(const std::string& id) const {
  const ServerStats::Snapshot s = stats_.snapshot();
  const ScheduleCache::Counters c = cache_.counters();
  JsonObject o;
  if (!id.empty()) o.add("id", id);
  o.add("status", "ok")
      .add("op", "stats")
      .add_int("workers", pool_.size())
      .add_uint("queue_depth", pool_.queue_depth())
      .add_uint("queue_capacity", opt_.queue_capacity)
      .add_uint("requests_total", s.requests_total)
      .add_uint("requests_ok", s.requests_ok)
      .add_uint("requests_error", s.requests_error)
      .add_uint("requests_rejected", s.requests_rejected)
      .add_uint("deadline_exceeded", s.deadline_exceeded)
      .add_uint("shed_requests", s.shed_requests)
      .add_uint("retries_observed", s.retries_observed)
      .add_uint("cache_insert_failures", s.cache_insert_failures)
      .add_uint("cache_hits", c.hits)
      .add_uint("cache_misses", c.misses)
      .add_uint("cache_evictions", c.evictions)
      .add_uint("cache_size", c.size)
      .add_uint("cache_capacity", c.capacity);
  JsonObject algos;
  for (const ServerStats::AlgoSnapshot& a : s.algos) {
    JsonObject entry;
    entry.add_uint("computed", a.computed)
        .add_uint("cache_hits", a.cache_hits)
        .add_uint("total_us", a.total_micros)
        .add_uint("p50_us", a.p50_micros)
        .add_uint("p90_us", a.p90_micros)
        .add_uint("max_us", a.max_micros);
    algos.add_raw(a.algo, entry.str());
  }
  o.add_raw("algos", algos.str());
  JsonObject journal;
  journal.add("enabled", journal_.is_open())
      .add_uint("replayed", journal_.recovery().replayed)
      .add_uint("truncated_bytes", journal_.recovery().truncated_bytes)
      .add("tail_truncated", journal_.recovery().tail_truncated)
      .add_uint("appends", journal_.appends())
      .add_uint("compactions", journal_.compactions());
  o.add_raw("journal", journal.str());
  return o.str();
}

}  // namespace tgs
