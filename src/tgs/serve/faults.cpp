#include "tgs/serve/faults.h"

#include <cstdlib>
#include <stdexcept>

#include "tgs/util/rng.h"

namespace tgs {

namespace {

constexpr std::size_t kNumPoints =
    static_cast<std::size_t>(FaultPoint::kCount);

constexpr const char* kPointNames[kNumPoints] = {
    "accept_eintr", "read_eintr",   "read_short",   "write_eintr",
    "write_short",  "worker_stall", "journal_torn", "cache_oom",
};

/// Deterministic percent decision: a fixed (seed, point, hit) triple
/// always lands on the same side, independent of thread interleaving.
bool percent_hit(std::uint64_t seed, std::size_t point, std::uint64_t hit,
                 std::uint32_t percent) {
  if (percent >= 100) return true;
  std::uint64_t state = seed ^ (static_cast<std::uint64_t>(point) << 56) ^ hit;
  return splitmix64(state) % 100 < percent;
}

/// Parse a decimal integer span [b, e); throws on junk.
std::uint64_t parse_u64(const std::string& s, const std::string& clause) {
  if (s.empty()) throw std::invalid_argument("fault clause '" + clause +
                                             "': empty number");
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("fault clause '" + clause +
                                  "': bad number '" + s + "'");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

const char* fault_point_name(FaultPoint p) {
  return kPointNames[static_cast<std::size_t>(p)];
}

FaultPlan& FaultPlan::global() {
  static FaultPlan plan;
  return plan;
}

void FaultPlan::arm(FaultPoint p, FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& st = points_[static_cast<std::size_t>(p)];
  if (!st.armed) armed_points_.fetch_add(1, std::memory_order_relaxed);
  st.armed = true;
  st.rule = rule;
  st.hits = 0;
  st.fired = 0;
}

void FaultPlan::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (PointState& st : points_) st = PointState{};
  armed_points_.store(0, std::memory_order_relaxed);
  seed_ = 1;
}

void FaultPlan::set_seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

bool FaultPlan::fire(FaultPoint p, std::int64_t* arg) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& st = points_[static_cast<std::size_t>(p)];
  if (!st.armed) return false;
  const std::uint64_t hit = st.hits++;
  if (hit < st.rule.skip) return false;
  if (st.rule.count != ~std::uint64_t{0} &&
      st.fired >= st.rule.count)
    return false;
  if (!percent_hit(seed_, static_cast<std::size_t>(p), hit, st.rule.percent))
    return false;
  ++st.fired;
  if (arg != nullptr) *arg = st.rule.arg;
  return true;
}

std::uint64_t FaultPlan::fired(FaultPoint p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_[static_cast<std::size_t>(p)].fired;
}

void FaultPlan::arm_spec(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) continue;

    if (clause.rfind("seed=", 0) == 0) {
      set_seed(parse_u64(clause.substr(5), clause));
      continue;
    }

    // Split the clause at its markers. Order in the grammar is
    // name[@skip][*count][:arg][~percent]; accept the markers in any
    // order after the name to be forgiving.
    std::size_t name_end = clause.find_first_of("@*:~");
    if (name_end == std::string::npos) name_end = clause.size();
    const std::string name = clause.substr(0, name_end);

    FaultRule rule;
    std::size_t i = name_end;
    while (i < clause.size()) {
      const char marker = clause[i++];
      std::size_t j = clause.find_first_of("@*:~", i);
      if (j == std::string::npos) j = clause.size();
      const std::string val = clause.substr(i, j - i);
      switch (marker) {
        case '@':
          rule.skip = parse_u64(val, clause);
          break;
        case '*':
          rule.count = val.empty() ? ~std::uint64_t{0} : parse_u64(val, clause);
          break;
        case ':':
          rule.arg = static_cast<std::int64_t>(parse_u64(val, clause));
          break;
        case '~': {
          const std::uint64_t p = parse_u64(val, clause);
          if (p > 100)
            throw std::invalid_argument("fault clause '" + clause +
                                        "': percent > 100");
          rule.percent = static_cast<std::uint32_t>(p);
          break;
        }
      }
      i = j;
    }

    bool matched = false;
    for (std::size_t k = 0; k < kNumPoints; ++k) {
      if (name == kPointNames[k]) {
        arm(static_cast<FaultPoint>(k), rule);
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::string known;
      for (std::size_t k = 0; k < kNumPoints; ++k) {
        if (k > 0) known += ", ";
        known += kPointNames[k];
      }
      throw std::invalid_argument("unknown fault point '" + name +
                                  "' (known: " + known + ")");
    }
  }
}

}  // namespace tgs
