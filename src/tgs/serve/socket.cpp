#include "tgs/serve/socket.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "tgs/serve/faults.h"

namespace tgs {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixConn::UnixConn(UnixConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

UnixConn& UnixConn::operator=(UnixConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

UnixConn UnixConn::connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect " + path);
  }
  return UnixConn(fd);
}

bool UnixConn::read_line(std::string* line, std::size_t max_line) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (buf_.size() > max_line) throw LineTooLong(max_line);
    char chunk[65536];
    ssize_t n;
    do {
      // Fault points: a scripted EINTR exercises this retry loop without
      // a real signal; a scripted short read caps the chunk so the
      // accumulation path sees arbitrarily fragmented input.
      std::int64_t arg = 0;
      if (FaultPlan::hit(FaultPoint::kReadEintr)) {
        n = -1;
        errno = EINTR;
        continue;
      }
      std::size_t want = sizeof chunk;
      if (FaultPlan::hit(FaultPoint::kReadShort, &arg))
        want = static_cast<std::size_t>(
            std::clamp<std::int64_t>(arg == 0 ? 1 : arg, 1,
                                     static_cast<std::int64_t>(sizeof chunk)));
      n = ::read(fd_, chunk, want);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) throw IoTimeout("read");
      throw_errno("read");
    }
    if (n == 0) {
      if (!buf_.empty())
        throw std::runtime_error("connection closed mid-line");
      return false;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void UnixConn::write_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    ssize_t n;
    do {
      std::int64_t arg = 0;
      if (FaultPlan::hit(FaultPoint::kWriteEintr)) {
        n = -1;
        errno = EINTR;
        continue;
      }
      std::size_t len = framed.size() - off;
      if (FaultPlan::hit(FaultPoint::kWriteShort, &arg))
        len = static_cast<std::size_t>(
            std::clamp<std::int64_t>(arg == 0 ? 1 : arg, 1,
                                     static_cast<std::int64_t>(len)));
      // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
      n = ::send(fd_, framed.data() + off, len, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) throw IoTimeout("write");
      throw_errno("write");
    }
    off += static_cast<std::size_t>(n);
  }
}

void UnixConn::set_timeouts(int rcv_ms, int snd_ms) {
  const auto set = [this](int opt, int ms) {
    if (ms <= 0) return;
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    if (::setsockopt(fd_, SOL_SOCKET, opt, &tv, sizeof tv) != 0)
      throw_errno("setsockopt");
  };
  set(SO_RCVTIMEO, rcv_ms);
  set(SO_SNDTIMEO, snd_ms);
}

void UnixConn::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void UnixConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  ::unlink(path.c_str());  // replace a stale socket file from a dead daemon
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind " + path);
  }
  if (::listen(fd_, 128) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen " + path);
  }
}

UnixListener::~UnixListener() {
  close();
  ::unlink(path_.c_str());
}

UnixConn UnixListener::accept() {
  for (;;) {
    if (FaultPlan::hit(FaultPoint::kAcceptEintr)) {
      errno = EINTR;
      continue;  // exercised exactly like a real interrupted accept(2)
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return UnixConn(fd);
    if (errno == EINTR) continue;
    return UnixConn();  // closed listener (or fatal error): signal shutdown
  }
}

void UnixListener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() first: reliably wakes an accept() blocked in another
    // thread, where a bare close() can leave it sleeping.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace tgs
