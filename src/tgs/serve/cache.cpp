#include "tgs/serve/cache.h"

#include <new>

#include "tgs/serve/faults.h"

namespace tgs {

bool ScheduleCache::lookup(const std::string& key, CachedSchedule* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  *out = it->second->value;
  return true;
}

void ScheduleCache::insert(const std::string& key,
                           const CachedSchedule& value) {
  if (capacity_ == 0) return;
  // Scripted allocation failure: the cache is an accelerator, so callers
  // must survive insert() throwing exactly as they would a real OOM.
  if (FaultPlan::hit(FaultPoint::kCacheOom)) throw std::bad_alloc();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent compute of the same key: both workers insert, last write
    // wins. Results are deterministic, so the values are identical anyway.
    it->second->value = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, value});
  index_[key] = lru_.begin();
}

std::vector<std::pair<std::string, CachedSchedule>> ScheduleCache::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, CachedSchedule>> out;
  out.reserve(lru_.size());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it)  // LRU first
    out.emplace_back(it->key, it->value);
  return out;
}

ScheduleCache::Counters ScheduleCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {hits_, misses_, evictions_, lru_.size(), capacity_};
}

}  // namespace tgs
