#include "tgs/serve/protocol.h"

#include "tgs/exec/jsonl.h"

namespace tgs {

const char* serve_error_code(ServeError e) {
  switch (e) {
    case ServeError::kBadJson: return "bad_json";
    case ServeError::kBadRequest: return "bad_request";
    case ServeError::kBadGraph: return "bad_graph";
    case ServeError::kUnknownAlgo: return "unknown_algo";
    case ServeError::kBadTopology: return "bad_topology";
    case ServeError::kOverloaded: return "overloaded";
    case ServeError::kDeadlineExceeded: return "deadline_exceeded";
    case ServeError::kInternal: return "internal";
  }
  return "internal";
}

ServeRequest parse_request(const std::string& line) {
  JsonValue doc;
  try {
    doc = json_parse(line);
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(ServeError::kBadJson, e.what());
  }
  if (!doc.is_object())
    throw ProtocolError(ServeError::kBadJson, "request must be a JSON object");

  ServeRequest req;
  try {
    req.op = doc.get_string("op", "schedule");
    req.id = doc.get_string("id", "");
    req.graph_text = doc.get_string("graph", "");
    req.algo = doc.get_string("algo", "");
    req.topology = doc.get_string("topology", "");
    const double procs = doc.get_number("procs", 0);
    if (procs != static_cast<double>(static_cast<int>(procs)) || procs < 0 ||
        procs > 1e6)
      throw std::invalid_argument("field 'procs' must be an integer >= 0");
    req.procs = static_cast<int>(procs);
    req.want_schedule = doc.get_bool("schedule", false);
    req.use_cache = doc.get_bool("cache", true);
    const double deadline = doc.get_number("deadline_ms", 0);
    if (deadline != static_cast<double>(static_cast<int>(deadline)) ||
        deadline < 0 || deadline > 1e9)
      throw std::invalid_argument(
          "field 'deadline_ms' must be an integer >= 0");
    req.deadline_ms = static_cast<int>(deadline);
    const std::string priority = doc.get_string("priority", "high");
    if (priority != "high" && priority != "low")
      throw std::invalid_argument(
          "field 'priority' must be \"high\" or \"low\"");
    req.low_priority = priority == "low";
    const double retry = doc.get_number("retry", 0);
    if (retry != static_cast<double>(static_cast<int>(retry)) || retry < 0 ||
        retry > 1e6)
      throw std::invalid_argument("field 'retry' must be an integer >= 0");
    req.retry = static_cast<int>(retry);
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(ServeError::kBadRequest, e.what());
  }

  if (req.op != "schedule" && req.op != "stats" && req.op != "ping" &&
      req.op != "shutdown")
    throw ProtocolError(ServeError::kBadRequest,
                        "unknown op '" + req.op + "'");
  if (req.op == "schedule") {
    if (req.graph_text.empty())
      throw ProtocolError(ServeError::kBadRequest,
                          "op=schedule requires a 'graph' field");
    if (req.algo.empty())
      throw ProtocolError(ServeError::kBadRequest,
                          "op=schedule requires an 'algo' field");
    if (!req.topology.empty() && doc.find("procs") != nullptr)
      throw ProtocolError(ServeError::kBadRequest,
                          "'procs' and 'topology' are mutually exclusive");
  }
  return req;
}

std::string make_cache_key(const std::string& fingerprint_hex,
                           const std::string& algo_class,
                           const std::string& algo,
                           const std::string& topology, int procs) {
  std::string machine =
      topology.empty() ? "procs=" + std::to_string(procs) : topology;
  return fingerprint_hex + "|" + algo_class + "|" + algo + "|" + machine;
}

namespace {

JsonObject base_response(const std::string& id, const char* status) {
  JsonObject o;
  if (!id.empty()) o.add("id", id);
  o.add("status", status);
  return o;
}

}  // namespace

std::string render_error(const std::string& id, ServeError code,
                         const std::string& message) {
  return base_response(id, "error")
      .add("code", serve_error_code(code))
      .add("message", message)
      .str();
}

std::string render_schedule_response(const std::string& id,
                                     const std::string& algo,
                                     const std::string& algo_class,
                                     const CachedSchedule& result, bool cached,
                                     std::uint64_t micros, bool with_schedule,
                                     bool is_apn) {
  JsonObject o = base_response(id, "ok");
  o.add("op", "schedule")
      .add("algo", algo)
      .add("class", algo_class)
      .add_int("makespan", result.makespan)
      .add("nsl", result.nsl)
      .add_int("procs_used", result.procs_used)
      .add("cached", cached)
      .add_uint("micros", micros);
  if (is_apn) o.add_uint("messages", result.num_messages);
  if (with_schedule) o.add("schedule", result.schedule_text);
  return o.str();
}

std::string render_pong(const std::string& id) {
  return base_response(id, "ok").add("op", "ping").str();
}

std::string render_shutdown_ack(const std::string& id) {
  return base_response(id, "ok").add("op", "shutdown").str();
}

}  // namespace tgs
