#include "tgs/param/param_scheduler.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "tgs/bnp/bnp_common.h"
#include "tgs/graph/attributes.h"
#include "tgs/list/ready_list.h"
#include "tgs/map/cluster_map.h"
#include "tgs/unc/clustering.h"

namespace tgs {

namespace {

// Lazy min-heap comparator (std::push_heap keeps the comparator-largest
// element at the front, so a "greater" ordering gives a min-heap). The key
// chain ends in rank, a per-node-unique permutation, so heap pops
// reproduce the linear argmin scan they replace bit-for-bit.
struct ListPickCmp {
  bool operator()(const ParamScratch::ListPick& a,
                  const ParamScratch::ListPick& b) const {
    if (a.primary != b.primary) return a.primary > b.primary;
    return a.rank > b.rank;
  }
};
// One run of the list phase. Holds the shared state so the ready policies
// and the hole-filling pass read like the original standalone algorithms
// they generalize (bnp/hlfet.cpp, bnp/ish.cpp, bnp/etf.cpp, ... at PR 7).
class ListPhase {
 public:
  ListPhase(const ParamSpec& spec, const TaskGraph& g, const SchedOptions& opt,
            SchedWorkspace& ws, ParamScratch& ps)
      : spec_(spec),
        g_(g),
        ws_(ws),
        ps_(ps),
        clustered_(spec.cluster != ParamCluster::kNone),
        fit_(spec.insertion == ParamInsertion::kInsert),
        hole_(spec.insertion == ParamInsertion::kHole),
        sched_(g, clustered_ ? 0 : effective_procs(g, opt)),
        scanner_(effective_procs(g, opt)),
        ready_(g) {}

  Schedule run() {
    switch (spec_.ready) {
      case ParamReady::kStatic:
        run_list(/*dynamic=*/false);
        break;
      case ParamReady::kDynamic:
        init_arrivals();
        run_list(/*dynamic=*/true);
        break;
      case ParamReady::kPairEtf:
      case ParamReady::kPairDls:
        if (clustered_)
          run_pair_clustered();
        else
          run_pair_selector();
        break;
    }
    return std::move(sched_);
  }

 private:
  // kStatic picks the highest-priority ready node (= smallest rank; rank
  // encodes the smallest-id tie-break). kDynamic orders by the frozen
  // arrival time -- the earliest moment the node's data is available
  // anywhere -- with the metric rank as tie-break. Both keys freeze at
  // admission, so the pick is a lazy min-heap pop: each node carries one
  // entry, and entries whose node left the ready set another way (the
  // hole-filling pass) are discarded on pop. This replaces the O(ready)
  // per-step scan that dominated giant FFT-class graphs (ready width in
  // the thousands).
  void push_list(NodeId n, bool dynamic) {
    ps_.list_heap.push_back({dynamic ? ps_.arrival[n] : 0, ps_.rank[n], n});
    std::push_heap(ps_.list_heap.begin(), ps_.list_heap.end(), ListPickCmp{});
  }

  NodeId pick_list() {
    std::vector<ParamScratch::ListPick>& h = ps_.list_heap;
    while (true) {
      std::pop_heap(h.begin(), h.end(), ListPickCmp{});
      const NodeId n = h.back().node;
      h.pop_back();
      if (ready_.is_ready(n)) return n;
    }
  }

  void run_list(bool dynamic) {
    list_heap_live_ = true;
    ps_.list_heap.clear();
    for (NodeId n : ready_.ready()) push_list(n, dynamic);
    while (!ready_.empty()) {
      ws_.deadline().poll();
      const NodeId n = pick_list();
      ProcId p;
      Time start;
      if (clustered_) {
        p = ps_.assign[n];
        start = sched_.est(n, p, fit_);
      } else {
        const ProcChoice c = best_est_proc(sched_, n, scanner_, fit_);
        p = c.proc;
        start = c.start;
      }
      place(n, p, start, nullptr, dynamic);
    }
  }

  // ETF minimizes (EST, rank); DLS maximizes dl = key - EST with ties on
  // earlier start then smaller id. The argmin stays a linear scan over the
  // ready set on purpose: a lazy heap over the cached pairs was tried and
  // measured SLOWER at giant scale (docs/perf.md, PR 9) -- wide symmetric
  // graphs funnel thousands of cached bests onto one processor, so each
  // placement re-keys O(ready) entries and the heap turns one O(ready)
  // scan into O(ready log ready) churn. The selector's bucket rescoring
  // already bounds the real per-placement work.
  void run_pair_selector() {
    IncrementalPairSelector sel(sched_, scanner_, fit_, ws_.pair_scratch());
    for (NodeId n : ready_.ready()) sel.node_ready(n);
    const bool etf = spec_.ready == ParamReady::kPairEtf;
    while (!ready_.empty()) {
      ws_.deadline().poll();
      NodeId best_n = kNoNode;
      Time best_t = 0;
      Time best_dl = 0;
      for (NodeId m : ready_.ready()) {
        const Time t = sel.best(m).start;
        if (etf) {
          // Globally earliest start; ties -> higher metric priority.
          if (best_n == kNoNode || t < best_t ||
              (t == best_t && ps_.rank[m] < ps_.rank[best_n])) {
            best_n = m;
            best_t = t;
          }
        } else {
          // Largest dynamic level key - EST; ties -> earlier start, then
          // smaller node id (the original DLS tie chain).
          const Time dl = ps_.key[m] - t;
          if (best_n == kNoNode || dl > best_dl ||
              (dl == best_dl &&
               (t < best_t || (t == best_t && m < best_n)))) {
            best_n = m;
            best_t = t;
            best_dl = dl;
          }
        }
      }
      place(best_n, sel.best(best_n).proc, best_t, &sel, false);
    }
  }

  // Pair policies under a fixed cluster map degenerate to a per-step scan
  // of EST on each node's forced processor (the selector's invariant
  // assumes free processor choice, so it does not apply here).
  void run_pair_clustered() {
    const bool etf = spec_.ready == ParamReady::kPairEtf;
    while (!ready_.empty()) {
      ws_.deadline().poll();
      NodeId best_n = kNoNode;
      Time best_t = 0;
      Time best_dl = 0;
      for (NodeId m : ready_.ready()) {
        const Time t = sched_.est(m, ps_.assign[m], fit_);
        if (etf) {
          if (best_n == kNoNode || t < best_t ||
              (t == best_t && ps_.rank[m] < ps_.rank[best_n])) {
            best_n = m;
            best_t = t;
          }
        } else {
          const Time dl = ps_.key[m] - t;
          if (best_n == kNoNode || dl > best_dl ||
              (dl == best_dl &&
               (t < best_t || (t == best_t && m < best_n)))) {
            best_n = m;
            best_t = t;
            best_dl = dl;
          }
        }
      }
      place(best_n, ps_.assign[best_n], best_t, nullptr, false);
    }
  }

  /// Commit `n` on `p` at `start`, maintain every incremental structure,
  /// and run the hole-filling pass when the insertion policy asks for it.
  void place(NodeId n, ProcId p, Time start, IncrementalPairSelector* sel,
             bool dynamic) {
    // End of the processor's busy prefix before the placement == where the
    // idle hole (if any) begins once n lands at `start`.
    const Time hole_from = hole_ ? sched_.earliest_start_on(p, 0, 0, false) : 0;
    sched_.place(n, p, start);
    if (!clustered_) scanner_.note_placement(p);
    if (sel != nullptr) sel->node_placed(n, p);
    ready_.mark_scheduled(n);
    admit_children(n, sel, dynamic);
    if (hole_) fill_hole(p, hole_from, start, sel, dynamic);
  }

  /// Children of `n` that just became ready enter the policy's incremental
  /// state: the pair selector's tracked set, or the frozen arrival times
  /// of the dynamic list policy.
  void admit_children(NodeId n, IncrementalPairSelector* sel, bool dynamic) {
    if (sel == nullptr && !dynamic && !list_heap_live_) return;
    for (const Adj& c : g_.children(n)) {
      if (!ready_.is_ready(c.node)) continue;
      if (sel != nullptr) {
        sel->node_ready(c.node);
      } else {
        if (dynamic) {
          Time arr = 0;
          for (const Adj& par : g_.parents(c.node))
            arr = std::max(arr, sched_.finish(par.node) + par.cost);
          ps_.arrival[c.node] = arr;
        }
        push_list(c.node, dynamic);
      }
    }
  }

  void init_arrivals() {
    ps_.arrival.assign(g_.num_nodes(), 0);  // entry nodes: data at t=0
  }

  /// ISH-style back-filling of [gap_from, gap_to) on `proc`, generalized
  /// to the run's metric: fill with the highest-priority ready task that
  /// fits entirely and (without a cluster map) would not have started
  /// strictly earlier on any other processor.
  void fill_hole(ProcId proc, Time gap_from, Time gap_to,
                 IncrementalPairSelector* sel, bool dynamic) {
    while (gap_from < gap_to && !ready_.empty()) {
      ws_.deadline().poll();
      NodeId best_fill = kNoNode;
      Time best_start = 0;
      for (NodeId m : ready_.ready()) {
        if (clustered_ && ps_.assign[m] != proc) continue;
        const Time st = std::max(sched_.data_ready(m, proc), gap_from);
        if (st + g_.weight(m) > gap_to) continue;
        if (!clustered_) {
          const Time alt =
              sel != nullptr ? sel->best(m).start
                             : best_est_proc(sched_, m, scanner_, false).start;
          if (alt < st) continue;  // the hole is not this task's best slot
        }
        if (best_fill == kNoNode || ps_.rank[m] < ps_.rank[best_fill]) {
          best_fill = m;
          best_start = st;
        }
      }
      if (best_fill == kNoNode) break;
      sched_.place(best_fill, proc, best_start);
      if (sel != nullptr) sel->node_placed(best_fill, proc);
      ready_.mark_scheduled(best_fill);
      admit_children(best_fill, sel, dynamic);
      gap_from = best_start + g_.weight(best_fill);
    }
  }

  const ParamSpec& spec_;
  const TaskGraph& g_;
  SchedWorkspace& ws_;
  ParamScratch& ps_;
  const bool clustered_;
  const bool fit_;
  const bool hole_;
  bool list_heap_live_ = false;  // run_list admissions feed ps_.list_heap
  Schedule sched_;
  ProcScanner scanner_;
  ReadyList ready_;
};

}  // namespace

void compute_param_metric(ParamMetric metric, GraphAttributeCache& attrs,
                          ParamScratch& ps) {
  if (attrs.graph() == nullptr)
    throw std::logic_error("compute_param_metric: no graph bound");
  const TaskGraph& g = *attrs.graph();
  const NodeId v = g.num_nodes();
  ps.key.assign(v, 0);

  switch (metric) {
    case ParamMetric::kSL: {
      const std::vector<Time>& sl = attrs.static_levels();
      for (NodeId n = 0; n < v; ++n) ps.key[n] = sl[n];
      break;
    }
    case ParamMetric::kBL: {
      const std::vector<Time>& bl = attrs.b_levels();
      for (NodeId n = 0; n < v; ++n) ps.key[n] = bl[n];
      break;
    }
    case ParamMetric::kTL: {
      // Smaller t-level = earlier possible start = more urgent.
      const std::vector<Time>& tl = attrs.t_levels();
      for (NodeId n = 0; n < v; ++n) ps.key[n] = -tl[n];
      break;
    }
    case ParamMetric::kALAP:
    case ParamMetric::kAlapList: {
      // Smaller ALAP = less slack = more urgent. kAlapList shares the
      // scalar key (its refinement only affects the rank below).
      const std::vector<Time>& alap = attrs.alap_times();
      for (NodeId n = 0; n < v; ++n) ps.key[n] = -alap[n];
      break;
    }
    case ParamMetric::kBLminusTL: {
      const std::vector<Time>& bl = attrs.b_levels();
      const std::vector<Time>& tl = attrs.t_levels();
      for (NodeId n = 0; n < v; ++n) ps.key[n] = bl[n] - tl[n];
      break;
    }
    case ParamMetric::kCP: {
      // Critical-path members strictly outrank non-members (a node is on a
      // CP iff tl + bl == CP length); inside each group, b-level decides.
      // bl <= cp for every node, and bl == cp implies membership, so the
      // +cp bonus cannot collide across the groups.
      const std::vector<Time>& bl = attrs.b_levels();
      const std::vector<Time>& tl = attrs.t_levels();
      const Time cp = attrs.critical_path_length();
      for (NodeId n = 0; n < v; ++n)
        ps.key[n] = bl[n] + (tl[n] + bl[n] == cp ? cp : 0);
      break;
    }
  }

  ps.order.resize(v);
  std::iota(ps.order.begin(), ps.order.end(), NodeId{0});
  if (metric == ParamMetric::kAlapList) {
    // MCP's lexicographic priority: [alap(n), sorted alaps of children],
    // stored rank-compressed. Dense ALAP ranks compare exactly like the
    // Time values they stand for (x < y iff rank(x) < rank(y)), so one
    // flat uint32 arena of size v + e replaces the per-node
    // vector<vector<Time>> -- v heap allocations and 16 bytes per element
    // -- that profiled as the giant-tier setup bottleneck.
    const std::vector<Time>& alap = attrs.alap_times();
    std::vector<NodeId>& by = ps.alap_sorted;
    by.resize(v);
    std::iota(by.begin(), by.end(), NodeId{0});
    std::sort(by.begin(), by.end(),
              [&](NodeId a, NodeId b) { return alap[a] < alap[b]; });
    ps.alap_rank.resize(v);
    std::uint32_t r = 0;
    for (NodeId i = 0; i < v; ++i) {
      if (i > 0 && alap[by[i]] != alap[by[i - 1]]) ++r;
      ps.alap_rank[by[i]] = r;
    }
    ps.alap_off.resize(static_cast<std::size_t>(v) + 1);
    ps.alap_off[0] = 0;
    for (NodeId n = 0; n < v; ++n)
      ps.alap_off[n + 1] = ps.alap_off[n] + 1 + g.num_children(n);
    ps.alap_arena.resize(ps.alap_off[v]);
    for (NodeId n = 0; n < v; ++n) {
      std::size_t pos = ps.alap_off[n];
      ps.alap_arena[pos++] = ps.alap_rank[n];
      for (const Adj& c : g.children(n))
        ps.alap_arena[pos++] = ps.alap_rank[c.node];
      std::sort(ps.alap_arena.begin() + ps.alap_off[n] + 1,
                ps.alap_arena.begin() + ps.alap_off[n + 1]);
    }
    const std::uint32_t* arena = ps.alap_arena.data();
    const std::size_t* off = ps.alap_off.data();
    std::sort(ps.order.begin(), ps.order.end(), [&](NodeId a, NodeId b) {
      const std::uint32_t* pa = arena + off[a];
      const std::uint32_t* pb = arena + off[b];
      const std::size_t la = off[a + 1] - off[a];
      const std::size_t lb = off[b + 1] - off[b];
      const std::size_t m = la < lb ? la : lb;
      for (std::size_t i = 0; i < m; ++i)
        if (pa[i] != pb[i]) return pa[i] < pb[i];
      if (la != lb) return la < lb;  // equal prefix: shorter list first
      return a < b;
    });
  } else {
    std::sort(ps.order.begin(), ps.order.end(), [&](NodeId a, NodeId b) {
      if (ps.key[a] != ps.key[b]) return ps.key[a] > ps.key[b];
      return a < b;
    });
  }
  ps.rank.resize(v);
  for (NodeId i = 0; i < v; ++i) ps.rank[ps.order[i]] = static_cast<int>(i);
}

ParamScheduler::ParamScheduler(const ParamSpec& spec)
    : spec_(spec),
      name_(spec.to_string()),
      class_(spec.cluster == ParamCluster::kNone ? AlgoClass::kBNP
                                                 : AlgoClass::kUNC) {}

ParamScheduler::ParamScheduler(const ParamSpec& spec, std::string name,
                               AlgoClass cls)
    : spec_(spec), name_(std::move(name)), class_(cls) {}

Schedule ParamScheduler::do_run(const TaskGraph& g, const SchedOptions& opt,
                                SchedWorkspace& ws) const {
  ParamScratch& ps = ws.param_scratch();
  compute_param_metric(spec_.metric, ws.attrs(), ps);

  if (spec_.cluster != ParamCluster::kNone) {
    switch (spec_.cluster) {
      case ParamCluster::kEz:
        ps.assign = ez_clusters(g);
        break;
      case ParamCluster::kLc:
        ps.assign = lc_clusters(g);
        break;
      case ParamCluster::kDsc:
        ps.assign = dsc_clusters(g);
        break;
      case ParamCluster::kNone:
        break;
    }
    if (opt.num_procs > 0) {
      // The UNC cores ignore machine bounds; honor them by folding the
      // clusters LPT-style (Yang's RCP rule) when there are too many.
      ProcId max_c = 0;
      for (ProcId c : ps.assign) max_c = std::max(max_c, c);
      if (max_c + 1 > opt.num_procs)
        ps.assign = rcp_cluster_assignment(g, ps.assign, opt.num_procs);
    }
  }

  ListPhase phase(spec_, g, opt, ws, ps);
  return phase.run();
}

}  // namespace tgs
