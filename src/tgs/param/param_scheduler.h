// ParamScheduler: one list-scheduling core executing any ParamSpec point
// behind the ordinary Scheduler NVI. The named BNP/UNC list algorithms are
// thin subclasses that pin a spec and a table name (bnp/hlfet.h, unc/ez.h,
// ...); every other point of the crossproduct is a novel combination
// reachable via make_scheduler("param:...") and the param_sweep experiment.
//
// Execution model (docs/parameterized.md has the axis taxonomy and the
// byte-identity map against the original standalone implementations):
//
//  1. metric -> a per-node scalar key plus a total priority order (rank).
//  2. optional cluster pre-pass -> a fixed node -> cluster assignment
//     (comm inside a cluster is free; clusters are folded LPT-style onto
//     opt.num_procs when they exceed a bounded machine).
//  3. list phase: the ready policy picks the next node (and processor),
//     the insertion policy places it; kHole back-fills the idle gap the
//     placement created. Pair policies without a cluster run on the
//     IncrementalPairSelector, so param ETF/DLS keep the PR 4 speedups.
//
// Determinism: every choice breaks ties by (rank, node id, processor id),
// and rank itself encodes the smallest-id tie-break, so equal inputs give
// bit-identical schedules at any thread count, with or without a shared
// workspace.
#pragma once

#include <string>
#include <vector>

#include "tgs/param/param_spec.h"
#include "tgs/sched/scheduler.h"

namespace tgs {

/// Reusable buffers of the parameterized core, owned by a SchedWorkspace
/// (behind a pointer so sched/ does not include param/ headers). Capacity
/// survives across runs; contents never do.
struct ParamScratch {
  std::vector<Time> key;      // metric scalar, larger = more urgent
  std::vector<int> rank;      // total priority order, 0 = first
  std::vector<NodeId> order;  // scratch for building rank
  std::vector<Time> arrival;  // kDynamic: frozen arrival time per node
  std::vector<ProcId> assign; // cluster pre-pass: node -> processor

  // Lazy selection heap of the list phase (see param_scheduler.cpp). It
  // replaces the O(ready)-per-step argmin scan of the static/dynamic ready
  // policies with a log-time pop; entries whose node left the ready set
  // another way (hole filling) go stale and are discarded on pop.
  struct ListPick {
    Time primary;  // kDynamic: frozen arrival; kStatic: 0
    int rank;
    NodeId node;
  };
  std::vector<ListPick> list_heap;

  // kAlapList rank-compressed priority: one flat arena of dense ALAP ranks
  // per node ([rank(alap(n)), sorted child ranks]) replaces the per-node
  // vector<vector<Time>> of the original MCP (v heap allocations and an
  // O(v)-byte worst-case compare at v = 100k).
  std::vector<std::uint32_t> alap_rank;   // node -> dense ALAP rank
  std::vector<NodeId> alap_sorted;        // scratch: nodes by ALAP value
  std::vector<std::size_t> alap_off;      // node -> arena offset (v+1)
  std::vector<std::uint32_t> alap_arena;  // concatenated priority lists
};

class ParamScheduler : public Scheduler {
 public:
  /// Anonymous point: name() is the canonical spec string, algo_class()
  /// kUNC when a cluster step is present, else kBNP.
  explicit ParamScheduler(const ParamSpec& spec);

  /// Named point (HLFET, EZ, ...): keeps the classic table name and class.
  ParamScheduler(const ParamSpec& spec, std::string name, AlgoClass cls);

  std::string name() const override { return name_; }
  AlgoClass algo_class() const override { return class_; }
  const ParamSpec& spec() const { return spec_; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;

 private:
  ParamSpec spec_;
  std::string name_;
  AlgoClass class_;
};

/// Fill `ps.key` / `ps.rank` for `metric` on the graph bound to `attrs`.
/// Exposed for tests; ranks are a permutation encoding (key desc, id asc)
/// -- lexicographic ALAP-list order for kAlapList.
void compute_param_metric(ParamMetric metric, GraphAttributeCache& attrs,
                          ParamScratch& ps);

}  // namespace tgs
