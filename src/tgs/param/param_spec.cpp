#include "tgs/param/param_spec.h"

#include <stdexcept>

namespace tgs {

namespace {

constexpr const char* kPrefix = "param:";

template <typename E>
E token_to_enum(const std::string& tok, const std::vector<E>& all,
                const char* (*name_of)(E), const char* axis) {
  for (E e : all)
    if (tok == name_of(e)) return e;
  throw std::invalid_argument("unknown " + std::string(axis) + " token '" +
                              tok + "' in param spec; " +
                              param_spec_grammar());
}

template <typename E>
std::string join_tokens(const std::vector<E>& all, const char* (*name_of)(E)) {
  std::string out;
  for (E e : all) {
    if (!out.empty()) out += "|";
    out += name_of(e);
  }
  return out;
}

}  // namespace

const char* param_metric_token(ParamMetric m) {
  switch (m) {
    case ParamMetric::kSL: return "sl";
    case ParamMetric::kBL: return "bl";
    case ParamMetric::kTL: return "tl";
    case ParamMetric::kALAP: return "alap";
    case ParamMetric::kBLminusTL: return "bl-tl";
    case ParamMetric::kCP: return "cp";
    case ParamMetric::kAlapList: return "alaplist";
  }
  return "?";
}

const char* param_ready_token(ParamReady r) {
  switch (r) {
    case ParamReady::kStatic: return "static";
    case ParamReady::kDynamic: return "dynamic";
    case ParamReady::kPairEtf: return "etf";
    case ParamReady::kPairDls: return "dls";
  }
  return "?";
}

const char* param_insertion_token(ParamInsertion i) {
  switch (i) {
    case ParamInsertion::kAppend: return "append";
    case ParamInsertion::kInsert: return "insert";
    case ParamInsertion::kHole: return "hole";
  }
  return "?";
}

const char* param_cluster_token(ParamCluster c) {
  switch (c) {
    case ParamCluster::kNone: return "none";
    case ParamCluster::kEz: return "ez";
    case ParamCluster::kLc: return "lc";
    case ParamCluster::kDsc: return "dsc";
  }
  return "?";
}

const std::vector<ParamMetric>& all_param_metrics() {
  static const std::vector<ParamMetric> all{
      ParamMetric::kSL,        ParamMetric::kBL, ParamMetric::kTL,
      ParamMetric::kALAP,      ParamMetric::kCP, ParamMetric::kBLminusTL,
      ParamMetric::kAlapList};
  return all;
}

const std::vector<ParamReady>& all_param_readies() {
  static const std::vector<ParamReady> all{
      ParamReady::kStatic, ParamReady::kDynamic, ParamReady::kPairEtf,
      ParamReady::kPairDls};
  return all;
}

const std::vector<ParamInsertion>& all_param_insertions() {
  static const std::vector<ParamInsertion> all{
      ParamInsertion::kAppend, ParamInsertion::kInsert, ParamInsertion::kHole};
  return all;
}

const std::vector<ParamCluster>& all_param_clusters() {
  static const std::vector<ParamCluster> all{
      ParamCluster::kNone, ParamCluster::kEz, ParamCluster::kLc,
      ParamCluster::kDsc};
  return all;
}

std::string param_spec_grammar() {
  return "expected param:<metric>/<ready>/<insertion>[/<cluster>] with "
         "metric={" +
         join_tokens(all_param_metrics(), param_metric_token) + "} ready={" +
         join_tokens(all_param_readies(), param_ready_token) +
         "} insertion={" +
         join_tokens(all_param_insertions(), param_insertion_token) +
         "} cluster={" +
         join_tokens(all_param_clusters(), param_cluster_token) + "}";
}

std::string ParamSpec::to_string() const {
  return std::string(kPrefix) + param_metric_token(metric) + "/" +
         param_ready_token(ready) + "/" + param_insertion_token(insertion) +
         "/" + param_cluster_token(cluster);
}

bool ParamSpec::is_spec(const std::string& name) {
  return name.rfind(kPrefix, 0) == 0;
}

ParamSpec ParamSpec::parse(const std::string& text) {
  std::string body = text;
  if (is_spec(body)) body = body.substr(std::string(kPrefix).size());

  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (true) {
    const std::size_t slash = body.find('/', start);
    tokens.push_back(body.substr(start, slash - start));
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  if (tokens.size() < 3 || tokens.size() > 4)
    throw std::invalid_argument("param spec '" + text + "' has " +
                                std::to_string(tokens.size()) +
                                " segment(s); " + param_spec_grammar());

  ParamSpec spec;
  spec.metric = token_to_enum(tokens[0], all_param_metrics(),
                              param_metric_token, "metric");
  spec.ready =
      token_to_enum(tokens[1], all_param_readies(), param_ready_token,
                    "ready");
  spec.insertion = token_to_enum(tokens[2], all_param_insertions(),
                                 param_insertion_token, "insertion");
  spec.cluster = tokens.size() == 4
                     ? token_to_enum(tokens[3], all_param_clusters(),
                                     param_cluster_token, "cluster")
                     : ParamCluster::kNone;
  return spec;
}

}  // namespace tgs
