// The parameterized scheduler design space (ROADMAP: "Parameterized
// scheduler space"; Coleman's parameterized task-graph scheduling made
// concrete on this codebase).
//
// The paper's BNP/UNC list schedulers differ along four orthogonal axes:
//
//   metric     which node attribute orders the work
//   ready      how the next (node, processor) decision is made
//   insertion  where a task lands on its processor's timeline
//   cluster    an optional pre-pass fixing the node -> processor map
//
// A ParamSpec is one point of the crossproduct; ParamScheduler (see
// param_scheduler.h) executes any point behind the ordinary Scheduler NVI.
// The named algorithms HLFET, ISH, MCP, ETF, DLS, EZ and LC are specific
// points (byte-identical to their original standalone implementations;
// docs/parameterized.md has the full map and the proofs sketch). The spec
// string syntax accepted by make_scheduler(), tgs_schedule, tgs_serve and
// tgs_bench is
//
//   param:<metric>/<ready>/<insertion>[/<cluster>]
//
// e.g. "param:bl/etf/insert" or "param:alap/static/append/lc".
#pragma once

#include <string>
#include <vector>

namespace tgs {

/// Priority metric: the per-node scalar (larger = scheduled earlier).
enum class ParamMetric {
  kSL,        // static level (b-level with comm ignored)        -- HLFET/ISH
  kBL,        // b-level (comm-inclusive)                        -- EZ/LC order
  kTL,        // negated t-level: smallest earliest-start first
  kALAP,      // negated ALAP time: most critical first
  kBLminusTL, // b-level minus t-level (largest slack-free span)
  kCP,        // CP membership first (by b-level), then b-level
  kAlapList,  // MCP's lexicographic [alap(n), sorted child alaps]
};

/// Ready-list policy: how the next node (and processor) is chosen.
enum class ParamReady {
  kStatic,   // fixed metric order; next = highest-priority ready node
  kDynamic,  // re-sort by frozen arrival time (earliest data first),
             // metric as tie-break
  kPairEtf,  // (node, proc) pair with globally earliest start (ETF rule)
  kPairDls,  // pair maximizing metric - EST (DLS dynamic-level rule)
};

/// Placement policy on the chosen processor.
enum class ParamInsertion {
  kAppend,  // after the processor's last task
  kInsert,  // earliest idle slot that fits (MCP-style insertion)
  kHole,    // append, then back-fill the created idle hole with other
            // ready tasks that fit (ISH-style hole filling)
};

/// Optional clustering pre-pass fixing the node -> cluster map; the list
/// phase then only orders tasks inside their fixed clusters (comm inside
/// a cluster is free).
enum class ParamCluster {
  kNone,
  kEz,   // Sarkar edge zeroing (unc/ez.cpp core)
  kLc,   // Kim-Browne linear clustering (unc/lc.cpp core)
  kDsc,  // Yang-Gerasoulis dominant sequence clustering (unc/dsc.cpp)
};

struct ParamSpec {
  ParamMetric metric = ParamMetric::kSL;
  ParamReady ready = ParamReady::kStatic;
  ParamInsertion insertion = ParamInsertion::kAppend;
  ParamCluster cluster = ParamCluster::kNone;

  /// Canonical spec string, always 4 segments: "param:sl/static/append/none".
  std::string to_string() const;

  /// True when `name` uses the "param:" scheme (parse() will accept or
  /// throw; other names belong to the classic registry).
  static bool is_spec(const std::string& name);

  /// Parse "param:<metric>/<ready>/<insertion>[/<cluster>]" (the prefix is
  /// optional). Throws std::invalid_argument naming the bad token and the
  /// grammar.
  static ParamSpec parse(const std::string& text);

  friend bool operator==(const ParamSpec&, const ParamSpec&) = default;
};

// Token tables (lowercase, as used in spec strings).
const char* param_metric_token(ParamMetric m);
const char* param_ready_token(ParamReady r);
const char* param_insertion_token(ParamInsertion i);
const char* param_cluster_token(ParamCluster c);

const std::vector<ParamMetric>& all_param_metrics();
const std::vector<ParamReady>& all_param_readies();
const std::vector<ParamInsertion>& all_param_insertions();
const std::vector<ParamCluster>& all_param_clusters();

/// One-line grammar summary, embedded in error messages:
/// "param:<metric>/<ready>/<insertion>[/<cluster>] with metric={...} ...".
std::string param_spec_grammar();

}  // namespace tgs
