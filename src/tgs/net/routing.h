// Deterministic static shortest-path routing for APN message scheduling.
//
// Routes are computed once per topology by per-source BFS with smallest-id
// tie-breaking, so every (src, dst) pair has one fixed path -- the paper's
// APN algorithms assume a routing table, not adaptive routing.
//
// Two structural consequences of the per-source BFS are exposed:
//  * All P^2 paths live in one CSR arena (offset/length views) instead of
//    a vector-of-vectors -- one allocation, cache-dense iteration.
//  * The routes out of one source form a shortest-path tree (the path to
//    any destination is a prefix-closed tree path), published as the
//    per-source sweep(): the tree's P-1 edges in BFS order, parents before
//    children. NetSchedule::probe_arrival_all walks it to probe the
//    arrival at ALL destinations touching each link exactly once.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tgs/net/topology.h"

namespace tgs {

class RoutingTable {
 public:
  /// Takes a copy of the topology: a RoutingTable is self-contained and can
  /// be built from a temporary.
  explicit RoutingTable(Topology topo);

  const Topology& topology() const { return topo_; }

  /// Link ids along the route src -> dst (empty when src == dst).
  std::span<const std::int32_t> path_links(int src, int dst) const {
    const std::size_t i = index(src, dst);
    return {path_data_.data() + path_off_[i], path_off_[i + 1] - path_off_[i]};
  }

  /// Hop count of the route.
  int distance(int src, int dst) const {
    const std::size_t i = index(src, dst);
    return static_cast<int>(path_off_[i + 1] - path_off_[i]);
  }

  /// One edge of a source's shortest-path routing tree: the message on the
  /// route to `proc` crosses `link` after reaching `parent` (the previous
  /// processor on the route; == src at depth 1).
  struct SweepStep {
    std::int32_t proc;
    std::int32_t parent;
    std::int32_t link;
  };

  /// The P-1 routing-tree edges out of `src`, in BFS order (every parent
  /// appears as `proc` before it appears as `parent`), ascending peer id
  /// within a parent. A one-to-all arrival sweep is one forward walk.
  std::span<const SweepStep> sweep(int src) const {
    const std::size_t n =
        static_cast<std::size_t>(topo_.num_procs()) - 1;
    return {sweep_.data() + static_cast<std::size_t>(src) * n, n};
  }

 private:
  std::size_t index(int src, int dst) const {
    return static_cast<std::size_t>(src) * topo_.num_procs() + dst;
  }

  Topology topo_;
  std::vector<std::int32_t> path_data_;  // CSR arena of all P^2 paths
  std::vector<std::uint32_t> path_off_;  // P^2 + 1 offsets into path_data_
  std::vector<SweepStep> sweep_;         // P * (P-1) routing-tree edges
};

}  // namespace tgs
