// Deterministic static shortest-path routing for APN message scheduling.
//
// Routes are computed once per topology by per-source BFS with smallest-id
// tie-breaking, so every (src, dst) pair has one fixed path -- the paper's
// APN algorithms assume a routing table, not adaptive routing.
#pragma once

#include <vector>

#include "tgs/net/topology.h"

namespace tgs {

class RoutingTable {
 public:
  /// Takes a copy of the topology: a RoutingTable is self-contained and can
  /// be built from a temporary.
  explicit RoutingTable(Topology topo);

  const Topology& topology() const { return topo_; }

  /// Link ids along the route src -> dst (empty when src == dst).
  const std::vector<int>& path_links(int src, int dst) const {
    return paths_[index(src, dst)];
  }

  /// Hop count of the route.
  int distance(int src, int dst) const {
    return static_cast<int>(paths_[index(src, dst)].size());
  }

 private:
  std::size_t index(int src, int dst) const {
    return static_cast<std::size_t>(src) * topo_.num_procs() + dst;
  }

  Topology topo_;
  std::vector<std::vector<int>> paths_;
};

}  // namespace tgs
