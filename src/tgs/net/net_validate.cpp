#include "tgs/net/net_validate.h"

#include <sstream>

namespace tgs {

ValidationResult validate_net_schedule(const NetSchedule& ns) {
  const TaskGraph& g = ns.graph();
  const Schedule& s = ns.tasks();
  ValidationResult r;
  auto fail = [&r](const std::string& msg) {
    r.ok = false;
    r.error = msg;
    return r;
  };

  // Task layer: placement, exclusivity, same-proc precedence. The
  // cross-proc arrival rule differs (messages, not flat costs), so run the
  // checks manually rather than via validate_schedule.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (!s.is_placed(n)) return fail("task not placed");
    if (s.start(n) < 0) return fail("negative start");
    if (s.proc(n) >= ns.topology().num_procs())
      return fail("processor id outside topology");
  }
  for (int p = 0; p < s.num_procs(); ++p) {
    const auto& ivs = s.timeline(p).intervals();
    for (std::size_t i = 1; i < ivs.size(); ++i)
      if (ivs[i - 1].end > ivs[i].start) {
        std::ostringstream os;
        os << "task overlap on processor " << p;
        return fail(os.str());
      }
  }

  // Link exclusivity.
  for (int l = 0; l < ns.topology().num_links(); ++l) {
    const auto& ivs = ns.link_timeline(l).intervals();
    for (std::size_t i = 1; i < ivs.size(); ++i)
      if (ivs[i - 1].end > ivs[i].start) {
        std::ostringstream os;
        os << "message overlap on link " << l;
        return fail(os.str());
      }
  }

  // Message per cross-proc edge, looked up by key -- a linear scan of the
  // message list per edge made validation quadratic, which dominated the
  // table6 sweep wall-clock outside the timed region.
  const RoutingTable& routes = ns.routes();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Adj& e : g.children(u)) {
      const NodeId v = e.node;
      if (s.proc(u) == s.proc(v)) {
        if (s.start(v) < s.finish(u)) {
          std::ostringstream os;
          os << "same-proc precedence violated on edge " << u << "->" << v;
          return fail(os.str());
        }
        continue;
      }
      const Message* m = ns.find_message(u, v);
      if (m == nullptr) {
        std::ostringstream os;
        os << "missing message for cross-proc edge " << u << "->" << v;
        return fail(os.str());
      }
      if (m->size != e.cost) return fail("message size != edge cost");
      // Route must match the routing table.
      const auto& path = routes.path_links(s.proc(u), s.proc(v));
      if (e.cost > 0) {
        if (m->hops.size() != path.size())
          return fail("message hop count differs from route");
        for (std::size_t h = 0; h < path.size(); ++h)
          if (m->hops[h].link != path[h])
            return fail("message uses a link off its route");
        // Hop timing: departs after FT(u), hops ordered, duration == size.
        Time prev_end = s.finish(u);
        for (const MsgHop& hop : m->hops) {
          if (hop.start < prev_end) return fail("hop starts before data ready");
          if (hop.end - hop.start != m->size) return fail("hop duration wrong");
          prev_end = hop.end;
        }
        if (s.start(v) < prev_end) {
          std::ostringstream os;
          os << "task " << v << " starts before message arrival on edge " << u
             << "->" << v;
          return fail(os.str());
        }
      } else {
        if (s.start(v) < s.finish(u))
          return fail("zero-cost cross edge precedence violated");
      }
    }
  }
  return r;
}

}  // namespace tgs
