// Processor-network topologies for the APN (arbitrary processor network)
// class. Paper §4: APN algorithms assume "an arbitrary network topology, of
// which the links are not contention-free", and must schedule messages on
// the communication links.
//
// Model: an undirected connected graph of processors; each edge is a
// half-duplex link carrying one message at a time (in either direction).
// A message of size c occupies each link on its route for c time units
// (store-and-forward; uniform link bandwidth = 1 cost unit per time unit).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "tgs/util/types.h"

namespace tgs {

class Topology {
 public:
  /// Complete graph on p processors.
  static Topology fully_connected(int p);
  /// Cycle 0-1-...-p-1-0 (p >= 3; p == 2 gives a single link, p == 1 none).
  static Topology ring(int p);
  /// rows x cols 2-D mesh (no wraparound).
  static Topology mesh(int rows, int cols);
  /// dim-dimensional hypercube (2^dim processors).
  static Topology hypercube(int dim);
  /// Star: processor 0 is the hub.
  static Topology star(int p);
  /// Random connected graph: a deterministic random spanning tree plus each
  /// extra edge with probability `extra_prob` (seeded; see util/rng.h).
  static Topology random_connected(int p, double extra_prob, std::uint64_t seed);

  const std::string& name() const { return name_; }
  int num_procs() const { return num_procs_; }
  int num_links() const { return static_cast<int>(links_.size()); }

  /// Undirected links as (a, b) with a < b, indexed by link id.
  const std::vector<std::pair<int, int>>& links() const { return links_; }

  /// Neighbours of p as (peer processor, link id), sorted by peer.
  struct Neighbor {
    int proc;
    int link;
  };
  std::span<const Neighbor> neighbors(int p) const {
    return {adj_.data() + off_[p], off_[p + 1] - off_[p]};
  }

  int degree(int p) const { return static_cast<int>(off_[p + 1] - off_[p]); }

  /// Link id between a and b, or -1.
  int link_between(int a, int b) const;

  /// Processor with the largest degree (ties: smallest id) -- BSA's initial
  /// pivot.
  int max_degree_proc() const;

  /// Parse a compact spec: "ring<p>", "mesh<r>x<c>", "hcube<d>",
  /// "clique<p>", "star<p>", "rand<p>@<extra_prob>#<seed>". Deterministic:
  /// equal specs build identical topologies (the serve layer uses the spec
  /// string as the machine half of its cache keys). Throws
  /// std::invalid_argument on anything else.
  static Topology from_spec(const std::string& spec);

 private:
  Topology(std::string name, int p, std::vector<std::pair<int, int>> links);

  std::string name_;
  int num_procs_ = 0;
  std::vector<std::pair<int, int>> links_;
  std::vector<std::size_t> off_;
  std::vector<Neighbor> adj_;
};

}  // namespace tgs
