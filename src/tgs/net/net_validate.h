// APN schedule validation: everything validate_schedule checks, plus the
// message layer -- every cross-processor edge must have a committed message
// whose hops follow the routing table, respect link exclusivity, depart
// after the producer finishes, and arrive before the consumer starts.
#pragma once

#include "tgs/net/net_schedule.h"
#include "tgs/sched/validate.h"

namespace tgs {

ValidationResult validate_net_schedule(const NetSchedule& ns);

}  // namespace tgs
