#include "tgs/net/routing.h"

#include <queue>
#include <stdexcept>

namespace tgs {

RoutingTable::RoutingTable(Topology topo) : topo_(std::move(topo)) {
  const Topology& t = topo_;
  const int p = t.num_procs();
  path_off_.assign(static_cast<std::size_t>(p) * p + 1, 0);
  sweep_.reserve(static_cast<std::size_t>(p) * (p - 1));

  std::vector<int> parent(p), via_link(p), depth(p);
  std::vector<bool> seen(p);
  // BFS from src with ascending-id neighbour visits, so parent pointers
  // (and thus paths) are deterministic. Appends the tree edges to sweep_
  // in visit order: parents always precede children.
  const auto bfs = [&](int src) {
    std::fill(parent.begin(), parent.end(), -1);
    std::fill(seen.begin(), seen.end(), false);
    depth[src] = 0;
    std::queue<int> q;
    seen[src] = true;
    q.push(src);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (const Topology::Neighbor& nb : t.neighbors(u)) {
        if (seen[nb.proc]) continue;
        seen[nb.proc] = true;
        parent[nb.proc] = u;
        via_link[nb.proc] = nb.link;
        depth[nb.proc] = depth[u] + 1;
        sweep_.push_back({static_cast<std::int32_t>(nb.proc),
                          static_cast<std::int32_t>(u),
                          static_cast<std::int32_t>(nb.link)});
        q.push(nb.proc);
      }
    }
    for (int dst = 0; dst < p; ++dst)
      if (dst != src && parent[dst] < 0)
        throw std::invalid_argument("topology is not connected");
  };

  // One BFS per source sizes the CSR arena and emits the sweep; a prefix
  // sum turns the per-path lengths into offsets; the fill pass then walks
  // each parent chain back-to-front into its slot.
  for (int src = 0; src < p; ++src) {
    bfs(src);
    for (int dst = 0; dst < p; ++dst)
      path_off_[index(src, dst) + 1] =
          dst == src ? 0 : static_cast<std::uint32_t>(depth[dst]);
  }
  for (std::size_t i = 1; i < path_off_.size(); ++i)
    path_off_[i] += path_off_[i - 1];
  path_data_.resize(path_off_.back());

  for (int src = 0; src < p; ++src) {
    const std::span<const SweepStep> steps = sweep(src);
    // Recover parent chains from this source's sweep instead of a second
    // BFS: the steps hold exactly the tree's parent pointers.
    for (const SweepStep& st : steps) {
      parent[st.proc] = st.parent;
      via_link[st.proc] = st.link;
    }
    for (int dst = 0; dst < p; ++dst) {
      if (dst == src) continue;
      std::int32_t* out = path_data_.data() + path_off_[index(src, dst)];
      int i = distance(src, dst);
      for (int cur = dst; cur != src; cur = parent[cur])
        out[--i] = static_cast<std::int32_t>(via_link[cur]);
    }
  }
}

}  // namespace tgs
