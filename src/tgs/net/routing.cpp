#include "tgs/net/routing.h"

#include <queue>
#include <stdexcept>

namespace tgs {

RoutingTable::RoutingTable(Topology topo) : topo_(std::move(topo)) {
  const Topology& t = topo_;
  const int p = t.num_procs();
  paths_.resize(static_cast<std::size_t>(p) * p);

  for (int src = 0; src < p; ++src) {
    // BFS from src; neighbours are visited in ascending processor id, so
    // parent pointers (and thus paths) are deterministic.
    std::vector<int> parent(p, -1), via_link(p, -1);
    std::queue<int> q;
    std::vector<bool> seen(p, false);
    seen[src] = true;
    q.push(src);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (const Topology::Neighbor& nb : t.neighbors(u)) {
        if (seen[nb.proc]) continue;
        seen[nb.proc] = true;
        parent[nb.proc] = u;
        via_link[nb.proc] = nb.link;
        q.push(nb.proc);
      }
    }
    for (int dst = 0; dst < p; ++dst) {
      if (dst == src) continue;
      std::vector<int> rev;
      for (int cur = dst; cur != src; cur = parent[cur]) {
        if (cur < 0 || parent[cur] < 0)
          throw std::invalid_argument("topology is not connected");
        rev.push_back(via_link[cur]);
      }
      paths_[index(src, dst)].assign(rev.rbegin(), rev.rend());
    }
  }
}

}  // namespace tgs
