#include "tgs/net/net_schedule.h"

#include <algorithm>
#include <stdexcept>

namespace tgs {

NetSchedule::NetSchedule(const TaskGraph& g, const RoutingTable& routes)
    : tasks_(g, routes.topology().num_procs()),
      routes_(&routes),
      links_(routes.topology().num_links()) {}

Time NetSchedule::commit_message(NodeId u, NodeId v, int dst_proc) {
  if (!tasks_.is_placed(u)) throw std::logic_error("message src not placed");
  const int src_proc = tasks_.proc(u);
  const Cost size = graph().edge_cost(u, v);
  if (size < 0) throw std::logic_error("no such edge");
  const Time depart = tasks_.finish(u);

  Message msg{u, v, size, depart, depart, {}};
  if (src_proc != dst_proc && size > 0) {
    Time t = depart;
    for (int link : routes_->path_links(src_proc, dst_proc)) {
      const Time hop_start = links_[link].earliest_fit(t, size, /*insertion=*/true);
      links_[link].occupy(msg_key(u, v), hop_start, size);
      msg.hops.push_back({link, hop_start, hop_start + size});
      t = hop_start + size;
    }
    msg.arrival = t;
  } else if (src_proc != dst_proc) {
    // Zero-size message: instantaneous, no link occupancy.
    msg.arrival = depart;
  }
  const Time arrival = msg.arrival;
  auto [it, inserted] = messages_.emplace(msg_key(u, v), std::move(msg));
  if (!inserted) throw std::logic_error("message already committed");
  order_dirty_ = true;
  return arrival;
}

Time NetSchedule::probe_arrival(int src_proc, int dst_proc, Cost size,
                                Time depart_after) const {
  if (src_proc == dst_proc || size <= 0) return depart_after;
  Time t = depart_after;
  for (int link : routes_->path_links(src_proc, dst_proc))
    t = links_[link].earliest_fit(t, size, /*insertion=*/true) + size;
  return t;
}

void NetSchedule::probe_arrival_all(int src_proc, Cost size,
                                    Time depart_after,
                                    std::span<Time> out) const {
  if (size <= 0) {
    std::fill(out.begin(), out.end(), depart_after);
    return;
  }
  out[src_proc] = depart_after;
  // Parents precede children in the sweep, so out[st.parent] is final by
  // the time the step crosses st.link.
  for (const RoutingTable::SweepStep& st : routes_->sweep(src_proc))
    out[st.proc] =
        links_[st.link].earliest_fit(out[st.parent], size, /*insertion=*/true) +
        size;
}

const Message* NetSchedule::find_message(NodeId u, NodeId v) const {
  const auto it = messages_.find(msg_key(u, v));
  return it == messages_.end() ? nullptr : &it->second;
}

void NetSchedule::release_message(NodeId u, NodeId v) {
  auto it = messages_.find(msg_key(u, v));
  if (it == messages_.end()) return;
  for (const MsgHop& hop : it->second.hops)
    links_[hop.link].release(msg_key(u, v), hop.start);
  messages_.erase(it);
  order_dirty_ = true;
}

bool NetSchedule::take_message(NodeId u, NodeId v, std::vector<Message>& out) {
  auto it = messages_.find(msg_key(u, v));
  if (it == messages_.end()) return false;
  for (const MsgHop& hop : it->second.hops)
    links_[hop.link].release(msg_key(u, v), hop.start);
  out.push_back(std::move(it->second));
  messages_.erase(it);
  order_dirty_ = true;
  return true;
}

void NetSchedule::release_messages_of(NodeId n) {
  for (const Adj& p : graph().parents(n)) release_message(p.node, n);
  for (const Adj& c : graph().children(n)) release_message(n, c.node);
}

void NetSchedule::release_node(NodeId n) {
  for (const Adj& p : graph().parents(n)) release_message(p.node, n);
  tasks_.unplace(n);
}

void NetSchedule::restore_message(const Message& msg) {
  const std::int64_t key = msg_key(msg.src, msg.dst);
  for (const MsgHop& hop : msg.hops)
    links_[hop.link].occupy(key, hop.start, hop.end - hop.start);
  auto [it, inserted] = messages_.emplace(key, msg);
  if (!inserted) throw std::logic_error("message already committed");
  order_dirty_ = true;
}

void NetSchedule::restore_message(Message&& msg) {
  const std::int64_t key = msg_key(msg.src, msg.dst);
  for (const MsgHop& hop : msg.hops)
    links_[hop.link].occupy(key, hop.start, hop.end - hop.start);
  auto [it, inserted] = messages_.emplace(key, std::move(msg));
  if (!inserted) throw std::logic_error("message already committed");
  order_dirty_ = true;
}

const std::vector<Message>& NetSchedule::messages() const {
  if (order_dirty_) {
    order_.clear();
    order_.reserve(messages_.size());
    for (const auto& [key, msg] : messages_) order_.push_back(msg);
    std::sort(order_.begin(), order_.end(), [](const Message& a, const Message& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    order_dirty_ = false;
  }
  return order_;
}

}  // namespace tgs
