// NetSchedule: a task schedule plus the message schedule on network links.
//
// The APN machine model (paper §4): tasks execute on processors of an
// arbitrary topology; every cross-processor edge (u, v) becomes a message
// that must traverse the fixed route from proc(u) to proc(v),
// store-and-forward, occupying each link for c(u, v) time units, one
// message per link at a time. The message may wait at intermediate nodes
// (hops need not be back-to-back) and departs no earlier than FT(u); the
// child may start only after the last hop completes.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "tgs/net/routing.h"
#include "tgs/sched/schedule.h"
#include "tgs/sched/timeline.h"

namespace tgs {

struct MsgHop {
  int link;
  Time start;
  Time end;
};

struct Message {
  NodeId src;
  NodeId dst;
  Cost size;
  Time depart_after;  // FT(src) at routing time
  Time arrival;       // last hop end (== depart_after when co-located)
  std::vector<MsgHop> hops;
};

class NetSchedule {
 public:
  NetSchedule(const TaskGraph& g, const RoutingTable& routes);

  const TaskGraph& graph() const { return tasks_.graph(); }
  const Topology& topology() const { return routes_->topology(); }
  const RoutingTable& routes() const { return *routes_; }

  Schedule& tasks() { return tasks_; }
  const Schedule& tasks() const { return tasks_; }

  /// Route the message of edge (u, v) (u placed, v's processor given) and
  /// commit the link reservations. Returns the arrival time at dst_proc.
  /// Co-located endpoints produce no message and arrive at depart_after.
  Time commit_message(NodeId u, NodeId v, int dst_proc);

  /// Arrival time the message WOULD have if routed now, without reserving
  /// links. Concurrent probes do not see each other (documented
  /// approximation; commits are exact).
  Time probe_arrival(int src_proc, int dst_proc, Cost size,
                     Time depart_after) const;

  /// One-to-all probe: fills out[p] (out.size() == num_procs) with
  /// probe_arrival(src_proc, p, size, depart_after) for every processor,
  /// walking the shortest-path routing tree of src_proc so each tree link
  /// is probed exactly once -- O(links) instead of O(procs x diameter)
  /// for a per-destination sweep. Bit-identical to per-destination probes
  /// (the path to p is a prefix-closed tree path; probes reserve nothing).
  void probe_arrival_all(int src_proc, Cost size, Time depart_after,
                         std::span<Time> out) const;

  /// Remove the committed message of edge (u, v), releasing its links.
  void release_message(NodeId u, NodeId v);

  /// release_message, but move the released record (including its hops
  /// buffer) into `out` instead of discarding it: one keyed lookup and no
  /// copy, which is what the migration engine's snapshot path wants --
  /// every snapshotted message is about to be released anyway. Returns
  /// false (and appends nothing) when no message is committed for (u, v).
  bool take_message(NodeId u, NodeId v, std::vector<Message>& out);

  /// Remove all messages touching node n (incoming and outgoing); used by
  /// migrating algorithms before re-placing n.
  void release_messages_of(NodeId n);

  /// Exact inverse of apn_commit_node: release n's incoming messages (the
  /// ones its own commit routed) and unplace the task. Outgoing messages
  /// belong to the children's commits and are left alone -- a migration
  /// engine releases each affected child through its own release_node.
  void release_node(NodeId n);

  /// Re-commit a previously released message at its recorded hop times
  /// (no routing, no fitting): occupies exactly [start, end) on every
  /// recorded link and restores the keyed entry. The snapshot/rollback
  /// path of incremental migration uses this to restore byte-identical
  /// link state. Throws if the edge's message is already committed or a
  /// hop no longer fits.
  void restore_message(const Message& msg);

  /// Move-in overload: reuses the record's hops buffer (rollback feeds
  /// the messages take_message stole back through this).
  void restore_message(Message&& msg);

  /// Committed messages sorted by (src, dst); rebuilt lazily.
  const std::vector<Message>& messages() const;

  /// The committed message of edge (u, v), or nullptr -- a keyed hash
  /// lookup (validation was an O(messages) scan per edge without it). The
  /// pointer is invalidated by the next commit/release.
  const Message* find_message(NodeId u, NodeId v) const;

  const Timeline& link_timeline(int link) const { return links_[link]; }

  /// Makespan of the task schedule (message tails never extend past the
  /// last dependent task's start in a valid schedule).
  Time makespan() const { return tasks_.makespan(); }

 private:
  static std::int64_t msg_key(NodeId u, NodeId v) {
    return (static_cast<std::int64_t>(u) << 32) | v;
  }

  Schedule tasks_;
  const RoutingTable* routes_;
  std::vector<Timeline> links_;
  std::unordered_map<std::int64_t, Message> messages_;
  mutable std::vector<Message> order_;  // rebuilt lazily for messages()
  mutable bool order_dirty_ = true;
};

}  // namespace tgs
