#include "tgs/net/topology.h"

#include <algorithm>
#include <stdexcept>

#include "tgs/util/rng.h"

namespace tgs {

Topology::Topology(std::string name, int p,
                   std::vector<std::pair<int, int>> links)
    : name_(std::move(name)), num_procs_(p), links_(std::move(links)) {
  if (p <= 0) throw std::invalid_argument("topology needs >= 1 processor");
  for (auto& [a, b] : links_) {
    if (a == b) throw std::invalid_argument("self-link");
    if (a > b) std::swap(a, b);
    if (b >= p) throw std::invalid_argument("link endpoint out of range");
  }
  std::sort(links_.begin(), links_.end());
  links_.erase(std::unique(links_.begin(), links_.end()), links_.end());

  off_.assign(static_cast<std::size_t>(p) + 1, 0);
  for (const auto& [a, b] : links_) {
    ++off_[a + 1];
    ++off_[b + 1];
  }
  for (int i = 0; i < p; ++i) off_[i + 1] += off_[i];
  adj_.resize(links_.size() * 2);
  std::vector<std::size_t> pos(off_.begin(), off_.end() - 1);
  for (int l = 0; l < static_cast<int>(links_.size()); ++l) {
    const auto [a, b] = links_[l];
    adj_[pos[a]++] = {b, l};
    adj_[pos[b]++] = {a, l};
  }
  for (int i = 0; i < p; ++i)
    std::sort(adj_.begin() + off_[i], adj_.begin() + off_[i + 1],
              [](const Neighbor& x, const Neighbor& y) { return x.proc < y.proc; });
}

Topology Topology::fully_connected(int p) {
  std::vector<std::pair<int, int>> links;
  for (int a = 0; a < p; ++a)
    for (int b = a + 1; b < p; ++b) links.emplace_back(a, b);
  return Topology("clique" + std::to_string(p), p, std::move(links));
}

Topology Topology::ring(int p) {
  std::vector<std::pair<int, int>> links;
  if (p == 2) links.emplace_back(0, 1);
  if (p >= 3)
    for (int a = 0; a < p; ++a) links.emplace_back(a, (a + 1) % p);
  return Topology("ring" + std::to_string(p), p, std::move(links));
}

Topology Topology::mesh(int rows, int cols) {
  std::vector<std::pair<int, int>> links;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) links.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) links.emplace_back(id(r, c), id(r + 1, c));
    }
  return Topology("mesh" + std::to_string(rows) + "x" + std::to_string(cols),
                  rows * cols, std::move(links));
}

Topology Topology::hypercube(int dim) {
  if (dim < 0 || dim > 20) throw std::invalid_argument("bad hypercube dim");
  const int p = 1 << dim;
  std::vector<std::pair<int, int>> links;
  for (int a = 0; a < p; ++a)
    for (int d = 0; d < dim; ++d) {
      const int b = a ^ (1 << d);
      if (a < b) links.emplace_back(a, b);
    }
  return Topology("hcube" + std::to_string(dim), p, std::move(links));
}

Topology Topology::star(int p) {
  std::vector<std::pair<int, int>> links;
  for (int b = 1; b < p; ++b) links.emplace_back(0, b);
  return Topology("star" + std::to_string(p), p, std::move(links));
}

Topology Topology::random_connected(int p, double extra_prob,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> links;
  // Random spanning tree: attach each node i >= 1 to a uniform earlier node.
  for (int i = 1; i < p; ++i)
    links.emplace_back(static_cast<int>(rng.uniform_int(0, i - 1)), i);
  for (int a = 0; a < p; ++a)
    for (int b = a + 1; b < p; ++b)
      if (rng.bernoulli(extra_prob)) links.emplace_back(a, b);
  return Topology("rand" + std::to_string(p), p, std::move(links));
}

int Topology::link_between(int a, int b) const {
  for (const Neighbor& nb : neighbors(a))
    if (nb.proc == b) return nb.link;
  return -1;
}

int Topology::max_degree_proc() const {
  int best = 0;
  for (int p = 1; p < num_procs_; ++p)
    if (degree(p) > degree(best)) best = p;
  return best;
}

}  // namespace tgs
