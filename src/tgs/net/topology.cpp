#include "tgs/net/topology.h"

#include <algorithm>
#include <stdexcept>

#include "tgs/util/rng.h"

namespace tgs {

Topology::Topology(std::string name, int p,
                   std::vector<std::pair<int, int>> links)
    : name_(std::move(name)), num_procs_(p), links_(std::move(links)) {
  if (p <= 0) throw std::invalid_argument("topology needs >= 1 processor");
  for (auto& [a, b] : links_) {
    if (a == b) throw std::invalid_argument("self-link");
    if (a > b) std::swap(a, b);
    if (b >= p) throw std::invalid_argument("link endpoint out of range");
  }
  std::sort(links_.begin(), links_.end());
  links_.erase(std::unique(links_.begin(), links_.end()), links_.end());

  off_.assign(static_cast<std::size_t>(p) + 1, 0);
  for (const auto& [a, b] : links_) {
    ++off_[a + 1];
    ++off_[b + 1];
  }
  for (int i = 0; i < p; ++i) off_[i + 1] += off_[i];
  adj_.resize(links_.size() * 2);
  std::vector<std::size_t> pos(off_.begin(), off_.end() - 1);
  for (int l = 0; l < static_cast<int>(links_.size()); ++l) {
    const auto [a, b] = links_[l];
    adj_[pos[a]++] = {b, l};
    adj_[pos[b]++] = {a, l};
  }
  for (int i = 0; i < p; ++i)
    std::sort(adj_.begin() + off_[i], adj_.begin() + off_[i + 1],
              [](const Neighbor& x, const Neighbor& y) { return x.proc < y.proc; });
}

Topology Topology::fully_connected(int p) {
  std::vector<std::pair<int, int>> links;
  for (int a = 0; a < p; ++a)
    for (int b = a + 1; b < p; ++b) links.emplace_back(a, b);
  return Topology("clique" + std::to_string(p), p, std::move(links));
}

Topology Topology::ring(int p) {
  std::vector<std::pair<int, int>> links;
  if (p == 2) links.emplace_back(0, 1);
  if (p >= 3)
    for (int a = 0; a < p; ++a) links.emplace_back(a, (a + 1) % p);
  return Topology("ring" + std::to_string(p), p, std::move(links));
}

Topology Topology::mesh(int rows, int cols) {
  std::vector<std::pair<int, int>> links;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) links.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) links.emplace_back(id(r, c), id(r + 1, c));
    }
  return Topology("mesh" + std::to_string(rows) + "x" + std::to_string(cols),
                  rows * cols, std::move(links));
}

Topology Topology::hypercube(int dim) {
  if (dim < 0 || dim > 20) throw std::invalid_argument("bad hypercube dim");
  const int p = 1 << dim;
  std::vector<std::pair<int, int>> links;
  for (int a = 0; a < p; ++a)
    for (int d = 0; d < dim; ++d) {
      const int b = a ^ (1 << d);
      if (a < b) links.emplace_back(a, b);
    }
  return Topology("hcube" + std::to_string(dim), p, std::move(links));
}

Topology Topology::star(int p) {
  std::vector<std::pair<int, int>> links;
  for (int b = 1; b < p; ++b) links.emplace_back(0, b);
  return Topology("star" + std::to_string(p), p, std::move(links));
}

Topology Topology::random_connected(int p, double extra_prob,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> links;
  // Random spanning tree: attach each node i >= 1 to a uniform earlier node.
  for (int i = 1; i < p; ++i)
    links.emplace_back(static_cast<int>(rng.uniform_int(0, i - 1)), i);
  for (int a = 0; a < p; ++a)
    for (int b = a + 1; b < p; ++b)
      if (rng.bernoulli(extra_prob)) links.emplace_back(a, b);
  return Topology("rand" + std::to_string(p), p, std::move(links));
}

Topology Topology::from_spec(const std::string& spec) {
  const auto fail = [&spec]() -> Topology {
    throw std::invalid_argument("bad topology spec: '" + spec + "'");
  };
  // Strict positive-integer parse of spec[pos..end); -1 on garbage.
  const auto num = [&spec](std::size_t pos, std::size_t end) -> long {
    if (pos >= end || end > spec.size()) return -1;
    long v = 0;
    for (std::size_t i = pos; i < end; ++i) {
      if (spec[i] < '0' || spec[i] > '9') return -1;
      v = v * 10 + (spec[i] - '0');
      if (v > 1'000'000) return -1;
    }
    return v;
  };
  const auto tail = [&](std::size_t prefix) { return num(prefix, spec.size()); };

  try {
    if (spec.rfind("ring", 0) == 0) {
      const long p = tail(4);
      if (p < 1) fail();
      return ring(static_cast<int>(p));
    }
    if (spec.rfind("hcube", 0) == 0) {
      const long d = tail(5);
      if (d < 0) fail();
      return hypercube(static_cast<int>(d));
    }
    if (spec.rfind("clique", 0) == 0) {
      const long p = tail(6);
      if (p < 1) fail();
      return fully_connected(static_cast<int>(p));
    }
    if (spec.rfind("star", 0) == 0) {
      const long p = tail(4);
      if (p < 1) fail();
      return star(static_cast<int>(p));
    }
    if (spec.rfind("mesh", 0) == 0) {
      const std::size_t x = spec.find('x', 4);
      if (x == std::string::npos) fail();
      const long r = num(4, x), c = num(x + 1, spec.size());
      if (r < 1 || c < 1) fail();
      return mesh(static_cast<int>(r), static_cast<int>(c));
    }
    if (spec.rfind("rand", 0) == 0) {
      const std::size_t at = spec.find('@', 4);
      const std::size_t hash = spec.find('#', 4);
      if (at == std::string::npos || hash == std::string::npos || hash < at)
        fail();
      const long p = num(4, at);
      if (p < 1) fail();
      std::size_t used = 0;
      const std::string prob_text = spec.substr(at + 1, hash - at - 1);
      const double prob = std::stod(prob_text, &used);
      if (used != prob_text.size() || prob < 0.0 || prob > 1.0) fail();
      const long seed = num(hash + 1, spec.size());
      if (seed < 0) fail();
      return random_connected(static_cast<int>(p), prob,
                              static_cast<std::uint64_t>(seed));
    }
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception&) {  // std::stod range errors and friends
    fail();
  }
  return fail();
}

int Topology::link_between(int a, int b) const {
  for (const Neighbor& nb : neighbors(a))
    if (nb.proc == b) return nb.link;
  return -1;
}

int Topology::max_degree_proc() const {
  int best = 0;
  for (int p = 1; p < num_procs_; ++p)
    if (degree(p) > degree(best)) best = p;
  return best;
}

}  // namespace tgs
