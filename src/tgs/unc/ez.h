// EZ -- Edge Zeroing (Sarkar, 1989; paper ref [28]).
//
// Classification: UNC, non-CP-based, non-greedy. Edges are examined in
// descending order of communication cost; zeroing an edge means merging the
// clusters of its endpoints. A merge is committed iff the makespan of the
// resulting clustering (evaluated by the deterministic cluster-schedule of
// cluster_schedule.h) does not increase. Complexity O(e (v + e)).
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class EzScheduler final : public Scheduler {
 public:
  std::string name() const override { return "EZ"; }
  AlgoClass algo_class() const override { return AlgoClass::kUNC; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
