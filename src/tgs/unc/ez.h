// EZ -- Edge Zeroing (Sarkar, 1989; paper ref [28]).
//
// Classification: UNC, non-CP-based, non-greedy. Edges are examined in
// descending order of communication cost; zeroing an edge means merging the
// clusters of its endpoints. A merge is committed iff the makespan of the
// resulting clustering (evaluated by the deterministic cluster-schedule of
// cluster_schedule.h) does not increase. Complexity O(e (v + e)).
//
// Expressed as the parameter point bl/static/append/ez of the
// ParamScheduler core: the edge-zeroing pass (ez_clusters, unc/ez.cpp)
// fixes the cluster map, and the b-level static list phase reproduces the
// deterministic cluster materialization byte-for-byte
// (tests/reference_named.h, enforced by test_param.cpp).
#pragma once

#include "tgs/param/param_scheduler.h"

namespace tgs {

class EzScheduler final : public ParamScheduler {
 public:
  EzScheduler()
      : ParamScheduler({ParamMetric::kBL, ParamReady::kStatic,
                        ParamInsertion::kAppend, ParamCluster::kEz},
                       "EZ", AlgoClass::kUNC) {}
};

}  // namespace tgs
