// MD -- Mobility Directed scheduling (Wu & Gajski, 1990; paper ref [32]).
//
// Classification: UNC, CP-based, dynamic list, non-greedy. The relative
// mobility of an unscheduled node under the current partial schedule is
//     M(n) = (L - (tlevel'(n) + blevel'(n))) / w(n)
// where tlevel'/blevel' pin already-placed nodes at their start times and L
// is the current critical-path length estimate. Critical-path nodes have
// zero mobility and are placed first. The selected node is placed on the
// FIRST processor (in index order) offering an idle slot inside the node's
// mobility window [tlevel'(n), L - blevel'(n)]; only when no processor can
// hold it inside the window is the minimum-EST processor used. Scanning
// used processors first is why the paper observes MD using relatively few
// processors. Attributes are recomputed after every placement: O(v(v+e)).
//
// Fidelity note: the original MD may also displace ("push") already
// scheduled nodes when inserting; we restrict placement to existing idle
// gaps, and we only select among nodes whose parents are all placed so that
// data-ready times are exact (DESIGN.md, §3).
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class MdScheduler final : public Scheduler {
 public:
  std::string name() const override { return "MD"; }
  AlgoClass algo_class() const override { return AlgoClass::kUNC; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
