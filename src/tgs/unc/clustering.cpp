#include "tgs/unc/clustering.h"

#include <numeric>
#include <unordered_map>

#include "tgs/sched/schedule.h"
#include "tgs/unc/dsc.h"

namespace tgs {

DisjointSets::DisjointSets(std::size_t n) : parent_(n) {
  std::iota(parent_.begin(), parent_.end(), NodeId{0});
}

NodeId DisjointSets::find(NodeId x) const {
  NodeId root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression (state change is representation-only).
  while (parent_[x] != root) {
    const NodeId next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

NodeId DisjointSets::merge(NodeId a, NodeId b) {
  const NodeId ra = find(a), rb = find(b);
  if (ra == rb) return ra;
  // Smaller representative wins: deterministic cluster ids.
  const NodeId lo = ra < rb ? ra : rb;
  const NodeId hi = ra < rb ? rb : ra;
  parent_[hi] = lo;
  return lo;
}

std::size_t DisjointSets::num_sets() const {
  std::size_t count = 0;
  for (NodeId i = 0; i < parent_.size(); ++i)
    if (find(i) == i) ++count;
  return count;
}

std::vector<ProcId> dense_assignment(const DisjointSets& ds) {
  std::vector<NodeId> labels(ds.size());
  for (NodeId i = 0; i < ds.size(); ++i) labels[i] = ds.find(i);
  return densify(labels);
}

std::vector<ProcId> densify(const std::vector<NodeId>& labels) {
  std::unordered_map<NodeId, ProcId> remap;
  std::vector<ProcId> out(labels.size());
  ProcId next = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    auto [it, inserted] = remap.emplace(labels[i], next);
    if (inserted) ++next;
    out[i] = it->second;
  }
  return out;
}

std::vector<ProcId> dsc_clusters(const TaskGraph& g) {
  // DSC assigns start times while it clusters; the schedule IS the
  // clustering. Run it and keep only the processor (= cluster) labels.
  const Schedule s = DscScheduler().run(g, {});
  std::vector<NodeId> labels(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    labels[n] = static_cast<NodeId>(s.proc(n));
  return densify(labels);
}

}  // namespace tgs
