#include "tgs/unc/md.h"

#include <algorithm>

#include "tgs/bnp/bnp_common.h"
#include "tgs/graph/attributes.h"
#include "tgs/list/ready_list.h"

namespace tgs {

namespace {

// tlevel' with placed nodes pinned at their start times; cross-cluster
// communication kept for unplaced successors (placement unknown).
void pinned_t_levels(const TaskGraph& g, const Schedule& s,
                     std::vector<Time>& t) {
  t.assign(g.num_nodes(), 0);
  for (NodeId u : g.topological_order()) {
    if (s.is_placed(u)) {
      t[u] = s.start(u);
      continue;
    }
    Time best = 0;
    for (const Adj& par : g.parents(u)) {
      // Placed parent: exact finish; unplaced: estimated via its tlevel'.
      const Time ft = t[par.node] + g.weight(par.node);
      best = std::max(best, ft + par.cost);
    }
    t[u] = best;
  }
}

// blevel' on the unmodified graph (edge costs kept); placements do not
// shorten it because successors' processors are unknown.
void full_b_levels(const TaskGraph& g, std::vector<Time>& b) {
  b.assign(g.num_nodes(), 0);
  const auto& topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    Time best = 0;
    for (const Adj& c : g.children(u)) best = std::max(best, c.cost + b[c.node]);
    b[u] = g.weight(u) + best;
  }
}

}  // namespace

Schedule MdScheduler::do_run(const TaskGraph& g, const SchedOptions& opt,
                             SchedWorkspace& ws) const {
  (void)ws;
  const int limit = effective_procs(g, opt);
  Schedule sched(g, limit);
  ProcScanner scanner(limit);
  ReadyList ready(g);

  std::vector<Time> t, b;
  full_b_levels(g, b);  // static under our estimate; computed once

  while (!ready.empty()) {
    pinned_t_levels(g, sched, t);
    Time L = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) L = std::max(L, t[u] + b[u]);

    // Min relative mobility among ready nodes, compared exactly by
    // cross-multiplication: (L - s_a)/w_a < (L - s_b)/w_b.
    NodeId n = kNoNode;
    for (NodeId m : ready.ready()) {
      if (n == kNoNode) {
        n = m;
        continue;
      }
      const Time slack_m = (L - (t[m] + b[m])) * g.weight(n);
      const Time slack_n = (L - (t[n] + b[n])) * g.weight(m);
      if (slack_m < slack_n) n = m;
    }

    const Time window_end = L - b[n];  // latest CP-preserving start
    const Time dur = g.weight(n);

    // First processor whose earliest feasible slot lies inside the window.
    ProcId chosen = kNoProc;
    Time chosen_start = 0;
    const int count = scanner.scan_count();
    for (ProcId p = 0; p < count; ++p) {
      const Time dr = sched.data_ready(n, p);
      const Time st = sched.earliest_start_on(p, dr, dur, /*insertion=*/true);
      if (st <= window_end) {
        chosen = p;
        chosen_start = st;
        break;
      }
    }
    if (chosen == kNoProc) {
      // No window fit anywhere: fall back to globally earliest start.
      const ProcChoice c = best_est_proc(sched, n, scanner, /*insertion=*/true);
      chosen = c.proc;
      chosen_start = c.start;
    }
    sched.place(n, chosen, chosen_start);
    scanner.note_placement(chosen);
    ready.mark_scheduled(n);
  }
  return sched;
}

}  // namespace tgs
