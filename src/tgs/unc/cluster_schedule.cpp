#include "tgs/unc/cluster_schedule.h"

#include <algorithm>

#include "tgs/graph/attributes.h"
#include "tgs/list/priorities.h"

namespace tgs {

std::vector<NodeId> blevel_order(const TaskGraph& g) {
  return order_by_descending(b_levels(g));
}

Schedule schedule_with_assignment(const TaskGraph& g,
                                  const std::vector<ProcId>& assign,
                                  bool insertion) {
  Schedule sched(g);
  for (NodeId n : blevel_order(g)) {
    const ProcId p = assign[n];
    const Time ready = sched.data_ready(n, p);
    const Time start = sched.earliest_start_on(p, ready, g.weight(n), insertion);
    sched.place(n, p, start);
  }
  return sched;
}

Time assignment_makespan(const TaskGraph& g, const std::vector<ProcId>& assign,
                         const std::vector<NodeId>& order,
                         std::vector<Time>& start_scratch,
                         std::vector<Time>& avail_scratch) {
  // Append-only traversal in the given topological order; per-processor
  // available time suffices, no Timeline objects needed. Scratch buffers
  // avoid reallocation in hot loops (EZ runs this once per edge).
  ProcId max_proc = 0;
  for (ProcId p : assign) max_proc = std::max(max_proc, p);
  avail_scratch.assign(static_cast<std::size_t>(max_proc) + 1, 0);
  start_scratch.assign(g.num_nodes(), 0);
  Time makespan = 0;

  for (NodeId n : order) {
    const ProcId p = assign[n];
    Time ready = 0;
    for (const Adj& par : g.parents(n)) {
      const Time ft = start_scratch[par.node] + g.weight(par.node);
      ready = std::max(ready, assign[par.node] == p ? ft : ft + par.cost);
    }
    const Time st = std::max(ready, avail_scratch[p]);
    start_scratch[n] = st;
    avail_scratch[p] = st + g.weight(n);
    makespan = std::max(makespan, avail_scratch[p]);
  }
  return makespan;
}

Time assignment_makespan(const TaskGraph& g, const std::vector<ProcId>& assign) {
  const std::vector<NodeId> order = blevel_order(g);
  std::vector<Time> start, avail;
  return assignment_makespan(g, assign, order, start, avail);
}

}  // namespace tgs
