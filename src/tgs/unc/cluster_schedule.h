// Turning a cluster assignment into a concrete schedule.
//
// Given a fixed node -> cluster (processor) assignment, tasks are ordered
// by descending b-level (a valid topological order, since b-level strictly
// decreases along every edge) and each starts at
//   max(processor available time, data-ready time)
// with communication zeroed inside a cluster. This is the evaluation step
// used by EZ after every tentative merge, the final materialization for LC,
// and the execution-ordering step of the UNC+CS mapping extension.
#pragma once

#include <vector>

#include "tgs/graph/task_graph.h"
#include "tgs/sched/schedule.h"
#include "tgs/util/types.h"

namespace tgs {

/// List-schedule `g` with the fixed `assign`ment (one entry per node).
/// `insertion` enables idle-slot insertion (off by default: clusters are
/// sequential task chains in the UNC model).
Schedule schedule_with_assignment(const TaskGraph& g,
                                  const std::vector<ProcId>& assign,
                                  bool insertion = false);

/// Same, but only returns the makespan (no Schedule object); used in the
/// EZ inner loop where only the length matters.
Time assignment_makespan(const TaskGraph& g, const std::vector<ProcId>& assign);

/// Hot-loop variant with a precomputed traversal order and caller-owned
/// scratch buffers (EZ calls this once per edge of the graph).
Time assignment_makespan(const TaskGraph& g, const std::vector<ProcId>& assign,
                         const std::vector<NodeId>& order,
                         std::vector<Time>& start_scratch,
                         std::vector<Time>& avail_scratch);

/// Deterministic order used by both functions: descending b-level, ties by
/// node id. Exposed for tests.
std::vector<NodeId> blevel_order(const TaskGraph& g);

}  // namespace tgs
