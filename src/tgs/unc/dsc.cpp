#include "tgs/unc/dsc.h"

#include <algorithm>
#include <vector>

#include "tgs/graph/attributes.h"
#include "tgs/list/ready_list.h"
#include "tgs/unc/clustering.h"

namespace tgs {

Schedule DscScheduler::do_run(const TaskGraph& g, const SchedOptions& opt,
                              SchedWorkspace& ws) const {
  (void)opt;
  const NodeId n = g.num_nodes();
  const std::vector<Time>& bl = ws.attrs().b_levels();

  // Cluster state: id per node (representative = first member), the finish
  // time of the cluster's last appended node, and the start time assigned
  // to each examined node.
  std::vector<NodeId> cluster(n, kNoNode);
  std::vector<Time> cluster_finish;  // indexed by dense cluster id
  std::vector<Time> start(n, 0);
  std::vector<bool> examined(n, false);

  ReadyList free_nodes(g);  // "free" in DSC terms: all parents examined

  auto finish_of = [&](NodeId u) { return start[u] + g.weight(u); };

  while (!free_nodes.empty()) {
    // Highest tlevel + blevel among free nodes; tlevel of a free node is
    // its best start on a fresh cluster = max over parents FT + c.
    NodeId nf = kNoNode;
    Time nf_prio = -1;
    Time nf_tlevel = 0;
    for (NodeId u : free_nodes.ready()) {
      Time tl = 0;
      for (const Adj& par : g.parents(u))
        tl = std::max(tl, finish_of(par.node) + par.cost);
      const Time prio = tl + bl[u];
      if (prio > nf_prio || (prio == nf_prio && u < nf)) {
        nf = u;
        nf_prio = prio;
        nf_tlevel = tl;
      }
    }

    // Candidate clusters: those of nf's parents. Appending nf to cluster C
    // zeroes the edges from every parent inside C.
    Time best_start = nf_tlevel;  // fresh-cluster start
    NodeId best_cluster = kNoNode;
    std::vector<NodeId> cand;
    for (const Adj& par : g.parents(nf)) {
      const NodeId c = cluster[par.node];
      if (std::find(cand.begin(), cand.end(), c) == cand.end())
        cand.push_back(c);
    }
    std::sort(cand.begin(), cand.end());
    for (NodeId c : cand) {
      Time ready = 0;
      for (const Adj& par : g.parents(nf)) {
        const Time ft = finish_of(par.node);
        ready = std::max(ready, cluster[par.node] == c ? ft : ft + par.cost);
      }
      const Time st = std::max(ready, cluster_finish[c]);
      if (st < best_start) {  // strict improvement only
        best_start = st;
        best_cluster = c;
      }
    }

    if (best_cluster == kNoNode) {
      // Open a fresh cluster for nf.
      best_cluster = static_cast<NodeId>(cluster_finish.size());
      cluster_finish.push_back(0);
    }
    cluster[nf] = best_cluster;
    start[nf] = best_start;
    cluster_finish[best_cluster] = best_start + g.weight(nf);
    examined[nf] = true;
    free_nodes.mark_scheduled(nf);
  }

  // Materialize: placements are exactly the (cluster, start) pairs.
  ProcId max_c = 0;
  for (NodeId u = 0; u < n; ++u)
    max_c = std::max(max_c, static_cast<ProcId>(cluster[u]));
  Schedule sched(g, max_c + 1);
  for (NodeId u = 0; u < n; ++u)
    sched.place(u, static_cast<ProcId>(cluster[u]), start[u]);
  return sched;
}

}  // namespace tgs
