// Clustering support for the UNC (unbounded number of clusters) algorithms.
//
// UNC scheduling (paper §4) starts with one cluster per node and merges
// clusters when that reduces the completion time; a cluster is ultimately a
// virtual processor. DisjointSets tracks cluster membership with
// deterministic representatives (the smallest member id), so cluster ids
// are stable across runs.
#pragma once

#include <vector>

#include "tgs/util/types.h"

namespace tgs {

class TaskGraph;

class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n);

  /// Representative (smallest member) of x's set.
  NodeId find(NodeId x) const;

  /// Merge the sets of a and b; the representative of the union is the
  /// smaller of the two representatives. Returns the new representative.
  NodeId merge(NodeId a, NodeId b);

  bool same(NodeId a, NodeId b) const { return find(a) == find(b); }

  std::size_t size() const { return parent_.size(); }

  /// Number of distinct sets.
  std::size_t num_sets() const;

  /// Snapshot of the full state (for tentative-merge rollback).
  std::vector<NodeId> snapshot() const { return parent_; }
  void restore(std::vector<NodeId> snap) { parent_ = std::move(snap); }

 private:
  // Path compression is applied lazily in the non-const overload used
  // internally; find() is logically const.
  mutable std::vector<NodeId> parent_;
};

/// Map each node's cluster representative to a dense ProcId, numbering
/// clusters by the order their representatives appear (i.e., by smallest
/// member id). Result[n] is the processor/cluster of node n.
std::vector<ProcId> dense_assignment(const DisjointSets& ds);

/// Dense renumbering of an arbitrary assignment vector (cluster labels of
/// any kind -> 0-based processor ids ordered by first appearance).
std::vector<ProcId> densify(const std::vector<NodeId>& labels);

// The clustering cores of the UNC algorithms, returning the dense
// node -> cluster assignment without materializing a Schedule. These are
// the ClusterStep components of the parameterized scheduler
// (src/tgs/param/); EZ and LC themselves are the parameter points
// bl/static/append/{ez,lc} built on the first two.
//   ez_clusters  -- Sarkar edge zeroing (unc/ez.cpp)
//   lc_clusters  -- Kim-Browne linear path peeling (unc/lc.cpp)
//   dsc_clusters -- clusters of a full DSC run (unc/dsc.cpp), densified;
//                   DSC's interleaved start-time assignment cannot be
//                   replayed by a generic list phase, so only its cluster
//                   map is reused (docs/parameterized.md).
std::vector<ProcId> ez_clusters(const TaskGraph& g);
std::vector<ProcId> lc_clusters(const TaskGraph& g);
std::vector<ProcId> dsc_clusters(const TaskGraph& g);

}  // namespace tgs
