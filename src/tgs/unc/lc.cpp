// The path-peeling cluster core of LC (Kim & Browne). The LcScheduler in
// lc.h is the parameter point bl/static/append/lc; this file holds the
// clustering pass the ParamScheduler's ClusterStep invokes.
#include <vector>

#include "tgs/graph/task_graph.h"
#include "tgs/unc/clustering.h"

namespace tgs {

std::vector<ProcId> lc_clusters(const TaskGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<bool> examined(n, false);
  DisjointSets ds(n);

  std::size_t remaining = n;
  while (remaining > 0) {
    // Longest (node+edge)-weight path over unexamined nodes. down[u] =
    // weight of the heaviest unexamined path starting at u; next[u] = the
    // successor realizing it (ties -> smallest id, via sorted children).
    std::vector<Time> down(n, 0);
    std::vector<NodeId> next(n, kNoNode);
    const auto& topo = g.topological_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId u = *it;
      if (examined[u]) continue;
      Time best_kid = 0;
      NodeId best_next = kNoNode;
      for (const Adj& c : g.children(u)) {
        if (examined[c.node]) continue;
        const Time cand = c.cost + down[c.node];
        if (cand > best_kid) {
          best_kid = cand;
          best_next = c.node;
        }
      }
      down[u] = g.weight(u) + best_kid;
      next[u] = best_next;
    }

    // Path head: unexamined node with max down (ties -> smallest id).
    NodeId head = kNoNode;
    for (NodeId u = 0; u < n; ++u) {
      if (examined[u]) continue;
      if (head == kNoNode || down[u] > down[head]) head = u;
    }

    // Collapse the path into one cluster.
    NodeId prev = kNoNode;
    for (NodeId u = head; u != kNoNode; u = next[u]) {
      examined[u] = true;
      --remaining;
      if (prev != kNoNode) ds.merge(prev, u);
      prev = u;
    }
  }

  return dense_assignment(ds);
}

}  // namespace tgs
