#include "tgs/unc/dcp.h"

#include <algorithm>

#include "tgs/graph/attributes.h"
#include "tgs/list/ready_list.h"

namespace tgs {

namespace {

void pinned_aest(const TaskGraph& g, const Schedule& s, std::vector<Time>& t) {
  t.assign(g.num_nodes(), 0);
  for (NodeId u : g.topological_order()) {
    if (s.is_placed(u)) {
      t[u] = s.start(u);
      continue;
    }
    Time best = 0;
    for (const Adj& par : g.parents(u)) {
      const Time ft = t[par.node] + g.weight(par.node);
      // Communication is zeroed only between co-located placed pairs; for
      // a not-yet-placed child the cost must be assumed.
      best = std::max(best, ft + par.cost);
    }
    t[u] = best;
  }
}

void comm_b_levels(const TaskGraph& g, std::vector<Time>& b) {
  b.assign(g.num_nodes(), 0);
  const auto& topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    Time best = 0;
    for (const Adj& c : g.children(u)) best = std::max(best, c.cost + b[c.node]);
    b[u] = g.weight(u) + best;
  }
}

}  // namespace

Schedule DcpScheduler::do_run(const TaskGraph& g, const SchedOptions& opt,
                              SchedWorkspace& ws) const {
  (void)ws;
  const int limit = effective_procs(g, opt);
  Schedule sched(g, limit);
  ReadyList ready(g);
  int used = 0;

  std::vector<Time> aest, bl;
  comm_b_levels(g, bl);  // invariant under our pinning scheme

  while (!ready.empty()) {
    pinned_aest(g, sched, aest);
    Time cpl = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      cpl = std::max(cpl, aest[u] + bl[u]);

    // ALST(u) = cpl - bl(u); slack = ALST - AEST.
    // Select the ready node with minimum slack, ties by smaller ALST,
    // then smaller id.
    NodeId n = kNoNode;
    Time n_slack = 0, n_alst = 0;
    for (NodeId m : ready.ready()) {
      const Time alst = cpl - bl[m];
      const Time slack = alst - aest[m];
      if (n == kNoNode || slack < n_slack ||
          (slack == n_slack && alst < n_alst)) {
        n = m;
        n_slack = slack;
        n_alst = alst;
      }
    }

    // Candidate processors: placed parents' and children's processors
    // first (ascending), then the remaining in-use processors, then one
    // fresh processor. The ordering matters only for tie-breaks, where it
    // implements DCP's preference for processors already holding related
    // nodes.
    std::vector<ProcId> cand;
    auto add_cand = [&cand](ProcId p) {
      if (std::find(cand.begin(), cand.end(), p) == cand.end())
        cand.push_back(p);
    };
    {
      std::vector<ProcId> related;
      for (const Adj& par : g.parents(n))
        if (sched.is_placed(par.node)) related.push_back(sched.proc(par.node));
      for (const Adj& c : g.children(n))
        if (sched.is_placed(c.node)) related.push_back(sched.proc(c.node));
      std::sort(related.begin(), related.end());
      for (ProcId p : related) add_cand(p);
    }
    for (ProcId p = 0; p < static_cast<ProcId>(used); ++p) add_cand(p);
    if (used < limit) add_cand(static_cast<ProcId>(used));
    if (cand.empty()) add_cand(0);

    // Critical child: unplaced child with minimum slack (ties smaller id),
    // used for the one-step lookahead.
    NodeId cc = kNoNode;
    Time cc_slack = 0;
    for (const Adj& c : g.children(n)) {
      if (sched.is_placed(c.node)) continue;
      const Time slack = (cpl - bl[c.node]) - aest[c.node];
      if (cc == kNoNode || slack < cc_slack) {
        cc = c.node;
        cc_slack = slack;
      }
    }

    ProcId best_p = cand.front();
    Time best_start = 0;
    Time best_obj = kTimeInf;
    for (ProcId p : cand) {
      const Time st = sched.est(n, p, /*insertion=*/true);
      Time obj = st;
      if (cc != kNoNode) {
        // Estimate the critical child's start if it also landed on p.
        Time cc_ready = st + g.weight(n);  // from n, co-located
        for (const Adj& par : g.parents(cc)) {
          if (par.node == n) continue;
          if (sched.is_placed(par.node)) {
            const Time ft = sched.finish(par.node);
            cc_ready = std::max(cc_ready,
                                sched.proc(par.node) == p ? ft : ft + par.cost);
          } else {
            cc_ready =
                std::max(cc_ready, aest[par.node] + g.weight(par.node) + par.cost);
          }
        }
        // Insertion-aware: the child competes for idle slots on p's current
        // timeline (cc_ready >= st + w(n) keeps it clear of n itself).
        const Time cc_start =
            sched.earliest_start_on(p, cc_ready, g.weight(cc), /*insertion=*/true);
        obj = st + cc_start;
      }
      if (obj < best_obj) {  // ties keep the earliest candidate (parents first)
        best_obj = obj;
        best_p = p;
        best_start = st;
      }
    }

    sched.place(n, best_p, best_start);
    used = std::max(used, static_cast<int>(best_p) + 1);
    ready.mark_scheduled(n);
  }
  return sched;
}

}  // namespace tgs
