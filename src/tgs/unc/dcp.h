// DCP -- Dynamic Critical Path scheduling (Kwok & Ahmad, 1996; paper ref
// [22]).
//
// Classification: UNC, CP-based, dynamic list, lookahead (non-greedy).
// After every placement the absolute earliest start time (AEST) and
// absolute latest start time (ALST) of each node are recomputed on the
// partially scheduled graph; nodes with AEST == ALST form the dynamic
// critical path. The node with minimum slack (ALST - AEST) is selected
// (ties: smaller ALST). Candidate processors are those holding the node's
// placed parents/children plus one fresh processor; the winner minimizes
// the composite objective
//     start(n, p) + lookahead-start(critical child of n, p)
// with insertion. On ties the earliest candidate in order (parents'
// processors first, fresh last) wins, reproducing DCP's "do not open a new
// processor unless the schedule length requires it" strategy that the
// paper highlights in §6.4.2. Complexity O(v^3) in this dynamic form; the
// paper finds DCP the strongest UNC algorithm, at the price of the largest
// running time in its class.
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class DcpScheduler final : public Scheduler {
 public:
  std::string name() const override { return "DCP"; }
  AlgoClass algo_class() const override { return AlgoClass::kUNC; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
