// LC -- Linear Clustering (Kim & Browne, 1988; paper ref [20]).
//
// Classification: UNC, CP-based, non-greedy. Repeatedly finds the current
// critical path over the still-unexamined nodes (edges to examined nodes
// are cut), collapses that whole path into one linear cluster, marks its
// nodes examined, and iterates until every node is clustered. Every cluster
// is a chain, hence "linear". The paper notes LC "pays no attention to the
// use of processors" -- each peeled path opens a new cluster -- which we
// reproduce (Fig. 3(a) behaviour). Complexity O(v (v + e)).
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class LcScheduler final : public Scheduler {
 public:
  std::string name() const override { return "LC"; }
  AlgoClass algo_class() const override { return AlgoClass::kUNC; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
