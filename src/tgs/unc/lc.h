// LC -- Linear Clustering (Kim & Browne, 1988; paper ref [20]).
//
// Classification: UNC, CP-based, non-greedy. Repeatedly finds the current
// critical path over the still-unexamined nodes (edges to examined nodes
// are cut), collapses that whole path into one linear cluster, marks its
// nodes examined, and iterates until every node is clustered. Every cluster
// is a chain, hence "linear". The paper notes LC "pays no attention to the
// use of processors" -- each peeled path opens a new cluster -- which we
// reproduce (Fig. 3(a) behaviour). Complexity O(v (v + e)).
//
// Expressed as the parameter point bl/static/append/lc of the
// ParamScheduler core: the path-peeling pass (lc_clusters, unc/lc.cpp)
// fixes the cluster map, and the b-level static list phase reproduces the
// deterministic cluster materialization byte-for-byte
// (tests/reference_named.h, enforced by test_param.cpp).
#pragma once

#include "tgs/param/param_scheduler.h"

namespace tgs {

class LcScheduler final : public ParamScheduler {
 public:
  LcScheduler()
      : ParamScheduler({ParamMetric::kBL, ParamReady::kStatic,
                        ParamInsertion::kAppend, ParamCluster::kLc},
                       "LC", AlgoClass::kUNC) {}
};

}  // namespace tgs
