// DSC -- Dominant Sequence Clustering (Yang & Gerasoulis, 1994; paper ref
// [34]).
//
// Classification: UNC, CP-based, dynamic list, greedy. The dominant
// sequence (the critical path of the partially scheduled graph) is tracked
// through the priority tlevel(n) + blevel(n). Free nodes (all parents
// examined) are processed in descending priority; a free node tries to
// reduce its start time by merging into the cluster of one of its parents
// (zeroing the incoming edges from that cluster); the best strict
// improvement is accepted, otherwise the node opens its own cluster.
//
// Fidelity note (also in DESIGN.md): the full DSC uses constrained
// insertion inside clusters plus the DSRW partial-free-node rule; we
// implement append-only merging with strict-improvement acceptance. This
// keeps DSC's monotonicity (no node's start time ever increases) and its
// O((v + e) log v) flavour while simplifying cluster bookkeeping; the
// qualitative results of the paper (DSC close to DCP, far better than
// EZ/LC) are preserved.
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class DscScheduler final : public Scheduler {
 public:
  std::string name() const override { return "DSC"; }
  AlgoClass algo_class() const override { return AlgoClass::kUNC; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
