// The edge-zeroing cluster core of EZ (Sarkar). The EzScheduler in ez.h is
// the parameter point bl/static/append/ez; this file holds the clustering
// pass the ParamScheduler's ClusterStep invokes.
#include <algorithm>
#include <vector>

#include "tgs/unc/cluster_schedule.h"
#include "tgs/unc/clustering.h"

namespace tgs {

std::vector<ProcId> ez_clusters(const TaskGraph& g) {
  struct EdgeRef {
    NodeId u, v;
    Cost cost;
  };
  std::vector<EdgeRef> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const Adj& c : g.children(u)) edges.push_back({u, c.node, c.cost});
  std::sort(edges.begin(), edges.end(), [](const EdgeRef& a, const EdgeRef& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });

  DisjointSets ds(g.num_nodes());
  const std::vector<NodeId> order = blevel_order(g);
  std::vector<Time> start_scratch, avail_scratch;

  std::vector<ProcId> assign = dense_assignment(ds);
  Time best =
      assignment_makespan(g, assign, order, start_scratch, avail_scratch);

  for (const EdgeRef& e : edges) {
    if (ds.same(e.u, e.v)) continue;  // already zeroed transitively
    auto snap = ds.snapshot();
    ds.merge(e.u, e.v);
    assign = dense_assignment(ds);
    const Time len =
        assignment_makespan(g, assign, order, start_scratch, avail_scratch);
    if (len <= best) {
      best = len;  // commit (Sarkar: accept when not worse)
    } else {
      ds.restore(std::move(snap));
    }
  }

  return dense_assignment(ds);
}

}  // namespace tgs
