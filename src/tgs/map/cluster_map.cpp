#include "tgs/map/cluster_map.h"

#include <algorithm>
#include <numeric>

#include "tgs/unc/cluster_schedule.h"

namespace tgs {

std::vector<ProcId> clusters_of(const Schedule& s) {
  std::vector<ProcId> out(s.graph().num_nodes());
  for (NodeId n = 0; n < s.graph().num_nodes(); ++n) out[n] = s.proc(n);
  return out;
}

namespace {

struct ClusterInfo {
  ProcId id;
  Cost work;
  std::vector<NodeId> members;
};

std::vector<ClusterInfo> collect_clusters(const TaskGraph& g,
                                          const std::vector<ProcId>& clusters) {
  ProcId max_c = 0;
  for (ProcId c : clusters) max_c = std::max(max_c, c);
  std::vector<ClusterInfo> info(static_cast<std::size_t>(max_c) + 1);
  for (ProcId c = 0; c <= max_c; ++c) info[c].id = c;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    info[clusters[n]].work += g.weight(n);
    info[clusters[n]].members.push_back(n);
  }
  // Drop empty labels, sort by descending work (ties: smaller cluster id).
  std::erase_if(info, [](const ClusterInfo& c) { return c.members.empty(); });
  std::sort(info.begin(), info.end(), [](const ClusterInfo& a, const ClusterInfo& b) {
    if (a.work != b.work) return a.work > b.work;
    return a.id < b.id;
  });
  return info;
}

}  // namespace

Schedule map_clusters_sarkar(const TaskGraph& g,
                             const std::vector<ProcId>& clusters,
                             int num_procs) {
  const auto info = collect_clusters(g, clusters);
  const std::vector<NodeId> order = blevel_order(g);
  std::vector<Time> start_scratch, avail_scratch;

  // assign[n] = physical processor; nodes of unassigned clusters are parked
  // on a virtual processor so that partial evaluations stay comparable.
  std::vector<ProcId> assign(g.num_nodes(), 0);

  // Greedy commit, considering execution order: evaluate the ordered
  // schedule of everything assigned so far plus the candidate cluster on
  // each processor. Unassigned clusters are evaluated on private virtual
  // processors (num_procs + k), approximating their future parallelism.
  {
    // Initial: every cluster on its own virtual processor.
    for (std::size_t k = 0; k < info.size(); ++k)
      for (NodeId n : info[k].members)
        assign[n] = static_cast<ProcId>(num_procs + static_cast<int>(k));
  }
  for (std::size_t k = 0; k < info.size(); ++k) {
    ProcId best_p = 0;
    Time best_len = kTimeInf;
    for (ProcId p = 0; p < num_procs; ++p) {
      for (NodeId n : info[k].members) assign[n] = p;
      const Time len =
          assignment_makespan(g, assign, order, start_scratch, avail_scratch);
      if (len < best_len) {
        best_len = len;
        best_p = p;
      }
    }
    for (NodeId n : info[k].members) assign[n] = best_p;
  }
  return schedule_with_assignment(g, assign);
}

Schedule map_clusters_rcp(const TaskGraph& g,
                          const std::vector<ProcId>& clusters,
                          int num_procs) {
  return schedule_with_assignment(
      g, rcp_cluster_assignment(g, clusters, num_procs));
}

std::vector<ProcId> rcp_cluster_assignment(const TaskGraph& g,
                                           const std::vector<ProcId>& clusters,
                                           int num_procs) {
  const auto info = collect_clusters(g, clusters);
  std::vector<Cost> load(num_procs, 0);
  std::vector<ProcId> assign(g.num_nodes(), 0);
  for (const ClusterInfo& c : info) {
    // Least-loaded processor (ties: smaller id).
    const ProcId p = static_cast<ProcId>(
        std::min_element(load.begin(), load.end()) - load.begin());
    for (NodeId n : c.members) assign[n] = p;
    load[p] += c.work;
  }
  return assign;
}

}  // namespace tgs
