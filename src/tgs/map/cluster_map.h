// Cluster scheduling (CS): mapping UNC clusters onto a bounded number of
// physical processors.
//
// Paper §7: "In UNC algorithms, clusters obtained through scheduling are
// assigned to a bounded number of processors. ... Two such algorithms
// called Sarkar's assignment algorithm and Yang's RCP algorithm" — Sarkar
// merges clusters while considering the execution order (it re-evaluates
// the ordered schedule after every tentative merge); RCP merges purely by
// load, which is cheaper but can make poor choices. The paper leaves
// "BNP vs UNC+CS" as future work; bench/ext_unc_cs runs that comparison.
//
// Both functions take the cluster labels of a UNC schedule (cluster id per
// node) and produce a complete schedule on `num_procs` processors; nodes of
// one cluster always stay together.
#pragma once

#include <vector>

#include "tgs/graph/task_graph.h"
#include "tgs/sched/schedule.h"
#include "tgs/util/types.h"

namespace tgs {

/// Extract the cluster labels (processor ids) of a completed schedule.
std::vector<ProcId> clusters_of(const Schedule& s);

/// Sarkar's assignment: clusters in descending total-work order; each is
/// committed to the processor that minimizes the makespan of the ordered
/// partial schedule (execution order = descending b-level, as in
/// cluster_schedule.h). O(k * p * (v + e)) for k clusters.
Schedule map_clusters_sarkar(const TaskGraph& g,
                             const std::vector<ProcId>& clusters,
                             int num_procs);

/// Yang's RCP-style merge: clusters in descending total-work order are
/// placed LPT-style on the least-loaded processor, ignoring execution
/// order; one final list schedule materializes the result. O(k log k + v).
Schedule map_clusters_rcp(const TaskGraph& g,
                          const std::vector<ProcId>& clusters,
                          int num_procs);

/// The assignment step of map_clusters_rcp alone: fold the clusters onto
/// `num_procs` processors LPT-style and return the node -> processor map
/// without materializing a schedule. The ParamScheduler uses this to bound
/// a ClusterStep's cluster count when SchedOptions::num_procs is set.
std::vector<ProcId> rcp_cluster_assignment(const TaskGraph& g,
                                           const std::vector<ProcId>& clusters,
                                           int num_procs);

}  // namespace tgs
