#include "tgs/harness/experiment.h"

namespace tgs {

PivotStats::PivotStats(std::string row_label, std::vector<std::string> columns)
    : row_label_(std::move(row_label)), columns_(std::move(columns)) {}

void PivotStats::add(double row_key, const std::string& column, double value) {
  cells_[row_key][column].add(value);
}

Table PivotStats::render(int precision) const {
  std::vector<std::string> headers{row_label_};
  for (const auto& c : columns_) headers.push_back(c);
  Table t(std::move(headers));
  for (const auto& [key, row] : cells_) {
    std::vector<std::string> cells;
    // Integral row keys print without decimals.
    if (key == static_cast<double>(static_cast<long long>(key)))
      cells.push_back(Table::fmt_int(static_cast<long long>(key)));
    else
      cells.push_back(Table::fmt(key, 2));
    for (const auto& c : columns_) {
      auto it = row.find(c);
      cells.push_back(it == row.end() ? "-" : Table::fmt(it->second.mean(), precision));
    }
    t.add_row(std::move(cells));
  }
  return t;
}

std::vector<std::string> PivotStats::overall_means(int precision) const {
  std::vector<std::string> out{"Avg."};
  for (const auto& c : columns_) {
    StatAccumulator acc;
    for (const auto& [key, row] : cells_) {
      auto it = row.find(c);
      if (it != row.end()) acc.add(it->second.mean());
    }
    out.push_back(acc.count() == 0 ? "-" : Table::fmt(acc.mean(), precision));
  }
  return out;
}

const StatAccumulator* PivotStats::cell(double row_key,
                                        const std::string& column) const {
  auto rit = cells_.find(row_key);
  if (rit == cells_.end()) return nullptr;
  auto cit = rit->second.find(column);
  if (cit == rit->second.end()) return nullptr;
  return &cit->second;
}

}  // namespace tgs
