// Registry of the paper's 15 scheduling algorithms (paper §4):
//   BNP: HLFET, ISH, MCP, ETF, DLS, LAST
//   UNC: EZ, LC, DSC, MD, DCP
//   APN: MH, DLS, BU, BSA
#pragma once

#include <string>
#include <vector>

#include "tgs/apn/apn_common.h"
#include "tgs/sched/scheduler.h"

namespace tgs {

/// Fresh instances of the six BNP algorithms, in the paper's order.
std::vector<SchedulerPtr> make_bnp_schedulers();

/// Fresh instances of the five UNC algorithms, in the paper's order.
std::vector<SchedulerPtr> make_unc_schedulers();

/// All eleven fully-connected-machine algorithms (UNC then BNP, as the
/// paper's Table 1 lists them).
std::vector<SchedulerPtr> make_unc_and_bnp_schedulers();

/// Fresh instances of the four APN algorithms.
std::vector<ApnSchedulerPtr> make_apn_schedulers();

/// Lookup by table name ("MCP", "DCP", ...) or by a parameterized-scheduler
/// spec "param:<metric>/<ready>/<insertion>[/<cluster>]" (see
/// src/tgs/param/param_spec.h for the token grammar). Throws
/// std::invalid_argument for unknown names; the message enumerates the
/// valid names and the param: grammar. APN names: "MH", "DLS-APN"/"DLS",
/// "BU", "BSA".
SchedulerPtr make_scheduler(const std::string& name);
ApnSchedulerPtr make_apn_scheduler(const std::string& name);

std::vector<std::string> bnp_names();
std::vector<std::string> unc_names();
std::vector<std::string> apn_names();

}  // namespace tgs
