// Timed, validated execution of one algorithm on one graph -- the paper's
// §6 measurement protocol (schedule length, processors used, running time,
// plus our always-on validity oracle).
#pragma once

#include <string>

#include "tgs/apn/apn_common.h"
#include "tgs/sched/scheduler.h"

namespace tgs {

struct RunResult {
  std::string algo;
  Time length = 0;
  int procs_used = 0;
  double seconds = 0.0;   // scheduling time, wall clock
  bool valid = false;
  std::string error;      // first validation failure, if any
  double nsl = 0.0;       // normalized schedule length
};

/// Run + validate a BNP/UNC scheduler. When `max_procs` > 0 the validator
/// additionally enforces the processor bound.
RunResult run_scheduler(const Scheduler& algo, const TaskGraph& g,
                        const SchedOptions& opt);

/// Same, reusing the caller's workspace (bound to `g` via begin_graph()).
/// A sweep job binds one workspace per graph and passes it to every
/// algorithm, so graph attributes are computed once per graph -- not once
/// per run -- and scratch allocations are amortized away. `seconds`
/// measures the algorithm body only, which is exactly the steady-state
/// per-call cost the running-time experiments report.
RunResult run_scheduler(const Scheduler& algo, const TaskGraph& g,
                        const SchedOptions& opt, SchedWorkspace& ws);

/// Run + validate an APN scheduler on a routed topology.
RunResult run_apn_scheduler(const ApnScheduler& algo, const TaskGraph& g,
                            const RoutingTable& routes);

/// Workspace-reusing variant, as above.
RunResult run_apn_scheduler(const ApnScheduler& algo, const TaskGraph& g,
                            const RoutingTable& routes, SchedWorkspace& ws);

}  // namespace tgs
