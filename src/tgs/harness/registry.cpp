#include "tgs/harness/registry.h"

#include <stdexcept>

#include "tgs/apn/bsa.h"
#include "tgs/apn/bu.h"
#include "tgs/apn/dls_apn.h"
#include "tgs/apn/mh.h"
#include "tgs/bnp/dls.h"
#include "tgs/bnp/etf.h"
#include "tgs/bnp/hlfet.h"
#include "tgs/bnp/ish.h"
#include "tgs/bnp/last.h"
#include "tgs/bnp/mcp.h"
#include "tgs/param/param_scheduler.h"
#include "tgs/unc/dcp.h"
#include "tgs/unc/dsc.h"
#include "tgs/unc/ez.h"
#include "tgs/unc/lc.h"
#include "tgs/unc/md.h"

namespace tgs {

std::vector<SchedulerPtr> make_bnp_schedulers() {
  std::vector<SchedulerPtr> out;
  out.push_back(std::make_unique<HlfetScheduler>());
  out.push_back(std::make_unique<IshScheduler>());
  out.push_back(std::make_unique<McpScheduler>());
  out.push_back(std::make_unique<EtfScheduler>());
  out.push_back(std::make_unique<DlsScheduler>());
  out.push_back(std::make_unique<LastScheduler>());
  return out;
}

std::vector<SchedulerPtr> make_unc_schedulers() {
  std::vector<SchedulerPtr> out;
  out.push_back(std::make_unique<EzScheduler>());
  out.push_back(std::make_unique<LcScheduler>());
  out.push_back(std::make_unique<DscScheduler>());
  out.push_back(std::make_unique<MdScheduler>());
  out.push_back(std::make_unique<DcpScheduler>());
  return out;
}

std::vector<SchedulerPtr> make_unc_and_bnp_schedulers() {
  auto out = make_unc_schedulers();
  for (auto& s : make_bnp_schedulers()) out.push_back(std::move(s));
  return out;
}

std::vector<ApnSchedulerPtr> make_apn_schedulers() {
  std::vector<ApnSchedulerPtr> out;
  out.push_back(std::make_unique<MhScheduler>());
  out.push_back(std::make_unique<DlsApnScheduler>());
  out.push_back(std::make_unique<BuScheduler>());
  out.push_back(std::make_unique<BsaScheduler>());
  return out;
}

namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

SchedulerPtr make_scheduler(const std::string& name) {
  if (ParamSpec::is_spec(name))
    return std::make_unique<ParamScheduler>(ParamSpec::parse(name));
  for (auto maker : {make_unc_schedulers, make_bnp_schedulers})
    for (auto& s : maker())
      if (s->name() == name) return std::move(s);
  throw std::invalid_argument(
      "unknown scheduler '" + name + "'; valid names: " +
      join_names(unc_names()) + " (UNC), " + join_names(bnp_names()) +
      " (BNP), or a parameter point -- " + param_spec_grammar());
}

ApnSchedulerPtr make_apn_scheduler(const std::string& name) {
  for (auto& s : make_apn_schedulers())
    if (s->name() == name || (name == "DLS-APN" && s->name() == "DLS"))
      return std::move(s);
  throw std::invalid_argument("unknown APN scheduler '" + name +
                              "'; valid names: " + join_names(apn_names()) +
                              " (and DLS-APN as an alias for DLS)");
}

std::vector<std::string> bnp_names() {
  std::vector<std::string> out;
  for (const auto& s : make_bnp_schedulers()) out.push_back(s->name());
  return out;
}

std::vector<std::string> unc_names() {
  std::vector<std::string> out;
  for (const auto& s : make_unc_schedulers()) out.push_back(s->name());
  return out;
}

std::vector<std::string> apn_names() {
  std::vector<std::string> out;
  for (const auto& s : make_apn_schedulers()) out.push_back(s->name());
  return out;
}

}  // namespace tgs
