// Experiment bookkeeping: a pivot of (row key, algorithm) -> statistics,
// rendered in the shape of the paper's tables and figures (rows = graph
// size / CCR / matrix dimension; columns = algorithms).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tgs/util/stats.h"
#include "tgs/util/table.h"

namespace tgs {

class PivotStats {
 public:
  /// `row_label` names the row dimension ("nodes", "CCR", ...); columns are
  /// fixed up front so that every row renders the same shape.
  PivotStats(std::string row_label, std::vector<std::string> columns);

  void add(double row_key, const std::string& column, double value);

  /// Mean per cell; missing cells render "-". Rows sorted ascending.
  Table render(int precision = 2) const;

  /// Render a row of per-column means over ALL rows ("Avg." line of the
  /// paper's tables).
  std::vector<std::string> overall_means(int precision = 2) const;

  const StatAccumulator* cell(double row_key, const std::string& column) const;

 private:
  std::string row_label_;
  std::vector<std::string> columns_;
  std::map<double, std::map<std::string, StatAccumulator>> cells_;
};

}  // namespace tgs
