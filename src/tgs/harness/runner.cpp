#include "tgs/harness/runner.h"

#include "tgs/net/net_validate.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/validate.h"
#include "tgs/util/timer.h"

namespace tgs {

namespace {

RunResult measure(const Scheduler& algo, const TaskGraph& g,
                  const SchedOptions& opt, SchedWorkspace* ws) {
  RunResult r;
  r.algo = algo.name();
  Timer timer;
  const Schedule s = ws != nullptr ? algo.run(g, opt, *ws) : algo.run(g, opt);
  r.seconds = timer.seconds();
  r.length = s.makespan();
  r.procs_used = s.procs_used();
  const ValidationResult v = validate_schedule(s, opt.num_procs);
  r.valid = v.ok;
  r.error = v.error;
  r.nsl = normalized_schedule_length(g, r.length);
  return r;
}

RunResult measure_apn(const ApnScheduler& algo, const TaskGraph& g,
                      const RoutingTable& routes, SchedWorkspace* ws) {
  RunResult r;
  r.algo = algo.name();
  Timer timer;
  const NetSchedule ns =
      ws != nullptr ? algo.run(g, routes, *ws) : algo.run(g, routes);
  r.seconds = timer.seconds();
  r.length = ns.makespan();
  r.procs_used = ns.tasks().procs_used();
  const ValidationResult v = validate_net_schedule(ns);
  r.valid = v.ok;
  r.error = v.error;
  r.nsl = normalized_schedule_length(g, r.length);
  return r;
}

}  // namespace

RunResult run_scheduler(const Scheduler& algo, const TaskGraph& g,
                        const SchedOptions& opt) {
  return measure(algo, g, opt, nullptr);
}

RunResult run_scheduler(const Scheduler& algo, const TaskGraph& g,
                        const SchedOptions& opt, SchedWorkspace& ws) {
  return measure(algo, g, opt, &ws);
}

RunResult run_apn_scheduler(const ApnScheduler& algo, const TaskGraph& g,
                            const RoutingTable& routes) {
  return measure_apn(algo, g, routes, nullptr);
}

RunResult run_apn_scheduler(const ApnScheduler& algo, const TaskGraph& g,
                            const RoutingTable& routes, SchedWorkspace& ws) {
  return measure_apn(algo, g, routes, &ws);
}

}  // namespace tgs
