#include "tgs/bnp/hlfet.h"

#include "tgs/bnp/bnp_common.h"
#include "tgs/graph/attributes.h"
#include "tgs/list/priorities.h"
#include "tgs/list/ready_list.h"

namespace tgs {

Schedule HlfetScheduler::do_run(const TaskGraph& g, const SchedOptions& opt,
                                SchedWorkspace& ws) const {
  const std::vector<Time>& sl = ws.attrs().static_levels();
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);

  while (!ready.empty()) {
    const NodeId n = argmax_priority(ready.ready(), sl);
    const ProcChoice choice = best_est_proc(sched, n, scanner, /*insertion=*/false);
    sched.place(n, choice.proc, choice.start);
    scanner.note_placement(choice.proc);
    ready.mark_scheduled(n);
  }
  return sched;
}

}  // namespace tgs
