// Shared machinery of the BNP (bounded number of processors) list
// schedulers. Two concerns live here:
//
//  * ProcScanner -- keeps processor usage dense (a new processor is only
//    considered once all lower-numbered ones hold work), which both bounds
//    the scan and makes processor choice deterministic.
//  * ArrivalInfo -- O(1) data-ready queries per (node, processor) pair.
//    Once a node is ready, all its parents are placed and never move, so
//    the arrival profile can be summarized as: the two largest comm-paid
//    arrivals (with the processor of the largest) plus per-processor local
//    finish maxima. This turns the O(parents) inner loop of ETF/DLS into
//    O(1), which matters at the paper's 500-node / 250-graph scale.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "tgs/sched/schedule.h"
#include "tgs/sched/scheduler.h"
#include "tgs/util/types.h"

namespace tgs {

/// Tracks how many processors hold at least one task, assuming algorithms
/// always pick the lowest-numbered empty processor when opening a new one.
class ProcScanner {
 public:
  explicit ProcScanner(int limit) : limit_(limit) {}

  /// Number of processors worth scanning: every used one plus one fresh,
  /// capped by the machine size.
  int scan_count() const { return std::min(limit_, used_ + 1); }

  int limit() const { return limit_; }
  int used() const { return used_; }

  void note_placement(ProcId p) {
    used_ = std::max(used_, static_cast<int>(p) + 1);
  }

 private:
  int limit_;
  int used_ = 0;
};

/// Arrival summary of a ready node (all parents placed).
struct ArrivalInfo {
  Time max1 = 0;            // largest FT(parent) + c over all parents
  ProcId proc1 = kNoProc;   // processor of that parent
  Time max2 = 0;            // largest FT + c over parents NOT on proc1
  // Per-processor max FT(parent) for parents on that processor, sorted.
  std::vector<std::pair<ProcId, Time>> local_ft;

  /// Data-ready time of the node on processor p.
  Time ready_on(ProcId p) const {
    Time ready = (p == proc1) ? max2 : max1;
    auto it = std::lower_bound(
        local_ft.begin(), local_ft.end(), p,
        [](const std::pair<ProcId, Time>& e, ProcId q) { return e.first < q; });
    if (it != local_ft.end() && it->first == p)
      ready = std::max(ready, it->second);
    return ready;
  }
};

/// Build the arrival summary for `n` from the placed parents in `s`.
ArrivalInfo compute_arrival(const Schedule& s, NodeId n);

/// Scan processors [0, scanner.scan_count()) and return the one minimizing
/// the earliest start time of `n` (ties: smaller processor id).
struct ProcChoice {
  ProcId proc;
  Time start;
};
ProcChoice best_est_proc(const Schedule& s, NodeId n, const ProcScanner& scanner,
                         bool insertion);

}  // namespace tgs
