// Shared machinery of the BNP (bounded number of processors) list
// schedulers. Three concerns live here:
//
//  * ProcScanner -- keeps processor usage dense (a new processor is only
//    considered once all lower-numbered ones hold work), which both bounds
//    the scan and makes processor choice deterministic.
//  * ArrivalInfo -- O(1) data-ready queries per (node, processor) pair.
//    Once a node is ready, all its parents are placed and never move, so
//    the arrival profile can be summarized as: the two largest comm-paid
//    arrivals (with the processor of the largest) plus per-processor local
//    finish maxima. This turns the O(parents) inner loop of ETF/DLS into
//    O(1), which matters at the paper's 500-node / 250-graph scale.
//  * IncrementalPairSelector -- caches each ready node's best (processor,
//    EST) pair and, after a placement, re-scores only what the placement
//    could have changed. ETF and DLS are the paper's slow BNP algorithms
//    precisely because they re-evaluate every (ready node, processor) pair
//    at every step; the selector removes that re-evaluation without
//    changing a single schedule (see the invariant below).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "tgs/sched/schedule.h"
#include "tgs/sched/scheduler.h"
#include "tgs/util/types.h"

namespace tgs {

/// Tracks how many processors hold at least one task, assuming algorithms
/// always pick the lowest-numbered empty processor when opening a new one.
class ProcScanner {
 public:
  explicit ProcScanner(int limit) : limit_(limit) {}

  /// Number of processors worth scanning: every used one plus one fresh,
  /// capped by the machine size.
  int scan_count() const { return std::min(limit_, used_ + 1); }

  int limit() const { return limit_; }
  int used() const { return used_; }

  void note_placement(ProcId p) {
    used_ = std::max(used_, static_cast<int>(p) + 1);
  }

 private:
  int limit_;
  int used_ = 0;
};

/// Arrival summary of a ready node (all parents placed).
struct ArrivalInfo {
  Time max1 = 0;            // largest FT(parent) + c over all parents
  ProcId proc1 = kNoProc;   // processor of that parent
  Time max2 = 0;            // largest FT + c over parents NOT on proc1
  // Per-processor max FT(parent) for parents on that processor, sorted.
  std::vector<std::pair<ProcId, Time>> local_ft;

  /// Data-ready time of the node on processor p.
  Time ready_on(ProcId p) const {
    Time ready = (p == proc1) ? max2 : max1;
    auto it = std::lower_bound(
        local_ft.begin(), local_ft.end(), p,
        [](const std::pair<ProcId, Time>& e, ProcId q) { return e.first < q; });
    if (it != local_ft.end() && it->first == p)
      ready = std::max(ready, it->second);
    return ready;
  }
};

/// Build the arrival summary for `n` from the placed parents in `s`.
ArrivalInfo compute_arrival(const Schedule& s, NodeId n);

/// In-place variant reusing `info`'s local_ft capacity.
void compute_arrival_into(const Schedule& s, NodeId n, ArrivalInfo& info);

/// Scan processors [0, scanner.scan_count()) and return the one minimizing
/// the earliest start time of `n` (ties: smaller processor id).
struct ProcChoice {
  ProcId proc;
  Time start;
};
ProcChoice best_est_proc(const Schedule& s, NodeId n, const ProcScanner& scanner,
                         bool insertion);

/// Reusable pools of the pair selectors, owned by a SchedWorkspace. Flat
/// per-node vectors replace the per-run std::unordered_map<NodeId,
/// ArrivalInfo>. Stale entries are never erased: liveness is the tracked
/// list (IncrementalPairSelector) or the per-run stamps rewritten at
/// every admission (the DLS(APN) lazy selector), so starting a new run is
/// O(1) and steady-state runs allocate nothing (ArrivalInfo::local_ft
/// capacity survives across runs).
struct PairScratch {
  std::vector<std::uint64_t> stamp;       // DLS(APN) only: commit count at
                                          //   the node's last probe
  std::vector<ArrivalInfo> arrival;       // per-node arrival summary
  std::vector<ProcChoice> best;           // per-node best (proc, EST)
  std::vector<NodeId> tracked;            // nodes currently ready
  std::vector<Time> seg;                  // proc end-time segment tree

  // Giant-tier bookkeeping (all maintained by IncrementalPairSelector):
  // tracked membership is position-indexed so untracking is O(1) instead
  // of an O(ready) scan, and tracked nodes are additionally bucketed by
  // their cached best processor so a placement on p rescores only
  // bucket[p] -- the exact stale set -- instead of every tracked node.
  std::vector<std::uint32_t> tracked_pos;  // node -> index in tracked
  std::vector<std::uint32_t> bucket_pos;   // node -> index in its bucket
  std::vector<std::vector<NodeId>> bucket; // proc -> nodes with best.proc==p
  std::vector<NodeId> bucket_snap;         // node_placed iteration snapshot

  /// Size the pools for a graph with `num_nodes` nodes (grow-only).
  void bind(std::size_t num_nodes) {
    if (stamp.size() < num_nodes) {
      stamp.resize(num_nodes, 0);
      arrival.resize(num_nodes);
      best.resize(num_nodes);
      tracked_pos.resize(num_nodes, 0);
      bucket_pos.resize(num_nodes, 0);
    }
  }

  /// Size the per-processor buckets (grow-only).
  void bind_procs(std::size_t num_procs) {
    if (bucket.size() < num_procs) bucket.resize(num_procs);
  }

  /// Start a run: forget every tracked node. O(buckets) pointer resets,
  /// no deallocation (bucket capacity survives across runs).
  void begin_run() {
    tracked.clear();
    for (std::vector<NodeId>& b : bucket) b.clear();
  }
};

/// Min segment tree over per-processor timeline end times. Non-insertion
/// EST against processor p is max(ready, end_time(p)), so "the best
/// processor for arrival time X" reduces to two ordered queries answered
/// in O(log P): the smallest-id processor already idle by X (its EST is
/// exactly X, and lower-id processors all end later), else the processor
/// ending first. Backed by a PairScratch buffer so reruns do not allocate.
class ProcEndIndex {
 public:
  void init(int nprocs, std::vector<Time>& storage) {
    base_ = 1;
    while (base_ < nprocs) base_ <<= 1;
    seg_ = &storage;
    storage.assign(static_cast<std::size_t>(base_) * 2, kTimeInf);
    for (int p = 0; p < nprocs; ++p) storage[base_ + p] = 0;
    for (int i = base_ - 1; i >= 1; --i)
      storage[i] = std::min(storage[2 * i], storage[2 * i + 1]);
  }

  Time end_of(int p) const { return (*seg_)[base_ + p]; }

  void set(int p, Time end) {
    std::vector<Time>& s = *seg_;
    int i = base_ + p;
    s[i] = end;
    for (i /= 2; i >= 1; i /= 2) s[i] = std::min(s[2 * i], s[2 * i + 1]);
  }

  /// Smallest p in [0, count) with end_of(p) <= x; -1 if none.
  int first_at_most(Time x, int count) const {
    return find_at_most(1, 0, base_, x, count);
  }

  /// p in [0, count) minimizing end_of(p), smallest id on ties.
  int min_end_proc(int count) const {
    Time bv = kTimeInf;
    int bp = -1;
    min_rec(1, 0, base_, count, bv, bp);
    return bp;
  }

 private:
  int find_at_most(int node, int lo, int hi, Time x, int count) const {
    if (lo >= count || (*seg_)[node] > x) return -1;
    if (hi - lo == 1) return lo;
    const int mid = (lo + hi) / 2;
    const int left = find_at_most(2 * node, lo, mid, x, count);
    if (left >= 0) return left;
    return find_at_most(2 * node + 1, mid, hi, x, count);
  }

  void min_rec(int node, int lo, int hi, int count, Time& bv, int& bp) const {
    if (lo >= count || (*seg_)[node] >= bv) return;  // left-first keeps ties
    if (hi - lo == 1) {
      bv = (*seg_)[node];
      bp = lo;
      return;
    }
    const int mid = (lo + hi) / 2;
    min_rec(2 * node, lo, mid, count, bv, bp);
    min_rec(2 * node + 1, mid, hi, count, bv, bp);
  }

  int base_ = 1;
  std::vector<Time>* seg_ = nullptr;
};

/// Incremental (ready node, processor) pair selection against a Schedule.
///
/// Invariant: placing a task on processor q only mutates timeline q, and a
/// ready node's arrival summary is frozen (its parents are placed and never
/// move). So after a placement, a cached best (proc, EST) pair stays exact
/// unless (a) it sits on q -- its EST may have grown, rescan the node -- or
/// (b) ProcScanner::scan_count() grew -- the newly opened processors must
/// be scored against every cached pair (an empty processor can only win
/// strictly, so ties keep preferring smaller ids). ESTs on untouched
/// processors cannot shrink (occupying a timeline never makes earliest_fit
/// earlier, in both append and insertion mode), hence no other cached best
/// can be beaten. Selection order -- and therefore every schedule -- is
/// byte-identical to the exhaustive per-step rescan; the goldens and the
/// naive-reference property tests enforce this.
///
/// Per-node bests are exact at all times, so a scheduling step is one
/// O(ready) argmin over best() instead of O(ready x procs) EST probes.
///
/// In append (non-insertion) mode the per-node rescore itself drops from
/// O(procs) to O(log procs): EST(m, p) = max(ready_on(m, p), end_time(p)),
/// and ready_on(m, p) equals the arrival max1 on every processor except
/// proc1 (a parent's finish without communication never exceeds its finish
/// plus communication), so the best processor is either proc1 or the
/// answer to an ordered end-time query on ProcEndIndex. Insertion mode
/// falls back to the linear scan (gaps break the max() formula).
class IncrementalPairSelector {
 public:
  /// `scratch` must outlive the selector; begin_run() is called here.
  IncrementalPairSelector(const Schedule& s, const ProcScanner& scanner,
                          bool insertion, PairScratch& scratch)
      : sched_(&s),
        scanner_(&scanner),
        scratch_(&scratch),
        insertion_(insertion),
        scanned_(scanner.scan_count()) {
    scratch.bind(s.graph().num_nodes());
    scratch.bind_procs(static_cast<std::size_t>(scanner.limit()));
    scratch.begin_run();
    if (!insertion_) {
      index_.init(scanner.limit(), scratch.seg);
      for (int p = 0; p < std::min(scanner.limit(), s.num_procs()); ++p)
        if (const Time end = s.timeline(p).end_time(); end > 0)
          index_.set(p, end);
    }
  }

  /// Admit a node whose parents are all placed: compute its arrival
  /// summary and score processors [0, scan_count). Membership is the
  /// tracked list; this selector does not use PairScratch::stamp.
  void node_ready(NodeId n) {
    compute_arrival_into(*sched_, n, scratch_->arrival[n]);
    scratch_->tracked_pos[n] =
        static_cast<std::uint32_t>(scratch_->tracked.size());
    scratch_->tracked.push_back(n);
    rescore(n, scanned_, /*fresh=*/true);
  }

  /// Report that `n` (previously ready) was placed on `p`. Call after
  /// Schedule::place and ProcScanner::note_placement; re-scores exactly
  /// the cached pairs the placement could have invalidated. In the common
  /// case (no new processor opened) that is bucket[p] -- the nodes whose
  /// cached best sits on p -- so a placement costs O(|bucket[p]|) rescore
  /// work, not an O(ready) scan (the measured giant-tier bottleneck: FFT
  /// graphs keep thousands of nodes ready at once).
  void node_placed(NodeId n, ProcId p) {
    PairScratch& sc = *scratch_;
    {
      const std::uint32_t i = sc.tracked_pos[n];
      sc.tracked[i] = sc.tracked.back();
      sc.tracked_pos[sc.tracked[i]] = i;
      sc.tracked.pop_back();
      bucket_remove(n);  // n's cached best.proc, which may differ from p
    }
    if (!insertion_) index_.set(p, sched_->timeline(p).end_time());
    const int count = scanner_->scan_count();
    if (count > scanned_) {
      // Rare (at most `limit` times per run): a fresh processor opened, so
      // every cached pair must see it. Newly opened processors are empty,
      // so in append mode node m could start there at its arrival max1;
      // their ids exceed every cached id, so only a strict improvement can
      // move the best.
      for (NodeId m : sc.tracked) {
        if (sc.best[m].proc == p) {
          rescore(m, count, /*fresh=*/false);
          continue;
        }
        const ArrivalInfo& arr = sc.arrival[m];
        ProcChoice pc = sc.best[m];
        if (insertion_) {
          const Cost dur = sched_->graph().weight(m);
          for (ProcId q = static_cast<ProcId>(scanned_); q < count; ++q) {
            const Time t =
                sched_->earliest_start_on(q, arr.ready_on(q), dur, insertion_);
            if (t < pc.start) pc = {q, t};  // strict: ties keep smaller id
          }
        } else if (arr.max1 < pc.start) {
          pc = {static_cast<ProcId>(scanned_), arr.max1};
        }
        if (pc.proc != sc.best[m].proc || pc.start != sc.best[m].start)
          set_best(m, pc);
      }
    } else {
      // Snapshot: rescoring moves nodes between buckets mid-iteration.
      sc.bucket_snap.assign(sc.bucket[p].begin(), sc.bucket[p].end());
      for (NodeId m : sc.bucket_snap) rescore(m, count, /*fresh=*/false);
    }
    scanned_ = count;
  }

  /// Cached best (processor, EST) of ready node `n`; exact under the
  /// invariant above.
  const ProcChoice& best(NodeId n) const { return scratch_->best[n]; }

  /// Frozen arrival summary of ready node `n`.
  const ArrivalInfo& arrival(NodeId n) const { return scratch_->arrival[n]; }

 private:
  void bucket_insert(NodeId m) {
    std::vector<NodeId>& b = scratch_->bucket[scratch_->best[m].proc];
    scratch_->bucket_pos[m] = static_cast<std::uint32_t>(b.size());
    b.push_back(m);
  }

  void bucket_remove(NodeId m) {
    std::vector<NodeId>& b = scratch_->bucket[scratch_->best[m].proc];
    const std::uint32_t i = scratch_->bucket_pos[m];
    b[i] = b.back();
    scratch_->bucket_pos[b[i]] = i;
    b.pop_back();
  }

  /// Every best[] write funnels through here: bucket membership follows
  /// the cached processor. An unchanged recompute never reaches this
  /// function.
  void set_best(NodeId m, const ProcChoice& pc) {
    bucket_remove(m);
    scratch_->best[m] = pc;
    bucket_insert(m);
  }

  void rescore(NodeId m, int count, bool fresh) {
    const ProcChoice pc = score(m, count);
    if (fresh) {
      scratch_->best[m] = pc;
      bucket_insert(m);
    } else if (pc.proc != scratch_->best[m].proc ||
               pc.start != scratch_->best[m].start) {
      set_best(m, pc);
    }
  }

  ProcChoice score(NodeId m, int count) const {
    const ArrivalInfo& arr = scratch_->arrival[m];
    if (!insertion_) {
      // Candidate 1: proc1, the only processor whose data-ready time can
      // undercut max1.
      ProcChoice pc{kNoProc, kTimeInf};
      if (arr.proc1 != kNoProc && arr.proc1 < count)
        pc = {arr.proc1,
              std::max(arr.ready_on(arr.proc1), index_.end_of(arr.proc1))};
      // Candidate 2: best of the generic EST max(max1, end_time(p)). For
      // proc1 the generic value only over-estimates, so including it is
      // harmless (candidate 1 wins any such tie at the same processor).
      const int idle = index_.first_at_most(arr.max1, count);
      ProcChoice gen{kNoProc, kTimeInf};
      if (idle >= 0) {
        gen = {static_cast<ProcId>(idle), arr.max1};
      } else {
        const int p = index_.min_end_proc(count);
        gen = {static_cast<ProcId>(p), index_.end_of(p)};
      }
      if (pc.proc == kNoProc || gen.start < pc.start ||
          (gen.start == pc.start && gen.proc < pc.proc))
        pc = gen;
      return pc;
    }
    const Cost dur = sched_->graph().weight(m);
    ProcChoice pc{0, kTimeInf};
    for (ProcId q = 0; q < count; ++q) {
      const Time t =
          sched_->earliest_start_on(q, arr.ready_on(q), dur, insertion_);
      if (t < pc.start) pc = {q, t};
    }
    return pc;
  }

  const Schedule* sched_;
  const ProcScanner* scanner_;
  PairScratch* scratch_;
  ProcEndIndex index_;
  bool insertion_;
  int scanned_;  // scan_count the cached pairs are valid for
};

}  // namespace tgs
