// ETF -- Earliest Time First (Hwang, Chow, Anger & Lee, 1989; paper ref
// [17]).
//
// Classification: BNP, dynamic list, non-CP-based, greedy, non-insertion.
// At every scheduling step the earliest start time is computed for EVERY
// (ready node, processor) pair and the globally earliest pair is chosen;
// ties are resolved in favour of the node with the higher static level.
// The exhaustive pair search is why the paper measures ETF among the
// slowest BNP algorithms (complexity O(p v^2)); our runs go through the
// IncrementalPairSelector (bnp_common.h), which the ParamScheduler core
// keeps using for every non-clustered pair-selection point.
//
// Expressed as the parameter point sl/etf/append/none; byte-identical to
// the naive textbook loop (tests/reference_schedulers.h naive_etf,
// enforced by test_pair_selector.cpp and test_param.cpp).
#pragma once

#include "tgs/param/param_scheduler.h"

namespace tgs {

class EtfScheduler final : public ParamScheduler {
 public:
  EtfScheduler()
      : ParamScheduler({ParamMetric::kSL, ParamReady::kPairEtf,
                        ParamInsertion::kAppend, ParamCluster::kNone},
                       "ETF", AlgoClass::kBNP) {}
};

}  // namespace tgs
