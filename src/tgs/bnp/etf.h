// ETF -- Earliest Time First (Hwang, Chow, Anger & Lee, 1989; paper ref
// [17]).
//
// Classification: BNP, dynamic list, non-CP-based, greedy, non-insertion.
// At every scheduling step the earliest start time is computed for EVERY
// (ready node, processor) pair and the globally earliest pair is chosen;
// ties are resolved in favour of the node with the higher static level.
// The exhaustive pair search is why the paper measures ETF among the
// slowest BNP algorithms (complexity O(p v^2)).
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class EtfScheduler final : public Scheduler {
 public:
  std::string name() const override { return "ETF"; }
  AlgoClass algo_class() const override { return AlgoClass::kBNP; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
