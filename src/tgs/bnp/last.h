// LAST -- Localized Allocation of Static Tasks (Baxter & Patel, 1989; paper
// ref [7]).
//
// Classification: BNP, dynamic list, non-CP-based, non-greedy (it minimizes
// communication, not start time), non-insertion. Node priority is D_NODE:
// the fraction of a node's incident edge weight that connects to
// already-scheduled neighbours,
//     D_NODE(n) = sum_{(m,n) or (n,m), m scheduled} c / sum_{all incident} c,
// so the algorithm grows the schedule outward from the already-placed
// region, trying to localize heavy edges onto one processor. Ties fall back
// to static level. The chosen node goes to the processor minimizing its
// start time. The paper finds LAST the weakest BNP algorithm -- its
// communication-centric priority ignores the critical path entirely -- and
// we reproduce that behaviour.
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class LastScheduler final : public Scheduler {
 public:
  std::string name() const override { return "LAST"; }
  AlgoClass algo_class() const override { return AlgoClass::kBNP; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
