#include "tgs/bnp/last.h"

#include <vector>

#include "tgs/bnp/bnp_common.h"
#include "tgs/graph/attributes.h"
#include "tgs/list/ready_list.h"

namespace tgs {

Schedule LastScheduler::do_run(const TaskGraph& g, const SchedOptions& opt,
                               SchedWorkspace& ws) const {
  const std::vector<Time>& sl = ws.attrs().static_levels();

  // Total incident edge weight per node (denominator of D_NODE).
  std::vector<Cost> incident(g.num_nodes(), 0);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (const Adj& c : g.children(n)) incident[n] += c.cost;
    for (const Adj& p : g.parents(n)) incident[n] += p.cost;
  }
  // Incident weight to already-scheduled neighbours (numerator), updated as
  // nodes are placed.
  std::vector<Cost> to_scheduled(g.num_nodes(), 0);

  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);

  while (!ready.empty()) {
    // Highest D_NODE = to_scheduled / incident, compared exactly via cross
    // multiplication; ties -> higher static level, then smaller id.
    NodeId best = kNoNode;
    for (NodeId m : ready.ready()) {
      if (best == kNoNode) {
        best = m;
        continue;
      }
      const Cost lhs = to_scheduled[m] * (incident[best] == 0 ? 1 : incident[best]);
      const Cost rhs = to_scheduled[best] * (incident[m] == 0 ? 1 : incident[m]);
      if (lhs > rhs || (lhs == rhs && sl[m] > sl[best])) best = m;
    }

    const ProcChoice choice = best_est_proc(sched, best, scanner, /*insertion=*/false);
    sched.place(best, choice.proc, choice.start);
    scanner.note_placement(choice.proc);
    ready.mark_scheduled(best);
    for (const Adj& c : g.children(best)) to_scheduled[c.node] += c.cost;
    for (const Adj& p : g.parents(best)) to_scheduled[p.node] += p.cost;
  }
  return sched;
}

}  // namespace tgs
