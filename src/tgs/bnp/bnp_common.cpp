#include "tgs/bnp/bnp_common.h"

namespace tgs {

void compute_arrival_into(const Schedule& s, NodeId n, ArrivalInfo& info) {
  const TaskGraph& g = s.graph();
  info.max1 = 0;
  info.proc1 = kNoProc;
  info.max2 = 0;
  info.local_ft.clear();
  for (const Adj& par : g.parents(n)) {
    const ProcId q = s.proc(par.node);
    const Time ft = s.finish(par.node);
    const Time with_comm = ft + par.cost;
    if (with_comm > info.max1) {
      info.max1 = with_comm;
      info.proc1 = q;
    }
    // local finish per processor
    auto it = std::lower_bound(
        info.local_ft.begin(), info.local_ft.end(), q,
        [](const std::pair<ProcId, Time>& e, ProcId pid) { return e.first < pid; });
    if (it != info.local_ft.end() && it->first == q) {
      it->second = std::max(it->second, ft);
    } else {
      info.local_ft.insert(it, {q, ft});
    }
  }
  // Second pass for max2 (needs final proc1).
  for (const Adj& par : g.parents(n)) {
    if (s.proc(par.node) == info.proc1) continue;
    info.max2 = std::max(info.max2, s.finish(par.node) + par.cost);
  }
}

ArrivalInfo compute_arrival(const Schedule& s, NodeId n) {
  ArrivalInfo info;
  compute_arrival_into(s, n, info);
  return info;
}

ProcChoice best_est_proc(const Schedule& s, NodeId n, const ProcScanner& scanner,
                         bool insertion) {
  const ArrivalInfo arrival = compute_arrival(s, n);
  const Cost dur = s.graph().weight(n);
  ProcChoice best{0, kTimeInf};
  const int count = scanner.scan_count();
  for (ProcId p = 0; p < count; ++p) {
    const Time t = s.earliest_start_on(p, arrival.ready_on(p), dur, insertion);
    if (t < best.start) best = {p, t};
  }
  return best;
}

}  // namespace tgs
