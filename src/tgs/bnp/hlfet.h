// HLFET -- Highest Level First with Estimated Times (Adam, Chandy & Dickson,
// 1974; paper ref [11]).
//
// Classification (paper Fig. 1 / §3): BNP, static list, non-CP-based,
// greedy, non-insertion. Priority = static level (b-level with edge costs
// ignored). At each step the ready node with the highest static level is
// scheduled on the processor that allows the earliest start time, appending
// after the processor's last task. Complexity O(v^2).
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class HlfetScheduler final : public Scheduler {
 public:
  std::string name() const override { return "HLFET"; }
  AlgoClass algo_class() const override { return AlgoClass::kBNP; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
