// HLFET -- Highest Level First with Estimated Times (Adam, Chandy & Dickson,
// 1974; paper ref [11]).
//
// Classification (paper Fig. 1 / §3): BNP, static list, non-CP-based,
// greedy, non-insertion. Priority = static level (b-level with edge costs
// ignored). At each step the ready node with the highest static level is
// scheduled on the processor that allows the earliest start time, appending
// after the processor's last task. Complexity O(v^2).
//
// Expressed as the parameter point sl/static/append/none of the
// ParamScheduler core; byte-identical to the retired standalone body
// (tests/reference_named.h, enforced by test_param.cpp).
#pragma once

#include "tgs/param/param_scheduler.h"

namespace tgs {

class HlfetScheduler final : public ParamScheduler {
 public:
  HlfetScheduler()
      : ParamScheduler({ParamMetric::kSL, ParamReady::kStatic,
                        ParamInsertion::kAppend, ParamCluster::kNone},
                       "HLFET", AlgoClass::kBNP) {}
};

}  // namespace tgs
