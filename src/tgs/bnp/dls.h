// DLS -- Dynamic Level Scheduling (Sih & Lee, 1993; paper ref [31]).
//
// Classification: BNP, dynamic list, non-CP-based, greedy(non-start-time-
// minimizing variant), non-insertion. The dynamic level of a (ready node,
// processor) pair is
//     DL(n, p) = SL(n) - EST(n, p)
// where SL is the static level; the pair with the LARGEST dynamic level is
// scheduled next. Unlike ETF, a node with high static level can win even
// when its start time is not globally earliest. The exhaustive pair search
// makes DLS one of the slower BNP algorithms (the paper's Table 6 agrees);
// our runs go through the IncrementalPairSelector (bnp_common.h) via the
// ParamScheduler core.
//
// Expressed as the parameter point sl/dls/append/none; byte-identical to
// the naive textbook loop (tests/reference_schedulers.h naive_dls,
// enforced by test_pair_selector.cpp and test_param.cpp).
//
// The APN variant, which routes messages on a contended network, lives in
// apn/dls_apn.h; the paper counts DLS in both classes.
#pragma once

#include "tgs/param/param_scheduler.h"

namespace tgs {

class DlsScheduler final : public ParamScheduler {
 public:
  DlsScheduler()
      : ParamScheduler({ParamMetric::kSL, ParamReady::kPairDls,
                        ParamInsertion::kAppend, ParamCluster::kNone},
                       "DLS", AlgoClass::kBNP) {}
};

}  // namespace tgs
