// DLS -- Dynamic Level Scheduling (Sih & Lee, 1993; paper ref [31]).
//
// Classification: BNP, dynamic list, non-CP-based, greedy(non-start-time-
// minimizing variant), non-insertion. The dynamic level of a (ready node,
// processor) pair is
//     DL(n, p) = SL(n) - EST(n, p)
// where SL is the static level; the pair with the LARGEST dynamic level is
// scheduled next. Unlike ETF, a node with high static level can win even
// when its start time is not globally earliest. The exhaustive pair search
// makes DLS one of the slower BNP algorithms (the paper's Table 6 agrees).
// Complexity O(p v^2) with the O(1) arrival cache.
//
// The APN variant, which routes messages on a contended network, lives in
// apn/dls_apn.h; the paper counts DLS in both classes.
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class DlsScheduler final : public Scheduler {
 public:
  std::string name() const override { return "DLS"; }
  AlgoClass algo_class() const override { return AlgoClass::kBNP; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
