// ISH -- Insertion Scheduling Heuristic (Kruatrachue & Lewis, 1987; paper
// ref [21]).
//
// Classification: BNP, static list, non-CP-based, greedy, WITH insertion in
// the form of "hole filling": HLFET-style scheduling (static-level
// priority, earliest-start processor), but whenever placing the selected
// node leaves an idle hole on the chosen processor (the node must wait for
// a message), the hole is filled with other ready nodes that fit without
// delaying the node. The paper singles ISH out as evidence that "insertion
// is better than non-insertion". Complexity O(v^2).
//
// Expressed as the parameter point sl/static/hole/none of the
// ParamScheduler core; byte-identical to the retired standalone body
// (tests/reference_named.h, enforced by test_param.cpp).
#pragma once

#include "tgs/param/param_scheduler.h"

namespace tgs {

class IshScheduler final : public ParamScheduler {
 public:
  IshScheduler()
      : ParamScheduler({ParamMetric::kSL, ParamReady::kStatic,
                        ParamInsertion::kHole, ParamCluster::kNone},
                       "ISH", AlgoClass::kBNP) {}
};

}  // namespace tgs
