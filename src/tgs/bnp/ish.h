// ISH -- Insertion Scheduling Heuristic (Kruatrachue & Lewis, 1987; paper
// ref [21]).
//
// Classification: BNP, static list, non-CP-based, greedy, WITH insertion in
// the form of "hole filling": HLFET-style scheduling (static-level
// priority, earliest-start processor), but whenever placing the selected
// node leaves an idle hole on the chosen processor (the node must wait for
// a message), the hole is filled with other ready nodes that fit without
// delaying the node. The paper singles ISH out as evidence that "insertion
// is better than non-insertion". Complexity O(v^2).
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class IshScheduler final : public Scheduler {
 public:
  std::string name() const override { return "ISH"; }
  AlgoClass algo_class() const override { return AlgoClass::kBNP; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
