#include "tgs/bnp/ish.h"

#include <algorithm>

#include "tgs/bnp/bnp_common.h"
#include "tgs/graph/attributes.h"
#include "tgs/list/priorities.h"
#include "tgs/list/ready_list.h"

namespace tgs {

Schedule IshScheduler::do_run(const TaskGraph& g, const SchedOptions& opt,
                              SchedWorkspace& ws) const {
  const std::vector<Time>& sl = ws.attrs().static_levels();
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);

  while (!ready.empty()) {
    const NodeId n = argmax_priority(ready.ready(), sl);
    // Earliest-start processor, append placement (holes are exploited by
    // the explicit filling pass below, as in the original formulation).
    const ProcChoice choice = best_est_proc(sched, n, scanner, /*insertion=*/false);
    // End of the processor's current busy prefix == where the idle hole
    // (if any) begins once n is appended at choice.start.
    const Time hole_start = sched.earliest_start_on(choice.proc, 0, 0, false);
    sched.place(n, choice.proc, choice.start);
    scanner.note_placement(choice.proc);
    ready.mark_scheduled(n);

    // Hole: [hole_start, choice.start) on choice.proc -- idle time created
    // because n had to wait for data. Fill it greedily with the
    // highest-static-level ready nodes that (a) fit entirely inside and
    // (b) would not have started earlier on any other processor -- filling
    // must exploit the hole, not misplace a task that had a better home.
    Time gap_from = hole_start;
    const Time gap_to = choice.start;
    while (gap_from < gap_to && !ready.empty()) {
      NodeId best_fill = kNoNode;
      Time best_start = 0;
      for (NodeId m : ready.ready()) {
        const Time dr = sched.data_ready(m, choice.proc);
        const Time st = std::max(dr, gap_from);
        if (st + g.weight(m) > gap_to) continue;
        const ProcChoice alt = best_est_proc(sched, m, scanner, false);
        if (alt.start < st) continue;  // the hole is not this task's best slot
        if (best_fill == kNoNode || sl[m] > sl[best_fill] ||
            (sl[m] == sl[best_fill] && m < best_fill)) {
          best_fill = m;
          best_start = st;
        }
      }
      if (best_fill == kNoNode) break;
      sched.place(best_fill, choice.proc, best_start);
      ready.mark_scheduled(best_fill);
      gap_from = best_start + g.weight(best_fill);
    }
  }
  return sched;
}

}  // namespace tgs
