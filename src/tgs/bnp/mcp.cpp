#include "tgs/bnp/mcp.h"

#include <algorithm>
#include <numeric>

#include "tgs/bnp/bnp_common.h"
#include "tgs/graph/attributes.h"

namespace tgs {

Schedule McpScheduler::do_run(const TaskGraph& g, const SchedOptions& opt,
                              SchedWorkspace& ws) const {
  const std::vector<Time>& alap = ws.attrs().alap_times();

  // Priority list per node: [alap(n), sorted alaps of children...].
  std::vector<std::vector<Time>> prio(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    prio[n].push_back(alap[n]);
    for (const Adj& c : g.children(n)) prio[n].push_back(alap[c.node]);
    std::sort(prio[n].begin() + 1, prio[n].end());
  }

  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (prio[a] != prio[b]) return prio[a] < prio[b];
    return a < b;
  });

  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  for (NodeId n : order) {
    const ProcChoice choice = best_est_proc(sched, n, scanner, /*insertion=*/true);
    sched.place(n, choice.proc, choice.start);
    scanner.note_placement(choice.proc);
  }
  return sched;
}

}  // namespace tgs
