#include "tgs/bnp/dls.h"

#include <unordered_map>

#include "tgs/bnp/bnp_common.h"
#include "tgs/graph/attributes.h"
#include "tgs/list/ready_list.h"

namespace tgs {

Schedule DlsScheduler::run(const TaskGraph& g, const SchedOptions& opt) const {
  const std::vector<Time> sl = static_levels(g);
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);
  std::unordered_map<NodeId, ArrivalInfo> arrivals;

  while (!ready.empty()) {
    NodeId best_n = kNoNode;
    ProcId best_p = 0;
    Time best_start = 0;
    Time best_dl = 0;
    const int nprocs = scanner.scan_count();
    for (NodeId m : ready.ready()) {
      auto it = arrivals.find(m);
      if (it == arrivals.end())
        it = arrivals.emplace(m, compute_arrival(sched, m)).first;
      const ArrivalInfo& arr = it->second;
      for (ProcId p = 0; p < nprocs; ++p) {
        const Time est = sched.earliest_start_on(p, arr.ready_on(p), g.weight(m),
                                                 /*insertion=*/false);
        const Time dl = sl[m] - est;
        // Maximize DL; ties -> earlier start, then smaller node/proc id.
        const bool better =
            best_n == kNoNode || dl > best_dl ||
            (dl == best_dl &&
             (est < best_start ||
              (est == best_start && (m < best_n || (m == best_n && p < best_p)))));
        if (better) {
          best_n = m;
          best_p = p;
          best_start = est;
          best_dl = dl;
        }
      }
    }
    sched.place(best_n, best_p, best_start);
    scanner.note_placement(best_p);
    ready.mark_scheduled(best_n);
    arrivals.erase(best_n);
  }
  return sched;
}

}  // namespace tgs
