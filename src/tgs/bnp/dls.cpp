#include "tgs/bnp/dls.h"

#include "tgs/bnp/bnp_common.h"
#include "tgs/list/ready_list.h"

namespace tgs {

Schedule DlsScheduler::do_run(const TaskGraph& g, const SchedOptions& opt,
                              SchedWorkspace& ws) const {
  const std::vector<Time>& sl = ws.attrs().static_levels();
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);

  // SL(n) is fixed per node, so the pair maximizing DL(n, p) = SL(n) -
  // EST(n, p) is the pair minimizing EST within each node -- exactly the
  // cached best the incremental selector maintains.
  IncrementalPairSelector sel(sched, scanner, /*insertion=*/false,
                              ws.pair_scratch());
  for (NodeId n : ready.ready()) sel.node_ready(n);

  while (!ready.empty()) {
    NodeId best_n = kNoNode;
    Time best_start = 0;
    Time best_dl = 0;
    for (NodeId m : ready.ready()) {
      const Time est = sel.best(m).start;
      const Time dl = sl[m] - est;
      // Maximize DL; ties -> earlier start, then smaller node id.
      const bool better =
          best_n == kNoNode || dl > best_dl ||
          (dl == best_dl && (est < best_start ||
                             (est == best_start && m < best_n)));
      if (better) {
        best_n = m;
        best_start = est;
        best_dl = dl;
      }
    }
    const ProcId best_p = sel.best(best_n).proc;
    sched.place(best_n, best_p, best_start);
    scanner.note_placement(best_p);
    sel.node_placed(best_n, best_p);
    ready.mark_scheduled(best_n);
    for (const Adj& c : g.children(best_n))
      if (ready.is_ready(c.node)) sel.node_ready(c.node);
  }
  return sched;
}

}  // namespace tgs
