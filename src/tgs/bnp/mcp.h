// MCP -- Modified Critical Path (Wu & Gajski, 1990; paper ref [32]).
//
// Classification: BNP, static list, CP-based, greedy, insertion. Each node
// gets a priority list consisting of its own ALAP time followed by the ALAP
// times of its children in increasing order; nodes are scheduled in
// increasing lexicographic order of these lists (so critical-path nodes,
// whose ALAP is smallest, go first). Each node is placed on the processor
// that allows the earliest start time using insertion into idle slots.
// The paper finds MCP the best BNP algorithm overall (and the fastest).
// Complexity O(v^2 log v).
//
// Fidelity note: the literature varies between "children's ALAPs" and
// "descendants' ALAPs" for the tail of the priority list; we follow the
// children formulation of Kwok & Ahmad's survey. Because
// ALAP(parent) < ALAP(child) always holds, the resulting order is
// automatically topologically consistent.
#pragma once

#include "tgs/sched/scheduler.h"

namespace tgs {

class McpScheduler final : public Scheduler {
 public:
  std::string name() const override { return "MCP"; }
  AlgoClass algo_class() const override { return AlgoClass::kBNP; }

 protected:
  Schedule do_run(const TaskGraph& g, const SchedOptions& opt,
                  SchedWorkspace& ws) const override;
};

}  // namespace tgs
