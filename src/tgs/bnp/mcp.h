// MCP -- Modified Critical Path (Wu & Gajski, 1990; paper ref [32]).
//
// Classification: BNP, static list, CP-based, greedy, insertion. Each node
// gets a priority list consisting of its own ALAP time followed by the ALAP
// times of its children in increasing order; nodes are scheduled in
// increasing lexicographic order of these lists (so critical-path nodes,
// whose ALAP is smallest, go first). Each node is placed on the processor
// that allows the earliest start time using insertion into idle slots.
// The paper finds MCP the best BNP algorithm overall (and the fastest).
// Complexity O(v^2 log v).
//
// Fidelity note: the literature varies between "children's ALAPs" and
// "descendants' ALAPs" for the tail of the priority list; we follow the
// children formulation of Kwok & Ahmad's survey. Because
// ALAP(parent) < ALAP(child) always holds, the resulting order is
// automatically topologically consistent.
//
// Expressed as the parameter point alaplist/static/insert/none of the
// ParamScheduler core; byte-identical to the retired standalone body
// (tests/reference_named.h, enforced by test_param.cpp).
#pragma once

#include "tgs/param/param_scheduler.h"

namespace tgs {

class McpScheduler final : public ParamScheduler {
 public:
  McpScheduler()
      : ParamScheduler({ParamMetric::kAlapList, ParamReady::kStatic,
                        ParamInsertion::kInsert, ParamCluster::kNone},
                       "MCP", AlgoClass::kBNP) {}
};

}  // namespace tgs
