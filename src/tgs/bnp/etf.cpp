#include "tgs/bnp/etf.h"

#include "tgs/bnp/bnp_common.h"
#include "tgs/list/ready_list.h"

namespace tgs {

Schedule EtfScheduler::do_run(const TaskGraph& g, const SchedOptions& opt,
                              SchedWorkspace& ws) const {
  const std::vector<Time>& sl = ws.attrs().static_levels();
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);

  // Every ready node's best (processor, EST) pair is kept exact by the
  // selector, so a step is one O(ready) argmin instead of the exhaustive
  // O(ready x procs) pair scan of the textbook formulation.
  IncrementalPairSelector sel(sched, scanner, /*insertion=*/false,
                              ws.pair_scratch());
  for (NodeId n : ready.ready()) sel.node_ready(n);

  while (!ready.empty()) {
    NodeId best_n = kNoNode;
    Time best_t = kTimeInf;
    for (NodeId m : ready.ready()) {
      const Time t = sel.best(m).start;
      const bool better =
          t < best_t ||
          (t == best_t && best_n != kNoNode &&
           (sl[m] > sl[best_n] || (sl[m] == sl[best_n] && m < best_n)));
      if (best_n == kNoNode || better) {
        best_n = m;
        best_t = t;
      }
    }
    const ProcId best_p = sel.best(best_n).proc;
    sched.place(best_n, best_p, best_t);
    scanner.note_placement(best_p);
    sel.node_placed(best_n, best_p);
    ready.mark_scheduled(best_n);
    for (const Adj& c : g.children(best_n))
      if (ready.is_ready(c.node)) sel.node_ready(c.node);
  }
  return sched;
}

}  // namespace tgs
