#include "tgs/bnp/etf.h"

#include <unordered_map>

#include "tgs/bnp/bnp_common.h"
#include "tgs/graph/attributes.h"
#include "tgs/list/ready_list.h"

namespace tgs {

Schedule EtfScheduler::run(const TaskGraph& g, const SchedOptions& opt) const {
  const std::vector<Time> sl = static_levels(g);
  Schedule sched(g, effective_procs(g, opt));
  ProcScanner scanner(effective_procs(g, opt));
  ReadyList ready(g);

  // Arrival summaries are fixed once a node becomes ready (its parents are
  // placed and never move); cache them across steps.
  std::unordered_map<NodeId, ArrivalInfo> arrivals;

  while (!ready.empty()) {
    NodeId best_n = kNoNode;
    ProcId best_p = 0;
    Time best_t = kTimeInf;
    const int nprocs = scanner.scan_count();
    for (NodeId m : ready.ready()) {
      auto it = arrivals.find(m);
      if (it == arrivals.end())
        it = arrivals.emplace(m, compute_arrival(sched, m)).first;
      const ArrivalInfo& arr = it->second;
      for (ProcId p = 0; p < nprocs; ++p) {
        const Time t = sched.earliest_start_on(p, arr.ready_on(p), g.weight(m),
                                               /*insertion=*/false);
        const bool better =
            t < best_t ||
            (t == best_t && best_n != kNoNode &&
             (sl[m] > sl[best_n] || (sl[m] == sl[best_n] && m < best_n)));
        if (best_n == kNoNode || better) {
          best_n = m;
          best_p = p;
          best_t = t;
        }
      }
    }
    sched.place(best_n, best_p, best_t);
    scanner.note_placement(best_p);
    ready.mark_scheduled(best_n);
    arrivals.erase(best_n);
  }
  return sched;
}

}  // namespace tgs
