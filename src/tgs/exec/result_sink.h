// Thread-safe collection point for job results.
//
// Workers complete jobs in an arbitrary order; the sink stores every
// JobResult in a slot indexed by job index and streams JSONL records
// through a reorder buffer -- a record is written only once all
// lower-indexed jobs have been written. Output is therefore byte-identical
// at any thread count while still streaming (the file grows as the
// completed prefix grows, instead of materializing only at the end).
//
// Aggregation into PivotStats likewise folds records in job-index order,
// so floating-point accumulation order -- and thus every rendered mean --
// is independent of scheduling.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "tgs/exec/job.h"
#include "tgs/exec/jsonl.h"
#include "tgs/harness/experiment.h"

namespace tgs {

class ResultSink {
 public:
  /// `experiment` stamps every JSONL record; `writer` (borrowed, may be
  /// null) receives one line per record.
  explicit ResultSink(std::string experiment, JsonlWriter* writer = nullptr);

  /// Sizes the reorder buffer; must precede any submit(). Calling again
  /// resets the sink for a fresh run.
  void start(std::size_t num_jobs);

  /// Deliver one job's result. Thread-safe; each index exactly once.
  void submit(JobResult r);

  /// After the last submit: flushes the writer. Submitting later is an
  /// error.
  void finish();

  /// All results in job-index order (valid after finish(); slots of jobs
  /// that were never submitted are default-constructed).
  const std::vector<JobResult>& results() const { return ordered_; }

  /// Fold every record of `pivot` into `stats`, in job-index order.
  void fold(const std::string& pivot, PivotStats& stats) const;

  /// Jobs that reported a non-empty error.
  std::size_t num_errors() const;
  /// First error in job-index order ("" when none).
  std::string first_error() const;

 private:
  void write_record(const JobResult& jr, const Record& rec);

  std::string experiment_;
  JsonlWriter* writer_;

  std::mutex mu_;
  std::vector<std::optional<JobResult>> slots_;
  std::size_t next_flush_ = 0;
  std::vector<JobResult> ordered_;  // filled by finish()
  bool finished_ = false;
};

}  // namespace tgs
