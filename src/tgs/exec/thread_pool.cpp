#include "tgs/exec/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace tgs {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::stop(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    if (!drain) {
      discarded_ += queue_.size();
      std::queue<std::function<void()>>().swap(queue_);
    }
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // Everything is done (or dropped): release wait_idle() callers, who would
  // otherwise sleep forever if the queue was discarded under them.
  idle_cv_.notify_all();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + active_;
}

std::size_t ThreadPool::tasks_failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

std::size_t ThreadPool::tasks_discarded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discarded_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    bool threw = false;
    try {
      task();
    } catch (...) {
      threw = true;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (threw) ++failed_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace tgs
