// Minimal JSON-lines output for the experiment engine.
//
// Records are flat objects (no nesting needed for sweep results), written
// one per line so that any offline tool (jq, pandas, awk) can consume them.
// Doubles are rendered with the shortest decimal form that round-trips,
// which keeps files compact AND byte-stable: the same double always
// renders to the same text, so equal sweeps produce identical files.
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

namespace tgs {

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s);

/// Shortest decimal representation of `v` that strtod parses back to
/// exactly `v`. Integral values render without a fractional part.
std::string json_double(double v);

/// Append-only builder for one flat JSON object.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& value);
  JsonObject& add(const std::string& key, const char* value);
  JsonObject& add(const std::string& key, double value);
  JsonObject& add(const std::string& key, bool value);
  JsonObject& add_int(const std::string& key, std::int64_t value);
  JsonObject& add_uint(const std::string& key, std::uint64_t value);

  /// Splice pre-rendered JSON (e.g. a nested object built by another
  /// JsonObject) in as the value -- the one escape hatch from flatness.
  /// `raw_json` must itself be a complete JSON value.
  JsonObject& add_raw(const std::string& key, const std::string& raw_json);

  /// The completed "{...}" text. The builder may keep growing afterwards.
  std::string str() const { return buf_ + "}"; }

 private:
  void key(const std::string& k);
  std::string buf_ = "{";
};

/// Line-oriented writer over an owned file or a borrowed stream. Not
/// thread-safe: the ResultSink serializes access.
class JsonlWriter {
 public:
  /// Opens `path` for writing -- truncating, or appending when `append`
  /// (e.g. several experiments sharing one --out file). ok() reports
  /// failure.
  explicit JsonlWriter(const std::string& path, bool append = false);

  /// Borrows an existing stream (tests, stdout). Not owned.
  explicit JsonlWriter(std::ostream& os);

  bool ok() const { return os_ != nullptr && os_->good(); }

  /// Writes `line` plus '\n'.
  void write_line(const std::string& line);

  /// Flushes; automatically done on destruction for owned files.
  void flush();

 private:
  std::ofstream file_;
  std::ostream* os_ = nullptr;
};

}  // namespace tgs
