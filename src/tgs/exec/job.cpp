#include "tgs/exec/job.h"

namespace tgs {

Record record_from_run(const RunResult& r, std::string pivot, double row,
                       double value) {
  Record rec;
  rec.pivot = std::move(pivot);
  rec.row = row;
  rec.column = r.algo;
  rec.value = value;
  rec.num.emplace_back("length", static_cast<double>(r.length));
  rec.num.emplace_back("nsl", r.nsl);
  rec.num.emplace_back("procs", static_cast<double>(r.procs_used));
  rec.num.emplace_back("valid", r.valid ? 1.0 : 0.0);
  if (!r.error.empty()) rec.str.emplace_back("error", r.error);
  return rec;
}

}  // namespace tgs
