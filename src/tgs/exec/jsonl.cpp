#include "tgs/exec/jsonl.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tgs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonObject::key(const std::string& k) {
  if (buf_.size() > 1) buf_ += ',';
  buf_ += '"';
  buf_ += json_escape(k);
  buf_ += "\":";
}

JsonObject& JsonObject::add(const std::string& k, const std::string& v) {
  key(k);
  buf_ += '"';
  buf_ += json_escape(v);
  buf_ += '"';
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, const char* v) {
  return add(k, std::string(v));
}

JsonObject& JsonObject::add(const std::string& k, double v) {
  key(k);
  buf_ += json_double(v);
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, bool v) {
  key(k);
  buf_ += v ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::add_int(const std::string& k, std::int64_t v) {
  key(k);
  buf_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::add_uint(const std::string& k, std::uint64_t v) {
  key(k);
  buf_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::add_raw(const std::string& k,
                                const std::string& raw_json) {
  key(k);
  buf_ += raw_json;
  return *this;
}

JsonlWriter::JsonlWriter(const std::string& path, bool append)
    : file_(path, append ? std::ios::app : std::ios::trunc) {
  if (file_.is_open()) os_ = &file_;
}

JsonlWriter::JsonlWriter(std::ostream& os) : os_(&os) {}

void JsonlWriter::write_line(const std::string& line) {
  if (os_ == nullptr) return;
  *os_ << line << '\n';
}

void JsonlWriter::flush() {
  if (os_ != nullptr) os_->flush();
}

}  // namespace tgs
