#include "tgs/exec/sweep.h"

#include <algorithm>
#include <stdexcept>

#include "tgs/exec/thread_pool.h"
#include "tgs/util/rng.h"

namespace tgs {

double SweepPoint::param(const std::string& name) const {
  for (const auto& [k, v] : params)
    if (k == name) return v;
  throw std::invalid_argument("SweepPoint: no axis named '" + name + "'");
}

const std::string& SweepPoint::label(const std::string& name) const {
  for (const auto& [k, v] : labels)
    if (k == name) return v;
  throw std::invalid_argument("SweepPoint: no labelled axis named '" + name +
                              "'");
}

Sweep& Sweep::axis(std::string name, std::vector<double> values) {
  axes_.push_back({std::move(name), std::move(values), {}});
  return *this;
}

Sweep& Sweep::axis(std::string name, std::vector<double> values,
                   std::vector<std::string> labels) {
  if (labels.size() != values.size())
    throw std::invalid_argument("Sweep: axis '" + name + "' has " +
                                std::to_string(values.size()) +
                                " values but " + std::to_string(labels.size()) +
                                " labels");
  axes_.push_back({std::move(name), std::move(values), std::move(labels)});
  return *this;
}

Sweep& Sweep::replications(int n) {
  reps_ = std::max(1, n);
  return *this;
}

std::size_t Sweep::size() const {
  std::size_t n = static_cast<std::size_t>(reps_);
  for (const Axis& a : axes_) n *= a.values.size();
  return n;
}

std::vector<SweepPoint> Sweep::expand() const {
  std::vector<SweepPoint> points;
  points.reserve(size());
  // Odometer over axis value indices; the last axis advances fastest and
  // replications fastest of all, so adding a replication or extending the
  // final axis keeps earlier points' indices (and seeds) stable.
  std::vector<std::size_t> digit(axes_.size(), 0);
  const auto exhausted = [&] {
    for (const Axis& a : axes_)
      if (a.values.empty()) return true;
    return false;
  }();
  std::uint64_t index = 0;
  bool done = exhausted;
  while (!done) {
    for (int rep = 0; rep < reps_; ++rep) {
      SweepPoint p;
      p.index = index++;
      p.replication = rep;
      p.params.reserve(axes_.size());
      for (std::size_t a = 0; a < axes_.size(); ++a) {
        p.params.emplace_back(axes_[a].name, axes_[a].values[digit[a]]);
        if (!axes_[a].labels.empty())
          p.labels.emplace_back(axes_[a].name, axes_[a].labels[digit[a]]);
      }
      points.push_back(std::move(p));
    }
    done = true;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++digit[a] < axes_[a].values.size()) {
        done = false;
        break;
      }
      digit[a] = 0;
    }
  }
  return points;
}

void run_jobs(const std::vector<Job>& jobs, int threads, ResultSink& sink) {
  sink.start(jobs.size());
  ThreadPool pool(threads);
  for (const Job& job : jobs) {
    pool.submit([&sink, &job] {
      JobResult r;
      r.index = job.ctx.index;
      try {
        r.records = job.fn(job.ctx);
      } catch (const std::exception& e) {
        r.error = e.what();
      } catch (...) {
        r.error = "unknown exception";
      }
      sink.submit(std::move(r));
    });
  }
  pool.wait_idle();
  pool.shutdown();
  sink.finish();
  // Job-code exceptions are captured in JobResult::error above, so a failed
  // pool task means the sink itself rejected a submission (duplicate or
  // out-of-range index in caller-built jobs) -- a programming error that
  // must not pass silently as missing records.
  if (pool.tasks_failed() > 0)
    throw std::logic_error("run_jobs: " + std::to_string(pool.tasks_failed()) +
                           " result submission(s) rejected by the sink");
}

void run_sweep(const Sweep& sweep, std::uint64_t master_seed, int threads,
               const SweepJobFn& fn, ResultSink& sink) {
  const std::vector<SweepPoint> points = sweep.expand();
  std::vector<Job> jobs;
  jobs.reserve(points.size());
  for (const SweepPoint& p : points) {
    Job job;
    job.ctx.index = p.index;
    job.ctx.master_seed = master_seed;
    job.ctx.seed = derive_seed(master_seed, p.index);
    job.fn = [&fn, p](const JobContext& ctx) { return fn(ctx, p); };
    jobs.push_back(std::move(job));
  }
  run_jobs(jobs, threads, sink);
}

}  // namespace tgs
