// Job model of the experiment-execution engine.
//
// A job is one independent unit of a benchmark sweep: typically "generate
// one graph, run a set of algorithms on it, measure". Jobs communicate
// exclusively through the Records they return, so any number of them can
// run concurrently, and because each job's RNG seed is derived from
// (master_seed, job_index) -- never from shared mutable state -- a sweep
// produces identical results at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "tgs/harness/runner.h"

namespace tgs {

/// One measurement emitted by a job: a pivot-table cell (pivot / row /
/// column / value) plus free-form numeric and string fields that only
/// appear in the JSONL stream. Field order is preserved so equal runs
/// serialize to identical bytes.
struct Record {
  std::string pivot;   // which pivot table the cell belongs to
  double row = 0.0;    // pivot row key (graph size, CCR, ...)
  std::string column;  // pivot column (algorithm name)
  double value = 0.0;  // cell value (NSL, % degradation, ms, ...)
  std::vector<std::pair<std::string, double>> num;
  std::vector<std::pair<std::string, std::string>> str;
};

/// Everything a job may depend on besides its captured parameters.
struct JobContext {
  std::uint64_t index = 0;        // dense position in the sweep
  std::uint64_t master_seed = 0;  // the sweep's --seed
  std::uint64_t seed = 0;         // derive_seed(master_seed, index)
};

using JobFn = std::function<std::vector<Record>(const JobContext&)>;

struct Job {
  JobContext ctx;
  JobFn fn;
};

/// Result of one executed job, in submission (index) order inside the sink.
struct JobResult {
  std::uint64_t index = 0;
  std::vector<Record> records;
  std::string error;  // what() of a thrown exception; empty on success
};

/// Record from a runner measurement: cell value `value`, plus the
/// deterministic RunResult fields (length, nsl, procs, valid) as JSONL
/// numbers. Wall-clock seconds are deliberately NOT included -- jobs that
/// measure time add it explicitly, so that accuracy sweeps stay
/// byte-reproducible.
Record record_from_run(const RunResult& r, std::string pivot, double row,
                       double value);

}  // namespace tgs
