#include "tgs/exec/result_sink.h"

#include <stdexcept>
#include <utility>

namespace tgs {

ResultSink::ResultSink(std::string experiment, JsonlWriter* writer)
    : experiment_(std::move(experiment)), writer_(writer) {}

void ResultSink::start(std::size_t num_jobs) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.assign(num_jobs, std::nullopt);
  ordered_.clear();
  next_flush_ = 0;
  finished_ = false;
}

void ResultSink::submit(JobResult r) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) throw std::logic_error("ResultSink: submit after finish");
  if (r.index >= slots_.size())
    throw std::out_of_range("ResultSink: job index beyond start() size");
  if (slots_[r.index].has_value())
    throw std::logic_error("ResultSink: duplicate job index");
  slots_[r.index] = std::move(r);
  // Stream the contiguous completed prefix, preserving job order.
  while (next_flush_ < slots_.size() && slots_[next_flush_].has_value()) {
    const JobResult& jr = *slots_[next_flush_];
    for (const Record& rec : jr.records) write_record(jr, rec);
    if (jr.records.empty() && !jr.error.empty() && writer_ != nullptr) {
      JsonObject obj;
      obj.add("experiment", experiment_)
          .add_uint("job", jr.index)
          .add("job_error", jr.error);
      writer_->write_line(obj.str());
    }
    ++next_flush_;
  }
}

void ResultSink::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  ordered_.reserve(slots_.size());
  for (auto& slot : slots_) {
    ordered_.push_back(slot.has_value() ? std::move(*slot) : JobResult{});
    slot.reset();
  }
  slots_.clear();
  if (writer_ != nullptr) writer_->flush();
}

void ResultSink::fold(const std::string& pivot, PivotStats& stats) const {
  for (const JobResult& jr : ordered_)
    for (const Record& rec : jr.records)
      if (rec.pivot == pivot) stats.add(rec.row, rec.column, rec.value);
}

std::size_t ResultSink::num_errors() const {
  std::size_t n = 0;
  for (const JobResult& jr : ordered_)
    if (!jr.error.empty()) ++n;
  return n;
}

std::string ResultSink::first_error() const {
  for (const JobResult& jr : ordered_)
    if (!jr.error.empty()) return jr.error;
  return "";
}

void ResultSink::write_record(const JobResult& jr, const Record& rec) {
  if (writer_ == nullptr) return;
  JsonObject obj;
  obj.add("experiment", experiment_).add_uint("job", jr.index);
  if (!jr.error.empty()) obj.add("job_error", jr.error);
  obj.add("pivot", rec.pivot)
      .add("row", rec.row)
      .add("column", rec.column)
      .add("value", rec.value);
  for (const auto& [k, v] : rec.num) obj.add(k, v);
  for (const auto& [k, v] : rec.str) obj.add(k, v);
  writer_->write_line(obj.str());
}

}  // namespace tgs
