// Sweep expansion and execution: the top half of the experiment engine.
//
// A Sweep declares a parameter grid (named axes) and a replication count;
// expand() flattens it into a deterministic list of SweepPoints, one per
// job, indexed densely in row-major order (last axis fastest, replication
// fastest of all). Each point's seed is derive_seed(master_seed, index),
// so every (axes..., replication) combination owns a private RNG stream:
// replications never collide with each other or with neighbouring grid
// cells, and the mapping is stable under thread count.
//
// run_sweep()/run_jobs() execute the points on a ThreadPool and deliver
// results to a ResultSink; with the sink's ordered folding this makes the
// whole pipeline bit-identical for --threads=1 and --threads=N.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "tgs/exec/job.h"
#include "tgs/exec/result_sink.h"

namespace tgs {

/// One point of the expanded grid.
struct SweepPoint {
  std::uint64_t index = 0;
  int replication = 0;
  std::vector<std::pair<std::string, double>> params;  // axis order
  std::vector<std::pair<std::string, std::string>> labels;  // labelled axes

  /// Value of axis `name`; throws std::invalid_argument when absent.
  double param(const std::string& name) const;

  /// Label of labelled axis `name`; throws std::invalid_argument when the
  /// axis is absent or unlabelled.
  const std::string& label(const std::string& name) const;
};

class Sweep {
 public:
  /// Append an axis. Expansion order is row-major in declaration order.
  Sweep& axis(std::string name, std::vector<double> values);

  /// Append a labelled axis: values[i] is the numeric grid key (pivot row,
  /// seed pairing) and labels[i] its display name -- e.g. machine
  /// topologies keyed by link count, or algorithms keyed by registry
  /// index. Sizes must match (std::invalid_argument otherwise).
  Sweep& axis(std::string name, std::vector<double> values,
              std::vector<std::string> labels);

  /// Independent repetitions per grid cell (default 1, clamped to >= 1).
  Sweep& replications(int n);

  /// Product of axis sizes and replications. Empty axes contribute 0.
  std::size_t size() const;

  std::vector<SweepPoint> expand() const;

 private:
  struct Axis {
    std::string name;
    std::vector<double> values;
    std::vector<std::string> labels;  // empty, or one per value
  };
  std::vector<Axis> axes_;
  int reps_ = 1;
};

/// Run pre-built jobs on `threads` workers, delivering into `sink`
/// (start/submit/finish included). A throwing job yields a JobResult whose
/// `error` is the exception's what().
void run_jobs(const std::vector<Job>& jobs, int threads, ResultSink& sink);

using SweepJobFn =
    std::function<std::vector<Record>(const JobContext&, const SweepPoint&)>;

/// Expand `sweep` and execute `fn` once per point. Each job's context
/// carries seed = derive_seed(master_seed, point.index).
void run_sweep(const Sweep& sweep, std::uint64_t master_seed, int threads,
               const SweepJobFn& fn, ResultSink& sink);

}  // namespace tgs
