// Fixed-size worker pool with a FIFO work queue -- the execution substrate
// of the experiment engine.
//
// Design: one mutex + two condition variables (one woken per submitted
// task, one broadcast on quiescence). Tasks are plain std::function<void()>
// thunks; anything a task throws is swallowed after being counted, because
// a benchmark sweep must not die half-way through thousands of jobs --
// callers that care report errors through their own result channel (see
// exec/result_sink.h).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tgs {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);

  /// Shuts down (draining any queued work) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws std::runtime_error once shutdown() has begun.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished and the queue is
  /// empty. More work may be submitted afterwards.
  void wait_idle();

  /// Stop accepting new work, finish everything already queued, join the
  /// workers. Idempotent; called by the destructor.
  void shutdown() { stop(/*drain=*/true); }

  /// Graceful shutdown with a load-shedding option. drain=true behaves like
  /// shutdown(); drain=false discards tasks that no worker has started yet
  /// (counted by tasks_discarded()), finishes only the in-flight ones, and
  /// joins. A serving daemon uses drain=false so a long backlog cannot
  /// stall its exit. Idempotent.
  void stop(bool drain);

  int size() const { return static_cast<int>(workers_.size()); }

  /// Tasks queued but not yet picked up by a worker.
  std::size_t pending() const;

  /// Tasks admitted but not yet finished: queued + currently running. The
  /// honest backpressure figure a server should report.
  std::size_t queue_depth() const;

  /// Tasks whose thunk threw (the exception is dropped).
  std::size_t tasks_failed() const;

  /// Tasks dropped unstarted by stop(drain=false).
  std::size_t tasks_discarded() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signalled per submitted task
  std::condition_variable idle_cv_;  // broadcast when the pool quiesces
  std::queue<std::function<void()>> queue_;
  std::size_t active_ = 0;
  std::size_t failed_ = 0;
  std::size_t discarded_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tgs
