#include "tgs/graph/task_graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace tgs {

Cost TaskGraph::edge_cost(NodeId u, NodeId v) const {
  const auto kids = children(u);
  // Children are sorted by id: binary search.
  auto it = std::lower_bound(
      kids.begin(), kids.end(), v,
      [](const Adj& a, NodeId id) { return a.node < id; });
  if (it != kids.end() && it->node == v) return it->cost;
  return kNoEdge;
}

const std::string& TaskGraph::label(NodeId n) const {
  static const std::string kEmpty;
  if (labels_.empty()) return kEmpty;
  return labels_[n];
}

double TaskGraph::ccr() const {
  if (num_edges_ == 0 || num_nodes() == 0) return 0.0;
  const double avg_comm =
      static_cast<double>(total_edge_cost_) / static_cast<double>(num_edges_);
  const double avg_comp =
      static_cast<double>(total_weight_) / static_cast<double>(num_nodes());
  return avg_comp == 0.0 ? 0.0 : avg_comm / avg_comp;
}

TaskGraphBuilder::TaskGraphBuilder(std::string name) : name_(std::move(name)) {}

void TaskGraphBuilder::reserve(std::size_t nodes, std::size_t edges) {
  weights_.reserve(nodes);
  labels_.reserve(nodes);
  edges_.reserve(edges);
}

NodeId TaskGraphBuilder::add_node(Cost weight, std::string label) {
  if (weight <= 0) throw std::invalid_argument("node weight must be positive");
  const NodeId id = static_cast<NodeId>(weights_.size());
  weights_.push_back(weight);
  if (!label.empty()) any_label_ = true;
  labels_.push_back(std::move(label));
  return id;
}

void TaskGraphBuilder::add_edge(NodeId u, NodeId v, Cost cost) {
  if (u >= weights_.size() || v >= weights_.size())
    throw std::invalid_argument("edge endpoint out of range");
  if (u == v) throw std::invalid_argument("self loop");
  if (cost < 0) throw std::invalid_argument("edge cost must be >= 0");
  edges_.push_back({u, v, cost});
}

TaskGraph TaskGraphBuilder::finalize() {
  const NodeId n = static_cast<NodeId>(weights_.size());
  TaskGraph g;
  g.name_ = std::move(name_);
  g.weights_ = std::move(weights_);
  if (any_label_) {
    g.labels_ = std::move(labels_);
    for (NodeId i = 0; i < n; ++i)
      if (g.labels_[i].empty()) g.labels_[i] = "n" + std::to_string(i + 1);
  }

  // Detect duplicate edges.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  for (std::size_t i = 1; i < edges_.size(); ++i)
    if (edges_[i].u == edges_[i - 1].u && edges_[i].v == edges_[i - 1].v)
      throw std::invalid_argument("duplicate edge");

  // CSR construction (succ: already sorted by (u, v)).
  g.succ_off_.assign(n + 1, 0);
  g.pred_off_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++g.succ_off_[e.u + 1];
    ++g.pred_off_[e.v + 1];
  }
  for (NodeId i = 0; i < n; ++i) {
    g.succ_off_[i + 1] += g.succ_off_[i];
    g.pred_off_[i + 1] += g.pred_off_[i];
  }
  g.succ_.resize(edges_.size());
  g.pred_.resize(edges_.size());
  {
    std::vector<std::size_t> pos(g.succ_off_.begin(), g.succ_off_.end() - 1);
    for (const Edge& e : edges_) g.succ_[pos[e.u]++] = {e.v, e.cost};
  }
  {
    // Re-sort by (v, u) for pred CSR.
    std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
      return a.v != b.v ? a.v < b.v : a.u < b.u;
    });
    std::vector<std::size_t> pos(g.pred_off_.begin(), g.pred_off_.end() - 1);
    for (const Edge& e : edges_) g.pred_[pos[e.v]++] = {e.u, e.cost};
  }
  g.num_edges_ = edges_.size();
  for (Cost w : g.weights_) g.total_weight_ += w;
  for (const Edge& e : edges_) g.total_edge_cost_ += e.cost;

  // Entries / exits.
  for (NodeId i = 0; i < n; ++i) {
    if (g.num_parents(i) == 0) g.entries_.push_back(i);
    if (g.num_children(i) == 0) g.exits_.push_back(i);
  }

  // Kahn topological sort with a min-id heap: deterministic order, cycle
  // detection.
  std::vector<std::size_t> indeg(n);
  for (NodeId i = 0; i < n; ++i) indeg[i] = g.num_parents(i);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>> ready;
  for (NodeId i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push(i);
  g.topo_.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    g.topo_.push_back(u);
    for (const Adj& a : g.children(u))
      if (--indeg[a.node] == 0) ready.push(a.node);
  }
  if (g.topo_.size() != n) throw std::invalid_argument("graph has a cycle");

  edges_.clear();
  labels_.clear();
  any_label_ = false;
  return g;
}

}  // namespace tgs
