// Node attributes used by scheduling heuristics (paper §3):
//
//   t-level(n)  longest entry->n path length, EXCLUDING w(n); equals the
//               earliest possible start time of n when communication is
//               never zeroed.
//   b-level(n)  longest n->exit path length, INCLUDING w(n).
//   static level (SL) b-level computed with all edge costs treated as zero.
//   ALAP(n)     CP_length - b-level(n): latest start not stretching the CP.
//   CP          a critical path: entry->exit path of maximum total
//               (node + edge) weight.
//
// All functions run in O(V + E) over the fixed topological order and break
// ties deterministically (smallest node id).
#pragma once

#include <vector>

#include "tgs/graph/task_graph.h"
#include "tgs/util/types.h"

namespace tgs {

/// t-level of every node (comm-inclusive longest path from an entry).
std::vector<Time> t_levels(const TaskGraph& g);

/// b-level of every node (comm-inclusive longest path to an exit).
std::vector<Time> b_levels(const TaskGraph& g);

/// Static level: longest path to an exit counting node weights only.
std::vector<Time> static_levels(const TaskGraph& g);

// In-place variants: resize + overwrite `out`, reusing its capacity. These
// are the allocation-free versions the GraphAttributeCache builds on; the
// by-value functions above are thin wrappers.
void t_levels_into(const TaskGraph& g, std::vector<Time>& out);
void b_levels_into(const TaskGraph& g, std::vector<Time>& out);
void static_levels_into(const TaskGraph& g, std::vector<Time>& out);
void comp_t_levels_into(const TaskGraph& g, std::vector<Time>& out);

/// t-level counting node weights only (comm-free earliest start).
std::vector<Time> comp_t_levels(const TaskGraph& g);

/// Length of the critical path: max over nodes of t_level + w (equivalently
/// max b-level over entry nodes).
Time critical_path_length(const TaskGraph& g);

/// ALAP start times: critical_path_length - b_level.
std::vector<Time> alap_times(const TaskGraph& g);

/// One critical path as a node sequence from an entry to an exit. Ties are
/// broken toward smaller node ids, so the result is deterministic.
std::vector<NodeId> critical_path(const TaskGraph& g);

/// Sum of computation costs along `path` (the NSL denominator, paper §6).
Cost path_computation_cost(const TaskGraph& g, const std::vector<NodeId>& path);

/// Comm-free critical path length: max over paths of node-weight sums. This
/// is a valid lower bound on any schedule length (chains execute serially
/// even when co-located).
Time computation_critical_path_length(const TaskGraph& g);

/// Width of the DAG: the largest antichain size, approximated as the largest
/// number of nodes sharing the same comp-t-level "layer" when layered by
/// longest comp path depth (exact for layered generators; used for RGNOS
/// parallelism checks).
std::size_t layered_width(const TaskGraph& g);

/// Lazy per-graph attribute cache. A scheduling sweep runs many algorithms
/// on the same graph; each attribute (static levels, b-levels, ...) is
/// computed at most once per bind() instead of once per Scheduler::run.
/// The buffers are reused across binds, so a long-lived cache (e.g. inside
/// a SchedWorkspace) stops allocating once it has seen its largest graph.
///
/// Not thread-safe; one cache per worker. The caller owns the aliasing
/// contract: bind() must be called again whenever the underlying graph
/// object changes, even if a new graph happens to reuse the same address.
class GraphAttributeCache {
 public:
  /// Point the cache at `g` and invalidate everything. Cheap (no attribute
  /// is computed until first use).
  void bind(const TaskGraph& g);

  /// The currently bound graph (nullptr before the first bind()).
  const TaskGraph* graph() const { return graph_; }

  /// Each accessor computes on first use, then returns the cached vector.
  /// Throws std::logic_error when no graph is bound.
  const std::vector<Time>& static_levels();
  const std::vector<Time>& b_levels();
  const std::vector<Time>& t_levels();
  const std::vector<Time>& comp_t_levels();
  const std::vector<Time>& alap_times();
  Time critical_path_length();

 private:
  const TaskGraph& bound() const;

  const TaskGraph* graph_ = nullptr;
  std::vector<Time> sl_, bl_, tl_, ctl_, alap_;
  bool have_sl_ = false, have_bl_ = false, have_tl_ = false,
       have_ctl_ = false, have_alap_ = false, have_cp_ = false;
  Time cp_len_ = 0;
};

}  // namespace tgs
