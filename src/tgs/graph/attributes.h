// Node attributes used by scheduling heuristics (paper §3):
//
//   t-level(n)  longest entry->n path length, EXCLUDING w(n); equals the
//               earliest possible start time of n when communication is
//               never zeroed.
//   b-level(n)  longest n->exit path length, INCLUDING w(n).
//   static level (SL) b-level computed with all edge costs treated as zero.
//   ALAP(n)     CP_length - b-level(n): latest start not stretching the CP.
//   CP          a critical path: entry->exit path of maximum total
//               (node + edge) weight.
//
// All functions run in O(V + E) over the fixed topological order and break
// ties deterministically (smallest node id).
#pragma once

#include <vector>

#include "tgs/graph/task_graph.h"
#include "tgs/util/types.h"

namespace tgs {

/// t-level of every node (comm-inclusive longest path from an entry).
std::vector<Time> t_levels(const TaskGraph& g);

/// b-level of every node (comm-inclusive longest path to an exit).
std::vector<Time> b_levels(const TaskGraph& g);

/// Static level: longest path to an exit counting node weights only.
std::vector<Time> static_levels(const TaskGraph& g);

/// t-level counting node weights only (comm-free earliest start).
std::vector<Time> comp_t_levels(const TaskGraph& g);

/// Length of the critical path: max over nodes of t_level + w (equivalently
/// max b-level over entry nodes).
Time critical_path_length(const TaskGraph& g);

/// ALAP start times: critical_path_length - b_level.
std::vector<Time> alap_times(const TaskGraph& g);

/// One critical path as a node sequence from an entry to an exit. Ties are
/// broken toward smaller node ids, so the result is deterministic.
std::vector<NodeId> critical_path(const TaskGraph& g);

/// Sum of computation costs along `path` (the NSL denominator, paper §6).
Cost path_computation_cost(const TaskGraph& g, const std::vector<NodeId>& path);

/// Comm-free critical path length: max over paths of node-weight sums. This
/// is a valid lower bound on any schedule length (chains execute serially
/// even when co-located).
Time computation_critical_path_length(const TaskGraph& g);

/// Width of the DAG: the largest antichain size, approximated as the largest
/// number of nodes sharing the same comp-t-level "layer" when layered by
/// longest comp path depth (exact for layered generators; used for RGNOS
/// parallelism checks).
std::size_t layered_width(const TaskGraph& g);

}  // namespace tgs
