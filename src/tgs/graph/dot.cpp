#include "tgs/graph/dot.h"

#include <sstream>
#include <unordered_set>

namespace tgs {

std::string to_dot(const TaskGraph& g, const std::vector<NodeId>& highlight) {
  std::unordered_set<NodeId> hot(highlight.begin(), highlight.end());
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    os << "  " << i << " [label=\""
       << (g.has_labels() ? g.label(i) : "n" + std::to_string(i + 1)) << "\\n"
       << g.weight(i) << "\"";
    if (hot.count(i)) os << ", style=filled, fillcolor=lightcoral";
    os << "];\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const Adj& c : g.children(u)) {
      os << "  " << u << " -> " << c.node << " [label=\"" << c.cost << "\"";
      if (hot.count(u) && hot.count(c.node)) os << ", color=red, penwidth=2";
      os << "];\n";
    }
  os << "}\n";
  return os.str();
}

}  // namespace tgs
