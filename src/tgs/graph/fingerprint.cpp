#include "tgs/graph/fingerprint.h"

#include <cstdio>

namespace tgs {
namespace {

// splitmix64 finalizer -- full-avalanche mixing of one 64-bit word.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Two independently-seeded accumulator lanes; each absorbed word is mixed
// with the running state so word order matters (the canonical encoding is
// ordered by construction).
struct Hash128 {
  std::uint64_t hi = 0x6a09e667f3bcc908ULL;  // sqrt(2), sqrt(3) fractions
  std::uint64_t lo = 0xbb67ae8584caa73bULL;

  void absorb(std::uint64_t w) {
    hi = mix64(hi ^ w);
    lo = mix64(lo + (w ^ 0xa5a5a5a5a5a5a5a5ULL));
  }
};

}  // namespace

std::string GraphFingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

GraphFingerprint graph_fingerprint(const TaskGraph& g) {
  Hash128 h;
  h.absorb(0x7467735f666e6731ULL);  // "tgs_fng1": format/version tag
  h.absorb(g.num_nodes());
  h.absorb(g.num_edges());
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    h.absorb(static_cast<std::uint64_t>(g.weight(n)));
  // children() spans are sorted by peer id, so iterating nodes in id order
  // visits every edge exactly once in a canonical order regardless of the
  // order edges were added or listed in a file.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Adj& a : g.children(u)) {
      h.absorb((static_cast<std::uint64_t>(u) << 32) | a.node);
      h.absorb(static_cast<std::uint64_t>(a.cost));
    }
  }
  return {h.hi, h.lo};
}

}  // namespace tgs
