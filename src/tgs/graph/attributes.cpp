#include "tgs/graph/attributes.h"

#include <algorithm>
#include <stdexcept>

namespace tgs {

void t_levels_into(const TaskGraph& g, std::vector<Time>& t) {
  t.assign(g.num_nodes(), 0);
  for (NodeId u : g.topological_order()) {
    Time best = 0;
    for (const Adj& p : g.parents(u))
      best = std::max(best, t[p.node] + g.weight(p.node) + p.cost);
    t[u] = best;
  }
}

std::vector<Time> t_levels(const TaskGraph& g) {
  std::vector<Time> t;
  t_levels_into(g, t);
  return t;
}

void b_levels_into(const TaskGraph& g, std::vector<Time>& b) {
  b.assign(g.num_nodes(), 0);
  const auto& topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    Time best = 0;
    for (const Adj& c : g.children(u))
      best = std::max(best, c.cost + b[c.node]);
    b[u] = g.weight(u) + best;
  }
}

std::vector<Time> b_levels(const TaskGraph& g) {
  std::vector<Time> b;
  b_levels_into(g, b);
  return b;
}

void static_levels_into(const TaskGraph& g, std::vector<Time>& b) {
  b.assign(g.num_nodes(), 0);
  const auto& topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    Time best = 0;
    for (const Adj& c : g.children(u)) best = std::max(best, b[c.node]);
    b[u] = g.weight(u) + best;
  }
}

std::vector<Time> static_levels(const TaskGraph& g) {
  std::vector<Time> b;
  static_levels_into(g, b);
  return b;
}

void comp_t_levels_into(const TaskGraph& g, std::vector<Time>& t) {
  t.assign(g.num_nodes(), 0);
  for (NodeId u : g.topological_order()) {
    Time best = 0;
    for (const Adj& p : g.parents(u))
      best = std::max(best, t[p.node] + g.weight(p.node));
    t[u] = best;
  }
}

std::vector<Time> comp_t_levels(const TaskGraph& g) {
  std::vector<Time> t;
  comp_t_levels_into(g, t);
  return t;
}

Time critical_path_length(const TaskGraph& g) {
  const auto b = b_levels(g);
  Time best = 0;
  for (NodeId e : g.entry_nodes()) best = std::max(best, b[e]);
  return best;
}

std::vector<Time> alap_times(const TaskGraph& g) {
  const auto b = b_levels(g);
  Time cp = 0;
  for (NodeId e : g.entry_nodes()) cp = std::max(cp, b[e]);
  std::vector<Time> alap(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) alap[i] = cp - b[i];
  return alap;
}

std::vector<NodeId> critical_path(const TaskGraph& g) {
  if (g.num_nodes() == 0) return {};
  const auto b = b_levels(g);
  // Start: entry with max b-level (min id on ties).
  NodeId cur = kNoNode;
  Time best = -1;
  for (NodeId e : g.entry_nodes()) {
    if (b[e] > best) {
      best = b[e];
      cur = e;
    }
  }
  std::vector<NodeId> path;
  path.push_back(cur);
  // Walk: child c with b[cur] == w(cur) + c.cost + b[c].
  while (g.num_children(cur) > 0) {
    NodeId next = kNoNode;
    for (const Adj& c : g.children(cur)) {
      if (b[cur] == g.weight(cur) + c.cost + b[c.node]) {
        next = c.node;
        break;  // children sorted by id => deterministic smallest id
      }
    }
    if (next == kNoNode) break;  // cur is effectively an exit on this path
    path.push_back(next);
    cur = next;
  }
  return path;
}

Cost path_computation_cost(const TaskGraph& g,
                           const std::vector<NodeId>& path) {
  Cost sum = 0;
  for (NodeId n : path) sum += g.weight(n);
  return sum;
}

Time computation_critical_path_length(const TaskGraph& g) {
  std::vector<Time> down(g.num_nodes(), 0);
  const auto& topo = g.topological_order();
  Time best = 0;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    Time kid = 0;
    for (const Adj& c : g.children(u)) kid = std::max(kid, down[c.node]);
    down[u] = g.weight(u) + kid;
    best = std::max(best, down[u]);
  }
  return best;
}

void GraphAttributeCache::bind(const TaskGraph& g) {
  graph_ = &g;
  have_sl_ = have_bl_ = have_tl_ = have_ctl_ = have_alap_ = have_cp_ = false;
}

const TaskGraph& GraphAttributeCache::bound() const {
  if (graph_ == nullptr)
    throw std::logic_error("GraphAttributeCache used before bind()");
  return *graph_;
}

const std::vector<Time>& GraphAttributeCache::static_levels() {
  if (!have_sl_) {
    static_levels_into(bound(), sl_);
    have_sl_ = true;
  }
  return sl_;
}

const std::vector<Time>& GraphAttributeCache::b_levels() {
  if (!have_bl_) {
    b_levels_into(bound(), bl_);
    have_bl_ = true;
  }
  return bl_;
}

const std::vector<Time>& GraphAttributeCache::t_levels() {
  if (!have_tl_) {
    t_levels_into(bound(), tl_);
    have_tl_ = true;
  }
  return tl_;
}

const std::vector<Time>& GraphAttributeCache::comp_t_levels() {
  if (!have_ctl_) {
    comp_t_levels_into(bound(), ctl_);
    have_ctl_ = true;
  }
  return ctl_;
}

Time GraphAttributeCache::critical_path_length() {
  if (!have_cp_) {
    const std::vector<Time>& b = b_levels();
    cp_len_ = 0;
    for (NodeId e : bound().entry_nodes()) cp_len_ = std::max(cp_len_, b[e]);
    have_cp_ = true;
  }
  return cp_len_;
}

const std::vector<Time>& GraphAttributeCache::alap_times() {
  if (!have_alap_) {
    const Time cp = critical_path_length();
    const std::vector<Time>& b = b_levels();
    const TaskGraph& g = bound();
    alap_.resize(g.num_nodes());
    for (NodeId i = 0; i < g.num_nodes(); ++i) alap_[i] = cp - b[i];
    have_alap_ = true;
  }
  return alap_;
}

std::size_t layered_width(const TaskGraph& g) {
  // Layer index = longest hop-count path from an entry.
  std::vector<std::size_t> depth(g.num_nodes(), 0);
  std::size_t max_depth = 0;
  for (NodeId u : g.topological_order()) {
    for (const Adj& p : g.parents(u))
      depth[u] = std::max(depth[u], depth[p.node] + 1);
    max_depth = std::max(max_depth, depth[u]);
  }
  std::vector<std::size_t> count(max_depth + 1, 0);
  for (NodeId i = 0; i < g.num_nodes(); ++i) ++count[depth[i]];
  return count.empty() ? 0 : *std::max_element(count.begin(), count.end());
}

}  // namespace tgs
