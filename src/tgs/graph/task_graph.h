// Weighted directed acyclic task graph (the paper's program model, §2).
//
// A node is a task with a computation cost w(n); an edge (u, v) carries a
// communication cost c(u, v) paid only when u and v run on different
// processors. TaskGraph is immutable once built; construction goes through
// TaskGraphBuilder, which validates acyclicity and computes a topological
// order exactly once.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tgs/util/types.h"

namespace tgs {

/// Outgoing or incoming adjacency entry: peer node + edge cost.
struct Adj {
  NodeId node;
  Cost cost;

  friend bool operator==(const Adj&, const Adj&) = default;
};

class TaskGraphBuilder;

class TaskGraph {
 public:
  /// Number of tasks.
  NodeId num_nodes() const { return static_cast<NodeId>(weights_.size()); }

  /// Number of edges.
  std::size_t num_edges() const { return num_edges_; }

  /// Computation cost of node n.
  Cost weight(NodeId n) const { return weights_[n]; }

  /// Sum of all computation costs (serial execution time).
  Cost total_weight() const { return total_weight_; }

  /// Children (successors) of n with edge costs, sorted by node id.
  std::span<const Adj> children(NodeId n) const {
    return {succ_.data() + succ_off_[n], succ_off_[n + 1] - succ_off_[n]};
  }

  /// Parents (predecessors) of n with edge costs, sorted by node id.
  std::span<const Adj> parents(NodeId n) const {
    return {pred_.data() + pred_off_[n], pred_off_[n + 1] - pred_off_[n]};
  }

  std::size_t num_children(NodeId n) const {
    return succ_off_[n + 1] - succ_off_[n];
  }
  std::size_t num_parents(NodeId n) const {
    return pred_off_[n + 1] - pred_off_[n];
  }

  /// Edge cost of (u, v); kNoEdge (-1) when the edge does not exist.
  static constexpr Cost kNoEdge = -1;
  Cost edge_cost(NodeId u, NodeId v) const;

  bool has_edge(NodeId u, NodeId v) const { return edge_cost(u, v) >= 0; }

  /// Nodes with no parents / no children.
  const std::vector<NodeId>& entry_nodes() const { return entries_; }
  const std::vector<NodeId>& exit_nodes() const { return exits_; }

  /// A fixed topological order (parents precede children), computed at
  /// build time with deterministic (Kahn, min-id) tie-breaking.
  const std::vector<NodeId>& topological_order() const { return topo_; }

  /// Optional human-readable node label ("n1", "T(2,3)", ...). Empty vector
  /// when the builder assigned none.
  const std::string& label(NodeId n) const;
  bool has_labels() const { return !labels_.empty(); }

  /// Graph-level name for table/debug output.
  const std::string& name() const { return name_; }

  /// Sum of all edge costs (used for CCR computation).
  Cost total_edge_cost() const { return total_edge_cost_; }

  /// Average communication cost / average computation cost. Returns 0 for
  /// edge-free graphs.
  double ccr() const;

 private:
  friend class TaskGraphBuilder;
  TaskGraph() = default;

  std::string name_;
  std::vector<Cost> weights_;
  std::vector<std::string> labels_;

  // CSR adjacency, both directions.
  std::vector<std::size_t> succ_off_, pred_off_;
  std::vector<Adj> succ_, pred_;

  std::vector<NodeId> entries_, exits_, topo_;
  std::size_t num_edges_ = 0;
  Cost total_weight_ = 0;
  Cost total_edge_cost_ = 0;
};

/// Mutable builder. add_node returns dense ids in call order. finalize()
/// throws std::invalid_argument on cycles, self-loops, duplicate edges, or
/// non-positive node weights.
class TaskGraphBuilder {
 public:
  explicit TaskGraphBuilder(std::string name = "graph");

  /// Pre-sizes internal arrays for a graph of known shape. Generators that
  /// know v and e up front (traced kernels, scale-mode random graphs) call
  /// this once so the 100k-node path does a handful of allocations instead
  /// of O(log V) geometric regrowths copying multi-MB edge arrays.
  void reserve(std::size_t nodes, std::size_t edges);

  /// Adds a task; `label` is optional (empty = auto "n<i+1>").
  NodeId add_node(Cost weight, std::string label = {});

  /// Adds a dependence u -> v with communication cost >= 0.
  void add_edge(NodeId u, NodeId v, Cost cost);

  NodeId num_nodes() const { return static_cast<NodeId>(weights_.size()); }

  /// Validates and produces the immutable graph. The builder is left empty.
  TaskGraph finalize();

 private:
  struct Edge {
    NodeId u, v;
    Cost cost;
  };
  std::string name_;
  std::vector<Cost> weights_;
  std::vector<std::string> labels_;
  std::vector<Edge> edges_;
  bool any_label_ = false;
};

}  // namespace tgs
