// Plain-text serialization of task graphs.
//
// Format ("tgs1"):
//   tgs1 <name> <num_nodes> <num_edges>
//   node <id> <weight> [label]
//   edge <u> <v> <cost>
//
// Ids are 0-based and must be dense. Lines starting with '#' are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "tgs/graph/task_graph.h"

namespace tgs {

/// Serialize `g` in tgs1 format.
void write_graph(std::ostream& os, const TaskGraph& g);
std::string graph_to_string(const TaskGraph& g);

/// Parse a tgs1 stream; throws std::invalid_argument on malformed input.
TaskGraph read_graph(std::istream& is);
TaskGraph graph_from_string(const std::string& text);

/// File helpers; throw std::runtime_error when the file cannot be opened.
void save_graph(const std::string& path, const TaskGraph& g);
TaskGraph load_graph(const std::string& path);

}  // namespace tgs
