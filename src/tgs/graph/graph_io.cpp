#include "tgs/graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tgs {

void write_graph(std::ostream& os, const TaskGraph& g) {
  os << "tgs1 " << (g.name().empty() ? "graph" : g.name()) << ' '
     << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    os << "node " << i << ' ' << g.weight(i);
    if (g.has_labels()) os << ' ' << g.label(i);
    os << '\n';
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const Adj& c : g.children(u))
      os << "edge " << u << ' ' << c.node << ' ' << c.cost << '\n';
}

std::string graph_to_string(const TaskGraph& g) {
  std::ostringstream os;
  write_graph(os, g);
  return os.str();
}

TaskGraph read_graph(std::istream& is) {
  std::string line;
  std::string magic, name;
  NodeId n = 0;
  std::size_t m = 0;
  // Header (skipping comments/blank lines).
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream hs(line);
    if (!(hs >> magic >> name >> n >> m) || magic != "tgs1")
      throw std::invalid_argument("bad tgs1 header: " + line);
    break;
  }
  if (magic != "tgs1") throw std::invalid_argument("missing tgs1 header");

  TaskGraphBuilder b(name);
  NodeId nodes_seen = 0;
  std::size_t edges_seen = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "node") {
      NodeId id;
      Cost w;
      std::string label;
      if (!(ls >> id >> w)) throw std::invalid_argument("bad node line: " + line);
      ls >> label;  // optional
      if (id != nodes_seen)
        throw std::invalid_argument("node ids must be dense and in order");
      b.add_node(w, label);
      ++nodes_seen;
    } else if (kind == "edge") {
      NodeId u, v;
      Cost c;
      if (!(ls >> u >> v >> c)) throw std::invalid_argument("bad edge line: " + line);
      b.add_edge(u, v, c);
      ++edges_seen;
    } else {
      throw std::invalid_argument("unknown record: " + line);
    }
    if (nodes_seen == n && edges_seen == m) break;
  }
  if (nodes_seen != n || edges_seen != m)
    throw std::invalid_argument("truncated tgs1 stream");
  return b.finalize();
}

TaskGraph graph_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_graph(is);
}

void save_graph(const std::string& path, const TaskGraph& g) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  write_graph(f, g);
}

TaskGraph load_graph(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  return read_graph(f);
}

}  // namespace tgs
