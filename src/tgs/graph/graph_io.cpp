#include "tgs/graph/graph_io.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace tgs {

void write_graph(std::ostream& os, const TaskGraph& g) {
  os << "tgs1 " << (g.name().empty() ? "graph" : g.name()) << ' '
     << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    os << "node " << i << ' ' << g.weight(i);
    if (g.has_labels()) os << ' ' << g.label(i);
    os << '\n';
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const Adj& c : g.children(u))
      os << "edge " << u << ' ' << c.node << ' ' << c.cost << '\n';
}

std::string graph_to_string(const TaskGraph& g) {
  std::ostringstream os;
  write_graph(os, g);
  return os.str();
}

namespace {

// strtoll-based field scanner over one line. istringstream-per-line costs a
// heap-backed stream object and locale-aware extraction per record, which at
// giant-tier sizes (100k nodes / 200k+ edges) dominates read_graph; this
// cursor touches each byte once.
struct LineScanner {
  const char* p;
  const std::string& line;

  explicit LineScanner(const std::string& l) : p(l.c_str()), line(l) {}

  void skip_ws() {
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
  }

  bool at_end() {
    skip_ws();
    return *p == '\0';
  }

  /// Next whitespace-delimited token, empty when the line is exhausted.
  std::string token() {
    skip_ws();
    const char* start = p;
    while (*p != '\0' && *p != ' ' && *p != '\t' && *p != '\r') ++p;
    return std::string(start, p);
  }

  /// Next signed 64-bit integer; throws with `what` context on malformed or
  /// out-of-range fields (ERANGE from strtoll, not a silent wrap).
  std::int64_t int64(const char* what) {
    skip_ws();
    errno = 0;
    char* end = nullptr;
    const long long x = std::strtoll(p, &end, 10);
    if (end == p || errno == ERANGE)
      throw std::invalid_argument(std::string("bad ") + what +
                                  " line: " + line);
    p = end;
    return x;
  }

  /// int64 narrowed to NodeId with an explicit range check: a node id that
  /// does not fit NodeId is a corrupt/hostile stream, never a wraparound.
  NodeId node_id(const char* what) {
    const std::int64_t x = int64(what);
    if (x < 0 || x > static_cast<std::int64_t>(kNoNode - 1))
      throw std::invalid_argument(std::string("bad ") + what +
                                  " line (id out of range): " + line);
    return static_cast<NodeId>(x);
  }
};

}  // namespace

TaskGraph read_graph(std::istream& is) {
  std::string line;
  std::string magic, name;
  NodeId n = 0;
  std::size_t m = 0;
  // Header (skipping comments/blank lines). Counts are parsed as 64-bit and
  // validated before narrowing so a giant (or corrupt) header fails loudly.
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    LineScanner hs(line);
    magic = hs.token();
    if (magic != "tgs1") throw std::invalid_argument("bad tgs1 header: " + line);
    name = hs.token();
    if (name.empty()) throw std::invalid_argument("bad tgs1 header: " + line);
    const std::int64_t n64 = hs.int64("tgs1 header");
    const std::int64_t m64 = hs.int64("tgs1 header");
    if (n64 < 0 || n64 > static_cast<std::int64_t>(kNoNode - 1) || m64 < 0)
      throw std::invalid_argument("bad tgs1 header (counts): " + line);
    n = static_cast<NodeId>(n64);
    m = static_cast<std::size_t>(m64);
    break;
  }
  if (magic != "tgs1") throw std::invalid_argument("missing tgs1 header");

  TaskGraphBuilder b(name);
  b.reserve(n, m);
  NodeId nodes_seen = 0;
  std::size_t edges_seen = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    LineScanner ls(line);
    const std::string kind = ls.token();
    if (kind == "node") {
      const NodeId id = ls.node_id("node");
      const Cost w = ls.int64("node");
      const std::string label = ls.token();  // optional
      if (id != nodes_seen)
        throw std::invalid_argument("node ids must be dense and in order");
      b.add_node(w, label);
      ++nodes_seen;
    } else if (kind == "edge") {
      const NodeId u = ls.node_id("edge");
      const NodeId v = ls.node_id("edge");
      const Cost c = ls.int64("edge");
      b.add_edge(u, v, c);
      ++edges_seen;
    } else {
      throw std::invalid_argument("unknown record: " + line);
    }
    if (nodes_seen == n && edges_seen == m) break;
  }
  if (nodes_seen != n || edges_seen != m)
    throw std::invalid_argument("truncated tgs1 stream");
  return b.finalize();
}

TaskGraph graph_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_graph(is);
}

void save_graph(const std::string& path, const TaskGraph& g) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  write_graph(f, g);
}

TaskGraph load_graph(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  return read_graph(f);
}

}  // namespace tgs
