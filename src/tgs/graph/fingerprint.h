// Content-addressed task-graph fingerprints.
//
// A fingerprint is a 128-bit hash over a canonical encoding of the graph's
// *scheduling-relevant* content: node count, node weights in id order, and
// every edge (u, v, cost) in the builder's sorted adjacency order. The
// graph name and node labels are deliberately excluded -- two files that
// describe the same weighted DAG with different names, labels, or line
// orderings fingerprint equal, while any perturbation of a weight, an edge
// cost, or the edge set fingerprints different.
//
// This is the cache key of the tgs_serve schedule cache: node ids ARE part
// of the identity (every algorithm tie-breaks on ids, so a graph with
// permuted ids may legitimately schedule differently).
#pragma once

#include <cstdint>
#include <string>

#include "tgs/graph/task_graph.h"

namespace tgs {

struct GraphFingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex digits, hi then lo.
  std::string hex() const;

  friend bool operator==(const GraphFingerprint&,
                         const GraphFingerprint&) = default;
};

GraphFingerprint graph_fingerprint(const TaskGraph& g);

}  // namespace tgs
