// Graphviz DOT export for task graphs and schedules (debug / paper-figure
// style visualization).
#pragma once

#include <string>
#include <vector>

#include "tgs/graph/task_graph.h"

namespace tgs {

/// DOT digraph with "label (weight)" nodes and edge-cost labels. Nodes in
/// `highlight` (e.g., a critical path) are drawn filled.
std::string to_dot(const TaskGraph& g,
                   const std::vector<NodeId>& highlight = {});

}  // namespace tgs
