#include "tgs/util/stats.h"

#include <algorithm>
#include <cmath>

namespace tgs {

void StatAccumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

double StatAccumulator::mean() const {
  return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
}

double StatAccumulator::stddev() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var <= 0.0 ? 0.0 : std::sqrt(var);
}

double StatAccumulator::min() const { return n_ == 0 ? 0.0 : min_; }
double StatAccumulator::max() const { return n_ == 0 ? 0.0 : max_; }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return 0.5 * (xs[mid - 1] + xs[mid]);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) logsum += std::log(x);
  return std::exp(logsum / static_cast<double>(xs.size()));
}

}  // namespace tgs
