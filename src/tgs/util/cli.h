// Minimal --flag=value command-line parser for examples and bench binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tgs {

/// Parses "--key=value" and bare "--key" (value "1") arguments. Positional
/// arguments are collected in order. Unknown flags are kept (benches share a
/// common set and ignore what they do not use). A flag may be repeated
/// (`--algo=MCP --algo=DCP`): `get`-style accessors see the last occurrence,
/// `get_list` sees them all.
class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Numeric accessors throw std::invalid_argument when the value is present
  /// but malformed ("12x", "", out of range) -- a mistyped flag must not
  /// silently truncate into a valid-looking parameter.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// get_int with an inclusive [lo, hi] validity range. The giant tier
  /// parses `--v=100000`-class flags through this: a value outside the
  /// range (including anything that would truncate when narrowed to the
  /// caller's NodeId/int) throws std::invalid_argument naming the flag,
  /// the offending value and the accepted range -- never a silent
  /// static_cast wrap. `fallback` is returned unchecked when the flag is
  /// absent (callers own their defaults).
  std::int64_t get_int_in(const std::string& key, std::int64_t fallback,
                          std::int64_t lo, std::int64_t hi) const;

  /// Every occurrence of the flag in command-line order, with each value
  /// additionally split on commas: `--algo=MCP --algo=DCP,ETF` ->
  /// {"MCP", "DCP", "ETF"}. Empty when the flag is absent.
  std::vector<std::string> get_list(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::vector<std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tgs
