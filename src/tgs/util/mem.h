// Process-memory probes for the giant-graph tier: schedule quality gates
// on time AND memory, so every giant_sweep / tgs_perf row carries peak RSS
// and allocation counts next to seconds.
//
// Two complementary signals:
//  * peak_rss_bytes() -- the kernel's high-water mark (getrusage ru_maxrss).
//    Monotonic for the process lifetime: right for "did this tier fit in
//    the ceiling", useless for per-algorithm deltas once the peak is set.
//  * AllocCounter -- heap traffic counted by the global operator new/delete
//    replacements in mem.cpp (relaxed atomics, a few ns per allocation).
//    Deltas between two snapshots attribute allocation count and bytes to
//    one region of code, which is the per-algorithm metric the giant tier
//    reports (a zero-allocation steady state stays visibly zero).
#pragma once

#include <cstddef>
#include <cstdint>

namespace tgs {

/// Peak resident set size of this process, in bytes (0 if unavailable).
std::size_t peak_rss_bytes();

/// Current resident set size, parsed from /proc/self/statm (0 if
/// unavailable -- non-Linux fallback).
std::size_t current_rss_bytes();

/// Snapshot of the process-wide allocation counters.
struct AllocStats {
  std::uint64_t count = 0;  // operator new calls since process start
  std::uint64_t bytes = 0;  // bytes requested since process start
};

/// Current totals (monotonic). Subtract two snapshots to attribute heap
/// traffic to a region: `auto a = alloc_stats(); work(); auto b =
/// alloc_stats(); b.count - a.count`.
AllocStats alloc_stats();

/// Convenience delta-meter.
class AllocMeter {
 public:
  AllocMeter() : start_(alloc_stats()) {}
  void reset() { start_ = alloc_stats(); }
  std::uint64_t count() const { return alloc_stats().count - start_.count; }
  std::uint64_t bytes() const { return alloc_stats().bytes - start_.bytes; }

 private:
  AllocStats start_;
};

}  // namespace tgs
