// Deterministic random number generation for benchmark-graph synthesis.
//
// All tgs generators take an explicit 64-bit seed and derive their stream
// from it via SplitMix64 -> xoshiro256**. Neither the C library rand() nor
// std::mt19937 is used anywhere, so graph suites are reproducible across
// platforms and standard-library versions.
#pragma once

#include <array>
#include <cstdint>

#include "tgs/util/types.h"

namespace tgs {

/// xoshiro256** seeded through SplitMix64. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniform integer with the given mean, spanning [max(lo_floor, 2*mean-hi),
  /// hi]. Mirrors the paper's "uniform distribution with mean 40
  /// (minimum = 2, maximum = 78)" construction: symmetric around the mean,
  /// clipped below at lo_floor.
  Cost uniform_mean(Cost mean, Cost lo_floor = 1);

  /// Derive an independent child stream (for per-graph sub-seeds).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

/// SplitMix64 step; exposed for deterministic seed derivation in callers.
std::uint64_t splitmix64(std::uint64_t& state);

/// SeedSequence-style child-seed derivation: a well-mixed seed for stream
/// `stream` (job index, replication number, ...) of a sweep keyed by
/// `master_seed`. Unlike the `seed + i` / `seed ^ (v << k)` patterns it
/// replaces, nearby streams yield uncorrelated generators, and for a fixed
/// master_seed distinct streams never collide across parameter grids (the
/// map is bijective in `stream`; across different masters collisions are
/// merely astronomically unlikely, not impossible).
std::uint64_t derive_seed(std::uint64_t master_seed, std::uint64_t stream);

}  // namespace tgs
