#include "tgs/util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace tgs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::to_ascii() const {
  // Column widths over header + all rows.
  std::size_t ncols = headers_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << (c == 0 ? "" : "  ");
      // Right-align everything but the first column (labels on the left,
      // numbers on the right reads best for the paper-style tables).
      if (c == 0) {
        out << cell << std::string(width[c] - cell.size(), ' ');
      } else {
        out << std::string(width[c] - cell.size(), ' ') << cell;
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << (c ? "," : "") << csv_escape(headers_[c]);
  out << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c)
      out << (c ? "," : "") << csv_escape(r[c]);
    out << '\n';
  }
  return out.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace tgs
