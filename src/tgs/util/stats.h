// Small descriptive-statistics helpers used by the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace tgs {

/// Streaming accumulator: count, mean, population/sample stddev, min, max.
class StatAccumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 when n < 2.
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a copy of `xs` (average of middle two for even n); 0 if empty.
double median(std::vector<double> xs);

/// Arithmetic mean; 0 if empty.
double mean_of(const std::vector<double>& xs);

/// Geometric mean of strictly positive values; 0 if empty.
double geomean_of(const std::vector<double>& xs);

}  // namespace tgs
