// Monotonic wall-clock timer for algorithm running-time measurements
// (paper Table 6).
#pragma once

#include <chrono>

namespace tgs {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tgs
