#include "tgs/util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tgs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
  }
  return "";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fputs(prefix(level), stderr);
  std::fputs(msg.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace tgs
