// Tiny leveled logger. Benches use it for progress lines on stderr so that
// stdout stays a clean, parseable table stream.
#pragma once

#include <sstream>
#include <string>

namespace tgs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr with a level prefix.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, out_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

#define TGS_LOG_DEBUG ::tgs::detail::LogStream(::tgs::LogLevel::kDebug)
#define TGS_LOG_INFO ::tgs::detail::LogStream(::tgs::LogLevel::kInfo)
#define TGS_LOG_WARN ::tgs::detail::LogStream(::tgs::LogLevel::kWarn)
#define TGS_LOG_ERROR ::tgs::detail::LogStream(::tgs::LogLevel::kError)

}  // namespace tgs
