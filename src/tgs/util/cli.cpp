#include "tgs/util/cli.h"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace tgs {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)].push_back("1");
      } else {
        flags_[arg.substr(2, eq - 2)].push_back(arg.substr(eq + 1));
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second.back();
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second.back();
  errno = 0;
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE)
    throw std::invalid_argument("--" + key + "=" + v + ": not an integer");
  return x;
}

std::int64_t Cli::get_int_in(const std::string& key, std::int64_t fallback,
                             std::int64_t lo, std::int64_t hi) const {
  if (!has(key)) return fallback;
  const std::int64_t x = get_int(key, fallback);
  if (x < lo || x > hi)
    throw std::invalid_argument(
        "--" + key + "=" + std::to_string(x) + ": out of range [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return x;
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second.back();
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE)
    throw std::invalid_argument("--" + key + "=" + v + ": not a number");
  return x;
}

std::vector<std::string> Cli::get_list(const std::string& key) const {
  std::vector<std::string> out;
  auto it = flags_.find(key);
  if (it == flags_.end()) return out;
  for (const std::string& value : it->second) {
    std::size_t pos = 0;
    while (pos <= value.size()) {
      const std::size_t comma = value.find(',', pos);
      const std::size_t end = comma == std::string::npos ? value.size() : comma;
      if (end > pos) out.push_back(value.substr(pos, end - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return out;
}

}  // namespace tgs
