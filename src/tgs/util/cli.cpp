#include "tgs/util/cli.h"

#include <cstdlib>

namespace tgs {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "1";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace tgs
