// ASCII table / CSV rendering for benchmark output.
//
// Every bench binary reproduces a paper table or figure as rows printed to
// stdout; Table gives them a uniform, aligned look and an optional CSV dump
// so results can be post-processed.
#pragma once

#include <string>
#include <vector>

namespace tgs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; missing cells render empty, extra cells are kept.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  /// Render with aligned columns and a header rule.
  std::string to_ascii() const;

  /// Render as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Write CSV to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tgs
