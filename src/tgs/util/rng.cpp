#include "tgs/util/rng.h"

#include <cmath>

namespace tgs {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());
  // Lemire-style rejection-free-enough bounded draw with rejection to kill
  // modulo bias; span is tiny compared to 2^64 in all tgs uses.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Cost Rng::uniform_mean(Cost mean, Cost lo_floor) {
  if (mean <= lo_floor) return lo_floor;
  const Cost half = mean - lo_floor;
  return uniform_int(mean - half, mean + half);
}

std::uint64_t derive_seed(std::uint64_t master_seed, std::uint64_t stream) {
  // Hash the stream index through one SplitMix64 step, fold it into the
  // master seed, and mix again: both arguments pass through a full
  // bijective mixer before the output, so single-bit input changes flip
  // ~half the output bits.
  std::uint64_t s = stream;
  const std::uint64_t h = splitmix64(s);
  std::uint64_t state = master_seed ^ h;
  return splitmix64(state);
}

Rng Rng::split() {
  std::uint64_t sub = (*this)();
  return Rng(sub);
}

}  // namespace tgs
