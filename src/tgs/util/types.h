// Core scalar types shared by every tgs subsystem.
//
// Costs and times are 64-bit integers: the paper's benchmark generators draw
// integer weights (uniform, mean 40), and integer arithmetic keeps schedule
// validation exact -- two schedules are equal iff they are bit-identical.
#pragma once

#include <cstdint>
#include <limits>

namespace tgs {

/// Index of a task (node) inside a TaskGraph. Dense, 0-based.
using NodeId = std::uint32_t;

/// Index of a processor. Dense, 0-based; kNoProc marks "not yet placed".
using ProcId = std::int32_t;

/// Computation / communication weight.
using Cost = std::int64_t;

/// A point on the schedule time axis.
using Time = std::int64_t;

inline constexpr ProcId kNoProc = -1;

/// "Infinity" that survives a few additions without overflowing.
inline constexpr Time kTimeInf = std::numeric_limits<Time>::max() / 8;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

// Giant-graph tier invariants (v up to ~100k nodes). Path-length sums are
// O(v * max_weight): a 100k-node chain of mean-40 weights is ~4e6, but CCR
// sweeps scale edge costs by 10x and traced kernels emit weights O(v), so
// fingerprint-visible sums reach ~1e10 -- past 32-bit Time/Cost. The widths
// below are load-bearing; shrinking them is a silent-overflow regression
// (tests/test_generators_scale.cpp holds the runtime counterpart).
static_assert(sizeof(Time) == 8 && sizeof(Cost) == 8,
              "Time/Cost must be 64-bit: 100k-node path sums overflow 32");
static_assert(std::numeric_limits<Time>::max() >= (std::int64_t{1} << 62),
              "Time must cover ~1e18: kTimeInf arithmetic relies on it");
static_assert(std::numeric_limits<NodeId>::max() >= 100'000u,
              "NodeId must index 100k-node giant-tier graphs");
static_assert(kTimeInf > (std::int64_t{1} << 40),
              "kTimeInf must dominate any real giant-tier makespan");

}  // namespace tgs
