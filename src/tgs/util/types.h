// Core scalar types shared by every tgs subsystem.
//
// Costs and times are 64-bit integers: the paper's benchmark generators draw
// integer weights (uniform, mean 40), and integer arithmetic keeps schedule
// validation exact -- two schedules are equal iff they are bit-identical.
#pragma once

#include <cstdint>
#include <limits>

namespace tgs {

/// Index of a task (node) inside a TaskGraph. Dense, 0-based.
using NodeId = std::uint32_t;

/// Index of a processor. Dense, 0-based; kNoProc marks "not yet placed".
using ProcId = std::int32_t;

/// Computation / communication weight.
using Cost = std::int64_t;

/// A point on the schedule time axis.
using Time = std::int64_t;

inline constexpr ProcId kNoProc = -1;

/// "Infinity" that survives a few additions without overflowing.
inline constexpr Time kTimeInf = std::numeric_limits<Time>::max() / 8;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

}  // namespace tgs
