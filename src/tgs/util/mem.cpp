#include "tgs/util/mem.h"

#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

namespace {
// Relaxed is enough: callers only ever diff snapshots taken on the same
// thread around a region, never infer cross-thread ordering from them.
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

inline void count_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t size) {
  count_alloc(size);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  count_alloc(size);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, padded != 0 ? padded : align))
    return p;
  throw std::bad_alloc();
}
}  // namespace

namespace tgs {

std::size_t peak_rss_bytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#ifdef __APPLE__
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
}

std::size_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0, resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
}

AllocStats alloc_stats() {
  return {g_alloc_count.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}

}  // namespace tgs

// Global allocation hooks. These strong definitions replace the default
// operator new/delete in every binary that links this translation unit
// (anything referencing tgs::alloc_stats / peak_rss_bytes pulls it in),
// so the giant tier can report allocation deltas without LD_PRELOAD or
// the (removed) glibc malloc hooks. free() accepts both malloc and
// aligned_alloc pointers, so one delete path serves all variants.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  count_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  count_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
