// Extension (paper §7 future work): "It would be an interesting study to
// compare the BNP approach with the UNC+CS approach" -- UNC clustering
// followed by cluster scheduling (Sarkar's order-aware merging vs Yang's
// RCP load balancing) onto a bounded machine.
//
// Pipeline: {DSC, DCP} clustering -> {Sarkar, RCP} mapping onto p
// processors, compared with running {MCP, ETF} directly at p. The table
// reports average NSL per graph size at p=8.
#include <cstdio>

#include "bench_common.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/experiment.h"
#include "tgs/harness/registry.h"
#include "tgs/map/cluster_map.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/validate.h"
#include "tgs/util/cli.h"
#include "tgs/util/rng.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const int procs = static_cast<int>(cli.get_int("procs", 8));
  const int graphs = static_cast<int>(cli.get_int("graphs", 4));

  PivotStats stats("v", {"DSC+Sarkar", "DSC+RCP", "DCP+Sarkar", "DCP+RCP",
                         "MCP", "ETF"});

  std::uint64_t stream = 0;  // one derived RNG stream per graph
  for (NodeId v = 50; v <= 300; v += 50) {
    for (int i = 0; i < graphs; ++i) {
      RgnosParams p;
      p.num_nodes = v;
      p.ccr = i % 2 == 0 ? 1.0 : 2.0;
      p.parallelism = 2 + i % 3;
      p.seed = derive_seed(seed, stream++);
      const TaskGraph g = rgnos_graph(p);

      for (const char* unc_name : {"DSC", "DCP"}) {
        const Schedule unc = make_scheduler(unc_name)->run(g, {});
        const auto clusters = clusters_of(unc);
        const Schedule sarkar = map_clusters_sarkar(g, clusters, procs);
        const Schedule rcp = map_clusters_rcp(g, clusters, procs);
        if (!validate_schedule(sarkar, procs).ok ||
            !validate_schedule(rcp, procs).ok) {
          std::fprintf(stderr, "INVALID mapping for %s\n", unc_name);
          return 1;
        }
        stats.add(v, std::string(unc_name) + "+Sarkar",
                  normalized_schedule_length(g, sarkar.makespan()));
        stats.add(v, std::string(unc_name) + "+RCP",
                  normalized_schedule_length(g, rcp.makespan()));
      }
      SchedOptions bounded;
      bounded.num_procs = procs;
      for (const char* bnp_name : {"MCP", "ETF"}) {
        const Schedule s = make_scheduler(bnp_name)->run(g, bounded);
        stats.add(v, bnp_name, normalized_schedule_length(g, s.makespan()));
      }
    }
    std::fprintf(stderr, "[unc_cs] v=%u done\n", v);
  }

  std::printf("UNC+CS extension: p=%d, %d graphs per size, seed=%llu\n\n",
              procs, graphs, static_cast<unsigned long long>(seed));
  bench::emit("ext_unc_cs",
              "Extension: UNC + cluster scheduling vs direct BNP (avg NSL)",
              stats.render(3));
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
