// Figure 2 (paper §6.4.1): average NSL of the UNC (a), BNP (b) and APN (c)
// algorithms on the RGNOS benchmarks, as a function of graph size.
//
// Paper shape:
//  (a) DCP lowest, then MD/DSC; EZ and LC visibly worse.
//  (b) the greedy BNP algorithms cluster tightly; LAST clearly worst.
//  (c) BSA best for large graphs, DLS stable, MH degrades with size, BU in
//      between; APN NSLs are higher than (a)/(b) because only 8 processors
//      and contended links are available.
#include <cstdio>

#include "bench_common.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/experiment.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/util/cli.h"
#include "tgs/util/rng.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1998));
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 500));
  const NodeId apn_max = static_cast<NodeId>(
      cli.get_int("apn-max-nodes", static_cast<long long>(max_nodes)));
  const auto reps = bench::rgnos_reps(cli.has("full"));

  PivotStats unc_stats("v", unc_names());
  PivotStats bnp_stats("v", bnp_names());
  PivotStats apn_stats("v", apn_names());

  const RoutingTable routes{Topology::hypercube(3)};

  std::uint64_t stream = 0;  // one derived RNG stream per graph
  for (NodeId v = 50; v <= max_nodes; v += 50) {
    for (const auto& [ccr, par] : reps) {
      RgnosParams params;
      params.num_nodes = v;
      params.ccr = ccr;
      params.parallelism = par;
      params.seed = derive_seed(seed, stream++);
      const TaskGraph g = rgnos_graph(params);

      for (const auto& a : make_unc_schedulers())
        unc_stats.add(v, a->name(), run_scheduler(*a, g, {}).nsl);
      for (const auto& a : make_bnp_schedulers())
        bnp_stats.add(v, a->name(), run_scheduler(*a, g, {}).nsl);
      if (v <= apn_max) {
        for (const auto& a : make_apn_schedulers())
          apn_stats.add(v, a->name(), run_apn_scheduler(*a, g, routes).nsl);
      }
    }
    std::fprintf(stderr, "[fig2] v=%u done\n", v);
  }

  std::printf("RGNOS NSL sweep: seed=%llu, %zu graphs per size; APN on "
              "hcube3 (8 procs)\n\n",
              static_cast<unsigned long long>(seed), reps.size());
  bench::emit("fig2a_nsl_unc", "Figure 2(a): average NSL, UNC algorithms",
              unc_stats.render(3));
  bench::emit("fig2b_nsl_bnp", "Figure 2(b): average NSL, BNP algorithms",
              bnp_stats.render(3));
  bench::emit("fig2c_nsl_apn", "Figure 2(c): average NSL, APN algorithms",
              apn_stats.render(3));
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
