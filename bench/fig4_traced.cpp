// Figure 4 (paper §6.5): average NSL on the traced Cholesky factorization
// graphs, vs matrix dimension, for the UNC (a), BNP (b) and APN (c)
// classes. For a matrix dimension N the graph has N(N+1)/2 tasks.
//
// Paper shape: the BNP algorithms perform similarly except LAST, which is
// much worse; the UNC algorithms are much more diverse; the relative APN
// performance is stable across applications. We additionally sweep the
// Gaussian-elimination graph as the paper's "second application".
#include <cstdio>

#include "bench_common.h"
#include "tgs/gen/traced.h"
#include "tgs/harness/experiment.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/util/cli.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const int max_dim = static_cast<int>(cli.get_int("max-dim", 32));
  // Default communication scale 5.0 (CCR ~ 2.5): the compiler-traced graphs
  // the paper used were communication-dominant enough for the algorithm
  // classes to separate; at scale 1.0 every algorithm pins NSL to 1.0 and
  // the figure degenerates (see EXPERIMENTS.md).
  const double comm = cli.get_double("comm", 5.0);

  PivotStats unc_stats("N", unc_names());
  PivotStats bnp_stats("N", bnp_names());
  PivotStats apn_stats("N", apn_names());
  PivotStats gauss_stats("N", {"DCP", "MCP", "BSA"});

  const RoutingTable routes{Topology::hypercube(3)};

  for (int dim = 8; dim <= max_dim; dim += 4) {
    const TaskGraph g = cholesky_graph(dim, comm);
    for (const auto& a : make_unc_schedulers())
      unc_stats.add(dim, a->name(), run_scheduler(*a, g, {}).nsl);
    for (const auto& a : make_bnp_schedulers())
      bnp_stats.add(dim, a->name(), run_scheduler(*a, g, {}).nsl);
    for (const auto& a : make_apn_schedulers())
      apn_stats.add(dim, a->name(), run_apn_scheduler(*a, g, routes).nsl);

    // Second application (paper: "quite similar for both applications").
    const TaskGraph ge = gaussian_elimination_graph(dim, comm);
    gauss_stats.add(dim, "DCP",
                    run_scheduler(*make_scheduler("DCP"), ge, {}).nsl);
    gauss_stats.add(dim, "MCP",
                    run_scheduler(*make_scheduler("MCP"), ge, {}).nsl);
    gauss_stats.add(dim, "BSA",
                    run_apn_scheduler(*make_apn_scheduler("BSA"), ge, routes).nsl);
    std::fprintf(stderr, "[fig4] N=%d done (v=%u)\n", dim, g.num_nodes());
  }

  std::printf("Cholesky traced graphs, comm scale %.1f; APN on hcube3\n\n",
              comm);
  bench::emit("fig4a_traced_unc", "Figure 4(a): average NSL on Cholesky, UNC",
              unc_stats.render(3));
  bench::emit("fig4b_traced_bnp", "Figure 4(b): average NSL on Cholesky, BNP",
              bnp_stats.render(3));
  bench::emit("fig4c_traced_apn", "Figure 4(c): average NSL on Cholesky, APN",
              apn_stats.render(3));
  bench::emit("fig4x_traced_gauss",
              "Figure 4 extension: Gaussian elimination cross-check",
              gauss_stats.render(3));
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
