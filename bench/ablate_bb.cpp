// Ablation of the branch-and-bound scheduler's pruning machinery
// (DESIGN.md S8): how much do (a) the lower bounds + incumbent seeding and
// (b) duplicate-state elimination + processor symmetry contribute?
//
// Full search vs bounds-disabled exhaustive enumeration on RGBOS
// instances small enough for both to finish; states expanded and wall
// time per configuration. Expect several orders of magnitude.
#include <cstdio>

#include "bench_common.h"
#include "tgs/gen/rgbos.h"
#include "tgs/harness/registry.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/util/cli.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 14));

  Table table({"v", "CCR", "optimal", "states(full)", "time(full)",
               "states(no bounds)", "time(no bounds)", "speedup"});

  for (NodeId v = 10; v <= max_nodes; v += 2) {
    for (double ccr : {0.1, 10.0}) {
      const TaskGraph g = rgbos_graph(ccr, v, seed);

      SchedOptions heur_opt;
      heur_opt.num_procs = 2;
      Time best_heur = kTimeInf;
      for (const auto& a : make_bnp_schedulers())
        best_heur = std::min(best_heur, a->run(g, heur_opt).makespan());

      BBOptions full;
      full.num_procs = 2;
      full.num_threads = 4;
      full.time_limit_seconds = 60;
      full.initial_upper_bound = best_heur;
      const BBResult with = branch_and_bound(g, full);

      BBOptions naive = full;
      naive.disable_bounds = true;
      naive.initial_upper_bound = 0;
      const BBResult without = branch_and_bound(g, naive);

      if (!with.proven_optimal || !without.proven_optimal ||
          with.length != without.length) {
        std::fprintf(stderr, "ablation mismatch at v=%u ccr=%.1f\n", v, ccr);
        return 1;
      }
      table.add_row(
          {Table::fmt_int(v), Table::fmt(ccr, 1), Table::fmt_int(with.length),
           Table::fmt_int(static_cast<long long>(with.nodes_expanded)),
           Table::fmt(with.seconds, 3),
           Table::fmt_int(static_cast<long long>(without.nodes_expanded)),
           Table::fmt(without.seconds, 3),
           Table::fmt(static_cast<double>(without.nodes_expanded) /
                          static_cast<double>(std::max<std::uint64_t>(
                              1, with.nodes_expanded)),
                      1)});
    }
    std::fprintf(stderr, "[bb] v=%u done\n", v);
  }

  std::printf("Branch-and-bound pruning ablation: seed=%llu, p=2\n\n",
              static_cast<unsigned long long>(seed));
  bench::emit("ablate_bb",
              "Ablation: B&B states expanded, pruning on vs exhaustive",
              table);
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
