// Figure 3 (paper §6.4.2): average number of processors used by the UNC
// (a) and BNP (b) algorithms on the RGNOS benchmarks, vs graph size.
//
// Paper shape:
//  (a) DSC uses very many processors (a new one whenever the start time
//      cannot be reduced), LC and EZ also many; DCP and MD markedly fewer.
//  (b) DLS uses the fewest, MCP and ETF close, HLFET and ISH similar.
// The BNP algorithms run with a "virtually unlimited" processor supply,
// exactly as in the paper.
#include <cstdio>

#include "bench_common.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/experiment.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/util/cli.h"
#include "tgs/util/rng.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1998));
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 500));
  const auto reps = bench::rgnos_reps(cli.has("full"));

  PivotStats unc_stats("v", unc_names());
  PivotStats bnp_stats("v", bnp_names());

  std::uint64_t stream = 0;  // one derived RNG stream per graph
  for (NodeId v = 50; v <= max_nodes; v += 50) {
    for (const auto& [ccr, par] : reps) {
      RgnosParams params;
      params.num_nodes = v;
      params.ccr = ccr;
      params.parallelism = par;
      params.seed = derive_seed(seed, stream++);
      const TaskGraph g = rgnos_graph(params);
      for (const auto& a : make_unc_schedulers())
        unc_stats.add(v, a->name(),
                      static_cast<double>(run_scheduler(*a, g, {}).procs_used));
      for (const auto& a : make_bnp_schedulers())
        bnp_stats.add(v, a->name(),
                      static_cast<double>(run_scheduler(*a, g, {}).procs_used));
    }
    std::fprintf(stderr, "[fig3] v=%u done\n", v);
  }

  std::printf("RGNOS processors-used sweep: seed=%llu, %zu graphs per size\n\n",
              static_cast<unsigned long long>(seed), reps.size());
  bench::emit("fig3a_procs_unc",
              "Figure 3(a): average processors used, UNC algorithms",
              unc_stats.render(1));
  bench::emit("fig3b_procs_bnp",
              "Figure 3(b): average processors used, BNP algorithms",
              bnp_stats.render(1));
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
