// Ablation (paper §6.4.1, results excluded there for space): "In terms of
// the impact of the topology, we find that all algorithms perform better
// on the networks with more communication links."
//
// Four 8-processor machines with increasing connectivity:
//   ring8 (8 links) < mesh2x4 (10) < hcube3 (12) < clique8 (28).
// The table reports per-topology average NSL for each APN algorithm.
#include <cstdio>

#include "bench_common.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/experiment.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/util/cli.h"
#include "tgs/util/rng.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const int graphs = static_cast<int>(cli.get_int("graphs", 4));
  const NodeId nodes = static_cast<NodeId>(cli.get_int("nodes", 120));

  std::vector<RoutingTable> machines;
  machines.emplace_back(Topology::ring(8));
  machines.emplace_back(Topology::mesh(2, 4));
  machines.emplace_back(Topology::hypercube(3));
  machines.emplace_back(Topology::fully_connected(8));

  PivotStats stats("links", apn_names());

  for (const auto& routes : machines) {
    const double key = routes.topology().num_links();
    for (int i = 0; i < graphs; ++i) {
      RgnosParams p;
      p.num_nodes = nodes;
      p.ccr = i % 2 == 0 ? 1.0 : 2.0;
      p.parallelism = 2 + i % 3;
      // Keyed by i only: every machine must see the same graph suite.
      p.seed = derive_seed(seed, static_cast<std::uint64_t>(i));
      const TaskGraph g = rgnos_graph(p);
      for (const auto& a : make_apn_schedulers()) {
        const RunResult r = run_apn_scheduler(*a, g, routes);
        if (!r.valid) {
          std::fprintf(stderr, "INVALID %s on %s: %s\n", r.algo.c_str(),
                       routes.topology().name().c_str(), r.error.c_str());
          return 1;
        }
        stats.add(key, a->name(), r.nsl);
      }
    }
    std::fprintf(stderr, "[topology] %s done\n",
                 routes.topology().name().c_str());
  }

  std::printf("Topology ablation: %d RGNOS graphs (v=%u) per machine, "
              "seed=%llu.\nRows are keyed by link count: 8=ring, 10=mesh2x4, "
              "12=hcube3, 28=clique8.\nExpect NSL to fall as links grow.\n\n",
              graphs, nodes, static_cast<unsigned long long>(seed));
  bench::emit("ablate_topology", "Ablation: APN NSL vs network connectivity",
              stats.render(3));
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
