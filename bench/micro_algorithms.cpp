// Google-benchmark micro measurements: attribute computations and each
// scheduling algorithm on fixed RGNOS graphs. Complements Table 6 with
// statistically robust per-call timings.
#include <benchmark/benchmark.h>

#include "tgs/gen/rgnos.h"
#include "tgs/graph/attributes.h"
#include "tgs/harness/registry.h"
#include "tgs/net/routing.h"

namespace {

using namespace tgs;

const TaskGraph& graph_of_size(NodeId v) {
  static std::map<NodeId, TaskGraph> cache;
  auto it = cache.find(v);
  if (it == cache.end()) {
    RgnosParams p;
    p.num_nodes = v;
    p.ccr = 1.0;
    p.parallelism = 3;
    p.seed = 424242;
    it = cache.emplace(v, rgnos_graph(p)).first;
  }
  return it->second;
}

void BM_BLevels(benchmark::State& state) {
  const TaskGraph& g = graph_of_size(static_cast<NodeId>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(b_levels(g));
}
BENCHMARK(BM_BLevels)->Arg(100)->Arg(500);

void BM_CriticalPath(benchmark::State& state) {
  const TaskGraph& g = graph_of_size(static_cast<NodeId>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(critical_path(g));
}
BENCHMARK(BM_CriticalPath)->Arg(100)->Arg(500);

void BM_Scheduler(benchmark::State& state, const char* name, NodeId v) {
  const TaskGraph& g = graph_of_size(v);
  const auto algo = make_scheduler(name);
  for (auto _ : state) benchmark::DoNotOptimize(algo->run(g, {}));
}

void BM_ApnScheduler(benchmark::State& state, const char* name, NodeId v) {
  const TaskGraph& g = graph_of_size(v);
  static const RoutingTable routes{Topology::hypercube(3)};
  const auto algo = make_apn_scheduler(name);
  for (auto _ : state) benchmark::DoNotOptimize(algo->run(g, routes));
}

#define TGS_BENCH_SCHED(name)                                          \
  BENCHMARK_CAPTURE(BM_Scheduler, name##_v100, #name, 100)             \
      ->Unit(benchmark::kMillisecond);                                 \
  BENCHMARK_CAPTURE(BM_Scheduler, name##_v300, #name, 300)             \
      ->Unit(benchmark::kMillisecond)

TGS_BENCH_SCHED(HLFET);
TGS_BENCH_SCHED(ISH);
TGS_BENCH_SCHED(MCP);
TGS_BENCH_SCHED(ETF);
TGS_BENCH_SCHED(DLS);
TGS_BENCH_SCHED(LAST);
TGS_BENCH_SCHED(EZ);
TGS_BENCH_SCHED(LC);
TGS_BENCH_SCHED(DSC);
TGS_BENCH_SCHED(MD);
TGS_BENCH_SCHED(DCP);

BENCHMARK_CAPTURE(BM_ApnScheduler, MH_v100, "MH", 100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ApnScheduler, DLSAPN_v100, "DLS-APN", 100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ApnScheduler, BU_v100, "BU", 100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ApnScheduler, BSA_v100, "BSA", 100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
