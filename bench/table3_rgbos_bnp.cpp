// Table 3 (paper §6.2): percentage degradation from the optimal solutions
// of the BNP algorithms on the RGBOS benchmarks, at the same processor
// count as the branch-and-bound reference (p=2 by default).
//
// Paper shape: MCP is the best BNP algorithm, LAST the worst; MCP, ETF,
// ISH and DLS beat the non-CP-based UNC algorithms; degradations rise
// with CCR.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "tgs/gen/rgbos.h"
#include "tgs/harness/registry.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/sched/metrics.h"
#include "tgs/util/cli.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1998));
  const double budget = cli.get_double("budget", 3.0);
  const int procs = static_cast<int>(cli.get_int("procs", 2));

  const auto algos = make_bnp_schedulers();
  std::vector<std::string> headers{"CCR", "v"};
  for (const auto& a : algos) headers.push_back(a->name());
  headers.push_back("optimal");
  Table table(headers);

  std::map<std::string, int> optimal_hits;
  std::map<std::string, double> degradation_sum;
  int cells = 0;

  for (double ccr : kRgbosCcrs) {
    for (NodeId v = kRgbosMinNodes; v <= kRgbosMaxNodes; v += kRgbosStep) {
      const TaskGraph g = rgbos_graph(ccr, v, seed);

      SchedOptions bounded;
      bounded.num_procs = procs;
      std::vector<Time> lengths;
      Time best_heur = kTimeInf;
      for (const auto& a : algos) {
        lengths.push_back(a->run(g, bounded).makespan());
        best_heur = std::min(best_heur, lengths.back());
      }

      BBOptions bb;
      bb.num_procs = procs;
      bb.time_limit_seconds = budget;
      bb.initial_upper_bound = best_heur;
      const BBResult opt = branch_and_bound(g, bb);
      const Time reference = opt.schedule ? opt.length : best_heur;

      std::vector<std::string> row{Table::fmt(ccr, 1), Table::fmt_int(v)};
      for (std::size_t i = 0; i < algos.size(); ++i) {
        const double deg = percent_degradation(lengths[i], reference);
        degradation_sum[algos[i]->name()] += deg;
        if (lengths[i] == reference) ++optimal_hits[algos[i]->name()];
        row.push_back(Table::fmt(deg, 1));
      }
      ++cells;
      row.push_back(std::string(opt.proven_optimal ? "" : "*") +
                    Table::fmt_int(reference));
      table.add_row(std::move(row));
    }
  }

  std::vector<std::string> hits_row{"", "#opt"};
  std::vector<std::string> avg_row{"", "Avg."};
  for (const auto& a : algos) {
    hits_row.push_back(Table::fmt_int(optimal_hits[a->name()]));
    avg_row.push_back(Table::fmt(degradation_sum[a->name()] / cells, 1));
  }
  table.add_row(std::move(hits_row));
  table.add_row(std::move(avg_row));

  std::printf("RGBOS / BNP: seed=%llu, p=%d, B&B budget=%.1fs per instance\n\n",
              static_cast<unsigned long long>(seed), procs, budget);
  bench::emit("table3_rgbos_bnp",
              "Table 3: % degradation from optimal, BNP on RGBOS", table);
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
