// Shared helpers for the bench binaries: output conventions and the
// default RGNOS replication set.
//
// Conventions: every bench prints its parameters (including seeds) and a
// paper-shaped ASCII table to stdout, and writes the same table as CSV to
// ./bench_results/<name>.csv. `--reps`, `--seed`, `--budget`, `--full`
// flags are honoured where meaningful.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "tgs/util/table.h"

namespace tgs::bench {

inline void emit(const std::string& name, const std::string& title,
                 const Table& table) {
  std::printf("== %s ==\n%s\n", title.c_str(), table.to_ascii().c_str());
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const std::string path = "bench_results/" + name + ".csv";
  if (!table.write_csv(path))
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  else
    std::printf("[csv: %s]\n\n", path.c_str());
}

/// Wrapper for bench mains: a malformed flag (Cli's numeric accessors
/// throw std::invalid_argument) becomes a clean stderr message and exit 2
/// instead of std::terminate.
template <typename Fn>
int guarded_main(Fn fn, int argc, char** argv) {
  try {
    return fn(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

/// Default RGNOS (CCR, parallelism) replications per size: a diverse
/// 5-graph slice of the paper's 25-combination grid. --full uses all 25.
inline std::vector<std::pair<double, int>> rgnos_reps(bool full) {
  if (full) {
    std::vector<std::pair<double, int>> all;
    for (double ccr : {0.1, 0.5, 1.0, 2.0, 10.0})
      for (int par : {1, 2, 3, 4, 5}) all.emplace_back(ccr, par);
    return all;
  }
  return {{0.1, 3}, {1.0, 1}, {1.0, 3}, {2.0, 5}, {10.0, 3}};
}

}  // namespace tgs::bench
