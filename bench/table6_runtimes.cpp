// Table 6 (paper §6.4.3): average running times (in seconds) of all 15
// algorithms on the RGNOS benchmarks, per graph size.
//
// Paper shape (relative ranking, absolute numbers are machine-bound):
//   BNP: MCP fastest; DLS and ETF slowest (exhaustive pair search).
//   UNC: LC fastest, then DSC, EZ; DCP and MD slowest.
//   APN: BU fastest; MH and BSA close; DLS much slower.
#include <cstdio>

#include "bench_common.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/experiment.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/util/cli.h"
#include "tgs/util/rng.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1998));
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 500));
  const auto reps = bench::rgnos_reps(cli.has("full"));

  std::vector<std::string> columns;
  for (const auto& a : make_unc_schedulers()) columns.push_back(a->name());
  for (const auto& a : make_bnp_schedulers()) columns.push_back(a->name());
  for (const auto& a : make_apn_schedulers())
    columns.push_back(a->name() + "(APN)");
  PivotStats stats("v", columns);

  const RoutingTable routes{Topology::hypercube(3)};

  std::uint64_t stream = 0;  // one derived RNG stream per graph
  for (NodeId v = 50; v <= max_nodes; v += 50) {
    for (const auto& [ccr, par] : reps) {
      RgnosParams params;
      params.num_nodes = v;
      params.ccr = ccr;
      params.parallelism = par;
      params.seed = derive_seed(seed, stream++);
      const TaskGraph g = rgnos_graph(params);

      for (const auto& a : make_unc_and_bnp_schedulers()) {
        const RunResult r = run_scheduler(*a, g, {});
        if (!r.valid) {
          std::fprintf(stderr, "INVALID %s: %s\n", r.algo.c_str(), r.error.c_str());
          return 1;
        }
        stats.add(v, r.algo, r.seconds);
      }
      for (const auto& a : make_apn_schedulers()) {
        const RunResult r = run_apn_scheduler(*a, g, routes);
        if (!r.valid) {
          std::fprintf(stderr, "INVALID %s: %s\n", r.algo.c_str(), r.error.c_str());
          return 1;
        }
        stats.add(v, r.algo + "(APN)", r.seconds);
      }
    }
    std::fprintf(stderr, "[table6] v=%u done\n", v);
  }

  Table table = stats.render(4);
  std::printf("RGNOS running times: seed=%llu, %zu graphs per size, APN on "
              "hcube3\n\n",
              static_cast<unsigned long long>(seed), reps.size());
  bench::emit("table6_runtimes",
              "Table 6: average scheduling times (seconds) on RGNOS", table);
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
