// The experiment layer of tgs_bench: every paper table/figure/ablation is
// a registered experiment running on the parallel execution engine
// (src/tgs/exec/). One translation unit per experiment family
// (exp_<family>.cpp) registers its experiments here; the driver
// (bench/tgs_bench.cpp) only parses flags and dispatches.
//
// Contract for an experiment body:
//  * expand the parameter grid into a Sweep (one Job per graph),
//  * derive all randomness from JobContext seeds (or documented pairing
//    formulas on the master seed) -- never from shared mutable state,
//  * emit Records through the ResultSink so the JSONL stream, CSVs and
//    rendered tables are byte-identical at any --threads,
//  * route every wall-clock measurement through ExpContext::time_value()
//    so --no-timing makes the full JSONL stream deterministic,
//  * print tables through emit() and respect ctx.quiet.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tgs/exec/result_sink.h"
#include "tgs/exec/sweep.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/runner.h"
#include "tgs/util/cli.h"
#include "tgs/util/table.h"

namespace tgs::bench {

/// Shared per-invocation state handed to every experiment.
struct ExpContext {
  const Cli* cli = nullptr;
  std::uint64_t seed = 1998;
  int threads = 1;
  // A later experiment of the same invocation appends to an explicit
  // --out file instead of truncating the earlier experiments' records.
  bool append_out = false;
  // --no-timing: wall-clock fields are written as 0 so timing experiments
  // become byte-reproducible (the determinism tests rely on this).
  bool timing = true;
  // --no-csv: skip the bench_results/*.csv dumps.
  bool csv = true;
  // --quiet: suppress stdout tables and headers (tests).
  bool quiet = false;

  /// `seconds` when timing is enabled, 0.0 under --no-timing.
  double time_value(double seconds) const { return timing ? seconds : 0.0; }
};

using ExpRunFn = void (*)(const ExpContext&);

struct ExperimentDef {
  std::string name;
  std::string alias;  // retired standalone-binary name ("" = none)
  std::string family;
  std::string description;  // one line, includes experiment-specific flags
  ExpRunFn run = nullptr;
};

class ExperimentRegistry {
 public:
  void add(ExperimentDef def);
  /// Lookup by name or legacy alias; nullptr when unknown.
  const ExperimentDef* find(const std::string& name) const;
  const std::vector<ExperimentDef>& all() const { return defs_; }

 private:
  std::vector<ExperimentDef> defs_;
};

/// The process-wide registry, populated on first use in a fixed family
/// order (psg, rgbos, rgpos, rgnos, traced, ablations, runtimes, param,
/// giant).
const ExperimentRegistry& experiments();

/// Full driver loop: resolve --experiment/positional names, build the
/// ExpContext and run each experiment in order. Returns a process exit
/// code. Factored out of main() so tests can drive the binary's exact
/// behaviour (e.g. --out append semantics) in-process.
int run_cli(const Cli& cli);

// ------------------------------------------------------------- helpers ----

/// Registry-order algorithm names, optionally filtered by --algo.
std::vector<std::string> filtered_names(const Cli& cli,
                                        std::vector<std::string> names);

/// Throws std::invalid_argument when an --algo value names no algorithm
/// of this experiment (`known_sets` = its class name lists) -- a typo
/// must not silently run with an empty algorithm set.
void check_algo_filter(const Cli& cli,
                       const std::vector<std::vector<std::string>>& known_sets);

/// First numeric JSONL field named `key` of `rec`, or `fallback`.
double num_field(const Record& rec, const std::string& key, double fallback);

/// JSONL writer per --out; the writer may be disabled (get() == nullptr).
struct OutStream {
  std::unique_ptr<JsonlWriter> writer;
  std::string path;  // empty when stdout or disabled
  JsonlWriter* get() const { return writer.get(); }
};

OutStream make_out(const ExpContext& ctx, const std::string& experiment);

/// Print the ASCII table (unless ctx.quiet) and write the CSV (unless
/// --no-csv) to bench_results/<name>.csv.
void emit(const ExpContext& ctx, const std::string& name,
          const std::string& title, const Table& table);

/// Footer: the JSONL path and any job errors (errors go to stderr even
/// when quiet).
void report_sink(const ExpContext& ctx, const ResultSink& sink,
                 const OutStream& out);

/// Default RGNOS (CCR, parallelism) replications per size: a diverse
/// 5-graph slice of the paper's 25-combination grid. --full uses all 25.
std::vector<std::pair<double, int>> rgnos_reps(bool full);

/// The RGNOS grid shared by fig2, fig3 and table6 -- sizes 50..max_nodes
/// step 50 crossed with the replication set -- so the three experiments
/// keep seeing the same graph suite for a given master seed. Pair with
/// rgnos_graph_at() inside the job.
Sweep rgnos_size_sweep(NodeId max_nodes, std::size_t num_reps);

struct RgnosJobGraph {
  TaskGraph graph;
  double ccr = 0.0;
  int parallelism = 0;
};

/// The graph of one rgnos_size_sweep() point, drawn from the job's
/// private RNG stream.
RgnosJobGraph rgnos_graph_at(const JobContext& jc, const SweepPoint& pt,
                             const std::vector<std::pair<double, int>>& reps);

/// Pass-through that throws (surfacing as a job error in the sink)
/// when a run produced an invalid schedule, so bogus lengths never fold
/// silently into the averages -- the retired table6 binary hard-failed
/// on this.
const RunResult& require_valid(const RunResult& r);

/// Thread-local scheduling workspace, rebound to `g`. Call once per
/// generated graph inside a job and pass the result to every
/// run_scheduler / run_apn_scheduler on that graph: per-graph attributes
/// (static levels, ALAP, ...) are then computed once per graph instead of
/// once per algorithm, and scratch capacity is recycled across all the
/// jobs a worker thread executes. Workspace state never influences a
/// schedule, so sweeps stay byte-identical at any --threads.
SchedWorkspace& bind_workspace(const TaskGraph& g);

// Family registration hooks, called once by experiments().
void register_psg_experiments(ExperimentRegistry& r);
void register_rgbos_experiments(ExperimentRegistry& r);
void register_rgpos_experiments(ExperimentRegistry& r);
void register_rgnos_experiments(ExperimentRegistry& r);
void register_traced_experiments(ExperimentRegistry& r);
void register_ablation_experiments(ExperimentRegistry& r);
void register_runtime_experiments(ExperimentRegistry& r);
void register_param_experiments(ExperimentRegistry& r);
void register_giant_experiments(ExperimentRegistry& r);

}  // namespace tgs::bench
