// Figure 4 (paper §6.5): average NSL on the traced Cholesky factorization
// graphs, vs matrix dimension, for the UNC (a), BNP (b) and APN (c)
// classes. For a matrix dimension N the graph has N(N+1)/2 tasks. We
// additionally sweep the Gaussian-elimination graph as the paper's
// "second application" cross-check.
//
// Paper shape: the BNP algorithms perform similarly except LAST, which is
// much worse; the UNC algorithms are much more diverse; the relative APN
// performance is stable across applications.
//
// The traced graphs are deterministic in (dimension, comm scale) -- no
// RNG streams are consumed. One job per matrix dimension.
#include <algorithm>
#include <cstdio>

#include "experiments/experiments.h"
#include "tgs/gen/traced.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"

namespace tgs::bench {
namespace {

void run_fig4(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const int max_dim = static_cast<int>(cli.get_int("max-dim", 32));
  // Default communication scale 5.0 (CCR ~ 2.5): the compiler-traced graphs
  // the paper used were communication-dominant enough for the algorithm
  // classes to separate; at scale 1.0 every algorithm pins NSL to 1.0 and
  // the figure degenerates.
  const double comm = cli.get_double("comm", 5.0);
  check_algo_filter(cli, {unc_names(), bnp_names(), apn_names()});
  const std::vector<std::string> unc_n = filtered_names(cli, unc_names());
  const std::vector<std::string> bnp_n = filtered_names(cli, bnp_names());
  const std::vector<std::string> apn_n = filtered_names(cli, apn_names());
  const auto wants = [](const std::vector<std::string>& names,
                        const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  // The Gaussian cross-check columns honour the --algo filter too.
  std::vector<std::string> gauss_n;
  if (wants(unc_n, "DCP")) gauss_n.push_back("DCP");
  if (wants(bnp_n, "MCP")) gauss_n.push_back("MCP");
  if (wants(apn_n, "BSA")) gauss_n.push_back("BSA");

  Sweep sweep;
  std::vector<double> dims;
  for (int dim = 8; dim <= max_dim; dim += 4) dims.push_back(dim);
  sweep.axis("dim", dims);

  OutStream out = make_out(ctx, "fig4");
  ResultSink sink("fig4", out.get());
  const RoutingTable routes{Topology::hypercube(3)};

  const auto job = [&](const JobContext&, const SweepPoint& pt) {
    const int dim = static_cast<int>(pt.param("dim"));
    std::vector<Record> records;

    // bind_workspace hands out the one thread-local workspace, so each
    // graph's reference lives in its own scope -- two live names would
    // alias, and binding the second would invalidate the first.
    {
      const TaskGraph g = cholesky_graph(dim, comm);
      SchedWorkspace& ws = bind_workspace(g);
      for (const std::string& name : unc_n) {
        const RunResult rr = run_scheduler(*make_scheduler(name), g, {}, ws);
        records.push_back(record_from_run(rr, "fig4a", dim, rr.nsl));
      }
      for (const std::string& name : bnp_n) {
        const RunResult rr = run_scheduler(*make_scheduler(name), g, {}, ws);
        records.push_back(record_from_run(rr, "fig4b", dim, rr.nsl));
      }
      for (const std::string& name : apn_n) {
        const RunResult rr =
            run_apn_scheduler(*make_apn_scheduler(name), g, routes, ws);
        records.push_back(record_from_run(rr, "fig4c", dim, rr.nsl));
      }
    }

    // Second application (paper: "quite similar for both applications").
    if (!gauss_n.empty()) {
      const TaskGraph ge = gaussian_elimination_graph(dim, comm);
      SchedWorkspace& ws = bind_workspace(ge);
      for (const std::string& name : gauss_n) {
        const RunResult rr =
            name == "BSA"
                ? run_apn_scheduler(*make_apn_scheduler(name), ge, routes, ws)
                : run_scheduler(*make_scheduler(name), ge, {}, ws);
        Record rec = record_from_run(rr, "fig4x", dim, rr.nsl);
        rec.str.emplace_back("app", "gauss");
        records.push_back(std::move(rec));
      }
    }
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("Cholesky traced graphs, comm scale %.1f; APN on hcube3; %d "
                "worker threads\n\n",
                comm, ctx.threads);
  const auto render = [&](const std::string& pivot,
                          const std::vector<std::string>& cols,
                          const std::string& name, const std::string& title) {
    if (cols.empty()) return;
    PivotStats stats("N", cols);
    sink.fold(pivot, stats);
    emit(ctx, name, title, stats.render(3));
  };
  render("fig4a", unc_n, "fig4a_traced_unc",
         "Figure 4(a): average NSL on Cholesky, UNC");
  render("fig4b", bnp_n, "fig4b_traced_bnp",
         "Figure 4(b): average NSL on Cholesky, BNP");
  render("fig4c", apn_n, "fig4c_traced_apn",
         "Figure 4(c): average NSL on Cholesky, APN");
  render("fig4x", gauss_n, "fig4x_traced_gauss",
         "Figure 4 extension: Gaussian elimination cross-check");
  report_sink(ctx, sink, out);
}

}  // namespace

void register_traced_experiments(ExperimentRegistry& r) {
  r.add({"fig4", "fig4_traced", "traced",
         "average NSL on traced Cholesky/Gauss graphs, UNC/BNP/APN "
         "[--max-dim, --comm]",
         run_fig4});
}

}  // namespace tgs::bench
