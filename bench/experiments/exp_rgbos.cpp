// Tables 2 and 3 (paper §6.2): percentage degradation from
// branch-and-bound reference solutions on the RGBOS suite. One job per
// (CCR, v) graph; the UNC variant (table2) runs unbounded, the BNP
// variant (table3) at --procs processors.
//
// The reference search uses a deterministic node-expansion budget
// (--bb-nodes) and the round-synchronous parallel branch and bound
// (--bb-threads, default: the engine's --threads), whose results are
// byte-identical at any thread count -- so the whole experiment stays
// bit-identical at any --threads x --bb-threads combination.
#include <algorithm>
#include <cstdio>
#include <map>

#include "experiments/experiments.h"
#include "tgs/gen/rgbos.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/sched/metrics.h"
#include "tgs/util/stats.h"

namespace tgs::bench {
namespace {

void run_table_rgbos(const ExpContext& ctx, bool unc) {
  const Cli& cli = *ctx.cli;
  const std::string exp = unc ? "table2" : "table3";
  const int procs = static_cast<int>(cli.get_int("procs", 2));
  const std::uint64_t bb_nodes =
      static_cast<std::uint64_t>(cli.get_int("bb-nodes", 250'000));
  // Defaulting to the engine's --threads can oversubscribe (jobs x B&B
  // workers) on wide sweeps; results are byte-identical either way, so
  // pass --bb-threads=1 when the job grid alone saturates the machine.
  const int bb_threads =
      static_cast<int>(cli.get_int("bb-threads", ctx.threads));
  const NodeId max_v = static_cast<NodeId>(
      cli.get_int("max-v", static_cast<std::int64_t>(kRgbosMaxNodes)));
  check_algo_filter(cli, {unc ? unc_names() : bnp_names()});
  const std::vector<std::string> names =
      filtered_names(cli, unc ? unc_names() : bnp_names());

  Sweep sweep;
  sweep.axis("ccr", {kRgbosCcrs[0], kRgbosCcrs[1], kRgbosCcrs[2]});
  std::vector<double> sizes;
  for (NodeId v = kRgbosMinNodes; v <= max_v; v += kRgbosStep)
    sizes.push_back(v);
  sweep.axis("v", sizes);

  OutStream out = make_out(ctx, exp);
  ResultSink sink(exp, out.get());

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const double ccr = pt.param("ccr");
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    // RGBOS is a fixed suite keyed by the master seed (paper §5.2); the
    // per-job stream is not used because the suite has no replications.
    const TaskGraph g = rgbos_graph(ccr, v, jc.master_seed);
    const std::string pivot = "ccr" + Table::fmt(ccr, 1);
    SchedWorkspace& ws = bind_workspace(g);

    SchedOptions opt;
    if (!unc) opt.num_procs = procs;
    std::vector<RunResult> runs;
    int ref_procs = procs;
    Time best_heur = kTimeInf;
    std::string best_name;
    for (const std::string& name : names) {
      runs.push_back(run_scheduler(*make_scheduler(name), g, opt, ws));
      ref_procs = std::max(ref_procs, runs.back().procs_used);
      if (runs.back().length < best_heur) {
        best_heur = runs.back().length;
        best_name = name;
      }
    }

    BBOptions bb;
    bb.num_procs = unc ? ref_procs : procs;
    bb.time_limit_seconds = 0.0;  // wall clock would break reproducibility
    bb.max_nodes = bb_nodes;
    bb.num_threads = bb_threads;  // round-synchronous: any value, same bytes
    bb.initial_upper_bound = best_heur;
    // Seeding the incumbent with the best heuristic's schedule guarantees
    // the reference is never worse than the heuristics, even when the
    // node budget runs dry before the search completes anything.
    bb.initial_schedule = make_scheduler(best_name)->run(g, opt, ws);
    const BBResult bbr = branch_and_bound(g, bb);
    const Time reference = bbr.length;

    std::vector<Record> records;
    for (const RunResult& rr : runs) {
      const double deg = percent_degradation(rr.length, reference);
      records.push_back(record_from_run(rr, pivot, v, deg));
    }
    Record ref;
    ref.pivot = pivot;
    ref.row = v;
    ref.column = "optimal";
    ref.value = static_cast<double>(reference);
    ref.num.emplace_back("proven", bbr.proven_optimal ? 1.0 : 0.0);
    ref.num.emplace_back("bb_nodes", static_cast<double>(bbr.nodes_expanded));
    records.push_back(std::move(ref));
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("RGBOS / %s: seed=%llu, p=%d, B&B budget=%llu nodes x %d "
                "B&B threads, %d worker threads\n\n",
                unc ? "UNC" : "BNP", static_cast<unsigned long long>(ctx.seed),
                procs, static_cast<unsigned long long>(bb_nodes), bb_threads,
                ctx.threads);
  std::vector<std::string> columns = names;
  columns.push_back("optimal");
  for (const double ccr : kRgbosCcrs) {
    const std::string pivot = "ccr" + Table::fmt(ccr, 1);
    PivotStats stats("v", columns);
    sink.fold(pivot, stats);
    emit(ctx, exp + "_" + pivot,
         (unc ? "Table 2" : "Table 3") +
             std::string(": % degradation from optimal, CCR=") +
             Table::fmt(ccr, 1),
         stats.render(1));
  }

  // Paper-style footer: optimal hits and average degradation per algorithm.
  std::map<std::string, StatAccumulator> degs;
  std::map<std::string, int> hits;
  int proven = 0, instances = 0;
  for (const JobResult& jr : sink.results()) {
    for (const Record& rec : jr.records) {
      if (rec.column == "optimal") {
        ++instances;
        if (num_field(rec, "proven", 0.0) > 0.0) ++proven;
      } else {
        degs[rec.column].add(rec.value);
        if (rec.value == 0.0) ++hits[rec.column];
      }
    }
  }
  Table summary({"algo", "#opt", "avg % degradation"});
  for (const std::string& name : names)
    summary.add_row({name, Table::fmt_int(hits[name]),
                     Table::fmt(degs[name].mean(), 1)});
  emit(ctx, exp + "_summary",
       "References proven optimal: " + Table::fmt_int(proven) + "/" +
           Table::fmt_int(instances),
       summary);
  report_sink(ctx, sink, out);
}

void run_table2(const ExpContext& ctx) { run_table_rgbos(ctx, /*unc=*/true); }
void run_table3(const ExpContext& ctx) { run_table_rgbos(ctx, /*unc=*/false); }

}  // namespace

void register_rgbos_experiments(ExperimentRegistry& r) {
  r.add({"table2", "table2_rgbos_unc", "rgbos",
         "UNC %-degradation from B&B optima on RGBOS "
         "[--procs, --bb-nodes, --bb-threads, --max-v]",
         run_table2});
  r.add({"table3", "table3_rgbos_bnp", "rgbos",
         "BNP %-degradation from B&B optima on RGBOS "
         "[--procs, --bb-nodes, --bb-threads, --max-v]",
         run_table3});
}

}  // namespace tgs::bench
