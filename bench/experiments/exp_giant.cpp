// Giant-graph tier: scheduling 100k-node DAGs with memory as a
// first-class metric.
//
//  giant_sweep -- per-algorithm scaling curves over v in {1k, 10k, 50k,
//            100k} (default) on a traced or scale-mode random workload.
//            Every run reports, next to wall-clock seconds: the process
//            peak RSS (the tier's fit-the-ceiling gate), the current RSS,
//            and the allocation count/bytes attributed to the scheduling
//            call (util/mem.h counters; a zero-allocation steady state
//            stays visibly zero). tools/bench_summary.py --scaling fits
//            log-log slopes per algorithm from the JSONL stream.
//
// Measurement notes:
//  * Allocation deltas are process-global counters, so run with
//    --threads=1 (the default) when the alloc_* fields matter; concurrent
//    jobs bleed into each other's deltas (seconds and schedule lengths
//    stay exact at any thread count).
//  * peak RSS is monotonic for the process lifetime: it answers "did this
//    tier fit", not "what did this algorithm add" -- that is what the
//    alloc_* deltas are for.
//  * All measurement fields route through ExpContext::time_value(), so
//    --no-timing keeps the JSONL stream byte-reproducible.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "experiments/experiments.h"
#include "tgs/gen/rgnos.h"
#include "tgs/gen/traced.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/util/mem.h"
#include "tgs/util/rng.h"

namespace tgs::bench {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

/// Build the requested workload at roughly `v_target` nodes. Traced
/// kernels are deterministic (seed-free); rgnos uses the giant-tier
/// max_fanout scale path with the job-derived seed.
TaskGraph giant_workload(const std::string& kind, NodeId v_target,
                         std::uint64_t seed) {
  if (kind == "cholesky") {
    // v = dim(dim+1)/2 -> dim = floor((sqrt(8v+1)-1)/2).
    const int dim = static_cast<int>(
        (std::sqrt(8.0 * static_cast<double>(v_target) + 1.0) - 1.0) / 2.0);
    return cholesky_graph(std::max(1, dim), 1.0);
  }
  if (kind == "gauss") {
    // v = (n-1) + n(n-1)/2 ~ n^2/2 -> n ~ sqrt(2v).
    const int n = static_cast<int>(std::sqrt(2.0 * v_target));
    return gaussian_elimination_graph(std::max(2, n), 1.0);
  }
  if (kind == "fft") {
    // v = (n/2) log2(n); round n down to the nearest power of two with
    // v(n) <= v_target.
    int n = 4;
    while (true) {
      const int next = n * 2;
      const double ranks = std::log2(static_cast<double>(next));
      if (static_cast<double>(next) / 2.0 * ranks >
          static_cast<double>(v_target))
        break;
      n = next;
    }
    return fft_graph(n, 1.0);
  }
  if (kind == "rgnos") {
    RgnosParams params;
    params.num_nodes = v_target;
    params.ccr = 1.0;
    params.parallelism = 3;
    params.max_fanout = 8;  // O(v) edges: the giant-tier scale path
    params.seed = seed;
    return rgnos_graph(params);
  }
  throw std::invalid_argument("giant_sweep: unknown --workload '" + kind +
                              "' (cholesky|gauss|fft|rgnos)");
}

void run_giant_sweep(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const std::string workload = cli.get("workload", "cholesky");
  const int procs = static_cast<int>(
      cli.get_int_in("procs", 64, 1, 1 << 20));
  const int time_reps = std::max(
      1, static_cast<int>(cli.get_int_in("reps", 1, 1, 1000)));

  // Default algorithm slate: the paper's BNP span (fast MCP/HLFET/ISH,
  // pair-based ETF/DLS) plus one novel param: point.
  std::vector<std::string> algos{"MCP",  "HLFET", "ISH",
                                 "ETF",  "DLS",   "param:cp/static/insert"};
  if (cli.has("algos"))
    algos = cli.get_list("algos");
  check_algo_filter(cli, {algos});
  algos = filtered_names(cli, algos);

  // Size axis: --sizes csv of target node counts. The row key is the
  // TARGET (so curves from different workloads align); the realized v and
  // e land in the JSONL fields.
  std::vector<double> sizes;
  if (cli.has("sizes")) {
    for (const std::string& s : cli.get_list("sizes"))
      sizes.push_back(static_cast<double>(std::stoll(s)));
  } else {
    sizes = {1000, 10000, 50000, 100000};
  }

  std::vector<double> algo_idx;
  std::vector<std::string> algo_labels;
  for (std::size_t i = 0; i < algos.size(); ++i) {
    algo_idx.push_back(static_cast<double>(i));
    // Canonical scheduler name: "param:..." spec shorthands normalize
    // (e.g. a trailing "/none"), and the pivot column must match the
    // RunResult.algo the records carry.
    algo_labels.push_back(make_scheduler(algos[i])->name());
  }
  Sweep sweep;
  sweep.axis("v", sizes).axis("algo", algo_idx, algo_labels);

  OutStream out = make_out(ctx, "giant_sweep");
  ResultSink sink("giant_sweep", out.get());

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v_target = static_cast<NodeId>(pt.param("v"));
    const std::string& algo = algos[static_cast<std::size_t>(pt.param("algo"))];
    // Same graph for every algorithm at a size: seed depends on v only.
    const TaskGraph g =
        giant_workload(workload, v_target, derive_seed(jc.master_seed, v_target));
    SchedWorkspace& ws = bind_workspace(g);
    // Pre-warm shared attributes so no algorithm's run is charged for
    // filling the cache the others reuse (same protocol as table6).
    ws.attrs().static_levels();
    ws.attrs().alap_times();

    SchedOptions opt;
    opt.num_procs = procs;

    AllocMeter meter;
    RunResult best = require_valid(
        run_scheduler(*make_scheduler(algo), g, opt, ws));
    const double alloc_count = static_cast<double>(meter.count());
    const double alloc_mb = static_cast<double>(meter.bytes()) / kMiB;
    for (int i = 1; i < time_reps; ++i)
      best.seconds = std::min(
          best.seconds,
          require_valid(run_scheduler(*make_scheduler(algo), g, opt, ws))
              .seconds);

    Record rec = record_from_run(best, "giant", v_target,
                                 ctx.time_value(best.seconds));
    rec.num.emplace_back("v_actual", static_cast<double>(g.num_nodes()));
    rec.num.emplace_back("e_actual", static_cast<double>(g.num_edges()));
    rec.num.emplace_back("seconds", ctx.time_value(best.seconds));
    // First-run deltas: steady-state allocation attributed to this
    // algorithm's scheduling call (reruns on a warm workspace would show
    // the recycled-capacity zero instead).
    rec.num.emplace_back("alloc_count", ctx.time_value(alloc_count));
    rec.num.emplace_back("alloc_mb", ctx.time_value(alloc_mb));
    rec.num.emplace_back(
        "rss_mb", ctx.time_value(static_cast<double>(current_rss_bytes()) / kMiB));
    rec.num.emplace_back(
        "peak_rss_mb",
        ctx.time_value(static_cast<double>(peak_rss_bytes()) / kMiB));
    rec.str.emplace_back("workload", g.name());
    std::vector<Record> records;
    records.push_back(std::move(rec));
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("Giant-graph tier: workload=%s, procs=%d, min of %d timing "
                "rep(s), %d worker threads (use --threads=1 for clean "
                "alloc_* deltas)\n\n",
                workload.c_str(), procs, time_reps, ctx.threads);
  PivotStats stats("v", algo_labels);
  sink.fold("giant", stats);
  emit(ctx, "giant_sweep",
       "Giant-graph tier: scheduling seconds per algorithm (mem in JSONL)",
       stats.render(3));
  report_sink(ctx, sink, out);
}

}  // namespace

void register_giant_experiments(ExperimentRegistry& r) {
  r.add({"giant_sweep", "", "giant",
         "100k-node scaling curves with time + peak-RSS + alloc metrics "
         "[--workload, --sizes, --procs, --algos, --reps]",
         run_giant_sweep});
}

}  // namespace tgs::bench
