// param_sweep: the full crossproduct of the parameterized scheduler
// (src/tgs/param/) measured against optimality references.
//
// The named algorithms are single points of a 4-axis design space
// (metric x ready x insertion x cluster, 7*4*3*4 = 336 combinations); this
// experiment runs EVERY point -- or any --metric/--ready/--insertion/
// --cluster filtered sub-grid -- over an optimality-checked suite:
//
//   --suite=rgbos (default)  table2 protocol: branch-and-bound references
//                            seeded with the best combination's schedule,
//                            %-degradation per combination
//   --suite=rgpos            table4 protocol: width-guarded planted optima
//                            (universal lower bounds), unbounded runs
//
// Per-combination quality is summarized as the mean competition rank
// across all (ccr, v) coordinates -- the fair aggregate when degradations
// have wildly different scales across CCRs -- plus average degradation and
// optimum hits. tools/bench_summary.py --ranks reproduces the ranking
// from the JSONL stream.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "experiments/experiments.h"
#include "tgs/gen/rgbos.h"
#include "tgs/gen/rgpos.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/param/param_scheduler.h"
#include "tgs/sched/metrics.h"
#include "tgs/util/rng.h"
#include "tgs/util/stats.h"

namespace tgs::bench {
namespace {

// The filtered values of one spec axis: --<flag>=tok1,tok2 keeps the listed
// tokens (validated against the axis's token table), no flag keeps all.
template <typename Enum, typename TokenFn>
std::vector<Enum> axis_values(const Cli& cli, const std::string& flag,
                              const std::vector<Enum>& all, TokenFn token) {
  const std::vector<std::string> wanted = cli.get_list(flag);
  if (wanted.empty()) return all;
  std::vector<Enum> out;
  for (const std::string& w : wanted) {
    bool found = false;
    for (Enum e : all) {
      if (w == token(e)) {
        if (std::find(out.begin(), out.end(), e) == out.end())
          out.push_back(e);
        found = true;
        break;
      }
    }
    if (!found)
      throw std::invalid_argument("--" + flag + "=" + w +
                                  " names no axis token; " +
                                  param_spec_grammar());
  }
  return out;
}

/// The --metric/--ready/--insertion/--cluster filtered crossproduct, in
/// deterministic axis-table order.
std::vector<ParamSpec> combo_grid(const Cli& cli) {
  const auto metrics =
      axis_values(cli, "metric", all_param_metrics(), param_metric_token);
  const auto readies =
      axis_values(cli, "ready", all_param_readies(), param_ready_token);
  const auto insertions = axis_values(cli, "insertion", all_param_insertions(),
                                      param_insertion_token);
  const auto clusters =
      axis_values(cli, "cluster", all_param_clusters(), param_cluster_token);
  std::vector<ParamSpec> out;
  for (const ParamMetric m : metrics)
    for (const ParamReady r : readies)
      for (const ParamInsertion i : insertions)
        for (const ParamCluster c : clusters) out.push_back({m, r, i, c});
  return out;
}

/// spec string -> named algorithm expressed at that point ("HLFET", ...).
std::map<std::string, std::string> named_points() {
  std::map<std::string, std::string> out;
  for (const SchedulerPtr& s : make_unc_and_bnp_schedulers())
    if (const auto* p = dynamic_cast<const ParamScheduler*>(s.get()))
      out[p->spec().to_string()] = p->name();
  return out;
}

void run_param_sweep(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const std::string exp = "param_sweep";
  const std::string suite = cli.get("suite", "rgbos");
  if (suite != "rgbos" && suite != "rgpos")
    throw std::invalid_argument("--suite must be rgbos or rgpos, got '" +
                                suite + "'");
  const bool rgbos = suite == "rgbos";
  const std::uint64_t bb_nodes =
      static_cast<std::uint64_t>(cli.get_int("bb-nodes", 250'000));
  const int bb_threads =
      static_cast<int>(cli.get_int("bb-threads", ctx.threads));
  const int procs = static_cast<int>(cli.get_int("procs", 4));
  const NodeId max_v = static_cast<NodeId>(cli.get_int(
      "max-v", rgbos ? static_cast<std::int64_t>(kRgbosMaxNodes) : 500));
  const int top = static_cast<int>(cli.get_int("top", 20));

  const std::vector<ParamSpec> combos = combo_grid(cli);
  std::vector<std::string> names;
  for (const ParamSpec& s : combos) names.push_back(s.to_string());

  // --ccr=0.1,1.0 restricts the suite's CCR subsets.
  Sweep sweep;
  {
    const std::vector<std::string> wanted = cli.get_list("ccr");
    std::vector<double> ccrs;
    for (const double c : rgbos ? kRgbosCcrs : kRgposCcrs) {
      if (!wanted.empty() &&
          std::find(wanted.begin(), wanted.end(), Table::fmt(c, 1)) ==
              wanted.end())
        continue;
      ccrs.push_back(c);
    }
    if (ccrs.empty())
      throw std::invalid_argument(
          "--ccr matched no suite CCR (use 0.1, 1.0, 10.0)");
    sweep.axis("ccr", ccrs);
  }
  std::vector<double> sizes;
  if (rgbos) {
    for (NodeId v = kRgbosMinNodes; v <= max_v; v += kRgbosStep)
      sizes.push_back(v);
  } else {
    for (NodeId v = 50; v <= max_v; v += 50) sizes.push_back(v);
  }
  sweep.axis("v", sizes);

  OutStream out = make_out(ctx, exp);
  ResultSink sink(exp, out.get());

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const double ccr = pt.param("ccr");
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const std::string pivot = "ccr" + Table::fmt(ccr, 1);

    // Graph + reference, per suite. Both pairings match the tables'
    // experiments exactly, so a combo's numbers here are comparable with
    // table2/table4 rows from the same master seed.
    std::vector<Record> records;
    if (rgbos) {
      const TaskGraph g = rgbos_graph(ccr, v, jc.master_seed);
      SchedWorkspace& ws = bind_workspace(g);
      SchedOptions opt;  // unbounded, as table2 runs the UNC class
      std::vector<RunResult> runs;
      int ref_procs = 1;
      Time best_heur = kTimeInf;
      std::string best_name;
      for (const std::string& name : names) {
        runs.push_back(
            run_scheduler(*make_scheduler(name), g, opt, ws));
        ref_procs = std::max(ref_procs, runs.back().procs_used);
        if (runs.back().length < best_heur) {
          best_heur = runs.back().length;
          best_name = name;
        }
      }
      BBOptions bb;
      bb.num_procs = ref_procs;
      bb.time_limit_seconds = 0.0;
      bb.max_nodes = bb_nodes;
      bb.num_threads = bb_threads;
      bb.initial_upper_bound = best_heur;
      bb.initial_schedule = make_scheduler(best_name)->run(g, opt, ws);
      const BBResult bbr = branch_and_bound(g, bb);
      for (const RunResult& rr : runs) {
        const double deg = percent_degradation(rr.length, bbr.length);
        Record rec = record_from_run(rr, pivot, v, deg);
        rec.num.emplace_back("hit", rr.length <= bbr.length ? 1.0 : 0.0);
        records.push_back(std::move(rec));
      }
      Record ref;
      ref.pivot = pivot;
      ref.row = v;
      ref.column = "optimal";
      ref.value = static_cast<double>(bbr.length);
      ref.num.emplace_back("proven", bbr.proven_optimal ? 1.0 : 0.0);
      ref.num.emplace_back("bb_nodes",
                           static_cast<double>(bbr.nodes_expanded));
      records.push_back(std::move(ref));
    } else {
      RgposParams params;
      params.num_nodes = v;
      params.num_procs = procs;
      params.ccr = ccr;
      params.width_guard = true;  // plant = universal lower bound
      std::uint64_t state = jc.master_seed ^
                            (static_cast<std::uint64_t>(v) << 18) ^
                            static_cast<std::uint64_t>(std::llround(ccr * 1000));
      params.seed = splitmix64(state);
      const RgposGraph r = rgpos_graph(params);
      SchedWorkspace& ws = bind_workspace(r.graph);
      SchedOptions opt;
      for (const std::string& name : names) {
        const RunResult rr =
            run_scheduler(*make_scheduler(name), r.graph, opt, ws);
        const double deg = percent_degradation(rr.length, r.optimal_length);
        Record rec = record_from_run(rr, pivot, v, deg);
        rec.num.emplace_back("hit",
                             rr.length <= r.optimal_length ? 1.0 : 0.0);
        records.push_back(std::move(rec));
      }
      Record ref;
      ref.pivot = pivot;
      ref.row = v;
      ref.column = "optimal";
      ref.value = static_cast<double>(r.optimal_length);
      ref.num.emplace_back("proven", 1.0);  // planted: optimal by design
      records.push_back(std::move(ref));
    }
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf(
        "param_sweep / %s: seed=%llu, %zu combinations x %zu graphs%s\n\n",
        suite.c_str(), static_cast<unsigned long long>(ctx.seed),
        combos.size(), sink.results().size(),
        rgbos ? "" : " (width-guarded plants)");

  // Mean competition rank per combination across all (ccr, v) coordinates:
  // rank = 1 + #combos strictly better on that graph (ties share a rank).
  // Scale-free across CCR subsets, unlike raw degradation averages.
  std::map<std::string, double> rank_sum;
  std::map<std::string, StatAccumulator> degs;
  std::map<std::string, int> hits;
  int proven = 0, instances = 0;
  for (const JobResult& jr : sink.results()) {
    std::vector<double> values;
    for (const Record& rec : jr.records) {
      if (rec.column == "optimal") {
        ++instances;
        if (num_field(rec, "proven", 0.0) > 0.0) ++proven;
        continue;
      }
      values.push_back(rec.value);
    }
    for (const Record& rec : jr.records) {
      if (rec.column == "optimal") continue;
      double rank = 1.0;
      for (const double v : values)
        if (v < rec.value) rank += 1.0;
      rank_sum[rec.column] += rank;
      degs[rec.column].add(rec.value);
      if (num_field(rec, "hit", 0.0) > 0.0) ++hits[rec.column];
    }
  }

  std::vector<std::string> order = names;
  std::sort(order.begin(), order.end(),
            [&](const std::string& a, const std::string& b) {
              if (rank_sum[a] != rank_sum[b]) return rank_sum[a] < rank_sum[b];
              return a < b;
            });
  const std::map<std::string, std::string> named = named_points();
  const double graphs = instances > 0 ? instances : 1;
  Table ranking({"#", "combination", "named", "mean rank", "avg % deg",
                 "#opt"});
  const int rows = std::min<int>(top, static_cast<int>(order.size()));
  for (int i = 0; i < rows; ++i) {
    const std::string& name = order[i];
    const auto it = named.find(name);
    ranking.add_row({Table::fmt_int(i + 1), name,
                     it != named.end() ? it->second : "",
                     Table::fmt(rank_sum[name] / graphs, 1),
                     Table::fmt(degs[name].mean(), 1),
                     Table::fmt_int(hits[name])});
  }
  emit(ctx, exp + "_ranking",
       "param_sweep: top " + Table::fmt_int(rows) + " of " +
           Table::fmt_int(static_cast<int>(order.size())) +
           " combinations by mean rank (references proven optimal: " +
           Table::fmt_int(proven) + "/" + Table::fmt_int(instances) + ")",
       ranking);
  report_sink(ctx, sink, out);
}

}  // namespace

void register_param_experiments(ExperimentRegistry& r) {
  r.add({"param_sweep", "", "param",
         "parameterized-scheduler crossproduct vs optimality references "
         "[--suite=rgbos|rgpos, --metric, --ready, --insertion, --cluster, "
         "--ccr, --max-v, --bb-nodes, --bb-threads, --procs, --top]",
         run_param_sweep});
}

}  // namespace tgs::bench
