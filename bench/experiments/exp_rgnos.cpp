// RGNOS experiments (random graphs with no known optima, paper §5.4):
//
//  fig2       -- average NSL of the UNC/BNP/APN algorithms vs graph size
//                (paper Figure 2).
//  fig3       -- average number of processors used by the UNC (a) and BNP
//                (b) algorithms vs graph size (paper Figure 3); the BNP
//                algorithms run with a "virtually unlimited" supply,
//                exactly as in the paper.
//  ext_unc_cs -- extension (paper §7 future work): UNC clustering
//                followed by cluster scheduling (Sarkar / RCP) onto a
//                bounded machine, against direct BNP at the same p.
//
// One job per generated graph; each graph is drawn from its own derived
// RNG stream (seed = derive_seed(master, job index)), so grid cells and
// replications never share a seed and the sweeps are bit-identical at any
// thread count.
#include <cstdio>

#include "experiments/experiments.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/map/cluster_map.h"
#include "tgs/net/routing.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/validate.h"

namespace tgs::bench {
namespace {

// ---------------------------------------------------------------- fig2 ----

void run_fig2(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 500));
  const NodeId apn_max = static_cast<NodeId>(
      cli.get_int("apn-max-nodes", static_cast<std::int64_t>(max_nodes)));
  const auto reps = rgnos_reps(cli.has("full"));
  check_algo_filter(cli, {unc_names(), bnp_names(), apn_names()});
  const std::vector<std::string> unc_n = filtered_names(cli, unc_names());
  const std::vector<std::string> bnp_n = filtered_names(cli, bnp_names());
  const std::vector<std::string> apn_n = filtered_names(cli, apn_names());

  const Sweep sweep = rgnos_size_sweep(max_nodes, reps.size());

  OutStream out = make_out(ctx, "fig2");
  ResultSink sink("fig2", out.get());
  const RoutingTable routes{Topology::hypercube(3)};

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const RgnosJobGraph g = rgnos_graph_at(jc, pt, reps);
    SchedWorkspace& ws = bind_workspace(g.graph);

    std::vector<Record> records;
    const auto tag = [&](Record rec) {
      rec.num.emplace_back("ccr", g.ccr);
      rec.num.emplace_back("parallelism", g.parallelism);
      records.push_back(std::move(rec));
    };
    for (const std::string& name : unc_n)
      tag(record_from_run(
          require_valid(run_scheduler(*make_scheduler(name), g.graph, {}, ws)),
          "fig2a", v, 0.0));
    for (const std::string& name : bnp_n)
      tag(record_from_run(
          require_valid(run_scheduler(*make_scheduler(name), g.graph, {}, ws)),
          "fig2b", v, 0.0));
    if (v <= apn_max)
      for (const std::string& name : apn_n)
        tag(record_from_run(
            require_valid(run_apn_scheduler(*make_apn_scheduler(name),
                                            g.graph, routes, ws)),
            "fig2c", v, 0.0));
    for (Record& rec : records) rec.value = num_field(rec, "nsl", 0.0);
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("RGNOS NSL sweep: seed=%llu, %zu graphs per size, %d worker "
                "threads; APN on hcube3 (8 procs)\n\n",
                static_cast<unsigned long long>(ctx.seed), reps.size(),
                ctx.threads);
  const auto render = [&](const std::string& pivot,
                          const std::vector<std::string>& cols,
                          const std::string& title) {
    if (cols.empty()) return;
    PivotStats stats("v", cols);
    sink.fold(pivot, stats);
    emit(ctx, "tgs_bench_" + pivot, title, stats.render(3));
  };
  render("fig2a", unc_n, "Figure 2(a): average NSL, UNC algorithms");
  render("fig2b", bnp_n, "Figure 2(b): average NSL, BNP algorithms");
  render("fig2c", apn_n, "Figure 2(c): average NSL, APN algorithms");
  report_sink(ctx, sink, out);
}

// ---------------------------------------------------------------- fig3 ----

void run_fig3(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 500));
  const auto reps = rgnos_reps(cli.has("full"));
  check_algo_filter(cli, {unc_names(), bnp_names()});
  const std::vector<std::string> unc_n = filtered_names(cli, unc_names());
  const std::vector<std::string> bnp_n = filtered_names(cli, bnp_names());

  const Sweep sweep = rgnos_size_sweep(max_nodes, reps.size());

  OutStream out = make_out(ctx, "fig3");
  ResultSink sink("fig3", out.get());

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const RgnosJobGraph g = rgnos_graph_at(jc, pt, reps);
    SchedWorkspace& ws = bind_workspace(g.graph);

    std::vector<Record> records;
    for (const std::string& name : unc_n) {
      const RunResult rr =
          require_valid(run_scheduler(*make_scheduler(name), g.graph, {}, ws));
      records.push_back(record_from_run(
          rr, "fig3a", v, static_cast<double>(rr.procs_used)));
    }
    for (const std::string& name : bnp_n) {
      const RunResult rr =
          require_valid(run_scheduler(*make_scheduler(name), g.graph, {}, ws));
      records.push_back(record_from_run(
          rr, "fig3b", v, static_cast<double>(rr.procs_used)));
    }
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("RGNOS processors-used sweep: seed=%llu, %zu graphs per "
                "size, %d worker threads\n\n",
                static_cast<unsigned long long>(ctx.seed), reps.size(),
                ctx.threads);
  const auto render = [&](const std::string& pivot,
                          const std::vector<std::string>& cols,
                          const std::string& title) {
    if (cols.empty()) return;
    PivotStats stats("v", cols);
    sink.fold(pivot, stats);
    emit(ctx, pivot + "_procs", title, stats.render(1));
  };
  render("fig3a", unc_n, "Figure 3(a): average processors used, UNC");
  render("fig3b", bnp_n, "Figure 3(b): average processors used, BNP");
  report_sink(ctx, sink, out);
}

// ---------------------------------------------------------- ext_unc_cs ----

void run_ext_unc_cs(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const int procs = static_cast<int>(cli.get_int("procs", 8));
  const int graphs = static_cast<int>(cli.get_int("graphs", 4));
  const NodeId max_v = static_cast<NodeId>(cli.get_int("max-v", 300));

  Sweep sweep;
  std::vector<double> sizes;
  for (NodeId v = 50; v <= max_v; v += 50) sizes.push_back(v);
  std::vector<double> indices;
  for (int i = 0; i < graphs; ++i) indices.push_back(i);
  sweep.axis("v", sizes).axis("i", indices);

  OutStream out = make_out(ctx, "ext_unc_cs");
  ResultSink sink("ext_unc_cs", out.get());

  const std::vector<std::string> columns{"DSC+Sarkar", "DSC+RCP",
                                         "DCP+Sarkar", "DCP+RCP",
                                         "MCP",        "ETF"};

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const int i = static_cast<int>(pt.param("i"));
    RgnosParams p;
    p.num_nodes = v;
    p.ccr = i % 2 == 0 ? 1.0 : 2.0;
    p.parallelism = 2 + i % 3;
    p.seed = jc.seed;
    const TaskGraph g = rgnos_graph(p);
    SchedWorkspace& ws = bind_workspace(g);

    std::vector<Record> records;
    const auto cell = [&](const std::string& column, Time makespan) {
      Record rec;
      rec.pivot = "ext_unc_cs";
      rec.row = v;
      rec.column = column;
      rec.value = normalized_schedule_length(g, makespan);
      rec.num.emplace_back("length", static_cast<double>(makespan));
      records.push_back(std::move(rec));
    };
    for (const char* unc_name : {"DSC", "DCP"}) {
      const Schedule unc = make_scheduler(unc_name)->run(g, {}, ws);
      const auto clusters = clusters_of(unc);
      const Schedule sarkar = map_clusters_sarkar(g, clusters, procs);
      const Schedule rcp = map_clusters_rcp(g, clusters, procs);
      if (!validate_schedule(sarkar, procs).ok ||
          !validate_schedule(rcp, procs).ok)
        throw std::runtime_error(std::string("invalid mapping for ") +
                                 unc_name);
      cell(std::string(unc_name) + "+Sarkar", sarkar.makespan());
      cell(std::string(unc_name) + "+RCP", rcp.makespan());
    }
    SchedOptions bounded;
    bounded.num_procs = procs;
    for (const char* bnp_name : {"MCP", "ETF"})
      cell(bnp_name,
           make_scheduler(bnp_name)->run(g, bounded, ws).makespan());
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("UNC+CS extension: p=%d, %d graphs per size, seed=%llu\n\n",
                procs, graphs, static_cast<unsigned long long>(ctx.seed));
  PivotStats stats("v", columns);
  sink.fold("ext_unc_cs", stats);
  emit(ctx, "ext_unc_cs",
       "Extension: UNC + cluster scheduling vs direct BNP (avg NSL)",
       stats.render(3));
  report_sink(ctx, sink, out);
}

}  // namespace

void register_rgnos_experiments(ExperimentRegistry& r) {
  r.add({"fig2", "fig2_nsl_rgnos", "rgnos",
         "average NSL vs graph size on RGNOS, UNC/BNP/APN "
         "[--max-nodes, --apn-max-nodes, --full]",
         run_fig2});
  r.add({"fig3", "fig3_procs_rgnos", "rgnos",
         "average processors used vs graph size on RGNOS, UNC/BNP "
         "[--max-nodes, --full]",
         run_fig3});
  r.add({"ext_unc_cs", "", "rgnos",
         "UNC clustering + cluster scheduling vs direct BNP "
         "[--procs, --graphs, --max-v]",
         run_ext_unc_cs});
}

}  // namespace tgs::bench
