#include "experiments/experiments.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <thread>

namespace tgs::bench {

void ExperimentRegistry::add(ExperimentDef def) {
  if (find(def.name) != nullptr)
    throw std::logic_error("duplicate experiment '" + def.name + "'");
  defs_.push_back(std::move(def));
}

const ExperimentDef* ExperimentRegistry::find(const std::string& name) const {
  for (const ExperimentDef& d : defs_)
    if (name == d.name || (!d.alias.empty() && name == d.alias)) return &d;
  return nullptr;
}

const ExperimentRegistry& experiments() {
  static const ExperimentRegistry registry = [] {
    ExperimentRegistry r;
    register_psg_experiments(r);
    register_rgbos_experiments(r);
    register_rgpos_experiments(r);
    register_rgnos_experiments(r);
    register_traced_experiments(r);
    register_ablation_experiments(r);
    register_runtime_experiments(r);
    register_param_experiments(r);
    register_giant_experiments(r);
    return r;
  }();
  return registry;
}

namespace {

void print_experiments() {
  std::printf("experiments:\n");
  std::string family;
  for (const ExperimentDef& e : experiments().all()) {
    if (e.family != family) {
      family = e.family;
      std::printf(" [%s]\n", family.c_str());
    }
    std::printf("  %-16s %s\n", e.name.c_str(), e.description.c_str());
  }
  std::printf("\nshared flags: --experiment --threads --seed --out --algo "
              "--no-timing --no-csv --quiet\n");
}

}  // namespace

int run_cli(const Cli& cli) {
  if (cli.has("list")) {
    print_experiments();
    return 0;
  }

  std::vector<std::string> wanted = cli.get_list("experiment");
  for (const std::string& p : cli.positional()) wanted.push_back(p);
  if (wanted.empty()) {
    std::fprintf(stderr,
                 "usage: %s --experiment=NAME [flags] (--list for help)\n",
                 cli.program().c_str());
    return 2;
  }

  ExpContext ctx;
  ctx.cli = &cli;
  ctx.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1998));
  int threads = static_cast<int>(cli.get_int("threads", 0));
  if (threads <= 0) threads = std::max(1u, std::thread::hardware_concurrency());
  ctx.threads = threads;
  ctx.timing = !cli.has("no-timing");
  ctx.csv = !cli.has("no-csv");
  ctx.quiet = cli.has("quiet");

  for (std::size_t i = 0; i < wanted.size(); ++i) {
    const ExperimentDef* def = experiments().find(wanted[i]);
    if (def == nullptr) {
      std::fprintf(stderr, "unknown experiment '%s'\n\n", wanted[i].c_str());
      print_experiments();
      return 2;
    }
    ctx.append_out = i > 0;
    def->run(ctx);
  }
  return 0;
}

// ------------------------------------------------------------- helpers ----

std::vector<std::string> filtered_names(const Cli& cli,
                                        std::vector<std::string> names) {
  const std::vector<std::string> want = cli.get_list("algo");
  if (want.empty()) return names;
  std::vector<std::string> out;
  for (const std::string& n : names)
    if (std::find(want.begin(), want.end(), n) != want.end()) out.push_back(n);
  return out;
}

void check_algo_filter(
    const Cli& cli, const std::vector<std::vector<std::string>>& known_sets) {
  for (const std::string& want : cli.get_list("algo")) {
    bool known = false;
    for (const auto& set : known_sets)
      known = known ||
              std::find(set.begin(), set.end(), want) != set.end();
    if (!known)
      throw std::invalid_argument("--algo=" + want +
                                  " matches no algorithm of this experiment");
  }
}

double num_field(const Record& rec, const std::string& key, double fallback) {
  for (const auto& [k, v] : rec.num)
    if (k == key) return v;
  return fallback;
}

OutStream make_out(const ExpContext& ctx, const std::string& experiment) {
  const Cli& cli = *ctx.cli;
  OutStream out;
  const std::string spec = cli.get("out", "");
  if (spec == "none") return out;
  if (spec == "-") {
    out.writer = std::make_unique<JsonlWriter>(std::cout);
    return out;
  }
  std::string path = spec;
  bool append = ctx.append_out;
  if (path.empty()) {
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    path = "bench_results/" + experiment + ".jsonl";
    append = false;  // per-experiment default files never collide
  }
  out.writer = std::make_unique<JsonlWriter>(path, append);
  if (!out.writer->ok()) {
    std::fprintf(stderr, "warning: cannot write %s; JSONL disabled\n",
                 path.c_str());
    out.writer.reset();
    return out;
  }
  out.path = path;
  return out;
}

void emit(const ExpContext& ctx, const std::string& name,
          const std::string& title, const Table& table) {
  if (!ctx.quiet)
    std::printf("== %s ==\n%s\n", title.c_str(), table.to_ascii().c_str());
  if (!ctx.csv) return;
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const std::string path = "bench_results/" + name + ".csv";
  if (!table.write_csv(path))
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  else if (!ctx.quiet)
    std::printf("[csv: %s]\n\n", path.c_str());
}

void report_sink(const ExpContext& ctx, const ResultSink& sink,
                 const OutStream& out) {
  if (!ctx.quiet && !out.path.empty())
    std::printf("[jsonl: %s]\n", out.path.c_str());
  if (sink.num_errors() > 0)
    std::fprintf(stderr, "warning: %zu job(s) failed; first error: %s\n",
                 sink.num_errors(), sink.first_error().c_str());
}

std::vector<std::pair<double, int>> rgnos_reps(bool full) {
  if (full) {
    std::vector<std::pair<double, int>> all;
    for (double ccr : {0.1, 0.5, 1.0, 2.0, 10.0})
      for (int par : {1, 2, 3, 4, 5}) all.emplace_back(ccr, par);
    return all;
  }
  return {{0.1, 3}, {1.0, 1}, {1.0, 3}, {2.0, 5}, {10.0, 3}};
}

Sweep rgnos_size_sweep(NodeId max_nodes, std::size_t num_reps) {
  Sweep sweep;
  std::vector<double> sizes;
  for (NodeId v = 50; v <= max_nodes; v += 50) sizes.push_back(v);
  std::vector<double> grid;
  for (std::size_t i = 0; i < num_reps; ++i) grid.push_back(i);
  sweep.axis("v", sizes).axis("grid", grid);
  return sweep;
}

RgnosJobGraph rgnos_graph_at(const JobContext& jc, const SweepPoint& pt,
                             const std::vector<std::pair<double, int>>& reps) {
  const auto& [ccr, par] = reps[static_cast<std::size_t>(pt.param("grid"))];
  RgnosParams params;
  params.num_nodes = static_cast<NodeId>(pt.param("v"));
  params.ccr = ccr;
  params.parallelism = par;
  params.seed = jc.seed;
  return {rgnos_graph(params), ccr, par};
}

const RunResult& require_valid(const RunResult& r) {
  if (!r.valid)
    throw std::runtime_error("invalid " + r.algo + " schedule: " + r.error);
  return r;
}

SchedWorkspace& bind_workspace(const TaskGraph& g) {
  static thread_local SchedWorkspace ws;
  ws.begin_graph(g);
  return ws;
}

}  // namespace tgs::bench
