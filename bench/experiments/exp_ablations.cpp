// Ablation experiments (paper §6.4.1/§7 observations + DESIGN notes):
//
//  ablate_bb        -- how much of the branch-and-bound search does the
//                      pruning machinery (bounds + incumbent seeding +
//                      duplicate/symmetry elimination) save? Full search
//                      vs bounds-disabled enumeration on small RGBOS
//                      instances. Both searches use deterministic
//                      node-expansion budgets and the round-synchronous
//                      parallel B&B (--bb-threads), so states-expanded
//                      counts are bit-reproducible at any thread count.
//  ablate_ccr       -- "degradations/NSL in general increase with CCRs":
//                      NSL of all 15 algorithms over CCR at fixed v.
//  ablate_insertion -- "insertion is better than non-insertion": HLFET vs
//                      ISH (identical priorities, only hole-filling
//                      differs) and ETF vs MCP as a cross-check.
//  ablate_priority  -- static vs dynamic priorities and CP-based vs
//                      non-CP-based groups, NSL and scheduling time.
//  ablate_topology  -- "all algorithms perform better on networks with
//                      more communication links": APN NSL on ring8 <
//                      mesh2x4 < hcube3 < clique8.
//
// Seed pairing: ablate_ccr and ablate_topology key each graph's stream by
// the replication index ONLY (derive_seed(master, i)), so every CCR row /
// machine sees the same underlying graph suite -- the property the paired
// comparison rests on. The other ablations use the per-job stream.
#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "experiments/experiments.h"
#include "tgs/gen/rgbos.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/util/rng.h"

namespace tgs::bench {
namespace {

// ----------------------------------------------------------- ablate_bb ----

void run_ablate_bb(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 14));
  const std::uint64_t full_budget =
      static_cast<std::uint64_t>(cli.get_int("bb-nodes", 250'000));
  const std::uint64_t naive_budget =
      static_cast<std::uint64_t>(cli.get_int("naive-nodes", 4'000'000));
  const int bb_threads =
      static_cast<int>(cli.get_int("bb-threads", ctx.threads));

  Sweep sweep;
  std::vector<double> sizes;
  for (NodeId v = 10; v <= max_nodes; v += 2) sizes.push_back(v);
  sweep.axis("v", sizes).axis("ccr", {0.1, 10.0});

  OutStream out = make_out(ctx, "ablate_bb");
  ResultSink sink("ablate_bb", out.get());

  const std::vector<std::string> columns{"optimal",      "states(full)",
                                         "time(full)",   "states(naive)",
                                         "time(naive)",  "speedup",
                                         "proven(both)"};

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const double ccr = pt.param("ccr");
    const TaskGraph g = rgbos_graph(ccr, v, jc.master_seed);
    const std::string pivot = "ccr" + Table::fmt(ccr, 1);
    SchedWorkspace& ws = bind_workspace(g);

    SchedOptions heur_opt;
    heur_opt.num_procs = 2;
    Time best_heur = kTimeInf;
    for (const auto& a : make_bnp_schedulers())
      best_heur = std::min(best_heur, a->run(g, heur_opt, ws).makespan());

    BBOptions full;
    full.num_procs = 2;
    full.num_threads = bb_threads;  // round-synchronous: counts stay exact
    full.time_limit_seconds = 0.0;
    full.max_nodes = full_budget;
    full.initial_upper_bound = best_heur;
    const BBResult with = branch_and_bound(g, full);

    BBOptions naive = full;
    naive.disable_bounds = true;
    naive.initial_upper_bound = 0;
    naive.max_nodes = naive_budget;
    const BBResult without = branch_and_bound(g, naive);

    if (with.proven_optimal && without.proven_optimal &&
        with.length != without.length)
      throw std::runtime_error("pruned and exhaustive optima disagree at v=" +
                               std::to_string(v));
    // When the budget runs dry before any complete schedule, the search
    // reports the seeded upper bound as its length (never 0), so the
    // "optimal" column is always the best value actually proven reachable.
    const Time shown = with.length;

    std::vector<Record> records;
    const auto cell = [&](const std::string& column, double value) {
      Record rec;
      rec.pivot = pivot;
      rec.row = v;
      rec.column = column;
      rec.value = value;
      records.push_back(std::move(rec));
    };
    cell("optimal", static_cast<double>(shown));
    cell("states(full)", static_cast<double>(with.nodes_expanded));
    cell("time(full)", ctx.time_value(with.seconds));
    cell("states(naive)", static_cast<double>(without.nodes_expanded));
    cell("time(naive)", ctx.time_value(without.seconds));
    cell("speedup",
         static_cast<double>(without.nodes_expanded) /
             static_cast<double>(std::max<std::uint64_t>(
                 1, with.nodes_expanded)));
    cell("proven(both)",
         with.proven_optimal && without.proven_optimal ? 1.0 : 0.0);
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("Branch-and-bound pruning ablation: seed=%llu, p=2, budgets "
                "%llu/%llu states\n\n",
                static_cast<unsigned long long>(ctx.seed),
                static_cast<unsigned long long>(full_budget),
                static_cast<unsigned long long>(naive_budget));
  for (const double ccr : {0.1, 10.0}) {
    const std::string pivot = "ccr" + Table::fmt(ccr, 1);
    PivotStats stats("v", columns);
    sink.fold(pivot, stats);
    emit(ctx, "ablate_bb_" + pivot,
         "Ablation: B&B states, pruning on vs exhaustive, CCR=" +
             Table::fmt(ccr, 1),
         stats.render(1));
  }
  report_sink(ctx, sink, out);
}

// ---------------------------------------------------------- ablate_ccr ----

void run_ablate_ccr(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const int graphs = static_cast<int>(cli.get_int("graphs", 4));
  const NodeId nodes = static_cast<NodeId>(cli.get_int("nodes", 200));
  check_algo_filter(cli, {unc_names(), bnp_names(), apn_names()});
  const std::vector<std::string> unc_n = filtered_names(cli, unc_names());
  const std::vector<std::string> bnp_n = filtered_names(cli, bnp_names());
  const std::vector<std::string> apn_n = filtered_names(cli, apn_names());

  Sweep sweep;
  std::vector<double> indices;
  for (int i = 0; i < graphs; ++i) indices.push_back(i);
  sweep.axis("ccr", {0.1, 0.5, 1.0, 2.0, 10.0}).axis("i", indices);

  OutStream out = make_out(ctx, "ablate_ccr");
  ResultSink sink("ablate_ccr", out.get());
  const RoutingTable routes{Topology::hypercube(3)};

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const double ccr = pt.param("ccr");
    const int i = static_cast<int>(pt.param("i"));
    RgnosParams p;
    p.num_nodes = nodes;
    p.ccr = ccr;
    p.parallelism = 1 + i % 5;
    // Keyed by i only: CCR rows stay paired on the same base structure.
    p.seed = derive_seed(jc.master_seed, static_cast<std::uint64_t>(i));
    const TaskGraph g = rgnos_graph(p);
    SchedWorkspace& ws = bind_workspace(g);

    std::vector<Record> records;
    for (const std::string& name : unc_n) {
      const RunResult rr = run_scheduler(*make_scheduler(name), g, {}, ws);
      records.push_back(record_from_run(rr, "ablate_ccr", ccr, rr.nsl));
    }
    for (const std::string& name : bnp_n) {
      const RunResult rr = run_scheduler(*make_scheduler(name), g, {}, ws);
      records.push_back(record_from_run(rr, "ablate_ccr", ccr, rr.nsl));
    }
    for (const std::string& name : apn_n) {
      RunResult rr =
          run_apn_scheduler(*make_apn_scheduler(name), g, routes, ws);
      rr.algo += "(APN)";
      records.push_back(record_from_run(rr, "ablate_ccr", ccr, rr.nsl));
    }
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("CCR sensitivity: %d RGNOS graphs (v=%u) per CCR, seed=%llu\n"
                "Expect every column to increase down the table.\n\n",
                graphs, nodes, static_cast<unsigned long long>(ctx.seed));
  std::vector<std::string> columns = unc_n;
  for (const std::string& n : bnp_n) columns.push_back(n);
  for (const std::string& n : apn_n) columns.push_back(n + "(APN)");
  PivotStats stats("CCR", columns);
  sink.fold("ablate_ccr", stats);
  emit(ctx, "ablate_ccr", "Ablation: average NSL vs CCR (all 15 algorithms)",
       stats.render(3));
  report_sink(ctx, sink, out);
}

// ---------------------------------------------------- ablate_insertion ----

void run_ablate_insertion(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const int graphs = static_cast<int>(cli.get_int("graphs", 8));
  const NodeId nodes = static_cast<NodeId>(cli.get_int("nodes", 150));

  Sweep sweep;
  std::vector<double> indices;
  for (int i = 0; i < graphs; ++i) indices.push_back(i);
  sweep.axis("ccr", {0.1, 0.5, 1.0, 2.0, 10.0}).axis("i", indices);

  OutStream out = make_out(ctx, "ablate_insertion");
  ResultSink sink("ablate_insertion", out.get());

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const double ccr = pt.param("ccr");
    const int i = static_cast<int>(pt.param("i"));
    RgnosParams p;
    p.num_nodes = nodes;
    p.ccr = ccr;
    p.parallelism = 1 + i % 5;
    p.seed = jc.seed;
    const TaskGraph g = rgnos_graph(p);
    SchedWorkspace& ws = bind_workspace(g);
    const double lh = static_cast<double>(
        make_scheduler("HLFET")->run(g, {}, ws).makespan());
    const double li =
        static_cast<double>(make_scheduler("ISH")->run(g, {}, ws).makespan());
    const double le =
        static_cast<double>(make_scheduler("ETF")->run(g, {}, ws).makespan());
    const double lm =
        static_cast<double>(make_scheduler("MCP")->run(g, {}, ws).makespan());

    std::vector<Record> records;
    const auto cell = [&](const std::string& column, double value) {
      Record rec;
      rec.pivot = "ablate_insertion";
      rec.row = ccr;
      rec.column = column;
      rec.value = value;
      records.push_back(std::move(rec));
    };
    cell("HLFET/ISH", lh / li);
    cell("ETF/MCP", le / lm);
    // Per-graph 0/100 indicators; the pivot mean is the percentage.
    cell("ISH wins %", li < lh ? 100.0 : 0.0);
    cell("ties %", li == lh ? 100.0 : 0.0);
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("Insertion ablation: %d RGNOS graphs (v=%u) per CCR, "
                "seed=%llu\nRatios > 1.0 mean the insertion-based algorithm "
                "wins.\n\n",
                graphs, nodes, static_cast<unsigned long long>(ctx.seed));
  PivotStats stats("CCR", {"HLFET/ISH", "ETF/MCP", "ISH wins %", "ties %"});
  sink.fold("ablate_insertion", stats);
  emit(ctx, "ablate_insertion", "Ablation: insertion vs non-insertion",
       stats.render(3));
  report_sink(ctx, sink, out);
}

// ----------------------------------------------------- ablate_priority ----

void run_ablate_priority(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const int graphs = static_cast<int>(cli.get_int("graphs", 6));
  const NodeId nodes = static_cast<NodeId>(cli.get_int("nodes", 150));

  const std::vector<std::string> columns{"static(HLFET,ISH)",
                                         "dynamic(ETF,DLS)", "MCP",
                                         "CP-based(UNC)", "non-CP(UNC)"};

  Sweep sweep;
  std::vector<double> indices;
  for (int i = 0; i < graphs; ++i) indices.push_back(i);
  sweep.axis("ccr", {0.1, 1.0, 10.0}).axis("i", indices);

  OutStream out = make_out(ctx, "ablate_priority");
  ResultSink sink("ablate_priority", out.get());

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const double ccr = pt.param("ccr");
    const int i = static_cast<int>(pt.param("i"));
    RgnosParams p;
    p.num_nodes = nodes;
    p.ccr = ccr;
    p.parallelism = 1 + i % 5;
    p.seed = jc.seed;
    const TaskGraph g = rgnos_graph(p);
    SchedWorkspace& ws = bind_workspace(g);

    std::vector<Record> records;
    const auto group = [&](const std::vector<const char*>& names,
                           const char* column) {
      for (const char* n : names) {
        const RunResult r = run_scheduler(*make_scheduler(n), g, {}, ws);
        Record nsl;
        nsl.pivot = "priority_nsl";
        nsl.row = ccr;
        nsl.column = column;
        nsl.value = r.nsl;
        records.push_back(std::move(nsl));
        Record ms;
        ms.pivot = "priority_time";
        ms.row = ccr;
        ms.column = column;
        ms.value = ctx.time_value(r.seconds * 1e3);
        records.push_back(std::move(ms));
      }
    };
    group({"HLFET", "ISH"}, "static(HLFET,ISH)");
    group({"ETF", "DLS"}, "dynamic(ETF,DLS)");
    group({"MCP"}, "MCP");
    group({"DCP", "DSC", "MD"}, "CP-based(UNC)");
    group({"EZ", "LC"}, "non-CP(UNC)");
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("Priority ablation: %d RGNOS graphs (v=%u) per CCR, "
                "seed=%llu\n\n",
                graphs, nodes, static_cast<unsigned long long>(ctx.seed));
  PivotStats nsl("CCR", columns);
  sink.fold("priority_nsl", nsl);
  emit(ctx, "ablate_priority_nsl",
       "Ablation: priority scheme, average NSL per group", nsl.render(3));
  PivotStats time_ms("CCR", columns);
  sink.fold("priority_time", time_ms);
  emit(ctx, "ablate_priority_time",
       "Ablation: priority scheme, average scheduling time (ms)",
       time_ms.render(2));
  report_sink(ctx, sink, out);
}

// ----------------------------------------------------- ablate_topology ----

void run_ablate_topology(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const int graphs = static_cast<int>(cli.get_int("graphs", 4));
  const NodeId nodes = static_cast<NodeId>(cli.get_int("nodes", 120));
  check_algo_filter(cli, {apn_names()});
  const std::vector<std::string> apn_n = filtered_names(cli, apn_names());

  const auto make_machine = [](const std::string& label) {
    if (label == "ring8") return RoutingTable{Topology::ring(8)};
    if (label == "mesh2x4") return RoutingTable{Topology::mesh(2, 4)};
    if (label == "hcube3") return RoutingTable{Topology::hypercube(3)};
    return RoutingTable{Topology::fully_connected(8)};
  };
  // Keyed by link count (the pivot rows), labelled by machine name.
  const std::vector<double> links{8, 10, 12, 28};
  const std::vector<std::string> machine_names{"ring8", "mesh2x4", "hcube3",
                                               "clique8"};

  Sweep sweep;
  std::vector<double> indices;
  for (int i = 0; i < graphs; ++i) indices.push_back(i);
  sweep.axis("machine", links, machine_names).axis("i", indices);

  OutStream out = make_out(ctx, "ablate_topology");
  ResultSink sink("ablate_topology", out.get());

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const int i = static_cast<int>(pt.param("i"));
    const RoutingTable routes = make_machine(pt.label("machine"));
    RgnosParams p;
    p.num_nodes = nodes;
    p.ccr = i % 2 == 0 ? 1.0 : 2.0;
    p.parallelism = 2 + i % 3;
    // Keyed by i only: every machine must see the same graph suite.
    p.seed = derive_seed(jc.master_seed, static_cast<std::uint64_t>(i));
    const TaskGraph g = rgnos_graph(p);
    SchedWorkspace& ws = bind_workspace(g);

    std::vector<Record> records;
    for (const std::string& name : apn_n) {
      const RunResult rr =
          run_apn_scheduler(*make_apn_scheduler(name), g, routes, ws);
      if (!rr.valid)
        throw std::runtime_error("invalid " + rr.algo + " schedule on " +
                                 pt.label("machine") + ": " + rr.error);
      Record rec =
          record_from_run(rr, "ablate_topology", pt.param("machine"), rr.nsl);
      rec.str.emplace_back("machine", pt.label("machine"));
      records.push_back(std::move(rec));
    }
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("Topology ablation: %d RGNOS graphs (v=%u) per machine, "
                "seed=%llu.\nRows are keyed by link count: 8=ring, "
                "10=mesh2x4, 12=hcube3, 28=clique8.\nExpect NSL to fall as "
                "links grow.\n\n",
                graphs, nodes, static_cast<unsigned long long>(ctx.seed));
  PivotStats stats("links", apn_n);
  sink.fold("ablate_topology", stats);
  emit(ctx, "ablate_topology", "Ablation: APN NSL vs network connectivity",
       stats.render(3));
  report_sink(ctx, sink, out);
}

}  // namespace

void register_ablation_experiments(ExperimentRegistry& r) {
  r.add({"ablate_bb", "", "ablations",
         "B&B pruning machinery: states expanded, full vs exhaustive "
         "[--max-nodes, --bb-nodes, --naive-nodes, --bb-threads]",
         run_ablate_bb});
  r.add({"ablate_ccr", "", "ablations",
         "NSL of all 15 algorithms vs CCR, paired graph suite "
         "[--graphs, --nodes]",
         run_ablate_ccr});
  r.add({"ablate_insertion", "", "ablations",
         "insertion vs non-insertion: HLFET/ISH and ETF/MCP ratios "
         "[--graphs, --nodes]",
         run_ablate_insertion});
  r.add({"ablate_priority", "", "ablations",
         "static vs dynamic priority and CP vs non-CP groups "
         "[--graphs, --nodes]",
         run_ablate_priority});
  r.add({"ablate_topology", "", "ablations",
         "APN NSL vs network connectivity, paired graph suite "
         "[--graphs, --nodes]",
         run_ablate_topology});
}

}  // namespace tgs::bench
