// Running-time experiments. Wall-clock measurements go through
// ExpContext::time_value(), so --no-timing zeroes them and the JSONL
// stream becomes fully deterministic (the determinism tests run these
// experiments that way); length/procs/nsl fields are reproducible either
// way.
//
//  table6 -- average scheduling times of all 15 algorithms on the RGNOS
//            benchmarks per graph size (paper §6.4.3). Paper shape
//            (relative ranking; absolute numbers are machine-bound):
//            BNP: MCP fastest; DLS and ETF were the slow BNP algorithms
//            until the incremental pair selector (docs/perf.md). UNC: LC
//            fastest, then DSC, EZ; DCP and MD slowest. APN: BU fastest;
//            DLS slowest. --reps > 1 times each algorithm that many times
//            per graph and keeps the minimum, making the cells robust to
//            scheduler noise (the docs/perf.md speedups use --reps=5).
//  micro  -- per-call scheduling time of every algorithm on fixed RGNOS
//            graphs: a warm-up run, then --reps timed runs, cell = the
//            minimum (median and mean are recorded alongside in the
//            JSONL stream).
#include <algorithm>
#include <cstdio>

#include "experiments/experiments.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/util/rng.h"

namespace tgs::bench {
namespace {

/// Median of an unsorted sample (empty -> 0).
double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : (xs[mid - 1] + xs[mid]) / 2.0;
}

// -------------------------------------------------------------- table6 ----

void run_table6(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 500));
  const int time_reps = std::max(1, static_cast<int>(cli.get_int("reps", 1)));
  const auto reps = rgnos_reps(cli.has("full"));
  check_algo_filter(cli, {unc_names(), bnp_names(), apn_names()});
  const std::vector<std::string> unc_n = filtered_names(cli, unc_names());
  const std::vector<std::string> bnp_n = filtered_names(cli, bnp_names());
  const std::vector<std::string> apn_n = filtered_names(cli, apn_names());

  const Sweep sweep = rgnos_size_sweep(max_nodes, reps.size());

  OutStream out = make_out(ctx, "table6");
  ResultSink sink("table6", out.get());
  const RoutingTable routes{Topology::hypercube(3)};

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const RgnosJobGraph g = rgnos_graph_at(jc, pt, reps);
    SchedWorkspace& ws = bind_workspace(g.graph);
    // Pre-warm the lazily computed shared attributes so no algorithm's
    // timed run is charged for filling the cache the others then reuse --
    // the table compares scheduling bodies, uniformly.
    ws.attrs().static_levels();
    ws.attrs().alap_times();  // also fills b-levels + critical path

    // Run once (the record everything else derives from), then --reps - 1
    // more times keeping the fastest observation.
    const auto timed = [&](const auto& once) {
      RunResult best = require_valid(once());
      for (int i = 1; i < time_reps; ++i)
        best.seconds = std::min(best.seconds, require_valid(once()).seconds);
      return best;
    };

    std::vector<Record> records;
    for (const std::string& name : unc_n) {
      const RunResult rr = timed([&] {
        return run_scheduler(*make_scheduler(name), g.graph, {}, ws);
      });
      records.push_back(
          record_from_run(rr, "table6", v, ctx.time_value(rr.seconds)));
    }
    for (const std::string& name : bnp_n) {
      const RunResult rr = timed([&] {
        return run_scheduler(*make_scheduler(name), g.graph, {}, ws);
      });
      records.push_back(
          record_from_run(rr, "table6", v, ctx.time_value(rr.seconds)));
    }
    for (const std::string& name : apn_n) {
      RunResult rr = timed([&] {
        return run_apn_scheduler(*make_apn_scheduler(name), g.graph, routes,
                                 ws);
      });
      rr.algo += "(APN)";
      records.push_back(
          record_from_run(rr, "table6", v, ctx.time_value(rr.seconds)));
    }
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("RGNOS running times: seed=%llu, %zu graphs per size, min of "
                "%d timing rep(s), APN on hcube3, %d worker threads\n\n",
                static_cast<unsigned long long>(ctx.seed), reps.size(),
                time_reps, ctx.threads);
  std::vector<std::string> columns = unc_n;
  for (const std::string& n : bnp_n) columns.push_back(n);
  for (const std::string& n : apn_n) columns.push_back(n + "(APN)");
  PivotStats stats("v", columns);
  sink.fold("table6", stats);
  emit(ctx, "table6_runtimes",
       "Table 6: average scheduling times (seconds) on RGNOS",
       stats.render(4));
  report_sink(ctx, sink, out);
}

// --------------------------------------------------------------- micro ----

void run_micro(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const int reps = std::max(1, static_cast<int>(cli.get_int("reps", 5)));
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 300));
  check_algo_filter(cli, {unc_names(), bnp_names(), apn_names()});

  struct Algo {
    enum Kind { kSched, kApn } kind;
    std::string name;   // registry name
    std::string label;  // pivot column (APN DLS disambiguated)
  };
  std::vector<Algo> algos;
  for (const std::string& n : filtered_names(cli, bnp_names()))
    algos.push_back({Algo::kSched, n, n});
  for (const std::string& n : filtered_names(cli, unc_names()))
    algos.push_back({Algo::kSched, n, n});
  for (const std::string& n : filtered_names(cli, apn_names()))
    algos.push_back({Algo::kApn, n, n == "DLS" ? "DLS-APN" : n});

  Sweep sweep;
  std::vector<double> indices;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < algos.size(); ++i) {
    indices.push_back(i);
    labels.push_back(algos[i].label);
  }
  // Fixed probe sizes 100, 300, 500, ... up to --max-nodes (default keeps
  // the historical {100, 300} pair).
  std::vector<double> sizes{100};
  for (NodeId v = 300; v <= max_nodes; v += 200) sizes.push_back(v);
  sweep.axis("v", sizes).axis("algo", indices, labels);

  OutStream out = make_out(ctx, "micro_algorithms");
  ResultSink sink("micro_algorithms", out.get());
  const RoutingTable routes{Topology::hypercube(3)};

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const Algo& algo = algos[static_cast<std::size_t>(pt.param("algo"))];
    std::vector<Record> records;
    // APN message scheduling is quadratic-plus; measure at v=100 only.
    if (algo.kind == Algo::kApn && v != 100) return records;

    RgnosParams params;
    params.num_nodes = v;
    params.ccr = 1.0;
    params.parallelism = 3;
    params.seed = derive_seed(jc.master_seed, v);  // same graph for all algos
    const TaskGraph g = rgnos_graph(params);
    SchedWorkspace& ws = bind_workspace(g);

    RunResult rr;
    std::vector<double> samples_ms;
    samples_ms.reserve(static_cast<std::size_t>(reps));
    for (int i = -1; i < reps; ++i) {  // i == -1 is the warm-up
      const RunResult sample =
          algo.kind == Algo::kApn
              ? run_apn_scheduler(*make_apn_scheduler(algo.name), g, routes,
                                  ws)
              : run_scheduler(*make_scheduler(algo.name), g, {}, ws);
      if (i < 0) {
        rr = sample;
        continue;
      }
      samples_ms.push_back(sample.seconds * 1e3);
    }
    const double best_ms =
        *std::min_element(samples_ms.begin(), samples_ms.end());
    double sum_ms = 0.0;
    for (double ms : samples_ms) sum_ms += ms;
    rr.algo = pt.label("algo");
    Record rec = record_from_run(rr, "micro", v, ctx.time_value(best_ms));
    // The minimum is the noise floor; the median shows whether the floor
    // is representative, which is what the docs/perf.md claims cite.
    rec.num.emplace_back("median_ms", ctx.time_value(median_of(samples_ms)));
    rec.num.emplace_back("mean_ms", ctx.time_value(sum_ms / reps));
    rec.num.emplace_back("reps", reps);
    records.push_back(std::move(rec));
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("Scheduling-time micro benchmark: seed=%llu, best of %d runs "
                "per cell (ms; median/mean in JSONL), %d worker threads\n\n",
                static_cast<unsigned long long>(ctx.seed), reps, ctx.threads);
  std::vector<std::string> columns;
  for (const Algo& a : algos) columns.push_back(a.label);
  PivotStats stats("v", columns);
  sink.fold("micro", stats);
  emit(ctx, "tgs_bench_micro", "Scheduling time per call (ms, min of reps)",
       stats.render(3));
  report_sink(ctx, sink, out);
}

}  // namespace

void register_runtime_experiments(ExperimentRegistry& r) {
  r.add({"table6", "table6_runtimes", "runtimes",
         "average scheduling times of all 15 algorithms on RGNOS "
         "[--max-nodes, --full, --reps]",
         run_table6});
  r.add({"micro", "micro_algorithms", "runtimes",
         "per-call scheduling time of every algorithm "
         "[--reps, --max-nodes]",
         run_micro});
}

}  // namespace tgs::bench
