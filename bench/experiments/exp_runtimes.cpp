// Running-time experiments. Wall-clock measurements go through
// ExpContext::time_value(), so --no-timing zeroes them and the JSONL
// stream becomes fully deterministic (the determinism tests run these
// experiments that way); length/procs/nsl fields are reproducible either
// way.
//
//  table6 -- average scheduling times of all 15 algorithms on the RGNOS
//            benchmarks per graph size (paper §6.4.3). Paper shape
//            (relative ranking; absolute numbers are machine-bound):
//            BNP: MCP fastest, DLS and ETF slowest. UNC: LC fastest, then
//            DSC, EZ; DCP and MD slowest. APN: BU fastest; DLS slowest.
//  micro  -- per-call scheduling time of every algorithm on two fixed
//            RGNOS graphs: a warm-up run, then --reps timed runs, cell =
//            the minimum.
#include <algorithm>
#include <cstdio>

#include "experiments/experiments.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/util/rng.h"

namespace tgs::bench {
namespace {

// -------------------------------------------------------------- table6 ----

void run_table6(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 500));
  const auto reps = rgnos_reps(cli.has("full"));
  check_algo_filter(cli, {unc_names(), bnp_names(), apn_names()});
  const std::vector<std::string> unc_n = filtered_names(cli, unc_names());
  const std::vector<std::string> bnp_n = filtered_names(cli, bnp_names());
  const std::vector<std::string> apn_n = filtered_names(cli, apn_names());

  const Sweep sweep = rgnos_size_sweep(max_nodes, reps.size());

  OutStream out = make_out(ctx, "table6");
  ResultSink sink("table6", out.get());
  const RoutingTable routes{Topology::hypercube(3)};

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const RgnosJobGraph g = rgnos_graph_at(jc, pt, reps);

    std::vector<Record> records;
    for (const std::string& name : unc_n) {
      const RunResult rr =
          require_valid(run_scheduler(*make_scheduler(name), g.graph, {}));
      records.push_back(
          record_from_run(rr, "table6", v, ctx.time_value(rr.seconds)));
    }
    for (const std::string& name : bnp_n) {
      const RunResult rr =
          require_valid(run_scheduler(*make_scheduler(name), g.graph, {}));
      records.push_back(
          record_from_run(rr, "table6", v, ctx.time_value(rr.seconds)));
    }
    for (const std::string& name : apn_n) {
      RunResult rr = require_valid(
          run_apn_scheduler(*make_apn_scheduler(name), g.graph, routes));
      rr.algo += "(APN)";
      records.push_back(
          record_from_run(rr, "table6", v, ctx.time_value(rr.seconds)));
    }
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("RGNOS running times: seed=%llu, %zu graphs per size, APN on "
                "hcube3, %d worker threads\n\n",
                static_cast<unsigned long long>(ctx.seed), reps.size(),
                ctx.threads);
  std::vector<std::string> columns = unc_n;
  for (const std::string& n : bnp_n) columns.push_back(n);
  for (const std::string& n : apn_n) columns.push_back(n + "(APN)");
  PivotStats stats("v", columns);
  sink.fold("table6", stats);
  emit(ctx, "table6_runtimes",
       "Table 6: average scheduling times (seconds) on RGNOS",
       stats.render(4));
  report_sink(ctx, sink, out);
}

// --------------------------------------------------------------- micro ----

void run_micro(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const int reps = std::max(1, static_cast<int>(cli.get_int("reps", 5)));
  check_algo_filter(cli, {unc_names(), bnp_names(), apn_names()});

  struct Algo {
    enum Kind { kSched, kApn } kind;
    std::string name;   // registry name
    std::string label;  // pivot column (APN DLS disambiguated)
  };
  std::vector<Algo> algos;
  for (const std::string& n : filtered_names(cli, bnp_names()))
    algos.push_back({Algo::kSched, n, n});
  for (const std::string& n : filtered_names(cli, unc_names()))
    algos.push_back({Algo::kSched, n, n});
  for (const std::string& n : filtered_names(cli, apn_names()))
    algos.push_back({Algo::kApn, n, n == "DLS" ? "DLS-APN" : n});

  Sweep sweep;
  std::vector<double> indices;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < algos.size(); ++i) {
    indices.push_back(i);
    labels.push_back(algos[i].label);
  }
  sweep.axis("v", {100, 300}).axis("algo", indices, labels);

  OutStream out = make_out(ctx, "micro_algorithms");
  ResultSink sink("micro_algorithms", out.get());
  const RoutingTable routes{Topology::hypercube(3)};

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const Algo& algo = algos[static_cast<std::size_t>(pt.param("algo"))];
    std::vector<Record> records;
    // APN message scheduling is quadratic-plus; measure at v=100 only.
    if (algo.kind == Algo::kApn && v != 100) return records;

    RgnosParams params;
    params.num_nodes = v;
    params.ccr = 1.0;
    params.parallelism = 3;
    params.seed = derive_seed(jc.master_seed, v);  // same graph for all algos
    const TaskGraph g = rgnos_graph(params);

    RunResult rr;
    double best_ms = 0.0, sum_ms = 0.0;
    for (int i = -1; i < reps; ++i) {  // i == -1 is the warm-up
      const RunResult sample =
          algo.kind == Algo::kApn
              ? run_apn_scheduler(*make_apn_scheduler(algo.name), g, routes)
              : run_scheduler(*make_scheduler(algo.name), g, {});
      if (i < 0) {
        rr = sample;
        continue;
      }
      const double ms = sample.seconds * 1e3;
      best_ms = i == 0 ? ms : std::min(best_ms, ms);
      sum_ms += ms;
    }
    rr.algo = pt.label("algo");
    Record rec = record_from_run(rr, "micro", v, ctx.time_value(best_ms));
    rec.num.emplace_back("mean_ms", ctx.time_value(sum_ms / reps));
    rec.num.emplace_back("reps", reps);
    records.push_back(std::move(rec));
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("Scheduling-time micro benchmark: seed=%llu, best of %d runs "
                "per cell (ms), %d worker threads\n\n",
                static_cast<unsigned long long>(ctx.seed), reps, ctx.threads);
  std::vector<std::string> columns;
  for (const Algo& a : algos) columns.push_back(a.label);
  PivotStats stats("v", columns);
  sink.fold("micro", stats);
  emit(ctx, "tgs_bench_micro", "Scheduling time per call (ms, min of reps)",
       stats.render(3));
  report_sink(ctx, sink, out);
}

}  // namespace

void register_runtime_experiments(ExperimentRegistry& r) {
  r.add({"table6", "table6_runtimes", "runtimes",
         "average scheduling times of all 15 algorithms on RGNOS "
         "[--max-nodes, --full]",
         run_table6});
  r.add({"micro", "micro_algorithms", "runtimes",
         "per-call scheduling time of every algorithm "
         "[--reps]",
         run_micro});
}

}  // namespace tgs::bench
