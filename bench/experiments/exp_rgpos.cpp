// Tables 4 and 5 (paper §6.3): percentage degradation from the
// pre-determined optimal schedule lengths on the RGPOS benchmarks
// (v = 50..500 step 50, CCR in {0.1, 1, 10}).
//
// table4 measures the UNC algorithms (unbounded, width_guard plants so
// the planted optimum is a universal lower bound); table5 the BNP
// algorithms bounded to the planted processor count.
//
// Paper shape: at CCR 0.1 DCP finds the planted optimum for more than
// half the cases with <2% average degradation; degradations increase with
// CCR; at CCR 10 hardly any algorithm finds an optimum. The BNP
// algorithms produce similar numbers of optima and degradations.
#include <cmath>
#include <cstdio>
#include <map>

#include "experiments/experiments.h"
#include "tgs/gen/rgpos.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/sched/metrics.h"
#include "tgs/util/rng.h"
#include "tgs/util/stats.h"

namespace tgs::bench {
namespace {

void run_table_rgpos(const ExpContext& ctx, bool unc) {
  const Cli& cli = *ctx.cli;
  const std::string exp = unc ? "table4" : "table5";
  const int procs = static_cast<int>(cli.get_int("procs", 4));
  const NodeId max_v = static_cast<NodeId>(cli.get_int("max-v", 500));
  check_algo_filter(cli, {unc ? unc_names() : bnp_names()});
  const std::vector<std::string> names =
      filtered_names(cli, unc ? unc_names() : bnp_names());

  Sweep sweep;
  sweep.axis("ccr", {kRgposCcrs[0], kRgposCcrs[1], kRgposCcrs[2]});
  std::vector<double> sizes;
  for (NodeId v = 50; v <= max_v; v += 50) sizes.push_back(v);
  sweep.axis("v", sizes);

  OutStream out = make_out(ctx, exp);
  ResultSink sink(exp, out.get());

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const double ccr = pt.param("ccr");
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    RgposParams params;
    params.num_nodes = v;
    params.num_procs = procs;
    params.ccr = ccr;
    // width_guard = true for the UNC table: the algorithms are unbounded,
    // so the planted optimum must be a universal lower bound (gen/rgpos.h).
    params.width_guard = unc;
    // The paper's fixed per-(ccr, v) suite keyed by the master seed --
    // the same pairing rgpos_suite() uses, so retiring the standalone
    // benches kept every graph identical.
    std::uint64_t state = jc.master_seed ^
                          (static_cast<std::uint64_t>(v) << 18) ^
                          static_cast<std::uint64_t>(std::llround(ccr * 1000));
    params.seed = splitmix64(state);
    const RgposGraph r = rgpos_graph(params);
    const std::string pivot = "ccr" + Table::fmt(ccr, 1);
    SchedWorkspace& ws = bind_workspace(r.graph);

    SchedOptions opt;
    if (!unc) opt.num_procs = r.num_procs;
    std::vector<Record> records;
    for (const std::string& name : names) {
      const RunResult rr =
          run_scheduler(*make_scheduler(name), r.graph, opt, ws);
      const double deg = percent_degradation(rr.length, r.optimal_length);
      // "Found the optimum" is <= for UNC (the width-guarded plant is a
      // lower bound, so matching it can only happen from above or at
      // equality) and == for BNP, matching the retired benches' counting.
      const bool hit = unc ? rr.length <= r.optimal_length
                           : rr.length == r.optimal_length;
      Record rec = record_from_run(rr, pivot, v, deg);
      rec.num.emplace_back("hit", hit ? 1.0 : 0.0);
      records.push_back(std::move(rec));
    }
    Record ref;
    ref.pivot = pivot;
    ref.row = v;
    ref.column = "L_opt";
    ref.value = static_cast<double>(r.optimal_length);
    ref.num.emplace_back("procs", static_cast<double>(r.num_procs));
    records.push_back(std::move(ref));
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  if (!ctx.quiet)
    std::printf("RGPOS / %s: seed=%llu, planted on p=%d processors%s\n\n",
                unc ? "UNC" : "BNP", static_cast<unsigned long long>(ctx.seed),
                procs, unc ? " (width-guarded)" : " (bounded to the plant)");
  std::vector<std::string> columns = names;
  columns.push_back("L_opt");
  for (const double ccr : kRgposCcrs) {
    const std::string pivot = "ccr" + Table::fmt(ccr, 1);
    PivotStats stats("v", columns);
    sink.fold(pivot, stats);
    emit(ctx, exp + "_" + pivot,
         (unc ? "Table 4" : "Table 5") +
             std::string(": % degradation from planted optimal, CCR=") +
             Table::fmt(ccr, 1),
         stats.render(1));
  }

  std::map<std::string, StatAccumulator> degs;
  std::map<std::string, int> hits;
  for (const JobResult& jr : sink.results())
    for (const Record& rec : jr.records) {
      if (rec.column == "L_opt") continue;
      degs[rec.column].add(rec.value);
      if (num_field(rec, "hit", 0.0) > 0.0) ++hits[rec.column];
    }
  Table summary({"algo", "#opt", "avg % degradation"});
  for (const std::string& name : names)
    summary.add_row({name, Table::fmt_int(hits[name]),
                     Table::fmt(degs[name].mean(), 1)});
  emit(ctx, exp + "_summary",
       std::string(unc ? "Table 4" : "Table 5") +
           ": optima found / average degradation",
       summary);
  report_sink(ctx, sink, out);
}

void run_table4(const ExpContext& ctx) { run_table_rgpos(ctx, /*unc=*/true); }
void run_table5(const ExpContext& ctx) { run_table_rgpos(ctx, /*unc=*/false); }

}  // namespace

void register_rgpos_experiments(ExperimentRegistry& r) {
  r.add({"table4", "table4_rgpos_unc", "rgpos",
         "UNC %-degradation from planted optima on RGPOS "
         "[--procs, --max-v]",
         run_table4});
  r.add({"table5", "table5_rgpos_bnp", "rgpos",
         "BNP %-degradation from planted optima on RGPOS "
         "[--procs, --max-v]",
         run_table5});
}

}  // namespace tgs::bench
