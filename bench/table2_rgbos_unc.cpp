// Table 2 (paper §6.2): percentage degradation from the optimal solutions
// of the UNC algorithms on the RGBOS benchmarks (random graphs with
// branch-and-bound optimal solutions).
//
// Rows: graph size 10..32 step 2, grouped per CCR in {0.1, 1, 10}; the
// last rows give the number of optimal solutions found and the average
// degradation, as in the paper. Optima come from the parallel
// branch-and-bound scheduler on p=2 processors (the paper does not record
// its processor count; see EXPERIMENTS.md). Unproven optima (budget
// exhausted) are marked with '*' and the best-found length is used.
//
// Paper shape: DCP generates by far the most optimal solutions with <2%
// average degradation at low CCR; degradations grow with CCR.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "tgs/gen/rgbos.h"
#include "tgs/harness/registry.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/sched/metrics.h"
#include "tgs/util/cli.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1998));
  const double budget = cli.get_double("budget", 3.0);
  const int procs = static_cast<int>(cli.get_int("procs", 2));

  const auto algos = make_unc_schedulers();
  std::vector<std::string> headers{"CCR", "v"};
  for (const auto& a : algos) headers.push_back(a->name());
  headers.push_back("optimal");
  Table table(headers);

  std::map<std::string, int> optimal_hits;
  std::map<std::string, double> degradation_sum;
  int cells = 0;

  for (double ccr : kRgbosCcrs) {
    for (NodeId v = kRgbosMinNodes; v <= kRgbosMaxNodes; v += kRgbosStep) {
      const TaskGraph g = rgbos_graph(ccr, v, seed);

      // UNC algorithms are unbounded, so the reference machine must offer
      // at least as many processors as any of them actually used --
      // otherwise "degradation from optimal" could go negative. The best
      // heuristic schedule seeds the incumbent.
      std::vector<Time> lengths;
      int ref_procs = procs;
      Time best_heur = kTimeInf;
      for (const auto& a : algos) {
        const Schedule s = a->run(g, {});
        lengths.push_back(s.makespan());
        ref_procs = std::max(ref_procs, s.procs_used());
        best_heur = std::min(best_heur, s.makespan());
      }

      BBOptions bb;
      bb.num_procs = ref_procs;
      bb.time_limit_seconds = budget;
      bb.initial_upper_bound = best_heur;
      const BBResult opt = branch_and_bound(g, bb);
      const Time reference =
          opt.schedule ? std::min(opt.length, best_heur) : best_heur;

      std::vector<std::string> row{Table::fmt(ccr, 1), Table::fmt_int(v)};
      for (std::size_t i = 0; i < algos.size(); ++i) {
        const double deg = percent_degradation(lengths[i], reference);
        degradation_sum[algos[i]->name()] += deg;
        if (lengths[i] == reference) ++optimal_hits[algos[i]->name()];
        row.push_back(Table::fmt(deg, 1));
      }
      ++cells;
      row.push_back(std::string(opt.proven_optimal ? "" : "*") +
                    Table::fmt_int(reference));
      table.add_row(std::move(row));
    }
  }

  std::vector<std::string> hits_row{"", "#opt"};
  std::vector<std::string> avg_row{"", "Avg."};
  for (const auto& a : algos) {
    hits_row.push_back(Table::fmt_int(optimal_hits[a->name()]));
    avg_row.push_back(Table::fmt(degradation_sum[a->name()] / cells, 1));
  }
  table.add_row(std::move(hits_row));
  table.add_row(std::move(avg_row));

  std::printf("RGBOS / UNC: seed=%llu, p=%d, B&B budget=%.1fs per instance\n\n",
              static_cast<unsigned long long>(seed), procs, budget);
  bench::emit("table2_rgbos_unc",
              "Table 2: % degradation from optimal, UNC on RGBOS", table);
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
