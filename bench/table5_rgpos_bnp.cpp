// Table 5 (paper §6.3): percentage degradation from the pre-determined
// optimal schedule lengths of the BNP algorithms on the RGPOS benchmarks,
// bounded to the planted processor count.
//
// Paper shape: the BNP algorithms produce similar numbers of optima and
// degradation values; at CCR 10 none finds any optimum.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "tgs/gen/rgpos.h"
#include "tgs/harness/registry.h"
#include "tgs/sched/metrics.h"
#include "tgs/util/cli.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1998));
  const int procs = static_cast<int>(cli.get_int("procs", 4));

  const auto algos = make_bnp_schedulers();
  std::vector<std::string> headers{"CCR", "v"};
  for (const auto& a : algos) headers.push_back(a->name());
  headers.push_back("L_opt");
  Table table(headers);

  std::map<std::string, int> optimal_hits;
  std::map<std::string, double> degradation_sum;
  int cells = 0;

  for (double ccr : kRgposCcrs) {
    for (const RgposGraph& r : rgpos_suite(ccr, procs, seed)) {
      SchedOptions opt;
      opt.num_procs = r.num_procs;
      std::vector<std::string> row{Table::fmt(ccr, 1),
                                   Table::fmt_int(r.graph.num_nodes())};
      for (const auto& a : algos) {
        const Time len = a->run(r.graph, opt).makespan();
        const double deg = percent_degradation(len, r.optimal_length);
        degradation_sum[a->name()] += deg;
        if (len == r.optimal_length) ++optimal_hits[a->name()];
        row.push_back(Table::fmt(deg, 1));
      }
      ++cells;
      row.push_back(Table::fmt_int(r.optimal_length));
      table.add_row(std::move(row));
    }
  }

  std::vector<std::string> hits_row{"", "#opt"};
  std::vector<std::string> avg_row{"", "Avg."};
  for (const auto& a : algos) {
    hits_row.push_back(Table::fmt_int(optimal_hits[a->name()]));
    avg_row.push_back(Table::fmt(degradation_sum[a->name()] / cells, 1));
  }
  table.add_row(std::move(hits_row));
  table.add_row(std::move(avg_row));

  std::printf("RGPOS / BNP: seed=%llu, p=%d (same as the plant)\n\n",
              static_cast<unsigned long long>(seed), procs);
  bench::emit("table5_rgpos_bnp",
              "Table 5: % degradation from planted optimal, BNP on RGPOS",
              table);
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
