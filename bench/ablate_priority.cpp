// Ablation (paper §7): "Dynamic priority is in general better than static
// priority, although it can cause substantial complexity gain ... one
// exception is that the MCP algorithm using static priorities performs
// the best in its class", and "CP-based algorithms perform better than
// non-CP-based ones".
//
// Static-priority BNP: HLFET, ISH, MCP.  Dynamic: ETF, DLS.
// CP-based: MCP (BNP), DCP/DSC/MD (UNC).  Non-CP: HLFET/ISH/ETF/DLS/LAST,
// EZ/LC. The table reports per-CCR average NSL of each group plus MCP
// alone (the paper's exception), and the average scheduling time of each
// group to expose the complexity trade-off.
#include <cstdio>

#include "bench_common.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/experiment.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/util/cli.h"
#include "tgs/util/rng.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const int graphs = static_cast<int>(cli.get_int("graphs", 6));

  PivotStats nsl("CCR", {"static(HLFET,ISH)", "dynamic(ETF,DLS)", "MCP",
                         "CP-based(UNC)", "non-CP(UNC)"});
  PivotStats time_ms("CCR", {"static(HLFET,ISH)", "dynamic(ETF,DLS)", "MCP",
                             "CP-based(UNC)", "non-CP(UNC)"});

  auto run_group = [&](const std::vector<const char*>& names,
                       const TaskGraph& g, double ccr, const char* column) {
    for (const char* n : names) {
      const RunResult r = run_scheduler(*make_scheduler(n), g, {});
      nsl.add(ccr, column, r.nsl);
      time_ms.add(ccr, column, r.seconds * 1e3);
    }
  };

  std::uint64_t stream = 0;  // one derived RNG stream per graph
  for (double ccr : {0.1, 1.0, 10.0}) {
    for (int i = 0; i < graphs; ++i) {
      RgnosParams p;
      p.num_nodes = 150;
      p.ccr = ccr;
      p.parallelism = 1 + i % 5;
      p.seed = derive_seed(seed, stream++);
      const TaskGraph g = rgnos_graph(p);
      run_group({"HLFET", "ISH"}, g, ccr, "static(HLFET,ISH)");
      run_group({"ETF", "DLS"}, g, ccr, "dynamic(ETF,DLS)");
      run_group({"MCP"}, g, ccr, "MCP");
      run_group({"DCP", "DSC", "MD"}, g, ccr, "CP-based(UNC)");
      run_group({"EZ", "LC"}, g, ccr, "non-CP(UNC)");
    }
  }

  std::printf("Priority ablation: %d RGNOS graphs (v=150) per CCR, seed=%llu\n\n",
              graphs, static_cast<unsigned long long>(seed));
  bench::emit("ablate_priority_nsl",
              "Ablation: priority scheme, average NSL per group", nsl.render(3));
  bench::emit("ablate_priority_time",
              "Ablation: priority scheme, average scheduling time (ms)",
              time_ms.render(2));
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
