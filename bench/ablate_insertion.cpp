// Ablation (paper §7): "Insertion is better than non-insertion -- for
// example, a simple algorithm such as ISH employing insertion can yield
// dramatic performance."
//
// Design: HLFET and ISH share the identical priority scheme (static
// levels) and processor-selection rule; their ONLY difference is ISH's
// hole-filling. The table reports the average makespan ratio
// HLFET / ISH per CCR (values > 1 mean insertion wins), plus the same
// comparison between ETF (non-insertion, dynamic) and MCP (insertion,
// static) as a cross-check.
#include <cstdio>

#include "bench_common.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/experiment.h"
#include "tgs/harness/registry.h"
#include "tgs/util/cli.h"
#include "tgs/util/rng.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const int graphs = static_cast<int>(cli.get_int("graphs", 8));

  PivotStats stats("CCR", {"HLFET/ISH", "ETF/MCP", "ISH wins %", "ties %"});

  const auto hlfet = make_scheduler("HLFET");
  const auto ish = make_scheduler("ISH");
  const auto etf = make_scheduler("ETF");
  const auto mcp = make_scheduler("MCP");

  std::uint64_t stream = 0;  // one derived RNG stream per graph
  for (double ccr : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    int wins = 0, ties = 0;
    for (int i = 0; i < graphs; ++i) {
      RgnosParams p;
      p.num_nodes = 150;
      p.ccr = ccr;
      p.parallelism = 1 + i % 5;
      p.seed = derive_seed(seed, stream++);
      const TaskGraph g = rgnos_graph(p);
      const double lh = static_cast<double>(hlfet->run(g, {}).makespan());
      const double li = static_cast<double>(ish->run(g, {}).makespan());
      const double le = static_cast<double>(etf->run(g, {}).makespan());
      const double lm = static_cast<double>(mcp->run(g, {}).makespan());
      stats.add(ccr, "HLFET/ISH", lh / li);
      stats.add(ccr, "ETF/MCP", le / lm);
      wins += li < lh;
      ties += li == lh;
    }
    stats.add(ccr, "ISH wins %", 100.0 * wins / graphs);
    stats.add(ccr, "ties %", 100.0 * ties / graphs);
  }

  std::printf("Insertion ablation: %d RGNOS graphs (v=150) per CCR, seed=%llu\n"
              "Ratios > 1.0 mean the insertion-based algorithm wins.\n\n",
              graphs, static_cast<unsigned long long>(seed));
  bench::emit("ablate_insertion", "Ablation: insertion vs non-insertion",
              stats.render(3));
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
