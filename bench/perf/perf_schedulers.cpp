// tgs_perf -- google-benchmark suite over the scheduling hot paths. Gated
// behind -DTGS_BUILD_PERF=ON (needs a system libbenchmark).
//
// The *_Naive benchmarks run the retired exhaustive pair-selection loops
// kept in tests/reference_schedulers.h, so the incremental-vs-naive
// speedup of one build is measured inside one binary; the committed
// BENCH_schedulers.json at the repo root is the baseline CI compares
// against (tools/check_perf_regression.py, >2x real_time fails).
//
// Regenerate the baseline with:
//   ./build/tgs_perf --benchmark_out=BENCH_schedulers.json
//                    --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <vector>

#include "reference_schedulers.h"
#include "reference_timeline.h"
#include "tgs/apn/bsa.h"
#include "tgs/apn/dls_apn.h"
#include "tgs/apn/mh.h"
#include "tgs/bnp/dls.h"
#include "tgs/bnp/etf.h"
#include "tgs/bnp/hlfet.h"
#include "tgs/bnp/ish.h"
#include "tgs/bnp/mcp.h"
#include "tgs/gen/rgnos.h"
#include "tgs/gen/structured.h"
#include "tgs/gen/traced.h"
#include "tgs/graph/attributes.h"
#include "tgs/list/ready_list.h"
#include "tgs/net/routing.h"
#include "tgs/net/topology.h"
#include "tgs/sched/timeline.h"
#include "tgs/sched/workspace.h"
#include "tgs/util/mem.h"

namespace tgs {
namespace {

TaskGraph bench_graph(NodeId v) {
  RgnosParams p;
  p.num_nodes = v;
  p.ccr = 1.0;
  p.parallelism = 3;
  p.seed = 1998 + v;  // fixed per size: every run benches the same graph
  return rgnos_graph(p);
}

// ------------------------------------------------- pair schedulers -------

void BM_Etf(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  SchedWorkspace ws;
  ws.begin_graph(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(EtfScheduler().run(g, {}, ws).makespan());
}
BENCHMARK(BM_Etf)->Arg(100)->Arg(300)->Arg(500);

void BM_Etf_Naive(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(reference::naive_etf(g, {}).makespan());
}
BENCHMARK(BM_Etf_Naive)->Arg(100)->Arg(300)->Arg(500);

void BM_Dls(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  SchedWorkspace ws;
  ws.begin_graph(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(DlsScheduler().run(g, {}, ws).makespan());
}
BENCHMARK(BM_Dls)->Arg(100)->Arg(300)->Arg(500);

void BM_Dls_Naive(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(reference::naive_dls(g, {}).makespan());
}
BENCHMARK(BM_Dls_Naive)->Arg(100)->Arg(300)->Arg(500);

void BM_DlsApn(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  const RoutingTable routes{Topology::hypercube(3)};
  SchedWorkspace ws;
  ws.begin_graph(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        DlsApnScheduler().run(g, routes, ws).makespan());
}
BENCHMARK(BM_DlsApn)->Arg(100);

void BM_DlsApn_Naive(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  const RoutingTable routes{Topology::hypercube(3)};
  for (auto _ : state)
    benchmark::DoNotOptimize(reference::naive_dls_apn(g, routes).makespan());
}
BENCHMARK(BM_DlsApn_Naive)->Arg(100);

// MCP is the fast-BNP yardstick (insertion-based, no pair search); it
// bounds how much of ETF/DLS time is pair selection vs shared machinery.
void BM_Mcp(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  SchedWorkspace ws;
  ws.begin_graph(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(McpScheduler().run(g, {}, ws).makespan());
}
BENCHMARK(BM_Mcp)->Arg(500);

// Workspace amortization: the same ETF run paying a fresh workspace (and
// its attribute recomputation + allocations) on every call.
void BM_Etf_FreshWorkspace(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(EtfScheduler().run(g, {}).makespan());
}
BENCHMARK(BM_Etf_FreshWorkspace)->Arg(500);

void BM_Mh_Apn(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  const RoutingTable routes{Topology::hypercube(3)};
  SchedWorkspace ws;
  ws.begin_graph(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(MhScheduler().run(g, routes, ws).makespan());
}
BENCHMARK(BM_Mh_Apn)->Arg(100)->Arg(300);

// BSA on the incremental migration engine: every tentative migration
// releases and recommits only the affected downstream region of the
// commit order (apn_common.h ApnMigrationEngine).
void BM_Bsa_Apn(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  const RoutingTable routes{Topology::hypercube(3)};
  SchedWorkspace ws;
  ws.begin_graph(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(BsaScheduler().run(g, routes, ws).makespan());
}
BENCHMARK(BM_Bsa_Apn)->Arg(100)->Arg(300)->Arg(500);

// The retired O(full-rebuild) BSA (tests/reference_schedulers.h): one
// apn_build_with_assignment from scratch per tentative migration. Run at
// the same sizes as BM_Bsa_Apn so the in-run ratio at v=500 (the
// migration engine's reason to exist) is asserted by the CI perf gate.
void BM_Bsa_FullRebuild(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  const RoutingTable routes{Topology::hypercube(3)};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        reference::full_rebuild_bsa(g, routes).makespan());
}
BENCHMARK(BM_Bsa_FullRebuild)->Arg(100)->Arg(300)->Arg(500);

// ------------------------------------------------------------ giant tier --

// Traced Cholesky at giant dims: Arg is the matrix dimension, v =
// dim(dim+1)/2, so 141 -> ~10k nodes and 446 -> ~100k (the tier's
// acceptance size). Deterministic (seed-free) workload, 64 procs, warm
// workspace with pre-warmed shared attributes -- the same protocol as the
// giant_sweep experiment, so its numbers and these cross-check. Each
// benchmark also reports per-iteration heap traffic (util/mem.h): the
// memory metric regresses loudly here even when wall time hides it behind
// runner noise.
template <typename Sched>
void giant_bench(benchmark::State& state) {
  const TaskGraph g =
      cholesky_graph(static_cast<int>(state.range(0)), 1.0);
  SchedWorkspace ws;
  ws.begin_graph(g);
  ws.attrs().static_levels();
  ws.attrs().alap_times();
  SchedOptions opt;
  opt.num_procs = 64;
  AllocMeter meter;
  for (auto _ : state)
    benchmark::DoNotOptimize(Sched().run(g, opt, ws).makespan());
  state.counters["v"] = static_cast<double>(g.num_nodes());
  state.counters["allocs"] = benchmark::Counter(
      static_cast<double>(meter.count()), benchmark::Counter::kAvgIterations);
  state.counters["alloc_kb"] = benchmark::Counter(
      static_cast<double>(meter.bytes()) / 1024.0,
      benchmark::Counter::kAvgIterations);
}

void BM_Giant_Mcp(benchmark::State& state) { giant_bench<McpScheduler>(state); }
BENCHMARK(BM_Giant_Mcp)->Arg(141)->Arg(446)->Unit(benchmark::kMillisecond);

void BM_Giant_Hlfet(benchmark::State& state) {
  giant_bench<HlfetScheduler>(state);
}
BENCHMARK(BM_Giant_Hlfet)->Arg(141)->Arg(446)->Unit(benchmark::kMillisecond);

void BM_Giant_Ish(benchmark::State& state) { giant_bench<IshScheduler>(state); }
BENCHMARK(BM_Giant_Ish)->Arg(141)->Arg(446)->Unit(benchmark::kMillisecond);

void BM_Giant_Etf(benchmark::State& state) { giant_bench<EtfScheduler>(state); }
BENCHMARK(BM_Giant_Etf)->Arg(141)->Arg(446)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ net layer --

// A contended NetSchedule: many messages fanning out of one processor over
// hypercube(3), so several links hold long reservation lists.
NetSchedule contended_net(const TaskGraph& g, const RoutingTable& routes) {
  NetSchedule ns(g, routes);
  ns.tasks().place(0, 0, 0);
  const int p = routes.topology().num_procs();
  for (NodeId w = 1; w < g.num_nodes() - 1; ++w)
    ns.commit_message(0, w, static_cast<int>(w * 5 % p));
  return ns;
}

// One-to-all routing-tree sweep vs probing every destination separately:
// the sweep touches each of the 7 tree links once; the per-destination
// loop re-walks 12 route hops (the rescore loops of MH / DLS(APN) / BSA
// are exactly this access pattern).
void BM_Net_ProbeArrivalAll(benchmark::State& state) {
  const TaskGraph g = fork_join(400, 10, 9);
  const RoutingTable routes{Topology::hypercube(3)};
  const NetSchedule ns = contended_net(g, routes);
  const int p = routes.topology().num_procs();
  std::vector<Time> out(static_cast<std::size_t>(p));
  for (auto _ : state) {
    Time acc = 0;
    for (int src = 0; src < p; ++src) {
      ns.probe_arrival_all(src, 9, 40 * src, out);
      acc += out[p - 1];
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Net_ProbeArrivalAll);

void BM_Net_ProbePerDestination(benchmark::State& state) {
  const TaskGraph g = fork_join(400, 10, 9);
  const RoutingTable routes{Topology::hypercube(3)};
  const NetSchedule ns = contended_net(g, routes);
  const int p = routes.topology().num_procs();
  for (auto _ : state) {
    Time acc = 0;
    for (int src = 0; src < p; ++src)
      for (int dst = 0; dst < p; ++dst)
        acc += ns.probe_arrival(src, dst, 9, 40 * src);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Net_ProbePerDestination);

// Message commit/release churn against loaded link timelines (the BSA
// migration pattern): every cycle routes a 3-hop message and releases it.
void BM_Net_CommitReleaseChurn(benchmark::State& state) {
  const TaskGraph g = fork_join(static_cast<NodeId>(state.range(0)), 10, 9);
  const RoutingTable routes{Topology::hypercube(3)};
  NetSchedule ns = contended_net(g, routes);
  for (auto _ : state) {
    // 0 -> 7 is the full-diameter route.
    ns.release_message(0, 1);
    benchmark::DoNotOptimize(ns.commit_message(0, 1, 7));
    ns.release_message(0, 1);
    benchmark::DoNotOptimize(ns.commit_message(0, 1, 5));
  }
}
BENCHMARK(BM_Net_CommitReleaseChurn)->Arg(400)->Arg(1500);

// ------------------------------------------------------ data structures --

// Release back-to-front: the owner searched for always sits at the tail,
// so the unhinted variant pays its full linear scan while the hinted one
// binary-searches straight to it.
void BM_Timeline_OccupyRelease(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Timeline tl;
    for (int i = 0; i < n; ++i) tl.occupy(i, i * 10, 8);
    for (int i = n - 1; i >= 0; --i) tl.release(i, i * 10);  // hinted
    benchmark::DoNotOptimize(tl.size());
  }
}
BENCHMARK(BM_Timeline_OccupyRelease)->Arg(256)->Arg(1024);

void BM_Timeline_ReleaseLinear(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Timeline tl;
    for (int i = 0; i < n; ++i) tl.occupy(i, i * 10, 8);
    for (int i = n - 1; i >= 0; --i) tl.release(i);  // unhinted O(n) scan
    benchmark::DoNotOptimize(tl.size());
  }
}
BENCHMARK(BM_Timeline_ReleaseLinear)->Arg(256)->Arg(1024);

void BM_Timeline_InsertionFit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Timeline tl;
  for (int i = 0; i < n; ++i) tl.occupy(i, i * 10, 8);  // gaps of 2
  for (auto _ : state) {
    Time acc = 0;
    for (int i = 0; i < n; ++i)
      acc += tl.earliest_fit(i * 7 % (n * 10), 2, /*insertion=*/true);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Timeline_InsertionFit)->Arg(1024)->Arg(4096);

// The contended-link pattern the gap index exists for: a packed timeline
// where the only gap large enough sits near the tail, so the flat scan
// walks almost the whole reservation list per probe while the gap tree
// descends to it. 1k/4k intervals is what APN link timelines hold at
// v=500 (the hot hypercube link holds ~8.7k).
template <typename TL>
void packed_timeline(TL& tl, int n) {
  for (int i = 0; i < n; ++i)
    if (i != (n * 9) / 10) tl.occupy(i, i * 10, 10);  // one idle slot
}

void BM_Timeline_PackedFit_Gap(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Timeline tl;
  packed_timeline(tl, n);
  for (auto _ : state) {
    Time acc = 0;
    for (int i = 0; i < 64; ++i)
      acc += tl.earliest_fit(i * 13 % 1000, 5, /*insertion=*/true);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Timeline_PackedFit_Gap)->Arg(1024)->Arg(4096);

void BM_Timeline_PackedFit_Scan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  reference::FlatTimeline tl;
  packed_timeline(tl, n);
  for (auto _ : state) {
    Time acc = 0;
    for (int i = 0; i < 64; ++i)
      acc += tl.earliest_fit(i * 13 % 1000, 5, /*insertion=*/true);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Timeline_PackedFit_Scan)->Arg(1024)->Arg(4096);

void BM_ReadyList_Churn(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  for (auto _ : state) {
    ReadyList ready(g);
    std::size_t picked = 0;
    while (!ready.empty()) {
      const NodeId n = ready.ready().front();
      ready.mark_scheduled(n);
      ++picked;
    }
    benchmark::DoNotOptimize(picked);
  }
}
BENCHMARK(BM_ReadyList_Churn)->Arg(500);

void BM_StaticLevels(benchmark::State& state) {
  const TaskGraph g = bench_graph(static_cast<NodeId>(state.range(0)));
  std::vector<Time> buf;
  for (auto _ : state) {
    static_levels_into(g, buf);
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_StaticLevels)->Arg(500);

}  // namespace
}  // namespace tgs

BENCHMARK_MAIN();
