// Ablation (paper §6.2-6.3 observation): degradations/NSL "in general
// increase with CCRs" -- communication dominance hurts every class.
//
// Sweep CCR over {0.1, 0.5, 1, 2, 10} at fixed v=200 and report average
// NSL per algorithm (all 15; APN on hcube3).
#include <cstdio>

#include "bench_common.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/experiment.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/util/cli.h"
#include "tgs/util/rng.h"

static int bench_main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const int graphs = static_cast<int>(cli.get_int("graphs", 4));
  const NodeId nodes = static_cast<NodeId>(cli.get_int("nodes", 200));

  std::vector<std::string> columns;
  for (const auto& a : make_unc_schedulers()) columns.push_back(a->name());
  for (const auto& a : make_bnp_schedulers()) columns.push_back(a->name());
  for (const auto& a : make_apn_schedulers())
    columns.push_back(a->name() + "(APN)");
  PivotStats stats("CCR", columns);

  const RoutingTable routes{Topology::hypercube(3)};

  for (double ccr : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    for (int i = 0; i < graphs; ++i) {
      RgnosParams p;
      p.num_nodes = nodes;
      p.ccr = ccr;
      p.parallelism = 1 + i % 5;
      // Keyed by i only: CCR rows stay paired on the same base structure.
      p.seed = derive_seed(seed, static_cast<std::uint64_t>(i));
      const TaskGraph g = rgnos_graph(p);
      for (const auto& a : make_unc_and_bnp_schedulers())
        stats.add(ccr, a->name(), run_scheduler(*a, g, {}).nsl);
      for (const auto& a : make_apn_schedulers())
        stats.add(ccr, a->name() + "(APN)",
                  run_apn_scheduler(*a, g, routes).nsl);
    }
    std::fprintf(stderr, "[ccr] %.1f done\n", ccr);
  }

  std::printf("CCR sensitivity: %d RGNOS graphs (v=%u) per CCR, seed=%llu\n"
              "Expect every column to increase down the table.\n\n",
              graphs, nodes, static_cast<unsigned long long>(seed));
  bench::emit("ablate_ccr", "Ablation: average NSL vs CCR (all 15 algorithms)",
              stats.render(3));
  return 0;
}

int main(int argc, char** argv) {
  return tgs::bench::guarded_main(bench_main, argc, argv);
}
