// tgs_bench -- unified driver for the paper's experiments on the parallel
// execution engine (src/tgs/exec/).
//
//   tgs_bench --experiment=table2 [--threads=N] [--seed=S] [--out=FILE]
//   tgs_bench --list
//
// Every experiment expands into independent jobs (one graph each), runs
// them on a thread pool, and aggregates through a ResultSink, so results
// -- the rendered pivot tables, the CSV dumps AND the JSONL stream -- are
// bit-identical for --threads=1 and --threads=N with the same seed. The
// ingredients: per-job seeds derived from (master seed, job index), a
// node-budget (not wall-clock) branch-and-bound reference, and job-order
// folding in the sink.
//
// Shared flags:
//   --experiment=NAME   experiment to run (repeatable; also positional)
//   --threads=N         worker threads (default: hardware concurrency)
//   --seed=S            master seed (default 1998)
//   --out=FILE          JSONL destination: a path, '-' for stdout, 'none'
//                       (default bench_results/<experiment>.jsonl)
//   --algo=A[,B...]     restrict to these algorithms (repeatable)
// Experiment-specific flags are documented in --list.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "tgs/exec/result_sink.h"
#include "tgs/exec/sweep.h"
#include "tgs/gen/rgbos.h"
#include "tgs/gen/rgnos.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/sched/metrics.h"
#include "tgs/util/cli.h"
#include "tgs/util/rng.h"
#include "tgs/util/timer.h"

namespace tgs {
namespace {

struct ExpContext {
  const Cli* cli = nullptr;
  std::uint64_t seed = 1998;
  int threads = 1;
  // A later experiment of the same invocation appends to an explicit
  // --out file instead of truncating the earlier experiments' records.
  bool append_out = false;
};

/// Registry-order algorithm names, optionally filtered by --algo.
std::vector<std::string> filtered_names(const Cli& cli,
                                        std::vector<std::string> names) {
  const std::vector<std::string> want = cli.get_list("algo");
  if (want.empty()) return names;
  std::vector<std::string> out;
  for (const std::string& n : names)
    if (std::find(want.begin(), want.end(), n) != want.end()) out.push_back(n);
  return out;
}

double num_field(const Record& rec, const std::string& key, double fallback) {
  for (const auto& [k, v] : rec.num)
    if (k == key) return v;
  return fallback;
}

/// JSONL writer per --out; may return a writer that is disabled (null).
struct OutStream {
  std::unique_ptr<JsonlWriter> writer;
  std::string path;  // empty when stdout or disabled
  JsonlWriter* get() const { return writer.get(); }
};

OutStream make_out(const ExpContext& ctx, const std::string& experiment) {
  const Cli& cli = *ctx.cli;
  OutStream out;
  const std::string spec = cli.get("out", "");
  if (spec == "none") return out;
  if (spec == "-") {
    out.writer = std::make_unique<JsonlWriter>(std::cout);
    return out;
  }
  std::string path = spec;
  bool append = ctx.append_out;
  if (path.empty()) {
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    path = "bench_results/" + experiment + ".jsonl";
    append = false;  // per-experiment default files never collide
  }
  out.writer = std::make_unique<JsonlWriter>(path, append);
  if (!out.writer->ok()) {
    std::fprintf(stderr, "warning: cannot write %s; JSONL disabled\n",
                 path.c_str());
    out.writer.reset();
    return out;
  }
  out.path = path;
  return out;
}

void report_sink(const ResultSink& sink, const OutStream& out) {
  if (!out.path.empty()) std::printf("[jsonl: %s]\n", out.path.c_str());
  if (sink.num_errors() > 0)
    std::fprintf(stderr, "warning: %zu job(s) failed; first error: %s\n",
                 sink.num_errors(), sink.first_error().c_str());
}

// ------------------------------------------------------------ table2/3 ----
// Degradation from branch-and-bound reference solutions on the RGBOS suite
// (paper Tables 2 and 3). One job per (CCR, v) graph; the UNC variant runs
// unbounded, the BNP variant at --procs processors.

void run_table_rgbos(const ExpContext& ctx, bool unc) {
  const Cli& cli = *ctx.cli;
  const std::string exp = unc ? "table2" : "table3";
  const int procs = static_cast<int>(cli.get_int("procs", 2));
  const std::uint64_t bb_nodes =
      static_cast<std::uint64_t>(cli.get_int("bb-nodes", 250'000));
  const std::vector<std::string> names =
      filtered_names(cli, unc ? unc_names() : bnp_names());

  Sweep sweep;
  sweep.axis("ccr", {kRgbosCcrs[0], kRgbosCcrs[1], kRgbosCcrs[2]});
  std::vector<double> sizes;
  for (NodeId v = kRgbosMinNodes; v <= kRgbosMaxNodes; v += kRgbosStep)
    sizes.push_back(v);
  sweep.axis("v", sizes);

  OutStream out = make_out(ctx, exp);
  ResultSink sink(exp, out.get());

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const double ccr = pt.param("ccr");
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    // RGBOS is a fixed suite keyed by the master seed (paper §5.2); the
    // per-job stream is not used because the suite has no replications.
    const TaskGraph g = rgbos_graph(ccr, v, jc.master_seed);
    const std::string pivot = "ccr" + Table::fmt(ccr, 1);

    SchedOptions opt;
    if (!unc) opt.num_procs = procs;
    std::vector<RunResult> runs;
    int ref_procs = procs;
    Time best_heur = kTimeInf;
    for (const std::string& name : names) {
      runs.push_back(run_scheduler(*make_scheduler(name), g, opt));
      ref_procs = std::max(ref_procs, runs.back().procs_used);
      best_heur = std::min(best_heur, runs.back().length);
    }

    BBOptions bb;
    bb.num_procs = unc ? ref_procs : procs;
    bb.time_limit_seconds = 0.0;  // wall clock would break reproducibility
    bb.max_nodes = bb_nodes;
    bb.num_threads = 1;  // jobs are the parallelism; keeps B&B deterministic
    bb.initial_upper_bound = best_heur;
    const BBResult bbr = branch_and_bound(g, bb);
    const Time reference =
        bbr.schedule ? (unc ? std::min(bbr.length, best_heur) : bbr.length)
                     : best_heur;

    std::vector<Record> records;
    for (const RunResult& rr : runs) {
      const double deg = percent_degradation(rr.length, reference);
      records.push_back(record_from_run(rr, pivot, v, deg));
    }
    Record ref;
    ref.pivot = pivot;
    ref.row = v;
    ref.column = "optimal";
    ref.value = static_cast<double>(reference);
    ref.num.emplace_back("proven", bbr.proven_optimal ? 1.0 : 0.0);
    ref.num.emplace_back("bb_nodes", static_cast<double>(bbr.nodes_expanded));
    records.push_back(std::move(ref));
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  std::printf("RGBOS / %s: seed=%llu, p=%d, B&B budget=%llu nodes, %d "
              "worker threads\n\n",
              unc ? "UNC" : "BNP", static_cast<unsigned long long>(ctx.seed),
              procs, static_cast<unsigned long long>(bb_nodes), ctx.threads);
  std::vector<std::string> columns = names;
  columns.push_back("optimal");
  for (const double ccr : kRgbosCcrs) {
    const std::string pivot = "ccr" + Table::fmt(ccr, 1);
    PivotStats stats("v", columns);
    sink.fold(pivot, stats);
    bench::emit(exp + "_" + pivot,
                (unc ? "Table 2" : "Table 3") +
                    std::string(": % degradation from optimal, CCR=") +
                    Table::fmt(ccr, 1),
                stats.render(1));
  }

  // Paper-style footer: optimal hits and average degradation per algorithm.
  std::map<std::string, StatAccumulator> degs;
  std::map<std::string, int> hits;
  int proven = 0, instances = 0;
  for (const JobResult& jr : sink.results()) {
    for (const Record& rec : jr.records) {
      if (rec.column == "optimal") {
        ++instances;
        if (num_field(rec, "proven", 0.0) > 0.0) ++proven;
      } else {
        degs[rec.column].add(rec.value);
        if (rec.value == 0.0) ++hits[rec.column];
      }
    }
  }
  Table summary({"algo", "#opt", "avg % degradation"});
  for (const std::string& name : names)
    summary.add_row({name, Table::fmt_int(hits[name]),
                     Table::fmt(degs[name].mean(), 1)});
  bench::emit(exp + "_summary",
              "References proven optimal: " + Table::fmt_int(proven) + "/" +
                  Table::fmt_int(instances),
              summary);
  report_sink(sink, out);
}

void run_table2(const ExpContext& ctx) { run_table_rgbos(ctx, /*unc=*/true); }
void run_table3(const ExpContext& ctx) { run_table_rgbos(ctx, /*unc=*/false); }

// ---------------------------------------------------------------- fig2 ----
// Average NSL of the UNC / BNP / APN algorithms on RGNOS graphs as a
// function of graph size (paper Figure 2). One job per (v, (CCR,
// parallelism)) graph; each graph is drawn from its own derived RNG
// stream, so grid cells and replications never share a seed.

void run_fig2(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const NodeId max_nodes = static_cast<NodeId>(cli.get_int("max-nodes", 500));
  const NodeId apn_max = static_cast<NodeId>(
      cli.get_int("apn-max-nodes", static_cast<std::int64_t>(max_nodes)));
  const auto reps = bench::rgnos_reps(cli.has("full"));
  const std::vector<std::string> unc_n = filtered_names(cli, unc_names());
  const std::vector<std::string> bnp_n = filtered_names(cli, bnp_names());
  const std::vector<std::string> apn_n = filtered_names(cli, apn_names());

  Sweep sweep;
  std::vector<double> sizes;
  for (NodeId v = 50; v <= max_nodes; v += 50) sizes.push_back(v);
  std::vector<double> grid;
  for (std::size_t i = 0; i < reps.size(); ++i) grid.push_back(i);
  sweep.axis("v", sizes).axis("grid", grid);

  OutStream out = make_out(ctx, "fig2");
  ResultSink sink("fig2", out.get());
  const RoutingTable routes{Topology::hypercube(3)};

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const auto& [ccr, par] = reps[static_cast<std::size_t>(pt.param("grid"))];
    RgnosParams params;
    params.num_nodes = v;
    params.ccr = ccr;
    params.parallelism = par;
    params.seed = jc.seed;
    const TaskGraph g = rgnos_graph(params);

    std::vector<Record> records;
    const auto tag = [&](Record rec) {
      rec.num.emplace_back("ccr", ccr);
      rec.num.emplace_back("parallelism", par);
      records.push_back(std::move(rec));
    };
    for (const std::string& name : unc_n)
      tag(record_from_run(run_scheduler(*make_scheduler(name), g, {}), "fig2a",
                          v, 0.0));
    for (const std::string& name : bnp_n)
      tag(record_from_run(run_scheduler(*make_scheduler(name), g, {}), "fig2b",
                          v, 0.0));
    if (v <= apn_max)
      for (const std::string& name : apn_n)
        tag(record_from_run(run_apn_scheduler(*make_apn_scheduler(name), g, routes),
                            "fig2c", v, 0.0));
    for (Record& rec : records) rec.value = num_field(rec, "nsl", 0.0);
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  std::printf("RGNOS NSL sweep: seed=%llu, %zu graphs per size, %d worker "
              "threads; APN on hcube3 (8 procs)\n\n",
              static_cast<unsigned long long>(ctx.seed), reps.size(),
              ctx.threads);
  const auto render = [&](const std::string& pivot,
                          const std::vector<std::string>& cols,
                          const std::string& title) {
    if (cols.empty()) return;
    PivotStats stats("v", cols);
    sink.fold(pivot, stats);
    bench::emit("tgs_bench_" + pivot, title, stats.render(3));
  };
  render("fig2a", unc_n, "Figure 2(a): average NSL, UNC algorithms");
  render("fig2b", bnp_n, "Figure 2(b): average NSL, BNP algorithms");
  render("fig2c", apn_n, "Figure 2(c): average NSL, APN algorithms");
  report_sink(sink, out);
}

// --------------------------------------------------------------- micro ----
// Per-call scheduling time of every algorithm on fixed RGNOS graphs
// (complements paper Table 6). One job per (algorithm, size): a warm-up
// run, then --reps timed runs; the cell reports the minimum. Timings are
// wall clock, so unlike the accuracy experiments this one's JSONL is only
// reproducible in its deterministic fields (length, procs).

void run_micro(const ExpContext& ctx) {
  const Cli& cli = *ctx.cli;
  const int reps = static_cast<int>(cli.get_int("reps", 5));

  struct Algo {
    enum Kind { kSched, kApn } kind;
    std::string name;   // registry name
    std::string label;  // pivot column (APN DLS disambiguated)
  };
  std::vector<Algo> algos;
  for (const std::string& n : filtered_names(cli, bnp_names()))
    algos.push_back({Algo::kSched, n, n});
  for (const std::string& n : filtered_names(cli, unc_names()))
    algos.push_back({Algo::kSched, n, n});
  for (const std::string& n : filtered_names(cli, apn_names()))
    algos.push_back({Algo::kApn, n, n == "DLS" ? "DLS-APN" : n});

  Sweep sweep;
  std::vector<double> indices;
  for (std::size_t i = 0; i < algos.size(); ++i) indices.push_back(i);
  sweep.axis("v", {100, 300}).axis("algo", indices);

  OutStream out = make_out(ctx, "micro_algorithms");
  ResultSink sink("micro_algorithms", out.get());
  const RoutingTable routes{Topology::hypercube(3)};

  const auto job = [&](const JobContext& jc, const SweepPoint& pt) {
    const NodeId v = static_cast<NodeId>(pt.param("v"));
    const Algo& algo = algos[static_cast<std::size_t>(pt.param("algo"))];
    std::vector<Record> records;
    // APN message scheduling is quadratic-plus; measure at v=100 only, as
    // the google-benchmark micro suite does.
    if (algo.kind == Algo::kApn && v != 100) return records;

    RgnosParams params;
    params.num_nodes = v;
    params.ccr = 1.0;
    params.parallelism = 3;
    params.seed = derive_seed(jc.master_seed, v);  // same graph for all algos
    const TaskGraph g = rgnos_graph(params);

    RunResult rr;
    double best_ms = 0.0, sum_ms = 0.0;
    for (int i = -1; i < reps; ++i) {  // i == -1 is the warm-up
      const RunResult sample =
          algo.kind == Algo::kApn
              ? run_apn_scheduler(*make_apn_scheduler(algo.name), g, routes)
              : run_scheduler(*make_scheduler(algo.name), g, {});
      if (i < 0) {
        rr = sample;
        continue;
      }
      const double ms = sample.seconds * 1e3;
      best_ms = i == 0 ? ms : std::min(best_ms, ms);
      sum_ms += ms;
    }
    rr.algo = algo.label;
    Record rec = record_from_run(rr, "micro", v, best_ms);
    rec.num.emplace_back("mean_ms", sum_ms / reps);
    rec.num.emplace_back("reps", reps);
    records.push_back(std::move(rec));
    return records;
  };
  run_sweep(sweep, ctx.seed, ctx.threads, job, sink);

  std::printf("Scheduling-time micro benchmark: seed=%llu, best of %d runs "
              "per cell (ms), %d worker threads\n\n",
              static_cast<unsigned long long>(ctx.seed), reps, ctx.threads);
  std::vector<std::string> columns;
  for (const Algo& a : algos) columns.push_back(a.label);
  PivotStats stats("v", columns);
  sink.fold("micro", stats);
  bench::emit("tgs_bench_micro", "Scheduling time per call (ms, min of reps)",
              stats.render(3));
  report_sink(sink, out);
}

// ------------------------------------------------------------- registry ---

struct ExperimentDef {
  const char* name;
  const char* alias;  // legacy bench-binary name ("" = none)
  const char* description;
  void (*run)(const ExpContext&);
};

constexpr ExperimentDef kExperiments[] = {
    {"table2", "table2_rgbos_unc",
     "UNC %-degradation from B&B optima on RGBOS "
     "[--procs, --bb-nodes]",
     run_table2},
    {"table3", "table3_rgbos_bnp",
     "BNP %-degradation from B&B optima on RGBOS "
     "[--procs, --bb-nodes]",
     run_table3},
    {"fig2", "fig2_nsl_rgnos",
     "average NSL vs graph size on RGNOS, UNC/BNP/APN "
     "[--max-nodes, --apn-max-nodes, --full]",
     run_fig2},
    {"micro", "micro_algorithms",
     "per-call scheduling time of every algorithm "
     "[--reps]",
     run_micro},
};

void print_experiments() {
  std::printf("experiments:\n");
  for (const ExperimentDef& e : kExperiments)
    std::printf("  %-8s %s\n", e.name, e.description);
  std::printf("\nshared flags: --experiment --threads --seed --out --algo "
              "(see header comment)\n");
}

}  // namespace
}  // namespace tgs

int main(int argc, char** argv) {
  using namespace tgs;
  try {
    const Cli cli(argc, argv);
    if (cli.has("list")) {
      print_experiments();
      return 0;
    }

    std::vector<std::string> wanted = cli.get_list("experiment");
    for (const std::string& p : cli.positional()) wanted.push_back(p);
    if (wanted.empty()) {
      std::fprintf(stderr,
                   "usage: %s --experiment=NAME [flags] (--list for help)\n",
                   cli.program().c_str());
      return 2;
    }

    ExpContext ctx;
    ctx.cli = &cli;
    ctx.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1998));
    int threads = static_cast<int>(cli.get_int("threads", 0));
    if (threads <= 0)
      threads = std::max(1u, std::thread::hardware_concurrency());
    ctx.threads = threads;

    for (std::size_t i = 0; i < wanted.size(); ++i) {
      const std::string& name = wanted[i];
      const ExperimentDef* def = nullptr;
      for (const ExperimentDef& e : kExperiments)
        if (name == e.name || name == e.alias) def = &e;
      if (def == nullptr) {
        std::fprintf(stderr, "unknown experiment '%s'\n\n", name.c_str());
        print_experiments();
        return 2;
      }
      ctx.append_out = i > 0;
      def->run(ctx);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
