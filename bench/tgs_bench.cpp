// tgs_bench -- unified driver for the paper's experiments on the parallel
// execution engine (src/tgs/exec/).
//
//   tgs_bench --experiment=NAME [--threads=N] [--seed=S] [--out=FILE]
//   tgs_bench --list
//
// Every experiment expands into independent jobs (one graph each), runs
// them on a thread pool, and aggregates through a ResultSink, so results
// -- the rendered pivot tables, the CSV dumps AND the JSONL stream -- are
// bit-identical for --threads=1 and --threads=N with the same seed. The
// ingredients: per-job seeds derived from (master seed, job index), a
// node-budget (not wall-clock) branch-and-bound reference, and job-order
// folding in the sink.
//
// Shared flags:
//   --experiment=NAME   experiment to run (repeatable; also positional)
//   --threads=N         worker threads (default: hardware concurrency)
//   --seed=S            master seed (default 1998)
//   --out=FILE          JSONL destination: a path, '-' for stdout, 'none'
//                       (default bench_results/<experiment>.jsonl); a later
//                       experiment of one invocation appends to an
//                       explicit FILE instead of truncating it
//   --algo=A[,B...]     restrict to these algorithms (repeatable)
//   --no-timing         write wall-clock fields as 0 (reproducible JSONL)
//   --no-csv            skip the bench_results/*.csv dumps
//   --quiet             suppress stdout tables
// Experiment-specific flags are documented in --list.
//
// The experiments themselves live in bench/experiments/ (one translation
// unit per family); this file only parses flags and dispatches.
#include <cstdio>
#include <exception>

#include "experiments/experiments.h"
#include "tgs/util/cli.h"

int main(int argc, char** argv) {
  try {
    const tgs::Cli cli(argc, argv);
    return tgs::bench::run_cli(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
