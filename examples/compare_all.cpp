// Compare all 15 scheduling algorithms of the paper on one graph: the 11
// UNC/BNP algorithms on the fully-connected model plus the 4 APN
// algorithms on an 8-processor hypercube.
//
//   ./examples/compare_all [--nodes=120] [--ccr=1.0] [--parallelism=3]
//                          [--seed=7]
#include <cstdio>

#include "tgs/gen/rgnos.h"
#include "tgs/harness/registry.h"
#include "tgs/harness/runner.h"
#include "tgs/net/routing.h"
#include "tgs/util/cli.h"
#include "tgs/util/table.h"

int main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);

  RgnosParams params;
  params.num_nodes = static_cast<NodeId>(cli.get_int("nodes", 120));
  params.ccr = cli.get_double("ccr", 1.0);
  params.parallelism = static_cast<int>(cli.get_int("parallelism", 3));
  params.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const TaskGraph g = rgnos_graph(params);

  std::printf("RGNOS graph: v=%u, e=%zu, CCR=%.2f, parallelism=%d, seed=%llu\n\n",
              g.num_nodes(), g.num_edges(), g.ccr(), params.parallelism,
              static_cast<unsigned long long>(params.seed));

  Table table({"class", "algorithm", "makespan", "NSL", "procs", "time(ms)",
               "valid"});
  for (const auto& algo : make_unc_and_bnp_schedulers()) {
    const RunResult r = run_scheduler(*algo, g, {});
    table.add_row({algo_class_name(algo->algo_class()), r.algo,
                   Table::fmt_int(r.length), Table::fmt(r.nsl, 3),
                   Table::fmt_int(r.procs_used), Table::fmt(r.seconds * 1e3, 2),
                   r.valid ? "yes" : r.error});
  }
  const RoutingTable routes{Topology::hypercube(3)};
  for (const auto& algo : make_apn_schedulers()) {
    const RunResult r = run_apn_scheduler(*algo, g, routes);
    table.add_row({"APN", r.algo + " (hcube3)", Table::fmt_int(r.length),
                   Table::fmt(r.nsl, 3), Table::fmt_int(r.procs_used),
                   Table::fmt(r.seconds * 1e3, 2), r.valid ? "yes" : r.error});
  }
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
