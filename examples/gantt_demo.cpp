// Visual walk-through on the canonical 9-node peer-set graph: print the
// graph's attributes (t-level, b-level, ALAP -- the paper's §3 toolbox),
// then Gantt charts from three algorithms with different philosophies.
//
//   ./examples/gantt_demo
#include <cstdio>

#include "tgs/gen/psg.h"
#include "tgs/graph/attributes.h"
#include "tgs/graph/dot.h"
#include "tgs/harness/registry.h"
#include "tgs/sched/gantt.h"
#include "tgs/util/table.h"

int main() {
  using namespace tgs;
  const TaskGraph g = psg_canonical9();

  const auto t = t_levels(g);
  const auto b = b_levels(g);
  const auto sl = static_levels(g);
  const auto alap = alap_times(g);
  Table attrs({"node", "weight", "t-level", "b-level", "static level",
               "ALAP", "on CP"});
  const auto cp = critical_path(g);
  auto on_cp = [&cp](NodeId n) {
    for (NodeId c : cp)
      if (c == n) return true;
    return false;
  };
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    attrs.add_row({g.label(n), Table::fmt_int(g.weight(n)),
                   Table::fmt_int(t[n]), Table::fmt_int(b[n]),
                   Table::fmt_int(sl[n]), Table::fmt_int(alap[n]),
                   on_cp(n) ? "*" : ""});
  }
  std::printf("canonical 9-node peer-set graph (CP length %lld)\n\n%s\n",
              static_cast<long long>(critical_path_length(g)),
              attrs.to_ascii().c_str());

  for (const char* name : {"HLFET", "MCP", "DCP"}) {
    const auto algo = make_scheduler(name);
    const Schedule s = algo->run(g, {});
    std::printf("--- %s (%s) -> makespan %lld\n%s\n", name,
                algo_class_name(algo->algo_class()),
                static_cast<long long>(s.makespan()),
                gantt_chart(s, 64).c_str());
  }

  std::printf("DOT of the graph (pipe into `dot -Tpng`):\n%s",
              to_dot(g, cp).c_str());
  return 0;
}
