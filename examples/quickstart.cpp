// Quickstart: build a task graph by hand, schedule it with MCP (the
// paper's best BNP algorithm), and print the schedule.
//
//   ./examples/quickstart
#include <cstdio>

#include "tgs/graph/attributes.h"
#include "tgs/graph/task_graph.h"
#include "tgs/harness/registry.h"
#include "tgs/sched/gantt.h"
#include "tgs/sched/metrics.h"
#include "tgs/sched/validate.h"

int main() {
  using namespace tgs;

  // A small fork-join-ish program: prep feeds three workers that reduce
  // into one result. Node weights = computation, edge weights =
  // communication (paid only across processors).
  TaskGraphBuilder builder("quickstart");
  const NodeId prep = builder.add_node(5, "prep");
  const NodeId wa = builder.add_node(20, "workA");
  const NodeId wb = builder.add_node(25, "workB");
  const NodeId wc = builder.add_node(15, "workC");
  const NodeId reduce = builder.add_node(10, "reduce");
  builder.add_edge(prep, wa, 4);
  builder.add_edge(prep, wb, 4);
  builder.add_edge(prep, wc, 4);
  builder.add_edge(wa, reduce, 6);
  builder.add_edge(wb, reduce, 6);
  builder.add_edge(wc, reduce, 6);
  const TaskGraph g = builder.finalize();

  std::printf("graph '%s': %u tasks, %zu edges, CCR=%.2f\n", g.name().c_str(),
              g.num_nodes(), g.num_edges(), g.ccr());
  std::printf("critical path length (with comm): %lld\n",
              static_cast<long long>(critical_path_length(g)));

  // Schedule on 2 processors with MCP.
  const SchedulerPtr mcp = make_scheduler("MCP");
  SchedOptions opt;
  opt.num_procs = 2;
  const Schedule s = mcp->run(g, opt);

  const ValidationResult ok = validate_schedule(s, opt.num_procs);
  std::printf("\n%s schedule valid: %s\n", mcp->name().c_str(),
              ok ? "yes" : ok.error.c_str());
  std::printf("makespan=%lld  NSL=%.3f  speedup=%.2f  procs=%d\n\n",
              static_cast<long long>(s.makespan()),
              normalized_schedule_length(s), speedup(g, s.makespan()),
              s.procs_used());
  std::printf("%s\n%s", schedule_listing(s).c_str(),
              gantt_chart(s, 72).c_str());
  return 0;
}
