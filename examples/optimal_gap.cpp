// How far from optimal are the heuristics? Runs the parallel
// branch-and-bound scheduler on small random graphs (the paper's RGBOS
// methodology, §5.2) and reports each BNP algorithm's percentage
// degradation, like a one-row slice of the paper's Table 3.
//
//   ./examples/optimal_gap [--nodes=14] [--ccr=1.0] [--procs=2]
//                          [--seed=42] [--budget=10]
#include <cstdio>

#include "tgs/gen/rgbos.h"
#include "tgs/harness/registry.h"
#include "tgs/optimal/bb_scheduler.h"
#include "tgs/sched/gantt.h"
#include "tgs/sched/metrics.h"
#include "tgs/util/cli.h"
#include "tgs/util/table.h"

int main(int argc, char** argv) {
  using namespace tgs;
  const Cli cli(argc, argv);
  const NodeId nodes = static_cast<NodeId>(cli.get_int("nodes", 14));
  const double ccr = cli.get_double("ccr", 1.0);
  const int procs = static_cast<int>(cli.get_int("procs", 2));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  const TaskGraph g = rgbos_graph(ccr, nodes, seed);
  std::printf("RGBOS graph: v=%u, e=%zu, CCR=%.2f, %d processors\n", nodes,
              g.num_edges(), g.ccr(), procs);

  // Heuristics first: the best one seeds the branch-and-bound incumbent.
  SchedOptions opt;
  opt.num_procs = procs;
  Time best_heur = kTimeInf;
  std::vector<std::pair<std::string, Time>> heur;
  for (const auto& algo : make_bnp_schedulers()) {
    const Time len = algo->run(g, opt).makespan();
    heur.emplace_back(algo->name(), len);
    best_heur = std::min(best_heur, len);
  }

  BBOptions bb;
  bb.num_procs = procs;
  bb.time_limit_seconds = cli.get_double("budget", 10.0);
  bb.initial_upper_bound = best_heur;
  const BBResult r = branch_and_bound(g, bb);
  const Time optimal = r.schedule ? r.length : best_heur;
  std::printf("branch-and-bound: length=%lld (%s), %llu states, %.2fs\n\n",
              static_cast<long long>(optimal),
              r.proven_optimal ? "proven optimal" : "best found in budget",
              static_cast<unsigned long long>(r.nodes_expanded), r.seconds);

  Table table({"algorithm", "makespan", "% degradation", "optimal?"});
  for (const auto& [name, len] : heur) {
    table.add_row({name, Table::fmt_int(len),
                   Table::fmt(percent_degradation(len, optimal), 2),
                   len == optimal ? "yes" : "no"});
  }
  std::printf("%s", table.to_ascii().c_str());

  if (r.schedule) {
    std::printf("\noptimal schedule:\n%s", schedule_listing(*r.schedule).c_str());
  }
  return 0;
}
